package core

import (
	"errors"

	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/entrymap"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// locatorSource adapts the service's block storage to the entrymap locator's
// Source and RecoverSource interfaces. All methods assume s.mu is held by
// the caller (the locator only runs inside service operations).
type locatorSource Service

func (ls *locatorSource) svc() *Service { return (*Service)(ls) }

// End implements entrymap.Source.
func (ls *locatorSource) End() int { return ls.svc().endLocked() }

// EntryAt implements entrymap.Source and entrymap.RecoverSource: it reads
// the entrymap entry nominally due at the given boundary, scanning forward
// up to the displacement limit when the boundary block is unreadable or the
// entry was displaced by a fragment chain or a damaged block (§2.3.2).
// Entrymap entries are self-identifying (level, boundary), so the scan
// cannot mistake a neighbouring boundary's entry for the requested one.
func (ls *locatorSource) EntryAt(level, boundary int) (*entrymap.Entry, error) {
	s := ls.svc()
	end := s.endLocked()
	limit := boundary + s.opt.DisplacementLimit
	for b := boundary; b <= limit && b < end; b++ {
		parsed, err := s.parseBlockLocked(b)
		if err != nil {
			continue // unreadable: keep scanning forward
		}
		if b > boundary && parsed.Flags&blockfmt.FlagEntrymapBoundary == 0 {
			// Displaced entries always land in flagged blocks; skip the
			// unflagged block but keep scanning (a long fragment chain can
			// push the displaced entry several blocks past its boundary).
			continue
		}
		for i, rec := range parsed.Records {
			if rec.LogID != entrymap.EntrymapID || rec.Continued {
				continue
			}
			data, aerr := s.assembleLocked(b, i, parsed)
			if aerr != nil {
				continue
			}
			e, derr := entrymap.Decode(data)
			if derr != nil {
				continue
			}
			if e.Level == level && e.Boundary == boundary {
				return e, nil
			}
		}
	}
	return nil, nil
}

// Pending implements entrymap.Source: the accumulator's in-progress bitmap,
// widened with the staged tail block's contents (the tail is readable but
// not yet noted in the accumulator — that happens at seal).
func (ls *locatorSource) Pending(level int, id uint16) wire.Bitmap {
	s := ls.svc()
	bm, _ := s.acc.Pending(level, id)
	if level == 1 && s.tailGlobal >= 0 && s.tailIDs[id] {
		n := s.opt.Degree
		eff := make(wire.Bitmap, (n+7)/8)
		copy(eff, bm)
		eff.Set(s.tailGlobal % n)
		return eff
	}
	return bm
}

// BlockContains implements entrymap.Source. Fragments count: the entrymap
// marks every block holding any part of an entry.
func (ls *locatorSource) BlockContains(block int, id uint16) (bool, error) {
	parsed, err := ls.svc().parseBlockLocked(block)
	if err != nil {
		return false, nil // unreadable blocks contribute nothing
	}
	for _, rec := range parsed.Records {
		if rec.LogID == id {
			return true, nil
		}
		for _, ex := range rec.ExtraIDs {
			if ex == id {
				return true, nil
			}
		}
	}
	return false, nil
}

// BlockFirstTS implements entrymap.Source.
func (ls *locatorSource) BlockFirstTS(block int) (int64, bool, error) {
	parsed, err := ls.svc().parseBlockLocked(block)
	if err != nil {
		return 0, false, nil
	}
	return parsed.FirstTimestamp, true, nil
}

// BlockIDs implements entrymap.RecoverSource.
func (ls *locatorSource) BlockIDs(block int) ([]uint16, error) {
	parsed, err := ls.svc().parseBlockLocked(block)
	if err != nil {
		return nil, nil // lost block: its entrymap info is simply absent
	}
	seen := make(map[uint16]bool)
	var out []uint16
	note := func(id uint16) {
		if id == entrymap.VolumeSeqID || id == entrymap.EntrymapID || seen[id] {
			return
		}
		seen[id] = true
		out = append(out, id)
	}
	for _, rec := range parsed.Records {
		note(rec.LogID)
		for _, ex := range rec.ExtraIDs {
			note(ex)
		}
	}
	return out, nil
}

// readBlockLocked returns the raw image of a global data block, via the
// cache. Unreadable conditions (unwritten, invalidated, offline) surface as
// errors; damaged blocks surface later as parse errors.
func (s *Service) readBlockLocked(global int) ([]byte, error) {
	key := cache.Key{Block: global}
	if img := s.cache.Lookup(key); img != nil {
		s.opt.Clock.ChargeCachedBlock()
		return img, nil
	}
	if global == s.tailGlobal {
		// The staged tail exists only in memory (and NVRAM); if the cache
		// evicted its image, re-seal it from the builder.
		img := s.builder.Seal()
		s.cache.Put(key, img)
		s.opt.Clock.ChargeCachedBlock()
		return img, nil
	}
	v, local, err := s.set.Locate(global)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, s.opt.BlockSize)
	s.opt.Clock.ChargeDeviceRead(s.opt.BlockSize)
	devIdx := v.DeviceBlock(local)
	// Transient faults are retried with backoff; mirrored devices (§5
	// footnote 11) additionally route around a silently corrupted primary
	// copy when a replica's copy still validates.
	if err := s.readDeviceBlockLocked(v, devIdx, buf, blockfmt.Validate); err != nil {
		return nil, err
	}
	s.cache.Put(key, buf)
	s.opt.Clock.ChargeCachedBlock()
	return buf, nil
}

// validatedReader is implemented by mirrored devices.
type validatedReader interface {
	ReadValidated(idx int, dst []byte, valid func([]byte) bool) error
}

// parseBlockLocked reads and decodes a global data block.
func (s *Service) parseBlockLocked(global int) (*blockfmt.Parsed, error) {
	img, err := s.readBlockLocked(global)
	if err != nil {
		return nil, err
	}
	return blockfmt.Parse(img)
}

// assembleLocked reassembles the full data of the entry whose first fragment
// is record idx of block `global` (already parsed as `parsed`). Fragmented
// entries continue as the first same-id continued record of each following
// block. A chain that runs off the readable end is torn (lost): ErrLost.
func (s *Service) assembleLocked(global, idx int, parsed *blockfmt.Parsed) ([]byte, error) {
	rec := parsed.Records[idx]
	if !rec.Continues {
		return rec.Data, nil
	}
	out := append([]byte(nil), rec.Data...)
	id := rec.LogID
	end := s.endLocked()
	for b := global + 1; ; b++ {
		if b >= end {
			return nil, ErrLost // torn chain: writer died mid-entry
		}
		p, err := s.parseBlockLocked(b)
		if err != nil {
			if errors.Is(err, wodev.ErrInvalidated) {
				// The writer hit a damaged block here and slid the staged
				// contents to the next block (§2.3.2): the chain continues
				// past the invalidated block, it is not torn.
				continue
			}
			return nil, ErrLost // damaged or unwritten continuation block
		}
		found := false
		done := false
		for _, r := range p.Records {
			if r.LogID != id || !r.Continued {
				continue
			}
			out = append(out, r.Data...)
			found = true
			done = !r.Continues
			break
		}
		if !found {
			return nil, ErrLost // chain broken
		}
		if done {
			return out, nil
		}
	}
}
