package wodev

import "time"

// Latent wraps a Device with a real per-operation delay, modeling the
// milliseconds-scale access time of the paper's optical write-once media
// (§3.2). Unlike Timed, which charges a virtual clock and returns
// immediately, Latent actually blocks the calling goroutine — concurrency
// tests and benchmarks use it so device operations create genuine overlap
// windows (a sealing writer really waits while other clients run), which is
// what makes group commit observable.
type Latent struct {
	Device
	// WriteDelay is slept before each AppendBlock/WriteAt/Invalidate.
	WriteDelay time.Duration
	// ReadDelay is slept before each ReadBlock.
	ReadDelay time.Duration
}

// NewLatent wraps dev with the given write and read delays.
func NewLatent(dev Device, writeDelay, readDelay time.Duration) *Latent {
	return &Latent{Device: dev, WriteDelay: writeDelay, ReadDelay: readDelay}
}

// ReadBlock sleeps ReadDelay then delegates.
func (l *Latent) ReadBlock(idx int, dst []byte) error {
	if l.ReadDelay > 0 {
		time.Sleep(l.ReadDelay)
	}
	return l.Device.ReadBlock(idx, dst)
}

// AppendBlock sleeps WriteDelay then delegates.
func (l *Latent) AppendBlock(data []byte) (int, error) {
	if l.WriteDelay > 0 {
		time.Sleep(l.WriteDelay)
	}
	return l.Device.AppendBlock(data)
}

// WriteAt sleeps WriteDelay then delegates.
func (l *Latent) WriteAt(idx int, data []byte) error {
	if l.WriteDelay > 0 {
		time.Sleep(l.WriteDelay)
	}
	return l.Device.WriteAt(idx, data)
}

// Invalidate sleeps WriteDelay then delegates.
func (l *Latent) Invalidate(idx int) error {
	if l.WriteDelay > 0 {
		time.Sleep(l.WriteDelay)
	}
	return l.Device.Invalidate(idx)
}
