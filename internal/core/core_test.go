package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"clio/internal/volume"
	"clio/internal/wodev"
)

// testClock is a deterministic time source.
type testClock struct{ now int64 }

func (tc *testClock) Now() int64 {
	tc.now += 1000
	return tc.now
}

// newTestService creates a service on an in-memory device.
func newTestService(t *testing.T, opt Options) (*Service, *wodev.MemDevice) {
	t.Helper()
	if opt.BlockSize == 0 {
		opt.BlockSize = 256
	}
	if opt.Degree == 0 {
		opt.Degree = 4
	}
	if opt.Now == nil {
		tc := &testClock{}
		opt.Now = tc.Now
	}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: opt.BlockSize, Capacity: 1 << 16})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func mustCreate(t *testing.T, s *Service, path string) uint16 {
	t.Helper()
	id, err := s.CreateLog(path, 0o644, "test")
	if err != nil {
		t.Fatalf("CreateLog(%s): %v", path, err)
	}
	return id
}

func mustAppend(t *testing.T, s *Service, id uint16, data string, opts AppendOptions) int64 {
	t.Helper()
	ts, err := s.Append(id, []byte(data), opts)
	if err != nil && !IsDegraded(err) {
		t.Fatalf("Append(%d, %q): %v", id, data, err)
	}
	return ts
}

func readAll(t *testing.T, s *Service, path string) []*Entry {
	t.Helper()
	c, err := s.OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Entry
	for {
		e, err := c.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, e)
	}
}

func datas(entries []*Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = string(e.Data)
	}
	return out
}

func TestAppendReadRoundTrip(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/audit")
	want := []string{"alpha", "bravo", "charlie"}
	for _, w := range want {
		mustAppend(t, s, id, w, AppendOptions{})
	}
	got := datas(readAll(t, s, "/audit"))
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("read back %v, want %v", got, want)
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	if _, err := s.Append(999, []byte("x"), AppendOptions{}); err == nil {
		t.Error("append to unknown id accepted")
	}
	if _, err := s.Append(1, []byte("x"), AppendOptions{}); !errors.Is(err, ErrSystemLog) {
		t.Errorf("append to entrymap log: %v", err)
	}
	id := mustCreate(t, s, "/big")
	huge := make([]byte, s.Options().MaxEntrySize+1)
	if _, err := s.Append(id, huge, AppendOptions{}); !errors.Is(err, ErrEntryTooLarge) {
		t.Errorf("oversized append: %v", err)
	}
	if err := s.Retire("/big"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(id, []byte("x"), AppendOptions{}); err == nil {
		t.Error("append to retired log accepted")
	}
}

func TestTimestampsStrictlyIncrease(t *testing.T) {
	// A constant wall clock must still yield strictly increasing stamps.
	s, _ := newTestService(t, Options{Now: func() int64 { return 42 }})
	defer s.Close()
	id := mustCreate(t, s, "/l")
	var last int64
	for i := 0; i < 10; i++ {
		ts := mustAppend(t, s, id, "x", AppendOptions{Timestamped: true})
		if ts <= last {
			t.Fatalf("timestamp %d not after %d", ts, last)
		}
		last = ts
	}
}

func TestSublogMembership(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	mail := mustCreate(t, s, "/mail")
	smith := mustCreate(t, s, "/mail/smith")
	jones := mustCreate(t, s, "/mail/jones")
	mustAppend(t, s, smith, "to-smith-1", AppendOptions{})
	mustAppend(t, s, jones, "to-jones-1", AppendOptions{})
	mustAppend(t, s, smith, "to-smith-2", AppendOptions{})
	mustAppend(t, s, mail, "to-all", AppendOptions{})

	if got := datas(readAll(t, s, "/mail/smith")); fmt.Sprint(got) != "[to-smith-1 to-smith-2]" {
		t.Errorf("smith: %v", got)
	}
	// The parent log yields its own entries plus all sublogs', in order.
	if got := datas(readAll(t, s, "/mail")); fmt.Sprint(got) != "[to-smith-1 to-jones-1 to-smith-2 to-all]" {
		t.Errorf("mail: %v", got)
	}
	// The volume sequence log contains everything, including system entries.
	all := readAll(t, s, "/")
	var clientData []string
	for _, e := range all {
		if e.LogID == mail || e.LogID == smith || e.LogID == jones {
			clientData = append(clientData, string(e.Data))
		}
	}
	if fmt.Sprint(clientData) != "[to-smith-1 to-jones-1 to-smith-2 to-all]" {
		t.Errorf("volume sequence log client entries: %v", clientData)
	}
}

func TestFragmentationAcrossBlocks(t *testing.T) {
	s, _ := newTestService(t, Options{BlockSize: 256})
	defer s.Close()
	id := mustCreate(t, s, "/frag")
	big := make([]byte, 1000) // ~4.3 blocks of 232-byte payloads
	for i := range big {
		big[i] = byte(i)
	}
	mustAppend(t, s, id, string(big), AppendOptions{Timestamped: true})
	mustAppend(t, s, id, "after", AppendOptions{})
	got := readAll(t, s, "/frag")
	if len(got) != 2 {
		t.Fatalf("%d entries", len(got))
	}
	if !bytes.Equal(got[0].Data, big) {
		t.Error("fragmented entry data mismatch")
	}
	if string(got[1].Data) != "after" {
		t.Errorf("second entry %q", got[1].Data)
	}
	// Backwards too.
	c, _ := s.OpenCursor("/frag")
	c.SeekEnd()
	e, err := c.Prev()
	if err != nil || string(e.Data) != "after" {
		t.Fatalf("Prev: %v %q", err, e.Data)
	}
	e, err = c.Prev()
	if err != nil || !bytes.Equal(e.Data, big) {
		t.Fatalf("Prev big: %v", err)
	}
	if _, err := c.Prev(); err != io.EOF {
		t.Fatalf("Prev at start: %v", err)
	}
}

func TestEmptyEntry(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/null")
	mustAppend(t, s, id, "", AppendOptions{Timestamped: true})
	got := readAll(t, s, "/null")
	if len(got) != 1 || len(got[0].Data) != 0 {
		t.Fatalf("null entry: %+v", got)
	}
}

func TestCursorPrevNextSymmetry(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/sym")
	for i := 0; i < 40; i++ {
		mustAppend(t, s, id, fmt.Sprintf("e%02d", i), AppendOptions{})
	}
	c, _ := s.OpenCursor("/sym")
	// Walk forward 10, then back 3, then forward 3: positions must agree.
	for i := 0; i < 10; i++ {
		if _, err := c.Next(); err != nil {
			t.Fatal(err)
		}
	}
	var back []string
	for i := 0; i < 3; i++ {
		e, err := c.Prev()
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, string(e.Data))
	}
	if fmt.Sprint(back) != "[e09 e08 e07]" {
		t.Errorf("backward walk: %v", back)
	}
	var fwd []string
	for i := 0; i < 3; i++ {
		e, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		fwd = append(fwd, string(e.Data))
	}
	if fmt.Sprint(fwd) != "[e07 e08 e09]" {
		t.Errorf("forward rewalk: %v", fwd)
	}
}

func TestSeekTime(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/t")
	var stamps []int64
	for i := 0; i < 50; i++ {
		stamps = append(stamps, mustAppend(t, s, id, fmt.Sprintf("e%d", i), AppendOptions{Timestamped: true}))
	}
	c, _ := s.OpenCursor("/t")
	for _, k := range []int{0, 1, 7, 25, 49} {
		if err := c.SeekTime(stamps[k]); err != nil {
			t.Fatal(err)
		}
		e, err := c.Next()
		if err != nil || string(e.Data) != fmt.Sprintf("e%d", k) {
			t.Fatalf("SeekTime(stamp[%d]) -> %v %q", k, err, e.Data)
		}
		// Prev after re-seek returns the entry before the seek point.
		if err := c.SeekTime(stamps[k]); err != nil {
			t.Fatal(err)
		}
		pe, perr := c.Prev()
		if k == 0 {
			if perr != io.EOF {
				t.Fatalf("Prev before first: %v", perr)
			}
		} else if perr != nil || string(pe.Data) != fmt.Sprintf("e%d", k-1) {
			t.Fatalf("Prev at stamp[%d]: %v %q", k, perr, pe.Data)
		}
	}
	// Seeking past the end: Next yields EOF.
	if err := c.SeekTime(stamps[49] + 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("Next past end: %v", err)
	}
	// Seeking before the beginning: Next yields the first entry.
	if err := c.SeekTime(0); err != nil {
		t.Fatal(err)
	}
	if e, err := c.Next(); err != nil || string(e.Data) != "e0" {
		t.Fatalf("Next from time 0: %v", err)
	}
}

func TestUntimestampedEntriesInheritTimestamps(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/mix")
	ts1 := mustAppend(t, s, id, "a", AppendOptions{Timestamped: true})
	mustAppend(t, s, id, "b", AppendOptions{}) // minimal header
	entries := readAll(t, s, "/mix")
	if len(entries) != 2 {
		t.Fatal("want 2 entries")
	}
	if entries[0].Timestamp != ts1 || !entries[0].Timestamped {
		t.Errorf("entry a ts=%d", entries[0].Timestamp)
	}
	if entries[1].Timestamped {
		t.Error("minimal entry claims its own timestamp")
	}
	if entries[1].Timestamp < ts1 {
		t.Errorf("inherited ts %d < %d", entries[1].Timestamp, ts1)
	}
}

func TestReadAt(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/ra")
	mustAppend(t, s, id, "hello", AppendOptions{})
	entries := readAll(t, s, "/ra")
	e, err := s.ReadAt(entries[0].Block, entries[0].Index)
	if err != nil || string(e.Data) != "hello" {
		t.Fatalf("ReadAt: %v %q", err, e.Data)
	}
	if _, err := s.ReadAt(entries[0].Block, 999); err == nil {
		t.Error("ReadAt out of range accepted")
	}
}

func TestManyEntriesAcrossBoundaries(t *testing.T) {
	// Enough entries to cross several level-1 and level-2 boundaries with
	// N=4, exercising entrymap emission and selective cursor advance.
	s, _ := newTestService(t, Options{BlockSize: 256, Degree: 4})
	defer s.Close()
	a := mustCreate(t, s, "/a")
	b := mustCreate(t, s, "/b")
	var wantA, wantB []string
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		payload := fmt.Sprintf("entry-%03d-%s", i, string(make([]byte, rng.Intn(40))))
		if rng.Intn(3) == 0 {
			mustAppend(t, s, b, payload, AppendOptions{})
			wantB = append(wantB, payload)
		} else {
			mustAppend(t, s, a, payload, AppendOptions{})
			wantA = append(wantA, payload)
		}
	}
	if s.End() < 20 {
		t.Fatalf("only %d blocks written; geometry too small", s.End())
	}
	if got := datas(readAll(t, s, "/a")); fmt.Sprint(got) != fmt.Sprint(wantA) {
		t.Errorf("log a mismatch: %d vs %d entries", len(got), len(wantA))
	}
	if got := datas(readAll(t, s, "/b")); fmt.Sprint(got) != fmt.Sprint(wantB) {
		t.Errorf("log b mismatch: %d vs %d entries", len(got), len(wantB))
	}
	// Backward iteration over a selective cursor.
	c, _ := s.OpenCursor("/b")
	c.SeekEnd()
	for i := len(wantB) - 1; i >= 0; i-- {
		e, err := c.Prev()
		if err != nil {
			t.Fatalf("Prev at %d: %v", i, err)
		}
		if string(e.Data) != wantB[i] {
			t.Fatalf("Prev %d: %q want %q", i, e.Data, wantB[i])
		}
	}
	if _, err := c.Prev(); err != io.EOF {
		t.Fatalf("Prev past start: %v", err)
	}
}

func TestCursorSeesNewWrites(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/live")
	c, _ := s.OpenCursor("/live")
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("empty: %v", err)
	}
	mustAppend(t, s, id, "later", AppendOptions{})
	e, err := c.Next()
	if err != nil || string(e.Data) != "later" {
		t.Fatalf("cursor missed new write: %v", err)
	}
}

func allocFromPool(t *testing.T, blockCap int) (Allocator, *[]*wodev.MemDevice) {
	devs := &[]*wodev.MemDevice{}
	return func(seq volume.SeqID, index uint32, startOffset uint64, blockSize int) (wodev.Device, error) {
		d := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: blockCap})
		*devs = append(*devs, d)
		return d, nil
	}, devs
}

func TestMultiVolumeSpanning(t *testing.T) {
	alloc, extra := allocFromPool(t, 16)
	tc := &testClock{}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 16})
	s, err := New(dev, Options{BlockSize: 256, Degree: 4, Now: tc.Now, Allocate: alloc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/span")
	var want []string
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("payload-%03d-%s", i, "xxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
		mustAppend(t, s, id, p, AppendOptions{})
		want = append(want, p)
	}
	if len(*extra) == 0 {
		t.Fatal("no successor volumes were allocated")
	}
	if got := datas(readAll(t, s, "/span")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("multi-volume read mismatch (%d vs %d)", len(got), len(want))
	}
	if len(s.Volumes()) < 3 {
		t.Errorf("only %d volumes", len(s.Volumes()))
	}
}

func TestVolumeFullWithoutAllocator(t *testing.T) {
	tc := &testClock{}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 4})
	s, err := New(dev, Options{BlockSize: 256, Degree: 4, Now: tc.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/full")
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = s.Append(id, []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), AppendOptions{}); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoAllocator) {
		t.Errorf("filling the only volume: %v", lastErr)
	}
}
