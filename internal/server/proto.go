// Package server implements the extended-file-server side of Clio: a
// message protocol exposing the log service to clients over a byte-stream
// connection, mirroring the paper's V-System file server with attached log
// devices (§2). The client side lives in internal/client.
//
// The paper's clients talk to the server with synchronous IPC; here a
// request/response protocol runs over any net.Conn — a net.Pipe for the
// same-machine case (the paper's 0.5–1 ms IPC) or TCP for the cross-machine
// case (2.5–3 ms).
//
// Wire format: every message is a length-prefixed frame
//
//	u32 frameLen | u8 op | u64 seq | u64 traceID | payload...
//
// with integers little-endian and strings/bytes length-prefixed by uvarint.
// Responses reuse the frame with op = status code (ok / error / EOF /
// degraded) and echo the request's seq and traceID.
//
// seq is the client-assigned session sequence number (the request ID): it
// pairs responses with requests and drives the server's per-session
// duplicate-suppression window, which makes retried requests idempotent — a
// client that lost a connection mid-call can reconnect, replay the request
// under the same seq, and receive the original result instead of a second
// execution. seq 0 opts out of duplicate suppression.
//
// traceID names the request in the observability layer: the server opens an
// obs trace under it, so a client-side ID can be correlated with the
// server's /tracez ring buffers. A replayed request carries its original
// traceID (it is derived from session and seq, not regenerated per send).
// traceID 0 means untraced.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"clio/internal/wire"
)

// Request opcodes.
const (
	OpCreate      = 1
	OpResolve     = 2
	OpList        = 3
	OpStat        = 4
	OpSetPerms    = 5
	OpRetire      = 6
	OpAppend      = 7
	OpCursorOpen  = 8
	OpNext        = 9
	OpPrev        = 10
	OpSeekTime    = 11
	OpSeekStart   = 12
	OpSeekEnd     = 13
	OpCursorEnd   = 14
	OpReadAt      = 15
	OpPing        = 16
	OpStats       = 17
	OpAppendMulti = 18
	OpSeekPos     = 19
	// OpHello attaches the connection to a client session (payload: u64
	// session id). The response payload is u64 server epoch + u64 maxSeq
	// already processed for that session, letting a reconnecting client
	// detect a server restart (epoch change = session state lost).
	OpHello = 20
	// OpForce asks the store to make everything appended so far durable
	// (empty payload, empty response). It mutates device state, so it runs
	// sequenced like appends, not in the read-class pool.
	OpForce = 21
)

// Response status codes.
const (
	StatusOK  = 0
	StatusErr = 1
	StatusEOF = 2
	// StatusDegraded reports an append that COMPLETED (the payload carries
	// the entry's timestamp, exactly like StatusOK) but had to relocate
	// past damaged blocks to do so (§2.3.2, core.DegradedError).
	StatusDegraded = 3
	// StatusNotLeader rejects a write-class request sent to a replication
	// follower. The payload carries the current leader's address as a
	// length-prefixed string (empty when unknown), so the client can
	// redirect in one round trip instead of probing the address list.
	StatusNotLeader = 4
	// StatusUnavailable rejects a write-class request the node refuses to
	// even start — a cluster leader cut off from its quorum answers this
	// instead of executing a write it could never ack. The payload carries a
	// length-prefixed reason. Unlike StatusErr it is a property of the node,
	// not the request: clients should retry elsewhere.
	StatusUnavailable = 5
	// StatusQuotaExceeded rejects a request that would push the session's
	// tenant past one of its configured quotas (max logs, max appended
	// bytes, max concurrent sessions). The payload carries a
	// length-prefixed reason naming the quota. The request did NOT execute
	// — an append refused for quota wrote nothing — and unlike
	// StatusUnavailable the condition will not clear by retrying elsewhere:
	// clients surface it to the application instead of retrying.
	StatusQuotaExceeded = 6
)

// IsMutating reports whether op changes store state (as opposed to reads and
// cursor motion). Mutating ops are the write class: replication followers
// refuse them with StatusNotLeader, and a cluster leader acks them only
// after a quorum has durably staged their effects.
func IsMutating(op byte) bool {
	switch op {
	case OpCreate, OpSetPerms, OpRetire, OpAppend, OpAppendMulti, OpForce,
		wire.OpStreamAck, wire.OpStreamRebalance:
		return true
	}
	return false
}

// Append flag bits.
const (
	AppendTimestamped = 1 << 0
	AppendForced      = 1 << 1
)

// Entry flag bits (in entry responses).
const (
	EntryTimestamped = 1 << 0
	EntryForced      = 1 << 1
)

// MaxFrame bounds a single protocol frame.
const MaxFrame = 8 << 20

// ErrFrameTooLarge is returned for frames above MaxFrame.
var ErrFrameTooLarge = errors.New("server: frame too large")

// WriteFrame writes one length-prefixed frame (op byte + seq + traceID +
// payload).
func WriteFrame(w io.Writer, op byte, seq, trace uint64, payload []byte) error {
	return WriteFrameChunks(w, op, seq, trace, payload, nil)
}

// WriteFrameChunks writes one frame whose payload is head followed by body,
// without concatenating them. body may be a subslice borrowed from the block
// cache (a sealed entry's data): a read response then travels from the
// immutable block image to the connection with no intermediate copy. On a
// TCP connection the three pieces go out in a single writev.
func WriteFrameChunks(w io.Writer, op byte, seq, trace uint64, head, body []byte) error {
	n := len(head) + len(body)
	if n+17 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [21]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n+17))
	hdr[4] = op
	binary.LittleEndian.PutUint64(hdr[5:13], seq)
	binary.LittleEndian.PutUint64(hdr[13:], trace)
	bufs := net.Buffers{hdr[:]}
	if len(head) > 0 {
		bufs = append(bufs, head)
	}
	if len(body) > 0 {
		bufs = append(bufs, body)
	}
	_, err := bufs.WriteTo(w)
	return err
}

// ReadFrame reads one frame, returning its op byte, sequence number, trace
// ID and payload.
func ReadFrame(r io.Reader) (byte, uint64, uint64, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 17 || n > MaxFrame {
		return 0, 0, 0, nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, 0, nil, err
	}
	return buf[0], binary.LittleEndian.Uint64(buf[1:9]),
		binary.LittleEndian.Uint64(buf[9:17]), buf[17:], nil
}

// Payload encoding helpers.

// PutString appends a uvarint-length-prefixed string.
func PutString(dst []byte, s string) []byte {
	dst = wire.PutUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// PutBytes appends a uvarint-length-prefixed byte slice.
func PutBytes(dst []byte, b []byte) []byte {
	dst = wire.PutUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Decoder consumes a payload front to back.
type Decoder struct {
	buf []byte
}

// NewDecoder wraps a payload.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err constructs the canonical malformed-payload error.
func (d *Decoder) fail(what string) error {
	return fmt.Errorf("server: malformed payload: %s", what)
}

// Uvarint consumes an unsigned varint.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n, err := wire.Uvarint(d.buf)
	if err != nil {
		return 0, d.fail("uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

// Uint16 consumes a little-endian uint16.
func (d *Decoder) Uint16() (uint16, error) {
	v, err := wire.Uint16(d.buf)
	if err != nil {
		return 0, d.fail("uint16")
	}
	d.buf = d.buf[2:]
	return v, nil
}

// Uint32 consumes a little-endian uint32.
func (d *Decoder) Uint32() (uint32, error) {
	v, err := wire.Uint32(d.buf)
	if err != nil {
		return 0, d.fail("uint32")
	}
	d.buf = d.buf[4:]
	return v, nil
}

// Int64 consumes a little-endian int64.
func (d *Decoder) Int64() (int64, error) {
	v, err := wire.Uint64(d.buf)
	if err != nil {
		return 0, d.fail("int64")
	}
	d.buf = d.buf[8:]
	return int64(v), nil
}

// Byte consumes one byte.
func (d *Decoder) Byte() (byte, error) {
	if len(d.buf) < 1 {
		return 0, d.fail("byte")
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

// String consumes a length-prefixed string.
func (d *Decoder) String() (string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)) < n {
		return "", d.fail("string body")
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// Bytes consumes a length-prefixed byte slice (copied).
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.buf)) < n {
		return nil, d.fail("bytes body")
	}
	out := make([]byte, n)
	copy(out, d.buf[:n])
	d.buf = d.buf[n:]
	return out, nil
}

// Remaining returns the unconsumed byte count.
func (d *Decoder) Remaining() int { return len(d.buf) }
