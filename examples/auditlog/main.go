// Auditlog: the security-audit use case from the paper's introduction — a
// tamper-evident trail on write-once storage, with per-user sublogs so "a
// logged history can be examined to monitor for, and detect, unauthorized
// or suspicious activity patterns".
//
// The example records a mixed trail of logins, file accesses and privilege
// escalations for several users, then runs two audits: everything one user
// did (their sublog), and every privilege escalation in a time window
// (scanning the parent log, which contains all sublogs' entries).
//
//	go run ./examples/auditlog
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"clio"
)

type event struct {
	user   string
	action string
}

func main() {
	// In-memory store: audit trails fit naturally on simulated WORM.
	store, err := clio.NewMemStore(1, 1024, 1<<16, clio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()

	if _, err := store.CreateLog(ctx, "/audit", 0o600, "security"); err != nil {
		log.Fatal(err)
	}
	users := []string{"smith", "jones", "root"}
	ids := map[string]clio.ID{}
	for _, u := range users {
		id, err := store.CreateLog(ctx, "/audit/"+u, 0o600, "security")
		if err != nil {
			log.Fatal(err)
		}
		ids[u] = id
	}

	// Escalations additionally go to a dedicated cross-user log file via
	// multi-membership (§2.1: an entry may belong to several log files).
	escID, err := store.CreateLog(ctx, "/audit/escalations", 0o600, "security")
	if err != nil {
		log.Fatal(err)
	}

	trail := []event{
		{"smith", "login tty3"},
		{"jones", "login tty4"},
		{"smith", "open /etc/passwd"},
		{"root", "privilege-escalation su from=jones"},
		{"jones", "logout"},
		{"smith", "privilege-escalation sudo cmd=visudo"},
		{"root", "open /var/db/secrets"},
		{"smith", "logout"},
	}
	var escalationStart int64
	for i, ev := range trail {
		var ts int64
		var err error
		opts := clio.AppendOptions{Timestamped: true, Forced: true}
		if strings.HasPrefix(ev.action, "privilege-escalation") {
			ts, err = store.AppendMulti(ctx, []clio.ID{ids[ev.user], escID}, []byte(ev.action), opts)
		} else {
			ts, err = store.Append(ctx, ids[ev.user], []byte(ev.action), opts)
		}
		if err != nil {
			log.Fatal(err)
		}
		if i == 3 {
			escalationStart = ts
		}
	}

	fmt.Println("== everything smith did ==")
	cur, err := store.OpenCursor(ctx, "/audit/smith")
	if err != nil {
		log.Fatal(err)
	}
	dump(ctx, cur, func(e *clio.Entry) bool { return true })

	fmt.Println("== the escalation log (multi-membership entries) ==")
	esc, err := store.OpenCursor(ctx, "/audit/escalations")
	if err != nil {
		log.Fatal(err)
	}
	if err := esc.SeekTime(ctx, escalationStart); err != nil {
		log.Fatal(err)
	}
	dump(ctx, esc, func(e *clio.Entry) bool { return true })

	fmt.Println("== the trail is append-only: entries cannot be rewritten ==")
	d, _ := store.Stat(ctx, "/audit/smith")
	fmt.Printf("log id %v holds %s; retiring it freezes it forever\n", d.ID, "smith's history")
	if err := store.Retire(ctx, "/audit/smith"); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Append(ctx, ids["smith"], []byte("forged"), clio.AppendOptions{}); err != nil {
		fmt.Printf("append after retire correctly refused: %v\n", err)
	}
}

func dump(ctx context.Context, cur clio.LogCursor, keep func(*clio.Entry) bool) {
	defer cur.Close()
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		if keep(e) {
			fmt.Printf("  %s  %s\n",
				time.Unix(0, e.Timestamp).Format(time.StampMicro), e.Data)
		}
	}
}
