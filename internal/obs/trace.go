package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed step within a trace: a server dispatch, a group commit,
// a device write. Start is an offset from the trace's start, keeping spans
// meaningful after JSON round-trips regardless of host clock.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Duration `json:"start"`
	Duration time.Duration `json:"duration"`
}

// Trace is one request's recording: an ID (propagated over the wire), the
// operation name, and the spans captured while it ran. A nil *Trace is a
// valid no-op receiver, so instrumented code paths never branch on whether
// tracing is enabled.
type Trace struct {
	ID    uint64
	Op    string
	Start time.Time

	mu       sync.Mutex
	spans    []Span
	duration time.Duration // set by Tracer.Finish
}

// Span starts a named span and returns a func that ends it. Usage:
//
//	done := tr.Span("wodev.write")
//	... the work ...
//	done()
func (t *Trace) Span(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{
			Name:     name,
			Start:    begin.Sub(t.Start),
			Duration: end.Sub(begin),
		})
		t.mu.Unlock()
	}
}

// Add appends already-built spans — used by group commit, where the leader
// performs the work once and grafts its spans onto every rider's trace.
func (t *Trace) Add(spans ...Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, spans...)
	t.mu.Unlock()
}

// Spans returns a copy of the spans recorded so far.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// TraceRecord is the immutable, JSON-friendly form of a finished trace.
type TraceRecord struct {
	ID       uint64        `json:"id"`
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Spans    []Span        `json:"spans,omitempty"`
}

// ring is a fixed-capacity overwrite buffer of finished traces.
type ring struct {
	buf  []TraceRecord
	next int
	full bool
}

func (rb *ring) add(rec TraceRecord) {
	if len(rb.buf) == 0 {
		return
	}
	rb.buf[rb.next] = rec
	rb.next++
	if rb.next == len(rb.buf) {
		rb.next = 0
		rb.full = true
	}
}

// list returns records oldest-first.
func (rb *ring) list() []TraceRecord {
	if !rb.full {
		return append([]TraceRecord(nil), rb.buf[:rb.next]...)
	}
	out := make([]TraceRecord, 0, len(rb.buf))
	out = append(out, rb.buf[rb.next:]...)
	out = append(out, rb.buf[:rb.next]...)
	return out
}

// Tracer owns two ring buffers of finished traces: every recent request, and
// the subset slower than SlowThreshold (the ops worth keeping when the
// recent ring has churned past them). A nil *Tracer disables tracing: Start
// returns a nil *Trace and every downstream span call no-ops.
type Tracer struct {
	// slowThreshold is the duration (in nanoseconds) above which a finished
	// trace is also kept in the slow ring. Zero captures everything as slow.
	// Atomic so a config reload can retune it while requests finish.
	slowThreshold atomic.Int64

	mu     sync.Mutex
	recent ring
	slow   ring
}

// SlowThreshold returns the current slow-trace threshold.
func (tc *Tracer) SlowThreshold() time.Duration {
	if tc == nil {
		return 0
	}
	return time.Duration(tc.slowThreshold.Load())
}

// SetSlowThreshold retunes the slow-trace threshold. Safe to call while
// requests finish — the daemon uses it on config reload.
func (tc *Tracer) SetSlowThreshold(d time.Duration) {
	if tc == nil {
		return
	}
	tc.slowThreshold.Store(int64(d))
}

// NewTracer returns a tracer keeping the last cap traces (and up to cap slow
// traces) with the given slow threshold.
func NewTracer(cap int, slowThreshold time.Duration) *Tracer {
	if cap <= 0 {
		cap = 64
	}
	tc := &Tracer{
		recent: ring{buf: make([]TraceRecord, cap)},
		slow:   ring{buf: make([]TraceRecord, cap)},
	}
	tc.slowThreshold.Store(int64(slowThreshold))
	return tc
}

// Start begins a trace for one request. Returns nil (a valid no-op trace)
// when the tracer itself is nil.
func (tc *Tracer) Start(id uint64, op string) *Trace {
	if tc == nil {
		return nil
	}
	return &Trace{ID: id, Op: op, Start: time.Now()}
}

// Finish stamps the trace's duration and files it into the ring buffers.
func (tc *Tracer) Finish(t *Trace) {
	if tc == nil || t == nil {
		return
	}
	end := time.Now()
	t.mu.Lock()
	t.duration = end.Sub(t.Start)
	rec := TraceRecord{
		ID:       t.ID,
		Op:       t.Op,
		Start:    t.Start,
		Duration: t.duration,
		Spans:    append([]Span(nil), t.spans...),
	}
	t.mu.Unlock()

	tc.mu.Lock()
	tc.recent.add(rec)
	if rec.Duration >= time.Duration(tc.slowThreshold.Load()) {
		tc.slow.add(rec)
	}
	tc.mu.Unlock()
}

// Recent returns the recent-trace ring, oldest first.
func (tc *Tracer) Recent() []TraceRecord {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.recent.list()
}

// Slow returns the slow-trace ring, oldest first.
func (tc *Tracer) Slow() []TraceRecord {
	if tc == nil {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.slow.list()
}
