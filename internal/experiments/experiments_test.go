package experiments

import (
	"bytes"
	"testing"

	"clio/internal/vclock"
)

func TestRunWriteMatchesPaperShape(t *testing.T) {
	rows, err := RunWrite(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	null, fifty, remote := rows[0], rows[1], rows[2]
	// Remote = local + (remote IPC − local IPC) = 2.0 + 2.05 ≈ 4.05 ms.
	if remote.MeasuredMs < 3.9 || remote.MeasuredMs > 4.2 {
		t.Errorf("remote null write = %.3f ms", remote.MeasuredMs)
	}
	// Calibrated model: null ≈ 2.0 ms, 50-byte ≈ 2.9 ms (±5%).
	if null.MeasuredMs < 1.9 || null.MeasuredMs > 2.1 {
		t.Errorf("null write = %.3f ms", null.MeasuredMs)
	}
	if fifty.MeasuredMs < 2.75 || fifty.MeasuredMs > 3.05 {
		t.Errorf("50-byte write = %.3f ms", fifty.MeasuredMs)
	}
	if fifty.MeasuredMs <= null.MeasuredMs {
		t.Error("50-byte write not slower than null")
	}
	var buf bytes.Buffer
	PrintWrite(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestBuildDistanceVolumeGeometry(t *testing.T) {
	clk := vclock.New(vclock.DefaultModel())
	dv, err := BuildDistanceVolume(256, 16, 2, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Svc.Close()
	if len(dv.Targets) != 3 {
		t.Fatalf("%d targets", len(dv.Targets))
	}
	for _, tgt := range dv.Targets {
		d := dv.EndBlock - 1 - tgt.Block
		// Within a couple of blocks of the intended distance.
		if d < tgt.WantDistance-3 || d > tgt.WantDistance+3 {
			t.Errorf("target k=%d at distance %d, want ~%d", tgt.K, d, tgt.WantDistance)
		}
	}
}

func TestRunTable1Shape(t *testing.T) {
	rows, dv, err := RunTable1(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Svc.Close()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		// Complete caching: no device reads during the measured locate.
		if r.MeasDeviceRead != 0 {
			t.Errorf("k=%d: %d device reads under complete caching", r.K, r.MeasDeviceRead)
		}
		// Entry counts within a small constant of the paper's 2k−1.
		if diff := r.MeasEntries - r.PaperEntries; diff < -1 || diff > 2 {
			t.Errorf("k=%d: entries measured %d vs paper %d", r.K, r.MeasEntries, r.PaperEntries)
		}
		// Cost grows with distance.
		if i > 0 && r.MeasMs <= rows[i-1].MeasMs {
			t.Errorf("k=%d: time %.2f not above k=%d's %.2f", r.K, r.MeasMs, rows[i-1].K, rows[i-1].MeasMs)
		}
	}
	// The k=0 read is in the same ballpark as the paper's 1.46 ms.
	if rows[0].MeasMs < 1.0 || rows[0].MeasMs > 2.5 {
		t.Errorf("distance-0 read = %.2f ms", rows[0].MeasMs)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty print")
	}
}

func TestRunFig3MeasuredTracksTheory(t *testing.T) {
	clk := vclock.New(vclock.DefaultModel())
	dv, err := BuildDistanceVolume(256, 16, 3, clk)
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Svc.Close()
	rows, err := RunFig3(dv)
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, r := range rows {
		if r.Measured < 0 {
			continue
		}
		measured++
		if float64(r.Measured) > r.Theory+3 {
			t.Errorf("N=%d d=%d: measured %d far above theory %.1f", r.N, r.Distance, r.Measured, r.Theory)
		}
	}
	if measured < 3 {
		t.Errorf("only %d measured points", measured)
	}
}

func TestRunFig4MeasuredWithinBound(t *testing.T) {
	rows, err := RunFig4(256, []int{4, 16}, []int{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Measured < 0 {
			continue
		}
		// Worst case is twice the average curve.
		if float64(r.Measured) > 2*r.Theory+float64(r.N) {
			t.Errorf("N=%d b=%d: measured %d above worst-case bound (avg %.1f)",
				r.N, r.Blocks, r.Measured, r.Theory)
		}
		if r.EndProbes == 0 {
			t.Errorf("N=%d b=%d: no end probes recorded", r.N, r.Blocks)
		}
	}
}

func TestRunSpaceMatchesPaper(t *testing.T) {
	row, err := RunSpace(8000)
	if err != nil {
		t.Fatal(err)
	}
	if row.C < 0.05 || row.C > 0.08 {
		t.Errorf("c = %.4f, want ~1/15", row.C)
	}
	if row.A < 4 || row.A > 16 {
		t.Errorf("a = %.1f, want ~8", row.A)
	}
	if row.HeaderBytesPerEntry != 4 {
		t.Errorf("header bytes = %.2f, want 4 (minimal header)", row.HeaderBytesPerEntry)
	}
	if row.EntrymapBytesPerEntry > 0.5 {
		t.Errorf("entrymap bytes/entry = %.4f, paper says ~0.16", row.EntrymapBytesPerEntry)
	}
	if row.EntrymapPctOfEntry > 1.0 {
		t.Errorf("entrymap %% = %.3f, paper says <0.2%%", row.EntrymapPctOfEntry)
	}
}

func TestRunNVRAMFragmentation(t *testing.T) {
	rows, err := RunNVRAM(500)
	if err != nil {
		t.Fatal(err)
	}
	nv, raw, group := rows[0], rows[1], rows[2]
	// Without the NVRAM tail, every forced 50-byte write burns a block.
	if raw.BlocksUsed < nv.BlocksUsed*5 {
		t.Errorf("raw forced blocks %d not >> NVRAM %d", raw.BlocksUsed, nv.BlocksUsed)
	}
	if raw.PaddingPct < 50 {
		t.Errorf("raw padding = %.1f%%", raw.PaddingPct)
	}
	if nv.PaddingPct > 1 {
		t.Errorf("NVRAM padding = %.1f%%", nv.PaddingPct)
	}
	// Group commit lands in between.
	if !(group.BlocksUsed < raw.BlocksUsed && group.BlocksUsed >= nv.BlocksUsed) {
		t.Errorf("group commit blocks %d not between %d and %d",
			group.BlocksUsed, nv.BlocksUsed, raw.BlocksUsed)
	}
}

func TestRunBaselinesShape(t *testing.T) {
	rows, err := RunBaselines(256, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// At the largest distance the tree beats the linear scan by a wide
	// margin (at short distances the linear scan can win — the crossover
	// the harness exists to show).
	last := rows[len(rows)-1]
	if last.LinearReads <= int(last.ClioColdReads)*4 {
		t.Errorf("d=%d: linear %d not >> clio cold %d",
			last.Distance, last.LinearReads, last.ClioColdReads)
	}
	for _, r := range rows {
		// The §5 claim: the entrymap FindPrev path reads fewer blocks than
		// the binary tree for distant entries.
		if int(r.ClioPrevReads) >= r.BinaryReads {
			t.Errorf("d=%d: clio prev %d not below binary tree %d",
				r.Distance, r.ClioPrevReads, r.BinaryReads)
		}
		// Warming the shared landmarks helps the time search.
		if r.ClioWarmReads > r.ClioColdReads {
			t.Errorf("d=%d: warm %d above cold %d", r.Distance, r.ClioWarmReads, r.ClioColdReads)
		}
	}
}

func TestRunTailGrowthShape(t *testing.T) {
	rows, err := RunTailGrowth(512, []int{32, 256})
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	// The log file appends with fewer ops and (far) fewer seeks.
	if last.LogAppendOps >= last.FSAppendOps {
		t.Errorf("log append ops %.2f not below fs %.2f", last.LogAppendOps, last.FSAppendOps)
	}
	if last.LogAppendSeeks >= last.FSAppendSeeks {
		t.Errorf("log append seeks %.2f not below fs %.2f", last.LogAppendSeeks, last.FSAppendSeeks)
	}
	// Tail read: log reads O(1) blocks, FS walks indirection.
	if last.LogTailReads > last.FSTailReads {
		t.Errorf("log tail reads %d above fs %d", last.LogTailReads, last.FSTailReads)
	}
	// Backup: whole file vs increment.
	if last.LogBackupReads >= last.FSBackupReads {
		t.Errorf("incremental backup %d not below whole-file %d",
			last.LogBackupReads, last.FSBackupReads)
	}
	// FS append cost grows with file size; the log's stays flat.
	if rows[0].FSAppendOps > last.FSAppendOps {
		t.Logf("note: fs append ops did not grow (%.2f -> %.2f)", rows[0].FSAppendOps, last.FSAppendOps)
	}
}

func TestRunDegreeSweepShape(t *testing.T) {
	rows, err := RunDegreeSweep(256, 2000, []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Locate cost falls with N; space overhead falls with N; recovery cost
	// (theory) grows with N — the paper's three-way trade-off.
	if !(rows[0].LocateReads >= rows[1].LocateReads && rows[1].LocateReads >= rows[2].LocateReads) {
		t.Errorf("locate reads not decreasing in N: %d %d %d",
			rows[0].LocateReads, rows[1].LocateReads, rows[2].LocateReads)
	}
	if !(rows[0].EntrymapBytesPerEntry > rows[1].EntrymapBytesPerEntry &&
		rows[1].EntrymapBytesPerEntry > rows[2].EntrymapBytesPerEntry) {
		t.Errorf("entrymap overhead not decreasing in N")
	}
	if !(rows[0].TheoryRecovery < rows[1].TheoryRecovery && rows[1].TheoryRecovery < rows[2].TheoryRecovery) {
		t.Errorf("recovery theory not increasing in N")
	}
}

func TestRunCacheSweepShape(t *testing.T) {
	rows, breakEven, err := RunCacheSweep(256, 1000, []int{8, 128, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Hit ratio and read time improve with cache size.
	if !(rows[0].HitRatio < rows[2].HitRatio) {
		t.Errorf("hit ratio not increasing: %.3f .. %.3f", rows[0].HitRatio, rows[2].HitRatio)
	}
	if !(rows[0].AvgReadMs > rows[2].AvgReadMs) {
		t.Errorf("read time not decreasing: %.2f .. %.2f", rows[0].AvgReadMs, rows[2].AvgReadMs)
	}
	// The §4 break-even constant.
	if breakEven < 0.70 || breakEven > 0.71 {
		t.Errorf("break-even = %v", breakEven)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	f3, err := RunFig3(nil)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig3(&buf, f3)
	f4, err := RunFig4(256, []int{4}, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	PrintFig4(&buf, f4)
	nv, err := RunNVRAM(200)
	if err != nil {
		t.Fatal(err)
	}
	PrintNVRAM(&buf, nv)
	sp, err := RunSpace(2000)
	if err != nil {
		t.Fatal(err)
	}
	PrintSpace(&buf, sp)
	bl, err := RunBaselines(256, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	PrintBaselines(&buf, bl)
	tg, err := RunTailGrowth(512, []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	PrintTailGrowth(&buf, tg)
	dg, err := RunDegreeSweep(256, 600, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	PrintDegreeSweep(&buf, dg)
	cs, be, err := RunCacheSweep(256, 600, []int{16, 256})
	if err != nil {
		t.Fatal(err)
	}
	PrintCacheSweep(&buf, cs, be)
	if buf.Len() < 2000 {
		t.Errorf("printers produced only %d bytes", buf.Len())
	}
}

func TestRunCompactBoundsHotStorage(t *testing.T) {
	rows, err := RunCompact(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// The logical history grows linearly with the cycles...
	if last.LogicalBlocks < 3*first.LogicalBlocks {
		t.Errorf("history barely grew: %d -> %d blocks", first.LogicalBlocks, last.LogicalBlocks)
	}
	// ...while the hot working set stays bounded: demotion keeps pace with
	// churn, so hot storage must not track the history's linear growth.
	if last.HotBlocks > 2*first.HotBlocks {
		t.Errorf("hot storage tracked history growth: %d -> %d blocks", first.HotBlocks, last.HotBlocks)
	}
	if last.ColdVolumes == 0 {
		t.Error("no volumes were demoted cold")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ColdVolumes < rows[i-1].ColdVolumes {
			t.Errorf("cold volume count regressed at cycle %d", rows[i].Cycle)
		}
	}
}
