package histfs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/wodev"
)

func newFS(t *testing.T) (*FS, *core.Service) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	fs, err := New(context.Background(), logapi.NewLocal(svc), "/histfs")
	if err != nil {
		t.Fatal(err)
	}
	return fs, svc
}

func TestCreateWriteRead(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "hello.txt", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "hello.txt", []byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "hello.txt", []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read(ctx, "hello.txt")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("Read: %q, %v", got, err)
	}
	info, err := fs.Stat(ctx, "hello.txt")
	if err != nil || info.Size != 11 || info.Mode != 0o644 || info.Versions != 3 {
		t.Errorf("Stat: %+v, %v", info, err)
	}
}

func TestWriteAtAndTruncate(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "f", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt(ctx, "f", 4, []byte("ABCD")); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.Read(ctx, "f")
	if !bytes.Equal(got, []byte("\x00\x00\x00\x00ABCD")) {
		t.Fatalf("sparse write: %q", got)
	}
	if err := fs.Truncate(ctx, "f", 6); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read(ctx, "f")
	if !bytes.Equal(got, []byte("\x00\x00\x00\x00AB")) {
		t.Fatalf("after truncate: %q", got)
	}
	if err := fs.WriteAt(ctx, "f", 0, []byte("zz")); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read(ctx, "f")
	if !bytes.Equal(got, []byte("zz\x00\x00AB")) {
		t.Fatalf("overwrite: %q", got)
	}
}

func TestCreateValidation(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "", 0); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name: %v", err)
	}
	if err := fs.Create(ctx, "dup", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(ctx, "dup", 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := fs.Read(ctx, "missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing read: %v", err)
	}
}

func TestVersionTravel(t *testing.T) {
	fs, svc := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "doc", 0); err != nil {
		t.Fatal(err)
	}
	versions := []string{"v1", "v2 longer", "v3"}
	var stamps []int64
	for _, v := range versions {
		if err := fs.Truncate(ctx, "doc", 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Append(ctx, "doc", []byte(v)); err != nil {
			t.Fatal(err)
		}
		// Snapshot timestamp after each version (monotonic clock).
		stamps = append(stamps, lastHistTS(t, svc))
	}
	for i, v := range versions {
		got, err := fs.ReadAsOf(ctx, "doc", stamps[i])
		if err != nil || string(got) != v {
			t.Errorf("version %d: %q, %v (want %q)", i, got, err, v)
		}
	}
	// Current equals last version.
	got, _ := fs.Read(ctx, "doc")
	if string(got) != "v3" {
		t.Errorf("current: %q", got)
	}
}

// lastHistTS returns the newest timestamp visible in the volume sequence.
func lastHistTS(t *testing.T, svc *core.Service) int64 {
	t.Helper()
	c, err := svc.OpenCursor("/")
	if err != nil {
		t.Fatal(err)
	}
	c.SeekEnd()
	e, err := c.Prev()
	if err != nil {
		t.Fatal(err)
	}
	return e.Timestamp
}

func TestDeleteKeepsHistory(t *testing.T) {
	fs, svc := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "gone", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "gone", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	before := lastHistTS(t, svc)
	if err := fs.Delete(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(ctx, "gone"); !errors.Is(err, ErrNotExist) {
		t.Errorf("read after delete: %v", err)
	}
	names, _ := fs.List(ctx)
	for _, n := range names {
		if n == "gone" {
			t.Error("deleted file still listed")
		}
	}
	// But the old version is still there.
	got, err := fs.ReadAsOf(ctx, "gone", before)
	if err != nil || string(got) != "precious" {
		t.Errorf("ReadAsOf deleted file: %q, %v", got, err)
	}
}

func TestCacheIsPure(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	files := []string{"a", "b", "c"}
	for i, f := range files {
		if err := fs.Create(ctx, f, uint16(i)); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 5; j++ {
			if err := fs.Append(ctx, f, []byte(fmt.Sprintf("%s-%d;", f, j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	var before [][]byte
	for _, f := range files {
		b, err := fs.Read(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		before = append(before, b)
	}
	fs.EvictCache()
	for i, f := range files {
		b, err := fs.Read(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, before[i]) {
			t.Errorf("file %s differs after cache eviction", f)
		}
	}
}

func TestSurvivesServiceRecovery(t *testing.T) {
	ctx := context.Background()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	opt := core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(ctx, logapi.NewLocal(svc), "/histfs")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(ctx, "persist", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "persist", []byte("data!")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Force(); err != nil {
		t.Fatal(err)
	}
	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	fs2, err := New(ctx, logapi.NewLocal(svc2), "/histfs")
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Read(ctx, "persist")
	if err != nil || string(got) != "data!" {
		t.Fatalf("after recovery: %q, %v", got, err)
	}
	info, err := fs2.Stat(ctx, "persist")
	if err != nil || info.Mode != 0o600 {
		t.Errorf("mode after recovery: %+v, %v", info, err)
	}
}

func TestEscapedNames(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	name := "dir/sub/file%.txt"
	if err := fs.Create(ctx, name, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, name, []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List(ctx)
	if err != nil || len(names) != 1 || names[0] != name {
		t.Errorf("List = %v, %v", names, err)
	}
}

func TestSetMode(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "m", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetMode(ctx, "m", 0o755); err != nil {
		t.Fatal(err)
	}
	info, _ := fs.Stat(ctx, "m")
	if info.Mode != 0o755 {
		t.Errorf("mode = %o", info.Mode)
	}
}

func TestReadAccessLogging(t *testing.T) {
	fs, _ := newFS(t)
	ctx := context.Background()
	if err := fs.Create(ctx, "watched", 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append(ctx, "watched", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Reads are silent by default.
	if _, err := fs.Read(ctx, "watched"); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.ReadAccesses(ctx, "watched"); n != 0 {
		t.Errorf("accesses logged while disabled: %d", n)
	}
	fs.SetLogReads(true)
	for i := 0; i < 3; i++ {
		if _, err := fs.Read(ctx, "watched"); err != nil {
			t.Fatal(err)
		}
	}
	n, err := fs.ReadAccesses(ctx, "watched")
	if err != nil || n != 3 {
		t.Fatalf("accesses = %d, %v", n, err)
	}
	// Access records do not perturb contents or replay.
	fs.EvictCache()
	got, err := fs.Read(ctx, "watched")
	if err != nil || string(got) != "secret" {
		t.Fatalf("contents after access logging: %q, %v", got, err)
	}
}

func TestHistfsOverTheNetwork(t *testing.T) {
	ctx := context.Background()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := server.New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	cl := client.New(cConn)
	defer func() { cl.Close(); srv.Close() }()

	rfs, err := New(ctx, cl, "/histfs")
	if err != nil {
		t.Fatal(err)
	}
	if err := rfs.Create(ctx, "remote.txt", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := rfs.Append(ctx, "remote.txt", []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	// A second agent on a fresh connection sees the same file.
	cConn2, sConn2 := net.Pipe()
	go srv.ServeConn(sConn2)
	cl2 := client.New(cConn2)
	defer cl2.Close()
	rfs2, err := New(ctx, cl2, "/histfs")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rfs2.Read(ctx, "remote.txt")
	if err != nil || string(got) != "over the wire" {
		t.Fatalf("remote read: %q, %v", got, err)
	}
}
