package experiments

import (
	"io"

	"clio/internal/analytic"
	"clio/internal/core"
	"clio/internal/wodev"
	"clio/internal/workload"
)

// DegreeRow is one line of the degree-N ablation: the three-way trade-off
// behind the paper's recommendation that "a choice of N in the range 16–32
// provides excellent performance for reading (even very sparse) log files,
// without leading to excessive overhead during server initialization"
// (§3.4), with §3.5's space overhead as the third axis.
type DegreeRow struct {
	N int
	// LocateReads is the measured cold device reads to find a log file's
	// most recent entry ~`Distance` blocks back (§3.3: falls with N).
	LocateReads int64
	Distance    int
	// RecoveryExamined is the measured blocks+entries examined by crash
	// recovery on a `Blocks`-block volume (§3.4: grows with N).
	RecoveryExamined int
	Blocks           int
	// EntrymapBytesPerEntry is the measured §3.5 space overhead (grows
	// with N through the N/8-byte bitmaps, shrinks through entry spacing).
	EntrymapBytesPerEntry float64
	// Theory columns for the same quantities.
	TheoryLocate   float64
	TheoryRecovery float64
}

// RunDegreeSweep measures all three axes for each N on equal-sized volumes.
func RunDegreeSweep(blockSize, blocks int, ns []int) ([]DegreeRow, error) {
	if len(ns) == 0 {
		ns = []int{4, 8, 16, 32, 64}
	}
	if blocks <= 0 {
		blocks = 5000
	}
	var rows []DegreeRow
	for _, n := range ns {
		row := DegreeRow{N: n, Blocks: blocks}
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: blocks + 256})
		opt := core.Options{
			BlockSize: blockSize, Degree: n, CacheBlocks: -1,
			NVRAM: core.NewMemNVRAM(), Now: testNow(), CommitWindow: -1,
		}
		svc, err := core.New(dev, opt)
		if err != nil {
			return nil, err
		}
		// A sparse target log with one early entry, plus the login workload
		// as filler (realistic multi-log entrymap contents).
		if _, err := svc.CreateLog("/target", 0, ""); err != nil {
			return nil, err
		}
		targetID, _ := svc.Resolve("/target")
		tr := workload.NewLoginTrace(11, 8)
		ids := map[string]uint16{}
		for _, p := range tr.Logs() {
			if _, err := svc.CreateLog(p, 0, ""); err != nil {
				return nil, err
			}
			ids[p], _ = svc.Resolve(p)
		}
		if _, err := svc.Append(targetID, []byte("needle"), core.AppendOptions{Timestamped: true}); err != nil {
			return nil, err
		}
		entries := 0
		for svc.End() < blocks {
			op := tr.Next()
			if _, err := svc.Append(ids[op.Log], op.Data, core.AppendOptions{}); err != nil {
				return nil, err
			}
			entries++
		}
		if err := svc.Force(); err != nil {
			return nil, err
		}
		row.EntrymapBytesPerEntry = float64(svc.Stats().EntrymapBytes) / float64(entries)

		// Locate axis: cold FindPrev of the needle from the end.
		svc.FlushCache()
		svc.ResetCounters()
		cur, err := svc.OpenCursor("/target")
		if err != nil {
			return nil, err
		}
		cur.SeekEnd()
		e, err := cur.Prev()
		if err != nil {
			return nil, err
		}
		row.LocateReads = svc.DeviceStats().Reads
		row.Distance = svc.End() - 1 - e.Block
		row.TheoryLocate = analytic.Fig3LocateEntries(n, float64(row.Distance))

		// Recovery axis: crash and reopen.
		svc.Crash()
		svc2, err := core.Open([]wodev.Device{dev}, opt)
		if err != nil {
			return nil, err
		}
		rep := svc2.LastRecovery()
		row.RecoveryExamined = rep.EntrymapBlocksScanned + rep.EntrymapEntriesRead
		row.TheoryRecovery = analytic.Fig4RecoveryBlocks(n, float64(rep.SealedBlocks))
		svc2.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintDegreeSweep renders the ablation.
func PrintDegreeSweep(w io.Writer, rows []DegreeRow) {
	fprintf(w, "Degree-N ablation (§3.3–§3.5 trade-off; the paper picks N in 16–32)\n")
	fprintf(w, "%5s | %12s %12s | %12s %12s | %14s\n",
		"N", "locate-reads", "(theory)", "recover-blks", "(theory)", "emapB/entry")
	for _, r := range rows {
		fprintf(w, "%5d | %12d %12.1f | %12d %12.1f | %14.4f\n",
			r.N, r.LocateReads, r.TheoryLocate,
			r.RecoveryExamined, r.TheoryRecovery, r.EntrymapBytesPerEntry)
	}
	if len(rows) > 0 {
		fprintf(w, "(distance ~%d blocks on a %d-block volume)\n", rows[0].Distance, rows[0].Blocks)
	}
}
