package cluster

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/server"
	"clio/internal/wire"
)

// startNodeCfg is startNode for tests that need full Config control
// (TermPath, StreamQueue, ...). NodeID defaults to the listen address.
func startNodeCfg(t *testing.T, cfg Config, leader bool) (*Node, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NodeID == "" {
		cfg.NodeID = ln.Addr().String()
	}
	n, err := New(cfg)
	if err != nil {
		ln.Close()
		t.Fatalf("new node: %v", err)
	}
	if err := n.Start(leader); err != nil {
		ln.Close()
		t.Fatalf("start: %v", err)
	}
	go n.Serve(ln)
	t.Cleanup(n.Kill)
	return n, ln.Addr().String()
}

// dialRepl opens a connection posing as a leader and performs the
// replication handshake, returning the open connection and the follower's
// (or rival leader's) answer.
func dialRepl(t *testing.T, addr string, term uint64, leaderAddr string, shards int) (net.Conn, *wire.ReplHelloResp) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	h := &wire.ReplHello{Term: term, Epoch: 7, LeaderAddr: leaderAddr,
		Shards: uint32(shards), BlockSize: testBlockSize}
	status, _, payload := roundTrip(t, conn, wire.OpReplHello, 0, h.Encode(nil))
	if status != server.StatusOK {
		t.Fatalf("hello status = %d (%s)", status, respError(payload))
	}
	hr, err := wire.DecodeReplHelloResp(payload)
	if err != nil {
		t.Fatalf("decode hello resp: %v", err)
	}
	return conn, hr
}

func roundTrip(t *testing.T, conn net.Conn, op byte, seq uint64, payload []byte) (byte, uint64, []byte) {
	t.Helper()
	if err := server.WriteFrame(conn, op, seq, 0, payload); err != nil {
		t.Fatalf("write frame 0x%x: %v", op, err)
	}
	status, rseq, _, resp, err := server.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read frame 0x%x response: %v", op, err)
	}
	return status, rseq, resp
}

func replWritePayload(index uint64, fill byte) []byte {
	return (&wire.ReplWrite{Shard: 0, Dev: 0, Index: index,
		Data: bytes.Repeat([]byte{fill}, testBlockSize)}).Encode(nil)
}

// TestStaleLeaderStreamFenced: term arbitration must hold for a stream's
// whole life, not just its handshake. A stale leader whose connection
// survives a newer leader's handshake (asymmetric partition) must have its
// frames refused, or two leaders would interleave writes on the same
// write-once devices.
func TestStaleLeaderStreamFenced(t *testing.T) {
	addrs := freeAddrs(t, 2)
	devs, nvrams := freshShards(1)
	f := startNode(t, addrs[0], []string{addrs[1]}, devs, nvrams, false, false, nil)

	connA, hrA := dialRepl(t, f.addr, 1, "leader-a", 1)
	if !hrA.Accept {
		t.Fatalf("term-1 handshake refused: %s", hrA.Reason)
	}
	status, _, _ := roundTrip(t, connA, wire.OpReplWrite, 1, replWritePayload(0, 0xAA))
	if status != server.StatusOK {
		t.Fatalf("term-1 write before takeover: status %d", status)
	}

	// A new leader takes over at a higher term on a second connection.
	connB, hrB := dialRepl(t, f.addr, 2, "leader-b", 1)
	if !hrB.Accept {
		t.Fatalf("term-2 handshake refused: %s", hrB.Reason)
	}

	// The old leader's established stream is now fenced: its next frame is
	// refused (it would have been applied silently before the fix).
	status, _, payload := roundTrip(t, connA, wire.OpReplWrite, 2, replWritePayload(1, 0xAB))
	if status != server.StatusErr {
		t.Fatalf("stale leader frame status = %d, want StatusErr", status)
	}
	if msg := respError(payload); !strings.Contains(msg, "stale leader stream") {
		t.Fatalf("stale leader frame error = %q, want a stale-stream refusal", msg)
	}

	// The new leader's stream keeps working.
	status, _, payload = roundTrip(t, connB, wire.OpReplWrite, 1, replWritePayload(1, 0xBB))
	if status != server.StatusOK {
		t.Fatalf("term-2 write after takeover: status %d (%s)", status, respError(payload))
	}

	// And the stale leader's re-handshake learns the higher term, so it
	// steps down instead of retrying forever.
	connA2, hrA2 := dialRepl(t, f.addr, 1, "leader-a", 1)
	if hrA2.Accept {
		t.Fatal("stale term-1 re-handshake accepted")
	}
	if hrA2.Term != 2 {
		t.Fatalf("re-handshake reports term %d, want 2", hrA2.Term)
	}
	connA2.Close()
}

// TestSupersededStreamFenced: a reconnect's handshake supersedes the old
// connection even at the same term from the same leader — frames still
// buffered on the old connection must not race the new session's catch-up
// (a stale tail image applying late would regress the staged tail).
func TestSupersededStreamFenced(t *testing.T) {
	addrs := freeAddrs(t, 2)
	devs, nvrams := freshShards(1)
	f := startNode(t, addrs[0], []string{addrs[1]}, devs, nvrams, false, false, nil)

	connA, hrA := dialRepl(t, f.addr, 1, "leader-a", 1)
	if !hrA.Accept {
		t.Fatalf("first handshake refused: %s", hrA.Reason)
	}
	if status, _, payload := roundTrip(t, connA, wire.OpReplWrite, 1, replWritePayload(0, 0xAA)); status != server.StatusOK {
		t.Fatalf("write before reconnect: status %d (%s)", status, respError(payload))
	}

	// The same leader reconnects (fell behind, dropped conn, ...).
	if _, hrB := dialRepl(t, f.addr, 1, "leader-a", 1); !hrB.Accept {
		t.Fatalf("reconnect handshake refused: %s", hrB.Reason)
	}

	// The old connection is fenced the moment the new handshake lands.
	status, _, payload := roundTrip(t, connA, wire.OpReplWrite, 2, replWritePayload(1, 0xAB))
	if status != server.StatusErr {
		t.Fatalf("superseded stream frame status = %d, want StatusErr", status)
	}
	if msg := respError(payload); !strings.Contains(msg, "superseded") {
		t.Fatalf("superseded stream error = %q, want a supersession refusal", msg)
	}
}

// TestDuplicateWriteDivergence: a duplicate below the write point is legal
// (catch-up and live streaming overlap) but must be byte-identical — a
// conflicting image at an already-written index is divergence and must
// break the stream, not be swallowed.
func TestDuplicateWriteDivergence(t *testing.T) {
	addrs := freeAddrs(t, 2)
	devs, nvrams := freshShards(1)
	f := startNode(t, addrs[0], []string{addrs[1]}, devs, nvrams, false, false, nil)

	conn, hr := dialRepl(t, f.addr, 1, "leader-a", 1)
	if !hr.Accept {
		t.Fatalf("handshake refused: %s", hr.Reason)
	}
	for i, fill := range []byte{0x11, 0x22} {
		if status, _, payload := roundTrip(t, conn, wire.OpReplWrite, uint64(i+1), replWritePayload(uint64(i), fill)); status != server.StatusOK {
			t.Fatalf("write %d: status %d (%s)", i, status, respError(payload))
		}
	}

	// Byte-identical duplicate: idempotent, accepted.
	if status, _, payload := roundTrip(t, conn, wire.OpReplWrite, 3, replWritePayload(0, 0x11)); status != server.StatusOK {
		t.Fatalf("identical duplicate: status %d (%s)", status, respError(payload))
	}

	// Conflicting image at the same index: divergence, stream must break.
	status, _, payload := roundTrip(t, conn, wire.OpReplWrite, 4, replWritePayload(0, 0x99))
	if status != server.StatusErr {
		t.Fatalf("conflicting duplicate status = %d, want StatusErr", status)
	}
	if msg := respError(payload); !strings.Contains(msg, "divergent duplicate") {
		t.Fatalf("conflicting duplicate error = %q, want a divergence refusal", msg)
	}
}

// TestTermPersistence: the highest seen term must survive a restart, so a
// rebooted node cannot be talked back into following a stale leader, and a
// node restarted as leader claims a term above everything it has seen.
func TestTermPersistence(t *testing.T) {
	termPath := filepath.Join(t.TempDir(), "term")
	devs, nvrams := freshShards(1)
	cfg := func() Config {
		return Config{
			Peers:    []string{"unused:1"},
			Quorum:   2,
			Devices:  devs,
			NVRAMs:   nvrams,
			Opts:     core.Options{BlockSize: testBlockSize},
			TermPath: termPath,
			Logf:     t.Logf,
		}
	}
	n1, addr1 := startNodeCfg(t, cfg(), false)
	if _, hr := dialRepl(t, addr1, 5, "leader-a", 1); !hr.Accept {
		t.Fatalf("term-5 handshake refused: %s", hr.Reason)
	}
	if got := n1.Term(); got != 5 {
		t.Fatalf("term after handshake = %d, want 5", got)
	}
	n1.Kill()

	// Restarted as follower: the term survives, so a stale leader from
	// before the reboot is still refused.
	n2, addr2 := startNodeCfg(t, cfg(), false)
	if got := n2.Term(); got != 5 {
		t.Fatalf("term after restart = %d, want 5", got)
	}
	if _, hr := dialRepl(t, addr2, 4, "leader-old", 1); hr.Accept {
		t.Fatal("restarted node accepted a stale term-4 leader")
	} else if hr.Term != 5 {
		t.Fatalf("refusal reports term %d, want 5", hr.Term)
	}
	n2.Kill()

	// Restarted as leader (operator action): it must mint a term above
	// everything it has seen, not reuse a stale one.
	fresh, freshNV := freshShards(1)
	lcfg := cfg()
	lcfg.Devices, lcfg.NVRAMs, lcfg.Create = fresh, freshNV, true
	n3, _ := startNodeCfg(t, lcfg, true)
	if got := n3.Term(); got != 6 {
		t.Fatalf("restart-as-leader term = %d, want 6", got)
	}
}

// TestEqualTermRivalRefused: one leader per term. A follower already
// streaming from a leader refuses a different claimant of the same term —
// two concurrent promotions must not interleave two orderings.
func TestEqualTermRivalRefused(t *testing.T) {
	addrs := freeAddrs(t, 2)
	devs, nvrams := freshShards(1)
	f := startNode(t, addrs[0], []string{addrs[1]}, devs, nvrams, false, false, nil)

	if _, hr := dialRepl(t, f.addr, 3, "leader-a", 1); !hr.Accept {
		t.Fatalf("leader-a handshake refused: %s", hr.Reason)
	}
	if _, hr := dialRepl(t, f.addr, 3, "leader-b", 1); hr.Accept {
		t.Fatal("same-term rival leader-b accepted")
	} else if !strings.Contains(hr.Reason, "already following") {
		t.Fatalf("rival refusal reason = %q", hr.Reason)
	}
	// The incumbent reconnecting at the same term is fine...
	if _, hr := dialRepl(t, f.addr, 3, "leader-a", 1); !hr.Accept {
		t.Fatalf("incumbent reconnect refused: %s", hr.Reason)
	}
	// ...and a genuinely higher term always wins.
	if _, hr := dialRepl(t, f.addr, 4, "leader-b", 1); !hr.Accept {
		t.Fatalf("higher-term leader-b refused: %s", hr.Reason)
	}
}

// TestSameTermLeaderArbitration: two leaders at the same term resolve
// deterministically — the greater advertised address keeps leadership, the
// other steps down — instead of refusing each other forever.
func TestSameTermLeaderArbitration(t *testing.T) {
	devs, nvrams := freshShards(1)
	n, addr := startNodeCfg(t, Config{
		Peers:   []string{"unused:1"},
		Quorum:  2,
		Devices: devs,
		NVRAMs:  nvrams,
		Opts:    core.Options{BlockSize: testBlockSize},
		Create:  true,
		Logf:    t.Logf,
	}, true)
	if n.Term() != 1 {
		t.Fatalf("fresh leader term = %d, want 1", n.Term())
	}

	// A same-term rival with a lesser address loses: we stay leader.
	// "!" sorts below any digit, so it loses to the 127.0.0.1:* NodeID.
	if _, hr := dialRepl(t, addr, 1, "!lesser-rival", 1); hr.Accept {
		t.Fatal("leader accepted a rival's stream")
	} else if !strings.Contains(hr.Reason, "node is leader") {
		t.Fatalf("lesser rival refusal = %q", hr.Reason)
	}
	if got := n.Status().Role; got != "leader" {
		t.Fatalf("role after lesser rival = %s, want leader", got)
	}

	// A same-term rival with a greater address wins: we step down to it.
	// "~" sorts above any digit, so it beats the 127.0.0.1:* NodeID.
	if _, hr := dialRepl(t, addr, 1, "~greater-rival", 1); hr.Accept {
		t.Fatal("leader accepted a rival's stream")
	} else if !strings.Contains(hr.Reason, "stepping down") {
		t.Fatalf("greater rival refusal = %q", hr.Reason)
	}
	waitFor(t, "arbitration step-down", 10*time.Second, func() bool {
		return n.Status().Role == "follower"
	})
	st := n.Status()
	if st.Term != 1 || st.LeaderAddr != "~greater-rival" {
		t.Fatalf("after step-down: term %d leader %q, want term 1 leader ~greater-rival", st.Term, st.LeaderAddr)
	}
	if st.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", st.Demotions)
	}
}

// gatedConn pauses writes while the test holds mu, stalling the leader's
// replication sender without killing the connection.
type gatedConn struct {
	net.Conn
	mu *sync.Mutex
}

func (c *gatedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	//lint:ignore SA2001 the mutex is a pure gate: hold-and-release.
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// TestSlowFollowerStaysAliveThroughCatchup: a follower that falls off the
// stream queue is only slow, not down — the sender must keep it counted
// live (the pre-gate's quorum input) across the reconnect-with-catch-up
// instead of flapping it dead on every drop.
func TestSlowFollowerStaysAliveThroughCatchup(t *testing.T) {
	addrs := freeAddrs(t, 2)
	var pause sync.Mutex
	gatedDial := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return &gatedConn{Conn: c, mu: &pause}, nil
	}

	ldevs, lnv := freshShards(1)
	fdevs, fnv := freshShards(1)
	lln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	leader, err := New(Config{
		NodeID:  lln.Addr().String(),
		Peers:   []string{addrs[1]},
		Quorum:  1, // liveness flag under test, not the ack gate
		Devices: ldevs,
		NVRAMs:  lnv,
		Opts:    core.Options{BlockSize: testBlockSize},
		Create:  true,
		// A tiny queue makes the slow follower fall off the stream quickly.
		StreamQueue: 4,
		Dial:        gatedDial,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Start(true); err != nil {
		t.Fatal(err)
	}
	go leader.Serve(lln)
	t.Cleanup(leader.Kill)
	fol := startNode(t, addrs[1], []string{addrs[0]}, fdevs, fnv, false, false, nil)

	peerAlive := func() bool {
		for _, p := range leader.Status().Peers {
			return p.Alive
		}
		return false
	}
	catchupBlocks := func() int64 {
		for _, p := range leader.Status().Peers {
			return p.CatchupBlocks
		}
		return 0
	}
	waitFor(t, "follower to come alive", 10*time.Second, func() bool { return peerAlive() })
	baseline := catchupBlocks()

	// Stall the sender and write enough to overflow its 4-frame queue.
	pause.Lock()
	ctx := context.Background()
	c := testClient(t, 31, []string{lln.Addr().String()}, nil)
	id, err := c.CreateLog(ctx, "/slowlog", 0o644, "test")
	if err != nil {
		pause.Unlock()
		t.Fatalf("create: %v", err)
	}
	big := strings.Repeat("z", testBlockSize+16) // > block size: every append seals
	for i := 0; i < 12; i++ {
		if _, err := c.Append(ctx, id, []byte(big), client.AppendOptions{Forced: true}); err != nil {
			pause.Unlock()
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if !peerAlive() {
		t.Error("peer marked dead while the sender was merely stalled")
	}
	pause.Unlock()

	// The dropped sender restarts with a catch-up; the peer must stay
	// counted live the whole way through.
	waitFor(t, "fell-behind catch-up to run", 10*time.Second, func() bool {
		if !peerAlive() {
			t.Fatal("peer flapped dead during fell-behind catch-up")
		}
		return catchupBlocks() > baseline
	})
	defer func() {
		if t.Failed() {
			t.Logf("leader status: %+v", leader.Status())
			t.Logf("follower status: %+v", fol.node.Status())
		}
	}()
	waitFor(t, "follower to reconverge", 10*time.Second, func() bool {
		if !peerAlive() {
			t.Fatal("peer flapped dead after fell-behind catch-up")
		}
		return shardEndsEqual(leader.Status().ShardEnds, fol.node.Status().ShardEnds)
	})
}
