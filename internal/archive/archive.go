// Package archive implements incremental backup and cold tiering of volume
// sequences — operationalizing the paper's §1 observation that conventional
// "backup procedures involve copying whole files, which is particularly
// inefficient ... for large log files, since only the tail end of the file
// will have changed since the last backup." A log volume is append-only, so
// an archive only ever copies the blocks written since the previous run;
// everything earlier is immutable and already captured.
//
// Storage is abstracted behind the Backend interface: a named-object store
// with ranged reads and writes. The directory implementation (Dir) holds one
// object per volume (its raw block image, growing monotonically) plus a
// manifest object recording how many blocks of each volume have been
// captured. The same backend carries both use cases:
//
//   - clio backup / verify-backup archive a whole store incrementally, and
//     Restore materializes write-once devices from the archive;
//   - the compactor demotes fully-compacted sealed volumes to a cold tier
//     (BackupVolume) and serves reads of demoted blocks straight from the
//     backend (ReadVolumeBlock).
package archive

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clio/internal/volume"
	"clio/internal/wodev"
)

// ErrNotArchive indicates a backend without a manifest.
var ErrNotArchive = errors.New("archive: not an archive")

// ErrNotFound indicates a named object absent from the backend.
var ErrNotFound = errors.New("archive: object not found")

// Backend is a named-object store holding sealed volume images. Volume
// images only ever grow (write-once media), so WriteAt extends objects
// in place; Put replaces an object atomically (used for the manifest).
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put atomically replaces (or creates) the named object.
	Put(ctx context.Context, name string, data []byte) error
	// WriteAt writes data at byte offset off, extending the object as
	// needed (a missing object is created).
	WriteAt(ctx context.Context, name string, off int64, data []byte) error
	// ReadAt reads len(dst) bytes at byte offset off. Short objects return
	// the bytes available and io.ErrUnexpectedEOF semantics are not
	// required: n < len(dst) with a nil error is allowed at end of object.
	// A missing object returns ErrNotFound.
	ReadAt(ctx context.Context, name string, off int64, dst []byte) (int, error)
	// Size returns the object's length in bytes, or ErrNotFound.
	Size(ctx context.Context, name string) (int64, error)
	// List returns the names of every object, sorted.
	List(ctx context.Context) ([]string, error)
	// Delete removes the named object; deleting a missing object is not an
	// error.
	Delete(ctx context.Context, name string) error
}

// Dir is the directory-backed Backend: one file per object. The directory
// is created lazily on first write, so configuring a cold tier costs
// nothing until a volume is actually demoted.
type Dir struct {
	root string
	mu   sync.Mutex // serializes mkdir and Put's tmp+rename
}

// NewDir returns a Backend over the given directory.
func NewDir(root string) *Dir { return &Dir{root: root} }

// Root returns the backing directory path.
func (d *Dir) Root() string { return d.root }

func (d *Dir) ensure() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return os.MkdirAll(d.root, 0o755)
}

func (d *Dir) path(name string) string { return filepath.Join(d.root, name) }

func (d *Dir) Put(ctx context.Context, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.ensure(); err != nil {
		return err
	}
	tmp := d.path(name + ".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, d.path(name))
}

func (d *Dir) WriteAt(ctx context.Context, name string, off int64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := d.ensure(); err != nil {
		return err
	}
	f, err := os.OpenFile(d.path(name), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, off); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (d *Dir) ReadAt(ctx context.Context, name string, off int64, dst []byte) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	f, err := os.Open(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := f.ReadAt(dst, off)
	if errors.Is(err, io.EOF) {
		err = nil
	}
	return n, err
}

func (d *Dir) Size(ctx context.Context, name string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fi, err := os.Stat(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (d *Dir) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(d.root)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

func (d *Dir) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := os.Remove(d.path(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Mem is the in-memory Backend, for tests and mem-backed stores (it lets a
// reopened in-memory service keep its cold tier across simulated crashes).
type Mem struct {
	mu   sync.Mutex
	objs map[string][]byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{objs: make(map[string][]byte)} }

func (m *Mem) Put(ctx context.Context, name string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objs[name] = append([]byte(nil), data...)
	return nil
}

func (m *Mem) WriteAt(ctx context.Context, name string, off int64, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	obj := m.objs[name]
	end := int(off) + len(data)
	if end > len(obj) {
		grown := make([]byte, end)
		copy(grown, obj)
		obj = grown
	}
	copy(obj[off:], data)
	m.objs[name] = obj
	return nil
}

func (m *Mem) ReadAt(ctx context.Context, name string, off int64, dst []byte) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.objs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off >= int64(len(obj)) {
		return 0, nil
	}
	return copy(dst, obj[off:]), nil
}

func (m *Mem) Size(ctx context.Context, name string) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.objs[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(obj)), nil
}

func (m *Mem) List(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.objs))
	for name := range m.objs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

func (m *Mem) Delete(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objs, name)
	return nil
}

const manifestName = "MANIFEST"

// Result reports one backup run.
type Result struct {
	// VolumesSeen is the number of volumes examined.
	VolumesSeen int
	// BlocksCopied is the number of blocks copied this run — the increment.
	BlocksCopied int
	// BlocksSkipped is the number of already-archived blocks not re-read.
	BlocksSkipped int
	// ColdVolumes is the number of demoted volumes adopted from a store's
	// cold tier into the backup archive (clio backup carries them along so
	// the archive holds the complete sequence).
	ColdVolumes int
}

// volState records one volume's archived extent and geometry.
type volState struct {
	blocks   int // blocks archived
	capacity int // device capacity, needed to restore global offsets
}

// manifest maps volume index → archived state.
type manifest map[uint32]volState

func loadManifest(ctx context.Context, be Backend) (manifest, error) {
	m := manifest{}
	size, err := be.Size(ctx, manifestName)
	if errors.Is(err, ErrNotFound) {
		return m, nil
	}
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if _, err := be.ReadAt(ctx, manifestName, 0, data); err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var idx uint32
		var blocks, capacity int
		if _, err := fmt.Sscanf(line, "%d %d %d", &idx, &blocks, &capacity); err != nil {
			return nil, fmt.Errorf("archive: bad manifest line %q", line)
		}
		m[idx] = volState{blocks: blocks, capacity: capacity}
	}
	return m, nil
}

func (m manifest) save(ctx context.Context, be Backend) error {
	var sb strings.Builder
	idxs := make([]int, 0, len(m))
	for idx := range m {
		idxs = append(idxs, int(idx))
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		st := m[uint32(idx)]
		fmt.Fprintf(&sb, "%d %d %d\n", idx, st.blocks, st.capacity)
	}
	return be.Put(ctx, manifestName, []byte(sb.String()))
}

func volName(idx uint32) string {
	return "arch-" + strconv.FormatUint(uint64(idx), 10) + ".vol"
}

// backupDevice archives dev's blocks [have, written) into the backend and
// returns the updated extent. Invalidated blocks are stored as all-ones (a
// write-once medium expresses invalidation by burning every remaining bit).
func backupDevice(ctx context.Context, be Backend, dev wodev.Device, idx uint32, have, written int) (int, error) {
	bs := dev.BlockSize()
	buf := make([]byte, bs)
	ones := make([]byte, bs)
	for i := range ones {
		ones[i] = 0xFF
	}
	name := volName(idx)
	for b := have; b < written; b++ {
		rerr := dev.ReadBlock(b, buf)
		src := buf
		switch {
		case rerr == nil:
		case errors.Is(rerr, wodev.ErrInvalidated):
			src = ones
		default:
			return b - have, fmt.Errorf("archive: volume %d block %d: %w", idx, b, rerr)
		}
		if err := be.WriteAt(ctx, name, int64(b)*int64(bs), src); err != nil {
			return b - have, err
		}
	}
	return written - have, nil
}

// Backup copies every block not yet archived from the mounted volumes into
// the backend. Devices may be any subset of the sequence; volumes already
// fully archived cost one manifest lookup and no device reads.
func Backup(ctx context.Context, devs []wodev.Device, be Backend) (*Result, error) {
	man, err := loadManifest(ctx, be)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, dev := range devs {
		hdr, err := volume.ReadHeader(dev)
		if err != nil {
			return nil, err
		}
		res.VolumesSeen++
		written, err := wodev.FindEnd(dev)
		if err != nil {
			return nil, err
		}
		have := man[hdr.Index].blocks
		res.BlocksSkipped += have
		if written <= have {
			continue
		}
		n, err := backupDevice(ctx, be, dev, hdr.Index, have, written)
		if err != nil {
			return nil, err
		}
		res.BlocksCopied += n
		man[hdr.Index] = volState{blocks: written, capacity: dev.Capacity()}
	}
	if err := man.save(ctx, be); err != nil {
		return nil, err
	}
	return res, nil
}

// BackupVolume archives one whole volume into the backend — the demotion
// path. It is idempotent: blocks already captured per the manifest are not
// re-read, so a crash between archiving and committing the demotion simply
// redoes the remainder. Returns the blocks copied this call.
func BackupVolume(ctx context.Context, be Backend, dev wodev.Device) (int, error) {
	hdr, err := volume.ReadHeader(dev)
	if err != nil {
		return 0, err
	}
	written, err := wodev.FindEnd(dev)
	if err != nil {
		return 0, err
	}
	man, err := loadManifest(ctx, be)
	if err != nil {
		return 0, err
	}
	have := man[hdr.Index].blocks
	if written <= have {
		return 0, nil
	}
	n, err := backupDevice(ctx, be, dev, hdr.Index, have, written)
	if err != nil {
		return n, err
	}
	man[hdr.Index] = volState{blocks: written, capacity: dev.Capacity()}
	if err := man.save(ctx, be); err != nil {
		return n, err
	}
	return n, nil
}

// HasVolume reports whether the backend's manifest covers at least blocks
// device blocks of volume idx — the demotion sweep's check that an image is
// safely archived before the local copy is released.
func HasVolume(ctx context.Context, be Backend, idx uint32, blocks int) (bool, error) {
	man, err := loadManifest(ctx, be)
	if err != nil {
		return false, err
	}
	return man[idx].blocks >= blocks, nil
}

// ReadVolumeBlock reads one device block of an archived volume image into
// dst — the cold read-through primitive. A block stored as all-ones reports
// wodev.ErrInvalidated, matching what the original device would say.
func ReadVolumeBlock(ctx context.Context, be Backend, idx uint32, devBlock int, dst []byte) error {
	n, err := be.ReadAt(ctx, volName(idx), int64(devBlock)*int64(len(dst)), dst)
	if err != nil {
		return err
	}
	if n < len(dst) {
		return fmt.Errorf("archive: volume %d block %d: short image (%d of %d bytes)",
			idx, devBlock, n, len(dst))
	}
	if allOnes(dst) {
		return fmt.Errorf("archive: volume %d block %d: %w", idx, devBlock, wodev.ErrInvalidated)
	}
	return nil
}

// Adopt copies volumes archived in src but missing (or shorter) in dst,
// merging the manifests — how clio backup carries a store's cold tier into
// the backup archive. Returns the volumes and blocks adopted.
func Adopt(ctx context.Context, dst, src Backend) (int, int, error) {
	sman, err := loadManifest(ctx, src)
	if err != nil {
		return 0, 0, err
	}
	if len(sman) == 0 {
		return 0, 0, nil
	}
	dman, err := loadManifest(ctx, dst)
	if err != nil {
		return 0, 0, err
	}
	vols, blocks := 0, 0
	idxs := make([]int, 0, len(sman))
	for idx := range sman {
		idxs = append(idxs, int(idx))
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		idx := uint32(i)
		st := sman[idx]
		have := dman[idx]
		if have.blocks >= st.blocks {
			continue
		}
		size, err := src.Size(ctx, volName(idx))
		if err != nil {
			return vols, blocks, err
		}
		bs := int(size) / st.blocks
		buf := make([]byte, bs)
		for b := have.blocks; b < st.blocks; b++ {
			if _, err := src.ReadAt(ctx, volName(idx), int64(b)*int64(bs), buf); err != nil {
				return vols, blocks, err
			}
			if err := dst.WriteAt(ctx, volName(idx), int64(b)*int64(bs), buf); err != nil {
				return vols, blocks, err
			}
			blocks++
		}
		dman[idx] = st
		vols++
	}
	if err := dman.save(ctx, dst); err != nil {
		return vols, blocks, err
	}
	return vols, blocks, nil
}

// Restore materializes in-memory write-once devices from the archive, in
// volume-index order, ready to pass to core.Open or scrub.Volumes. Each
// device is restored with its original capacity — the successor volumes'
// global offsets depend on it.
func Restore(ctx context.Context, be Backend) ([]wodev.Device, error) {
	man, err := loadManifest(ctx, be)
	if err != nil {
		return nil, err
	}
	if len(man) == 0 {
		return nil, ErrNotArchive
	}
	idxs := make([]int, 0, len(man))
	for idx := range man {
		idxs = append(idxs, int(idx))
	}
	sort.Ints(idxs)
	var out []wodev.Device
	for _, idx := range idxs {
		st := man[uint32(idx)]
		if st.blocks == 0 {
			continue
		}
		size, err := be.Size(ctx, volName(uint32(idx)))
		if err != nil {
			return nil, err
		}
		data := make([]byte, size)
		if _, err := be.ReadAt(ctx, volName(uint32(idx)), 0, data); err != nil {
			return nil, err
		}
		blocks := st.blocks
		blockSize := len(data) / blocks
		if blockSize == 0 || len(data)%blocks != 0 {
			return nil, fmt.Errorf("archive: volume %d image inconsistent (%d bytes, %d blocks)", idx, len(data), blocks)
		}
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: st.capacity})
		for b := 0; b < blocks; b++ {
			img := data[b*blockSize : (b+1)*blockSize]
			if allOnes(img) {
				if err := dev.Invalidate(b); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := dev.AppendBlock(img); err != nil {
				return nil, fmt.Errorf("archive: restore volume %d block %d: %w", idx, b, err)
			}
		}
		out = append(out, dev)
	}
	return out, nil
}

func allOnes(b []byte) bool {
	for _, c := range b {
		if c != 0xFF {
			return false
		}
	}
	return true
}
