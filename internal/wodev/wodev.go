// Package wodev implements the write-once log device substrate the Clio log
// service is built on (paper §2: "a non-volatile, block-oriented storage
// device that supports random access for reading, and append-only write
// access").
//
// The paper's log device was a 12" write-once optical disk (with magnetic
// disk simulating it in the measured configuration). This package provides
// the same contract in simulation:
//
//   - blocks are written strictly sequentially and exactly once; any attempt
//     to rewrite a block fails at the device level, mirroring the paper's
//     preference for devices "physically incapable of writing anywhere except
//     at the end of the written portion of the volume";
//   - random-access reads of any written block;
//   - a block may be *invalidated* — overwritten with all one bits — which is
//     the single sanctioned exception, used to fence off corrupted blocks
//     (§2.3.2);
//   - optionally, the device does not report where the written portion ends,
//     forcing recovery code to binary-search for the end (§2.3.1).
//
// Implementations: MemDevice (in-memory), FileDevice (file-backed, one file
// per volume). Wrappers: Faulty (fault injection) and Timed (virtual-clock
// charging) compose over any Device.
package wodev

import (
	"errors"
	"fmt"
	"sync"

	"clio/internal/faults"
)

// Device errors.
var (
	// ErrUnwritten is returned when reading a block that has not been written.
	ErrUnwritten = errors.New("wodev: block not yet written")
	// ErrRewrite is returned on any attempt to write a block twice.
	ErrRewrite = errors.New("wodev: block already written (write-once violation)")
	// ErrFull is returned when appending to a device whose capacity is exhausted.
	ErrFull = errors.New("wodev: device full")
	// ErrBadBlockSize is returned when a write's length differs from the block size.
	ErrBadBlockSize = errors.New("wodev: data length != device block size")
	// ErrInvalidated is returned when reading a block that has been invalidated.
	ErrInvalidated = errors.New("wodev: block invalidated")
	// ErrOutOfRange is returned for block indices beyond device capacity.
	ErrOutOfRange = errors.New("wodev: block index out of range")
	// ErrCorrupt is returned when appending onto a damaged unwritten block.
	ErrCorrupt = errors.New("wodev: block damaged, cannot be written")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("wodev: device closed")
	// ErrTransient is returned by fault-injecting wrappers (Flaky) for
	// per-operation soft failures — the operation did not happen, and a
	// retry may succeed. It classifies as faults.Transient, unlike the
	// permanent media errors above.
	ErrTransient = faults.New(faults.Transient, "wodev: transient device error")
)

// EndUnknown is returned by Device.Written when the device cannot report the
// end of its written portion; callers must probe with ReadBlock (the paper's
// binary search, §2.3.1).
const EndUnknown = -1

// Stats counts device operations. Counters are cumulative and monotone.
type Stats struct {
	Reads         int64 // blocks read
	Appends       int64 // blocks appended
	Invalidations int64 // blocks invalidated
	Seeks         int64 // reads that were not sequential with the previous access
	Probes        int64 // reads of unwritten blocks (end-finding probes)
}

// Device is a write-once block device.
//
// Implementations must be safe for concurrent use.
type Device interface {
	// BlockSize returns the device block size in bytes.
	BlockSize() int
	// Capacity returns the total number of blocks on the volume.
	Capacity() int
	// Written returns the number of blocks written so far (the next append
	// index), or EndUnknown if the device cannot report it.
	Written() int
	// ReadBlock reads block idx into dst, which must be at least BlockSize
	// bytes. It returns ErrUnwritten for unwritten blocks, ErrInvalidated for
	// invalidated blocks (dst is filled with 0xFF in that case), and garbage
	// data with a nil error for blocks damaged after being written.
	ReadBlock(idx int, dst []byte) error
	// AppendBlock writes data as the next sequential block and returns its
	// index. len(data) must equal BlockSize.
	AppendBlock(data []byte) (int, error)
	// WriteAt writes data at exactly the given index, which must equal the
	// current end of the written portion. This is AppendBlock with an
	// explicit position check, used when the caller tracks the end itself.
	WriteAt(idx int, data []byte) error
	// Invalidate overwrites block idx with all one bits. Both written and
	// unwritten blocks may be invalidated (§2.3.2).
	Invalidate(idx int) error
	// Stats returns a snapshot of the operation counters.
	Stats() Stats
	// ResetStats zeroes the operation counters.
	ResetStats()
	// Close releases resources. Further operations return ErrClosed.
	Close() error
}

type blockState uint8

const (
	stateUnwritten blockState = iota
	stateWritten
	stateInvalid
	stateDamagedUnwritten // unwritten block scribbled by a fault: unwritable
	stateDamagedWritten   // written block scribbled by a fault: reads garbage
)

// MemDevice is an in-memory write-once device.
type MemDevice struct {
	mu        sync.Mutex
	blockSize int
	capacity  int
	reportEnd bool
	closed    bool
	written   int
	state     []blockState
	data      map[int][]byte
	stats     Stats
	lastRead  int
}

// MemOptions configures a MemDevice.
type MemOptions struct {
	// BlockSize in bytes; defaults to 1024 (the paper's measured block size).
	BlockSize int
	// Capacity in blocks; defaults to 1<<20.
	Capacity int
	// ReportEndUnknown makes Written return EndUnknown, forcing recovery to
	// binary-search for the end of the written portion.
	ReportEndUnknown bool
}

// DefaultBlockSize is the paper's measured configuration (1 kbyte blocks).
const DefaultBlockSize = 1024

// NewMem returns a new in-memory write-once device.
func NewMem(opt MemOptions) *MemDevice {
	if opt.BlockSize <= 0 {
		opt.BlockSize = DefaultBlockSize
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 1 << 20
	}
	return &MemDevice{
		blockSize: opt.BlockSize,
		capacity:  opt.Capacity,
		reportEnd: !opt.ReportEndUnknown,
		state:     make([]blockState, opt.Capacity),
		data:      make(map[int][]byte),
		lastRead:  -2,
	}
}

// BlockSize implements Device.
func (d *MemDevice) BlockSize() int { return d.blockSize }

// Capacity implements Device.
func (d *MemDevice) Capacity() int { return d.capacity }

// Written implements Device.
func (d *MemDevice) Written() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.reportEnd {
		return EndUnknown
	}
	return d.written
}

// ReadBlock implements Device.
func (d *MemDevice) ReadBlock(idx int, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if idx < 0 || idx >= d.capacity {
		return ErrOutOfRange
	}
	if len(dst) < d.blockSize {
		return fmt.Errorf("wodev: read buffer %d < block size %d", len(dst), d.blockSize)
	}
	d.stats.Reads++
	if idx != d.lastRead+1 {
		d.stats.Seeks++
	}
	d.lastRead = idx
	switch d.state[idx] {
	case stateUnwritten, stateDamagedUnwritten:
		d.stats.Probes++
		return ErrUnwritten
	case stateInvalid:
		for i := 0; i < d.blockSize; i++ {
			dst[i] = 0xFF
		}
		return ErrInvalidated
	default:
		copy(dst, d.data[idx])
		return nil
	}
}

// AppendBlock implements Device.
func (d *MemDevice) AppendBlock(data []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appendLocked(data)
}

func (d *MemDevice) appendLocked(data []byte) (int, error) {
	if d.closed {
		return 0, ErrClosed
	}
	if len(data) != d.blockSize {
		return 0, ErrBadBlockSize
	}
	// Skip over blocks that were invalidated while still unwritten: they are
	// consumed but can never hold data.
	for d.written < d.capacity && d.state[d.written] == stateInvalid {
		d.written++
	}
	if d.written >= d.capacity {
		return 0, ErrFull
	}
	idx := d.written
	if d.state[idx] == stateDamagedUnwritten {
		return idx, ErrCorrupt
	}
	if d.state[idx] != stateUnwritten {
		return 0, ErrRewrite
	}
	cp := make([]byte, d.blockSize)
	copy(cp, data)
	d.data[idx] = cp
	d.state[idx] = stateWritten
	d.written = idx + 1
	d.stats.Appends++
	return idx, nil
}

// WriteAt implements Device.
func (d *MemDevice) WriteAt(idx int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if idx < 0 || idx >= d.capacity {
		return ErrOutOfRange
	}
	if d.state[idx] == stateWritten || d.state[idx] == stateDamagedWritten || idx < d.written {
		return ErrRewrite
	}
	if idx != d.written {
		return fmt.Errorf("wodev: write at %d but end of written portion is %d: %w", idx, d.written, ErrRewrite)
	}
	_, err := d.appendLocked(data)
	return err
}

// Invalidate implements Device.
func (d *MemDevice) Invalidate(idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if idx < 0 || idx >= d.capacity {
		return ErrOutOfRange
	}
	d.state[idx] = stateInvalid
	delete(d.data, idx)
	d.stats.Invalidations++
	// Invalidating the block at the write point consumes it.
	for d.written < d.capacity && d.state[d.written] == stateInvalid {
		d.written++
	}
	return nil
}

// Stats implements Device.
func (d *MemDevice) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements Device.
func (d *MemDevice) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.lastRead = -2
}

// Close implements Device.
func (d *MemDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Damage simulates a hardware/software fault scribbling garbage over block
// idx, bypassing the write-once guard (this models the failures of §2.3.2,
// not a legal device operation). A written block keeps stateDamagedWritten
// and subsequently reads back garbage with a nil error; an unwritten block
// becomes unwritable and AppendBlock over it returns ErrCorrupt.
func (d *MemDevice) Damage(idx int, garbage []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if idx < 0 || idx >= d.capacity {
		return ErrOutOfRange
	}
	switch d.state[idx] {
	case stateWritten, stateDamagedWritten:
		g := make([]byte, d.blockSize)
		copy(g, garbage)
		d.data[idx] = g
		d.state[idx] = stateDamagedWritten
	case stateInvalid:
		// Invalidated blocks are all 1s and stay that way.
	default:
		d.state[idx] = stateDamagedUnwritten
	}
	return nil
}

// SetReportEnd toggles whether Written reports the true end (used by recovery
// tests to exercise the binary-search path on an already-written device).
func (d *MemDevice) SetReportEnd(ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reportEnd = ok
}

// FindEnd locates the end of the written portion of dev by binary search over
// probing reads, as §2.3.1 prescribes when the device cannot be queried
// directly. It returns the number of written-or-invalidated blocks from the
// start of the volume. The written portion of a write-once volume is a
// prefix, so probing is sound. The scratch buffer is reused across probes.
func FindEnd(dev Device) (int, error) {
	if n := dev.Written(); n != EndUnknown {
		return n, nil
	}
	buf := make([]byte, dev.BlockSize())
	probe := func(i int) (written bool, err error) {
		err = dev.ReadBlock(i, buf)
		switch {
		case err == nil, errors.Is(err, ErrInvalidated):
			return true, nil
		case errors.Is(err, ErrUnwritten):
			return false, nil
		default:
			return false, err
		}
	}
	lo, hi := 0, dev.Capacity() // end is in (lo-1, hi]; invariant: blocks < lo written
	// First check the empty-volume case cheaply.
	if ok, err := probe(0); err != nil {
		return 0, err
	} else if !ok {
		return 0, nil
	}
	lo = 1
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}
