// Package obs is the unified observability substrate of the Clio
// reproduction: a lock-cheap metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms), context-light span tracing with ring
// buffers of recent and slow operations, and an HTTP admin surface exposing
// both (plus pprof) from a running cliod.
//
// The paper's entire evaluation (§3) is built from operation counters —
// device reads, entrymap entries examined, blocks scanned at recovery — that
// previously lived in five disconnected Stats structs readable only
// in-process. The registry gives them one address space: every layer
// registers its counters once and a single scrape sees the whole system.
//
// # Time domains
//
// Histograms are unit-agnostic int64-nanosecond recorders, so the same type
// serves both time domains the repository runs in: wall-clock time (the
// concurrent hot path, PR 2) and vclock-simulated time (the paper's §3 cost
// model). Core registers separate families per domain (`*_seconds` for wall
// clock, `*_vtime_seconds` for the virtual clock) rather than mixing units
// within one series.
//
// # Cost discipline
//
// Recording is a few atomic adds; a nil *Histogram, *Counter or *Trace is a
// no-op receiver, so un-instrumented deployments (a Service whose
// RegisterMetrics was never called) pay only a pointer load per site.
// Instrumentation never performs device, cache or entrymap operations and
// never charges the vclock: the modeled workloads of cmd/experiments are
// byte-identical with or without a registry attached.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricType enumerates the exposition types.
type MetricType uint8

const (
	// TypeCounter is a monotonically increasing value.
	TypeCounter MetricType = iota
	// TypeGauge is a value that can go up and down.
	TypeGauge
	// TypeHistogram is a fixed-bucket distribution.
	TypeHistogram
)

// String returns the Prometheus exposition name of the type.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefaultLatencyBuckets spans 1 µs to ~4.2 s in powers of four — wide enough
// for both wall-clock syscall latencies and vclock device seeks (~150 ms).
var DefaultLatencyBuckets = func() []time.Duration {
	out := make([]time.Duration, 12)
	d := time.Microsecond
	for i := range out {
		out[i] = d
		d *= 4
	}
	return out
}()

// Histogram is a fixed-bucket latency distribution with atomic buckets. It
// records int64 nanoseconds, so it can carry wall-clock durations or
// vclock-simulated durations alike; the exposition renders seconds. A nil
// *Histogram ignores observations.
type Histogram struct {
	uppers []time.Duration // sorted inclusive upper bounds
	counts []atomic.Int64  // len(uppers)+1; last is +Inf
	sum    atomic.Int64    // nanoseconds
	n      atomic.Int64
}

// NewHistogram returns a detached histogram (not in any registry) with the
// given inclusive upper bounds; they are copied, sorted and deduplicated.
func NewHistogram(buckets []time.Duration) *Histogram {
	ups := append([]time.Duration(nil), buckets...)
	sort.Slice(ups, func(i, j int) bool { return ups[i] < ups[j] })
	dedup := ups[:0]
	for i, u := range ups {
		if i == 0 || u != ups[i-1] {
			dedup = append(dedup, u)
		}
	}
	h := &Histogram{uppers: dedup}
	h.counts = make([]atomic.Int64, len(dedup)+1)
	return h
}

// Observe records one duration. An observation equal to a bucket's upper
// bound counts into that bucket (Prometheus `le` semantics).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.uppers) && d > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// ObserveSince records the wall-clock time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// snapshot returns per-bucket (non-cumulative) counts, the sum in ns and the
// total count, read without locking (individually atomic; a scrape racing an
// Observe may be off by one observation, never torn within a word).
func (h *Histogram) snapshot() (counts []int64, sum int64, n int64) {
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.Load(), h.n.Load()
}

// Counter is a monotonically increasing atomic counter. A nil *Counter
// ignores increments.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the exposition to stay honest).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable value. A nil *Gauge ignores updates.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one labeled instance within a family.
type series struct {
	labels  []Label // sorted by key
	key     string  // canonical rendered labels
	counter *Counter
	gauge   *Gauge
	fn      func() int64 // value callback (counterFunc / gaugeFunc)
	hist    *Histogram
}

// collectorFn emits dynamically-labeled series into a scrape.
type collectorFn = func(add func(labels []Label, value int64))

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []time.Duration // histogram families

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion order of series keys
	// collectors emit dynamically-labeled series at scrape time, in
	// registration order. A slice (not a single func) so several components
	// may feed one family — e.g. every shard of a sharded store registering
	// the same fault-point family under its own shard label.
	collectors []collectorFn
}

// Registry holds named metric families. All methods are safe for concurrent
// use; registration is idempotent (re-registering a name+labels returns the
// existing metric) but re-registering a name under a different type panics —
// that is a programming error, not an operational condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) familyFor(name, help string, typ MetricType, buckets []time.Duration) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: buckets,
			series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q redefined as %v (was %v)", name, typ, f.typ))
	}
	return f
}

// labelKey renders sorted labels canonically; also used by the exposition.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	return b.String()
}

func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (f *family) seriesFor(labels []Label) *series {
	labels = sortLabels(labels)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: labels, key: key}
		switch f.typ {
		case TypeCounter:
			s.counter = &Counter{}
		case TypeGauge:
			s.gauge = &Gauge{}
		case TypeHistogram:
			s.hist = NewHistogram(f.buckets)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.familyFor(name, help, TypeCounter, nil).seriesFor(labels).counter
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.familyFor(name, help, TypeGauge, nil).seriesFor(labels).gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for pre-existing Stats structs whose counters are
// maintained under their own locks.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.familyFor(name, help, TypeCounter, nil).seriesFor(labels).fn = fn
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.familyFor(name, help, TypeGauge, nil).seriesFor(labels).fn = fn
}

// Histogram registers (or fetches) a histogram series with the given
// inclusive upper bounds (DefaultLatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []time.Duration, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefaultLatencyBuckets
	}
	return r.familyFor(name, help, TypeHistogram, buckets).seriesFor(labels).hist
}

// CollectorFunc registers a gauge-typed family whose series are produced
// dynamically at scrape time: fn is invoked with an `add` callback and emits
// zero or more labeled values. Used for families whose label space is not
// known up front (fault-injection points, vclock charge categories).
// Registering the same family again appends another collector; a scrape
// runs them all in registration order, so independent components (e.g. the
// shards of a sharded store) can each contribute their own labeled series.
func (r *Registry) CollectorFunc(name, help string, fn func(add func(labels []Label, value int64))) {
	f := r.familyFor(name, help, TypeGauge, nil)
	f.mu.Lock()
	f.collectors = append(f.collectors, fn)
	f.mu.Unlock()
}

// sortedFamilies snapshots the family list sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// value resolves a counter/gauge series' current value.
func (s *series) value() int64 {
	if s.fn != nil {
		return s.fn()
	}
	if s.counter != nil {
		return s.counter.Value()
	}
	if s.gauge != nil {
		return s.gauge.Value()
	}
	return 0
}
