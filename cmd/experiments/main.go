// Command experiments regenerates every table and figure in the paper's
// evaluation (§3) plus the ablations listed in DESIGN.md, printing paper
// values and measured values side by side.
//
// Usage:
//
//	experiments [-run all|write|table1|fig3|fig4|space|compact|baseline|nvram|tailgrowth|shards|checkpoint]
//	            [-deep] [-shards N] [-checkpoint-interval N] [-cpuprofile out.pprof]
//	            [-mutexprofile out.pprof] [-metrics-out out.json]
//
// -deep extends the locate experiments to distance N^5 (the paper's full
// Table 1 range); it builds a ~10^6-block volume and needs ~0.5 GiB of
// memory and a few minutes. -cpuprofile and -mutexprofile write pprof
// profiles of the run, for chasing hot paths and lock contention in the
// concurrent service. -metrics-out dumps an obs registry snapshot (per-
// experiment wall time plus process gauges) as JSON at exit, for tracking
// benchmark trajectories across commits; it never alters the experiment
// tables themselves.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"clio/internal/experiments"
	"clio/internal/obs"
)

func main() {
	run := flag.String("run", "all", "experiments to run (comma separated): all, write, table1, fig3, fig4, space, compact, baseline, nvram, cache, degree, tailgrowth, shards")
	shards := flag.Int("shards", 1, "shard count for the scaling section; 1 (the default) omits it entirely")
	ckptInterval := flag.Int("checkpoint-interval", 16, "sealed blocks between recovery checkpoints for the checkpoint section (run it with -run checkpoint; it is not part of all)")
	deep := flag.Bool("deep", false, "extend locate experiments to the paper's full N^5 distance (slow, ~0.5 GiB)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file (samples every contended lock)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (per-experiment wall time, process gauges) to this file at exit")
	forceOut := flag.String("force-out", "BENCH_force.json", "where the force experiment (-run force) writes its JSON report")
	forceSeconds := flag.Float64("force-seconds", 0, "measured seconds per force-experiment cell (0 = default)")
	flag.Parse()

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mutexprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mutexprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	out := os.Stdout

	maxK := 4
	blockSize := 256
	if *deep {
		maxK = 5
		blockSize = 128
	}

	step := func(name string, f func() error) {
		if !sel(name) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		if reg != nil {
			reg.Gauge("clio_experiment_wall_nanoseconds",
				"Wall-clock time one experiment took, end to end.",
				obs.L("experiment", name)).Set(int64(elapsed))
		}
		fmt.Fprintf(out, "  [%s completed in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}

	step("write", func() error {
		rows, err := experiments.RunWrite(2000)
		if err != nil {
			return err
		}
		experiments.PrintWrite(out, rows)
		return nil
	})

	var dv *experiments.DistanceVolume
	step("table1", func() error {
		rows, built, err := experiments.RunTable1(blockSize, maxK)
		if err != nil {
			return err
		}
		dv = built
		experiments.PrintTable1(out, rows)
		return nil
	})

	step("fig3", func() error {
		rows, err := experiments.RunFig3(dv) // dv may be nil: theory only
		if err != nil {
			return err
		}
		experiments.PrintFig3(out, rows)
		return nil
	})
	if dv != nil {
		dv.Svc.Close()
		dv = nil
	}

	step("fig4", func() error {
		stages := []int{100, 1_000, 10_000, 50_000}
		if *deep {
			stages = append(stages, 200_000)
		}
		rows, err := experiments.RunFig4(blockSize, []int{4, 16, 64}, stages)
		if err != nil {
			return err
		}
		experiments.PrintFig4(out, rows)
		return nil
	})

	step("space", func() error {
		row, err := experiments.RunSpace(30_000)
		if err != nil {
			return err
		}
		experiments.PrintSpace(out, row)
		return nil
	})

	step("compact", func() error {
		rows, err := experiments.RunCompact(6)
		if err != nil {
			return err
		}
		experiments.PrintCompact(out, rows)
		return nil
	})

	step("baseline", func() error {
		rows, err := experiments.RunBaselines(blockSize, maxK, 16)
		if err != nil {
			return err
		}
		experiments.PrintBaselines(out, rows)
		return nil
	})

	step("nvram", func() error {
		rows, err := experiments.RunNVRAM(2000)
		if err != nil {
			return err
		}
		experiments.PrintNVRAM(out, rows)
		return nil
	})

	step("cache", func() error {
		rows, breakEven, err := experiments.RunCacheSweep(256, 2000, nil)
		if err != nil {
			return err
		}
		experiments.PrintCacheSweep(out, rows, breakEven)
		return nil
	})

	step("degree", func() error {
		rows, err := experiments.RunDegreeSweep(256, 5000, nil)
		if err != nil {
			return err
		}
		experiments.PrintDegreeSweep(out, rows)
		return nil
	})

	step("tailgrowth", func() error {
		rows, err := experiments.RunTailGrowth(1024, []int{64, 512, 2048})
		if err != nil {
			return err
		}
		experiments.PrintTailGrowth(out, rows)
		return nil
	})

	// The checkpointed-recovery section only runs when requested by name
	// (it is not part of "all"), so the default output stays byte-identical
	// to the checkpoint-free harness.
	if want["checkpoint"] {
		step("checkpoint", func() error {
			stages := []int{200, 1_000, 5_000, 20_000}
			if *deep {
				stages = append(stages, 100_000)
			}
			rows, err := experiments.RunRecoveryCheckpoint(blockSize, 16, *ckptInterval, stages)
			if err != nil {
				return err
			}
			experiments.PrintRecoveryCheckpoint(out, rows)
			return nil
		})
	}

	// The force-path experiment runs in real time (it measures the adaptive
	// group-commit window and seal pipeline, which are wall-clock behaviors),
	// so it only runs when requested by name and never joins "all".
	if want["force"] {
		step("force", func() error {
			rep, err := experiments.RunForce(experiments.ForceConfig{
				CellSeconds: *forceSeconds,
			})
			if err != nil {
				return err
			}
			experiments.PrintForce(out, rep)
			if *forceOut == "" {
				return nil
			}
			f, err := os.Create(*forceOut)
			if err != nil {
				return err
			}
			if err := experiments.WriteForceJSON(f, rep); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}

	// The sharded section only exists at -shards > 1, so the default
	// output stays byte-identical to the unsharded harness.
	if *shards > 1 {
		step("shards", func() error {
			rows, err := experiments.RunShardScaling([]int{1, *shards}, 2000)
			if err != nil {
				return err
			}
			experiments.PrintShardScaling(out, rows)
			return nil
		})
	}

	if reg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
			os.Exit(1)
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "metrics-out: %v\n", werr)
			os.Exit(1)
		}
	}
}
