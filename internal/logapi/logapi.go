// Package logapi defines the uniform client interface to a log service —
// the paper's point that log files are "accessed and managed using the same
// I/O and utility routines that are used to access and manage conventional
// files" (§2), regardless of whether the service is in-process, sharded
// across several volume sequences, or across the network.
//
// Service is the interface: context-first, implemented alike by
// logapi.Local (an in-process core.Service), shard.Store (a hash-partitioned
// set of services behind one namespace) and client.Client (the wire
// protocol). Applications written against Service swap deployments without
// code changes.
//
// IDs are store-wide: the high 16 bits carry a shard ordinal, the low 16
// bits the shard-local catalog id, so a single-shard store's IDs are
// numerically identical to its catalog ids.
//
// Implementations that support streaming reads additionally satisfy
// Watcher: Watch returns a live tail subscription that blocks at the end of
// the log and is woken by group commit (see internal/stream).
package logapi

import (
	"context"
	"errors"
	"fmt"

	"clio/internal/core"
	"clio/internal/stream"
)

// AppendOptions selects the append form and durability; it is the
// service-side option struct, shared by every implementation.
type AppendOptions = core.AppendOptions

// Entry is one log entry, shared by every implementation. Entry.Shard
// records which shard the entry was read from (0 on single-shard stores).
type Entry = core.Entry

// ID identifies a log file within a (possibly sharded) store: the high 16
// bits are the shard ordinal, the low 16 bits the shard-local catalog id.
// On a single-shard store an ID equals its catalog id.
type ID uint32

// MakeID combines a shard ordinal and a shard-local catalog id.
func MakeID(shard int, local uint16) ID {
	return ID(uint32(shard)<<16 | uint32(local))
}

// Shard returns the shard ordinal the id routes to.
func (id ID) Shard() int { return int(id >> 16) }

// Local returns the shard-local catalog id.
func (id ID) Local() uint16 { return uint16(id) }

// String renders the id as shard:local.
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.Shard(), id.Local()) }

// ErrShardRange reports an ID addressed to a shard the store does not have
// (including any non-zero shard on a single-shard surface).
var ErrShardRange = errors.New("logapi: id addresses a shard this store does not have")

// OffsetsRoot is the reserved top-level sublog holding consumer-group state:
// group g's membership and acknowledgement records live in the ordinary log
// file OffsetsRoot + "/" + g. Its root segment hashes to one shard, so every
// group's records are totally ordered — the property the deterministic
// partition assignment and the ack audit (stream/group) depend on.
const OffsetsRoot = "/.offsets"

// Info describes one log file: the catalog descriptor, addressed with
// store-wide IDs.
type Info struct {
	ID      ID
	Parent  ID
	Name    string
	Perms   uint16
	Created int64
	Owner   string
	Retired bool
	System  bool
}

// Cursor iterates a log file — in either direction, seekable by time and
// by previously observed position. Every navigation takes a context; Close
// releases server-side state (a no-op for in-process cursors).
//
// Positions (Entry.Block, Entry.Index) are shard-local; SeekPos is only
// meaningful on cursors bound to a single shard (any log file but a
// sharded store's root).
type Cursor interface {
	// Next returns the next entry, or io.EOF at the end.
	Next(ctx context.Context) (*Entry, error)
	// Prev returns the previous entry, or io.EOF at the beginning.
	Prev(ctx context.Context) (*Entry, error)
	// SeekStart positions before the first entry.
	SeekStart(ctx context.Context) error
	// SeekEnd positions after the last entry.
	SeekEnd(ctx context.Context) error
	// SeekTime positions so Next returns the first entry at/after ts.
	SeekTime(ctx context.Context, ts int64) error
	// SeekPos restores a previously observed (block, rec) gap position.
	SeekPos(ctx context.Context, block, rec int) error
	// Close releases the cursor.
	Close() error
}

// Service is the log-service surface: catalog management, appends, reads
// and durability, uniformly context-first.
type Service interface {
	// CreateLog creates a log file at an absolute path (a sublog of its
	// parent) and returns its store-wide id.
	CreateLog(ctx context.Context, path string, perms uint16, owner string) (ID, error)
	// Resolve maps a path to a log-file id.
	Resolve(ctx context.Context, path string) (ID, error)
	// List returns the sublog names beneath a path, sorted.
	List(ctx context.Context, path string) ([]string, error)
	// Stat returns the log file's catalog descriptor.
	Stat(ctx context.Context, path string) (Info, error)
	// SetPerms replaces the permission word.
	SetPerms(ctx context.Context, path string, perms uint16) error
	// Retire marks the log file retired (§2.5); its entries remain
	// readable.
	Retire(ctx context.Context, path string) error
	// Append writes one entry and returns its server timestamp.
	Append(ctx context.Context, id ID, data []byte, opts AppendOptions) (int64, error)
	// AppendMulti writes one entry into every listed log file (§2.1
	// multi-membership); ids[0] is the primary member and all ids must
	// route to one shard.
	AppendMulti(ctx context.Context, ids []ID, data []byte, opts AppendOptions) (int64, error)
	// ReadAt returns the entry at a shard-local (block, index) position,
	// as previously observed on an Entry from that shard.
	ReadAt(ctx context.Context, shard, block, index int) (*Entry, error)
	// OpenCursor opens a cursor at the start of the log file at path.
	OpenCursor(ctx context.Context, path string) (Cursor, error)
	// Force makes everything appended so far durable.
	Force(ctx context.Context) error
}

// Position is a shard-local cursor gap position, used to resume a watch
// after the last delivered entry: Position{Shard: e.Shard, Block: e.Block,
// Rec: e.Index + 1}.
type Position struct {
	Shard int
	Block int
	Rec   int
}

// WatchOptions configures a live tail subscription.
type WatchOptions struct {
	// Buffer bounds the per-subscriber delivery buffer in entries; 0 uses
	// the implementation default (stream.DefaultBuffer).
	Buffer int
	// FromStart delivers the log's existing history before live entries.
	// The default starts at the current end.
	FromStart bool
	// From resumes listed shard legs from gap positions (overriding
	// FromStart for those shards) — how a consumer continues after its
	// last acknowledged entry.
	From []Position
}

// Subscription delivers live entries in seal order. Recv blocks until an
// entry is published, ctx is done, or the subscription is closed.
type Subscription interface {
	Recv(ctx context.Context) (*Entry, error)
	Close() error
}

// Watcher is the streaming-read extension of Service: a live tail
// subscription to the log file at path, woken by group-commit publish
// rather than polling. Implemented alike by Local, shard.Store and
// client.Client.
type Watcher interface {
	Watch(ctx context.Context, path string, opts WatchOptions) (Subscription, error)
}

// StreamService is a Service that also supports live tail subscriptions —
// what the consumer-group machinery (stream/group) and streaming clients
// program against.
type StreamService interface {
	Service
	Watcher
}

// StreamOptions converts WatchOptions to the stream engine's option struct
// (shared by the in-process implementations).
func StreamOptions(opts WatchOptions) stream.Options {
	so := stream.Options{Buffer: opts.Buffer, FromStart: opts.FromStart}
	for _, p := range opts.From {
		so.From = append(so.From, stream.Pos{Shard: p.Shard, Block: p.Block, Rec: p.Rec})
	}
	return so
}

// Local adapts an in-process *core.Service (one volume sequence, shard 0)
// to Service. Core operations are synchronous and uninterruptible, so the
// context is only consulted on entry.
type Local struct{ Svc *core.Service }

// NewLocal returns svc wrapped as a Service.
func NewLocal(svc *core.Service) Local { return Local{Svc: svc} }

var (
	_ Service = Local{}
	_ Watcher = Local{}
)

// localIDs checks every id routes to shard 0 and strips the shard bits.
func localIDs(ids []ID) ([]uint16, error) {
	out := make([]uint16, len(ids))
	for i, id := range ids {
		if id.Shard() != 0 {
			return nil, fmt.Errorf("logapi: id %v on a single-shard store: %w", id, ErrShardRange)
		}
		out[i] = id.Local()
	}
	return out, nil
}

func (l Local) CreateLog(ctx context.Context, path string, perms uint16, owner string) (ID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, err := l.Svc.CreateLog(path, perms, owner)
	return MakeID(0, id), err
}

func (l Local) Resolve(ctx context.Context, path string) (ID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, err := l.Svc.Resolve(path)
	return MakeID(0, id), err
}

func (l Local) List(ctx context.Context, path string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Svc.List(path)
}

func (l Local) Stat(ctx context.Context, path string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	d, err := l.Svc.Stat(path)
	if err != nil {
		return Info{}, err
	}
	return Info{
		ID:      MakeID(0, d.ID),
		Parent:  MakeID(0, d.Parent),
		Name:    d.Name,
		Perms:   d.Perms,
		Created: d.Created,
		Owner:   d.Owner,
		Retired: d.Retired,
		System:  d.System,
	}, nil
}

func (l Local) SetPerms(ctx context.Context, path string, perms uint16) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Svc.SetPerms(path, perms)
}

func (l Local) Retire(ctx context.Context, path string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Svc.Retire(path)
}

func (l Local) Append(ctx context.Context, id ID, data []byte, opts AppendOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if id.Shard() != 0 {
		return 0, fmt.Errorf("logapi: id %v on a single-shard store: %w", id, ErrShardRange)
	}
	return l.Svc.Append(id.Local(), data, opts)
}

func (l Local) AppendMulti(ctx context.Context, ids []ID, data []byte, opts AppendOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	local, err := localIDs(ids)
	if err != nil {
		return 0, err
	}
	return l.Svc.AppendMulti(local, data, opts)
}

func (l Local) ReadAt(ctx context.Context, shard, block, index int) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shard != 0 {
		return nil, fmt.Errorf("logapi: shard %d on a single-shard store: %w", shard, ErrShardRange)
	}
	return l.Svc.ReadAt(block, index)
}

func (l Local) OpenCursor(ctx context.Context, path string) (Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur, err := l.Svc.OpenCursor(path)
	if err != nil {
		return nil, err
	}
	return LocalCursor{Cur: cur}, nil
}

func (l Local) Force(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Svc.Force()
}

// Watch opens a live tail subscription over the single volume sequence.
func (l Local) Watch(ctx context.Context, path string, opts WatchOptions) (Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return stream.Open(path, StreamOptions(opts), stream.Leg{Svc: l.Svc, Shard: 0})
}

// LocalCursor adapts a *core.Cursor to Cursor. Exported so sharded stores
// can wrap their per-shard core cursors the same way.
type LocalCursor struct{ Cur *core.Cursor }

var _ Cursor = LocalCursor{}

func (c LocalCursor) Next(ctx context.Context) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Cur.Next()
}

func (c LocalCursor) Prev(ctx context.Context) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Cur.Prev()
}

func (c LocalCursor) SeekStart(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Cur.SeekStart()
	return nil
}

func (c LocalCursor) SeekEnd(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Cur.SeekEnd()
	return nil
}

func (c LocalCursor) SeekTime(ctx context.Context, ts int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.Cur.SeekTime(ts)
}

func (c LocalCursor) SeekPos(ctx context.Context, block, rec int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.Cur.SeekPos(block, rec)
}

func (c LocalCursor) Close() error { return nil }
