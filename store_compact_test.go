package clio

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestFileStoreCompactionReclaimsDisk exercises the reclamation subsystem
// end to end over the file-backed layout: fill several volume files with a
// mostly-churn workload, retire the churn, compact, and verify the local
// volume files are actually gone (space reclaimed), their images live in
// the cold archive directory, every live entry still reads back hot, the
// retired history still reads back through the cold tier, and a reopen
// recovers the compacted store intact.
func TestFileStoreCompactionReclaimsDisk(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := DirOptions{VolumeBlocks: 24}
	opts.BlockSize = 256
	opts.Degree = 4
	st, err := CreateStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	keep, err := st.CreateLog(ctx, "/keep", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	churn, err := st.CreateLog(ctx, "/churn", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	var kept, churned []string
	for i := 0; ; i++ {
		p := fmt.Sprintf("churn-%04d-%s", i, "padpadpadpadpadpadpadpad")
		if _, err := st.Append(ctx, churn, []byte(p), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
		churned = append(churned, p)
		if i%32 == 0 {
			k := fmt.Sprintf("keep-%04d", i)
			if _, err := st.Append(ctx, keep, []byte(k), AppendOptions{}); err != nil {
				t.Fatal(err)
			}
			kept = append(kept, k)
		}
		if names, err := listVolumes(dir); err != nil {
			t.Fatal(err)
		} else if len(names) >= 5 {
			break
		}
	}
	if err := st.Retire(ctx, "/churn"); err != nil {
		t.Fatal(err)
	}
	if err := st.Force(ctx); err != nil {
		t.Fatal(err)
	}
	before, err := listVolumes(dir)
	if err != nil {
		t.Fatal(err)
	}

	res, err := st.CompactOnce(ctx, CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.VolumesDemoted == 0 {
		t.Fatalf("nothing demoted: %+v", res)
	}

	// Space is actually reclaimed: fewer local volume files, and the cold
	// archive directory holds the demoted images.
	after, err := listVolumes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("volume files: %d before compaction, %d after", len(before), len(after))
	}
	coldEnts, err := os.ReadDir(filepath.Join(dir, coldDirName))
	if err != nil || len(coldEnts) == 0 {
		t.Fatalf("cold archive: %v entries, %v", len(coldEnts), err)
	}
	if _, err := os.Stat(filepath.Join(dir, compactFile)); err != nil {
		t.Fatalf("compaction sidecar: %v", err)
	}

	readAll := func(s *Store, path string) []string {
		t.Helper()
		cur, err := s.OpenCursor(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		var out []string
		for {
			e, err := cur.Next(ctx)
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, string(e.Data))
		}
	}

	// Live entries read back hot (relocated copies); the retired history
	// reads back through the cold tier, byte for byte.
	if got := readAll(st, "/keep"); fmt.Sprint(got) != fmt.Sprint(kept) {
		t.Errorf("live entries after compaction: %d, want %d", len(got), len(kept))
	}
	if got := readAll(st, "/churn"); fmt.Sprint(got) != fmt.Sprint(churned) {
		t.Errorf("retired entries after compaction: %d, want %d", len(got), len(churned))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery mounts only the hot files, reads demoted history
	// through the archive, and reports the compaction state.
	st2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep := st2.LastRecovery()
	if rep.VolumesRelocated == 0 || rep.VolumesDemoted == 0 {
		t.Errorf("recovery report: %d relocated, %d demoted", rep.VolumesRelocated, rep.VolumesDemoted)
	}
	if got := readAll(st2, "/keep"); fmt.Sprint(got) != fmt.Sprint(kept) {
		t.Errorf("live entries after reopen: %d, want %d", len(got), len(kept))
	}
	if got := readAll(st2, "/churn"); fmt.Sprint(got) != fmt.Sprint(churned) {
		t.Errorf("retired entries after reopen: %d, want %d", len(got), len(churned))
	}
	// The fresh process had no cached copies of the demoted blocks, so that
	// read (or recovery before it) must have fetched from the archive.
	if st2.Stats().ColdFetches == 0 {
		t.Error("retired history read without a single cold fetch")
	}

	// The store keeps appending normally after compaction and reopen.
	id2, err := st2.Resolve(ctx, "/keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Append(ctx, id2, []byte("post-compact"), AppendOptions{Forced: true}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStoreCompaction runs a compaction pass over a sharded store:
// every shard gets its own cold archive and sidecar, Store.CompactOnce fans
// out across shards, and the merged result and recovery report aggregate
// the per-shard state.
func TestShardedStoreCompaction(t *testing.T) {
	const shards = 2
	ctx := context.Background()
	dir := t.TempDir()
	opts := DirOptions{VolumeBlocks: 24, Shards: shards}
	opts.BlockSize = 256
	opts.Degree = 4
	st, err := CreateStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Enough distinct roots that both shards hold logs; all get retired.
	paths := make([]string, 8)
	counts := make(map[string]int)
	ids := make([]ID, len(paths))
	for i := range paths {
		paths[i] = fmt.Sprintf("/c%02d", i)
		id, err := st.CreateLog(ctx, paths[i], 0, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for round := 0; ; round++ {
		for i, id := range ids {
			p := fmt.Sprintf("%s-%04d-%s", paths[i], counts[paths[i]], "padpadpadpadpad")
			if _, err := st.Append(ctx, id, []byte(p), AppendOptions{}); err != nil {
				t.Fatal(err)
			}
			counts[paths[i]]++
		}
		all := true
		for s := 0; s < shards; s++ {
			if len(st.Service(s).Volumes()) < 3 {
				all = false
			}
		}
		if all {
			break
		}
		if round > 4000 {
			t.Fatal("shards never grew to 3 volumes")
		}
	}
	for _, p := range paths {
		if err := st.Retire(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Force(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := st.CompactOnce(ctx, CompactOptions{MinHotVolumes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.VolumesDemoted == 0 {
		t.Fatalf("nothing demoted: %+v", res)
	}
	// Each shard that demoted holds its own cold archive under shard-K/cold.
	coldDirs := 0
	for s := 0; s < shards; s++ {
		if ents, err := os.ReadDir(filepath.Join(shardDir(dir, s), coldDirName)); err == nil && len(ents) > 0 {
			coldDirs++
		}
	}
	if coldDirs == 0 {
		t.Error("no shard populated its cold archive")
	}

	// Every retired log still reads back complete through the cold tier.
	for _, p := range paths {
		cur, err := st.OpenCursor(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, err := cur.Next(ctx); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			n++
		}
		cur.Close()
		if n != counts[p] {
			t.Errorf("%s: %d entries after compaction, want %d", p, n, counts[p])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rep := st2.LastRecovery(); rep.VolumesDemoted == 0 {
		t.Errorf("merged recovery reports no demoted volumes: %+v", rep)
	}
	for _, p := range paths {
		cur, err := st2.OpenCursor(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			if _, err := cur.Next(ctx); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			n++
		}
		cur.Close()
		if n != counts[p] {
			t.Errorf("%s: %d entries after reopen, want %d", p, n, counts[p])
		}
	}
}
