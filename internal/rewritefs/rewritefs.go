// Package rewritefs is a deliberately conventional indirect-block file
// system over rewriteable storage — the §1 strawman Clio's log files are
// measured against. It exists so the motivation claims can be quantified:
//
//   - "In indirect block file systems (such as Unix), blocks at the tail
//     end of [large, continually growing] files become increasingly
//     expensive to read and write" — tail appends and reads traverse the
//     inode plus one or two indirect blocks, each a separate device access;
//   - "the blocks of such files are likely to be scattered over the disk" —
//     the allocator interleaves concurrent files, so logical adjacency is
//     not physical adjacency and sequential reads seek;
//   - "most file system backup procedures involve copying whole files,
//     which is particularly inefficient ... for large log files, since only
//     the tail end of the file will have changed since the last backup" —
//     BackupReads counts it.
//
// The implementation is honest about I/O: every inode, indirect-block and
// data-block access goes through the Store, which counts reads, writes and
// seeks; there is deliberately no buffer cache (the experiments measure the
// cold cost the paper's analysis talks about).
package rewritefs

import (
	"errors"
	"fmt"
)

// Errors.
var (
	// ErrNoSpace indicates the device is full.
	ErrNoSpace = errors.New("rewritefs: no space")
	// ErrNotFound indicates an unknown file.
	ErrNotFound = errors.New("rewritefs: file not found")
	// ErrRange indicates a read beyond the end of a file.
	ErrRange = errors.New("rewritefs: offset beyond end of file")
)

// Stats counts device traffic.
type Stats struct {
	Reads  int64
	Writes int64
	Seeks  int64 // accesses not physically adjacent to the previous one
}

// Store is a rewriteable block device with access accounting.
type Store struct {
	blockSize int
	capacity  int
	blocks    map[int][]byte
	next      int // bump allocator
	last      int // last accessed block for seek counting
	stats     Stats
}

// NewStore returns a rewriteable store.
func NewStore(blockSize, capacity int) *Store {
	return &Store{blockSize: blockSize, capacity: capacity,
		blocks: make(map[int][]byte), last: -2}
}

// BlockSize returns the block size.
func (st *Store) BlockSize() int { return st.blockSize }

// Stats returns the counters.
func (st *Store) Stats() Stats { return st.stats }

// ResetStats zeroes the counters.
func (st *Store) ResetStats() { st.stats = Stats{}; st.last = -2 }

func (st *Store) touch(i int) {
	if i != st.last+1 {
		st.stats.Seeks++
	}
	st.last = i
}

func (st *Store) read(i int) []byte {
	st.stats.Reads++
	st.touch(i)
	b := st.blocks[i]
	if b == nil {
		b = make([]byte, st.blockSize)
	}
	return b
}

func (st *Store) write(i int, b []byte) {
	st.stats.Writes++
	st.touch(i)
	cp := make([]byte, st.blockSize)
	copy(cp, b)
	st.blocks[i] = cp
}

// alloc grabs a fresh block.
func (st *Store) alloc() (int, error) {
	if st.next >= st.capacity {
		return 0, ErrNoSpace
	}
	i := st.next
	st.next++
	return i, nil
}

// Geometry constants: a Unix-ish inode with a few direct blocks plus single
// and double indirection. Pointers are 4 bytes.
const NumDirect = 8

// FS is the file system.
type FS struct {
	store *Store
	files map[string]*inode
	ptrs  int // pointers per indirect block
}

type inode struct {
	size     int
	direct   [NumDirect]int
	indirect int // block of pointers; 0 = none (block 0 never allocated to data)
	double   int // block of pointers to indirect blocks
	// inodeBlock is where this inode "lives"; accessing the file always
	// reads it, updating metadata always writes it.
	inodeBlock int
}

// New returns a file system on the given store.
func New(store *Store) *FS {
	return &FS{
		store: store,
		files: make(map[string]*inode),
		ptrs:  store.blockSize / 4,
	}
}

// MaxFileSize returns the largest representable file.
func (fs *FS) MaxFileSize() int {
	return (NumDirect + fs.ptrs + fs.ptrs*fs.ptrs) * fs.store.blockSize
}

// Create makes an empty file.
func (fs *FS) Create(name string) error {
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("rewritefs: %q exists", name)
	}
	ib, err := fs.store.alloc()
	if err != nil {
		return err
	}
	ino := &inode{inodeBlock: ib}
	fs.files[name] = ino
	fs.store.write(ib, nil) // persist the inode
	return nil
}

// Size returns a file's size.
func (fs *FS) Size(name string) (int, error) {
	ino, ok := fs.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	return ino.size, nil
}

// blockFor maps a file block index to its device block, reading the
// indirection chain (charging those reads). When allocate is set, missing
// mapping levels are allocated and written back.
func (fs *FS) blockFor(ino *inode, fileBlock int, allocate bool) (int, error) {
	st := fs.store
	// The inode itself is always consulted.
	st.read(ino.inodeBlock)
	switch {
	case fileBlock < NumDirect:
		if ino.direct[fileBlock] == 0 {
			if !allocate {
				return 0, ErrRange
			}
			b, err := st.alloc()
			if err != nil {
				return 0, err
			}
			ino.direct[fileBlock] = b
			st.write(ino.inodeBlock, nil) // inode update
		}
		return ino.direct[fileBlock], nil

	case fileBlock < NumDirect+fs.ptrs:
		if ino.indirect == 0 {
			if !allocate {
				return 0, ErrRange
			}
			b, err := st.alloc()
			if err != nil {
				return 0, err
			}
			ino.indirect = b
			st.write(ino.inodeBlock, nil)
			st.write(b, nil) // zeroed pointer block
		}
		idx := fileBlock - NumDirect
		ptrs := st.read(ino.indirect)
		got := readPtr(ptrs, idx)
		if got == 0 {
			if !allocate {
				return 0, ErrRange
			}
			b, err := st.alloc()
			if err != nil {
				return 0, err
			}
			writePtr(ptrs, idx, b)
			st.write(ino.indirect, ptrs)
			got = b
		}
		return got, nil

	default:
		rel := fileBlock - NumDirect - fs.ptrs
		if rel >= fs.ptrs*fs.ptrs {
			return 0, fmt.Errorf("rewritefs: file block %d exceeds maximum", fileBlock)
		}
		if ino.double == 0 {
			if !allocate {
				return 0, ErrRange
			}
			b, err := st.alloc()
			if err != nil {
				return 0, err
			}
			ino.double = b
			st.write(ino.inodeBlock, nil)
			st.write(b, nil)
		}
		outer := rel / fs.ptrs
		inner := rel % fs.ptrs
		dptrs := st.read(ino.double)
		mid := readPtr(dptrs, outer)
		if mid == 0 {
			if !allocate {
				return 0, ErrRange
			}
			b, err := st.alloc()
			if err != nil {
				return 0, err
			}
			writePtr(dptrs, outer, b)
			st.write(ino.double, dptrs)
			st.write(b, nil)
			mid = b
		}
		mptrs := st.read(mid)
		got := readPtr(mptrs, inner)
		if got == 0 {
			if !allocate {
				return 0, ErrRange
			}
			b, err := st.alloc()
			if err != nil {
				return 0, err
			}
			writePtr(mptrs, inner, b)
			st.write(mid, mptrs)
			got = b
		}
		return got, nil
	}
}

func readPtr(b []byte, i int) int {
	off := i * 4
	return int(b[off]) | int(b[off+1])<<8 | int(b[off+2])<<16 | int(b[off+3])<<24
}

func writePtr(b []byte, i, v int) {
	off := i * 4
	b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// Append writes data at the end of the file. Partial blocks are
// read-modify-write, as a real FS would.
func (fs *FS) Append(name string, data []byte) error {
	ino, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	st := fs.store
	bs := st.blockSize
	for len(data) > 0 {
		fileBlock := ino.size / bs
		off := ino.size % bs
		devBlock, err := fs.blockFor(ino, fileBlock, true)
		if err != nil {
			return err
		}
		var blk []byte
		if off != 0 {
			blk = st.read(devBlock) // read-modify-write of the partial block
		} else {
			blk = make([]byte, bs)
		}
		n := copy(blk[off:], data)
		st.write(devBlock, blk)
		ino.size += n
		data = data[n:]
	}
	// Size update persists in the inode.
	st.write(ino.inodeBlock, nil)
	return nil
}

// Rewrite replaces the file's entire contents in place — the conventional
// FS's whole-file update, used by the §6 atomic-update comparison. Blocks
// already mapped are overwritten; growth allocates as Append does.
func (fs *FS) Rewrite(name string, data []byte) error {
	ino, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	st := fs.store
	bs := st.blockSize
	for off := 0; off < len(data); off += bs {
		devBlock, err := fs.blockFor(ino, off/bs, true)
		if err != nil {
			return err
		}
		blk := make([]byte, bs)
		copy(blk, data[off:])
		st.write(devBlock, blk)
	}
	ino.size = len(data)
	st.write(ino.inodeBlock, nil)
	return nil
}

// ReadAt reads len(p) bytes at the given offset.
func (fs *FS) ReadAt(name string, offset int, p []byte) error {
	ino, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	if offset+len(p) > ino.size {
		return ErrRange
	}
	st := fs.store
	bs := st.blockSize
	for len(p) > 0 {
		fileBlock := offset / bs
		off := offset % bs
		devBlock, err := fs.blockFor(ino, fileBlock, false)
		if err != nil {
			return err
		}
		blk := st.read(devBlock)
		n := copy(p, blk[off:])
		p = p[n:]
		offset += n
	}
	return nil
}

// BackupReads counts the block reads a whole-file backup costs (§1: backup
// copies whole files), including the metadata traversal.
func (fs *FS) BackupReads(name string) (int64, error) {
	ino, ok := fs.files[name]
	if !ok {
		return 0, ErrNotFound
	}
	before := fs.store.stats.Reads
	bs := fs.store.blockSize
	buf := make([]byte, bs)
	for off := 0; off < ino.size; off += bs {
		n := bs
		if off+n > ino.size {
			n = ino.size - off
		}
		if err := fs.ReadAt(name, off, buf[:n]); err != nil {
			return 0, err
		}
	}
	return fs.store.stats.Reads - before, nil
}

// Store returns the underlying store (for stats).
func (fs *FS) Store() *Store { return fs.store }
