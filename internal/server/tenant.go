package server

import (
	"context"
	"crypto/subtle"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"clio/internal/logapi"
	"clio/internal/obs"
	"clio/internal/shard"
)

// Tenant is one tenant's declaration: a top-level namespace (log files under
// /<Name>), the shared secret its sessions present in OpHello, and its
// quotas. A zero quota is unlimited.
//
// The tenant boundary is the same unit the partitioner routes by — the root
// path segment (shard.RootSegment) — so tenancy adds no second namespace
// scheme: a tenant's logs hash to shards exactly as before, and a tenant
// session may only touch paths whose root segment is its own name (plus its
// own consumer-group state, see allowsPath).
type Tenant struct {
	Name  string
	Token string
	// MaxLogs bounds the log files under the tenant's namespace. Existing
	// logs are counted when the tenant's first session binds; retired logs
	// still count (write-once storage — a retired log's entries remain).
	MaxLogs int64
	// MaxBytes bounds the entry bytes the tenant may append over this
	// daemon's lifetime. It is an append budget, not a stored-bytes gauge:
	// accounting restarts with the daemon.
	MaxBytes int64
	// MaxSessions bounds the tenant's concurrently authenticated
	// connections.
	MaxSessions int64
}

// tenantState is the server's live accounting for one tenant. The config is
// an atomic pointer so a SIGHUP reload retunes quotas and rotates tokens
// under live traffic; the usage counters survive reloads (SetTenants reuses
// the state for a tenant that stays configured).
type tenantState struct {
	name string
	cfg  atomic.Pointer[Tenant]

	sessions atomic.Int64 // concurrently authenticated connections
	logs     atomic.Int64 // log files under /<name> (seeded + created)
	bytes    atomic.Int64 // entry bytes appended since daemon start

	// seedOnce counts the logs already under the namespace the first time a
	// session binds. Only authenticated sessions of this tenant can create
	// under the root afterwards, and binding completes only after the seed,
	// so the count cannot miss a create.
	seedOnce sync.Once

	met atomic.Pointer[tenantMetrics]
}

// tenantMetrics is one tenant's registered instrument set.
type tenantMetrics struct {
	requests *obs.Counter
	bytes    *obs.Counter
	quota    map[string]*obs.Counter // keyed by quota name: logs, bytes, sessions
}

// quotaError names the tenant and quota a refused request ran into; the
// dispatch layer renders it as StatusQuotaExceeded.
type quotaError struct {
	tenant string
	quota  string
}

func (e *quotaError) Error() string {
	return fmt.Sprintf("tenant %s over %s quota", e.tenant, e.quota)
}

// quotaResp renders a quota refusal in the wire's status+payload shape.
func quotaResp(e *quotaError) (byte, []byte) {
	return StatusQuotaExceeded, PutString(nil, e.Error())
}

// SetTenants installs (or on SIGHUP, replaces) the tenant table. States are
// reused by name, so usage counters — sessions held, bytes appended, logs
// counted — carry across a reload; only the declarations (tokens, quotas)
// swap. An empty table returns the server to open (unauthenticated) mode.
// Sessions of a tenant removed from the table keep their binding until they
// disconnect; new hellos for it fail.
func (s *Server) SetTenants(list []Tenant) {
	old := s.tenants.Load()
	next := make(map[string]*tenantState, len(list))
	for _, t := range list {
		t := t
		var ts *tenantState
		if old != nil {
			ts = (*old)[t.Name]
		}
		if ts == nil {
			ts = &tenantState{name: t.Name}
		}
		ts.cfg.Store(&t)
		if reg := s.obsReg.Load(); reg != nil {
			ts.register(reg)
		}
		next[t.Name] = ts
	}
	s.tenants.Store(&next)
}

// tenanted reports whether the server enforces tenancy: with no tenants
// configured every connection is the implicit single tenant (the
// pre-tenancy behavior, and what every existing test exercises).
func (s *Server) tenanted() bool {
	m := s.tenants.Load()
	return m != nil && len(*m) > 0
}

// register creates the tenant's metric series. Idempotent (the registry
// dedupes by name+labels, and met is only stored once).
func (ts *tenantState) register(reg *obs.Registry) {
	if ts.met.Load() != nil {
		return
	}
	l := obs.L("tenant", ts.name)
	m := &tenantMetrics{
		requests: reg.Counter("clio_tenant_requests_total",
			"Requests dispatched for the tenant's sessions.", l),
		bytes: reg.Counter("clio_tenant_bytes_appended_total",
			"Entry bytes successfully appended by the tenant.", l),
		quota: map[string]*obs.Counter{},
	}
	for _, q := range []string{"logs", "bytes", "sessions"} {
		m.quota[q] = reg.Counter("clio_tenant_quota_exceeded_total",
			"Requests refused with StatusQuotaExceeded, by quota.", l, obs.L("quota", q))
	}
	reg.GaugeFunc("clio_tenant_sessions",
		"Currently authenticated connections of the tenant.",
		func() int64 { return ts.sessions.Load() }, l)
	reg.GaugeFunc("clio_tenant_logs",
		"Log files under the tenant's namespace.",
		func() int64 { return ts.logs.Load() }, l)
	ts.met.Store(m)
}

// countQuota records a refusal in the tenant's quota counter.
func (ts *tenantState) countQuota(quota string) {
	if m := ts.met.Load(); m != nil {
		m.quota[quota].Inc()
	}
}

// bindTenant authenticates a hello's credentials and, on success, takes one
// session slot. The caller owns the slot and must release it (releaseSession)
// at connection teardown.
func (s *Server) bindTenant(name, token string) (*tenantState, error) {
	m := s.tenants.Load()
	if m == nil || len(*m) == 0 {
		if name != "" {
			return nil, fmt.Errorf("server: no tenants configured")
		}
		return nil, nil
	}
	if name == "" {
		return nil, fmt.Errorf("server: tenant credentials required")
	}
	ts := (*m)[name]
	if ts == nil {
		// Compare against a dummy anyway so a probe cannot time-split
		// "unknown tenant" from "wrong token".
		subtle.ConstantTimeCompare([]byte(token), []byte(token))
		return nil, fmt.Errorf("server: tenant authentication failed")
	}
	cfg := ts.cfg.Load()
	if subtle.ConstantTimeCompare([]byte(cfg.Token), []byte(token)) != 1 {
		return nil, fmt.Errorf("server: tenant authentication failed")
	}
	// Count the namespace's existing logs before the first session finishes
	// binding, so the log quota starts from reality, not zero.
	ts.seedOnce.Do(func() { ts.logs.Store(countLogs(s.store, "/"+ts.name)) })
	for {
		cur := ts.sessions.Load()
		cfg := ts.cfg.Load()
		if cfg.MaxSessions > 0 && cur >= cfg.MaxSessions {
			ts.countQuota("sessions")
			return nil, &quotaError{tenant: ts.name, quota: "sessions"}
		}
		if ts.sessions.CompareAndSwap(cur, cur+1) {
			return ts, nil
		}
	}
}

// countLogs walks the namespace under path and counts its log files,
// including the namespace root itself when it exists.
func countLogs(st *shard.Store, path string) int64 {
	ctx := context.Background()
	if _, err := st.Resolve(ctx, path); err != nil {
		return 0
	}
	var n int64 = 1
	names, err := st.List(ctx, path)
	if err != nil {
		return n
	}
	for _, c := range names {
		n += countLogs(st, path+"/"+c)
	}
	return n
}

// offsetsSegment is the root segment of logapi.OffsetsRoot ("/.offsets").
var offsetsSegment = strings.TrimPrefix(OffsetsRoot, "/")

// allowsPath checks a path against the tenant's namespace: the tenant's own
// root segment, or its consumer-group state — offsets logs under
// /.offsets whose group name carries the "<tenant>." prefix. Group state
// lives in a shared system namespace (group logs must hash by group, not by
// tenant), so the prefix is the isolation boundary there.
func (ts *tenantState) allowsPath(path string) error {
	seg, err := shard.RootSegment(path)
	if err != nil {
		return err
	}
	if seg == ts.name {
		return nil
	}
	if seg == offsetsSegment {
		rest := strings.TrimPrefix(strings.TrimPrefix(path, OffsetsRoot), "/")
		if strings.HasPrefix(rest, ts.name+".") {
			return nil
		}
	}
	return fmt.Errorf("server: path %q outside tenant %s namespace", path, ts.name)
}

// allowsGroup checks a consumer-group name: tenant sessions must scope their
// groups as "<tenant>.<group>", which keeps every group's offsets log —
// /.offsets/<tenant>.<group> — reachable by the same session under
// allowsPath.
func (ts *tenantState) allowsGroup(group string) error {
	if strings.HasPrefix(group, ts.name+".") {
		return nil
	}
	return fmt.Errorf("server: group %q outside tenant %s namespace (use %q)",
		group, ts.name, ts.name+"."+group)
}

// tenantGate enforces namespace and quota policy for one request before it
// executes. proceed=false carries a ready refusal in status/resp. A non-zero
// reserved means the gate took that many bytes (or, for OpCreate, one log
// slot) out of the tenant's quota headroom in advance; dispatch settles the
// reservation against the op's outcome (settleTenant), so two racing appends
// cannot both squeeze through the last of a byte budget.
//
// Replication control ops (the 0x40 range) pass untouched: they carry no
// tenant path semantics and arrive from cluster peers, not tenant sessions.
func (h *connHandler) tenantGate(op byte, payload []byte) (ts *tenantState, reserved int64, status byte, resp []byte, proceed bool) {
	if !h.srv.tenanted() {
		return nil, 0, 0, nil, true
	}
	if op >= 0x40 && op < 0x60 {
		return nil, 0, 0, nil, true
	}
	ts = h.tenant.Load()
	if ts == nil {
		if op == OpPing {
			return nil, 0, 0, nil, true
		}
		status, resp = errResp(fmt.Errorf("server: authentication required"))
		return nil, 0, status, resp, false
	}
	if m := ts.met.Load(); m != nil {
		m.requests.Inc()
	}
	refuse := func(err error) (*tenantState, int64, byte, []byte, bool) {
		if qe, ok := err.(*quotaError); ok {
			ts.countQuota(qe.quota)
			status, resp = quotaResp(qe)
		} else {
			status, resp = errResp(err)
		}
		return ts, 0, status, resp, false
	}
	// gateAppend finishes both append shapes once the ids are in hand: the
	// flag byte and data length remain on d, then ownership and byte budget.
	gateAppend := func(d *Decoder, ids []uint64) (int64, error) {
		if _, err := d.Byte(); err != nil {
			return 0, err
		}
		n, err := d.Uvarint()
		if err != nil {
			return 0, err
		}
		if err := h.checkIDs(ts, ids); err != nil {
			return 0, err
		}
		if err := ts.reserveBytes(int64(n)); err != nil {
			return 0, err
		}
		return int64(n), nil
	}
	d := NewDecoder(payload)
	switch op {
	case OpCreate, OpResolve, OpList, OpStat, OpSetPerms, OpRetire, OpCursorOpen:
		path, err := d.String()
		if err != nil {
			return refuse(err)
		}
		if err := ts.allowsPath(path); err != nil {
			return refuse(err)
		}
		if op == OpCreate {
			if seg, _ := shard.RootSegment(path); seg == ts.name {
				if err := ts.reserveLog(); err != nil {
					return refuse(err)
				}
				reserved = -1 // one log slot; settled by settleTenant
			}
		}
	case OpAppend:
		id, err := d.Uvarint()
		if err != nil {
			return refuse(err)
		}
		n, err := gateAppend(d, []uint64{id})
		if err != nil {
			return refuse(err)
		}
		reserved = n
	case OpAppendMulti:
		nIDs, err := d.Uvarint()
		if err != nil || nIDs == 0 || nIDs > 64 {
			// Malformed; let dispatch produce its canonical error.
			return ts, 0, 0, nil, true
		}
		ids := make([]uint64, nIDs)
		for i := range ids {
			if ids[i], err = d.Uvarint(); err != nil {
				return refuse(err)
			}
		}
		n, err := gateAppend(d, ids)
		if err != nil {
			return refuse(err)
		}
		reserved = n
	}
	return ts, reserved, 0, nil, true
}

// checkIDs attributes each store-wide id to its namespace.
func (h *connHandler) checkIDs(ts *tenantState, ids []uint64) error {
	for _, v := range ids {
		if v > uint64(^uint32(0)) {
			return fmt.Errorf("server: id %d out of range", v)
		}
		path, err := h.srv.store.PathOf(logapi.ID(v))
		if err != nil {
			return err
		}
		if err := ts.allowsPath(path); err != nil {
			return err
		}
	}
	return nil
}

// reserveLog takes one log slot from the quota, refusing at the limit.
func (ts *tenantState) reserveLog() error {
	for {
		cfg := ts.cfg.Load()
		cur := ts.logs.Load()
		if cfg.MaxLogs > 0 && cur >= cfg.MaxLogs {
			return &quotaError{tenant: ts.name, quota: "logs"}
		}
		if ts.logs.CompareAndSwap(cur, cur+1) {
			return nil
		}
	}
}

// reserveBytes takes n bytes from the append budget, refusing when the
// budget cannot cover them.
func (ts *tenantState) reserveBytes(n int64) error {
	for {
		cfg := ts.cfg.Load()
		cur := ts.bytes.Load()
		if cfg.MaxBytes > 0 && cur+n > cfg.MaxBytes {
			return &quotaError{tenant: ts.name, quota: "bytes"}
		}
		if ts.bytes.CompareAndSwap(cur, cur+n) {
			return nil
		}
	}
}

// settleTenant settles a gate reservation against the op's outcome: a
// failed create returns its log slot, a failed append returns its bytes,
// and a successful append lands in the bytes-appended counter.
func settleTenant(ts *tenantState, op byte, reserved int64, status byte) {
	if ts == nil || reserved == 0 {
		return
	}
	ok := status == StatusOK || status == StatusDegraded
	switch op {
	case OpCreate:
		if !ok {
			ts.logs.Add(-1)
		}
	case OpAppend, OpAppendMulti:
		if !ok {
			ts.bytes.Add(-reserved)
			return
		}
		if m := ts.met.Load(); m != nil {
			m.bytes.Add(reserved)
		}
	}
}

// tenantEntry checks a position-addressed read (OpReadAt) after the fact:
// the entry's primary log id names the owning namespace. Multi-membership
// extras always share the primary's root segment (members of one entry live
// on one shard under one root), so the primary id decides.
func (h *connHandler) tenantEntry(shardN int, logID16 uint16) error {
	ts := h.tenant.Load()
	if ts == nil || !h.srv.tenanted() {
		return nil
	}
	path, err := h.srv.store.PathOf(logapi.MakeID(shardN, logID16))
	if err != nil {
		return err
	}
	return ts.allowsPath(path)
}
