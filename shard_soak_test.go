package clio_test

import (
	"context"
	"flag"
	"fmt"
	"io"
	"sync"
	"testing"

	"clio"
)

// soakShardCount is the shard count TestShardSoak runs with; CI's race
// step passes -shards=4 (go test -race -run TestShardSoak . -args -shards=4).
var soakShardCount = flag.Int("shards", 2, "shard count for TestShardSoak")

// ckptInterval turns on the recovery-checkpoint policy for TestShardSoak
// and TestChaos (0, the default, leaves it off). CI runs both with a low
// interval so checkpoint emission interleaves with concurrent traffic,
// crashes land near and inside checkpoint writes, and chaos recoveries
// exercise the restore-plus-replay path under fault injection.
var ckptInterval = flag.Int("checkpoint-interval", 0, "recovery-checkpoint interval in sealed blocks for the soak and chaos tests (0 disables)")

// TestShardSoak hammers one sharded store from many goroutines at once —
// writers appending to their own logs (routed to different shards by the
// store's hash), readers scanning concurrently, a forcer making everything
// durable — then verifies every log holds exactly its writer's entries in
// order. Its job is to prove the shard fan-out adds no shared mutable
// state beyond what each core service already synchronizes; CI runs it
// under the race detector.
func TestShardSoak(t *testing.T) {
	const (
		writers      = 12
		opsPerWriter = 250
	)
	n := *soakShardCount
	ctx := context.Background()
	st, err := clio.NewMemStore(n, 512, 1<<14, clio.Options{BlockSize: 512, Degree: 16, CheckpointInterval: *ckptInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Shards() != n {
		t.Fatalf("store has %d shards, want %d", st.Shards(), n)
	}

	ids := make([]clio.ID, writers)
	for w := range ids {
		id, err := st.CreateLog(ctx, fmt.Sprintf("/soak%02d", w), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[w] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+writers/2+1)
	// Writers: sequence-numbered entries, every 16th forced.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				payload := []byte(fmt.Sprintf("w%02d-%06d", w, i))
				opts := clio.AppendOptions{Timestamped: true, Forced: i%16 == 15}
				if _, err := st.Append(ctx, ids[w], payload, opts); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	// Readers: scan a log while it is being written; entries must arrive
	// in order even mid-write.
	for r := 0; r < writers/2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			path := fmt.Sprintf("/soak%02d", r*2)
			cur, err := st.OpenCursor(ctx, path)
			if err != nil {
				errs <- fmt.Errorf("reader %d: %w", r, err)
				return
			}
			defer cur.Close()
			seq := 0
			for {
				e, err := cur.Next(ctx)
				if err == io.EOF {
					break
				}
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				want := fmt.Sprintf("w%02d-%06d", r*2, seq)
				if string(e.Data) != want {
					errs <- fmt.Errorf("reader %d: entry %d is %q, want %q", r, seq, e.Data, want)
					return
				}
				seq++
			}
		}(r)
	}
	// A forcer exercising the store-wide durability fan-out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := st.Force(ctx); err != nil {
				errs <- fmt.Errorf("force: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Final read-back: every log holds exactly its writer's entries.
	for w := 0; w < writers; w++ {
		cur, err := st.OpenCursor(ctx, fmt.Sprintf("/soak%02d", w))
		if err != nil {
			t.Fatal(err)
		}
		seq := 0
		for {
			e, err := cur.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprintf("w%02d-%06d", w, seq)
			if string(e.Data) != want {
				t.Fatalf("log %d entry %d is %q, want %q", w, seq, e.Data, want)
			}
			if e.Shard != ids[w].Shard() {
				t.Fatalf("log %d entry carries shard %d, want %d", w, e.Shard, ids[w].Shard())
			}
			seq++
		}
		cur.Close()
		if seq != opsPerWriter {
			t.Fatalf("log %d holds %d entries, want %d", w, seq, opsPerWriter)
		}
	}
}
