package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"clio/internal/core"
	"clio/internal/wire"
)

// Server serves the Clio protocol over stream connections, fronting one log
// service (the paper's combined file server + log server, §2 and §6: "the
// combined implementation allows for the sharing not only of hardware
// resources, but also of code").
type Server struct {
	svc *core.Service
	// Logf, when set, receives connection-level error logs.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	closed bool
	lns    []net.Listener
	conns  map[net.Conn]bool
	wg     sync.WaitGroup
}

// New returns a server fronting svc.
func New(svc *core.Service) *Server {
	return &Server{svc: svc, conns: make(map[net.Conn]bool)}
}

// Service returns the underlying log service.
func (s *Server) Service() *core.Service { return s.svc }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections until the listener closes. It returns the
// listener's final error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return errors.New("server: closed")
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops listeners and connections and waits for handlers to drain.
// The underlying service is not closed; the owner does that.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// ServeConn handles one connection until EOF or error. Exported so callers
// can serve over a net.Pipe (the paper's same-machine IPC).
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	h := &connHandler{srv: s, cursors: make(map[uint32]*core.Cursor)}
	for {
		op, payload, err := ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("clio server: read: %v", err)
			}
			return
		}
		status, resp := h.handle(op, payload)
		if err := WriteFrame(conn, status, resp); err != nil {
			s.logf("clio server: write: %v", err)
			return
		}
	}
}

type connHandler struct {
	srv        *Server
	cursors    map[uint32]*core.Cursor
	nextCursor uint32
}

func errResp(err error) (byte, []byte) {
	return StatusErr, PutString(nil, err.Error())
}

func (h *connHandler) handle(op byte, payload []byte) (byte, []byte) {
	svc := h.srv.svc
	d := NewDecoder(payload)
	switch op {
	case OpPing:
		return StatusOK, nil

	case OpCreate:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		perms, err := d.Uint16()
		if err != nil {
			return errResp(err)
		}
		owner, err := d.String()
		if err != nil {
			return errResp(err)
		}
		id, err := svc.CreateLog(path, perms, owner)
		if err != nil {
			return errResp(err)
		}
		return StatusOK, wire.PutUint16(nil, id)

	case OpResolve:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		id, err := svc.Resolve(path)
		if err != nil {
			return errResp(err)
		}
		return StatusOK, wire.PutUint16(nil, id)

	case OpList:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		names, err := svc.List(path)
		if err != nil {
			return errResp(err)
		}
		out := wire.PutUvarint(nil, uint64(len(names)))
		for _, n := range names {
			out = PutString(out, n)
		}
		return StatusOK, out

	case OpStat:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		desc, err := svc.Stat(path)
		if err != nil {
			return errResp(err)
		}
		out := wire.PutUint16(nil, desc.ID)
		out = wire.PutUint16(out, desc.Parent)
		out = wire.PutUint16(out, desc.Perms)
		out = wire.PutUint64(out, uint64(desc.Created))
		out = PutString(out, desc.Name)
		out = PutString(out, desc.Owner)
		var flags byte
		if desc.Retired {
			flags |= 1
		}
		if desc.System {
			flags |= 2
		}
		return StatusOK, append(out, flags)

	case OpSetPerms:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		perms, err := d.Uint16()
		if err != nil {
			return errResp(err)
		}
		if err := svc.SetPerms(path, perms); err != nil {
			return errResp(err)
		}
		return StatusOK, nil

	case OpRetire:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		if err := svc.Retire(path); err != nil {
			return errResp(err)
		}
		return StatusOK, nil

	case OpAppend:
		id, err := d.Uint16()
		if err != nil {
			return errResp(err)
		}
		flags, err := d.Byte()
		if err != nil {
			return errResp(err)
		}
		data, err := d.Bytes()
		if err != nil {
			return errResp(err)
		}
		ts, err := svc.Append(id, data, core.AppendOptions{
			Timestamped: flags&AppendTimestamped != 0,
			Forced:      flags&AppendForced != 0,
		})
		if err != nil {
			return errResp(err)
		}
		return StatusOK, wire.PutUint64(nil, uint64(ts))

	case OpAppendMulti:
		nIDs, err := d.Uvarint()
		if err != nil {
			return errResp(err)
		}
		if nIDs == 0 || nIDs > 64 {
			return errResp(fmt.Errorf("server: bad member count %d", nIDs))
		}
		ids := make([]uint16, nIDs)
		for i := range ids {
			if ids[i], err = d.Uint16(); err != nil {
				return errResp(err)
			}
		}
		flags, err := d.Byte()
		if err != nil {
			return errResp(err)
		}
		data, err := d.Bytes()
		if err != nil {
			return errResp(err)
		}
		ts, err := svc.AppendMulti(ids, data, core.AppendOptions{
			Timestamped: flags&AppendTimestamped != 0,
			Forced:      flags&AppendForced != 0,
		})
		if err != nil {
			return errResp(err)
		}
		return StatusOK, wire.PutUint64(nil, uint64(ts))

	case OpCursorOpen:
		path, err := d.String()
		if err != nil {
			return errResp(err)
		}
		cur, err := svc.OpenCursor(path)
		if err != nil {
			return errResp(err)
		}
		h.nextCursor++
		h.cursors[h.nextCursor] = cur
		return StatusOK, wire.PutUint32(nil, h.nextCursor)

	case OpNext, OpPrev:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp(err)
		}
		var e *core.Entry
		if op == OpNext {
			e, err = cur.Next()
		} else {
			e, err = cur.Prev()
		}
		if err == io.EOF {
			return StatusEOF, nil
		}
		if err != nil {
			return errResp(err)
		}
		return StatusOK, encodeEntry(e)

	case OpSeekTime:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp(err)
		}
		ts, err := d.Int64()
		if err != nil {
			return errResp(err)
		}
		if err := cur.SeekTime(ts); err != nil {
			return errResp(err)
		}
		return StatusOK, nil

	case OpSeekStart, OpSeekEnd:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp(err)
		}
		if op == OpSeekStart {
			cur.SeekStart()
		} else {
			cur.SeekEnd()
		}
		return StatusOK, nil

	case OpSeekPos:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp(err)
		}
		block, err := d.Uvarint()
		if err != nil {
			return errResp(err)
		}
		rec, err := d.Uvarint()
		if err != nil {
			return errResp(err)
		}
		if err := cur.SeekPos(int(block), int(rec)); err != nil {
			return errResp(err)
		}
		return StatusOK, nil

	case OpCursorEnd:
		handle, err := d.Uvarint()
		if err != nil {
			return errResp(err)
		}
		delete(h.cursors, uint32(handle))
		return StatusOK, nil

	case OpReadAt:
		block, err := d.Uvarint()
		if err != nil {
			return errResp(err)
		}
		index, err := d.Uvarint()
		if err != nil {
			return errResp(err)
		}
		e, err := svc.ReadAt(int(block), int(index))
		if err != nil {
			return errResp(err)
		}
		return StatusOK, encodeEntry(e)

	case OpStats:
		st := svc.Stats()
		out := wire.PutUint64(nil, uint64(st.EntriesAppended))
		out = wire.PutUint64(out, uint64(st.BlocksSealed))
		out = wire.PutUint64(out, uint64(st.ClientBytes))
		out = wire.PutUint64(out, uint64(svc.End()))
		return StatusOK, out

	default:
		return errResp(fmt.Errorf("server: unknown op %d", op))
	}
}

func (h *connHandler) cursor(d *Decoder) (*core.Cursor, error) {
	handle, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	cur, ok := h.cursors[uint32(handle)]
	if !ok {
		return nil, fmt.Errorf("server: unknown cursor handle %d", handle)
	}
	return cur, nil
}

func encodeEntry(e *core.Entry) []byte {
	out := wire.PutUint16(nil, e.LogID)
	out = wire.PutUint64(out, uint64(e.Timestamp))
	var flags byte
	if e.Timestamped {
		flags |= EntryTimestamped
	}
	if e.Forced {
		flags |= EntryForced
	}
	out = append(out, flags)
	out = wire.PutUvarint(out, uint64(e.Block))
	out = wire.PutUvarint(out, uint64(e.Index))
	out = wire.PutUvarint(out, uint64(len(e.ExtraIDs)))
	for _, id := range e.ExtraIDs {
		out = wire.PutUint16(out, id)
	}
	return PutBytes(out, e.Data)
}
