package wire

// Hello is the OpHello payload: the session handshake that attaches a
// connection to a client session and, on a multi-tenant server, presents the
// tenant's credentials.
//
// Wire form: u64 session id, optionally followed by a length-prefixed tenant
// name and a length-prefixed shared-secret token. The bare eight-byte form
// is exactly the pre-tenancy payload, so old clients keep working against a
// server running in open (tenant-less) mode, and the decoder accepts both.
type Hello struct {
	// Session is the client-chosen session id (0 = connection-private
	// session, no duplicate suppression across reconnects).
	Session uint64
	// Tenant names the tenant the session authenticates as; "" on a server
	// without tenants configured.
	Tenant string
	// Token is the tenant's shared secret, checked against the server's
	// config. Compared constant-time server-side.
	Token string
}

// Encode appends the handshake's wire form. The tenant fields are emitted
// only when a tenant is named, keeping the tenant-less payload byte-identical
// to the legacy eight-byte form.
func (h Hello) Encode(b []byte) []byte {
	b = PutUint64(b, h.Session)
	if h.Tenant == "" && h.Token == "" {
		return b
	}
	b = putBytes(b, []byte(h.Tenant))
	return putBytes(b, []byte(h.Token))
}

// DecodeHello parses an OpHello payload, legacy or tenant-extended.
func DecodeHello(payload []byte) (Hello, error) {
	r := &streamReader{buf: payload}
	var h Hello
	s, err := r.u64("session")
	if err != nil {
		return h, err
	}
	h.Session = s
	if len(r.buf) == 0 {
		return h, nil
	}
	if h.Tenant, err = r.str("tenant"); err != nil {
		return h, err
	}
	if h.Token, err = r.str("token"); err != nil {
		return h, err
	}
	return h, nil
}
