package obs

import (
	"testing"
	"time"
)

func TestTraceSpansAndGrafting(t *testing.T) {
	tc := NewTracer(4, time.Hour)
	tr := tc.Start(9, "append")
	if tr == nil || tr.ID != 9 || tr.Op != "append" {
		t.Fatalf("Start = %+v", tr)
	}
	done := tr.Span("wodev.write")
	done()
	// Grafting pre-built spans (the group-commit leader → rider path).
	tr.Add(Span{Name: "core.group_commit", Start: time.Millisecond, Duration: 2 * time.Millisecond})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Name != "wodev.write" || spans[0].Start < 0 || spans[0].Duration < 0 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1] != (Span{Name: "core.group_commit", Start: time.Millisecond, Duration: 2 * time.Millisecond}) {
		t.Errorf("span 1 = %+v", spans[1])
	}
	tc.Finish(tr)
	recent := tc.Recent()
	if len(recent) != 1 || recent[0].ID != 9 || len(recent[0].Spans) != 2 {
		t.Errorf("recent = %+v", recent)
	}
	if len(tc.Slow()) != 0 {
		t.Error("fast trace landed in the slow ring")
	}
}

func TestTracerSlowCapture(t *testing.T) {
	tc := NewTracer(4, 100*time.Millisecond)
	slow := tc.Start(1, "force")
	slow.Start = time.Now().Add(-time.Second) // backdate: guaranteed over threshold
	tc.Finish(slow)
	fast := tc.Start(2, "read")
	tc.Finish(fast)
	got := tc.Slow()
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("slow ring = %+v", got)
	}
	if len(tc.Recent()) != 2 {
		t.Errorf("recent ring = %+v", tc.Recent())
	}
	// Zero threshold keeps everything.
	all := NewTracer(4, 0)
	all.Finish(all.Start(3, "ping"))
	if len(all.Slow()) != 1 {
		t.Error("zero threshold did not capture")
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tc := NewTracer(2, time.Hour)
	for id := uint64(1); id <= 3; id++ {
		tc.Finish(tc.Start(id, "op"))
	}
	got := tc.Recent()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Errorf("recent after overflow = %+v", got)
	}
}
