package clio

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestCreateOpenStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, DirOptions{VolumeBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.CreateLog(ctx, "/app", 0o644, "me")
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("line-%02d", i)
		if _, err := s.Append(ctx, id, []byte(p), AppendOptions{Forced: i%5 == 0}); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, DirOptions{VolumeBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, err := s2.OpenCursor(ctx, "/app")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		e, err := c.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(e.Data))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("round trip through files: %v", got)
	}
}

func TestCreateStoreRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateStore(dir, DirOptions{VolumeBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := CreateStore(dir, DirOptions{VolumeBlocks: 64}); err == nil {
		t.Error("CreateStore over existing store accepted")
	}
}

func TestOpenStoreEmpty(t *testing.T) {
	if _, err := OpenStore(t.TempDir(), DirOptions{}); err == nil {
		t.Error("OpenStore on empty dir accepted")
	}
}

func TestDirStoreSpansVolumeFiles(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := CreateStore(dir, DirOptions{VolumeBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.CreateLog(ctx, "/big", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200)
	for i := 0; i < 200; i++ {
		if _, err := s.Append(ctx, id, payload, AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := listVolumes(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("volume files: %v, %v", names, err)
	}
	s2, err := OpenStore(dir, DirOptions{VolumeBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, _ := s2.OpenCursor(ctx, "/big")
	count := 0
	for {
		_, err := c.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 200 {
		t.Errorf("recovered %d entries across volume files", count)
	}
}

func TestMemAllocatorFacade(t *testing.T) {
	ctx := context.Background()
	st, err := NewMemStore(1, 256, 16, Options{BlockSize: 256, Degree: 4, Allocate: MemAllocator(16)})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	id, err := st.CreateLog(ctx, "/x", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := st.Append(ctx, id, make([]byte, 100), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(st.Service(0).Volumes()) < 2 {
		t.Errorf("allocator not used: %d volumes", len(st.Service(0).Volumes()))
	}
}

// TestStoreSentinelErrors pins the error-wrapping contract of the store
// open/create paths: every refusal wraps ErrStoreExists or ErrNoStore with
// %w, so errors.Is works through the Store helpers.
func TestStoreSentinelErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, DirOptions{VolumeBlocks: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateStore(dir, DirOptions{VolumeBlocks: 64}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("CreateStore over sharded store: %v, want ErrStoreExists", err)
	}

	flat := t.TempDir()
	svc, err := CreateStore(flat, DirOptions{VolumeBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateStore(flat, DirOptions{VolumeBlocks: 64}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("CreateStore over flat store: %v, want ErrStoreExists", err)
	}

	empty := t.TempDir()
	if _, err := OpenStore(empty, DirOptions{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenStore on empty dir: %v, want ErrNoStore", err)
	}
	if _, err := OpenStore(empty, DirOptions{Shards: 3}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenStore asserting shards on empty dir: %v, want ErrNoStore", err)
	}
}
