package shard

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"clio/internal/logapi"
)

// shardedPaths returns one path per shard of an n-shard store, found by
// probing root segments until every shard is covered.
func shardedPaths(t *testing.T, st *Store) []string {
	t.Helper()
	n := st.Shards()
	out := make([]string, n)
	covered := 0
	for i := 0; covered < n && i < 256; i++ {
		p := fmt.Sprintf("/seg%03d", i)
		sh, err := st.ShardFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if out[sh] == "" {
			out[sh] = p
			covered++
		}
	}
	if covered != n {
		t.Fatalf("256 probe segments covered only %d of %d shards", covered, n)
	}
	return out
}

// TestRootCursorSeesPostSeekEndAppends is the live-tail regression test for
// the merged root cursor: positioned at the current end (where Next reports
// io.EOF), it must observe entries appended afterwards — on any shard,
// including into still-staged tail blocks — in store-wide timestamp order.
func TestRootCursorSeesPostSeekEndAppends(t *testing.T) {
	st := newStore(t, 4)
	paths := shardedPaths(t, st)
	ids := make([]logapi.ID, len(paths))
	for i, p := range paths {
		id, err := st.CreateLog(bg, p, 0o644, "t")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if _, err := st.Append(bg, id, []byte("pre"), logapi.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}

	cur, err := st.OpenCursor(bg, "/")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if err := cur.SeekEnd(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(bg); err != io.EOF {
		t.Fatalf("Next at end: %v", err)
	}

	// Appends after positioning, interleaved across shards. The store's
	// shards share one monotonic test clock, so timestamp order is the
	// append order.
	var want []string
	for round := 0; round < 3; round++ {
		for i, id := range ids {
			data := fmt.Sprintf("post-%d-%d", round, i)
			if _, err := st.Append(bg, id, []byte(data),
				logapi.AppendOptions{Forced: true, Timestamped: true}); err != nil {
				t.Fatal(err)
			}
			want = append(want, data)
		}
	}

	lastTS := int64(0)
	for i, w := range want {
		e, err := cur.Next(bg)
		if err != nil {
			t.Fatalf("Next %d after positioning: %v", i, err)
		}
		if string(e.Data) != w {
			t.Fatalf("entry %d: %q, want %q (timestamp order broken)", i, e.Data, w)
		}
		if e.Timestamp < lastTS {
			t.Fatalf("entry %d timestamp %d < previous %d", i, e.Timestamp, lastTS)
		}
		lastTS = e.Timestamp
	}
	if _, err := cur.Next(bg); err != io.EOF {
		t.Fatalf("EOF after drain: %v", err)
	}
}

func recvWatch(t *testing.T, sub logapi.Subscription) *logapi.Entry {
	t.Helper()
	ctx, cancel := context.WithTimeout(bg, 5*time.Second)
	defer cancel()
	e, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return e
}

// TestWatchRoutedPath tails one log file: the subscription routes to the
// owning shard and stamps its ordinal on delivered entries.
func TestWatchRoutedPath(t *testing.T) {
	st := newStore(t, 4)
	id, err := st.CreateLog(bg, "/mail", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := st.Watch(bg, "/mail", logapi.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 3; i++ {
		if _, err := st.Append(bg, id, []byte(fmt.Sprintf("m%d", i)),
			logapi.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		e := recvWatch(t, sub)
		if string(e.Data) != fmt.Sprintf("m%d", i) {
			t.Fatalf("entry %d: %q", i, e.Data)
		}
		if e.Shard != id.Shard() {
			t.Fatalf("entry carries shard %d, log lives on %d", e.Shard, id.Shard())
		}
	}
}

// TestWatchRootLiveMerge tails the root: a K-leg subscription live-merging
// every shard's tail, delivering cross-shard appends in timestamp order
// when they are pending together.
func TestWatchRootLiveMerge(t *testing.T) {
	st := newStore(t, 3)
	paths := shardedPaths(t, st)
	ids := make([]logapi.ID, len(paths))
	for i, p := range paths {
		id, err := st.CreateLog(bg, p, 0o644, "t")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	sub, err := st.Watch(bg, "/", logapi.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var want []string
	for round := 0; round < 4; round++ {
		for i, id := range ids {
			data := fmt.Sprintf("r%d-s%d", round, i)
			if _, err := st.Append(bg, id, []byte(data),
				logapi.AppendOptions{Forced: true, Timestamped: true}); err != nil {
				t.Fatal(err)
			}
			want = append(want, data)
		}
	}
	got := make(map[string]int, len(want))
	lastTS := int64(0)
	for range want {
		e := recvWatch(t, sub)
		got[string(e.Data)]++
		if e.Timestamp < lastTS {
			t.Fatalf("merge order broken: %d after %d", e.Timestamp, lastTS)
		}
		lastTS = e.Timestamp
	}
	for _, w := range want {
		if got[w] != 1 {
			t.Fatalf("entry %q delivered %d times", w, got[w])
		}
	}
}
