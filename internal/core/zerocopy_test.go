package core

import (
	"fmt"
	"testing"
	"unsafe"

	"clio/internal/cache"
	"clio/internal/wodev"
)

// zeroCopySetup builds a service with a few sealed blocks and returns it
// along with the (block, index) of a sealed, unfragmented entry.
func zeroCopySetup(t testing.TB) (*Service, int, int) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: opt.BlockSize, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	switch tt := t.(type) {
	case *testing.T:
		tt.Cleanup(func() { s.Close() })
	case *testing.B:
		tt.Cleanup(func() { s.Close() })
	}
	id, err := s.CreateLog("/zc", 0o644, "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := s.Append(id, []byte(fmt.Sprintf("payload-%03d", i)), AppendOptions{}); err != nil && !IsDegraded(err) {
			t.Fatal(err)
		}
	}
	if err := s.SealTail(); err != nil {
		t.Fatal(err)
	}
	// Find a sealed entry to read back.
	var e Entry
	for b := 0; b < s.endShared(); b++ {
		db, err := s.decodeBlock(b)
		if err != nil {
			continue
		}
		for i := range db.p.Records {
			r := &db.p.Records[i]
			if r.LogID == id && !r.Continued && !r.Continues {
				if err := s.ReadAtInto(b, i, &e); err == nil {
					return s, b, i
				}
			}
		}
	}
	t.Fatal("no sealed unfragmented entry found")
	return nil, 0, 0
}

// TestZeroCopyWarmRead verifies both halves of the zero-copy contract: a
// warm ReadAtInto performs no allocations, and the Entry.Data it returns is
// a subslice of the cache-owned block image rather than a copy.
func TestZeroCopyWarmRead(t *testing.T) {
	s, block, index := zeroCopySetup(t)

	var e Entry
	if err := s.ReadAtInto(block, index, &e); err != nil { // warm the decode
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.ReadAtInto(block, index, &e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ReadAtInto allocated %.1f objects/op, want 0", allocs)
	}

	// e.Data must alias the cached block image, not a copy of it.
	img := s.blockCache().Lookup(cache.Key{Block: block})
	if img == nil {
		t.Fatal("block image not cached after warm read")
	}
	start := uintptr(unsafe.Pointer(unsafe.SliceData(img)))
	end := start + uintptr(len(img))
	p := uintptr(unsafe.Pointer(unsafe.SliceData(e.Data)))
	if p < start || p+uintptr(len(e.Data)) > end {
		t.Fatalf("Entry.Data does not alias the cached block image")
	}
}

// TestZeroCopyCursorWarmNext verifies that a cursor re-walking a sealed
// region reuses cache-attached decodes: the second pass must not re-parse
// (no per-block allocation beyond the Entry values themselves).
func TestZeroCopyCursorWarmNext(t *testing.T) {
	s, _, _ := zeroCopySetup(t)
	c, err := s.OpenCursor("/zc")
	if err != nil {
		t.Fatal(err)
	}
	first := 0
	for {
		e, err := c.Next()
		if err != nil {
			break
		}
		_ = e
		first++
	}
	c.SeekStart()
	second := 0
	for {
		e, err := c.Next()
		if err != nil {
			break
		}
		if len(e.Data) == 0 {
			t.Fatal("empty entry data")
		}
		second++
	}
	if first == 0 || first != second {
		t.Fatalf("cursor passes disagree: %d then %d", first, second)
	}
}

// BenchmarkReadAtWarm measures the warm zero-copy read path; the CI bench
// gate asserts 0 allocs/op from this benchmark's output.
func BenchmarkReadAtWarm(b *testing.B) {
	s, block, index := zeroCopySetup(b)
	var e Entry
	if err := s.ReadAtInto(block, index, &e); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReadAtInto(block, index, &e); err != nil {
			b.Fatal(err)
		}
	}
}
