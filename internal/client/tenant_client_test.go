package client

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/shard"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// tenantPair serves an in-memory store with the given tenant table and
// returns a redialable client authenticated as the tenant.
func tenantPair(t *testing.T, tenants []server.Tenant, tenant, token string) (*Client, *server.Server) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.New([]*core.Service{svc})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewStore(st)
	srv.SetTenants(tenants)
	dialer := func(ctx context.Context) (net.Conn, error) {
		cConn, sConn := net.Pipe()
		go srv.ServeConn(sConn)
		return cConn, nil
	}
	cl, err := DialContext(bg, "", Options{Dialer: dialer, Tenant: tenant, Token: token})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close(); srv.Close(); st.Close() })
	return cl, srv
}

func TestClientTenantSession(t *testing.T) {
	tenants := []server.Tenant{{Name: "acme", Token: "s3cret", MaxBytes: 64}}
	cl, _ := tenantPair(t, tenants, "acme", "s3cret")

	id, err := cl.CreateLog(bg, "/acme", 0o644, "t")
	if err != nil {
		t.Fatalf("create inside namespace: %v", err)
	}
	if _, err := cl.Append(bg, id, []byte(strings.Repeat("x", 40)), AppendOptions{Forced: true}); err != nil {
		t.Fatalf("append inside budget: %v", err)
	}

	// Over budget: the typed quota error comes back once, un-retried.
	_, err = cl.Append(bg, id, []byte(strings.Repeat("y", 40)), AppendOptions{Forced: true})
	if !IsQuota(err) {
		t.Fatalf("append over budget: %v, want QuotaError", err)
	}
	if !strings.Contains(err.Error(), "over bytes quota") {
		t.Errorf("quota error text = %q", err)
	}

	// Outside the namespace: refused.
	if _, err := cl.CreateLog(bg, "/other", 0o644, "t"); err == nil {
		t.Error("create outside namespace accepted")
	}
}

func TestClientBadTokenFailsHandshake(t *testing.T) {
	tenants := []server.Tenant{{Name: "acme", Token: "s3cret"}}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.New([]*core.Service{svc})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewStore(st)
	srv.SetTenants(tenants)
	t.Cleanup(func() { srv.Close(); st.Close() })
	dialer := func(ctx context.Context) (net.Conn, error) {
		cConn, sConn := net.Pipe()
		go srv.ServeConn(sConn)
		return cConn, nil
	}
	ctx, cancel := context.WithTimeout(bg, 2*time.Second)
	defer cancel()
	cl, err := DialContext(ctx, "", Options{Dialer: dialer, Tenant: "acme", Token: "wrong"})
	if err == nil {
		cl.Close()
		t.Fatal("handshake with a bad token succeeded")
	}
}

// TestWatchSurvivesDrainWithStreamEnd: the client-visible half of the drain
// guarantee — a Watch subscriber of a server being SIGTERM-drained gets the
// explicit "ended by server" error, never a bare connection reset.
func TestWatchSurvivesDrainWithStreamEnd(t *testing.T) {
	tenants := []server.Tenant{{Name: "acme", Token: "s3cret"}}
	cl, srv := tenantPair(t, tenants, "acme", "s3cret")
	if _, err := cl.CreateLog(bg, "/acme", 0o644, "t"); err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Watch(bg, "/acme", logapi.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(bg, 30*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(bg, 10*time.Second)
	defer cancel()
	_, err = sub.Recv(ctx)
	if err == nil || !strings.Contains(err.Error(), "subscription ended by server") {
		t.Fatalf("Recv during drain: %v, want explicit stream end", err)
	}
	if !strings.Contains(err.Error(), "shutting down") {
		t.Errorf("stream end reason = %q", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestWatchAuthenticates: a multi-tenant server refuses an unauthenticated
// subscribe, and the tenant client's dedicated Watch connection presents
// its credentials.
func TestWatchAuthenticates(t *testing.T) {
	tenants := []server.Tenant{{Name: "acme", Token: "s3cret"}}
	cl, srv := tenantPair(t, tenants, "acme", "s3cret")
	if _, err := cl.CreateLog(bg, "/acme", 0o644, "t"); err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Watch(bg, "/acme", logapi.WatchOptions{})
	if err != nil {
		t.Fatalf("authenticated watch: %v", err)
	}
	defer sub.Close()
	id, err := cl.Resolve(bg, "/acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append(bg, id, []byte("hi"), AppendOptions{Forced: true}); err != nil {
		t.Fatal(err)
	}
	e := recvSub(t, sub)
	if string(e.Data) != "hi" {
		t.Errorf("delivered %q", e.Data)
	}

	// A raw, unauthenticated subscribe on the same server is refused.
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	defer cConn.Close()
	req := wire.StreamSubscribe{Path: "/acme", Buffer: 4, Credit: 4}
	cConn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := server.WriteFrame(cConn, wire.OpStreamSubscribe, 1, 0, req.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	status, _, _, _, err := server.ReadFrame(cConn)
	if err != nil {
		t.Fatal(err)
	}
	if status == server.StatusOK {
		t.Error("unauthenticated subscribe accepted on a multi-tenant server")
	}
}
