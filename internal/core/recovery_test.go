package core

import (
	"fmt"
	"testing"

	"clio/internal/wodev"
)

// crashAndReopen simulates a server crash (volatile state lost) and reopens
// the service over the same device and NVRAM.
func crashAndReopen(t *testing.T, s *Service, dev wodev.Device, opt Options) *Service {
	t.Helper()
	s.Crash()
	s2, err := Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	return s2
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	for _, nvram := range []bool{true, false} {
		t.Run(fmt.Sprintf("nvram=%v", nvram), func(t *testing.T) {
			tc := &testClock{}
			opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
			if nvram {
				opt.NVRAM = NewMemNVRAM()
			}
			dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
			s, err := New(dev, opt)
			if err != nil {
				t.Fatal(err)
			}
			id := mustCreate(t, s, "/l")
			var want []string
			for i := 0; i < 60; i++ {
				p := fmt.Sprintf("entry-%02d", i)
				mustAppend(t, s, id, p, AppendOptions{})
				want = append(want, p)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2, err := Open([]wodev.Device{dev}, opt)
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := datas(readAll(t, s2, "/l")); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("after clean close: %d vs %d entries", len(got), len(want))
			}
			// The catalog survived: same id resolves.
			got, err := s2.Resolve("/l")
			if err != nil || got != id {
				t.Errorf("Resolve after reopen: %d, %v", got, err)
			}
		})
	}
}

func TestCrashLosesOnlyUnforcedTail(t *testing.T) {
	nv := NewMemNVRAM()
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, NVRAM: nv}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/d")
	mustAppend(t, s, id, "durable-1", AppendOptions{Forced: true})
	mustAppend(t, s, id, "durable-2", AppendOptions{Forced: true})
	mustAppend(t, s, id, "volatile", AppendOptions{}) // staged in cache only

	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	got := datas(readAll(t, s2, "/d"))
	if fmt.Sprint(got) != "[durable-1 durable-2]" {
		t.Errorf("after crash: %v", got)
	}
	// Prefix durability: nothing after a lost entry survives, and
	// everything before the last forced entry does.
	mustAppend(t, s2, id, "after-crash", AppendOptions{Forced: true})
	got = datas(readAll(t, s2, "/d"))
	if fmt.Sprint(got) != "[durable-1 durable-2 after-crash]" {
		t.Errorf("after recovery append: %v", got)
	}
}

func TestCrashWithoutNVRAMForcedSeals(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now} // no NVRAM
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/d")
	mustAppend(t, s, id, "forced", AppendOptions{Forced: true})
	st := s.Stats()
	if st.PaddingBytes == 0 {
		t.Error("forced write without NVRAM did not pad a block")
	}
	mustAppend(t, s, id, "unforced", AppendOptions{})
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	got := datas(readAll(t, s2, "/d"))
	if fmt.Sprint(got) != "[forced]" {
		t.Errorf("after crash without NVRAM: %v", got)
	}
}

func TestRecoveryExactness(t *testing.T) {
	// Invariant 3: state after crash+recover equals pre-crash durable state
	// exactly — continue writing on both and compare.
	nv := NewMemNVRAM()
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, NVRAM: nv}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 14})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	a := mustCreate(t, s, "/a")
	b := mustCreate(t, s, "/a/sub")
	var want []string
	for i := 0; i < 150; i++ {
		p := fmt.Sprintf("e-%03d", i)
		tgt := a
		if i%3 == 0 {
			tgt = b
		}
		mustAppend(t, s, tgt, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	if got := datas(readAll(t, s2, "/a")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered parent log: %d vs %d entries", len(got), len(want))
	}
	// Writing continues seamlessly, including across entrymap boundaries.
	for i := 150; i < 300; i++ {
		p := fmt.Sprintf("e-%03d", i)
		mustAppend(t, s2, a, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	if got := datas(readAll(t, s2, "/a")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-recovery writes: %d vs %d entries", len(got), len(want))
	}
}

func TestRepeatedCrashes(t *testing.T) {
	nv := NewMemNVRAM()
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, NVRAM: nv}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 14})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/r")
	var want []string
	for round := 0; round < 8; round++ {
		for i := 0; i < 20; i++ {
			p := fmt.Sprintf("r%d-e%02d", round, i)
			mustAppend(t, s, id, p, AppendOptions{Forced: true})
			want = append(want, p)
		}
		s = crashAndReopen(t, s, dev, opt)
	}
	defer s.Close()
	if got := datas(readAll(t, s, "/r")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after %d crashes: %d vs %d entries", 8, len(datas(readAll(t, s, "/r"))), len(want))
	}
}

func TestRecoveryWithBinarySearchEnd(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/b")
	var want []string
	for i := 0; i < 80; i++ {
		p := fmt.Sprintf("e%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	s.Crash()
	// The reopened device no longer reports its end: §2.3.1's binary search.
	dev.SetReportEnd(false)
	s2, err := Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.LastRecovery()
	if rep.EndProbes == 0 {
		t.Error("no probes recorded; binary search did not run")
	}
	if got := datas(readAll(t, s2, "/b")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("binary-search recovery: %d vs %d", len(datas(readAll(t, s2, "/b"))), len(want))
	}
}

func TestRecoveryReportCounts(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 14})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/c")
	for i := 0; i < 200; i++ {
		mustAppend(t, s, id, fmt.Sprintf("entry-%03d", i), AppendOptions{Forced: true})
	}
	end := s.End()
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	rep := s2.LastRecovery()
	if rep.SealedBlocks == 0 || rep.SealedBlocks < end-1 {
		t.Errorf("SealedBlocks = %d, end was %d", rep.SealedBlocks, end)
	}
	if rep.CatalogEntries != 1 {
		t.Errorf("CatalogEntries = %d, want 1", rep.CatalogEntries)
	}
	// §3.4: reconstruction examines at most N·log_N(b) blocks.
	n := 4
	logN := 0
	for v := rep.SealedBlocks; v > 0; v /= n {
		logN++
	}
	if got := rep.EntrymapBlocksScanned + rep.EntrymapEntriesRead; got > n*logN {
		t.Errorf("reconstruction examined %d, bound %d", got, n*logN)
	}
}

func TestDamagedBlockSkippedOnRead(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CacheBlocks: -1}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/dmg")
	for i := 0; i < 50; i++ {
		mustAppend(t, s, id, fmt.Sprintf("e%02d", i), AppendOptions{Forced: true})
	}
	before := datas(readAll(t, s, "/dmg"))
	// Damage a mid-volume block (device index 5 = data block 4).
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	if err := dev.Damage(5, garbage); err != nil {
		t.Fatal(err)
	}
	s.FlushCache() // drop the cached good copy
	after := datas(readAll(t, s, "/dmg"))
	if len(after) >= len(before) {
		t.Fatalf("damage lost nothing: %d vs %d", len(after), len(before))
	}
	// Everything else is intact and in order.
	j := 0
	for _, e := range before {
		if j < len(after) && after[j] == e {
			j++
		}
	}
	if j != len(after) {
		t.Error("surviving entries are not an ordered subset")
	}
}

func TestDamagedUnwrittenBlockInvalidatedAndLogged(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/bb")
	mustAppend(t, s, id, "first", AppendOptions{Forced: true})
	// Damage the next unwritten device block; the writer must invalidate it,
	// slide forward, and log it in /.badblocks.
	next := dev.Written()
	if err := dev.Damage(next, nil); err != nil {
		t.Fatal(err)
	}
	var want []string
	want = append(want, "first")
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("after-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	if got := s.Stats().DeadBlocks; got != 1 {
		t.Errorf("DeadBlocks = %d", got)
	}
	if got := datas(readAll(t, s, "/bb")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("entries after slide: %d vs %d", len(datas(readAll(t, s, "/bb"))), len(want))
	}
	// The bad block is visible after recovery via the bad-block log.
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	if rep := s2.LastRecovery(); len(rep.BadBlocks) != 1 {
		t.Errorf("recovered BadBlocks = %v", rep.BadBlocks)
	}
	if got := datas(readAll(t, s2, "/bb")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("after recovery: mismatch")
	}
}

func TestGarbageWrittenBlocksDoNotSinkVolume(t *testing.T) {
	// §2.3.2: "the presence of corrupted blocks should not render the
	// remainder of the volume unusable."
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CacheBlocks: -1}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	faulty := wodev.NewFaulty(dev, 99)
	s, err := New(faulty, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/g")
	// Every 5th sealed block is scribbled after the fact.
	faulty.SetGarbageEvery(5)
	total := 0
	for i := 0; i < 120; i++ {
		mustAppend(t, s, id, fmt.Sprintf("e%03d", i), AppendOptions{Forced: true})
		total++
	}
	faulty.SetGarbageEvery(0)
	s.Crash()
	s2, err := Open([]wodev.Device{faulty}, opt)
	if err != nil {
		t.Fatalf("recovery over damaged volume: %v", err)
	}
	defer s2.Close()
	got := datas(readAll(t, s2, "/g"))
	if len(got) == 0 || len(got) >= total {
		t.Errorf("recovered %d of %d entries", len(got), total)
	}
	// Still writable.
	mustAppend(t, s2, id, "fresh", AppendOptions{Forced: true})
	got2 := datas(readAll(t, s2, "/g"))
	if got2[len(got2)-1] != "fresh" {
		t.Error("volume unusable after damage")
	}
}

func TestRecoveryMultiVolume(t *testing.T) {
	alloc, extra := allocFromPool(t, 16)
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, Allocate: alloc}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 16})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/mv")
	var want []string
	for i := 0; i < 150; i++ {
		p := fmt.Sprintf("payload-%03d-%s", i, "yyyyyyyyyyyyyyyyyyyyyyy")
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	s.Crash()
	devs := []wodev.Device{dev}
	for _, d := range *extra {
		devs = append(devs, d)
	}
	s2, err := Open(devs, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := datas(readAll(t, s2, "/mv")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("multi-volume recovery: %d vs %d", len(datas(readAll(t, s2, "/mv"))), len(want))
	}
}

func TestStaleNVRAMIgnored(t *testing.T) {
	// The hand-crafted crash below models the synchronous seal path (crash
	// between device write and NVRAM clear), so pin the legacy path; the
	// pipelined analog is covered by the staged-seal recovery tests.
	nv := NewMemNVRAM()
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, NVRAM: nv, CommitWindow: -1}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/s")
	var all []string
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("e%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		all = append(all, p)
	}
	// Simulate a crash exactly between sealing block 0 and clearing the
	// NVRAM: the NVRAM still holds block 0's (already-sealed) image.
	sealedEnd := dev.Written() - 1 // data blocks on device
	img := make([]byte, 256)
	if err := dev.ReadBlock(1, img); err != nil {
		t.Fatal(err)
	}
	if err := nv.Store(0, img); err != nil {
		t.Fatal(err)
	}
	// Entries in the genuine tail were clobbered along with the NVRAM, so
	// only entries in sealed blocks survive.
	var want []string
	for _, e := range readAll(t, s, "/s") {
		if e.Block < sealedEnd {
			want = append(want, string(e.Data))
		}
	}
	if len(want) == 0 || len(want) == len(all) {
		t.Fatalf("bad test geometry: %d of %d sealed", len(want), len(all))
	}
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	if rep := s2.LastRecovery(); rep.TailRestored {
		t.Error("stale NVRAM image restored as tail")
	}
	if got := datas(readAll(t, s2, "/s")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("entries: got %d, want %d (sealed prefix)", len(got), len(want))
	}
}

func TestCatalogSurvivesAcrossManyLogFiles(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 512, Degree: 8, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{"/a", "/b", "/a/x", "/a/y", "/b/z"}
	ids := map[string]uint16{}
	for _, p := range paths {
		ids[p] = mustCreate(t, s, p)
	}
	if err := s.SetPerms("/a", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Retire("/b/z"); err != nil {
		t.Fatal(err)
	}
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	for _, p := range paths {
		got, err := s2.Resolve(p)
		if err != nil || got != ids[p] {
			t.Errorf("Resolve(%s) = %d, %v; want %d", p, got, err, ids[p])
		}
	}
	d, err := s2.Stat("/a")
	if err != nil || d.Perms != 0o600 {
		t.Errorf("Stat /a: %+v, %v", d, err)
	}
	d, err = s2.Stat("/b/z")
	if err != nil || !d.Retired {
		t.Errorf("Stat /b/z: %+v, %v", d, err)
	}
}
