package core

import (
	"bytes"
	"errors"
	"fmt"

	"clio/internal/faults"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// Named fault points instrumented in this package (armed through
// Options.Faults, see faults.Registry):
const (
	// FaultReadBlock fires before every device block read.
	FaultReadBlock = "core.read.block"
	// FaultSealWrite fires before every tail-block device write.
	FaultSealWrite = "core.seal.write"
	// FaultNVRAMStore fires before every NVRAM tail store.
	FaultNVRAMStore = "core.nvram.store"
)

// DegradedError reports that an operation COMPLETED — the entry is durable
// and readable — but only by routing around failures: one or more target
// blocks could not be written (damaged media, or transient faults that
// outlasted the retry budget) and were invalidated and skipped (§2.3.2).
// Callers that care can log it or alert on it; callers that only care about
// durability may treat it as success.
type DegradedError struct {
	// Timestamp is the completed entry's server timestamp (valid — the
	// write went through).
	Timestamp int64
	// Relocated lists the global block indices that were invalidated and
	// skipped while completing the operation.
	Relocated []int
	// Cause is the last device error that forced a relocation.
	Cause error
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("clio: write completed degraded (relocated past blocks %v): %v",
		e.Relocated, e.Cause)
}

// Unwrap exposes the device error that forced the relocation.
func (e *DegradedError) Unwrap() error { return e.Cause }

// IsDegraded reports whether err is a degraded-completion notice (the
// operation succeeded).
func IsDegraded(err error) bool {
	var d *DegradedError
	return errors.As(err, &d)
}

// opDegradedReset starts a fresh degradation record for one client
// operation; s.mu held. Relocations performed by the background sealer
// since the last operation are folded in, so a pipelined slide — whose own
// append was acked before the damage was discovered — is still reported to
// a client, on the next completed operation (§2.3.2's notice, deferred).
func (s *Service) opDegradedReset() {
	s.opDegraded = s.opDegraded[:0]
	s.opDegradedCause = nil
	if len(s.pendingDegraded) > 0 {
		s.opDegraded = append(s.opDegraded, s.pendingDegraded...)
		s.opDegradedCause = s.pendingDegradedCause
		s.pendingDegraded = s.pendingDegraded[:0]
		s.pendingDegradedCause = nil
	}
}

// opDegradedErr returns the operation's degraded-completion notice, or nil
// when nothing was relocated; s.mu held.
func (s *Service) opDegradedErr(ts int64) error {
	if len(s.opDegraded) == 0 {
		return nil
	}
	return &DegradedError{
		Timestamp: ts,
		Relocated: append([]int(nil), s.opDegraded...),
		Cause:     s.opDegradedCause,
	}
}

// readDeviceBlock reads devIdx from the volume's device with the service
// retry policy masking transient faults; mirrored devices route around
// silently corrupted replicas via validated reads. It touches only
// immutable/internally synchronized state, so the lock-free read path may
// call it.
func (s *Service) readDeviceBlock(v *volume.Volume, devIdx int, buf []byte, valid func([]byte) bool) error {
	return s.retry.Do(func() error {
		if ferr := s.opt.Faults.Fire(FaultReadBlock); ferr != nil {
			return ferr
		}
		if mv, ok := v.Dev.(validatedReader); ok {
			return mv.ReadValidated(devIdx, buf, valid)
		}
		return v.Dev.ReadBlock(devIdx, buf)
	})
}

// writeTailBlockLocked writes img at devIdx with the service retry policy.
// If a retried write reports ErrRewrite, the block is read back and compared
// to img: an earlier attempt that succeeded after its acknowledgement was
// lost must count as success, not a write-once violation.
func (s *Service) writeTailBlockLocked(v *volume.Volume, devIdx int, img []byte) error {
	err := s.retry.Do(func() error {
		if ferr := s.opt.Faults.Fire(FaultSealWrite); ferr != nil {
			return ferr
		}
		return v.Dev.WriteAt(devIdx, img)
	})
	if errors.Is(err, wodev.ErrRewrite) {
		buf := make([]byte, len(img))
		if rerr := v.Dev.ReadBlock(devIdx, buf); rerr == nil && bytes.Equal(buf, img) {
			return nil
		}
	}
	return err
}

// storeNVRAMLocked stages the tail image to NVRAM with transient faults
// retried.
func (s *Service) storeNVRAMLocked(global int, img []byte) error {
	return s.retry.Do(func() error {
		if ferr := s.opt.Faults.Fire(FaultNVRAMStore); ferr != nil {
			return ferr
		}
		return s.opt.NVRAM.Store(global, img)
	})
}

// transientExhausted reports whether err is a transient fault that outlasted
// the retry budget — treated like damaged media at the seal site: invalidate
// the target block and relocate (§2.3.2).
func transientExhausted(err error) bool {
	return err != nil && faults.Classify(err) == faults.Transient
}
