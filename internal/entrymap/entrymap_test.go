package entrymap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clio/internal/wire"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	bm1 := wire.NewBitmap(16)
	bm1.Set(0)
	bm1.Set(15)
	bm2 := wire.NewBitmap(16)
	bm2.Set(7)
	e := &Entry{
		Level:    2,
		Boundary: 512,
		N:        16,
		Maps: []IDMap{
			{ID: 2, Bits: bm1},
			{ID: 100, Bits: bm2},
		},
	}
	enc := e.Encode(nil)
	if len(enc) != e.EncodedSize() {
		t.Errorf("EncodedSize = %d, len = %d", e.EncodedSize(), len(enc))
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0, 0, 0, 0, 0, 16, 0, 0}, // level 0
		{1, 0, 0, 0, 0, 1, 0, 0},  // N=1
		(&Entry{Level: 1, Boundary: 16, N: 16,
			Maps: []IDMap{{ID: 5, Bits: wire.NewBitmap(16)}}}).Encode(nil)[:9], // truncated
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestEntryGet(t *testing.T) {
	bm := wire.NewBitmap(8)
	bm.Set(3)
	e := &Entry{Level: 1, Boundary: 8, N: 8, Maps: []IDMap{{ID: 5, Bits: bm}}}
	if e.Get(5) == nil {
		t.Error("Get(5) = nil")
	}
	if e.Get(4) != nil || e.Get(6) != nil {
		t.Error("Get of absent id != nil")
	}
}

func TestAccumulatorEmissionBoundaries(t *testing.T) {
	acc, err := NewAccumulator(4)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2's example: N=4. Write 16 blocks; log file 5 appears in
	// blocks 1, 6, 7, 9, 14 (five shaded blocks).
	present := map[int]bool{1: true, 6: true, 7: true, 9: true, 14: true}
	type emitted struct {
		boundary int
		entries  []*Entry
	}
	var all []emitted
	for b := 0; b < 17; b++ {
		if due := acc.EntriesDue(b); due != nil {
			all = append(all, emitted{b, due})
		}
		if b < 16 {
			var ids []uint16
			if present[b] {
				ids = []uint16{5}
			}
			acc.NoteBlock(b, ids)
		}
	}
	// Boundaries 4, 8, 12 emit level-1; boundary 16 emits level-2 and level-1.
	if len(all) != 4 {
		t.Fatalf("emissions at %d boundaries, want 4", len(all))
	}
	for i, want := range []int{4, 8, 12, 16} {
		if all[i].boundary != want {
			t.Errorf("emission %d at boundary %d, want %d", i, all[i].boundary, want)
		}
	}
	if len(all[3].entries) != 2 {
		t.Fatalf("boundary 16 emitted %d entries, want 2 (level 2 + level 1)", len(all[3].entries))
	}
	if all[3].entries[0].Level != 2 || all[3].entries[1].Level != 1 {
		t.Errorf("boundary 16 order: levels %d,%d, want 2,1",
			all[3].entries[0].Level, all[3].entries[1].Level)
	}
	// Level-1 entry at 8 covers blocks 4..7: bits 2,3 (blocks 6,7).
	l1 := all[1].entries[0]
	bm := l1.Get(5)
	if bm == nil || bm.String()[:4] != "0011" {
		t.Errorf("level-1@8 bitmap = %v", bm)
	}
	// Level-2 entry at 16 covers groups 0..3: f in groups 0 (block 1),
	// 1 (6,7), 2 (9), 3 (14) -> all four bits.
	l2 := all[3].entries[0]
	bm2 := l2.Get(5)
	if bm2 == nil || bm2.String()[:4] != "1111" {
		t.Errorf("level-2@16 bitmap = %v", bm2)
	}
	// Boundary 4's entry covers blocks 0..3: only block 1.
	if got := all[0].entries[0].Get(5).String()[:4]; got != "0100" {
		t.Errorf("level-1@4 bitmap = %s", got)
	}
}

func TestAccumulatorExcludesUntrackedIDs(t *testing.T) {
	acc, _ := NewAccumulator(4)
	acc.NoteBlock(0, []uint16{VolumeSeqID, EntrymapID, CatalogID})
	acc.NoteBlock(1, nil)
	acc.NoteBlock(2, nil)
	acc.NoteBlock(3, nil)
	due := acc.EntriesDue(4)
	if len(due) != 1 {
		t.Fatalf("due = %d entries", len(due))
	}
	if len(due[0].Maps) != 1 || due[0].Maps[0].ID != CatalogID {
		t.Errorf("maps = %+v, want only catalog id", due[0].Maps)
	}
}

func TestAccumulatorNonBoundary(t *testing.T) {
	acc, _ := NewAccumulator(8)
	if acc.EntriesDue(0) != nil || acc.EntriesDue(7) != nil {
		t.Error("entries emitted at non-boundary")
	}
}

// fakeStore is a model-backed Source/RecoverSource: it drives a real
// Accumulator the way the writer would, stores emitted entries, and keeps
// the ground truth (ids per block) for naive reference searches.
type fakeStore struct {
	n       int
	blocks  [][]uint16
	ts      []int64
	entries map[[2]int]*Entry
	missing map[[2]int]bool
	acc     *Accumulator
}

func newFakeStore(t *testing.T, n int) *fakeStore {
	t.Helper()
	acc, err := NewAccumulator(n)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeStore{
		n:       n,
		entries: make(map[[2]int]*Entry),
		missing: make(map[[2]int]bool),
		acc:     acc,
	}
}

// seal appends a sealed block containing the given tracked ids.
func (f *fakeStore) seal(ids []uint16, ts int64) {
	b := len(f.blocks)
	for _, e := range f.acc.EntriesDue(b) {
		f.entries[[2]int{e.Level, e.Boundary}] = e
	}
	f.blocks = append(f.blocks, ids)
	f.ts = append(f.ts, ts)
	f.acc.NoteBlock(b, ids)
}

func (f *fakeStore) End() int { return len(f.blocks) }

func (f *fakeStore) EntryAt(level, boundary int) (*Entry, error) {
	k := [2]int{level, boundary}
	if f.missing[k] {
		return nil, nil
	}
	return f.entries[k], nil
}

func (f *fakeStore) Pending(level int, id uint16) wire.Bitmap {
	bm, _ := f.acc.Pending(level, id)
	return bm
}

func (f *fakeStore) BlockContains(block int, id uint16) (bool, error) {
	if block < 0 || block >= len(f.blocks) {
		return false, nil
	}
	for _, got := range f.blocks[block] {
		if got == id {
			return true, nil
		}
	}
	return false, nil
}

func (f *fakeStore) BlockFirstTS(block int) (int64, bool, error) {
	if block < 0 || block >= len(f.blocks) {
		return 0, false, nil
	}
	return f.ts[block], true, nil
}

func (f *fakeStore) BlockIDs(block int) ([]uint16, error) {
	if block < 0 || block >= len(f.blocks) {
		return nil, nil
	}
	var out []uint16
	for _, id := range f.blocks[block] {
		if tracked(id) {
			out = append(out, id)
		}
	}
	return out, nil
}

func (f *fakeStore) naivePrev(id uint16, before int) int {
	if before > len(f.blocks) {
		before = len(f.blocks)
	}
	for b := before - 1; b >= 0; b-- {
		for _, got := range f.blocks[b] {
			if got == id {
				return b
			}
		}
	}
	return -1
}

func (f *fakeStore) naiveNext(id uint16, from int) int {
	if from < 0 {
		from = 0
	}
	for b := from; b < len(f.blocks); b++ {
		for _, got := range f.blocks[b] {
			if got == id {
				return b
			}
		}
	}
	return -1
}

// buildRandom populates the store with `blocks` sealed blocks over `nids`
// client log files, each block containing each id with probability p.
func buildRandom(t *testing.T, n, blocks, nids int, p float64, seed int64) *fakeStore {
	t.Helper()
	f := newFakeStore(t, n)
	rng := rand.New(rand.NewSource(seed))
	ts := int64(1000)
	for b := 0; b < blocks; b++ {
		var ids []uint16
		for i := 0; i < nids; i++ {
			if rng.Float64() < p {
				ids = append(ids, uint16(FirstClientID+i))
			}
		}
		ts += int64(rng.Intn(5)) // non-decreasing, possibly equal
		f.seal(ids, ts)
	}
	return f
}

func TestFindPrevMatchesNaive(t *testing.T) {
	for _, n := range []int{4, 16} {
		f := buildRandom(t, n, 3*n*n+7, 6, 0.08, int64(n))
		loc, err := NewLocator(f, n)
		if err != nil {
			t.Fatal(err)
		}
		for id := uint16(FirstClientID); id < FirstClientID+6; id++ {
			for before := 0; before <= f.End()+2; before++ {
				got, err := loc.FindPrev(id, before)
				if err != nil {
					t.Fatal(err)
				}
				if want := f.naivePrev(id, before); got != want {
					t.Fatalf("N=%d FindPrev(%d,%d) = %d, want %d", n, id, before, got, want)
				}
			}
		}
	}
}

func TestFindNextMatchesNaive(t *testing.T) {
	for _, n := range []int{4, 16} {
		f := buildRandom(t, n, 3*n*n+5, 6, 0.08, int64(n)+100)
		loc, err := NewLocator(f, n)
		if err != nil {
			t.Fatal(err)
		}
		for id := uint16(FirstClientID); id < FirstClientID+6; id++ {
			for from := -1; from <= f.End()+2; from++ {
				got, err := loc.FindNext(id, from)
				if err != nil {
					t.Fatal(err)
				}
				if want := f.naiveNext(id, from); got != want {
					t.Fatalf("N=%d FindNext(%d,%d) = %d, want %d", n, id, from, got, want)
				}
			}
		}
	}
}

func TestFindPrevAbsentID(t *testing.T) {
	f := buildRandom(t, 8, 200, 2, 0.2, 9)
	loc, _ := NewLocator(f, 8)
	got, err := loc.FindPrev(999, f.End())
	if err != nil || got != -1 {
		t.Errorf("absent id: %d, %v", got, err)
	}
}

func TestFindPrevWithMissingEntries(t *testing.T) {
	// Knock out a fraction of the written entrymap entries (displaced or
	// corrupted, §2.3.2); the locator must still be exact via raw scans.
	f := buildRandom(t, 4, 300, 4, 0.1, 21)
	rng := rand.New(rand.NewSource(77))
	for k := range f.entries {
		if rng.Float64() < 0.3 {
			f.missing[k] = true
		}
	}
	loc, _ := NewLocator(f, 4)
	for id := uint16(FirstClientID); id < FirstClientID+4; id++ {
		for before := 0; before <= f.End(); before += 7 {
			got, err := loc.FindPrev(id, before)
			if err != nil {
				t.Fatal(err)
			}
			if want := f.naivePrev(id, before); got != want {
				t.Fatalf("missing-entry FindPrev(%d,%d) = %d, want %d", id, before, got, want)
			}
		}
		from, err := loc.FindNext(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.naiveNext(id, 0); from != want {
			t.Fatalf("missing-entry FindNext(%d,0) = %d, want %d", id, from, want)
		}
	}
	if loc.Stats.RawScans == 0 {
		t.Error("expected raw-scan fallbacks with missing entries")
	}
}

func TestLocateCostLogarithmic(t *testing.T) {
	// The paper's Figure 3: locating an entry d blocks away examines about
	// 2·log_N(d) entrymap entries. Verify the count stays within a small
	// constant of that for exact power-of-N distances.
	n := 16
	f := newFakeStore(t, n)
	const fid = uint16(FirstClientID)
	filler := uint16(FirstClientID + 1)
	f.seal([]uint16{fid}, 1)
	total := n*n*n + n // distance N^3 reachable
	for b := 1; b < total; b++ {
		f.seal([]uint16{filler}, int64(b))
	}
	loc, _ := NewLocator(f, n)
	for k := 1; k <= 3; k++ {
		d := pow(n, k)
		loc.Stats = LocateStats{}
		got, err := loc.FindPrev(fid, d+1) // distance d from position d+1 to block 0... target at block 0
		if err != nil || got != 0 {
			t.Fatalf("FindPrev = %d, %v", got, err)
		}
		examined := loc.Stats.EntriesExamined + loc.Stats.PendingExamined
		if examined > 2*k+1 {
			t.Errorf("distance N^%d: examined %d (entries %d, pending %d), want <= %d",
				k, examined, loc.Stats.EntriesExamined, loc.Stats.PendingExamined, 2*k+1)
		}
		if loc.Stats.RawScans != 0 {
			t.Errorf("distance N^%d: %d raw scans", k, loc.Stats.RawScans)
		}
	}
}

func TestFindByTimeMatchesNaive(t *testing.T) {
	f := buildRandom(t, 8, 700, 3, 0.3, 5)
	loc, _ := NewLocator(f, 8)
	naive := func(ts int64) int {
		best := -1
		for b := 0; b < len(f.ts); b++ {
			if f.ts[b] <= ts {
				best = b
			} else {
				break
			}
		}
		return best
	}
	minTS, maxTS := f.ts[0], f.ts[len(f.ts)-1]
	for ts := minTS - 2; ts <= maxTS+2; ts++ {
		got, err := loc.FindByTime(ts)
		if err != nil {
			t.Fatal(err)
		}
		want := naive(ts)
		if got != want {
			// Equal timestamps across blocks: any block with the same
			// firstTS is acceptable as long as it is the last such block.
			t.Fatalf("FindByTime(%d) = %d, want %d", ts, got, want)
		}
	}
}

func TestFindByTimeEmpty(t *testing.T) {
	f := newFakeStore(t, 8)
	loc, _ := NewLocator(f, 8)
	if got, err := loc.FindByTime(100); err != nil || got != -1 {
		t.Errorf("empty: %d, %v", got, err)
	}
}

func TestReconstructMatchesLiveAccumulator(t *testing.T) {
	for _, n := range []int{4, 16} {
		for _, end := range []int{0, 1, n - 1, n, n + 3, n * n, n*n + 2*n + 5, 3*n*n + 1} {
			f := buildRandom(t, n, end, 5, 0.15, int64(end*31+n))
			acc, _, err := Reconstruct(f, n, end)
			if err != nil {
				t.Fatalf("N=%d end=%d: %v", n, end, err)
			}
			for lvl := 1; lvl <= f.acc.Levels(); lvl++ {
				wantIDs := f.acc.PendingIDs(lvl)
				gotIDs := acc.PendingIDs(lvl)
				if !reflect.DeepEqual(gotIDs, wantIDs) {
					t.Fatalf("N=%d end=%d lvl=%d ids: got %v want %v", n, end, lvl, gotIDs, wantIDs)
				}
				for _, id := range wantIDs {
					w, _ := f.acc.Pending(lvl, id)
					g, _ := acc.Pending(lvl, id)
					if w.String() != g.String() {
						t.Fatalf("N=%d end=%d lvl=%d id=%d bitmap: got %s want %s",
							n, end, lvl, id, g, w)
					}
				}
			}
		}
	}
}

func TestReconstructWithMissingEntries(t *testing.T) {
	n := 4
	end := 3*n*n + n + 2
	f := buildRandom(t, n, end, 4, 0.2, 99)
	for k := range f.entries {
		f.missing[k] = true // every entrymap entry lost: full raw fallback
	}
	acc, stats, err := Reconstruct(f, n, end)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 1; lvl <= f.acc.Levels(); lvl++ {
		if !reflect.DeepEqual(acc.PendingIDs(lvl), f.acc.PendingIDs(lvl)) {
			t.Fatalf("lvl %d ids mismatch", lvl)
		}
	}
	if stats.BlocksScanned == 0 {
		t.Error("no raw scans despite missing entries")
	}
}

func TestReconstructCostBounded(t *testing.T) {
	// §3.4: reconstruction examines at most N·log_N(b) blocks.
	n := 16
	end := 2*n*n*n + 5*n*n + 3*n + 7
	f := buildRandom(t, n, end, 4, 0.1, 13)
	_, stats, err := Reconstruct(f, n, end)
	if err != nil {
		t.Fatal(err)
	}
	logN := 1
	for v := end; v >= n; v /= n {
		logN++
	}
	bound := n * logN
	if got := stats.BlocksScanned + stats.EntriesRead; got > bound {
		t.Errorf("reconstruction examined %d blocks, bound %d", got, bound)
	}
}

func TestMaxLevelAndSpanSize(t *testing.T) {
	if SpanSize(16, 2) != 256 {
		t.Error("SpanSize")
	}
	cases := []struct{ n, blocks, want int }{
		{16, 10, 1}, {16, 255, 1}, {16, 256, 2}, {16, 4096, 3}, {4, 64, 3},
	}
	for _, c := range cases {
		if got := MaxLevel(c.n, c.blocks); got != c.want {
			t.Errorf("MaxLevel(%d,%d) = %d, want %d", c.n, c.blocks, got, c.want)
		}
	}
}

func TestLocatorPropertyQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	prop := func(seed int64, beforeRaw uint16) bool {
		n := 4
		f := buildRandom(t, n, 150, 3, 0.12, seed)
		loc, _ := NewLocator(f, n)
		before := int(beforeRaw) % 160
		for id := uint16(FirstClientID); id < FirstClientID+3; id++ {
			got, err := loc.FindPrev(id, before)
			if err != nil || got != f.naivePrev(id, before) {
				return false
			}
			got, err = loc.FindNext(id, before)
			if err != nil || got != f.naiveNext(id, before) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
