package server

import (
	"bytes"
	"testing"

	"clio/internal/wire"
)

// frameBytes builds a valid frame for seeding.
func frameBytes(op byte, seq, trace uint64, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, op, seq, trace, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame throws arbitrary byte streams at the frame reader and, when
// a frame parses, at the replication payload decoders behind it. A malformed
// frame from a confused peer must surface as an error, never a panic — the
// server trusts nothing past the length prefix.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(OpPing, 1, 7, nil))
	f.Add(frameBytes(OpAppend, 2, 0, []byte{1, 0, 3, 4, 'd', 'a', 't', 'a'}))
	f.Add(frameBytes(OpHello, 0, 0, wire.PutUint64(nil, 42)))
	f.Add(frameBytes(wire.OpReplWrite, 9, 0,
		(&wire.ReplWrite{Shard: 0, Dev: 0, Index: 1, Data: []byte("img")}).Encode(nil)))
	f.Add(frameBytes(wire.OpReplHello, 1, 0,
		(&wire.ReplHello{Term: 1, Epoch: 2, LeaderAddr: "a:1", Shards: 1, BlockSize: 512}).Encode(nil)))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})             // oversized length prefix
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0x01})       // length below header size
	f.Add(append(frameBytes(OpStats, 3, 0, nil), 9)) // trailing garbage
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			op, seq, trace, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			_ = seq
			_ = trace
			if wire.IsReplOp(op) {
				// Whatever a peer stuffed in a replication frame must decode
				// or error, never panic.
				_, _ = wire.DecodeRepl(op, payload)
			}
			// A parsed frame must re-encode unless the payload alone exceeds
			// the frame budget (ReadFrame accepted it, so it cannot).
			var buf bytes.Buffer
			if err := WriteFrame(&buf, op, seq, trace, payload); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
		}
	})
}
