package clio_test

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"clio/internal/core"
	"clio/internal/scrub"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// TestSoak is a long randomized run across many small volumes with periodic
// crashes, verifying at the end that (a) every log file holds exactly its
// own durable writes in order, and (b) the media scrub to clean (modulo
// crash-torn chains). Skipped with -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		logs    = 6
		ops     = 30_000
		blockSz = 512
		volCap  = 512 // blocks per volume -> several volume transitions
	)
	rng := rand.New(rand.NewSource(20260704))
	devs := []wodev.Device{wodev.NewMem(wodev.MemOptions{BlockSize: blockSz, Capacity: volCap})}
	var now int64
	opt := core.Options{
		BlockSize: blockSz, Degree: 16, NVRAM: core.NewMemNVRAM(),
		Now: func() int64 { now += 1000; return now },
		Allocate: func(_ volume.SeqID, _ uint32, _ uint64, bs int) (wodev.Device, error) {
			d := wodev.NewMem(wodev.MemOptions{BlockSize: bs, Capacity: volCap})
			devs = append(devs, d)
			return d, nil
		},
	}
	svc, err := core.New(devs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint16, logs)
	for i := range ids {
		id, err := svc.CreateLog(fmt.Sprintf("/log%d", i), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	// Per-log model: every write gets a never-reused sequence number; a
	// crash may lose an unforced *suffix* of the writes since the last
	// force (prefix durability), so we track which payloads are durable
	// (written at or before a force) and which are merely possible.
	written := make([]map[int]string, logs) // seq -> payload
	durable := make([]map[int]bool, logs)
	var unflushed [][2]int // (log, seq) written since the last force
	nextSeq := make([]int, logs)
	for w := range written {
		written[w] = make(map[int]string)
		durable[w] = make(map[int]bool)
	}
	flush := func() {
		for _, ws := range unflushed {
			durable[ws[0]][ws[1]] = true
		}
		unflushed = nil
	}
	// Background readers scan random logs on the current service while the
	// writer runs, exercising the lock-decomposed read path (snapshot tail,
	// lock-free sealed blocks) concurrently with appends, seals and crashes.
	// A reader sees some prefix of a log; within one scan the sequence
	// numbers must still be strictly increasing and correctly owned.
	var svcMu sync.Mutex
	currentSvc := func() *core.Service {
		svcMu.Lock()
		defer svcMu.Unlock()
		return svc
	}
	stopReaders := make(chan struct{})
	var readerWg sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			rrng := rand.New(rand.NewSource(int64(555 + r)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				s := currentSvc()
				w := rrng.Intn(logs)
				cur, err := s.OpenCursor(fmt.Sprintf("/log%d", w))
				if err != nil {
					continue // crashed instance: pick up the replacement
				}
				last := -1
				for n := 0; n < 500; n++ {
					e, err := cur.Next()
					if err != nil {
						break // EOF, or the instance crashed mid-scan
					}
					var gotLog, seq int
					if _, serr := fmt.Sscanf(string(e.Data), "log%d-%06d-", &gotLog, &seq); serr != nil {
						t.Errorf("reader %d: unparseable entry %.30q", r, e.Data)
						return
					}
					if gotLog != w {
						t.Errorf("reader %d: log%d holds foreign entry from log%d", r, w, gotLog)
						return
					}
					if seq <= last {
						t.Errorf("reader %d: log%d seq %d after %d", r, w, seq, last)
						return
					}
					last = seq
				}
			}
		}(r)
	}
	readersStopped := false
	stopReadersNow := func() {
		if !readersStopped {
			readersStopped = true
			close(stopReaders)
			readerWg.Wait()
		}
	}
	defer stopReadersNow()

	crashes := 0
	for i := 0; i < ops; i++ {
		w := rng.Intn(logs)
		seq := nextSeq[w]
		nextSeq[w]++
		payload := fmt.Sprintf("log%d-%06d-%s", w, seq, string(make([]byte, rng.Intn(300))))
		forced := rng.Intn(10) == 0
		if _, err := svc.Append(ids[w], []byte(payload), core.AppendOptions{
			Timestamped: rng.Intn(2) == 0, Forced: forced,
		}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		written[w][seq] = payload
		unflushed = append(unflushed, [2]int{w, seq})
		if forced {
			flush()
		}
		if rng.Intn(2500) == 0 {
			svc.Crash()
			crashes++
			unflushed = nil // those writes may or may not have survived
			s2, err := core.Open(devs, opt)
			if err != nil {
				t.Fatalf("recovery %d: %v", crashes, err)
			}
			svcMu.Lock()
			svc = s2
			svcMu.Unlock()
		}
	}
	stopReadersNow()
	if err := svc.Force(); err != nil {
		t.Fatal(err)
	}
	flush()

	if len(devs) < 4 {
		t.Fatalf("only %d volumes used", len(devs))
	}
	t.Logf("soak: %d ops, %d crashes, %d volumes, %d blocks",
		ops, crashes, len(devs), svc.End())

	// Every log's entries: (1) strictly increasing never-reused sequence
	// numbers, (2) byte-exact against what was written, (3) every durable
	// write present.
	for w := 0; w < logs; w++ {
		cur, err := svc.OpenCursor(fmt.Sprintf("/log%d", w))
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		lastSeq := -1
		for {
			e, err := cur.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			var gotLog, seq int
			if _, serr := fmt.Sscanf(string(e.Data), "log%d-%06d-", &gotLog, &seq); serr != nil {
				t.Fatalf("log%d: unparseable entry %.30q", w, e.Data)
			}
			if gotLog != w {
				t.Fatalf("log%d: foreign entry from log%d", w, gotLog)
			}
			if seq <= lastSeq {
				t.Fatalf("log%d: seq %d after %d", w, seq, lastSeq)
			}
			lastSeq = seq
			if want := written[w][seq]; string(e.Data) != want {
				t.Fatalf("log%d seq %d: content mismatch (%d vs %d bytes)",
					w, seq, len(e.Data), len(want))
			}
			seen[seq] = true
		}
		for seq := range durable[w] {
			if !seen[seq] {
				t.Fatalf("log%d: durable seq %d missing", w, seq)
			}
		}
	}

	// Media-level verification.
	svc.Crash()
	rep, err := scrub.Volumes(devs, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		if p.Kind == "torn-chain" || p.Kind == "orphan-fragment" {
			continue // legitimate crash debris
		}
		t.Errorf("scrub: %s", p)
	}
}
