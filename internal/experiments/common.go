// Package experiments regenerates every table and figure in the paper's
// evaluation (§3), plus the ablations DESIGN.md calls out. Each experiment
// is a Run function returning typed rows (so tests can assert on them) and
// a Print function emitting the paper's layout with "paper" and "measured"
// columns side by side. cmd/experiments and the repository's benchmarks are
// thin wrappers over these.
package experiments

import (
	"fmt"
	"io"

	"clio/internal/core"
	"clio/internal/vclock"
	"clio/internal/wodev"
)

// testNow returns a deterministic monotonic time source.
func testNow() func() int64 {
	var now int64
	return func() int64 {
		now += 1000
		return now
	}
}

// newService builds an in-memory service for experiments.
func newService(blockSize, degree, capacityBlocks int, clk *vclock.Clock, nv core.NVRAM) (*core.Service, *wodev.MemDevice, error) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: capacityBlocks})
	svc, err := core.New(dev, core.Options{
		BlockSize:   blockSize,
		Degree:      degree,
		CacheBlocks: -1, // unbounded: experiments control caching explicitly
		Clock:       clk,
		NVRAM:       nv,
		Now:         testNow(),
		// The paper-table experiments count seals and device writes
		// deterministically; the adaptive window and seal pipeline introduce
		// real-time dependence, so they run in legacy (unwindowed, unpipelined)
		// mode. The force experiment exercises the adaptive path explicitly.
		CommitWindow: -1,
	})
	return svc, dev, err
}

// fillTo appends filler entries to fillerID until the service's readable
// end reaches at least targetBlock.
func fillTo(svc *core.Service, fillerID uint16, targetBlock, fillerSize int) error {
	payload := make([]byte, fillerSize)
	for svc.End() < targetBlock {
		if _, err := svc.Append(fillerID, payload, core.AppendOptions{}); err != nil {
			return err
		}
	}
	return nil
}

// Target is one planted entry used by the locate experiments.
type Target struct {
	// Path is the target log file (one entry only).
	Path string
	// Block is the data block the entry actually landed in.
	Block int
	// WantDistance is the intended distance class (N^k).
	WantDistance int
	// K is the exponent of the distance class.
	K int
}

// DistanceVolume is a volume constructed so that, measured from its end,
// one single-entry log file sits at (approximately) each distance N^k — the
// geometry of Table 1 and Figure 3.
type DistanceVolume struct {
	Svc     *core.Service
	Dev     *wodev.MemDevice
	Clock   *vclock.Clock
	Targets []Target
	// EndBlock is the final readable end.
	EndBlock int
}

// BuildDistanceVolume writes a volume of about N^maxK blocks with targets
// at distances N^0..N^maxK from the end. Filler entries go to a separate
// log file so target locates exercise the entrymap tree.
func BuildDistanceVolume(blockSize, degree, maxK int, clk *vclock.Clock) (*DistanceVolume, error) {
	total := pow(degree, maxK) + degree/2 + 3 // margin past the last boundary
	svc, dev, err := newService(blockSize, degree, total+64, clk, core.NewMemNVRAM())
	if err != nil {
		return nil, err
	}
	if _, err := svc.CreateLog("/filler", 0, ""); err != nil {
		return nil, err
	}
	fillerID, _ := svc.Resolve("/filler")
	fillerSize := blockSize / 4

	// Desired target positions, earliest first.
	var targets []Target
	for k := maxK; k >= 0; k-- {
		targets = append(targets, Target{
			Path:         fmt.Sprintf("/target%d", k),
			WantDistance: pow(degree, k),
			K:            k,
		})
	}
	for i := range targets {
		t := &targets[i]
		want := total - 1 - t.WantDistance
		if err := fillTo(svc, fillerID, want, fillerSize); err != nil {
			return nil, err
		}
		id, err := svc.CreateLog(t.Path, 0, "")
		if err != nil {
			return nil, err
		}
		if _, err := svc.Append(id, []byte("target"), core.AppendOptions{Timestamped: true}); err != nil {
			return nil, err
		}
	}
	if err := fillTo(svc, fillerID, total, fillerSize); err != nil {
		return nil, err
	}
	dv := &DistanceVolume{Svc: svc, Dev: dev, Clock: clk, EndBlock: svc.End()}
	// Record where each target actually landed.
	for _, t := range targets {
		cur, err := svc.OpenCursor(t.Path)
		if err != nil {
			return nil, err
		}
		e, err := cur.Next()
		if err != nil {
			return nil, fmt.Errorf("target %s unreadable: %w", t.Path, err)
		}
		t.Block = e.Block
		dv.Targets = append(dv.Targets, t)
	}
	return dv, nil
}

func pow(n, k int) int {
	out := 1
	for ; k > 0; k-- {
		out *= n
	}
	return out
}

// LocateFromEnd positions a cursor at the end of the target's log and takes
// one Prev step, returning the deltas of interest.
type LocateCost struct {
	Distance       int
	EntriesRead    int // entrymap entries examined
	CachedAccesses int64
	DeviceReads    int64
	VirtualMs      float64
}

// MeasureLocate measures one locate of the target from the end of the log.
// cold flushes the cache first (§3.3.1); warm relies on the complete cache
// (§3.3.2).
func (dv *DistanceVolume) MeasureLocate(t Target, cold bool) (LocateCost, error) {
	svc := dv.Svc
	if cold {
		svc.FlushCache()
	}
	cur, err := svc.OpenCursor(t.Path)
	if err != nil {
		return LocateCost{}, err
	}
	cur.SeekEnd()
	svc.ResetLocateStats()
	svc.ResetCounters()
	dv.Clock.Reset()
	e, err := cur.Prev()
	if err != nil {
		return LocateCost{}, err
	}
	if e.Block != t.Block {
		return LocateCost{}, fmt.Errorf("located block %d, want %d", e.Block, t.Block)
	}
	ls := svc.LocateStats()
	_, cachedCount := dv.Clock.CategoryTotal(vclock.CatCached)
	return LocateCost{
		Distance:       dv.EndBlock - 1 - t.Block,
		EntriesRead:    ls.EntriesExamined,
		CachedAccesses: cachedCount,
		DeviceReads:    svc.DeviceStats().Reads,
		VirtualMs:      ms(dv.Clock.Elapsed()),
	}, nil
}

func ms(d interface{ Nanoseconds() int64 }) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// fprintf swallows the error for table printing.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// Occurrences of a log file's entries, for the baseline comparisons: scan
// the whole volume once (ground truth).
func (dv *DistanceVolume) Occurrences(path string) ([]int, error) {
	id, err := dv.Svc.Resolve(path)
	if err != nil {
		return nil, err
	}
	cur, err := dv.Svc.OpenCursorID(id)
	if err != nil {
		return nil, err
	}
	var out []int
	for {
		e, err := cur.Next()
		if err != nil {
			break
		}
		out = append(out, e.Block)
	}
	return out, nil
}
