package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// drainServer builds a server whose log lines are captured, so the tests
// can assert a graceful drain logs no failures.
func drainServer(t *testing.T) (*Server, *logCapture) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(svc)
	logs := &logCapture{}
	srv.Logf = logs.logf
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return srv, logs
}

type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCapture) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCapture) snapshot() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return append([]string(nil), lc.lines...)
}

// TestShutdownDrainsInflightAppend proves the drain guarantee: a forced
// append already executing when Shutdown begins completes and is acked to
// the client, Shutdown waits for it, and the well-behaved client sees no
// connection reset and the server logs no failure.
func TestShutdownDrainsInflightAppend(t *testing.T) {
	srv, logs := drainServer(t)

	// The gate holds the append's ack open mid-flight once armed: the entry
	// has executed, the response is not yet on the wire — exactly the state
	// SIGTERM must wait out.
	var armed atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.Gate = func(op byte, session, seq uint64, status byte, resp []byte) (byte, []byte, bool) {
		if op == OpAppend && armed.Load() {
			once.Do(func() { close(entered) })
			<-release
		}
		return status, resp, true
	}

	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	defer cConn.Close()
	mustOK(t, cConn, OpCreate, createPayload("/l"))
	id, err := NewDecoder(mustOK(t, cConn, OpResolve, PutString(nil, "/l"))).Uvarint()
	if err != nil {
		t.Fatal(err)
	}
	armed.Store(true)

	// Fire the append without waiting for the response; it parks in the gate.
	cConn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := WriteFrame(cConn, OpAppend, 7, 0, appendPayload(id, "must not be lost")); err != nil {
		t.Fatal(err)
	}
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := testContext(30 * time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Shutdown must not complete while the append is un-acked.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned (%v) with an append still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// While draining, a brand-new connection is refused outright.
	nConn, nSrv := net.Pipe()
	go srv.ServeConn(nSrv)
	defer nConn.Close()
	nConn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, _, _, _, err := ReadFrame(nConn); err == nil {
		t.Error("new connection served a frame during drain")
	}

	close(release)
	// The ack must arrive before the connection ends: first frame is the
	// append response, StatusOK, seq 7.
	status, seq, _, resp, err := ReadFrame(cConn)
	if err != nil {
		t.Fatalf("client lost its in-flight ack: %v", err)
	}
	if status != StatusOK || seq != 7 {
		msg, _ := NewDecoder(resp).String()
		t.Fatalf("in-flight append: status %d seq %d (%s), want OK seq 7", status, seq, msg)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, line := range logs.snapshot() {
		if strings.Contains(line, "read:") || strings.Contains(line, "write:") {
			t.Errorf("graceful drain logged a failure: %q", line)
		}
	}
}

// TestServeReturnsErrServerClosed: a drained listener's Serve loop reports
// the expected sentinel, not a transport error the daemon would log as a
// failure, and new dials are refused.
func TestServeReturnsErrServerClosed(t *testing.T) {
	srv, _ := drainServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if status, _ := roundTrip(t, conn, OpPing, nil); status != StatusOK {
		t.Fatal("ping failed before shutdown")
	}

	ctx, cancel := testContext(30 * time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	if c, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		c.Close()
		t.Error("listener still accepting after Shutdown")
	}
}

// TestDrainEndsSubscriptionsWithStreamEnd: a live tail subscriber riding
// out a SIGTERM drain receives an explicit OpStreamEnd frame — "ended by
// server", never a connection reset.
func TestDrainEndsSubscriptionsWithStreamEnd(t *testing.T) {
	srv, logs := drainServer(t)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	defer cConn.Close()
	mustOK(t, cConn, OpCreate, createPayload("/l"))

	sub := wire.StreamSubscribe{Path: "/l", Buffer: 8, Credit: 8}
	resp := mustOK(t, cConn, wire.OpStreamSubscribe, sub.Encode(nil))
	subID, err := NewDecoder(resp).Uint32()
	if err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := testContext(30 * time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	cConn.SetReadDeadline(time.Now().Add(10 * time.Second))
	op, _, _, payload, err := ReadFrame(cConn)
	if err != nil {
		t.Fatalf("subscriber saw %v, want a stream-end frame", err)
	}
	if op != wire.OpStreamEnd {
		t.Fatalf("subscriber got op %d, want OpStreamEnd", op)
	}
	end, err := wire.DecodeStreamEnd(payload)
	if err != nil {
		t.Fatal(err)
	}
	if end.SubID != subID || !strings.Contains(end.Msg, "shutting down") {
		t.Errorf("stream end = %+v, want sub %d shutting down", end, subID)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, line := range logs.snapshot() {
		if strings.Contains(line, "read:") || strings.Contains(line, "write:") {
			t.Errorf("drain with subscriber logged a failure: %q", line)
		}
	}
}

// TestShutdownTimeoutForcesClose: a connection that never finishes (a
// client that simply stays connected) cannot hold the daemon up past the
// drain bound.
func TestShutdownTimeoutForcesClose(t *testing.T) {
	srv, _ := drainServer(t)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	defer cConn.Close()
	mustOK(t, cConn, OpPing, nil)

	// Park a request in a gate that never releases: the drain must give up
	// at the deadline and force-close.
	block := make(chan struct{})
	var hit atomic.Bool
	srv.Gate = func(op byte, session, seq uint64, status byte, resp []byte) (byte, []byte, bool) {
		if hit.Swap(true) {
			return status, resp, true
		}
		<-block
		return status, resp, true
	}
	defer close(block)
	if err := WriteFrame(cConn, OpCreate, 1, 0, createPayload("/l")); err != nil {
		t.Fatal(err)
	}
	for !hit.Load() {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := testContext(200 * time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite a stuck connection")
	}
}

// testContext bounds a drain in the tests.
func testContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
