// Command clio is the command-line client for a Clio log server (or a local
// store): create log files, append entries, read them back, list the log
// directory hierarchy, and seek by time.
//
// Against a server:
//
//	clio -addr localhost:7846 create /audit
//	echo "user smith logged in" | clio -addr localhost:7846 append /audit
//	clio -addr localhost:7846 cat /audit
//	clio -addr localhost:7846 tail -n 10 /audit
//	clio -addr localhost:7846 ls /
//	clio -addr localhost:7846 stat /audit
//
// Against a local store directory (no server):
//
//	clio -store /var/lib/clio cat /audit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"clio"
	"clio/internal/archive"
	"clio/internal/client"
	"clio/internal/cluster"
	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/scrub"
	"clio/internal/server"
	"clio/internal/stream/group"
	"clio/internal/volume"
	"clio/internal/wire"
	"clio/internal/wodev"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: clio [-addr host:port | -store dir] [-tenant T -token S] <command> [args]

-store mode opens the store in-process; a store created with non-default
cliod geometry needs the matching -volume-blocks / -block-size.
Against a multi-tenant server, -tenant and -token authenticate the session;
paths must then live under /<tenant>.

commands:
  create <path>            create a log file (parents must exist)
  append <path>            append one entry per stdin line (forced)
  cat <path>               print every entry
  tail [-n K] [-f] <path>  print the last K entries; -f follows via a live
                           tail subscription (no polling)
  tail -f -group G [-member M] [-partitions N] <topic>
                           consume a partitioned topic as a consumer-group
                           member, acking each entry into /.offsets/G
  since <path> <RFC3339>   print entries at/after a time
  ls <path>                list sublogs
  stat <path>              show a log file's descriptor
  retire <path>            close a log file for appends
  stats                    server counters
  status                   cluster role, term and per-shard replication lag
                           (-admin for a node's admin endpoint, or -addr)
  promote                  promote the follower at -addr to cluster leader
  fsck [-repair]           verify a local store's media, demoted cold
                           volumes included (-store only; the NVRAM-staged
                           tail is not on the media yet)
  du                       per-log-file space usage plus the hot/cold byte
                           split per shard (-store only)
  compact [-max-live F] [-min-hot N] [-max-volumes N]
                           run one compaction pass: copy live entries of
                           mostly-dead sealed volumes forward, demote them
                           to the cold tier, delete the local files
                           (-store only, offline)
  backup <archive-dir>     incremental backup of a local store, demoted
                           cold volumes included (-store only)
  verify-backup <archive-dir>  open an archive and scrub it
`)
	os.Exit(2)
}

// geom carries the store geometry for -store mode, set from the global
// flags. A store created with non-default cliod geometry must be opened
// with the same values.
var geom clio.DirOptions

func main() {
	addr := flag.String("addr", "", "log server address")
	store := flag.String("store", "", "local store directory (serve in-process)")
	adminAddr := flag.String("admin", "", "cluster node admin (HTTP) address, for status")
	tenant := flag.String("tenant", "", "tenant name for a multi-tenant server (with -token)")
	token := flag.String("token", "", "tenant shared secret (with -tenant)")
	flag.IntVar(&geom.VolumeBlocks, "volume-blocks", 0, "store's volume capacity in blocks, as given to cliod (0 = the default; -store only)")
	flag.IntVar(&geom.BlockSize, "block-size", 0, "store's block size in bytes, as given to cliod (0 = the default; -store only)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}

	switch args[0] {
	case "status":
		runStatus(*adminAddr, *addr)
		return
	case "promote":
		runPromote(*addr)
		return
	case "fsck":
		runFsck(*store, args[1:])
		return
	case "compact":
		runCompact(*store, args[1:])
		return
	case "backup":
		need(args, 2)
		runBackup(*store, args[1])
		return
	case "verify-backup":
		need(args, 2)
		runVerifyBackup(args[1])
		return
	case "du":
		runDu(*store)
		return
	}

	ctx := context.Background()
	cl, cleanup, err := connect(*addr, *store, *tenant, *token)
	if err != nil {
		fatal(err)
	}
	defer cleanup()

	switch args[0] {
	case "create":
		need(args, 2)
		id, err := cl.CreateLog(ctx, args[1], 0o644, os.Getenv("USER"))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("created %s (id %d)\n", args[1], id)

	case "append":
		need(args, 2)
		id, err := cl.Resolve(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		n := 0
		for sc.Scan() {
			if _, err := cl.Append(ctx, id, append([]byte(nil), sc.Bytes()...),
				client.AppendOptions{Timestamped: true, Forced: true}); err != nil {
				fatal(err)
			}
			n++
		}
		if err := sc.Err(); err != nil {
			fatal(err)
		}
		fmt.Printf("appended %d entries\n", n)

	case "cat":
		need(args, 2)
		cur, err := cl.OpenCursor(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		defer cur.Close()
		dump(ctx, cur, -1)

	case "tail":
		fs := flag.NewFlagSet("tail", flag.ExitOnError)
		n := fs.Int("n", 10, "entries")
		follow := fs.Bool("f", false, "keep following new entries (live tail subscription)")
		grp := fs.String("group", "", "consume as a member of this consumer group; the path argument is the topic")
		member := fs.String("member", "", "member name within -group (default host-pid)")
		parts := fs.Int("partitions", 1, "partition count of the -group topic")
		_ = fs.Parse(args[1:])
		if fs.NArg() != 1 {
			usage()
		}
		if *grp != "" {
			if !*follow {
				fatal(fmt.Errorf("tail -group requires -f"))
			}
			runGroupTail(ctx, cl, *grp, *member, fs.Arg(0), *parts)
			return
		}
		cur, err := cl.OpenCursor(ctx, fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer cur.Close()
		if err := cur.SeekEnd(ctx); err != nil {
			fatal(err)
		}
		var entries []*client.Entry
		for len(entries) < *n {
			e, err := cur.Prev(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			entries = append(entries, e)
		}
		for i := len(entries) - 1; i >= 0; i-- {
			printEntry(entries[i])
		}
		if *follow {
			// Live tail: subscribe from the gap position after the newest
			// printed entry on each shard. The server pushes entries as group
			// commit publishes them — no polling.
			var from []logapi.Position
			seen := make(map[int]bool)
			for _, e := range entries { // newest-first, so first hit per shard wins
				if !seen[e.Shard] {
					seen[e.Shard] = true
					from = append(from, logapi.Position{Shard: e.Shard, Block: e.Block, Rec: e.Index + 1})
				}
			}
			sub, err := cl.Watch(ctx, fs.Arg(0), logapi.WatchOptions{From: from})
			if err != nil {
				fatal(err)
			}
			defer sub.Close()
			for {
				e, err := sub.Recv(ctx)
				if err != nil {
					fatal(err)
				}
				printEntry(e)
			}
		}

	case "since":
		need(args, 3)
		ts, err := time.Parse(time.RFC3339, args[2])
		if err != nil {
			fatal(fmt.Errorf("bad time %q: %w (want RFC3339)", args[2], err))
		}
		cur, err := cl.OpenCursor(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		defer cur.Close()
		if err := cur.SeekTime(ctx, ts.UnixNano()); err != nil {
			fatal(err)
		}
		dump(ctx, cur, -1)

	case "ls":
		need(args, 2)
		names, err := cl.List(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		for _, n := range names {
			fmt.Println(n)
		}

	case "stat":
		need(args, 2)
		st, err := cl.Stat(ctx, args[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("id:      %d\nname:    %s\nperms:   %o\nowner:   %s\ncreated: %s\nretired: %v\nsystem:  %v\n",
			st.ID, st.Name, st.Perms, st.Owner,
			time.Unix(0, st.Created).Format(time.RFC3339), st.Retired, st.System)

	case "retire":
		need(args, 2)
		if err := cl.Retire(ctx, args[1]); err != nil {
			fatal(err)
		}

	case "stats":
		st, err := cl.Stats(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("entries appended: %d\nblocks sealed:    %d\nclient bytes:     %d\ndata blocks:      %d\n",
			st.EntriesAppended, st.BlocksSealed, st.ClientBytes, st.EndBlocks)

	default:
		usage()
	}
}

// runGroupTail consumes a partitioned topic as one member of a consumer
// group: partitions are divided among the group's live members, every
// printed entry is acknowledged into the group's offsets log, and a
// restarted member resumes after the group's last acknowledged entry.
func runGroupTail(ctx context.Context, cl *client.Client, grp, member, topic string, partitions int) {
	if member == "" {
		host, _ := os.Hostname()
		member = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	c, err := group.Join(ctx, cl, grp, member, topic, partitions, group.Options{})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "clio: joined group %q as %q (topic %s, %d partitions)\n",
		grp, member, topic, partitions)
	for {
		m, err := c.Recv(ctx)
		if err != nil {
			fatal(err)
		}
		if err := c.Ack(ctx, m); err != nil {
			continue // partition moved between delivery and ack; the new owner redelivers
		}
		fmt.Printf("[p%d] ", m.Partition)
		printEntry(m.Entry)
	}
}

// runStatus prints a node's status, read from its admin endpoint (-admin)
// or over the log-file wire protocol (-addr): cluster role, term and
// per-shard replication state in cluster mode, plus each shard's
// compaction state (volumes relocated and demoted cold) when the admin
// endpoint serves it.
func runStatus(adminAddr, addr string) {
	var st cluster.NodeStatus
	switch {
	case adminAddr != "":
		resp, err := http.Get("http://" + adminAddr + "/statusz")
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Cluster *cluster.NodeStatus  `json:"cluster"`
			Shards  []core.ServiceStatus `json:"shards"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			fatal(fmt.Errorf("parse %s/statusz: %w", adminAddr, err))
		}
		if doc.Cluster == nil && doc.Shards == nil {
			fatal(fmt.Errorf("%s serves neither a cluster nor a shards section in /statusz", adminAddr))
		}
		for i, sh := range doc.Shards {
			fmt.Printf("shard %d: %d data blocks, %d volumes hot, %d relocated, %d demoted cold, %d cold fetches\n",
				i, sh.End, len(sh.Volumes), sh.Stats.VolumesRelocated, sh.Stats.VolumesDemoted, sh.Stats.ColdFetches)
		}
		if doc.Cluster == nil {
			return
		}
		st = *doc.Cluster
	case addr != "":
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			fatal(err)
		}
		defer conn.Close()
		if err := server.WriteFrame(conn, wire.OpReplStatus, 0, 0, nil); err != nil {
			fatal(err)
		}
		status, _, _, payload, err := server.ReadFrame(conn)
		if err != nil {
			fatal(err)
		}
		if status != server.StatusOK {
			fatal(fmt.Errorf("status request refused (status %d)", status))
		}
		r, err := wire.DecodeReplStatusResp(payload)
		if err != nil {
			fatal(err)
		}
		st = cluster.NodeStatus{
			NodeID: addr, Term: r.Term, Epoch: r.Epoch, LeaderAddr: r.LeaderAddr,
			StreamPos: r.Pos, Committed: r.Committed, Applied: r.Applied,
			Role: "follower",
		}
		if r.Role == wire.RoleLeader {
			st.Role = "leader"
		}
		ends := map[uint32]int{}
		for _, d := range r.Devs {
			if d.Written > 0 {
				ends[d.Shard] += int(d.Written) - 1
			}
		}
		for i := 0; i < len(ends); i++ {
			st.ShardEnds = append(st.ShardEnds, ends[uint32(i)])
		}
	default:
		fatal(fmt.Errorf("status requires -admin or -addr"))
	}

	fmt.Printf("node:   %s\nrole:   %s (term %d, epoch %d)\n", st.NodeID, st.Role, st.Term, st.Epoch)
	if st.LeaderAddr != "" && st.Role != "leader" {
		fmt.Printf("leader: %s\n", st.LeaderAddr)
	}
	if st.Quorum > 0 {
		fmt.Printf("quorum: %d (stream %d, committed %d, applied %d)\n",
			st.Quorum, st.StreamPos, st.Committed, st.Applied)
	} else {
		fmt.Printf("stream: %d, committed %d, applied %d\n", st.StreamPos, st.Committed, st.Applied)
	}
	for i, end := range st.ShardEnds {
		fmt.Printf("shard %d: %d data blocks\n", i, end)
	}
	for _, p := range st.Peers {
		state := "down"
		if p.Alive {
			state = "streaming"
		}
		fmt.Printf("replica %s: %s, lag %d (acked %d, catch-up blocks %d, resets %d)\n",
			p.Addr, state, p.Lag, p.Acked, p.CatchupBlocks, p.Resets)
	}
	if st.Promotions+st.Demotions+st.QuorumTimeouts+st.QuorumRefusals > 0 {
		fmt.Printf("history: %d promotions, %d demotions, %d quorum timeouts, %d refusals\n",
			st.Promotions, st.Demotions, st.QuorumTimeouts, st.QuorumRefusals)
	}
}

// runPromote tells the follower at addr to become the leader (used after
// the leader host is lost; promote the replica with the highest applied
// position — compare with `clio status`).
func runPromote(addr string) {
	if addr == "" {
		fatal(fmt.Errorf("promote requires -addr"))
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fatal(err)
	}
	defer conn.Close()
	if err := server.WriteFrame(conn, wire.OpPromote, 0, 0, nil); err != nil {
		fatal(err)
	}
	status, _, _, payload, err := server.ReadFrame(conn)
	if err != nil {
		fatal(err)
	}
	if status != server.StatusOK {
		msg := "refused"
		if m, err := server.NewDecoder(payload).String(); err == nil {
			msg = m
		}
		fatal(fmt.Errorf("promote %s: %s", addr, msg))
	}
	term, err := wire.Uint64(payload)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s promoted to leader, term %d\n", addr, term)
}

// connect returns a client either over TCP or over a net.Pipe to an
// in-process server on a local store.
func connect(addr, store, tenant, token string) (*client.Client, func(), error) {
	switch {
	case addr != "" && store != "":
		return nil, nil, fmt.Errorf("clio: -addr and -store are mutually exclusive")
	case addr != "":
		cl, err := client.DialOptions(addr, client.Options{Tenant: tenant, Token: token})
		if err != nil {
			return nil, nil, err
		}
		return cl, func() { cl.Close() }, nil
	case store != "":
		st, err := clio.OpenStore(store, geom)
		if err != nil {
			return nil, nil, err
		}
		srv := server.NewStore(st)
		// A dialer (rather than a single pipe) so Watch — which runs each
		// subscription on a dedicated connection — works in-process too.
		dialer := func(ctx context.Context) (net.Conn, error) {
			cConn, sConn := net.Pipe()
			go srv.ServeConn(sConn)
			return cConn, nil
		}
		cl, err := client.DialContext(context.Background(), "", client.Options{Dialer: dialer})
		if err != nil {
			srv.Close()
			st.Close()
			return nil, nil, err
		}
		return cl, func() {
			cl.Close()
			srv.Close()
			st.Close()
		}, nil
	default:
		return nil, nil, fmt.Errorf("clio: one of -addr or -store is required")
	}
}

func dump(ctx context.Context, cur clio.LogCursor, limit int) {
	for i := 0; limit < 0 || i < limit; i++ {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			return
		}
		if err != nil {
			fatal(err)
		}
		printEntry(e)
	}
}

func printEntry(e *client.Entry) {
	ts := time.Unix(0, e.Timestamp).Format(time.RFC3339Nano)
	fmt.Printf("[%s #%s.%d] %s\n", ts, strconv.Itoa(e.Block), e.Index, e.Data)
}

// runFsck scrubs a local store's volume files directly, one shard (one
// volume sequence) at a time.
func runFsck(store string, args []string) {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := fs.Bool("repair", false, "invalidate damaged blocks on the medium")
	_ = fs.Parse(args)
	if store == "" {
		fatal(fmt.Errorf("fsck requires -store"))
	}
	dirs, err := storeShardDirs(store)
	if err != nil {
		fatal(err)
	}
	var total scrub.Report
	for i, d := range dirs {
		rep := scrubShard(d, scrub.Options{Repair: *repair})
		if len(dirs) > 1 {
			fmt.Printf("shard %d: %d data blocks, %d records, %d problems\n",
				i, rep.Blocks, rep.Entries, len(rep.Problems))
			for _, p := range rep.Problems {
				fmt.Printf("shard %d problem: %s\n", i, p)
			}
		} else {
			for _, p := range rep.Problems {
				fmt.Printf("problem: %s\n", p)
			}
		}
		total.Blocks += rep.Blocks
		total.Readable += rep.Readable
		total.Invalidated += rep.Invalidated
		total.Damaged += rep.Damaged
		total.Repaired += rep.Repaired
		total.Entries += rep.Entries
		total.EntrymapEntries += rep.EntrymapEntries
		total.CatalogRecords += rep.CatalogRecords
		total.Problems = append(total.Problems, rep.Problems...)
	}
	fmt.Printf("scrubbed %d data blocks: %d readable, %d invalidated, %d damaged",
		total.Blocks, total.Readable, total.Invalidated, total.Damaged)
	if *repair {
		fmt.Printf(", %d repaired", total.Repaired)
	}
	fmt.Printf("\n%d records, %d entrymap entries verified, %d catalog records\n",
		total.Entries, total.EntrymapEntries, total.CatalogRecords)
	if !total.Clean() {
		os.Exit(1)
	}
	fmt.Println("clean")
}

// scrubShard scrubs one shard directory's volume sequence, including
// demoted volumes restored from the shard's cold archive — a demoted
// volume's only copy is its cold image, and fsck must cover the whole
// physical history.
func scrubShard(dir string, opt scrub.Options) *scrub.Report {
	devs, closeAll, err := openStoreDevices(dir)
	if err != nil {
		fatal(err)
	}
	defer closeAll()
	all, err := withColdDevices(dir, devs)
	if err != nil {
		fatal(err)
	}
	rep, err := scrub.Volumes(all, opt)
	if err != nil {
		fatal(err)
	}
	return rep
}

// withColdDevices appends restored cold volume images missing from the hot
// set, deduped by volume index: a crash between archiving and releasing can
// leave a volume both local and cold, and the local copy wins. The merged
// set is returned in sequence (volume-index) order.
func withColdDevices(dir string, hot []wodev.Device) ([]wodev.Device, error) {
	coldDir := filepath.Join(dir, "cold")
	if _, err := os.Stat(coldDir); err != nil {
		return hot, nil
	}
	cold, err := archive.Restore(context.Background(), archive.NewDir(coldDir))
	if errors.Is(err, archive.ErrNotArchive) {
		return hot, nil
	}
	if err != nil {
		return nil, err
	}
	type indexed struct {
		idx uint32
		dev wodev.Device
	}
	var all []indexed
	seen := make(map[uint32]bool)
	for _, d := range hot {
		hdr, err := volume.ReadHeader(d)
		if err != nil {
			return nil, err
		}
		seen[hdr.Index] = true
		all = append(all, indexed{hdr.Index, d})
	}
	for _, d := range cold {
		hdr, err := volume.ReadHeader(d)
		if err != nil {
			return nil, err
		}
		if !seen[hdr.Index] {
			all = append(all, indexed{hdr.Index, d})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].idx < all[j].idx })
	out := make([]wodev.Device, len(all))
	for i, v := range all {
		out[i] = v.dev
	}
	return out, nil
}

// runDu prints per-log-file space usage for a local store, then the hot
// versus cold byte split per shard: hot is the local volume files (the
// bounded working set the compactor maintains), cold is the demoted volume
// images in each shard's cold archive.
func runDu(store string) {
	if store == "" {
		fatal(fmt.Errorf("du requires -store"))
	}
	dirs, err := storeShardDirs(store)
	if err != nil {
		fatal(err)
	}
	var usage []scrub.LogUsage
	for _, d := range dirs {
		usage = append(usage, scrubShard(d, scrub.Options{}).Usage...)
	}
	sort.Slice(usage, func(i, j int) bool { return usage[i].Path < usage[j].Path })
	fmt.Printf("%10s %10s  %s\n", "entries", "bytes", "log file")
	for _, u := range usage {
		fmt.Printf("%10d %10d  %s\n", u.Entries, u.Bytes, u.Path)
	}
	var totalHot, totalCold int64
	for i, d := range dirs {
		hot, cold := tierBytes(d)
		totalHot += hot
		totalCold += cold
		if len(dirs) > 1 {
			fmt.Printf("shard %d: %d bytes hot, %d bytes cold\n", i, hot, cold)
		}
	}
	fmt.Printf("total: %d bytes hot, %d bytes cold\n", totalHot, totalCold)
}

// tierBytes sums one shard directory's hot bytes (local vol-*.clio files)
// and cold bytes (volume images in its cold archive).
func tierBytes(dir string) (hot, cold int64) {
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "vol-") && strings.HasSuffix(e.Name(), ".clio") {
				if fi, err := e.Info(); err == nil {
					hot += fi.Size()
				}
			}
		}
	}
	if ents, err := os.ReadDir(filepath.Join(dir, "cold")); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".vol") {
				if fi, err := e.Info(); err == nil {
					cold += fi.Size()
				}
			}
		}
	}
	return hot, cold
}

// runCompact runs one offline compaction pass over a local store: every
// shard copies the live entries of its mostly-dead sealed volumes forward,
// demotes the emptied volumes to its cold archive, and deletes the local
// volume files — the reclamation act itself.
func runCompact(store string, args []string) {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	maxLive := fs.Float64("max-live", 0, "max fraction of live blocks for a volume to be compacted (0 = default 0.5)")
	minHot := fs.Int("min-hot", 0, "minimum volumes kept mounted per shard (0 = default 2)")
	maxVols := fs.Int("max-volumes", 0, "cap on volumes compacted per shard (0 = no cap)")
	_ = fs.Parse(args)
	if store == "" {
		fatal(fmt.Errorf("compact requires -store"))
	}
	st, err := clio.OpenStore(store, geom)
	if err != nil {
		fatal(err)
	}
	res, cerr := st.CompactOnce(context.Background(), clio.CompactOptions{
		MaxLiveFraction: *maxLive,
		MinHotVolumes:   *minHot,
		MaxVolumes:      *maxVols,
	})
	if err := st.Close(); err != nil {
		fatal(err)
	}
	if cerr != nil {
		fatal(cerr)
	}
	fmt.Printf("examined %d volumes: %d left hot (dense), %d relocated (%d entries, %d bytes), %d demoted cold\n",
		res.VolumesExamined, res.VolumesSkipped, res.VolumesReloc,
		res.EntriesCopied, res.BytesCopied, res.VolumesDemoted)
}

// runBackup incrementally archives a local store's volumes (§1: only the
// tail written since the last run is copied).
func runBackup(store, archiveDir string) {
	if store == "" {
		fatal(fmt.Errorf("backup requires -store"))
	}
	dirs, err := storeShardDirs(store)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var total archive.Result
	for _, d := range dirs {
		// The archive mirrors the store layout: shard-K subdirectories
		// for a sharded store, a flat archive otherwise.
		dst := archiveDir
		if len(dirs) > 1 {
			dst = filepath.Join(archiveDir, filepath.Base(d))
		}
		be := archive.NewDir(dst)
		devs, closeAll, err := openStoreDevices(d)
		if err != nil {
			fatal(err)
		}
		res, err := archive.Backup(ctx, devs, be)
		closeAll()
		if err != nil {
			fatal(err)
		}
		// Demoted volumes exist locally only as images in the shard's cold
		// archive; adopting them gives the backup the complete sequence.
		if _, err := os.Stat(filepath.Join(d, "cold")); err == nil {
			vols, _, err := archive.Adopt(ctx, be, archive.NewDir(filepath.Join(d, "cold")))
			if err != nil {
				fatal(err)
			}
			res.ColdVolumes = vols
		}
		// The NVRAM sidecar holds the staged (not yet sealed) tail block;
		// a complete backup carries it along.
		nvSrc := filepath.Join(d, "nvram.clio")
		if data, err := os.ReadFile(nvSrc); err == nil {
			if err := os.WriteFile(filepath.Join(dst, "nvram.clio"), data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("captured the staged NVRAM tail")
		}
		total.VolumesSeen += res.VolumesSeen
		total.BlocksCopied += res.BlocksCopied
		total.BlocksSkipped += res.BlocksSkipped
		total.ColdVolumes += res.ColdVolumes
	}
	fmt.Printf("backed up %d volumes: %d blocks copied, %d already archived, %d cold volumes adopted\n",
		total.VolumesSeen, total.BlocksCopied, total.BlocksSkipped, total.ColdVolumes)
}

// runVerifyBackup restores an archive in memory and scrubs it, one
// shard's volume sequence at a time.
func runVerifyBackup(archiveDir string) {
	dirs, err := storeShardDirs(archiveDir)
	if err != nil {
		fatal(err)
	}
	clean := true
	var blocks, entries, catalog int
	for i, d := range dirs {
		devs, err := archive.Restore(context.Background(), archive.NewDir(d))
		if err != nil {
			fatal(err)
		}
		rep, err := scrub.Volumes(devs, scrub.Options{})
		if err != nil {
			fatal(err)
		}
		for _, p := range rep.Problems {
			if len(dirs) > 1 {
				fmt.Printf("shard %d problem: %s\n", i, p)
			} else {
				fmt.Printf("problem: %s\n", p)
			}
		}
		clean = clean && rep.Clean()
		blocks += rep.Blocks
		entries += rep.Entries
		catalog += rep.CatalogRecords
	}
	fmt.Printf("archive holds %d data blocks, %d records, %d catalog records\n",
		blocks, entries, catalog)
	if !clean {
		os.Exit(1)
	}
	fmt.Println("clean")
}

// storeShardDirs returns the directories holding a store's volume files:
// the shard-K subdirectories of a sharded layout in shard order, or dir
// itself for the flat (1-shard) layout.
func storeShardDirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	idx := make(map[int]string)
	for _, e := range ents {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		k, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "shard-"))
		if err != nil || k < 0 {
			continue
		}
		idx[k] = filepath.Join(dir, e.Name())
	}
	if len(idx) == 0 {
		return []string{dir}, nil
	}
	out := make([]string, 0, len(idx))
	for i := 0; i < len(idx); i++ {
		d, ok := idx[i]
		if !ok {
			return nil, fmt.Errorf("%s shard directories are not contiguous (missing shard-%d of %d)",
				dir, i, len(idx))
		}
		out = append(out, d)
	}
	return out, nil
}

// openStoreDevices opens every volume file in a store directory.
func openStoreDevices(dir string) ([]wodev.Device, func(), error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var devs []wodev.Device
	closeAll := func() {
		for _, d := range devs {
			d.Close()
		}
	}
	blockSize := geom.BlockSize
	if blockSize <= 0 {
		blockSize = wodev.DefaultBlockSize
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "vol-") || !strings.HasSuffix(name, ".clio") {
			continue
		}
		path := filepath.Join(dir, name)
		// Capacity: from -volume-blocks when given, else derived from the
		// file extent — exact for sealed (full) volumes, which is what the
		// sequence's block mapping depends on. Only the tail volume is
		// still growing, and it is last, so an underestimate there shifts
		// no boundary.
		capBlocks := geom.VolumeBlocks
		if capBlocks <= 0 {
			if st, err := os.Stat(path); err == nil {
				capBlocks = int(st.Size()) / blockSize
			}
		}
		dev, err := wodev.OpenFile(path, wodev.FileOptions{BlockSize: blockSize, Capacity: capBlocks})
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		devs = append(devs, dev)
	}
	if len(devs) == 0 {
		return nil, nil, fmt.Errorf("no volume files in %s", dir)
	}
	return devs, closeAll, nil
}

func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clio: %v\n", err)
	os.Exit(1)
}
