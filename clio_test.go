package clio

import (
	"errors"
	"fmt"
	"io"
	"testing"
)

func TestCreateOpenDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateDir(dir, DirOptions{VolumeBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.CreateLog("/app", 0o644, "me")
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("line-%02d", i)
		if _, err := s.Append(id, []byte(p), AppendOptions{Forced: i%5 == 0}); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDir(dir, DirOptions{VolumeBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, err := s2.OpenCursor("/app")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		e, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(e.Data))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("round trip through files: %v", got)
	}
}

func TestCreateDirRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateDir(dir, DirOptions{VolumeBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := CreateDir(dir, DirOptions{VolumeBlocks: 64}); err == nil {
		t.Error("CreateDir over existing store accepted")
	}
}

func TestOpenDirEmpty(t *testing.T) {
	if _, err := OpenDir(t.TempDir(), DirOptions{}); err == nil {
		t.Error("OpenDir on empty dir accepted")
	}
}

func TestDirStoreSpansVolumeFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateDir(dir, DirOptions{VolumeBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.CreateLog("/big", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200)
	for i := 0; i < 200; i++ {
		if _, err := s.Append(id, payload, AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := listVolumes(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("volume files: %v, %v", names, err)
	}
	s2, err := OpenDir(dir, DirOptions{VolumeBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, _ := s2.OpenCursor("/big")
	count := 0
	for {
		_, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 200 {
		t.Errorf("recovered %d entries across volume files", count)
	}
}

func TestMemAllocatorFacade(t *testing.T) {
	dev := NewMemDevice(256, 16)
	s, err := New(dev, Options{BlockSize: 256, Degree: 4, Allocate: MemAllocator(16)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.CreateLog("/x", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Append(id, make([]byte, 100), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Volumes()) < 2 {
		t.Errorf("allocator not used: %d volumes", len(s.Volumes()))
	}
}

// TestStoreSentinelErrors pins the error-wrapping contract of the store
// open/create paths: every refusal wraps ErrStoreExists or ErrNoStore with
// %w, so errors.Is works through both the Store helpers and the deprecated
// single-sequence dir helpers.
func TestStoreSentinelErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateStore(dir, DirOptions{VolumeBlocks: 64, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateStore(dir, DirOptions{VolumeBlocks: 64}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("CreateStore over sharded store: %v, want ErrStoreExists", err)
	}
	if _, err := CreateDir(dir, DirOptions{VolumeBlocks: 64}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("CreateDir over sharded store: %v, want ErrStoreExists", err)
	}

	flat := t.TempDir()
	svc, err := CreateDir(flat, DirOptions{VolumeBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateStore(flat, DirOptions{VolumeBlocks: 64}); !errors.Is(err, ErrStoreExists) {
		t.Errorf("CreateStore over flat store: %v, want ErrStoreExists", err)
	}

	empty := t.TempDir()
	if _, err := OpenStore(empty, DirOptions{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenStore on empty dir: %v, want ErrNoStore", err)
	}
	if _, err := OpenDir(empty, DirOptions{}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenDir on empty dir: %v, want ErrNoStore", err)
	}
	if _, err := OpenStore(empty, DirOptions{Shards: 3}); !errors.Is(err, ErrNoStore) {
		t.Errorf("OpenStore asserting shards on empty dir: %v, want ErrNoStore", err)
	}
}
