package experiments

import (
	"context"
	"fmt"
	"io"

	"clio/internal/archive"
	"clio/internal/core"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// CompactRow is one reclamation cycle of the bounded-hot-storage
// experiment: logical history keeps growing (global blocks are never
// reused), while the compactor keeps the hot working set — the volumes
// still mounted locally — bounded by relocating live entries forward and
// demoting dead volumes to the cold tier.
type CompactRow struct {
	Cycle int
	// LogicalBlocks is the global data-block count — the whole write-once
	// history, monotonically growing.
	LogicalBlocks int
	// HotVolumes / HotBlocks are the volumes still mounted locally and
	// their written blocks — the disk the store actually occupies.
	HotVolumes int
	HotBlocks  int
	// ColdVolumes is the cumulative count of volumes demoted to the
	// archive backend.
	ColdVolumes int
	// LiveEntries is the number of entries in the long-lived audit log,
	// all of which must remain readable across every cycle.
	LiveEntries int
}

// RunCompact runs the reclamation experiment: per cycle, a burst of
// short-lived (soon retired) log entries plus a trickle of long-lived audit
// entries, then one compaction pass. The hot working set must stay bounded
// while the logical history grows linearly, and the audit log must remain
// fully readable at the end — the §2.5 claim that reclamation of retired
// history is what makes an infinite write-once address space practical.
func RunCompact(cycles int) ([]CompactRow, error) {
	if cycles <= 0 {
		cycles = 6
	}
	const (
		blockSize = 1024
		volBlocks = 64
	)
	var devs []*wodev.MemDevice
	alloc := func(_ volume.SeqID, _ uint32, _ uint64, bs int) (wodev.Device, error) {
		d := wodev.NewMem(wodev.MemOptions{BlockSize: bs, Capacity: volBlocks})
		devs = append(devs, d)
		return d, nil
	}
	dev0 := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: volBlocks})
	devs = append(devs, dev0)
	svc, err := core.New(dev0, core.Options{
		BlockSize: blockSize,
		Degree:    16,
		Now:       testNow(),
		Allocate:  alloc,
		Cold: &core.ColdTier{
			Backend: archive.NewMem(),
			State:   core.NewMemState(),
		},
		CommitWindow: -1,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	audit, err := svc.CreateLog("/audit", 0, "")
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	payload := make([]byte, 200)
	live := 0
	rows := make([]CompactRow, 0, cycles)
	for cycle := 1; cycle <= cycles; cycle++ {
		path := fmt.Sprintf("/burst-%03d", cycle)
		id, err := svc.CreateLog(path, 0, "")
		if err != nil {
			return nil, err
		}
		for i := 0; i < 4*volBlocks; i++ {
			if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
				return nil, err
			}
			if i%32 == 0 {
				if _, err := svc.Append(audit, []byte(fmt.Sprintf("audit-%04d", live)), core.AppendOptions{}); err != nil {
					return nil, err
				}
				live++
			}
		}
		if err := svc.Retire(path); err != nil {
			return nil, err
		}
		if err := svc.Force(); err != nil {
			return nil, err
		}
		if _, err := svc.CompactOnce(ctx, core.CompactOptions{}); err != nil {
			return nil, err
		}
		row := CompactRow{
			Cycle:         cycle,
			LogicalBlocks: svc.End(),
			ColdVolumes:   int(svc.Stats().VolumesDemoted),
			LiveEntries:   live,
		}
		for _, v := range svc.Volumes() {
			row.HotVolumes++
			if w, err := wodev.FindEnd(v.Dev); err == nil {
				row.HotBlocks += w
			}
		}
		rows = append(rows, row)
	}
	// Every audit entry written across every cycle must still read back —
	// relocated copies for compacted volumes, cold fetches for demoted ones.
	cur, err := svc.OpenCursor("/audit")
	if err != nil {
		return nil, err
	}
	n := 0
	for {
		if _, err := cur.Next(); err != nil {
			break
		}
		n++
	}
	if n != live {
		return nil, fmt.Errorf("audit log holds %d entries after %d cycles, want %d", n, cycles, live)
	}
	return rows, nil
}

// PrintCompact renders the bounded-hot-storage table.
func PrintCompact(w io.Writer, rows []CompactRow) {
	fprintf(w, "reclamation: bounded hot storage under churn (64-block volumes, 1 KiB blocks)\n")
	fprintf(w, "%6s %16s %12s %12s %12s %12s\n",
		"cycle", "logical blocks", "hot volumes", "hot blocks", "cold vols", "live entries")
	for _, r := range rows {
		fprintf(w, "%6d %16d %12d %12d %12d %12d\n",
			r.Cycle, r.LogicalBlocks, r.HotVolumes, r.HotBlocks, r.ColdVolumes, r.LiveEntries)
	}
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		fprintf(w, "history grew %.1fx; hot storage %.1fx\n",
			float64(last.LogicalBlocks)/float64(first.LogicalBlocks),
			float64(last.HotBlocks)/float64(first.HotBlocks))
	}
}
