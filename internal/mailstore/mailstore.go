// Package mailstore is the history-based electronic mail system of §4.2:
// each mailbox is a log file of delivered messages, the mail agent keeps
// pointers into this "mail history" and caches message copies for
// efficiency, and messages are permanently accessible — the agent's flags
// (read, hidden) are themselves logged, so nothing is ever destroyed and
// the storage of messages "is decoupled from the mail system's directory
// management and query facilities, which can evolve over time without
// rendering old mail inaccessible".
//
// Layout under the root log directory (default "/mail"):
//
//	/mail/<user>         delivered messages (one entry per message)
//	/mail/<user>/.flags  the agent's flag history (read/hide marks)
package mailstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"clio/internal/logapi"
	"clio/internal/wire"
)

// Errors.
var (
	// ErrNoMailbox indicates an unknown user.
	ErrNoMailbox = errors.New("mailstore: no such mailbox")
	// ErrNoMessage indicates an unknown message id.
	ErrNoMessage = errors.New("mailstore: no such message")
	// ErrBadMessage indicates an undecodable message entry.
	ErrBadMessage = errors.New("mailstore: malformed message")
)

// Message is one piece of mail.
type Message struct {
	From    string
	Subject string
	Body    string
	// Delivered is the log timestamp assigned at delivery; it doubles as
	// the message id within a mailbox (timestamps are unique, §2.1).
	Delivered int64
	Read      bool
	Hidden    bool
}

// encode serializes the client-visible fields.
func (m *Message) encode() []byte {
	out := wire.PutUvarint(nil, uint64(len(m.From)))
	out = append(out, m.From...)
	out = wire.PutUvarint(out, uint64(len(m.Subject)))
	out = append(out, m.Subject...)
	out = wire.PutUvarint(out, uint64(len(m.Body)))
	out = append(out, m.Body...)
	return out
}

func decodeMessage(b []byte) (*Message, error) {
	m := &Message{}
	for _, dst := range []*string{&m.From, &m.Subject, &m.Body} {
		l, n, err := wire.Uvarint(b)
		if err != nil || uint64(len(b)) < uint64(n)+l {
			return nil, ErrBadMessage
		}
		b = b[n:]
		*dst = string(b[:l])
		b = b[l:]
	}
	return m, nil
}

// flag records in the .flags sublog: kind byte + message timestamp.
const (
	flagRead = 1
	flagHide = 2
)

// Store is a history-based mail store over a log service — in-process,
// sharded or remote (any logapi.Service).
type Store struct {
	mu   sync.Mutex
	svc  logapi.Service
	root string
	// box caches per-user state: the agent's "pointers into the mail
	// history" plus cached message copies.
	box map[string]*mailbox
}

type mailbox struct {
	user          string
	msgID         logapi.ID
	flagID        logapi.ID
	msgs          []*Message // cached copies in delivery order
	replayedFlags bool
}

// New returns a mail store rooted at the given log directory (created if
// needed, e.g. "/mail").
func New(ctx context.Context, svc logapi.Service, root string) (*Store, error) {
	if _, err := svc.Resolve(ctx, root); err != nil {
		if _, err := svc.CreateLog(ctx, root, 0o755, "mail"); err != nil {
			return nil, err
		}
	}
	return &Store{svc: svc, root: root, box: make(map[string]*mailbox)}, nil
}

// CreateMailbox provisions a user's mailbox and flag sublog.
func (s *Store) CreateMailbox(ctx context.Context, user string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.mailboxLocked(ctx, user, true)
	return err
}

// Deliver appends a message to the user's mail history (forced: mail must
// survive a crash once accepted) and returns its message id.
func (s *Store) Deliver(ctx context.Context, user string, from, subject, body string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, err := s.mailboxLocked(ctx, user, false)
	if err != nil {
		return 0, err
	}
	m := &Message{From: from, Subject: subject, Body: body}
	ts, err := s.svc.Append(ctx, mb.msgID, m.encode(), logapi.AppendOptions{Timestamped: true, Forced: true})
	if err != nil {
		return 0, err
	}
	m.Delivered = ts
	mb.msgs = append(mb.msgs, m)
	return ts, nil
}

// DeliverCC appends one message to several mailboxes at once, using a
// single multi-membership log entry (§2.1) — the message is stored once,
// yet appears in every recipient's history. All recipients must live on
// one shard; cross-shard recipient sets surface logapi.ErrShardRange.
func (s *Store) DeliverCC(ctx context.Context, users []string, from, subject, body string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(users) == 0 {
		return 0, fmt.Errorf("mailstore: no recipients")
	}
	boxes := make([]*mailbox, len(users))
	ids := make([]logapi.ID, len(users))
	for i, u := range users {
		mb, err := s.mailboxLocked(ctx, u, false)
		if err != nil {
			return 0, err
		}
		boxes[i] = mb
		ids[i] = mb.msgID
	}
	m := &Message{From: from, Subject: subject, Body: body}
	ts, err := s.svc.AppendMulti(ctx, ids, m.encode(), logapi.AppendOptions{Timestamped: true, Forced: true})
	if err != nil {
		return 0, err
	}
	for _, mb := range boxes {
		cp := *m
		cp.Delivered = ts
		mb.msgs = append(mb.msgs, &cp)
	}
	return ts, nil
}

// List returns the user's messages in delivery order; hidden messages are
// included only when includeHidden is set (they are never gone — §4.2's
// Walnut comparison: this design does not allow permanent deletion).
func (s *Store) List(ctx context.Context, user string, includeHidden bool) ([]*Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, err := s.mailboxLocked(ctx, user, false)
	if err != nil {
		return nil, err
	}
	out := make([]*Message, 0, len(mb.msgs))
	for _, m := range mb.msgs {
		if m.Hidden && !includeHidden {
			continue
		}
		cp := *m
		out = append(out, &cp)
	}
	return out, nil
}

// Get returns one message by id.
func (s *Store) Get(ctx context.Context, user string, id int64) (*Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, err := s.mailboxLocked(ctx, user, false)
	if err != nil {
		return nil, err
	}
	m := mb.find(id)
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoMessage, id)
	}
	cp := *m
	return &cp, nil
}

// MarkRead logs and applies a read mark.
func (s *Store) MarkRead(ctx context.Context, user string, id int64) error {
	return s.setFlag(ctx, user, id, flagRead)
}

// Hide logs and applies a hide mark (a soft delete: the message stays in
// the history and in List(includeHidden)).
func (s *Store) Hide(ctx context.Context, user string, id int64) error {
	return s.setFlag(ctx, user, id, flagHide)
}

func (s *Store) setFlag(ctx context.Context, user string, id int64, kind byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, err := s.mailboxLocked(ctx, user, false)
	if err != nil {
		return err
	}
	m := mb.find(id)
	if m == nil {
		return fmt.Errorf("%w: %d", ErrNoMessage, id)
	}
	rec := append([]byte{kind}, wire.PutUint64(nil, uint64(id))...)
	if _, err := s.svc.Append(ctx, mb.flagID, rec, logapi.AppendOptions{Timestamped: true}); err != nil {
		return err
	}
	applyFlag(m, kind)
	return nil
}

func applyFlag(m *Message, kind byte) {
	switch kind {
	case flagRead:
		m.Read = true
	case flagHide:
		m.Hidden = true
	}
}

func (mb *mailbox) find(id int64) *Message {
	for _, m := range mb.msgs {
		if m.Delivered == id {
			return m
		}
	}
	return nil
}

// Users lists the mailboxes.
func (s *Store) Users(ctx context.Context) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.List(ctx, s.root)
}

// EvictCache drops all cached mailbox state; subsequent operations rebuild
// it from the mail and flag histories (used by tests and after recovery).
func (s *Store) EvictCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.box = make(map[string]*mailbox)
}

// mailboxLocked returns the cached mailbox, rebuilding it from the logs —
// the agent re-deriving its pointers and cached copies from the history.
func (s *Store) mailboxLocked(ctx context.Context, user string, create bool) (*mailbox, error) {
	if mb, ok := s.box[user]; ok {
		return mb, nil
	}
	msgPath := s.root + "/" + user
	flagPath := msgPath + "/.flags"
	msgID, err := s.svc.Resolve(ctx, msgPath)
	if err != nil {
		if !create {
			return nil, fmt.Errorf("%w: %q", ErrNoMailbox, user)
		}
		if msgID, err = s.svc.CreateLog(ctx, msgPath, 0o600, user); err != nil {
			return nil, err
		}
	}
	flagID, err := s.svc.Resolve(ctx, flagPath)
	if err != nil {
		if flagID, err = s.svc.CreateLog(ctx, flagPath, 0o600, user); err != nil {
			return nil, err
		}
	}
	mb := &mailbox{user: user, msgID: msgID, flagID: flagID}
	// Replay the mail history. The mailbox log's entries include the flag
	// sublog's (it is a sublog), so filter by id. Entry ids are
	// shard-local; the mailbox and its flag sublog share a shard.
	cur, err := s.svc.OpenCursor(ctx, msgPath)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var flags []struct {
		kind byte
		id   int64
	}
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch {
		case e.MemberOf(mb.msgID.Local()) && e.LogID != mb.flagID.Local():
			m, derr := decodeMessage(e.Data)
			if derr != nil {
				continue // damaged message entry: lost
			}
			m.Delivered = e.Timestamp
			mb.msgs = append(mb.msgs, m)
		case e.LogID == mb.flagID.Local():
			if len(e.Data) == 9 {
				id, _ := wire.Uint64(e.Data[1:])
				flags = append(flags, struct {
					kind byte
					id   int64
				}{e.Data[0], int64(id)})
			}
		}
	}
	for _, f := range flags {
		if m := mb.find(f.id); m != nil {
			applyFlag(m, f.kind)
		}
	}
	s.box[user] = mb
	return mb, nil
}
