package core

// Pipelined sealing: with a StagingNVRAM configured (and CommitWindow >= 0)
// a full-block seal does not wait for the write-once device. The sealed
// image is made durable in staging NVRAM — that alone is what the force ack
// depends on — and queued on s.pipe; a background sealer goroutine drains
// the queue head-first, so the device write for batch N overlaps NVRAM
// staging and accumulation for batch N+1.
//
// Invariants the pipeline maintains:
//
//   - pipe globals are contiguous: pipe = [sealedEnd, sealedEnd+1, ...],
//     with the staged tail (if any) at the next global after the pipe.
//   - completions are strictly in order (only the head is ever written), so
//     Force acks, checkpoint emission, crash-recovery ordering and the
//     cluster replication stream all observe seals in device order.
//   - the entrymap accumulator covers exactly [0, sealedEnd) at any instant
//     under s.mu: NoteBlock is deferred to completion, and a due entrymap
//     boundary is never emitted while a block below it is still in flight
//     (ensureTailLocked drains first; completeHeadLocked emits boundaries a
//     slide pushed the head across before noting it).
//   - a staged image is dropped from NVRAM only after its device write
//     completed, keyed by its enqueue-time global (origGlobal), so a crash
//     anywhere in the pipeline recovers every acked entry from staging
//     (replayStagedSeals).
//
// Damaged blocks discovered by the background write slide the whole
// in-flight window forward (§2.3.2) — the ack already happened, so the
// degradation is recorded in the bad-block log (pendingBad) rather than
// reported to a client.

import (
	"errors"
	"fmt"
	"time"

	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/faults"
	"clio/internal/wodev"
)

// maxPipeline bounds the in-flight seal window: how many sealed blocks may
// be awaiting their device write before the next seal must wait for the
// head to complete.
const maxPipeline = 4

// pendingSeal is one sealed block whose image is durable in staging NVRAM
// but whose device write has not completed.
type pendingSeal struct {
	global     int             // current target global index (slides renumber it)
	origGlobal int             // staging-NVRAM key: the global at enqueue time
	img        []byte          // sealed image (replaced wholesale on reindex, never mutated)
	ids        []uint16        // log-file ids present (for NoteBlock at completion)
	idSet      map[uint16]bool // same ids as a set (for reader snapshots)
}

// stagingNVRAM returns the configured NVRAM's staging extension when the
// pipeline is enabled.
func (s *Service) stagingNVRAM() StagingNVRAM {
	if !s.staging {
		return nil
	}
	nv, _ := s.opt.NVRAM.(StagingNVRAM)
	return nv
}

// enqueueSealLocked seals the staged tail into the pipeline: the image is
// made durable in staging NVRAM (the ack barrier), queued for the
// background device write, and the tail slot freed; s.mu held.
func (s *Service) enqueueSealLocked(forced bool) error {
	if m := s.met(); m != nil {
		defer m.sealLat.ObserveSince(time.Now())
	}
	g := s.tailGlobal
	// Bounded in-flight window: wait for a slot, absorbing a parked error.
	for len(s.pipe) >= maxPipeline && s.pipeErr == nil && !s.closedFlag.Load() {
		s.sealCond.Wait()
	}
	if err := s.takePipeErrLocked(); err != nil {
		return err
	}
	if s.closedFlag.Load() {
		return ErrClosed
	}
	if s.tailGlobal != g {
		// The wait released s.mu and a competing appender sealed this tail
		// (globals never repeat). Its image is already staged — durable — so
		// this seal's work is done.
		return nil
	}
	if forced {
		s.builder.SetFlags(blockfmt.FlagSealedByForce)
		s.stats.PaddingBytes += int64(s.builder.Free() + 2)
	}
	img := s.builder.Seal()
	// Durability first: the image must be in rewriteable non-volatile
	// storage before anything acks. The device write follows asynchronously.
	ndone := s.tr.Span("core.nvram_store_sealed")
	err := s.storeSealedLocked(g, img)
	ndone()
	if err != nil {
		return fmt.Errorf("clio: stage sealed block: %w", err)
	}
	ids := make([]uint16, 0, len(s.tailIDs))
	for id := range s.tailIDs {
		ids = append(ids, id)
	}
	ps := &pendingSeal{global: g, origGlobal: g, img: img, ids: ids, idSet: s.tailIDs}
	s.pipe = append(s.pipe, ps)
	s.tailGlobal = -1
	s.tailIDs = nil
	s.tailDirty = false
	// The NVRAM tail slot may still hold an earlier image of this block;
	// recovery drops tail slots below the staged-seal frontier, so it need
	// not be cleared here (clearing would cost a store on the hot path).
	s.publishTail(nil)
	s.blockCache().Put(cache.Key{Block: g}, img)
	s.ensureSealerLocked()
	s.sealCond.Broadcast()
	return nil
}

// takePipeErrLocked absorbs a parked pipeline error into the calling
// foreground operation, waking the sealer to retry the head; after a
// crash-injection panic the error stays parked (the service is closed).
func (s *Service) takePipeErrLocked() error {
	if s.pipeErr == nil {
		return nil
	}
	err := s.pipeErr
	if !s.closedFlag.Load() {
		s.pipeErr = nil
		s.sealCond.Broadcast()
	}
	return err
}

// drainPipeLocked is the completion barrier: it returns once every
// in-flight pipelined seal has reached the device, or surfaces the parked
// error of a failed one; s.mu held (released while waiting).
func (s *Service) drainPipeLocked() error {
	for len(s.pipe) > 0 {
		if s.pipeErr != nil {
			return s.takePipeErrLocked()
		}
		if !s.sealerOn || s.sealerStop {
			return errors.New("clio: pipelined seals pending with no sealer")
		}
		s.sealCond.Wait()
	}
	return s.takePipeErrLocked()
}

// ensureSealerLocked starts the background sealer if it is not running.
func (s *Service) ensureSealerLocked() {
	if s.sealerOn || s.sealerStop {
		return
	}
	s.sealerOn = true
	go s.sealerLoop()
}

// stopSealerLocked asks the sealer to exit and waits for it; s.mu held
// (released while waiting). In-flight work is NOT drained — Close drains
// first, Crash deliberately abandons it.
func (s *Service) stopSealerLocked() {
	s.sealerStop = true
	s.sealCond.Broadcast()
	for s.sealerOn {
		s.sealCond.Wait()
	}
}

// sealerLoop is the background device-write stage of the pipeline: one
// goroutine, strictly head-first, holding s.mu except around the device
// write itself.
func (s *Service) sealerLoop() {
	s.mu.Lock()
	for {
		for !s.sealerStop && (len(s.pipe) == 0 || s.pipeErr != nil || s.closedFlag.Load()) {
			s.sealCond.Wait()
		}
		if s.sealerStop {
			break
		}
		s.writeHeadLocked(s.pipe[0])
	}
	s.sealerOn = false
	s.sealCond.Broadcast()
	s.mu.Unlock()
}

// writeHeadLocked writes the pipe head to the device, sliding past damaged
// blocks and extending the volume sequence as needed; sealer-only, s.mu
// held (released around the device write). Unexpected errors park in
// s.pipeErr for a foreground operation to absorb.
func (s *Service) writeHeadLocked(ps *pendingSeal) {
	for {
		v, local, err := s.locateForWriteLocked(ps.global)
		if err != nil {
			s.parkPipeErrLocked(err)
			return
		}
		// Footer flags and index are a property of where the block lands,
		// decided now rather than at enqueue: a slide may have renumbered
		// the block, or moved it onto (or off) a volume's final slot.
		img := ps.img
		var orFlags uint8
		if local == v.DataCapacity()-1 {
			orFlags = blockfmt.FlagVolumeSealed
		}
		if orFlags != 0 || imageBlockIndex(img) != uint32(ps.global) {
			img, err = blockfmt.Reindex(ps.img, uint32(ps.global), orFlags)
			if err != nil {
				s.parkPipeErrLocked(err)
				return
			}
		}
		devIdx := v.DeviceBlock(local)
		s.mu.Unlock()
		werr := func() (werr error) {
			defer func() {
				// A crash-injection panic on the sealer is converted into a
				// parked error + closed service: the "process" died mid
				// device write, exactly what replayStagedSeals recovers.
				if r := recover(); r != nil {
					c, ok := r.(faults.Crash)
					if !ok {
						panic(r)
					}
					werr = c
				}
			}()
			return s.writeTailBlockLocked(v, devIdx, img)
		}()
		s.mu.Lock()
		var crash faults.Crash
		switch {
		case errors.As(werr, &crash):
			s.closedFlag.Store(true)
			s.parkPipeErrLocked(werr)
			return
		case werr == nil:
			ps.img = img // final image, as landed
			s.completeHeadLocked(ps)
			return
		case errors.Is(werr, wodev.ErrCorrupt) || transientExhausted(werr):
			if ierr := v.Dev.Invalidate(devIdx); ierr != nil {
				s.parkPipeErrLocked(fmt.Errorf("clio: invalidate damaged block: %w", ierr))
				return
			}
			s.slidePipeLocked(ps, werr)
		case errors.Is(werr, wodev.ErrFull):
			if err := s.extendLocked(); err != nil {
				s.parkPipeErrLocked(err)
				return
			}
		default:
			s.parkPipeErrLocked(fmt.Errorf("clio: seal block %d: %w", ps.global, werr))
			return
		}
	}
}

// parkPipeErrLocked records a pipeline failure and wakes anyone waiting on
// the barrier.
func (s *Service) parkPipeErrLocked(err error) {
	s.pipeErr = err
	s.sealCond.Broadcast()
}

// completeHeadLocked retires the head after its device write: entrymap
// bookkeeping, frontier advance, snapshot republication, and only then the
// staged image's drop from NVRAM (the durability hand-over).
func (s *Service) completeHeadLocked(ps *pendingSeal) {
	s.pipe = s.pipe[1:]
	// A slide may have pushed this block across an entrymap boundary it was
	// not across at enqueue; emit it before NoteBlock so the note lands in
	// the new span. Everything below ps.global has completed, so the
	// accumulator state is exactly the boundary's prefix.
	s.emitDueLocked(ps.global)
	s.idxMu.Lock()
	s.acc.NoteBlock(ps.global, ps.ids)
	s.idxMu.Unlock()
	s.stats.BlocksSealed++
	s.stats.FooterBytes += blockfmt.FooterSize
	s.pipelinedSeals.Add(1)
	s.sealedEnd = ps.global + 1
	s.publishTail(nil)
	s.blockCache().Put(cache.Key{Block: ps.global}, ps.img)
	if nv := s.stagingNVRAM(); nv != nil {
		if err := nv.DropSealed(ps.origGlobal); err != nil {
			s.parkPipeErrLocked(fmt.Errorf("clio: drop staged seal: %w", err))
			return
		}
	}
	s.sealCond.Broadcast()
}

// slidePipeLocked invalidates the head's damaged target block and slides
// the entire in-flight window (and the staged tail behind it) one block
// forward (§2.3.2). The entries were acked when staged, so the degradation
// is recorded durably via the bad-block log instead of a DegradedError.
func (s *Service) slidePipeLocked(ps *pendingSeal, cause error) {
	dead := ps.global
	s.pendingBad = append(s.pendingBad, dead)
	s.badBlocks = append(s.badBlocks, dead)
	s.pendingDegraded = append(s.pendingDegraded, dead)
	s.pendingDegradedCause = cause
	s.stats.DeadBlocks++
	last := dead
	for _, p := range s.pipe {
		p.global++
		last = p.global
	}
	if s.tailGlobal >= 0 {
		s.tailGlobal++
		s.builder.SetBlockIndex(uint32(s.tailGlobal))
		last = s.tailGlobal
	}
	// The slide may cross an entrymap boundary for the head; blocks below
	// it are all complete, so emitting now is safe (renumbered followers
	// are covered the same way when they complete).
	s.emitDueLocked(ps.global)
	s.publishTail(nil)
	// Every renumbered block's old cache slot is stale; invalidate the
	// whole shifted range (readers re-cache from the published snapshot).
	for g := dead; g <= last; g++ {
		s.blockCache().Invalidate(cache.Key{Block: g})
	}
}

// imageBlockIndex reads the footer block index of a sealed image.
func imageBlockIndex(img []byte) uint32 {
	foot := img[len(img)-blockfmt.FooterSize:]
	return uint32(foot[14]) | uint32(foot[15])<<8 | uint32(foot[16])<<16 | uint32(foot[17])<<24
}

// storeSealedLocked stages a sealed image to staging NVRAM with transient
// faults retried (same fault point as the tail store: both are NVRAM-write
// durability barriers).
func (s *Service) storeSealedLocked(global int, img []byte) error {
	nv := s.stagingNVRAM()
	return s.retry.Do(func() error {
		if ferr := s.opt.Faults.Fire(FaultNVRAMStore); ferr != nil {
			return ferr
		}
		return nv.StoreSealed(global, img)
	})
}
