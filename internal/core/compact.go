package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"clio/internal/archive"
	"clio/internal/blockfmt"
	"clio/internal/entrymap"
	"clio/internal/volume"
	"clio/internal/wire"
)

// The incremental compactor: reclaims the space of old sealed volumes whose
// content is mostly dead (entries of retired log files, superseded relocated
// copies, padding) by copying the remaining live entries forward and
// demoting the whole volume to the cold tier.
//
// Per volume, oldest first, CompactOnce runs this protocol:
//
//  1. COLLECT (lock-free): scan the volume's blocks; an entry is live when
//     it is a committed copy or an ordinary record, and at least one of its
//     member log files is a client log whose catalog descriptor is not
//     retired. Orphan copies — AttrRelocated records outside every
//     committed range — are dead by definition and never collected.
//  2. RELOCATE (one s.mu hold): re-append every live entry at the tail with
//     its original record timestamp plus AttrRelocated, append a ".compact"
//     marker entry, and force the batch durable. The single lock hold makes
//     the batch atomic with respect to concurrent appends.
//  3. COMMIT: record the volume (its relocated ids and the copies'
//     positions) in the sidecar and save it. The sidecar save is the commit
//     point: before it, the copies are invisible orphans and the originals
//     remain canonical; after it, cursors serve the copies and skip the
//     originals.
//  4. DEMOTE: archive the volume's full device image to the cold backend
//     (idempotent), mark it demoted in the sidecar, remove the device from
//     the mounted set and release the local media. Reads of the volume's
//     blocks now go through the cold backend at archival latency.
//
// A crash anywhere in the protocol is safe: pre-commit, the orphan copies
// are permanently invisible and a rerun re-copies from the intact
// originals; post-commit, a rerun resumes at the demotion step, which is
// idempotent end to end.

// CompactOptions bounds one CompactOnce pass.
type CompactOptions struct {
	// MaxLiveFraction caps the fraction of a volume's written blocks that
	// may hold live entries for the volume to be worth compacting; denser
	// volumes are left hot. Defaults to 0.5.
	MaxLiveFraction float64
	// MinHotVolumes is the minimum number of volumes kept mounted; the
	// active volume counts. Defaults to 2.
	MinHotVolumes int
	// MaxVolumes caps the volumes compacted in one call; 0 means no cap.
	MaxVolumes int
}

func (o CompactOptions) withDefaults() CompactOptions {
	if o.MaxLiveFraction <= 0 {
		o.MaxLiveFraction = 0.5
	}
	if o.MinHotVolumes <= 0 {
		o.MinHotVolumes = 2
	}
	return o
}

// CompactResult reports one CompactOnce pass.
type CompactResult struct {
	VolumesExamined int // candidate volumes scanned
	VolumesSkipped  int // candidates left hot (live fraction above the cap)
	VolumesReloc    int // volumes whose live entries were copied forward
	VolumesDemoted  int // volumes archived cold and released locally
	EntriesCopied   int
	BytesCopied     int64
}

// liveEntry is one collected live entry awaiting relocation.
type liveEntry struct {
	ids    []uint16
	data   []byte
	ts     int64
	attr   uint8
	origin *relocVol // the compacted volume whose copy this is; nil = this volume
	// seq is the entry's logical sequence number within its origin volume:
	// the collection order for native entries (physical = original order),
	// or derived from the containing range's Seq for relocated copies. A
	// host volume's physical layout can order another volume's copies
	// arbitrarily, so relocation sorts same-origin entries by seq to
	// restore the origin's append order.
	seq int
}

// CompactOnce runs one compaction pass: it first finishes any committed but
// not yet demoted work from a previous (possibly crashed) run, then compacts
// eligible volumes oldest first. It is safe to run concurrently with
// appends and reads; concurrent CompactOnce calls serialize.
func (s *Service) CompactOnce(ctx context.Context, opt CompactOptions) (*CompactResult, error) {
	if s.opt.Cold == nil {
		return nil, ErrNoColdTier
	}
	if s.closedFlag.Load() {
		return nil, ErrClosed
	}
	if opt == (CompactOptions{}) {
		opt = s.opt.Cold.Compact
	}
	opt = opt.withDefaults()
	s.cmpMu.Lock()
	defer s.cmpMu.Unlock()
	res := &CompactResult{}

	// Resume: demote volumes a previous run committed but never archived or
	// released (crash between commit and demotion).
	for _, v := range s.cmpState.Vols {
		if v.Demoted {
			continue
		}
		if err := s.demoteVolume(ctx, v, res); err != nil {
			return res, err
		}
	}

	skip := make(map[uint32]bool)
	for _, v := range s.cmpState.Vols {
		skip[v.Index] = true
	}
	// Bound the pass to volumes that exist now: concurrent appends keep
	// minting new sealed volumes, and a pass that chased them would never
	// terminate. Newer volumes wait for the next pass.
	eligible := make(map[uint32]bool)
	s.mu.Lock()
	for _, v := range s.set.Volumes() {
		eligible[v.Hdr.Index] = true
	}
	s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if opt.MaxVolumes > 0 && res.VolumesReloc >= opt.MaxVolumes {
			return res, nil
		}
		cand := s.nextCandidate(opt, skip, eligible)
		if cand == nil {
			return res, nil
		}
		skip[cand.Hdr.Index] = true
		res.VolumesExamined++
		done, err := s.compactVolume(ctx, cand, opt, res)
		if err != nil {
			return res, err
		}
		if !done {
			res.VolumesSkipped++
		}
	}
}

// nextCandidate returns the oldest mounted volume eligible for compaction:
// present when the pass started, not the active volume, not already
// compacted or examined this pass, and with enough volumes left to respect
// MinHotVolumes.
func (s *Service) nextCandidate(opt CompactOptions, skip, eligible map[uint32]bool) *volume.Volume {
	s.mu.Lock()
	defer s.mu.Unlock()
	vols := s.set.Volumes()
	if len(vols) <= opt.MinHotVolumes {
		return nil
	}
	for _, v := range vols {
		if v == s.set.Active() || skip[v.Hdr.Index] || !eligible[v.Hdr.Index] {
			continue
		}
		return v
	}
	return nil
}

// compactVolume runs collect → relocate → commit → demote for one volume.
// It returns false (and no error) when the volume's live fraction exceeds
// the cap and the volume stays hot.
func (s *Service) compactVolume(ctx context.Context, v *volume.Volume, opt CompactOptions, res *CompactResult) (bool, error) {
	start := int(v.Hdr.StartOffset)
	written, err := v.DataWritten()
	if err != nil {
		return false, fmt.Errorf("clio: compact volume %d: %w", v.Hdr.Index, err)
	}
	live, liveBlocks, err := s.collectLive(start, start+written)
	if err != nil {
		return false, err
	}
	if err := s.compactHookCall("collected"); err != nil {
		return false, err
	}
	if written > 0 && float64(liveBlocks)/float64(written) > opt.MaxLiveFraction {
		return false, nil
	}

	// Relocate the live entries in origin order (all re-copies of one
	// previously compacted volume stay contiguous, so its replacement
	// ranges never interleave with another origin's) and, within an
	// origin, in logical order: the host's physical layout may differ
	// when an earlier pass placed logically later entries first.
	sort.SliceStable(live, func(i, j int) bool {
		oi, oj := originStart(live[i].origin, start), originStart(live[j].origin, start)
		if oi != oj {
			return oi < oj
		}
		return live[i].seq < live[j].seq
	})
	newVol := &relocVol{
		Index:    v.Hdr.Index,
		Start:    start,
		Blocks:   written,
		Capacity: v.DataCapacity(),
		idSet:    make(map[uint16]bool),
	}
	placed, err := s.relocateLocked(v, live, newVol)
	if errors.Is(err, errRelocDegraded) {
		// A media slide moved staged blocks mid-batch, so the recorded copy
		// positions are unreliable. The uncommitted copies are harmless
		// orphans; leave the volume hot and retry on a later pass.
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if err := s.compactHookCall("forced"); err != nil {
		return false, err
	}

	// Commit: fold the new ranges into a fresh state and save the sidecar.
	st := s.cmpState.clone()
	if err := foldRanges(st, newVol, live, placed, start, written); err != nil {
		return false, err
	}
	if err := s.commitColdState(st); err != nil {
		return false, err
	}
	res.VolumesReloc++
	res.EntriesCopied += len(placed)
	for _, e := range live {
		res.BytesCopied += int64(len(e.data))
	}
	if err := s.compactHookCall("committed"); err != nil {
		return false, err
	}

	// Demote the freshly committed volume.
	for _, cv := range s.cmpState.Vols {
		if cv.Index == newVol.Index && !cv.Demoted {
			if err := s.demoteVolume(ctx, cv, res); err != nil {
				return true, err
			}
		}
	}
	return true, nil
}

// originStart orders collected entries by their origin volume's start
// offset; entries native to the volume being compacted sort at its own
// start.
func originStart(origin *relocVol, self int) int {
	if origin == nil {
		return self
	}
	return origin.Start
}

// collectLive scans global data blocks [from, to) and returns the live
// entries (first fragments only; fragmented data is reassembled, possibly
// from past `to`). The scan applies the cursor visibility rules, so
// superseded originals and orphan copies are never collected twice.
func (s *Service) collectLive(from, to int) ([]liveEntry, int, error) {
	view := s.cmpView.Load()
	var out []liveEntry
	liveBlocks := 0
	nativeSeq := 0
	rangeOff := make(map[*copyRange]int) // live entries seen per range so far
	for g := from; g < to; g++ {
		db, err := s.decodeBlock(g)
		if err != nil {
			continue // damaged or invalidated: nothing live here
		}
		blockLive := false
		for i, r := range db.p.Records {
			if r.Continued {
				continue
			}
			var origin *relocVol
			var rng *copyRange
			if r.AttrFlags&blockfmt.AttrRelocated != 0 {
				if origin, rng = view.originOf(g, i); origin == nil {
					continue // orphan from an aborted compaction
				}
			}
			ids := append([]uint16{r.LogID}, r.ExtraIDs...)
			if !s.anyLive(ids) {
				continue
			}
			data, aerr := s.assemble(g, i, db.p)
			if aerr != nil {
				continue // torn or lost: nothing to preserve
			}
			seq := nativeSeq
			if rng != nil {
				// A re-copy inherits its order from the containing range:
				// Seq plus the offset among the range's surviving entries
				// keeps every same-origin pair ordered as originally
				// appended, whatever the host's physical layout.
				seq = rng.Seq + rangeOff[rng]
				rangeOff[rng]++
			} else {
				nativeSeq++
			}
			out = append(out, liveEntry{
				ids:    ids,
				data:   append([]byte(nil), data...),
				ts:     db.effs[i],
				attr:   (r.AttrFlags & blockfmt.AttrForced) | blockfmt.AttrRelocated,
				origin: origin,
				seq:    seq,
			})
			blockLive = true
		}
		if blockLive {
			liveBlocks++
		}
	}
	return out, liveBlocks, nil
}

// anyLive reports whether at least one member id is a client log file whose
// descriptor is not retired. System log files (entrymap, catalog, bad-block,
// checkpoint, compact markers) are never live: their history stays readable
// on the original blocks, cold included, and checkpoints bound how far back
// recovery ever reads.
func (s *Service) anyLive(ids []uint16) bool {
	for _, id := range ids {
		if id < entrymap.FirstClientID {
			continue
		}
		d, err := s.cat.Get(id)
		if err != nil || d.System || d.Retired {
			continue
		}
		return true
	}
	return false
}

// placedCopy records where one relocated copy's first fragment landed.
type placedCopy struct {
	block, rec int
}

// relocateLocked appends the copies and the ".compact" marker and forces
// the batch, all under one s.mu hold. The copies keep their original record
// timestamps (FormFull, so the timestamp is explicit) while any block the
// batch opens gets a current footer timestamp, preserving the footer
// monotonicity recovery and scrubbing rely on.
func (s *Service) relocateLocked(v *volume.Volume, live []liveEntry, nv *relocVol) ([]placedCopy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return nil, ErrClosed
	}
	// Absorb (and discard) degradation notices from earlier background work:
	// only slides during this batch matter for the placement check below.
	s.opDegradedReset()
	s.opDegraded = s.opDegraded[:0]
	s.opDegradedCause = nil
	placed := make([]placedCopy, 0, len(live))
	for i := range live {
		e := &live[i]
		form := uint8(blockfmt.FormFull)
		var extras []uint16
		if len(e.ids) > 1 {
			form = blockfmt.FormMulti
			extras = e.ids[1:]
		}
		block, rec, err := s.appendEntryLocked(e.ids[0], extras, e.data, form, e.attr, e.ts, true)
		if err != nil {
			return nil, fmt.Errorf("clio: relocate entry: %w", err)
		}
		placed = append(placed, placedCopy{block: block, rec: rec})
		if e.origin == nil {
			for _, id := range e.ids {
				if !nv.idSet[id] {
					nv.idSet[id] = true
					nv.IDs = append(nv.IDs, id)
				}
			}
		}
		s.stats.EntriesRelocated++
		s.stats.BytesRelocated += int64(len(e.data))
	}
	sort.Slice(nv.IDs, func(i, j int) bool { return nv.IDs[i] < nv.IDs[j] })
	marker := encodeCompactMarker(v.Hdr.Index, nv.IDs)
	if err := s.appendSystemLocked(entrymap.CompactID, marker,
		blockfmt.FormFull, blockfmt.AttrSystem, s.nextTS(false), false); err != nil {
		return nil, err
	}
	if err := s.flushDueLocked(); err != nil {
		return nil, err
	}
	if err := s.forceLocked(); err != nil {
		return nil, err
	}
	// The placements are final only once every staged block is on the device:
	// a damaged-block slide renumbers staged blocks wholesale, invalidating
	// the positions recorded above. Drain the pipeline and abort the commit
	// if anything slid.
	if err := s.drainPipeLocked(); err != nil {
		return nil, err
	}
	if len(s.opDegraded) > 0 || len(s.pendingDegraded) > 0 {
		return nil, errRelocDegraded
	}
	return placed, nil
}

// errRelocDegraded aborts a relocation batch whose staged blocks slid past
// damaged media; the uncommitted copies are orphans and the volume is
// retried on a later pass.
var errRelocDegraded = errors.New("clio: media slide during relocation")

// encodeCompactMarker encodes the in-log audit record appended after a
// volume's copies: the compacted volume's index and the relocated ids. The
// sidecar, not this record, is authoritative; the marker exists so the
// volume sequence itself documents every compaction.
func encodeCompactMarker(index uint32, ids []uint16) []byte {
	out := wire.PutUint32(nil, index)
	out = wire.PutUvarint(out, uint64(len(ids)))
	for _, id := range ids {
		out = wire.PutUvarint(out, uint64(id))
	}
	return out
}

// DecodeCompactMarker decodes a ".compact" marker entry's payload.
func DecodeCompactMarker(data []byte) (index uint32, ids []uint16, err error) {
	index, err = wire.Uint32(data)
	if err != nil {
		return 0, nil, err
	}
	rest := data[4:]
	n, used, err := wire.Uvarint(rest)
	if err != nil {
		return 0, nil, err
	}
	rest = rest[used:]
	for i := uint64(0); i < n; i++ {
		id, used, err := wire.Uvarint(rest)
		if err != nil {
			return 0, nil, err
		}
		rest = rest[used:]
		ids = append(ids, uint16(id))
	}
	return index, ids, nil
}

// foldRanges turns the placed copies into per-origin ranges and folds them
// into the prepared state: the compacted volume gains its own ranges; every
// origin volume whose copies were hosted in [start, start+written) has
// those ranges replaced by the re-copies. Each range carries the logical
// sequence number of its first entry, so the origin's list stays in
// original entry order no matter where successive passes scatter the
// copies physically.
//
// A range covers exactly the consecutive sequence run Seq..Seq+slots-1, so
// merging a placement requires logical continuity as well as physical
// adjacency. Two live entries with a sequence gap — the entries between
// them are hosted in a volume this batch did not compact — can land in
// adjacent slots, and merging them would silently collapse the gap: the
// range would claim sequence numbers that actually belong to another
// host's range, and Seq-sorted delivery would invert their order.
func foldRanges(st *compactState, nv *relocVol, live []liveEntry, placed []placedCopy, start, written int) error {
	if len(placed) != len(live) {
		return errors.New("clio: compact bookkeeping mismatch")
	}
	// Group placements by origin, preserving order (live is origin-sorted).
	type group struct {
		origin *relocVol
		ranges []copyRange
	}
	var groups []group
	for i := range placed {
		o := live[i].origin
		if len(groups) == 0 || groups[len(groups)-1].origin != o {
			groups = append(groups, group{origin: o})
		}
		g := &groups[len(groups)-1]
		p := placed[i]
		if n := len(g.ranges); n > 0 && sameHostRun(&g.ranges[n-1], p) &&
			live[i].seq == g.ranges[n-1].Seq+(g.ranges[n-1].EndRec-g.ranges[n-1].StartRec+1) {
			g.ranges[n-1].EndBlock, g.ranges[n-1].EndRec = p.block, p.rec
		} else {
			g.ranges = append(g.ranges, copyRange{
				StartBlock: p.block, StartRec: p.rec,
				EndBlock: p.block, EndRec: p.rec,
				Seq: live[i].seq,
			})
		}
	}
	for _, g := range groups {
		if g.origin == nil {
			nv.Ranges = append(nv.Ranges, g.ranges...)
			continue
		}
		// Find the origin in the cloned state and replace its ranges hosted
		// in the compacted region.
		var target *relocVol
		for _, v := range st.Vols {
			if v.Index == g.origin.Index {
				target = v
				break
			}
		}
		if target == nil {
			return fmt.Errorf("clio: compact origin volume %d missing from sidecar", g.origin.Index)
		}
		replaceHostedRanges(target, start, start+written, g.ranges)
	}
	// Origins whose hosted copies all died (every entry retired since the
	// last compaction) produced no group; still drop their stale ranges.
	for _, v := range st.Vols {
		hosted := false
		for _, r := range v.Ranges {
			if r.StartBlock >= start && r.StartBlock < start+written {
				hosted = true
				break
			}
		}
		if hosted {
			replaced := false
			for _, g := range groups {
				if g.origin != nil && g.origin.Index == v.Index {
					replaced = true
					break
				}
			}
			if !replaced {
				replaceHostedRanges(v, start, start+written, nil)
			}
		}
	}
	st.Vols = append(st.Vols, nv)
	return nil
}

// sameHostRun reports whether a placement extends the given range. Only the
// immediately following record slot of the same block merges: a batch can be
// interleaved with foreign records (concurrent appends sneak in at pipeline
// wait points; entrymap records flush between copies), and a range must
// never cover a slot the batch did not place — redirect iteration would
// serve a foreign client record twice. Strict record adjacency makes every
// range exact, at the cost of one range per block.
func sameHostRun(r *copyRange, p placedCopy) bool {
	return p.block == r.EndBlock && p.rec == r.EndRec+1
}

// replaceHostedRanges replaces v's ranges whose copies live in global
// blocks [from, to) with the replacement ranges, wherever they sit in the
// list, and restores the Seq order that redirect iteration delivers.
func replaceHostedRanges(v *relocVol, from, to int, repl []copyRange) {
	out := make([]copyRange, 0, len(v.Ranges)+len(repl))
	for _, r := range v.Ranges {
		if r.StartBlock >= from && r.StartBlock < to {
			continue
		}
		out = append(out, r)
	}
	out = append(out, repl...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	v.Ranges = out
}

// demoteVolume archives a committed volume's device image cold, marks it
// demoted in the sidecar, removes the device from the mounted set and
// releases the local media. Every step is idempotent, so a crashed or
// aborted demotion simply reruns.
func (s *Service) demoteVolume(ctx context.Context, v *relocVol, res *CompactResult) error {
	be := s.opt.Cold.Backend
	s.mu.Lock()
	var dev *volume.Volume
	for _, mv := range s.set.Volumes() {
		if mv.Hdr.Index == v.Index {
			dev = mv
			break
		}
	}
	s.mu.Unlock()
	if dev != nil {
		if _, err := archive.BackupVolume(ctx, be, dev.Dev); err != nil {
			return fmt.Errorf("clio: archive volume %d: %w", v.Index, err)
		}
	} else {
		// Device already gone (resumed run): verify the cold copy exists
		// before trusting the demotion.
		ok, err := archive.HasVolume(ctx, be, v.Index, v.Blocks+1)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("clio: volume %d missing locally and from the cold backend", v.Index)
		}
	}
	if err := s.compactHookCall("archived"); err != nil {
		return err
	}
	if !v.Demoted {
		st := s.cmpState.clone()
		for _, cv := range st.Vols {
			if cv.Index == v.Index {
				cv.Demoted = true
			}
		}
		if err := s.commitColdState(st); err != nil {
			return err
		}
		v.Demoted = true
		res.VolumesDemoted++
	}
	if dev != nil {
		s.mu.Lock()
		_, rerr := s.set.Remove(v.Index)
		s.mu.Unlock()
		if rerr != nil {
			return fmt.Errorf("clio: unmount demoted volume %d: %w", v.Index, rerr)
		}
		if rel := s.opt.Cold.Release; rel != nil {
			if err := rel(v.Index); err != nil {
				return fmt.Errorf("clio: release volume %d: %w", v.Index, err)
			}
		}
	}
	return s.compactHookCall("demoted")
}

// sweepDemoted finishes demotions a crash interrupted after the sidecar
// marked the volume demoted but before the local device was released. Runs
// once at Open, after recovery.
func (s *Service) sweepDemoted() error {
	if s.opt.Cold == nil {
		return nil
	}
	ctx := context.Background()
	for _, v := range s.cmpState.Vols {
		if !v.Demoted {
			continue
		}
		s.mu.Lock()
		var dev *volume.Volume
		for _, mv := range s.set.Volumes() {
			if mv.Hdr.Index == v.Index {
				dev = mv
				break
			}
		}
		s.mu.Unlock()
		if dev == nil {
			continue
		}
		// Re-archive (idempotent) rather than merely probing: the cheapest
		// way to guarantee the cold image is complete before dropping the
		// only other copy.
		if _, err := archive.BackupVolume(ctx, s.opt.Cold.Backend, dev.Dev); err != nil {
			return fmt.Errorf("clio: verify cold image of volume %d: %w", v.Index, err)
		}
		s.mu.Lock()
		_, rerr := s.set.Remove(v.Index)
		s.mu.Unlock()
		if rerr != nil {
			return rerr
		}
		if rel := s.opt.Cold.Release; rel != nil {
			if err := rel(v.Index); err != nil {
				return err
			}
		}
	}
	return nil
}

// compactHookCall invokes the test-only stage hook.
func (s *Service) compactHookCall(stage string) error {
	if s.compactHook == nil {
		return nil
	}
	return s.compactHook(stage)
}
