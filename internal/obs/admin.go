package obs

import (
	"encoding/json"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"time"
)

// NewAdminMux builds the cliod admin HTTP surface:
//
//	/metrics         Prometheus text exposition of reg
//	/statusz         JSON from statusFn (volumes, tail, sessions, batching)
//	/tracez          JSON recent + slow traces from tracer
//	/debug/pprof/*   the standard runtime profiles
//
// tracer and statusFn may be nil; their endpoints then report as disabled.
func NewAdminMux(reg *Registry, tracer *Tracer, statusFn func() any) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})

	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if statusFn == nil {
			_ = enc.Encode(map[string]string{"status": "no status source registered"})
			return
		}
		_ = enc.Encode(statusFn())
	})

	mux.HandleFunc("/tracez", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if tracer == nil {
			_ = enc.Encode(map[string]string{"status": "tracing disabled"})
			return
		}
		_ = enc.Encode(struct {
			SlowThreshold time.Duration `json:"slow_threshold_ns"`
			Recent        []TraceRecord `json:"recent"`
			Slow          []TraceRecord `json:"slow"`
		}{tracer.SlowThreshold(), tracer.Recent(), tracer.Slow()})
	})

	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)

	return mux
}

// RegisterProcessMetrics adds Go runtime gauges to reg — the minimum needed
// to correlate service counters with process health from one scrape.
func RegisterProcessMetrics(reg *Registry) {
	reg.GaugeFunc("clio_go_goroutines", "Number of live goroutines.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("clio_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.HeapAlloc)
		})
	reg.CounterFunc("clio_go_gc_cycles_total", "Completed GC cycles.",
		func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return int64(ms.NumGC)
		})
}
