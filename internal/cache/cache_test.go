package cache

import (
	"errors"
	"testing"

	"clio/internal/vclock"
	"clio/internal/wodev"
)

func block(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestPutGetLRU(t *testing.T) {
	c := New(2, nil)
	c.Put(Key{0, 0}, block(8, 1))
	c.Put(Key{0, 1}, block(8, 2))
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Touch block 0 so block 1 is the LRU victim.
	if got := c.lookup(Key{0, 0}); got == nil {
		t.Fatal("lookup miss on cached block")
	}
	c.Put(Key{0, 2}, block(8, 3))
	if c.Peek(Key{0, 1}) {
		t.Error("LRU victim not evicted")
	}
	if !c.Peek(Key{0, 0}) || !c.Peek(Key{0, 2}) {
		t.Error("wrong block evicted")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Inserts != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPutCopies(t *testing.T) {
	c := New(0, nil)
	src := block(8, 5)
	c.Put(Key{0, 0}, src)
	src[0] = 99
	got := c.lookup(Key{0, 0})
	if got[0] != 5 {
		t.Error("cache aliases caller buffer")
	}
}

func TestGetReadThrough(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 64, Capacity: 8})
	if _, err := dev.AppendBlock(block(64, 7)); err != nil {
		t.Fatal(err)
	}
	c := New(4, nil)
	got, err := c.Get(Key{0, 0}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Error("wrong data read through")
	}
	if dev.Stats().Reads != 1 {
		t.Errorf("device reads = %d", dev.Stats().Reads)
	}
	// Second Get hits the cache.
	if _, err := c.Get(Key{0, 0}, dev); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Reads != 1 {
		t.Error("cache did not absorb second read")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGetErrorsPassThrough(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 64, Capacity: 8})
	c := New(4, nil)
	if _, err := c.Get(Key{0, 3}, dev); !errors.Is(err, wodev.ErrUnwritten) {
		t.Errorf("unwritten: %v", err)
	}
	if _, err := c.Get(Key{0, 3}, nil); err == nil {
		t.Error("nil device accepted on miss")
	}
}

func TestGetChargesClock(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 1024, Capacity: 8})
	if _, err := dev.AppendBlock(block(1024, 1)); err != nil {
		t.Fatal(err)
	}
	clk := vclock.New(vclock.DefaultModel())
	c := New(4, clk)
	if _, err := c.Get(Key{0, 0}, dev); err != nil {
		t.Fatal(err)
	}
	miss := clk.Elapsed()
	if miss < 150_000_000 { // must include the 150 ms seek
		t.Errorf("miss charged only %v", miss)
	}
	clk.Reset()
	if _, err := c.Get(Key{0, 0}, dev); err != nil {
		t.Fatal(err)
	}
	hit := clk.Elapsed()
	if hit != clk.Model().CachedBlock {
		t.Errorf("hit charged %v, want %v", hit, clk.Model().CachedBlock)
	}
}

func TestInvalidateAndDropVolume(t *testing.T) {
	c := New(0, nil)
	c.Put(Key{0, 0}, block(8, 1))
	c.Put(Key{0, 1}, block(8, 2))
	c.Put(Key{1, 0}, block(8, 3))
	c.Invalidate(Key{0, 0})
	if c.Peek(Key{0, 0}) {
		t.Error("invalidated block still cached")
	}
	c.DropVolume(0)
	if c.Peek(Key{0, 1}) {
		t.Error("DropVolume left volume-0 block")
	}
	if !c.Peek(Key{1, 0}) {
		t.Error("DropVolume evicted other volume")
	}
	c.Flush()
	if c.Len() != 0 {
		t.Error("Flush left entries")
	}
}

func TestUnboundedCache(t *testing.T) {
	c := New(0, nil)
	for i := 0; i < 1000; i++ {
		c.Put(Key{0, i}, block(8, byte(i)))
	}
	if c.Len() != 1000 {
		t.Errorf("unbounded cache evicted: len=%d", c.Len())
	}
}

func TestHitRatio(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1}
	if r := s.HitRatio(); r != 0.75 {
		t.Errorf("HitRatio = %v", r)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio != 0")
	}
}
