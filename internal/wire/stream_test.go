package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestStreamSubscribeRoundTrip(t *testing.T) {
	in := &StreamSubscribe{
		Path:      "/feed",
		Buffer:    128,
		FromStart: true,
		From: []StreamPos{
			{Shard: 0, Block: 12, Rec: 3},
			{Shard: 3, Block: 7, Rec: 0},
		},
		Credit: 64,
	}
	out, err := DecodeStreamSubscribe(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	// Minimal form: no resume positions, defaults everywhere.
	min := &StreamSubscribe{Path: "/"}
	out, err = DecodeStreamSubscribe(min.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(min, out) {
		t.Fatalf("minimal round trip: %+v != %+v", out, min)
	}
}

func TestStreamDeliverRoundTrip(t *testing.T) {
	in := &StreamDeliver{
		SubID:     7,
		LogID:     42,
		Timestamp: 1_700_000_000_000_000_001,
		Flags:     3, // timestamped | forced
		Shard:     2,
		Block:     901,
		Index:     14,
		ExtraIDs:  []uint16{5, 9},
		Data:      []byte("hello stream"),
	}
	out, err := DecodeStreamDeliver(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestStreamControlRoundTrips(t *testing.T) {
	cr, err := DecodeStreamCredit((&StreamCredit{SubID: 3, Credit: 512}).Encode(nil))
	if err != nil || cr.SubID != 3 || cr.Credit != 512 {
		t.Fatalf("credit: %+v, %v", cr, err)
	}
	un, err := DecodeStreamUnsubscribe((&StreamUnsubscribe{SubID: 9}).Encode(nil))
	if err != nil || un.SubID != 9 {
		t.Fatalf("unsubscribe: %+v, %v", un, err)
	}
	end, err := DecodeStreamEnd((&StreamEnd{SubID: 4, Msg: "service closed"}).Encode(nil))
	if err != nil || end.SubID != 4 || end.Msg != "service closed" {
		t.Fatalf("end: %+v, %v", end, err)
	}
}

func TestGroupRecRoundTrip(t *testing.T) {
	for _, in := range []*GroupRec{
		{Kind: GroupJoin, Member: "c1"},
		{Kind: GroupLeave, Member: "c2"},
		{Kind: GroupHeartbeat, Member: "c1"},
		{Kind: GroupAck, Member: "c1", Partition: 2, Shard: 2, Block: 88, Rec: 4, Count: 1024},
		{Kind: GroupClaim, Member: "c3", Partition: 1},
		{Kind: GroupRelease, Member: "c3", Partition: 1},
	} {
		out, err := DecodeGroupRec(in.Encode(nil))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip: %+v != %+v", out, in)
		}
	}
}

func TestStreamGroupOpRoundTrip(t *testing.T) {
	in := &StreamGroupOp{
		Group: "mailers",
		Rec:   GroupRec{Kind: GroupAck, Member: "c1", Partition: 3, Shard: 3, Block: 10, Rec: 2, Count: 55},
	}
	out, err := DecodeStreamGroupOp(in.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestDecodeStreamDispatch(t *testing.T) {
	cases := []struct {
		op      byte
		payload []byte
	}{
		{OpStreamSubscribe, (&StreamSubscribe{Path: "/x"}).Encode(nil)},
		{OpStreamDeliver, (&StreamDeliver{SubID: 1, Data: []byte("d")}).Encode(nil)},
		{OpStreamCredit, (&StreamCredit{SubID: 1, Credit: 1}).Encode(nil)},
		{OpStreamUnsubscribe, (&StreamUnsubscribe{SubID: 1}).Encode(nil)},
		{OpStreamEnd, (&StreamEnd{SubID: 1, Msg: "m"}).Encode(nil)},
		{OpStreamAck, (&StreamGroupOp{Group: "g", Rec: GroupRec{Kind: GroupAck, Member: "m"}}).Encode(nil)},
		{OpStreamRebalance, (&StreamGroupOp{Group: "g", Rec: GroupRec{Kind: GroupJoin, Member: "m"}}).Encode(nil)},
	}
	for _, c := range cases {
		if !IsStreamOp(c.op) {
			t.Errorf("IsStreamOp(%#x) = false", c.op)
		}
		if _, err := DecodeStream(c.op, c.payload); err != nil {
			t.Errorf("DecodeStream(%#x): %v", c.op, err)
		}
	}
	if IsStreamOp(OpReplStatus) || IsStreamOp(0x67) {
		t.Error("IsStreamOp accepts non-stream ops")
	}
	if _, err := DecodeStream(0x00, nil); !errors.Is(err, ErrStreamPayload) {
		t.Errorf("unknown op error: %v", err)
	}
}

func TestStreamDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		op      byte
		payload []byte
	}{
		{"subscribe truncated path", OpStreamSubscribe, []byte{0x05, 'a'}},
		{"subscribe from-count overflow", OpStreamSubscribe,
			append((&StreamSubscribe{Path: "/x"}).Encode(nil)[:4], 0xFF, 0xFF, 0xFF, 0x7F)},
		{"deliver truncated data", OpStreamDeliver, (&StreamDeliver{SubID: 1, Data: []byte("abc")}).Encode(nil)[:8]},
		{"group bad kind", OpStreamAck, (&StreamGroupOp{Group: "g", Rec: GroupRec{Kind: 0, Member: "m"}}).Encode(nil)},
		{"group kind out of range", OpStreamRebalance, (&StreamGroupOp{Group: "g", Rec: GroupRec{Kind: 99, Member: "m"}}).Encode(nil)},
		{"empty credit", OpStreamCredit, nil},
	}
	for _, c := range cases {
		if _, err := DecodeStream(c.op, c.payload); !errors.Is(err, ErrStreamPayload) {
			t.Errorf("%s: err = %v, want ErrStreamPayload", c.name, err)
		}
	}
}
