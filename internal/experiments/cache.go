package experiments

import (
	"io"
	"math/rand"

	"clio/internal/analytic"
	"clio/internal/core"
	"clio/internal/vclock"
)

// CacheRow is one point of the §4 cache experiment: read performance as a
// function of cache size under a recency-skewed read workload (the paper:
// "in many applications, the most frequent accesses to large logs are to
// those entries that were written most recently").
type CacheRow struct {
	CacheBlocks int
	HitRatio    float64
	// AvgReadMs is the average virtual time of one entry read.
	AvgReadMs float64
	// TheoryMs is §4's two-level cost model applied to the measured hit
	// ratio, with the model's cached-block and device costs.
	TheoryMs float64
}

// RunCacheSweep builds one volume, then replays a recency-skewed read
// workload for each cache size, reporting hit ratios and virtual times.
// It also returns §4's break-even ratio for the paper's example costs.
func RunCacheSweep(blockSize, blocks int, sizes []int) ([]CacheRow, float64, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 64, 256, 1024}
	}
	if blocks <= 0 {
		blocks = 2000
	}
	clk := vclock.New(vclock.DefaultModel())
	svc, _, err := newService(blockSize, 16, blocks+256, clk, core.NewMemNVRAM())
	if err != nil {
		return nil, 0, err
	}
	defer svc.Close()
	if _, err := svc.CreateLog("/hot", 0, ""); err != nil {
		return nil, 0, err
	}
	id, _ := svc.Resolve("/hot")
	var stamps []int64
	payload := make([]byte, blockSize/4)
	for svc.End() < blocks {
		ts, err := svc.Append(id, payload, core.AppendOptions{Timestamped: true})
		if err != nil {
			return nil, 0, err
		}
		stamps = append(stamps, ts)
	}

	var rows []CacheRow
	for _, size := range sizes {
		svc.SetCacheCapacity(size)
		svc.FlushCache()
		rng := rand.New(rand.NewSource(int64(size)))
		cur, err := svc.OpenCursor("/hot")
		if err != nil {
			return nil, 0, err
		}
		const reads = 800
		// Warm-up pass so the cache reflects steady state.
		for i := 0; i < reads/4; i++ {
			if err := seekRead(cur, stamps, rng); err != nil {
				return nil, 0, err
			}
		}
		svc.ResetCounters()
		clk.Reset()
		for i := 0; i < reads; i++ {
			if err := seekRead(cur, stamps, rng); err != nil {
				return nil, 0, err
			}
		}
		cs := svc.CacheStats()
		row := CacheRow{
			CacheBlocks: size,
			HitRatio:    cs.HitRatio(),
			AvgReadMs:   ms(clk.Elapsed()) / reads,
		}
		m := clk.Model()
		row.TheoryMs = analytic.Section4ReadCost(row.HitRatio,
			float64(m.CachedBlock.Microseconds())/1000,
			float64((m.DeviceSeek+m.CachedBlock).Microseconds())/1000)
		rows = append(rows, row)
	}
	return rows, analytic.Section4BreakEvenRatio(1, 30, 100), nil
}

// seekRead reads one entry with a recency-skewed index: mostly the newest
// tenth of the log, occasionally anywhere.
func seekRead(cur *core.Cursor, stamps []int64, rng *rand.Rand) error {
	n := len(stamps)
	var idx int
	if rng.Float64() < 0.85 {
		idx = n - 1 - rng.Intn(n/10+1)
	} else {
		idx = rng.Intn(n)
	}
	if err := cur.SeekTime(stamps[idx]); err != nil {
		return err
	}
	_, err := cur.Next()
	return err
}

// PrintCacheSweep renders the §4 cache rows.
func PrintCacheSweep(w io.Writer, rows []CacheRow, breakEven float64) {
	fprintf(w, "§4 cache economics: recency-skewed reads vs cache size (N=16)\n")
	fprintf(w, "%12s %10s %12s %12s\n", "cache(blks)", "hit-ratio", "avg-ms", "model-ms")
	for _, r := range rows {
		fprintf(w, "%12d %10.3f %12.2f %12.2f\n", r.CacheBlocks, r.HitRatio, r.AvgReadMs, r.TheoryMs)
	}
	fprintf(w, "§4 break-even: a RAM cache wins once its hit ratio reaches %.0f%%\n", 100*breakEven)
	fprintf(w, "of the disk cache's (paper's example costs: 1/30/100 ms)\n")
}
