package clio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"clio/internal/archive"
	"clio/internal/core"
	"clio/internal/shard"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// Directory layout for file-backed stores: one file per volume plus an
// NVRAM sidecar. The volume files enforce the append-only policy in
// software — "the append-only storage model is appropriate even if the
// backing storage medium happens to be rewriteable" (§6).
//
// A sharded store nests the same layout one level down: shard-K/vol-*.clio
// with a per-shard NVRAM sidecar, one subdirectory per shard. A store
// created with one shard keeps the flat layout, so pre-sharding store
// directories reopen unchanged.
const (
	volPrefix      = "vol-"
	volSuffix      = ".clio"
	nvramFile      = "nvram.clio"
	shardDirPrefix = "shard-"
	// Per shard directory, the reclamation subsystem keeps a cold/ archive
	// directory holding demoted volume images and a compact.clio sidecar
	// holding the compactor's committed state.
	coldDirName = "cold"
	compactFile = "compact.clio"
)

// Sentinel errors for the file-backed store helpers, matchable with
// errors.Is through any wrapping the helpers add.
var (
	// ErrStoreExists reports a create into a directory that already holds
	// a log store (flat or sharded).
	ErrStoreExists = errors.New("clio: directory already contains a log store")
	// ErrNoStore reports an open of a directory that holds no log store.
	ErrNoStore = errors.New("clio: no log store in directory")
)

// DirOptions configures a file-backed store.
type DirOptions struct {
	// Options embeds the service options. NVRAM and Allocate are set by the
	// helpers and must be left nil.
	Options
	// VolumeBlocks is the capacity of each volume file in blocks; defaults
	// to 1<<20 (1 GiB at the default block size, the capacity class of a
	// 12" optical platter side).
	VolumeBlocks int
	// SyncEvery makes every sealed block fsync.
	SyncEvery bool
	// Shards is the number of hash partitions for CreateStore (default 1,
	// which keeps the flat single-sequence layout). OpenStore detects the
	// count from the directory; setting Shards there asserts it.
	Shards int
	// ColdDir overrides where demoted volume images are archived. The
	// default keeps them beside the volumes they replace: <dir>/cold for a
	// flat store, <dir>/shard-K/cold per shard. A sharded store splits an
	// override the same way (ColdDir/shard-K), because each shard numbers
	// its volumes from zero and the images must not collide.
	ColdDir string
	// NoCold disables the cold tier entirely: CompactOnce returns
	// ErrNoColdTier and no reclamation state is created on disk.
	NoCold bool
}

func volPath(dir string, index uint32) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", volPrefix, index, volSuffix))
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, shardDirPrefix+strconv.Itoa(i))
}

func (o DirOptions) withDefaults() DirOptions {
	if o.VolumeBlocks <= 0 {
		o.VolumeBlocks = 1 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = wodev.DefaultBlockSize
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// dirAllocator mints successor volume files in dir.
func dirAllocator(dir string, o DirOptions) Allocator {
	return func(_ volume.SeqID, index uint32, _ uint64, blockSize int) (wodev.Device, error) {
		return wodev.OpenFile(volPath(dir, index), wodev.FileOptions{
			BlockSize: blockSize,
			Capacity:  o.VolumeBlocks,
			SyncEvery: o.SyncEvery,
		})
	}
}

// dirColdTier wires the reclamation subsystem for one shard directory:
// demoted volume images go to the cold archive directory, the compaction
// sidecar lives beside the NVRAM sidecar, and releasing a demoted volume
// deletes its local file — the act that actually reclaims the space.
func dirColdTier(dir string, o DirOptions) *core.ColdTier {
	if o.NoCold {
		return nil
	}
	cold := o.ColdDir
	if cold == "" {
		cold = filepath.Join(dir, coldDirName)
	}
	return &core.ColdTier{
		Backend: archive.NewDir(cold),
		State:   core.NewFileState(filepath.Join(dir, compactFile)),
		Release: func(index uint32) error {
			err := os.Remove(volPath(dir, index))
			if os.IsNotExist(err) {
				return nil
			}
			return err
		},
	}
}

// createDir initializes a new flat (single-sequence) file-backed log store
// in dir (created if needed, which must not already contain a store) and
// returns the running service. CreateStore is the public surface; this is
// its per-shard building block.
func createDir(dir string, o DirOptions) (*core.Service, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if names, err := listVolumes(dir); err != nil {
		return nil, err
	} else if len(names) > 0 {
		return nil, fmt.Errorf("%w: %s holds %d volumes", ErrStoreExists, dir, len(names))
	}
	if dirs, err := listShardDirs(dir); err != nil {
		return nil, err
	} else if len(dirs) > 0 {
		return nil, fmt.Errorf("%w: %s holds %d shard directories", ErrStoreExists, dir, len(dirs))
	}
	dev, err := wodev.OpenFile(volPath(dir, 0), wodev.FileOptions{
		BlockSize: o.BlockSize,
		Capacity:  o.VolumeBlocks,
		SyncEvery: o.SyncEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("clio: create volume in %s: %w", dir, err)
	}
	opt := o.Options
	opt.NVRAM = core.NewFileNVRAM(filepath.Join(dir, nvramFile))
	opt.Allocate = dirAllocator(dir, o)
	if opt.Cold == nil {
		opt.Cold = dirColdTier(dir, o)
	}
	s, err := core.New(dev, opt)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return s, nil
}

// openDir opens an existing flat file-backed log store in dir, recovering
// state as server initialization does (§2.3.1). OpenStore is the public
// surface; this is its per-shard building block.
func openDir(dir string, o DirOptions) (*core.Service, error) {
	o = o.withDefaults()
	devs, err := openVolumeFiles(dir, o)
	if err != nil {
		return nil, err
	}
	opt := o.Options
	opt.NVRAM = core.NewFileNVRAM(filepath.Join(dir, nvramFile))
	opt.Allocate = dirAllocator(dir, o)
	if opt.Cold == nil {
		opt.Cold = dirColdTier(dir, o)
	}
	s, err := core.Open(devs, opt)
	if err != nil {
		closeDevs(devs)
		return nil, err
	}
	return s, nil
}

// openVolumeFiles opens every volume file of one flat layout, in index
// order.
func openVolumeFiles(dir string, o DirOptions) ([]wodev.Device, error) {
	names, err := listVolumes(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: no volumes in %s", ErrNoStore, dir)
	}
	var devs []wodev.Device
	for _, name := range names {
		dev, err := wodev.OpenFile(filepath.Join(dir, name), wodev.FileOptions{
			BlockSize: o.BlockSize,
			Capacity:  o.VolumeBlocks,
			SyncEvery: o.SyncEvery,
		})
		if err != nil {
			closeDevs(devs)
			return nil, fmt.Errorf("clio: open volume %s: %w", filepath.Join(dir, name), err)
		}
		devs = append(devs, dev)
	}
	return devs, nil
}

func closeDevs(devs []wodev.Device) {
	for _, d := range devs {
		d.Close()
	}
}

// CreateStore initializes a new file-backed store in dir with
// o.Shards hash partitions and returns the running sharded store. One
// shard produces the flat single-sequence layout; more produce
// shard-K subdirectories, each a complete volume sequence with its own
// NVRAM sidecar.
func CreateStore(dir string, o DirOptions) (*Store, error) {
	o = o.withDefaults()
	if o.Shards == 1 {
		svc, err := createDir(dir, o)
		if err != nil {
			return nil, err
		}
		return shard.Single(svc), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if names, err := listVolumes(dir); err != nil {
		return nil, err
	} else if len(names) > 0 {
		return nil, fmt.Errorf("%w: %s holds %d volumes", ErrStoreExists, dir, len(names))
	}
	if dirs, err := listShardDirs(dir); err != nil {
		return nil, err
	} else if len(dirs) > 0 {
		return nil, fmt.Errorf("%w: %s holds %d shard directories", ErrStoreExists, dir, len(dirs))
	}
	svcs := make([]*core.Service, o.Shards)
	fail := func(err error) (*Store, error) {
		for _, s := range svcs {
			if s != nil {
				s.Close()
			}
		}
		return nil, err
	}
	for i := range svcs {
		sub := o
		sub.Shards = 1
		if sub.ColdDir != "" {
			sub.ColdDir = shardDir(sub.ColdDir, i)
		}
		svc, err := createDir(shardDir(dir, i), sub)
		if err != nil {
			return fail(fmt.Errorf("clio: create shard %d: %w", i, err))
		}
		svcs[i] = svc
	}
	return shard.New(svcs)
}

// OpenStore opens an existing file-backed store in dir, detecting the
// layout: shard-K subdirectories open as a sharded store (recovering all
// shards concurrently), a flat volume directory opens as one shard. If
// o.Shards is set, it must match the detected count.
func OpenStore(dir string, o DirOptions) (*Store, error) {
	detect := o.Shards // 0 (or 1 after defaults) asserts nothing for flat
	o = o.withDefaults()
	dirs, err := listShardDirs(dir)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		if detect > 1 {
			if names, err := listVolumes(dir); err != nil {
				return nil, err
			} else if len(names) == 0 {
				return nil, fmt.Errorf("%w: no volumes or shard directories in %s", ErrNoStore, dir)
			}
			return nil, fmt.Errorf("clio: %s is a flat (1-shard) store, not %d shards", dir, detect)
		}
		svc, err := openDir(dir, o)
		if err != nil {
			return nil, err
		}
		return shard.Single(svc), nil
	}
	if detect > 1 && detect != len(dirs) {
		return nil, fmt.Errorf("clio: %s holds %d shards, not %d", dir, len(dirs), detect)
	}
	devs := make([][]wodev.Device, len(dirs))
	opts := make([]core.Options, len(dirs))
	fail := func(err error) (*Store, error) {
		for _, ds := range devs {
			closeDevs(ds)
		}
		return nil, err
	}
	for i := range dirs {
		sd := shardDir(dir, i)
		ds, err := openVolumeFiles(sd, o)
		if err != nil {
			return fail(fmt.Errorf("clio: shard %d: %w", i, err))
		}
		devs[i] = ds
		sub := o
		if sub.ColdDir != "" {
			sub.ColdDir = shardDir(sub.ColdDir, i)
		}
		opt := o.Options
		opt.NVRAM = core.NewFileNVRAM(filepath.Join(sd, nvramFile))
		opt.Allocate = dirAllocator(sd, o)
		if opt.Cold == nil {
			opt.Cold = dirColdTier(sd, sub)
		}
		opts[i] = opt
	}
	st, err := shard.Open(devs, opts)
	if err != nil {
		// shard.Open closes the devices of shards it opened; the rest are
		// closed via their wodev handles here. Closing twice is safe for
		// file devices, but avoid it: shard.Open owns them all on entry.
		return nil, err
	}
	return st, nil
}

func listVolumes(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, volPrefix) && strings.HasSuffix(n, volSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}

// listShardDirs returns the shard subdirectories of dir and checks they
// number contiguously from 0 — a gap means a damaged or foreign layout.
func listShardDirs(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	idx := make(map[int]string)
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() || !strings.HasPrefix(n, shardDirPrefix) {
			continue
		}
		k, err := strconv.Atoi(strings.TrimPrefix(n, shardDirPrefix))
		if err != nil || k < 0 {
			continue
		}
		idx[k] = n
	}
	out := make([]string, 0, len(idx))
	for i := 0; i < len(idx); i++ {
		n, ok := idx[i]
		if !ok {
			return nil, fmt.Errorf("clio: %s shard directories are not contiguous (missing shard-%d of %d)",
				dir, i, len(idx))
		}
		out = append(out, n)
	}
	return out, nil
}

// RawStore is the unmounted layout of a file-backed store: the per-shard
// device and NVRAM sidecar handles, without a service recovered over them.
// The replication layer consumes this shape — a follower holds raw devices
// its leader writes through it, and mounts (recovers) a service over them
// only if promoted.
type RawStore struct {
	Devices [][]wodev.Device
	NVRAMs  []NVRAM
	// Opts is the per-shard service options derived from the DirOptions
	// (block size, checkpoint interval, ...). NVRAM and Allocate are left
	// nil: the replication node installs its own per-shard NVRAM, and a
	// replicated store does not mint volumes outside the leader's ordering.
	Opts Options

	mu   sync.Mutex
	dirs []string // per-shard directory, for Reset
	o    DirOptions
}

// OpenRaw opens (create=false) or lays out fresh (create=true) the devices
// and NVRAM sidecars of a file-backed store without mounting it. A fresh
// layout holds one empty volume file per shard: on a replication leader the
// node formats it at start, on a follower the leader's stream fills it,
// header block included.
func OpenRaw(dir string, o DirOptions, create bool) (*RawStore, error) {
	o = o.withDefaults()
	r := &RawStore{o: o}
	fail := func(err error) (*RawStore, error) {
		r.Close()
		return nil, err
	}
	if create {
		for i := 0; i < o.Shards; i++ {
			sd := dir
			if o.Shards > 1 {
				sd = shardDir(dir, i)
			}
			if err := os.MkdirAll(sd, 0o755); err != nil {
				return fail(err)
			}
			if names, err := listVolumes(sd); err != nil {
				return fail(err)
			} else if len(names) > 0 {
				return fail(fmt.Errorf("%w: %s holds %d volumes", ErrStoreExists, sd, len(names)))
			}
			dev, err := wodev.OpenFile(volPath(sd, 0), wodev.FileOptions{
				BlockSize: o.BlockSize, Capacity: o.VolumeBlocks, SyncEvery: o.SyncEvery,
			})
			if err != nil {
				return fail(err)
			}
			r.Devices = append(r.Devices, []wodev.Device{dev})
			r.NVRAMs = append(r.NVRAMs, core.NewFileNVRAM(filepath.Join(sd, nvramFile)))
			r.dirs = append(r.dirs, sd)
		}
	} else {
		dirs, err := listShardDirs(dir)
		if err != nil {
			return fail(err)
		}
		var shardDirs []string
		if len(dirs) == 0 {
			shardDirs = []string{dir} // flat single-shard layout
		} else {
			for i := range dirs {
				shardDirs = append(shardDirs, shardDir(dir, i))
			}
		}
		if o.Shards > 1 && o.Shards != len(shardDirs) {
			return fail(fmt.Errorf("clio: %s holds %d shards, not %d", dir, len(shardDirs), o.Shards))
		}
		for _, sd := range shardDirs {
			devs, err := openVolumeFiles(sd, o)
			if err != nil {
				return fail(err)
			}
			r.Devices = append(r.Devices, devs)
			r.NVRAMs = append(r.NVRAMs, core.NewFileNVRAM(filepath.Join(sd, nvramFile)))
			r.dirs = append(r.dirs, sd)
		}
	}
	r.Opts = o.Options
	r.Opts.NVRAM = nil
	r.Opts.Allocate = nil
	return r, nil
}

// Reset discards one device's on-disk state and returns a blank replacement
// — the replication node's hook for a diverged replica that must re-sync
// from block zero. The old handle is closed and its file recreated.
func (r *RawStore) Reset(shard, dev int) (wodev.Device, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if shard < 0 || shard >= len(r.Devices) || dev < 0 || dev >= len(r.Devices[shard]) {
		return nil, fmt.Errorf("clio: reset: no device (shard %d, dev %d)", shard, dev)
	}
	r.Devices[shard][dev].Close()
	path := volPath(r.dirs[shard], uint32(dev))
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	fresh, err := wodev.OpenFile(path, wodev.FileOptions{
		BlockSize: r.o.BlockSize, Capacity: r.o.VolumeBlocks, SyncEvery: r.o.SyncEvery,
	})
	if err != nil {
		return nil, err
	}
	r.Devices[shard][dev] = fresh
	return fresh, nil
}

// Close releases the device handles. Harmless after the devices have been
// handed to a replication node that was itself shut down.
func (r *RawStore) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ds := range r.Devices {
		closeDevs(ds)
	}
}
