package core

import (
	"time"

	"clio/internal/cache"
	"clio/internal/entrymap"
	"clio/internal/obs"
	"clio/internal/wodev"
)

// coreMetrics holds the service's registered latency instruments. The
// counter families are CounterFuncs reading the existing Stats structs at
// scrape time, so only histograms (and the trace spans) touch the hot path —
// and those sites are guarded by one atomic pointer load.
type coreMetrics struct {
	appendLat *obs.Histogram // whole client append, wall clock
	forceLat  *obs.Histogram // the durability step of a force, wall clock
	readLat   *obs.Histogram // cursor step / ReadAt, wall clock
	locateLat *obs.Histogram // one locator search, wall clock
	sealLat   *obs.Histogram // sealTailLocked incl. damaged-block slides
	nvramLat  *obs.Histogram // one NVRAM tail store
	appendV   *obs.Histogram // whole client append, vclock-simulated time

	batchEntries *obs.Histogram // entries per committed force batch (count, not time)
}

// met returns the registered metrics, or nil when RegisterMetrics was never
// called. Hot-path sites branch on the nil once and then record through
// nil-safe obs receivers, so an un-instrumented service pays one atomic load
// per operation.
func (s *Service) met() *coreMetrics { return s.obsM.Load() }

// vElapsed reads the virtual clock only when metrics are registered —
// Elapsed takes the clock's mutex, and the un-instrumented path must not.
func (s *Service) vElapsed(m *coreMetrics) time.Duration {
	if m == nil {
		return 0
	}
	return s.opt.Clock.Elapsed()
}

// RegisterMetrics registers every service counter — core, cache, device,
// entrymap locator, fault points and vclock charge categories — plus the
// append/force/read/locate latency histograms in reg, and enables histogram
// recording. Call once per registry, after Open.
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	s.RegisterMetricsLabeled(reg)
}

// RegisterMetricsLabeled is RegisterMetrics with a fixed label set stamped
// onto every registered series — how a sharded store gives each of its
// constituent services a distinct `shard` label within one registry.
//
// The counter callbacks take the same snapshots the public Stats accessors
// take, so a scrape observes each subsystem atomically (never a torn
// struct); distinct subsystems are sampled at slightly different instants,
// which is inherent to any scrape of a live system. Registration itself
// must not perturb the modeled workload: callbacks only read, and nothing
// here ever charges the vclock.
func (s *Service) RegisterMetricsLabeled(reg *obs.Registry, labels ...obs.Label) {
	m := &coreMetrics{
		appendLat: reg.Histogram("clio_core_append_seconds",
			"Wall-clock latency of client appends, queue wait included.", nil, labels...),
		forceLat: reg.Histogram("clio_core_force_seconds",
			"Wall-clock latency of the durability step (NVRAM store or padded seal) of forced writes.", nil, labels...),
		readLat: reg.Histogram("clio_core_read_seconds",
			"Wall-clock latency of cursor steps and positioned reads.", nil, labels...),
		locateLat: reg.Histogram("clio_core_locate_seconds",
			"Wall-clock latency of entrymap locator searches.", nil, labels...),
		sealLat: reg.Histogram("clio_core_seal_seconds",
			"Wall-clock latency of sealing a tail block to the device, damaged-block slides included.", nil, labels...),
		nvramLat: reg.Histogram("clio_core_nvram_store_seconds",
			"Wall-clock latency of staging the tail block to NVRAM.", nil, labels...),
		appendV: reg.Histogram("clio_core_append_vtime_seconds",
			"Vclock-simulated (paper cost model) time of client appends.", nil, labels...),
		// Batch sizes ride the histogram machinery as raw counts: one
		// "nanosecond" per entry, power-of-two buckets.
		batchEntries: reg.Histogram("clio_core_force_batch_entries",
			"Entries per committed force batch (value is a count, not a duration).",
			[]time.Duration{1, 2, 4, 8, 16, 32, 64, 128, 256}, labels...),
	}

	counters := []struct {
		name, help string
		get        func(Stats) int64
	}{
		{"clio_core_entries_appended_total", "Client entries appended.", func(st Stats) int64 { return st.EntriesAppended }},
		{"clio_core_forced_writes_total", "Appends that demanded synchronous durability.", func(st Stats) int64 { return st.ForcedWrites }},
		{"clio_core_blocks_sealed_total", "Tail blocks sealed to the write-once device.", func(st Stats) int64 { return st.BlocksSealed }},
		{"clio_core_dead_blocks_total", "Blocks invalidated due to damage (§2.3.2).", func(st Stats) int64 { return st.DeadBlocks }},
		{"clio_core_client_bytes_total", "Client data bytes appended.", func(st Stats) int64 { return st.ClientBytes }},
		{"clio_core_header_bytes_total", "Entry header and size-slot bytes.", func(st Stats) int64 { return st.HeaderBytes }},
		{"clio_core_entrymap_bytes_total", "Entrymap entry bytes including headers.", func(st Stats) int64 { return st.EntrymapBytes }},
		{"clio_core_catalog_bytes_total", "Catalog entry bytes including headers.", func(st Stats) int64 { return st.CatalogBytes }},
		{"clio_core_padding_bytes_total", "Block bytes wasted by force-sealing.", func(st Stats) int64 { return st.PaddingBytes }},
		{"clio_core_footer_bytes_total", "Per-block footer bytes.", func(st Stats) int64 { return st.FooterBytes }},
		{"clio_core_group_commits_total", "Batch commits serving two or more forced appends.", func(st Stats) int64 { return st.GroupCommits }},
		{"clio_core_batched_forces_total", "Forced appends that shared their commit.", func(st Stats) int64 { return st.BatchedForces }},
		{"clio_core_checkpoints_total", "Recovery checkpoints emitted.", func(st Stats) int64 { return st.Checkpoints }},
		{"clio_core_checkpoint_bytes_total", "Checkpoint payload bytes appended.", func(st Stats) int64 { return st.CheckpointBytes }},
		{"clio_core_adaptive_waits_total", "Force batches that held the adaptive commit window open.", func(st Stats) int64 { return st.AdaptiveWaits }},
		{"clio_core_pipelined_seals_total", "Seals completed through the pipelined device stage.", func(st Stats) int64 { return st.PipelinedSeals }},
		{"clio_compact_entries_relocated_total", "Live entries copied forward by the compactor.", func(st Stats) int64 { return st.EntriesRelocated }},
		{"clio_compact_bytes_relocated_total", "Data bytes of relocated entries.", func(st Stats) int64 { return st.BytesRelocated }},
		{"clio_cold_fetches_total", "Block reads served from the cold backend.", func(st Stats) int64 { return st.ColdFetches }},
	}
	for _, c := range counters {
		get := c.get
		reg.CounterFunc(c.name, c.help, func() int64 { return get(s.Stats()) }, labels...)
	}

	reg.GaugeFunc("clio_core_commit_window_nanoseconds", "Most recent commit-window duration the force leader waited.",
		func() int64 { return s.Stats().CommitWindowNanos }, labels...)
	reg.GaugeFunc("clio_core_inflight_seals", "Sealed blocks staged to NVRAM awaiting their device write.",
		func() int64 { return s.Stats().InflightSeals }, labels...)
	reg.GaugeFunc("clio_core_staged_bytes", "Bytes of sealed block images staged to NVRAM.",
		func() int64 { return s.Stats().StagedBytes }, labels...)
	reg.GaugeFunc("clio_compact_volumes_relocated", "Volumes whose live entries have been copied forward.",
		func() int64 { return s.Stats().VolumesRelocated }, labels...)
	reg.GaugeFunc("clio_compact_volumes_demoted", "Volumes archived to the cold tier and released locally.",
		func() int64 { return s.Stats().VolumesDemoted }, labels...)

	reg.CounterFunc("clio_cache_hits_total", "Block cache hits.",
		func() int64 { return s.CacheStats().Hits }, labels...)
	reg.CounterFunc("clio_cache_misses_total", "Block cache misses.",
		func() int64 { return s.CacheStats().Misses }, labels...)
	reg.CounterFunc("clio_cache_evictions_total", "Block cache evictions.",
		func() int64 { return s.CacheStats().Evictions }, labels...)
	reg.CounterFunc("clio_cache_inserts_total", "Block cache inserts.",
		func() int64 { return s.CacheStats().Inserts }, labels...)
	reg.GaugeFunc("clio_cache_blocks", "Blocks currently cached.",
		func() int64 { return int64(s.blockCache().Len()) }, labels...)
	reg.GaugeFunc("clio_cache_capacity_blocks", "Block cache capacity (0 = unbounded).",
		func() int64 { return int64(s.blockCache().Capacity()) }, labels...)

	reg.CounterFunc("clio_wodev_reads_total", "Device blocks read, summed over mounted volumes.",
		func() int64 { return s.DeviceStats().Reads }, labels...)
	reg.CounterFunc("clio_wodev_appends_total", "Device blocks appended, summed over mounted volumes.",
		func() int64 { return s.DeviceStats().Appends }, labels...)
	reg.CounterFunc("clio_wodev_invalidations_total", "Device blocks invalidated, summed over mounted volumes.",
		func() int64 { return s.DeviceStats().Invalidations }, labels...)
	reg.CounterFunc("clio_wodev_seeks_total", "Non-sequential device reads (seeks), summed over mounted volumes.",
		func() int64 { return s.DeviceStats().Seeks }, labels...)
	reg.CounterFunc("clio_wodev_probes_total", "Reads of unwritten blocks (end-finding probes), summed over mounted volumes.",
		func() int64 { return s.DeviceStats().Probes }, labels...)

	reg.GaugeFunc("clio_recovery_blocks_replayed", "Blocks replayed after the checkpoint at the last recovery (0 when recovery reconstructed fully).",
		func() int64 { return int64(s.LastRecovery().BlocksReplayed) }, labels...)
	reg.GaugeFunc("clio_recovery_checkpoint_used", "Whether the last recovery restored from an in-log checkpoint (1) or reconstructed fully (0).",
		func() int64 {
			if s.LastRecovery().CheckpointUsed {
				return 1
			}
			return 0
		}, labels...)
	reg.GaugeFunc("clio_recovery_entrymap_blocks_scanned", "Raw blocks examined for entrymap state at the last recovery.",
		func() int64 { return int64(s.LastRecovery().EntrymapBlocksScanned) }, labels...)

	reg.CounterFunc("clio_entrymap_entries_examined_total", "Entrymap log entries decoded and inspected by locator searches.",
		func() int64 { return int64(s.LocateStats().EntriesExamined) }, labels...)
	reg.CounterFunc("clio_entrymap_pending_examined_total", "In-memory accumulator bitmap inspections by locator searches.",
		func() int64 { return int64(s.LocateStats().PendingExamined) }, labels...)
	reg.CounterFunc("clio_entrymap_raw_scans_total", "Data blocks scanned directly because entrymap information was missing.",
		func() int64 { return int64(s.LocateStats().RawScans) }, labels...)
	reg.CounterFunc("clio_entrymap_timestamp_reads_total", "Block footers read during time searches.",
		func() int64 { return int64(s.LocateStats().TimestampReads) }, labels...)

	// Points() is nil-safe, so the fault families are always present in a
	// scrape (empty without an injection registry).
	fr := s.opt.Faults
	reg.CollectorFunc("clio_fault_point_hits_total",
		"Times each named fault-injection point was reached.",
		func(add func(ls []obs.Label, value int64)) {
			for _, p := range fr.Points() {
				add(append([]obs.Label{obs.L("point", p.Name)}, labels...), p.Hits)
			}
		})
	reg.CollectorFunc("clio_fault_point_fired_total",
		"Times each named fault-injection point actually injected a fault.",
		func(add func(ls []obs.Label, value int64)) {
			for _, p := range fr.Points() {
				add(append([]obs.Label{obs.L("point", p.Name)}, labels...), p.Fired)
			}
		})

	if clk := s.opt.Clock; clk != nil {
		reg.GaugeFunc("clio_vclock_elapsed_nanoseconds", "Total virtual time accumulated by the cost model.",
			func() int64 { return int64(clk.Elapsed()) }, labels...)
		reg.CollectorFunc("clio_vclock_charge_nanoseconds_total",
			"Virtual time charged per cost-model category.",
			func(add func(ls []obs.Label, value int64)) {
				for _, cat := range clk.Categories() {
					d, _ := clk.CategoryTotal(cat)
					add(append([]obs.Label{obs.L("category", cat)}, labels...), int64(d))
				}
			})
		reg.CollectorFunc("clio_vclock_charges_total",
			"Cost-model charge events per category.",
			func(add func(ls []obs.Label, value int64)) {
				for _, cat := range clk.Categories() {
					_, n := clk.CategoryTotal(cat)
					add(append([]obs.Label{obs.L("category", cat)}, labels...), n)
				}
			})
	}

	s.obsM.Store(m)
}

// VolumeStatus is one mounted volume's row in the status report.
type VolumeStatus struct {
	Index        uint32 `json:"index"`
	StartOffset  uint64 `json:"start_offset"`
	DataCapacity int    `json:"data_capacity"`
	Active       bool   `json:"active"`
}

// ServiceStatus is the core section of /statusz: configuration, tail state,
// volumes and the subsystem counter snapshots.
type ServiceStatus struct {
	BlockSize     int                  `json:"block_size"`
	Degree        int                  `json:"degree"`
	NVRAM         bool                 `json:"nvram"`
	Pipelined     bool                 `json:"pipelined"`
	CommitWindow  int64                `json:"commit_window_ns"`
	BatchSizes    [9]int64             `json:"force_batch_sizes"`
	End           int                  `json:"end"`
	SealedEnd     int                  `json:"sealed_end"`
	TailGlobal    int                  `json:"tail_global"`
	TailDirty     bool                 `json:"tail_dirty"`
	PendingForces int                  `json:"pending_forces"`
	Volumes       []VolumeStatus       `json:"volumes"`
	Stats         Stats                `json:"stats"`
	Cache         cache.Stats          `json:"cache"`
	CacheBlocks   int                  `json:"cache_blocks"`
	Device        wodev.Stats          `json:"device"`
	Locate        entrymap.LocateStats `json:"locate"`
	Recovery      RecoveryReport       `json:"recovery"`
}

// Status snapshots the service for /statusz. Sub-snapshots are gathered
// through the same accessors a scrape uses, one lock at a time — never
// nested — to respect the service's lock ordering.
func (s *Service) Status() ServiceStatus {
	st := ServiceStatus{
		BlockSize:    s.opt.BlockSize,
		Degree:       s.opt.Degree,
		NVRAM:        s.opt.NVRAM != nil,
		Pipelined:    s.staging,
		CommitWindow: int64(s.opt.CommitWindow),
		BatchSizes:   s.BatchSizeHistogram(),
		Stats:        s.Stats(),
		Cache:        s.CacheStats(),
		Device:       s.DeviceStats(),
		Locate:       s.LocateStats(),
	}
	st.CacheBlocks = s.blockCache().Len()
	st.Recovery = s.LastRecovery()
	s.forceQMu.Lock()
	st.PendingForces = len(s.forceQ)
	s.forceQMu.Unlock()
	s.mu.Lock()
	st.SealedEnd = s.sealedEnd
	st.TailGlobal = s.tailGlobal
	st.TailDirty = s.tailDirty
	s.mu.Unlock()
	st.End = s.End()
	active := s.set.Active()
	for _, v := range s.set.Volumes() {
		st.Volumes = append(st.Volumes, VolumeStatus{
			Index:        v.Hdr.Index,
			StartOffset:  v.Hdr.StartOffset,
			DataCapacity: v.DataCapacity(),
			Active:       v == active,
		})
	}
	return st
}
