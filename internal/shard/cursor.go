package shard

import (
	"context"
	"errors"
	"fmt"
	"io"

	"clio/internal/core"
	"clio/internal/logapi"
)

// ErrRootSeekPos reports a SeekPos on the merged root cursor, whose
// position spans every shard and has no single (block, rec) coordinate.
var ErrRootSeekPos = errors.New("shard: SeekPos is not defined on the merged root cursor")

// cursor is a routed cursor: every log file but the root lives on exactly
// one shard, so its cursor is the shard's core cursor with the shard
// ordinal stamped onto returned entries.
type cursor struct {
	cur   *core.Cursor
	shard int
}

var _ logapi.Cursor = (*cursor)(nil)

func (c *cursor) Next(ctx context.Context) (*logapi.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := c.cur.Next()
	if err != nil {
		return nil, err
	}
	e.Shard = c.shard
	return e, nil
}

func (c *cursor) Prev(ctx context.Context) (*logapi.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, err := c.cur.Prev()
	if err != nil {
		return nil, err
	}
	e.Shard = c.shard
	return e, nil
}

func (c *cursor) SeekStart(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.cur.SeekStart()
	return nil
}

func (c *cursor) SeekEnd(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.cur.SeekEnd()
	return nil
}

func (c *cursor) SeekTime(ctx context.Context, ts int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.cur.SeekTime(ts)
}

func (c *cursor) SeekPos(ctx context.Context, block, rec int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.cur.SeekPos(block, rec)
}

func (c *cursor) Close() error { return nil }

// sub is one shard's leg of the merged root cursor. It holds at most one
// peeked-but-unconsumed entry; dir records which direction the underlying
// cursor was stepped to fetch it, so a direction switch can un-step the
// cursor (the gap-position model makes one opposite step return exactly
// the peeked entry).
type sub struct {
	cur   *core.Cursor
	shard int
	pend  *logapi.Entry
	dir   int // +1: pend fetched by Next; -1: by Prev; 0: no pend
}

// peekNext returns the sub's next entry without consuming it, or nil at
// EOF.
func (s *sub) peekNext() (*logapi.Entry, error) {
	if s.pend != nil && s.dir == +1 {
		return s.pend, nil
	}
	if s.pend != nil {
		// pend was fetched by Prev, so the gap sits before it; step
		// forward across it to undo the peek.
		if _, err := s.cur.Next(); err != nil {
			return nil, err
		}
		s.pend, s.dir = nil, 0
	}
	e, err := s.cur.Next()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	e.Shard = s.shard
	s.pend, s.dir = e, +1
	return e, nil
}

// peekPrev mirrors peekNext toward the start.
func (s *sub) peekPrev() (*logapi.Entry, error) {
	if s.pend != nil && s.dir == -1 {
		return s.pend, nil
	}
	if s.pend != nil {
		if _, err := s.cur.Prev(); err != nil {
			return nil, err
		}
		s.pend, s.dir = nil, 0
	}
	e, err := s.cur.Prev()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	e.Shard = s.shard
	s.pend, s.dir = e, -1
	return e, nil
}

func (s *sub) consume() { s.pend, s.dir = nil, 0 }

func (s *sub) reset() { s.pend, s.dir = nil, 0 }

// rootCursor merges every shard's volume sequence log into one stream
// ordered by (timestamp, shard): a K-way merge over peeked heads. Shard
// timestamps advance independently, so the merge order is the store-wide
// time order the root log promises (§2.1's "sequence of entries ...
// subsequent to, or prior to, any previous point in time"), with the shard
// ordinal breaking ties deterministically.
type rootCursor struct {
	subs []*sub
}

var _ logapi.Cursor = (*rootCursor)(nil)

func (st *Store) openRootCursor() (*rootCursor, error) {
	rc := &rootCursor{subs: make([]*sub, len(st.svcs))}
	for i, svc := range st.svcs {
		cur, err := svc.OpenCursor("/")
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		rc.subs[i] = &sub{cur: cur, shard: i}
	}
	return rc, nil
}

func (rc *rootCursor) Next(ctx context.Context) (*logapi.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var best *sub
	var bestE *logapi.Entry
	for _, s := range rc.subs {
		e, err := s.peekNext()
		if err != nil {
			return nil, err
		}
		if e == nil {
			continue
		}
		if bestE == nil || e.Timestamp < bestE.Timestamp ||
			(e.Timestamp == bestE.Timestamp && s.shard < best.shard) {
			best, bestE = s, e
		}
	}
	if bestE == nil {
		return nil, io.EOF
	}
	best.consume()
	return bestE, nil
}

func (rc *rootCursor) Prev(ctx context.Context) (*logapi.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var best *sub
	var bestE *logapi.Entry
	for _, s := range rc.subs {
		e, err := s.peekPrev()
		if err != nil {
			return nil, err
		}
		if e == nil {
			continue
		}
		if bestE == nil || e.Timestamp > bestE.Timestamp ||
			(e.Timestamp == bestE.Timestamp && s.shard > best.shard) {
			best, bestE = s, e
		}
	}
	if bestE == nil {
		return nil, io.EOF
	}
	best.consume()
	return bestE, nil
}

func (rc *rootCursor) SeekStart(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, s := range rc.subs {
		s.reset()
		s.cur.SeekStart()
	}
	return nil
}

func (rc *rootCursor) SeekEnd(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, s := range rc.subs {
		s.reset()
		s.cur.SeekEnd()
	}
	return nil
}

func (rc *rootCursor) SeekTime(ctx context.Context, ts int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for i, s := range rc.subs {
		s.reset()
		if err := s.cur.SeekTime(ts); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

func (rc *rootCursor) SeekPos(ctx context.Context, block, rec int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return ErrRootSeekPos
}

func (rc *rootCursor) Close() error { return nil }
