package cluster

import (
	"clio/internal/obs"
	"clio/internal/wire"
)

// PeerStatus is the leader's view of one replica for status reports.
type PeerStatus struct {
	Addr string `json:"addr"`
	// Alive means the replication stream is established and caught up past
	// its base (the pre-gate's liveness input).
	Alive bool `json:"alive"`
	// Acked is the replica's cumulative ack position; Lag is the stream
	// head minus it.
	Acked uint64 `json:"acked"`
	Lag   uint64 `json:"lag"`
	// CatchupBlocks counts blocks shipped by suffix catch-up rather than
	// live streaming; Resets counts diverged-device resets ordered.
	CatchupBlocks int64 `json:"catchup_blocks"`
	Resets        int64 `json:"resets"`
}

// NodeStatus is the cluster section of a node's status report.
type NodeStatus struct {
	NodeID     string `json:"node_id"`
	Role       string `json:"role"`
	Term       uint64 `json:"term"`
	Epoch      uint64 `json:"epoch"`
	LeaderAddr string `json:"leader_addr,omitempty"`
	Quorum     int    `json:"quorum"`
	// StreamPos and Committed are leader-side: the replication stream head
	// and the quorum commit point. Applied is follower-side: the highest
	// stream position durably applied locally.
	StreamPos uint64 `json:"stream_pos"`
	Committed uint64 `json:"committed"`
	Applied   uint64 `json:"applied"`
	// ShardEnds is each shard's sealed data-block end: on a leader from the
	// live store, on a follower from replicated device extents. Comparing
	// them across nodes is the per-shard replication lag.
	ShardEnds []int        `json:"shard_ends"`
	Peers     []PeerStatus `json:"peers,omitempty"`

	Promotions     int64 `json:"promotions"`
	Demotions      int64 `json:"demotions"`
	QuorumTimeouts int64 `json:"quorum_timeouts"`
	QuorumRefusals int64 `json:"quorum_refusals"`
}

// Status snapshots the node's replication state.
func (n *Node) Status() NodeStatus {
	n.mu.Lock()
	role, term, epoch, leader := n.role, n.term, n.epoch, n.leaderAddr
	store, peers, fol, devs := n.store, n.peers, n.fol, n.devs
	n.mu.Unlock()
	st := NodeStatus{
		NodeID:         n.cfg.NodeID,
		Role:           roleName(role),
		Term:           term,
		Epoch:          epoch,
		LeaderAddr:     leader,
		Quorum:         n.cfg.Quorum,
		StreamPos:      n.stream.Pos(),
		Promotions:     n.promotions.Load(),
		Demotions:      n.demotions.Load(),
		QuorumTimeouts: n.quorumTimeouts.Load(),
		QuorumRefusals: n.quorumRefusals.Load(),
	}
	n.commitMu.Lock()
	st.Committed = n.committed
	n.commitMu.Unlock()
	if fol != nil {
		st.Applied = fol.applied.Load()
	}
	if store != nil {
		st.ShardEnds = store.Ends()
	} else {
		// Follower: sealed end per shard from the replicated device extents
		// (Written includes the header block), plus the staged tail block
		// when a replicated NVRAM image is present — the leader's End()
		// counts its staged tail the same way, so the two are comparable.
		st.ShardEnds = make([]int, len(devs))
		for i, shardDevs := range devs {
			total := 0
			for _, d := range shardDevs {
				if w := d.Written(); w > 1 {
					total += w - 1
				}
			}
			if i < len(n.cfg.NVRAMs) {
				if g, img, err := n.cfg.NVRAMs[i].Load(); err == nil && len(img) > 0 && g+1 > total {
					total = g + 1
				}
			}
			st.ShardEnds[i] = total
		}
	}
	for _, p := range peers {
		ps := PeerStatus{
			Addr:          p.addr,
			Alive:         p.alive.Load(),
			Acked:         p.acked.Load(),
			CatchupBlocks: p.catchupBlocks.Load(),
			Resets:        p.resets.Load(),
		}
		if st.StreamPos > ps.Acked {
			ps.Lag = st.StreamPos - ps.Acked
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}

// statusPayload renders the wire answer to OpReplStatus.
func (n *Node) statusPayload() []byte {
	s := n.Status()
	resp := &wire.ReplStatusResp{
		Term:       s.Term,
		Epoch:      s.Epoch,
		LeaderAddr: s.LeaderAddr,
		Applied:    s.Applied,
		Pos:        s.StreamPos,
		Committed:  s.Committed,
	}
	if s.Role == "leader" {
		resp.Role = wire.RoleLeader
	}
	n.mu.Lock()
	devs := n.devs
	n.mu.Unlock()
	for si, shardDevs := range devs {
		for di, dev := range shardDevs {
			ds := wire.ReplDevState{Shard: uint32(si), Dev: uint32(di), Written: uint64(dev.Written())}
			if ds.Written > 0 {
				ds.LastCRC = blockCRC(dev, int(ds.Written)-1)
			}
			resp.Devs = append(resp.Devs, ds)
		}
	}
	return resp.Encode(nil)
}

func roleName(role int) string {
	if role == wire.RoleLeader {
		return "leader"
	}
	return "follower"
}

// RegisterMetrics registers the node's replication instruments.
func (n *Node) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("clio_cluster_role",
		"Replication role: 1 when leader, 0 when follower.", func() int64 {
			if n.isLeader() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("clio_cluster_term",
		"Current replication term.", func() int64 { return int64(n.Term()) })
	reg.GaugeFunc("clio_cluster_stream_pos",
		"Replication stream head position (leader).", func() int64 { return int64(n.stream.Pos()) })
	reg.GaugeFunc("clio_cluster_committed",
		"Quorum commit position (leader).", func() int64 {
			n.commitMu.Lock()
			defer n.commitMu.Unlock()
			return int64(n.committed)
		})
	reg.GaugeFunc("clio_cluster_applied",
		"Highest stream position applied locally (follower).", func() int64 { return int64(n.Applied()) })
	reg.CounterFunc("clio_cluster_promotions_total",
		"Follower-to-leader promotions performed by this node.", func() int64 { return n.promotions.Load() })
	reg.CounterFunc("clio_cluster_demotions_total",
		"Leader step-downs performed by this node.", func() int64 { return n.demotions.Load() })
	reg.CounterFunc("clio_cluster_quorum_timeouts_total",
		"Mutations failed because quorum was not reached in time.", func() int64 { return n.quorumTimeouts.Load() })
	reg.CounterFunc("clio_cluster_quorum_refusals_total",
		"Mutations refused up front for lack of live replicas.", func() int64 { return n.quorumRefusals.Load() })
	reg.CounterFunc("clio_cluster_frames_total",
		"Replication stream frames emitted.", func() int64 { return n.framesEmitted.Load() })
	for _, addr := range n.cfg.Peers {
		addr := addr
		find := func() *peer {
			n.mu.Lock()
			defer n.mu.Unlock()
			for _, p := range n.peers {
				if p.addr == addr {
					return p
				}
			}
			return nil
		}
		reg.GaugeFunc("clio_cluster_peer_lag",
			"Stream positions the replica trails the leader by.", func() int64 {
				if p := find(); p != nil {
					pos := n.stream.Pos()
					if a := p.acked.Load(); pos > a {
						return int64(pos - a)
					}
				}
				return 0
			}, obs.L("peer", addr))
		reg.GaugeFunc("clio_cluster_peer_alive",
			"1 when the replica's stream is established and caught up.", func() int64 {
				if p := find(); p != nil && p.alive.Load() {
					return 1
				}
				return 0
			}, obs.L("peer", addr))
	}
}
