package wodev

import (
	"testing"

	"clio/internal/obs"
)

func TestInstrumentedRecordsPerOpLatency(t *testing.T) {
	dev := NewMem(MemOptions{BlockSize: 64, Capacity: 16})
	reg := obs.NewRegistry()
	ins := NewInstrumented(dev, reg)

	data := make([]byte, 64)
	idx, err := ins.AppendBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := ins.ReadBlock(idx, buf); err != nil {
		t.Fatal(err)
	}
	if err := ins.ReadValidated(idx, buf, func([]byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := ins.ReadValidated(idx, buf, func([]byte) bool { return false }); err != ErrCorrupt {
		t.Errorf("invalid read = %v, want ErrCorrupt", err)
	}
	if err := ins.Invalidate(idx); err != nil {
		t.Fatal(err)
	}

	if n := ins.AppendLatency.Count(); n != 1 {
		t.Errorf("append observations = %d, want 1", n)
	}
	if n := ins.ReadLatency.Count(); n != 3 {
		t.Errorf("read observations = %d, want 3", n)
	}
	if n := ins.InvalidateLatency.Count(); n != 1 {
		t.Errorf("invalidate observations = %d, want 1", n)
	}
	// The wrapped device's own counters still advance (Stats pass-through).
	if st := ins.Stats(); st.Appends != 1 {
		t.Errorf("wrapped stats = %+v", st)
	}
}

// TestInstrumentedZeroValue checks the documented no-registry mode: nil
// histograms record nothing and every operation still works.
func TestInstrumentedZeroValue(t *testing.T) {
	dev := NewMem(MemOptions{BlockSize: 64, Capacity: 16})
	ins := &Instrumented{Device: dev}
	idx, err := ins.AppendBlock(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := ins.ReadBlock(idx, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ins.ReadLatency.Count() != 0 || ins.AppendLatency.Count() != 0 {
		t.Error("nil histograms recorded")
	}
}
