package client

import (
	"context"
	"io"

	"clio/internal/logapi"
)

// The UIO adapters make a log file usable through the standard Go I/O
// interfaces, echoing the paper's point that "a uniform I/O interface ...
// supports access to this type of file" (§6): a log file reads like a
// regular (append-only) file and writes like one too.

// Reader streams a log file's entry payloads as a single byte stream,
// inserting sep (which may be empty) between entries. It implements
// io.Reader over any logapi.Cursor — remote or in-process; the construction
// context bounds every underlying call.
type Reader struct {
	ctx context.Context
	cur logapi.Cursor
	sep []byte
	buf []byte
	eof bool
}

// NewReader returns a Reader over cur with the given entry separator.
func NewReader(ctx context.Context, cur logapi.Cursor, sep []byte) *Reader {
	return &Reader{ctx: ctx, cur: cur, sep: sep}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		if r.eof {
			return 0, io.EOF
		}
		e, err := r.cur.Next(r.ctx)
		if err == io.EOF {
			r.eof = true
			continue
		}
		if err != nil {
			return 0, err
		}
		r.buf = append(r.buf, e.Data...)
		r.buf = append(r.buf, r.sep...)
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// Writer appends each Write call as one log entry. It implements io.Writer
// over a Client and log-file id; the construction context bounds every
// underlying call.
type Writer struct {
	ctx  context.Context
	c    *Client
	id   ID
	opts AppendOptions
}

// NewWriter returns a Writer appending to the given log file.
func NewWriter(ctx context.Context, c *Client, id ID, opts AppendOptions) *Writer {
	return &Writer{ctx: ctx, c: c, id: id, opts: opts}
}

// Write implements io.Writer: one call, one log entry. Degraded completion
// (the entry is durable but the service relocated past damaged blocks) is
// not an error here.
func (w *Writer) Write(p []byte) (int, error) {
	if _, err := w.c.Append(w.ctx, w.id, p, w.opts); err != nil && !IsDegraded(err) {
		return 0, err
	}
	return len(p), nil
}

// LocateUnique finds an entry by the client-generated unique identifier of
// §2.1, mirroring the service-side cursor helper: seek to the client's own
// timestamp minus the clock-skew bound, then scan forward until the match
// function accepts an entry or the skew window passes. It is the
// reconciliation read for an append that ended in *AmbiguousError.
func (cu *Cursor) LocateUnique(ctx context.Context, clientTS, maxSkew int64, match func(*Entry) bool) (*Entry, error) {
	if err := cu.SeekTime(ctx, clientTS-maxSkew); err != nil {
		return nil, err
	}
	for {
		e, err := cu.Next(ctx)
		if err != nil {
			return nil, err // io.EOF when the window is exhausted
		}
		if e.Timestamp > clientTS+maxSkew {
			return nil, io.EOF
		}
		if match(e) {
			return e, nil
		}
	}
}
