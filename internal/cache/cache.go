// Package cache implements the file server's main-memory block cache (the
// buffer pool the paper's log service shares with the conventional file
// server, §1 and §3.3).
//
// The cache maps (volume, block index) to immutable block images. Log-device
// blocks are written once and never change, so the cache never needs a dirty
// list or write-back: a block enters the cache either when it is read from
// the device or at the moment the writer seals it (write-through on append),
// and is evicted purely by LRU.
//
// The Table 1 experiments depend on the distinction between a cached block
// access (~0.6 ms to access and interpret) and a device read (~150 ms seek);
// Get charges the virtual clock accordingly.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"clio/internal/vclock"
	"clio/internal/wodev"
)

// Key identifies a block: a volume tag plus a volume-relative block index.
type Key struct {
	// Volume is a small integer identifying the mounted volume.
	Volume int
	// Block is the volume-relative block index.
	Block int
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

// HitRatio returns hits/(hits+misses), or 0 when no accesses occurred.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key  Key
	data []byte
	elem *list.Element
}

// Cache is an LRU block cache. It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int // max blocks; <= 0 means unbounded
	lru      *list.List
	entries  map[Key]*entry
	stats    Stats
	clock    *vclock.Clock
}

// New returns a cache bounded to capacity blocks (<= 0 for unbounded). The
// clock may be nil; if set, every Get charges either a cached-block access
// or a device read.
func New(capacity int, clk *vclock.Clock) *Cache {
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[Key]*entry),
		clock:    clk,
	}
}

// SetClock replaces the cache's virtual clock.
func (c *Cache) SetClock(clk *vclock.Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clk
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// Lookup returns the cached image for key and promotes it, or nil on a
// miss. It counts a hit or miss but charges no virtual time; callers that
// model costs charge separately (see Get).
func (c *Cache) Lookup(key Key) []byte {
	return c.lookup(key)
}

// lookup returns the cached image for key and promotes it, or nil.
func (c *Cache) lookup(key Key) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil
	}
	c.stats.Hits++
	c.lru.MoveToFront(e.elem)
	return e.data
}

// Peek reports whether key is cached without promoting it or charging time.
func (c *Cache) Peek(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put inserts an immutable block image (the cache keeps its own copy).
func (c *Cache) Put(key Key, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		// Blocks are immutable; replacing is tolerated for the staged tail
		// block, which is re-put each time it is re-sealed.
		e.data = cp
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{key: key, data: cp}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.stats.Inserts++
	if c.capacity > 0 {
		for c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			old := oldest.Value.(*entry)
			c.lru.Remove(oldest)
			delete(c.entries, old.key)
			c.stats.Evictions++
		}
	}
}

// Invalidate drops a cached block (used when a block is invalidated on the
// medium or a staged tail block is superseded).
func (c *Cache) Invalidate(key Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.Remove(e.elem)
		delete(c.entries, key)
	}
}

// DropVolume drops every cached block of the given volume (unmount).
func (c *Cache) DropVolume(volume int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, e := range c.entries {
		if k.Volume == volume {
			c.lru.Remove(e.elem)
			delete(c.entries, k)
		}
	}
}

// Flush empties the cache entirely (used by experiments to force the
// no-caching worst case of §3.3.1).
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = make(map[Key]*entry)
}

// Get returns the block image for key, reading through to dev on a miss.
// The returned slice is the cache's copy and must not be modified. Device
// errors (ErrUnwritten, ErrInvalidated, damage surfaced by the parser later)
// pass through unwrapped; error reads are not cached.
func (c *Cache) Get(key Key, dev wodev.Device) ([]byte, error) {
	if data := c.lookup(key); data != nil {
		c.clock.ChargeCachedBlock()
		return data, nil
	}
	if dev == nil {
		return nil, fmt.Errorf("cache: miss on %v with no device", key)
	}
	buf := make([]byte, dev.BlockSize())
	c.clock.ChargeDeviceRead(dev.BlockSize())
	if err := dev.ReadBlock(key.Block, buf); err != nil {
		return nil, err
	}
	c.Put(key, buf)
	// Interpreting the freshly read block costs a cached-block access too.
	c.clock.ChargeCachedBlock()
	return buf, nil
}
