package group

import (
	"context"
	"errors"
	"fmt"
	"io"

	"clio/internal/logapi"
	"clio/internal/wire"
)

// PartitionReport summarizes one partition's acknowledgement trail.
type PartitionReport struct {
	// Acks counts acknowledgement records.
	Acks int
	// Last is the furthest acknowledged gap position.
	Last logapi.Position
	// Count is the final cumulative delivery count — with a clean trail,
	// exactly the number of entries the group consumed from the partition.
	Count uint64
	// Owners is the sequence of members that acked, de-duplicated to
	// ownership changes.
	Owners []string
}

// Report is the result of auditing a group's offsets log.
type Report struct {
	// Partitions maps partition → its trail summary.
	Partitions map[int]*PartitionReport
	// Members lists every member name that ever appeared, sorted by first
	// appearance.
	Members []string
	// Records counts group records examined.
	Records int
	// Void counts claims and releases voided by the fencing: a claim whose
	// citation no longer matched when it landed (it lost the race and its
	// appender never delivered), or a release by a member that had already
	// lost the partition. Voided records are protocol-normal.
	Void int
}

// Acked sums the final cumulative counts over all partitions — the number
// of entries the group consumed exactly once when the audit passes.
func (r *Report) Acked() uint64 {
	var n uint64
	for _, pr := range r.Partitions {
		n += pr.Count
	}
	return n
}

// Audit replays a group's offsets log and checks the exactly-once-per-group
// invariants the protocol maintains. It folds the trail exactly as a member
// does — a claim is valid only if it cites the position of the partition's
// last valid ownership event — and verifies that:
//
//   - every acknowledgement is appended by the partition's current claim
//     holder (a void ack would be evidence of a possible duplicate
//     delivery, since its appender believed the ack succeeded);
//   - within a partition, acknowledged positions strictly advance and the
//     cumulative counts strictly increase — an entry acknowledged twice, by
//     anyone, would violate one of the two.
//
// It returns the report alongside the first violation found, so a failing
// audit still describes the trail.
func Audit(ctx context.Context, svc logapi.Service, group string) (*Report, error) {
	cur, err := svc.OpenCursor(ctx, LogPath(group))
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	r := &Report{Partitions: make(map[int]*PartitionReport)}
	owner := make(map[int]string)
	epoch := make(map[int]logPos)
	seen := make(map[string]bool)
	note := func(m string) {
		if !seen[m] {
			seen[m] = true
			r.Members = append(r.Members, m)
		}
	}
	for {
		e, err := cur.Next(ctx)
		if errors.Is(err, io.EOF) {
			return r, nil
		}
		if err != nil {
			return r, err
		}
		rec, err := wire.DecodeGroupRec(e.Data)
		if err != nil {
			return r, fmt.Errorf("group: offsets record %d is not a group record: %w", r.Records, err)
		}
		r.Records++
		note(rec.Member)
		p := int(rec.Partition)
		pos := logPos{block: e.Block, rec: e.Index + 1}
		switch rec.Kind {
		case wire.GroupJoin, wire.GroupHeartbeat:
			// liveness only; no trail state
		case wire.GroupLeave:
			for q, o := range owner {
				if o == rec.Member {
					delete(owner, q)
					epoch[q] = pos
				}
			}
		case wire.GroupClaim:
			if cite := (logPos{block: int(rec.Block), rec: int(rec.Rec)}); cite != epoch[p] {
				r.Void++ // lost the claim race; its appender never delivered
				continue
			}
			owner[p] = rec.Member
			epoch[p] = pos
		case wire.GroupRelease:
			if owner[p] != rec.Member {
				r.Void++
				continue
			}
			delete(owner, p)
			epoch[p] = pos
		case wire.GroupAck:
			pr := r.Partitions[p]
			if pr == nil {
				pr = &PartitionReport{}
				r.Partitions[p] = pr
			}
			if o := owner[p]; o != rec.Member {
				return r, fmt.Errorf("group: record %d: partition %d acked by %q but claim holder is %q",
					r.Records-1, p, rec.Member, o)
			}
			ack := logapi.Position{Shard: int(rec.Shard), Block: int(rec.Block), Rec: int(rec.Rec)}
			if pr.Acks > 0 {
				if ack.Shard != pr.Last.Shard {
					return r, fmt.Errorf("group: record %d: partition %d moved shards %d → %d",
						r.Records-1, p, pr.Last.Shard, ack.Shard)
				}
				if ack.Block < pr.Last.Block ||
					(ack.Block == pr.Last.Block && ack.Rec <= pr.Last.Rec) {
					return r, fmt.Errorf("group: record %d: partition %d position did not advance: %+v after %+v (double delivery)",
						r.Records-1, p, ack, pr.Last)
				}
				if rec.Count <= pr.Count {
					return r, fmt.Errorf("group: record %d: partition %d count did not advance: %d after %d (double delivery)",
						r.Records-1, p, rec.Count, pr.Count)
				}
			}
			pr.Acks++
			pr.Last = ack
			pr.Count = rec.Count
			if n := len(pr.Owners); n == 0 || pr.Owners[n-1] != rec.Member {
				pr.Owners = append(pr.Owners, rec.Member)
			}
		}
	}
}
