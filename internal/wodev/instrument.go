package wodev

import (
	"time"

	"clio/internal/obs"
)

// Instrumented wraps a Device and records wall-clock latency histograms for
// reads, appends and invalidations. It composes with the other wrappers
// (Flaky, Latent, Timed, Mirror) like they compose with each other; with
// Latent underneath, the histograms show the injected real latency. The
// histograms are plain obs values — nil histograms (an Instrumented zero
// value) record nothing, so the wrapper itself never needs a registry.
type Instrumented struct {
	Device
	ReadLatency       *obs.Histogram
	AppendLatency     *obs.Histogram
	InvalidateLatency *obs.Histogram
}

// NewInstrumented wraps dev, registering per-operation latency histograms
// under clio_wodev_{read,append,invalidate}_seconds in reg.
func NewInstrumented(dev Device, reg *obs.Registry) *Instrumented {
	return &Instrumented{
		Device: dev,
		ReadLatency: reg.Histogram("clio_wodev_read_seconds",
			"Wall-clock latency of device block reads.", nil),
		AppendLatency: reg.Histogram("clio_wodev_append_seconds",
			"Wall-clock latency of device block appends.", nil),
		InvalidateLatency: reg.Histogram("clio_wodev_invalidate_seconds",
			"Wall-clock latency of device block invalidations.", nil),
	}
}

// ReadBlock times the wrapped read.
func (d *Instrumented) ReadBlock(idx int, dst []byte) error {
	start := time.Now()
	err := d.Device.ReadBlock(idx, dst)
	d.ReadLatency.ObserveSince(start)
	return err
}

// ReadValidated times a validating replica read when the wrapped device
// supports one, preserving Mirror failover through the wrapper.
func (d *Instrumented) ReadValidated(idx int, dst []byte, valid func([]byte) bool) error {
	start := time.Now()
	defer d.ReadLatency.ObserveSince(start)
	if m, ok := d.Device.(interface {
		ReadValidated(int, []byte, func([]byte) bool) error
	}); ok {
		return m.ReadValidated(idx, dst, valid)
	}
	if err := d.Device.ReadBlock(idx, dst); err != nil {
		return err
	}
	if !valid(dst) {
		return ErrCorrupt
	}
	return nil
}

// AppendBlock times the wrapped append.
func (d *Instrumented) AppendBlock(data []byte) (int, error) {
	start := time.Now()
	idx, err := d.Device.AppendBlock(data)
	d.AppendLatency.ObserveSince(start)
	return idx, err
}

// WriteAt times the wrapped positioned write.
func (d *Instrumented) WriteAt(idx int, data []byte) error {
	start := time.Now()
	err := d.Device.WriteAt(idx, data)
	d.AppendLatency.ObserveSince(start)
	return err
}

// Invalidate times the wrapped invalidation.
func (d *Instrumented) Invalidate(idx int) error {
	start := time.Now()
	err := d.Device.Invalidate(idx)
	d.InvalidateLatency.ObserveSince(start)
	return err
}
