package core

import (
	"errors"
	"fmt"

	"clio/internal/blockfmt"
	"clio/internal/catalog"
	"clio/internal/entrymap"
	"clio/internal/wire"
)

// Recovery checkpoints (an extension beyond the paper, motivated by its own
// §3.4 numbers: server initialization cost grows with the written portion).
// A checkpoint is an ordinary log entry in the reserved ".checkpoint" system
// log file that snapshots the server state recovery would otherwise
// reconstruct by scanning: the entrymap accumulator, the rebuilt log-file
// table, the bad-block list, and the sealed end the snapshot covers. Reopen
// then replays only the blocks after the newest valid checkpoint.
//
// Validity on write-once media follows the same rule as the NVRAM tail
// image (see FileNVRAM): the payload carries a magic and a trailing CRC,
// and anything that fails to parse — a torn fragment chain, a damaged
// block, a mismatched checksum — is just garbage to skip, never corruption
// to repair; recovery keeps scanning for an older checkpoint and finally
// falls back to the full reconstruction of §2.3.1.

// ckptMagic introduces every checkpoint payload.
const ckptMagic = "CKP1"

var errBadCheckpoint = errors.New("clio: invalid checkpoint record")

// checkpoint is a decoded checkpoint record.
type checkpoint struct {
	// coveredEnd is the sealed-block count P the snapshot covers: the
	// accumulator and catalog states describe exactly blocks [0, P), so
	// recovery replays [P, end).
	coveredEnd int
	// lastBound is the writer's boundary-emission position at snapshot
	// time (Service.lastBound).
	lastBound int
	// lastTS is a floor for the timestamp clock.
	lastTS int64
	// acc is the restored entrymap accumulator.
	acc *entrymap.Accumulator
	// catalog holds the snapshot records rebuilding the log-file table as
	// of coveredEnd (parents before children, retires included).
	catalog []*catalog.Record
	// badBlocks is the known bad-block list as of coveredEnd.
	badBlocks []int
}

// encodeCheckpointLocked serializes the current recovery-relevant state;
// s.mu held. Layout:
//
//	"CKP1" coveredEnd(uvarint) lastBound(uvarint) lastTS(u64)
//	accLen(uvarint) accState
//	catCount(uvarint) { recLen(uvarint) rec }*
//	badCount(uvarint) { index(uvarint) }*
//	crc(u32 over everything above)
func (s *Service) encodeCheckpointLocked() []byte {
	out := append([]byte(nil), ckptMagic...)
	out = wire.PutUvarint(out, uint64(s.sealedEnd))
	out = wire.PutUvarint(out, uint64(s.lastBound))
	out = wire.PutUint64(out, uint64(s.lastTS))
	s.idxMu.Lock()
	accState := s.acc.EncodeState(nil)
	s.idxMu.Unlock()
	out = wire.PutUvarint(out, uint64(len(accState)))
	out = append(out, accState...)
	recs := s.cat.SnapshotRecords()
	out = wire.PutUvarint(out, uint64(len(recs)))
	for _, rec := range recs {
		enc := rec.Encode(nil)
		out = wire.PutUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	out = wire.PutUvarint(out, uint64(len(s.badBlocks)))
	for _, b := range s.badBlocks {
		out = wire.PutUvarint(out, uint64(b))
	}
	return wire.PutUint32(out, wire.Checksum(out))
}

// decodeCheckpoint parses and validates a checkpoint payload. Every failure
// returns errBadCheckpoint: on write-once media an invalid checkpoint is
// indistinguishable from a torn one and is simply skipped.
func decodeCheckpoint(data []byte) (*checkpoint, error) {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, errBadCheckpoint
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	crc, err := wire.Uint32(tail)
	if err != nil || wire.Checksum(body) != crc {
		return nil, errBadCheckpoint
	}
	rest := body[len(ckptMagic):]
	next := func() (uint64, bool) {
		v, n, err := wire.Uvarint(rest)
		if err != nil {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	cp := &checkpoint{}
	p, ok1 := next()
	lb, ok2 := next()
	if !ok1 || !ok2 || len(rest) < 8 {
		return nil, errBadCheckpoint
	}
	cp.coveredEnd = int(p)
	cp.lastBound = int(lb)
	ts, _ := wire.Uint64(rest)
	cp.lastTS = int64(ts)
	rest = rest[8:]
	accLen, ok := next()
	if !ok || accLen > uint64(len(rest)) {
		return nil, errBadCheckpoint
	}
	acc, used, err := entrymap.DecodeState(rest[:accLen])
	if err != nil || used != int(accLen) {
		return nil, errBadCheckpoint
	}
	cp.acc = acc
	rest = rest[accLen:]
	catCount, ok := next()
	if !ok || catCount > 2*(wire.MaxLogID+1) {
		return nil, errBadCheckpoint
	}
	for i := uint64(0); i < catCount; i++ {
		recLen, ok := next()
		if !ok || recLen > uint64(len(rest)) {
			return nil, errBadCheckpoint
		}
		rec, err := catalog.DecodeRecord(rest[:recLen])
		if err != nil {
			return nil, errBadCheckpoint
		}
		cp.catalog = append(cp.catalog, rec)
		rest = rest[recLen:]
	}
	badCount, ok := next()
	if !ok || badCount > 1<<24 {
		return nil, errBadCheckpoint
	}
	for i := uint64(0); i < badCount; i++ {
		idx, ok := next()
		if !ok {
			return nil, errBadCheckpoint
		}
		cp.badBlocks = append(cp.badBlocks, int(idx))
	}
	if len(rest) != 0 {
		return nil, errBadCheckpoint
	}
	return cp, nil
}

// maybeCheckpointLocked emits a checkpoint when the every-K-sealed-blocks
// policy says one is due. It runs under s.mu at operation-completion points
// only — after a group commit's force, after an unforced append, after an
// explicit Force or SealTail — so a checkpoint can never interleave with,
// or reorder, a client entry.
func (s *Service) maybeCheckpointLocked() error {
	k := s.opt.CheckpointInterval
	if k <= 0 || s.sealedEnd-s.ckptAt < k {
		return nil
	}
	return s.emitCheckpointLocked()
}

// emitCheckpointLocked snapshots the recovery state, appends it to the
// checkpoint system log file and seals the receiving block(s): a checkpoint
// is only useful once it is on the write-once device, where the backward
// scan of the next Open can find it. A non-quiescent moment (incomplete
// fragment chain, queued entrymap or snapshot records) skips silently; the
// next completion point retries.
func (s *Service) emitCheckpointLocked() error {
	if s.midChain || len(s.pendingDue) > 0 || len(s.pendingBad) > 0 || len(s.pendingSnapshot) > 0 {
		return nil
	}
	payload := s.encodeCheckpointLocked()
	if err := s.appendSystemLocked(entrymap.CheckpointID, payload,
		blockfmt.FormFull, blockfmt.AttrSystem, s.nextTS(false), false); err != nil {
		return err
	}
	// Appending the checkpoint may itself cross entrymap boundaries.
	if err := s.flushDueLocked(); err != nil {
		return err
	}
	if err := s.sealTailLocked(false); err != nil {
		return err
	}
	s.ckptAt = s.sealedEnd
	s.stats.Checkpoints++
	s.stats.CheckpointBytes += int64(len(payload))
	return nil
}

// Checkpoint emits a recovery checkpoint immediately, regardless of the
// interval policy (which may be disabled). The checkpoint is sealed to the
// device before Checkpoint returns.
func (s *Service) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return ErrClosed
	}
	return s.emitCheckpointLocked()
}

// findCheckpoint scans backward from the located end for the newest valid
// checkpoint record. The scan is bounded: with the interval policy active a
// checkpoint lies at most interval-plus-slack blocks behind the end (the
// slack covers one maximally fragmented entry chain plus the displacement
// the policy call sites allow), so a miss within the window means the store
// has no usable checkpoint and recovery falls back to full reconstruction.
func (s *Service) findCheckpoint(end int) *checkpoint {
	if s.opt.CheckpointInterval <= 0 || end == 0 {
		return nil
	}
	limit := s.opt.CheckpointInterval + s.opt.MaxEntrySize/s.opt.BlockSize + 64
	for b := end - 1; b >= 0 && b > end-1-limit; b-- {
		parsed, err := s.parseBlock(b)
		if err != nil {
			continue // unreadable block: nothing to find here
		}
		for i := len(parsed.Records) - 1; i >= 0; i-- {
			r := parsed.Records[i]
			if r.LogID != entrymap.CheckpointID || r.Continued {
				continue
			}
			data, err := s.assemble(b, i, parsed)
			if err != nil {
				continue // torn chain: the crash hit mid-checkpoint
			}
			cp, err := decodeCheckpoint(data)
			if err != nil {
				continue // bad magic or checksum: garbage to skip
			}
			if cp.coveredEnd > b || cp.acc.N() != s.opt.Degree {
				continue // claims blocks beyond itself / wrong geometry
			}
			return cp
		}
	}
	return nil
}

// restoreFromCheckpoint rebuilds the service state from a validated
// checkpoint, replaying only the blocks and catalog records in
// [cp.coveredEnd, end). An error from the catalog snapshot leaves only
// s.cat touched (the caller resets it and falls back to full
// reconstruction); errors after that point are genuine I/O or consistency
// failures the full path would hit too.
func (s *Service) restoreFromCheckpoint(cp *checkpoint, end int) error {
	// 1. Log-file table as of coveredEnd.
	for _, rec := range cp.catalog {
		if err := s.cat.Apply(rec); err != nil {
			return fmt.Errorf("clio: checkpoint catalog snapshot: %w", err)
		}
	}

	// 2. Accumulator: restore the snapshot, then replay the suffix blocks
	// exactly as the live writer would have driven it — advance through
	// each entrymap boundary (the emitted entries are discarded: the dead
	// server either wrote them durably already or they are reconstructible
	// redundancy, same as after a full reconstruction) and note each
	// sealed block's ids.
	s.idxMu.Lock()
	s.acc = cp.acc
	s.idxMu.Unlock()
	s.lastBound = cp.lastBound
	if cp.lastTS > s.lastTS {
		s.lastTS = cp.lastTS
	}
	n := s.opt.Degree
	src := (*locatorSource)(s)
	for b := cp.coveredEnd; b < end; b++ {
		for bnd := (s.lastBound/n + 1) * n; bnd <= b; bnd += n {
			s.idxMu.Lock()
			s.acc.EntriesDue(bnd)
			s.idxMu.Unlock()
			s.lastBound = bnd
		}
		ids, _ := src.BlockIDs(b) // a lost block's ids are simply absent
		s.idxMu.Lock()
		s.acc.NoteBlock(b, ids)
		s.idxMu.Unlock()
		s.recovery.BlocksReplayed++
		s.recovery.EntrymapBlocksScanned++
	}
	s.recovery.CheckpointUsed = true

	// 3. NVRAM-staged tail, as in the full path (catalog records can live
	// in the staged image, so this precedes the catalog replay).
	if err := s.restoreTail(); err != nil {
		return err
	}

	// 4. Catalog and bad-block suffixes. The bad-block list is the
	// checkpoint's list plus anything logged in the replayed suffix,
	// deduped (a slide straddling the checkpoint can be in both).
	if err := s.replayCatalogFrom(cp.coveredEnd); err != nil {
		return err
	}
	seen := make(map[int]bool, len(cp.badBlocks))
	for _, b := range cp.badBlocks {
		seen[b] = true
		s.recovery.BadBlocks = append(s.recovery.BadBlocks, b)
	}
	suffix, err := s.readBadBlocksFrom(cp.coveredEnd)
	if err != nil {
		return err
	}
	for _, b := range suffix {
		if !seen[b] {
			s.recovery.BadBlocks = append(s.recovery.BadBlocks, b)
		}
	}
	return nil
}
