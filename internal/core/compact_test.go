package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"clio/internal/archive"
	"clio/internal/scrub"
	"clio/internal/vclock"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// coldHarness owns the pieces a compaction test needs across crashes: the
// pool of memory devices (indexed by volume index), the cold backend, the
// sidecar store, and the release log.
type coldHarness struct {
	mu       sync.Mutex
	devs     map[uint32]wodev.Device
	released []uint32
	be       archive.Backend
	state    *MemState
	clk      *vclock.Clock
	tc       *testClock
	blockCap int
}

func newColdHarness(blockCap int) *coldHarness {
	return &coldHarness{
		devs:     make(map[uint32]wodev.Device),
		be:       archive.NewMem(),
		state:    NewMemState(),
		clk:      vclock.New(vclock.DefaultModel()),
		tc:       &testClock{},
		blockCap: blockCap,
	}
}

func (h *coldHarness) options(compact CompactOptions) Options {
	return Options{
		BlockSize: 256,
		Degree:    4,
		Now:       h.tc.Now,
		Clock:     h.clk,
		Allocate: func(_ volume.SeqID, index uint32, _ uint64, blockSize int) (wodev.Device, error) {
			d := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: h.blockCap})
			h.mu.Lock()
			h.devs[index] = d
			h.mu.Unlock()
			return d, nil
		},
		Cold: &ColdTier{
			Backend: h.be,
			State:   h.state,
			Release: func(index uint32) error {
				h.mu.Lock()
				h.released = append(h.released, index)
				h.mu.Unlock()
				return nil
			},
			Compact: compact,
		},
	}
}

// open creates (first call) or reopens the service over every device that
// has not been released — exactly the set a file-backed store would find on
// disk after a crash.
func (h *coldHarness) open(t *testing.T, compact CompactOptions) *Service {
	t.Helper()
	opt := h.options(compact)
	h.mu.Lock()
	gone := make(map[uint32]bool, len(h.released))
	for _, idx := range h.released {
		gone[idx] = true
	}
	var idxs []int
	for idx := range h.devs {
		if !gone[idx] {
			idxs = append(idxs, int(idx))
		}
	}
	sort.Ints(idxs)
	devs := make([]wodev.Device, 0, len(idxs))
	for _, idx := range idxs {
		devs = append(devs, h.devs[uint32(idx)])
	}
	h.mu.Unlock()
	if len(devs) == 0 {
		d := wodev.NewMem(wodev.MemOptions{BlockSize: opt.BlockSize, Capacity: h.blockCap})
		h.devs[0] = d
		s, err := New(d, opt)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s, err := Open(devs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fillVolumes appends interleaved live ("/keep") and doomed ("/dead")
// entries until the service spans at least wantVols volumes, then retires
// "/dead" so old volumes become mostly garbage. Returns the data appended
// to "/keep" in order.
func fillVolumes(t *testing.T, s *Service, keep, dead uint16, wantVols int) []string {
	t.Helper()
	var want []string
	for i := 0; len(s.Volumes()) < wantVols; i++ {
		if i > 10000 {
			t.Fatal("could not fill volumes")
		}
		if i%5 == 0 {
			p := fmt.Sprintf("keep-%04d-%s", i, "kkkkkkkkkkkkkkkkkkkk")
			mustAppend(t, s, keep, p, AppendOptions{})
			want = append(want, p)
		} else {
			mustAppend(t, s, dead, fmt.Sprintf("dead-%04d-%s", i, "dddddddddddddddddddd"), AppendOptions{})
		}
	}
	if err := s.Force(); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestCompactRelocateDemoteReadThrough(t *testing.T) {
	h := newColdHarness(16)
	copt := CompactOptions{MaxLiveFraction: 0.95, MinHotVolumes: 2}
	s := h.open(t, copt)
	defer s.Close()

	keep := mustCreate(t, s, "/keep")
	dead := mustCreate(t, s, "/dead")
	want := fillVolumes(t, s, keep, dead, 5)
	if err := s.Retire("/dead"); err != nil {
		t.Fatal(err)
	}

	// Capture every sealed block's bytes while everything is still hot, so
	// cold read-through can be checked byte-for-byte.
	hotImg := make(map[int][]byte)
	for _, v := range s.Volumes() {
		written, err := v.DataWritten()
		if err != nil {
			t.Fatal(err)
		}
		for local := 0; local < written; local++ {
			g := int(v.Hdr.StartOffset) + local
			img, err := s.readBlock(g)
			if err != nil {
				t.Fatalf("hot read block %d: %v", g, err)
			}
			hotImg[g] = append([]byte(nil), img...)
		}
	}

	res, err := s.CompactOnce(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatalf("CompactOnce: %v", err)
	}
	if res.VolumesReloc == 0 || res.VolumesDemoted == 0 {
		t.Fatalf("no compaction happened: %+v", res)
	}
	if res.EntriesCopied == 0 || res.BytesCopied == 0 {
		t.Fatalf("no entries relocated: %+v", res)
	}
	h.mu.Lock()
	nReleased := len(h.released)
	h.mu.Unlock()
	if nReleased != res.VolumesDemoted {
		t.Errorf("released %d devices, demoted %d volumes", nReleased, res.VolumesDemoted)
	}

	// Every acked live entry is still readable, in order, exactly once.
	if got := datas(readAll(t, s, "/keep")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("post-compaction /keep mismatch: got %d entries, want %d\n got=%v\nwant=%v",
			len(got), len(want), got, want)
	}

	st := s.Stats()
	if st.EntriesRelocated != int64(res.EntriesCopied) || st.BytesRelocated != res.BytesCopied {
		t.Errorf("stats reloc counters %d/%d, result %d/%d",
			st.EntriesRelocated, st.BytesRelocated, res.EntriesCopied, res.BytesCopied)
	}
	if st.VolumesDemoted != int64(res.VolumesDemoted) {
		t.Errorf("stats demoted %d, result %d", st.VolumesDemoted, res.VolumesDemoted)
	}

	// Cold read-through: flush the cache, then every demoted block must
	// come back byte-identical through the archive backend, charged at
	// archival latency.
	s.SetCacheCapacity(64)
	_, coldBefore := h.clk.CategoryTotal(vclock.CatCold)
	fetchBefore := s.Stats().ColdFetches
	cv := s.cmpView.Load()
	if cv == nil {
		t.Fatal("no compaction view after compaction")
	}
	var demoted []*relocVol
	for _, v := range cv.vols {
		if v.Demoted {
			demoted = append(demoted, v)
		}
	}
	if len(demoted) == 0 {
		t.Fatal("no demoted volumes in view")
	}
	checked := 0
	for _, v := range demoted {
		for g := v.Start; g < v.end(); g++ {
			img, err := s.readBlock(g)
			if err != nil {
				t.Fatalf("cold read block %d: %v", g, err)
			}
			if !bytes.Equal(img, hotImg[g]) {
				t.Fatalf("cold block %d differs from pre-demotion image", g)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no demoted blocks to check")
	}
	fetchAfter := s.Stats().ColdFetches
	if fetchAfter-fetchBefore != int64(checked) {
		t.Errorf("cold fetches %d, want %d", fetchAfter-fetchBefore, checked)
	}
	_, coldAfter := h.clk.CategoryTotal(vclock.CatCold)
	if coldAfter-coldBefore != int64(checked) {
		t.Errorf("cold-fetch charges %d, want %d", coldAfter-coldBefore, checked)
	}

	// Second read of the same blocks is a cache hit: no new cold fetches.
	for _, v := range demoted {
		for g := v.Start; g < v.end(); g++ {
			if _, err := s.readBlock(g); err != nil {
				t.Fatalf("cached cold block %d: %v", g, err)
			}
		}
	}
	if got := s.Stats().ColdFetches; got != fetchAfter {
		t.Errorf("second read fetched cold again: %d -> %d", fetchAfter, got)
	}

	// The full physical history — hot volumes plus the cold archive —
	// still scrubs clean.
	coldDevs, err := archive.Restore(context.Background(), h.be)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]wodev.Device, 0, len(coldDevs)+4)
	seen := make(map[uint32]bool)
	for _, v := range s.Volumes() {
		all = append(all, v.Dev)
		seen[v.Hdr.Index] = true
	}
	for _, d := range coldDevs {
		hdr, err := volume.ReadHeader(d)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[hdr.Index] {
			all = append(all, d)
		}
	}
	rep, err := scrub.Volumes(all, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("scrub found problems after compaction: %v", rep.Problems)
	}
}

func TestCompactSkipsDenseVolumes(t *testing.T) {
	h := newColdHarness(16)
	s := h.open(t, CompactOptions{})
	defer s.Close()
	keep := mustCreate(t, s, "/keep")
	for i := 0; len(s.Volumes()) < 4; i++ {
		mustAppend(t, s, keep, fmt.Sprintf("live-%04d-%s", i, "xxxxxxxxxxxxxxxxxxxx"), AppendOptions{})
	}
	if err := s.Force(); err != nil {
		t.Fatal(err)
	}
	res, err := s.CompactOnce(context.Background(), CompactOptions{MaxLiveFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.VolumesReloc != 0 || res.VolumesDemoted != 0 {
		t.Errorf("dense volumes were compacted: %+v", res)
	}
	if res.VolumesSkipped == 0 {
		t.Errorf("no volumes examined and skipped: %+v", res)
	}
}

func TestCompactNoColdTier(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	if _, err := s.CompactOnce(context.Background(), CompactOptions{}); !errors.Is(err, ErrNoColdTier) {
		t.Errorf("CompactOnce without cold tier: %v", err)
	}
}

// TestCompactCrashResume kills the service at every stage of the compaction
// protocol and verifies that no acked entry is lost and that a subsequent
// pass completes the work.
func TestCompactCrashResume(t *testing.T) {
	stages := []string{"collected", "forced", "committed", "archived", "demoted"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			h := newColdHarness(16)
			copt := CompactOptions{MaxLiveFraction: 0.95, MinHotVolumes: 2}
			s := h.open(t, copt)
			keep := mustCreate(t, s, "/keep")
			dead := mustCreate(t, s, "/dead")
			want := fillVolumes(t, s, keep, dead, 5)
			if err := s.Retire("/dead"); err != nil {
				t.Fatal(err)
			}

			boom := errors.New("injected crash")
			s.compactHook = func(st string) error {
				if st == stage {
					return boom
				}
				return nil
			}
			if _, err := s.CompactOnce(context.Background(), CompactOptions{}); !errors.Is(err, boom) {
				t.Fatalf("stage %s: CompactOnce error %v, want injected crash", stage, err)
			}
			s.Crash()

			// Reopen on whatever devices survived; acked entries must all
			// be there, exactly once, in order.
			s2 := h.open(t, copt)
			if got := datas(readAll(t, s2, "/keep")); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("stage %s: post-crash /keep mismatch:\n got=%v\nwant=%v", stage, got, want)
			}

			// A fresh pass finishes the interrupted work.
			res, err := s2.CompactOnce(context.Background(), CompactOptions{})
			if err != nil {
				t.Fatalf("stage %s: resume CompactOnce: %v", stage, err)
			}
			if s2.Stats().VolumesDemoted == 0 && res.VolumesDemoted == 0 {
				t.Fatalf("stage %s: nothing demoted after resume: %+v", stage, res)
			}
			if got := datas(readAll(t, s2, "/keep")); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("stage %s: post-resume /keep mismatch:\n got=%v\nwant=%v", stage, got, want)
			}

			// Appends still work after the dust settles.
			mustAppend(t, s2, keep, "after-resume", AppendOptions{})
			if err := s2.Force(); err != nil {
				t.Fatal(err)
			}
			got := datas(readAll(t, s2, "/keep"))
			if len(got) != len(want)+1 || got[len(got)-1] != "after-resume" {
				t.Fatalf("stage %s: append after resume not readable: %v", stage, got)
			}
			s2.Close()
		})
	}
}

// TestCompactRecompaction compacts a volume that hosts copies from an
// earlier compaction, exercising the hosted-range replacement path.
func TestCompactRecompaction(t *testing.T) {
	h := newColdHarness(16)
	copt := CompactOptions{MaxLiveFraction: 0.95, MinHotVolumes: 2, MaxVolumes: 1}
	s := h.open(t, copt)
	defer s.Close()
	keep := mustCreate(t, s, "/keep")
	dead := mustCreate(t, s, "/dead")
	want := fillVolumes(t, s, keep, dead, 4)
	if err := s.Retire("/dead"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := s.CompactOnce(context.Background(), CompactOptions{MaxLiveFraction: 0.95, MinHotVolumes: 2, MaxVolumes: 1}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := datas(readAll(t, s, "/keep")); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("round %d: /keep mismatch:\n got=%v\nwant=%v", round, got, want)
		}
		// Keep the log busy between rounds so fresh volumes age.
		for i := 0; i < 20; i++ {
			p := fmt.Sprintf("keep-r%d-%02d-%s", round, i, "kkkkkkkkkkkkkkkkkkkk")
			mustAppend(t, s, keep, p, AppendOptions{})
			want = append(want, p)
		}
		if err := s.Force(); err != nil {
			t.Fatal(err)
		}
	}
	if got := datas(readAll(t, s, "/keep")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("final /keep mismatch:\n got=%v\nwant=%v", got, want)
	}
	if s.Stats().VolumesDemoted == 0 {
		t.Error("no volumes demoted across rounds")
	}
}

func TestCompactSeekAcrossRedirect(t *testing.T) {
	h := newColdHarness(16)
	copt := CompactOptions{MaxLiveFraction: 0.95, MinHotVolumes: 2}
	s := h.open(t, copt)
	defer s.Close()
	keep := mustCreate(t, s, "/keep")
	dead := mustCreate(t, s, "/dead")
	want := fillVolumes(t, s, keep, dead, 5)
	if err := s.Retire("/dead"); err != nil {
		t.Fatal(err)
	}
	var wantTS []int64
	for _, e := range readAll(t, s, "/keep") {
		wantTS = append(wantTS, e.Timestamp)
	}
	if _, err := s.CompactOnce(context.Background(), CompactOptions{}); err != nil {
		t.Fatal(err)
	}

	c, err := s.OpenCursor("/keep")
	if err != nil {
		t.Fatal(err)
	}
	// Backward sweep sees the same entries reversed.
	c.SeekEnd()
	var back []string
	for {
		e, err := c.Prev()
		if err != nil {
			break
		}
		back = append(back, string(e.Data))
	}
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}
	if fmt.Sprint(back) != fmt.Sprint(want) {
		t.Errorf("backward sweep mismatch:\n got=%v\nwant=%v", back, want)
	}
	// SeekTime to each original timestamp lands on the first entry at or
	// after it (un-forced entries share their block's footer timestamp, so
	// the expected entry is the lower bound, not necessarily entry i).
	for i, ts := range wantTS {
		first := sort.Search(len(wantTS), func(j int) bool { return wantTS[j] >= ts })
		if err := c.SeekTime(ts); err != nil {
			t.Fatalf("SeekTime(%d): %v", ts, err)
		}
		e, err := c.Next()
		if err != nil {
			t.Fatalf("Next after SeekTime(%d): %v", ts, err)
		}
		if string(e.Data) != want[first] {
			t.Errorf("SeekTime(%d) (entry %d) -> %q, want %q", ts, i, e.Data, want[first])
		}
	}
}

func TestCompactSidecarRoundTrip(t *testing.T) {
	st := &compactState{Vols: []*relocVol{
		{Index: 3, Start: 30, Blocks: 15, Capacity: 15, Demoted: true,
			IDs:    []uint16{4, 7},
			Ranges: []copyRange{{StartBlock: 61, StartRec: 2, EndBlock: 61, EndRec: 5}}},
		{Index: 1, Start: 0, Blocks: 15, Capacity: 15,
			IDs: []uint16{4}},
	}}
	got, err := decodeCompactState(st.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vols) != 2 {
		t.Fatalf("decoded %d vols", len(got.Vols))
	}
	v := got.Vols[0]
	if v.Index != 3 || v.Start != 30 || v.Blocks != 15 || !v.Demoted ||
		fmt.Sprint(v.IDs) != fmt.Sprint([]uint16{4, 7}) || len(v.Ranges) != 1 {
		t.Errorf("vol 0 mismatch: %+v", v)
	}
	if v.Ranges[0] != (copyRange{StartBlock: 61, StartRec: 2, EndBlock: 61, EndRec: 5}) {
		t.Errorf("range mismatch: %+v", v.Ranges[0])
	}
	// Corruption is detected, not silently accepted.
	enc := st.encode()
	enc[len(enc)-1] ^= 0xff
	if _, err := decodeCompactState(enc); !errors.Is(err, ErrBadSidecar) {
		t.Errorf("corrupted sidecar decoded: %v", err)
	}
	if _, err := decodeCompactState(enc[:4]); !errors.Is(err, ErrBadSidecar) {
		t.Errorf("truncated sidecar decoded: %v", err)
	}
}

func TestCompactFileStateRoundTrip(t *testing.T) {
	fs := NewFileState(t.TempDir() + "/compact.clio")
	if data, err := fs.Load(); err != nil || data != nil {
		t.Fatalf("fresh Load = %v, %v", data, err)
	}
	st := &compactState{Vols: []*relocVol{{Index: 9, Start: 90, Blocks: 10, Capacity: 15}}}
	if err := fs.Save(st.encode()); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCompactState(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vols) != 1 || got.Vols[0].Index != 9 {
		t.Errorf("file round trip mismatch: %+v", got.Vols)
	}
}

func TestCompactMarkerRoundTrip(t *testing.T) {
	enc := encodeCompactMarker(7, []uint16{4, 9, 200})
	idx, ids, err := DecodeCompactMarker(enc)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 7 || fmt.Sprint(ids) != fmt.Sprint([]uint16{4, 9, 200}) {
		t.Errorf("marker round trip: %d %v", idx, ids)
	}
}
