package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"clio/internal/wodev"
)

func TestLocateUnique(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/async")
	// An async client tags entries with its own sequence number and keeps
	// its own (slightly skewed) clock.
	type pending struct {
		seq      int
		clientTS int64
	}
	var writes []pending
	for i := 0; i < 50; i++ {
		serverTS := mustAppend(t, s, id, fmt.Sprintf("seq=%04d payload", i),
			AppendOptions{Timestamped: true})
		// Client clock runs 3 "ticks" behind the server.
		writes = append(writes, pending{seq: i, clientTS: serverTS - 3000})
	}
	cur, err := s.OpenCursor("/async")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 7, 25, 49} {
		want := fmt.Sprintf("seq=%04d payload", writes[w].seq)
		e, err := cur.LocateUnique(writes[w].clientTS, 10_000, func(e *Entry) bool {
			return bytes.HasPrefix(e.Data, []byte(fmt.Sprintf("seq=%04d", writes[w].seq)))
		})
		if err != nil {
			t.Fatalf("LocateUnique(%d): %v", w, err)
		}
		if string(e.Data) != want {
			t.Errorf("LocateUnique(%d) = %q", w, e.Data)
		}
	}
	// Outside the skew window: not found.
	if _, err := cur.LocateUnique(writes[10].clientTS, 500, func(e *Entry) bool {
		return bytes.HasPrefix(e.Data, []byte("seq=0049"))
	}); err != io.EOF {
		t.Errorf("out-of-window locate: %v", err)
	}
}

func TestMirroredDeviceSurvivesReplicaDamage(t *testing.T) {
	primary := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	replica := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	mirror, err := wodev.NewMirror(primary, replica)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CacheBlocks: -1}
	s, err := New(mirror, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/m")
	var want []string
	for i := 0; i < 60; i++ {
		p := fmt.Sprintf("entry-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	// Silently corrupt several blocks on the PRIMARY only.
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = 0x99
	}
	for _, blk := range []int{2, 5, 9} {
		if err := primary.Damage(blk, garbage); err != nil {
			t.Fatal(err)
		}
	}
	s.FlushCache()
	if got := datas(readAll(t, s, "/m")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("mirrored read lost entries: %d vs %d", len(got), len(want))
	}
	// Damage the same block on BOTH replicas: now it is really lost.
	if err := replica.Damage(2, garbage); err != nil {
		t.Fatal(err)
	}
	if err := primary.Damage(2, garbage); err != nil {
		t.Fatal(err)
	}
	s.FlushCache()
	got := datas(readAll(t, s, "/m"))
	if len(got) >= len(want) {
		t.Errorf("doubly-damaged block lost nothing")
	}
	s.Crash()
	// Recovery over the mirror works too.
	s2, err := Open([]wodev.Device{mirror}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := datas(readAll(t, s2, "/m")); len(got) == 0 {
		t.Error("nothing recovered over mirror")
	}
}

func TestMirrorGeometryChecks(t *testing.T) {
	a := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 16})
	b := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 16})
	if _, err := wodev.NewMirror(a, b); err == nil {
		t.Error("mismatched geometry accepted")
	}
	if _, err := wodev.NewMirror(); err == nil {
		t.Error("empty mirror accepted")
	}
}

func TestConcurrentAppendersAndReaders(t *testing.T) {
	var nowMu sync.Mutex
	var now int64
	s, _ := newTestService(t, Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { nowMu.Lock(); defer nowMu.Unlock(); now += 1000; return now },
	})
	defer s.Close()

	const writers = 4
	const perWriter = 200
	ids := make([]uint16, writers)
	for i := range ids {
		ids[i] = mustCreate(t, s, fmt.Sprintf("/w%d", i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Append(ids[w], []byte(fmt.Sprintf("w%d-%04d", w, i)),
					AppendOptions{Forced: i%7 == 0}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		// A concurrent reader chasing the same log.
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur, err := s.OpenCursorID(ids[w])
			if err != nil {
				errs <- err
				return
			}
			seen := 0
			for seen < perWriter {
				e, err := cur.Next()
				if err == io.EOF {
					continue // writer not done yet
				}
				if err != nil {
					errs <- err
					return
				}
				if want := fmt.Sprintf("w%d-%04d", w, seen); string(e.Data) != want {
					errs <- fmt.Errorf("reader %d: got %q want %q", w, e.Data, want)
					return
				}
				seen++
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything is intact and ordered per log.
	for w := 0; w < writers; w++ {
		got := datas(readAll(t, s, fmt.Sprintf("/w%d", w)))
		if len(got) != perWriter {
			t.Fatalf("writer %d: %d entries", w, len(got))
		}
		for i, g := range got {
			if g != fmt.Sprintf("w%d-%04d", w, i) {
				t.Fatalf("writer %d entry %d: %q", w, i, g)
			}
		}
	}
}

func TestAppendErrorsAreAtomic(t *testing.T) {
	// An append that fails validation must leave no trace.
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/x")
	mustAppend(t, s, id, "before", AppendOptions{})
	if _, err := s.Append(id, make([]byte, s.Options().MaxEntrySize+1), AppendOptions{}); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	mustAppend(t, s, id, "after", AppendOptions{})
	if got := datas(readAll(t, s, "/x")); fmt.Sprint(got) != "[before after]" {
		t.Errorf("entries: %v", got)
	}
}

func TestSeekPosResume(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/resume")
	for i := 0; i < 30; i++ {
		mustAppend(t, s, id, fmt.Sprintf("e%02d", i), AppendOptions{})
	}
	// A monitoring pass drains ten entries and remembers its position.
	cur, _ := s.OpenCursor("/resume")
	var last *Entry
	for i := 0; i < 10; i++ {
		e, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		last = e
	}
	block, rec := cur.Position()

	// A fresh cursor (a later monitoring run) resumes from there.
	cur2, _ := s.OpenCursor("/resume")
	if err := cur2.SeekPos(block, rec); err != nil {
		t.Fatal(err)
	}
	e, err := cur2.Next()
	if err != nil || string(e.Data) != "e10" {
		t.Fatalf("resume: %v %q (after %q)", err, e.Data, last.Data)
	}
	// Resuming via the entry's own coordinates re-reads it...
	cur3, _ := s.OpenCursor("/resume")
	if err := cur3.SeekPos(last.Block, last.Index); err != nil {
		t.Fatal(err)
	}
	if e, err := cur3.Next(); err != nil || string(e.Data) != "e09" {
		t.Fatalf("seek before entry: %v", err)
	}
	// ...and Index+1 skips past it.
	if err := cur3.SeekPos(last.Block, last.Index+1); err != nil {
		t.Fatal(err)
	}
	if e, err := cur3.Next(); err != nil || string(e.Data) != "e10" {
		t.Fatalf("seek after entry: %v", err)
	}
	if err := cur3.SeekPos(-1, 0); err == nil {
		t.Error("negative position accepted")
	}
}
