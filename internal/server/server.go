package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/obs"
	"clio/internal/shard"
	"clio/internal/wire"
)

// DefaultIdleTimeout is how long a connection may sit between requests
// before the server drops it — a half-open client must not pin a handler
// goroutine forever.
const DefaultIdleTimeout = 2 * time.Minute

// dedupWindow bounds the per-session duplicate-suppression cache. The
// client has one request in flight per connection, so the window only needs
// to cover replay after reconnect plus slack.
const dedupWindow = 128

// DefaultReadWorkers bounds how many read-class requests the server executes
// concurrently per shard when ReadWorkers is left zero.
const DefaultReadWorkers = 8

// Server serves the Clio protocol over stream connections, fronting one log
// store — a single service or a sharded set behind one namespace (the
// paper's combined file server + log server, §2 and §6: "the combined
// implementation allows for the sharing not only of hardware resources, but
// also of code").
type Server struct {
	store *shard.Store
	// Logf, when set, receives connection-level error logs.
	Logf func(format string, args ...any)
	// IdleTimeout bounds how long a connection may sit idle between
	// requests; expiry closes the connection (the session, and with it any
	// open cursors and the dedup window, survives for reconnect). 0 uses
	// DefaultIdleTimeout; negative disables the deadline.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write; 0 disables.
	WriteTimeout time.Duration
	// ReadWorkers bounds how many read-class requests (OpPing, OpResolve,
	// OpList, OpStat, OpReadAt, OpStats) the server executes concurrently
	// PER SHARD, across all connections. Read-class requests have no session
	// side effects, so they are handed to the target shard's bounded pool
	// and answered out of band while mutations and cursor operations stay
	// ordered by session sequence; responses are paired with requests by the
	// echoed seq. Per-shard pools keep a slow shard's reads from starving
	// the rest. 0 uses DefaultReadWorkers; negative disables pipelining
	// (every request runs inline, the pre-pipelining behavior). Set before
	// the first connection is served.
	ReadWorkers int
	// Tracer, when set, records a trace for every request: a span for the
	// dispatch itself plus whatever spans core adds underneath (group
	// commit, device write, NVRAM store). The trace ID comes from the
	// request frame, so client and server views correlate. Nil disables
	// tracing at zero cost. Set before the first connection is served.
	Tracer *obs.Tracer
	// Gate, when set, intercepts the response of every mutating request
	// (IsMutating) after it executed but before it is recorded in the dedup
	// window and returned. The cluster layer uses it to hold the ack until a
	// quorum of replicas has durably staged the mutation, and to rewrite the
	// response if the quorum cannot be reached. The returned record flag
	// says whether the (possibly rewritten) response may enter the
	// duplicate-suppression window — a quorum failure must NOT be cached, so
	// the client's replay re-executes instead of being answered with the
	// stale failure. Set before the first connection is served.
	Gate func(op byte, session, seq uint64, status byte, resp []byte) (newStatus byte, newResp []byte, record bool)
	// PreGate, when set, is consulted before a mutating request executes
	// (after the dedup-window lookup, so an already-answered replay still
	// returns its cached response). reject=true refuses the request with the
	// returned status/resp WITHOUT executing it or recording it. The cluster
	// layer uses it to refuse writes while a quorum of replicas is
	// unreachable — refusing before execution keeps a minority-partitioned
	// leader from diverging its write-once media with entries it can never
	// ack. Set before the first connection is served.
	PreGate func(op byte) (status byte, resp []byte, reject bool)
	// ExtOp, when set, is offered every opcode the core dispatcher does not
	// recognize before the unknown-op error is returned; handled=false falls
	// through to that error. The cluster layer uses it for the replication
	// control ops that are valid on a leader (OpReplStatus, stale-leader
	// demotion). Set before the first connection is served.
	ExtOp func(op byte, payload []byte) (status byte, resp []byte, handled bool)

	// obsM holds the registered metrics; nil until RegisterMetrics. An
	// atomic pointer mirrors core's cacheP pattern: the hot path loads it
	// once per request without taking s.mu.
	obsM atomic.Pointer[serverMetrics]
	// obsReg remembers the registry so tenants installed after
	// RegisterMetrics (SetTenants on a SIGHUP reload) can register their
	// series; registration is idempotent, so the two orders converge.
	obsReg atomic.Pointer[obs.Registry]

	// tenants is the installed tenant table (SetTenants); nil or empty
	// means open mode. An atomic pointer: dispatch reads it per request,
	// reloads swap it whole.
	tenants atomic.Pointer[map[string]*tenantState]

	// draining flips when Shutdown begins: listeners are closed, connection
	// read loops wind down gracefully (in-flight requests finish and are
	// acked, subscriptions end with OpStreamEnd) instead of being reset.
	draining atomic.Bool

	// epoch identifies this Server instance: it changes on restart, which
	// is how a reconnecting client learns its session state is gone.
	epoch uint64

	mu       sync.Mutex
	closed   bool
	lns      []net.Listener
	conns    map[net.Conn]bool
	sessions map[uint64]*session
	wg       sync.WaitGroup

	semOnce sync.Once
	sems    []chan struct{} // per-shard read-class worker pools; nil disables pipelining
}

// New returns a server fronting one service as a 1-shard store.
func New(svc *core.Service) *Server { return NewStore(shard.Single(svc)) }

// NewStore returns a server fronting a (possibly sharded) store.
func NewStore(st *shard.Store) *Server {
	var e [8]byte
	if _, err := rand.Read(e[:]); err != nil {
		binary.LittleEndian.PutUint64(e[:], uint64(time.Now().UnixNano())^uint64(os.Getpid()))
	}
	return &Server{
		store:    st,
		epoch:    binary.LittleEndian.Uint64(e[:]) | 1, // never 0
		conns:    make(map[net.Conn]bool),
		sessions: make(map[uint64]*session),
	}
}

// Store returns the underlying log store.
func (s *Server) Store() *shard.Store { return s.store }

// Service returns shard 0's core service.
//
// Deprecated: use Store, which sees every shard.
func (s *Server) Service() *core.Service { return s.store.Service(0) }

// Epoch returns the server instance identifier carried in Hello responses.
func (s *Server) Epoch() uint64 { return s.epoch }

// SetEpoch overrides the server's epoch. A promoted replication follower
// installs the cluster epoch minted by the first leader, so clients keep
// their sessions (and their replay/dedup guarantees) across a failover
// instead of treating the promotion as a restart. Must be called before the
// first connection is served.
func (s *Server) SetEpoch(e uint64) { s.epoch = e }

// SessionState is the replicable form of one client session's
// duplicate-suppression state (cursors are connection-domain and do not
// replicate).
type SessionState struct {
	ID     uint64
	MaxSeq uint64
	Resps  []SessionResp
}

// SessionResp is one cached response inside a SessionState.
type SessionResp struct {
	Seq    uint64
	Status byte
	Resp   []byte
}

// ExportSessions snapshots every shared session's dedup window, oldest
// cached response first. The cluster layer ships this to a catching-up
// follower so a promotion preserves replay idempotency.
func (s *Server) ExportSessions() []SessionState {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	out := make([]SessionState, 0, len(sessions))
	for _, ss := range sessions {
		ss.mu.Lock()
		st := SessionState{ID: ss.id, MaxSeq: ss.maxSeq}
		for _, seq := range ss.order {
			if r, ok := ss.window[seq]; ok {
				st.Resps = append(st.Resps, SessionResp{Seq: seq, Status: r.status, Resp: r.payload})
			}
		}
		ss.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// InstallSessions merges replicated session state into the server's session
// table: maxSeq advances monotonically and cached responses are adopted for
// seqs not already present, so installing is idempotent and never regresses
// state a live session has built since. A promoted follower calls this with
// the state replicated from the old leader before serving clients.
func (s *Server) InstallSessions(states []SessionState) {
	for _, st := range states {
		if st.ID == 0 {
			continue
		}
		s.mu.Lock()
		sess, ok := s.sessions[st.ID]
		if !ok {
			sess = newSession(st.ID)
			s.sessions[st.ID] = sess
		}
		s.mu.Unlock()
		sess.mu.Lock()
		if st.MaxSeq > sess.maxSeq {
			sess.maxSeq = st.MaxSeq
		}
		for _, r := range st.Resps {
			if _, exists := sess.window[r.Seq]; !exists {
				sess.order = append(sess.order, r.Seq)
				sess.window[r.Seq] = cachedResp{status: r.Status, payload: r.Resp}
			}
		}
		for len(sess.order) > dedupWindow {
			evict := sess.order[0]
			sess.order = sess.order[1:]
			delete(sess.window, evict)
		}
		sess.mu.Unlock()
	}
}

// RecordSessionResp installs one replicated dedup record — a follower calls
// this for each streamed ReplAck so its session table tracks the leader's.
func (s *Server) RecordSessionResp(id, seq uint64, status byte, resp []byte) {
	if id == 0 || seq == 0 {
		return
	}
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		sess = newSession(id)
		s.sessions[id] = sess
	}
	s.mu.Unlock()
	sess.record(seq, status, resp)
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) idleTimeout() time.Duration {
	switch {
	case s.IdleTimeout == 0:
		return DefaultIdleTimeout
	case s.IdleTimeout < 0:
		return 0
	default:
		return s.IdleTimeout
	}
}

// ErrServerClosed is returned by Serve after the server is stopped by Close
// or Shutdown. It is the expected way for a serve loop to end — daemons
// match on it to exit quietly instead of logging a shutdown as a failure.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections until the listener closes. After Close or
// Shutdown it returns ErrServerClosed; any other accept failure is returned
// as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed || s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops listeners and connections and waits for handlers to drain.
// The underlying service is not closed; the owner does that.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// Shutdown drains the server gracefully: listeners close (new connections
// are refused), every in-flight request — including a forced append parked
// in a group commit — runs to completion and is acked, stream subscriptions
// end with an OpStreamEnd frame, and connections wind down without a reset.
// If ctx expires first, the remaining connections are force-closed and ctx's
// error is returned without waiting further: a handler wedged in dispatch
// (a hung device, say) must not hold the exiting process hostage.
//
// The wake-up is a read deadline in the past on every live connection: a
// blocked ReadFrame returns immediately with a timeout, and the read loop —
// which re-checks draining after arming its own deadline, so the two writers
// cannot lose the wake-up — takes the drain path instead of the idle-drop
// path. A handler mid-request is not disturbed: the past deadline only
// affects reads, and the loop notices drain on its next iteration, after
// the response is written.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	lns := s.lns
	s.lns = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.SetReadDeadline(time.Unix(1, 0))
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		// Close's shape minus the wg.Wait: force-close what remains, but a
		// handler that never returns cannot block the exit path.
		s.mu.Lock()
		s.closed = true
		conns = conns[:0]
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		return ctx.Err()
	}
}

// KillConns forcibly closes every live client connection — listeners and
// session state are untouched, so clients reconnect into their sessions.
// This is the connection-loss chaos hook; it returns how many connections
// were killed.
func (s *Server) KillConns() int {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// readPools lazily builds the per-shard read-class worker semaphores from
// ReadWorkers: one pool per shard, so reads stalled on one shard's devices
// cannot consume the slots another shard's reads need.
func (s *Server) readPools() []chan struct{} {
	s.semOnce.Do(func() {
		n := s.ReadWorkers
		if n == 0 {
			n = DefaultReadWorkers
		}
		if n > 0 {
			s.sems = make([]chan struct{}, s.store.Shards())
			for i := range s.sems {
				s.sems[i] = make(chan struct{}, n)
			}
		}
	})
	return s.sems
}

// readShard peeks at a read-class payload to choose which shard's pool runs
// it: path-addressed ops route by the path's root segment, OpReadAt carries
// its shard explicitly; the rest (OpPing, OpStats) and anything malformed
// (dispatch will report the decode error) fall to shard 0's pool.
func (s *Server) readShard(op byte, payload []byte) int {
	switch op {
	case OpResolve, OpList, OpStat:
		if path, err := NewDecoder(payload).String(); err == nil {
			if sh, err := s.store.ShardFor(path); err == nil {
				return sh
			}
		}
	case OpReadAt:
		if sh, err := NewDecoder(payload).Uvarint(); err == nil && sh < uint64(s.store.Shards()) {
			return int(sh)
		}
	}
	return 0
}

// isReadClass reports whether op has no session side effects and may be
// executed out of order, concurrently with anything else. Cursor operations
// are NOT read-class: they mutate cursor position, so replaying one must hit
// the duplicate-suppression window.
func isReadClass(op byte) bool {
	switch op {
	case OpPing, OpResolve, OpList, OpStat, OpReadAt, OpStats:
		return true
	}
	return false
}

// ServeConn handles one connection until EOF, error, or idle timeout.
// Exported so callers can serve over a net.Pipe (the paper's same-machine
// IPC).
//
// The connection is pipelined: read-class requests are dispatched to the
// server's bounded worker pool and answered as they complete (possibly out
// of order — responses carry the request seq), while mutations and cursor
// operations execute inline, in arrival order, under the session's sequence
// discipline. A client that keeps one request in flight per connection
// observes exactly the pre-pipelining behavior.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if !s.conns[conn] {
		// Direct ServeConn callers bypass Serve's registration.
		s.conns[conn] = true
	}
	// The connection joins the drain group itself (Serve's wrapper holds
	// its own count; the Add is balanced either way), so Shutdown waits for
	// directly-served connections — net.Pipe servers — too.
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// Until an OpHello attaches a shared session, the connection gets a
	// private one (seq-based dedup still works within the connection).
	h := &connHandler{srv: s, sess: newSession(0)}
	// Async workers interleave responses with the inline path; wmu keeps
	// frames whole, inflight keeps workers from outliving the connection.
	//
	// Invariant (audited): a read-class worker can never write onto a
	// replaced connection. The write closure below captures THIS call's
	// conn and wmu; a reconnect is served by a fresh ServeConn with its own
	// conn, wmu and inflight, so a worker spawned here writes only to the
	// connection its request arrived on. And because deferred calls run
	// LIFO, inflight.Wait() (registered last) completes before the
	// conns-map delete and conn.Close() above it — workers are fully
	// drained before this connection is torn down.
	var wmu sync.Mutex
	var inflight sync.WaitGroup
	defer inflight.Wait()
	write := func(status byte, seq, trace uint64, resp, body []byte) bool {
		wmu.Lock()
		defer wmu.Unlock()
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if err := WriteFrameChunks(conn, status, seq, trace, resp, body); err != nil {
			s.logf("clio server: write: %v", err)
			return false
		}
		return true
	}
	pools := s.readPools()
	// Streaming subscriptions are connection-domain; closeAll (registered
	// after inflight.Wait, so it runs first) cancels the pushers, then the
	// Wait joins them before the connection is torn down.
	streams := newConnStreams(s, h, write, func() { conn.Close() }, &inflight)
	defer streams.closeAll()
	// A tenant session slot is held from hello to teardown; the release is
	// deferred here so every exit path — EOF, error, idle drop, drain —
	// returns it.
	defer func() {
		if ts := h.tenant.Load(); ts != nil {
			ts.sessions.Add(-1)
		}
	}()
	for {
		if d := s.idleTimeout(); d > 0 && streams.active() == 0 {
			conn.SetReadDeadline(time.Now().Add(d))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		// Re-checked AFTER arming the deadline: Shutdown stores draining
		// before it pokes every connection with a past read deadline, so
		// whichever order this loop and Shutdown write the deadline, either
		// the check below fires or the next ReadFrame returns immediately —
		// the wake-up cannot be overwritten and slept through.
		if s.draining.Load() {
			streams.endAll("server shutting down")
			return
		}
		op, seq, traceID, payload, err := ReadFrame(conn)
		if err != nil {
			if s.draining.Load() {
				// Graceful drain: in-flight work already finished (it ran
				// inline before this read), subscribers get stream-end
				// frames, and nothing is logged as a failure.
				streams.endAll("server shutting down")
				return
			}
			var ne net.Error
			switch {
			case err == io.EOF, errors.Is(err, net.ErrClosed):
			case errors.As(err, &ne) && ne.Timeout():
				s.logf("clio server: dropping idle connection: %v", err)
			default:
				s.logf("clio server: read: %v", err)
			}
			return
		}
		m := s.met()
		m.countReq(op)
		start := time.Now()
		if isStreamConnOp(op) {
			tr := s.Tracer.Start(traceID, opName(op))
			ok := streams.handle(op, seq, traceID, payload)
			s.Tracer.Finish(tr)
			m.reqLat.ObserveSince(start)
			if !ok {
				return
			}
			continue
		}
		if isReadClass(op) {
			// Read-class requests bypass the dedup window entirely (they are
			// idempotent by nature, so a replay may simply re-execute) and,
			// pool capacity permitting, run out of band on the pool of the
			// shard they address.
			var pool chan struct{}
			if pools != nil {
				pool = pools[s.readShard(op, payload)]
			}
			if pool != nil {
				select {
				case pool <- struct{}{}:
					inflight.Add(1)
					go func(op byte, seq, traceID uint64, payload []byte) {
						defer inflight.Done()
						defer func() { <-pool }()
						tr := s.Tracer.Start(traceID, opName(op))
						status, resp, body := h.dispatch(tr, op, payload)
						ok := write(status, seq, traceID, resp, body)
						s.Tracer.Finish(tr)
						m.reqLat.ObserveSince(start)
						if !ok {
							conn.Close() // wake the read loop
						}
					}(op, seq, traceID, payload)
					continue
				default:
					// Pool saturated: degrade to inline execution.
				}
			}
			tr := s.Tracer.Start(traceID, opName(op))
			status, resp, body := h.dispatch(tr, op, payload)
			ok := write(status, seq, traceID, resp, body)
			s.Tracer.Finish(tr)
			m.reqLat.ObserveSince(start)
			if !ok {
				return
			}
			continue
		}
		tr := s.Tracer.Start(traceID, opName(op))
		status, resp := h.handle(tr, op, seq, payload)
		ok := write(status, seq, traceID, resp, nil)
		s.Tracer.Finish(tr)
		m.reqLat.ObserveSince(start)
		if !ok {
			return
		}
	}
}

// session carries the per-client state that must survive a connection loss
// for reconnect to be transparent: open cursors, the highest sequence
// number processed, and a window of cached responses that makes retried
// requests idempotent.
type session struct {
	// exec serializes sequenced requests for the session, so a request
	// replayed on a new connection cannot race its original execution past
	// the duplicate-suppression lookup and run twice.
	exec sync.Mutex

	mu         sync.Mutex
	id         uint64
	cursors    map[uint32]logapi.Cursor
	nextCursor uint32
	maxSeq     uint64
	window     map[uint64]cachedResp
	order      []uint64 // FIFO of cached seqs for eviction
	// tenant pins a shared session to the tenant that first bound it ("" in
	// open mode): a session id is client-chosen, so without the pin one
	// tenant could replay another's session and read its cached responses.
	tenant string
}

type cachedResp struct {
	status  byte
	payload []byte
}

func newSession(id uint64) *session {
	return &session{
		id:      id,
		cursors: make(map[uint32]logapi.Cursor),
		window:  make(map[uint64]cachedResp),
	}
}

// lookup consults the dedup window. seen=true means the request was already
// processed and resp carries the original result; stale=true means it was
// processed but its response has been evicted.
func (ss *session) lookup(seq uint64) (resp cachedResp, seen, stale bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if seq > ss.maxSeq {
		return cachedResp{}, false, false
	}
	if r, ok := ss.window[seq]; ok {
		return r, true, false
	}
	return cachedResp{}, false, true
}

// record caches the response for seq and advances maxSeq.
//
// Invariant (audited): FIFO eviction can never drop a mid-flight sequenced
// request. A request is "mid-flight" between lookup and record, and during
// that span its seq is not in the window at all — there is nothing to
// evict. Once record inserts it, it is the newest of at most dedupWindow
// entries, and handle has already returned the response by the time
// dedupWindow further sequenced requests (each serialized under sess.exec)
// could push it out the FIFO. Eviction therefore only ever discards
// responses whose original request completed long ago; a replay that
// arrives after that reports the explicit "outside duplicate-suppression
// window" error rather than re-executing.
func (ss *session) record(seq uint64, status byte, payload []byte) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if seq > ss.maxSeq {
		ss.maxSeq = seq
	}
	if _, ok := ss.window[seq]; !ok {
		ss.order = append(ss.order, seq)
	}
	ss.window[seq] = cachedResp{status: status, payload: payload}
	for len(ss.order) > dedupWindow {
		evict := ss.order[0]
		ss.order = ss.order[1:]
		delete(ss.window, evict)
	}
}

func (ss *session) addCursor(cur logapi.Cursor) uint32 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.nextCursor++
	ss.cursors[ss.nextCursor] = cur
	return ss.nextCursor
}

func (ss *session) cursor(handle uint32) (logapi.Cursor, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	cur, ok := ss.cursors[handle]
	return cur, ok
}

func (ss *session) delCursor(handle uint32) {
	ss.mu.Lock()
	cur := ss.cursors[handle]
	delete(ss.cursors, handle)
	ss.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}

type connHandler struct {
	srv  *Server
	sess *session
	// tenant is the connection's authenticated tenant binding, nil until a
	// tenant hello succeeds (and always nil in open mode). Atomic because
	// pooled read-class workers consult it concurrently with an inline
	// hello swapping it.
	tenant atomic.Pointer[tenantState]
}

func errResp(err error) (byte, []byte) {
	return StatusErr, PutString(nil, err.Error())
}

// errResp3 is errResp in dispatch's three-value (status, resp, body) shape.
func errResp3(err error) (byte, []byte, []byte) {
	return StatusErr, PutString(nil, err.Error()), nil
}

// flattenResp folds a borrowed body into one retained payload; a nil body
// returns resp unchanged.
func flattenResp(resp, body []byte) []byte {
	if body == nil {
		return resp
	}
	return append(resp, body...)
}

// handle processes one request frame. Requests with seq > 0 pass through
// the session's duplicate-suppression window: a seq already processed
// returns its original cached response without re-executing, which is what
// makes client retry/replay idempotent for every operation (a replayed
// OpAppend does not write twice; a replayed OpNext does not advance twice).
func (h *connHandler) handle(tr *obs.Trace, op byte, seq uint64, payload []byte) (byte, []byte) {
	if op == OpHello {
		return h.hello(payload)
	}
	if seq == 0 {
		if pg := h.srv.PreGate; pg != nil && IsMutating(op) {
			if status, resp, reject := pg(op); reject {
				return status, resp
			}
		}
		status, resp, body := h.dispatch(tr, op, payload)
		resp = flattenResp(resp, body)
		if g := h.srv.Gate; g != nil && IsMutating(op) {
			status, resp, _ = g(op, h.sess.id, 0, status, resp)
		}
		return status, resp
	}
	h.sess.exec.Lock()
	defer h.sess.exec.Unlock()
	if resp, seen, stale := h.sess.lookup(seq); seen {
		h.srv.met().dedupHits.Inc()
		return resp.status, resp.payload
	} else if stale {
		return errResp(fmt.Errorf("server: request %d outside duplicate-suppression window", seq))
	}
	if pg := h.srv.PreGate; pg != nil && IsMutating(op) {
		if status, resp, reject := pg(op); reject {
			// Refused without executing and without recording: the client's
			// retry re-attempts the mutation once quorum is back.
			return status, resp
		}
	}
	status, resp, body := h.dispatch(tr, op, payload)
	// Sequenced responses outlive the request (dedup window, Gate), so a
	// borrowed body is folded into one retained payload here; only the
	// read-class path (OpReadAt) ships a borrowed body without copying.
	resp = flattenResp(resp, body)
	record := true
	if g := h.srv.Gate; g != nil && IsMutating(op) {
		// The gate may hold the response for quorum, rewrite it on quorum
		// failure, and veto caching so the client's replay re-executes.
		status, resp, record = g(op, h.sess.id, seq, status, resp)
	}
	if record {
		h.sess.record(seq, status, resp)
	}
	return status, resp
}

// hello attaches the connection to the shared session named in the payload
// (creating it on first contact) and reports the server epoch plus the
// session's high-water sequence number. On a multi-tenant server the
// payload's extended form (wire.Hello) must carry valid tenant credentials;
// the session is then owned by that tenant, and a replayed session id
// cannot be adopted by a different tenant.
func (h *connHandler) hello(payload []byte) (byte, []byte) {
	req, err := wire.DecodeHello(payload)
	if err != nil {
		return errResp(err)
	}
	ts, err := h.srv.bindTenant(req.Tenant, req.Token)
	if err != nil {
		if qe, ok := err.(*quotaError); ok {
			return quotaResp(qe)
		}
		return errResp(err)
	}
	if prev := h.tenant.Swap(ts); prev != nil {
		// A re-hello on the same connection releases the slot the previous
		// binding held (bindTenant took a fresh one above).
		prev.sessions.Add(-1)
	}
	id := req.Session
	if id != 0 {
		s := h.srv
		s.mu.Lock()
		sess, ok := s.sessions[id]
		if !ok {
			sess = newSession(id)
			s.sessions[id] = sess
		}
		s.mu.Unlock()
		if ts != nil {
			sess.mu.Lock()
			switch sess.tenant {
			case "":
				sess.tenant = ts.name
			case ts.name:
			default:
				sess.mu.Unlock()
				return errResp(fmt.Errorf("server: session %d belongs to another tenant", id))
			}
			sess.mu.Unlock()
		}
		h.sess = sess
	}
	out := wire.PutUint64(nil, h.srv.epoch)
	h.sess.mu.Lock()
	out = wire.PutUint64(out, h.sess.maxSeq)
	h.sess.mu.Unlock()
	return StatusOK, out
}

// decodeID consumes a uvarint store-wide log-file id.
func decodeID(d *Decoder) (logapi.ID, error) {
	v, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(^uint32(0)) {
		return 0, fmt.Errorf("server: id %d out of range", v)
	}
	return logapi.ID(v), nil
}

// dispatch executes one request and returns (status, resp, body). body,
// when non-nil, is the entry-data tail of the response, borrowed straight
// from the block cache: the read-class path writes it to the connection
// without copying, while sequenced paths (which must retain the response for
// the dedup window and the replication gate) flatten it first.
//
// On a multi-tenant server the request first passes the tenant gate —
// namespace scoping and quota reservation — and the reservation is settled
// against the outcome afterwards. In open mode the gate is a single atomic
// load.
func (h *connHandler) dispatch(tr *obs.Trace, op byte, payload []byte) (byte, []byte, []byte) {
	ts, reserved, status, resp, proceed := h.tenantGate(op, payload)
	if !proceed {
		return status, resp, nil
	}
	status, resp, body := h.dispatchOp(tr, op, payload)
	settleTenant(ts, op, reserved, status)
	return status, resp, body
}

// dispatchOp is the op switch behind the tenant gate.
func (h *connHandler) dispatchOp(tr *obs.Trace, op byte, payload []byte) (byte, []byte, []byte) {
	defer tr.Span("server.dispatch")()
	store := h.srv.store
	// Requests are uninterruptible once read off the wire — a dropped
	// connection must not cancel a mutation the dedup window will answer
	// for on replay — so dispatch runs under a background context.
	ctx := context.Background()
	d := NewDecoder(payload)
	switch op {
	case OpPing:
		return StatusOK, nil, nil

	case OpCreate:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		perms, err := d.Uint16()
		if err != nil {
			return errResp3(err)
		}
		owner, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		id, err := store.CreateLog(ctx, path, perms, owner)
		if err != nil {
			return errResp3(err)
		}
		return StatusOK, wire.PutUvarint(nil, uint64(id)), nil

	case OpResolve:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		id, err := store.Resolve(ctx, path)
		if err != nil {
			return errResp3(err)
		}
		return StatusOK, wire.PutUvarint(nil, uint64(id)), nil

	case OpList:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		names, err := store.List(ctx, path)
		if err != nil {
			return errResp3(err)
		}
		out := wire.PutUvarint(nil, uint64(len(names)))
		for _, n := range names {
			out = PutString(out, n)
		}
		return StatusOK, out, nil

	case OpStat:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		desc, err := store.Stat(ctx, path)
		if err != nil {
			return errResp3(err)
		}
		out := wire.PutUvarint(nil, uint64(desc.ID))
		out = wire.PutUvarint(out, uint64(desc.Parent))
		out = wire.PutUint16(out, desc.Perms)
		out = wire.PutUint64(out, uint64(desc.Created))
		out = PutString(out, desc.Name)
		out = PutString(out, desc.Owner)
		var flags byte
		if desc.Retired {
			flags |= 1
		}
		if desc.System {
			flags |= 2
		}
		return StatusOK, append(out, flags), nil

	case OpSetPerms:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		perms, err := d.Uint16()
		if err != nil {
			return errResp3(err)
		}
		if err := store.SetPerms(ctx, path, perms); err != nil {
			return errResp3(err)
		}
		return StatusOK, nil, nil

	case OpRetire:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		if err := store.Retire(ctx, path); err != nil {
			return errResp3(err)
		}
		return StatusOK, nil, nil

	case OpAppend:
		id, err := decodeID(d)
		if err != nil {
			return errResp3(err)
		}
		flags, err := d.Byte()
		if err != nil {
			return errResp3(err)
		}
		data, err := d.Bytes()
		if err != nil {
			return errResp3(err)
		}
		ts, err := store.Append(ctx, id, data, core.AppendOptions{
			Timestamped: flags&AppendTimestamped != 0,
			Forced:      flags&AppendForced != 0,
			Trace:       tr,
		})
		return appendResp3(ts, err)

	case OpAppendMulti:
		nIDs, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		if nIDs == 0 || nIDs > 64 {
			return errResp3(fmt.Errorf("server: bad member count %d", nIDs))
		}
		ids := make([]logapi.ID, nIDs)
		for i := range ids {
			if ids[i], err = decodeID(d); err != nil {
				return errResp3(err)
			}
		}
		flags, err := d.Byte()
		if err != nil {
			return errResp3(err)
		}
		data, err := d.Bytes()
		if err != nil {
			return errResp3(err)
		}
		ts, err := store.AppendMulti(ctx, ids, data, core.AppendOptions{
			Timestamped: flags&AppendTimestamped != 0,
			Forced:      flags&AppendForced != 0,
			Trace:       tr,
		})
		return appendResp3(ts, err)

	case OpForce:
		if err := store.Force(ctx); err != nil {
			return errResp3(err)
		}
		return StatusOK, nil, nil

	case OpCursorOpen:
		path, err := d.String()
		if err != nil {
			return errResp3(err)
		}
		cur, err := store.OpenCursor(ctx, path)
		if err != nil {
			return errResp3(err)
		}
		return StatusOK, wire.PutUint32(nil, h.sess.addCursor(cur)), nil

	case OpNext, OpPrev:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp3(err)
		}
		var e *core.Entry
		readDone := tr.Span("core.read")
		if op == OpNext {
			e, err = cur.Next(ctx)
		} else {
			e, err = cur.Prev(ctx)
		}
		readDone()
		if err == io.EOF {
			return StatusEOF, nil, nil
		}
		if err != nil {
			return errResp3(err)
		}
		return StatusOK, encodeEntryHead(e), e.Data

	case OpSeekTime:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp3(err)
		}
		ts, err := d.Int64()
		if err != nil {
			return errResp3(err)
		}
		if err := cur.SeekTime(ctx, ts); err != nil {
			return errResp3(err)
		}
		return StatusOK, nil, nil

	case OpSeekStart, OpSeekEnd:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp3(err)
		}
		if op == OpSeekStart {
			err = cur.SeekStart(ctx)
		} else {
			err = cur.SeekEnd(ctx)
		}
		if err != nil {
			return errResp3(err)
		}
		return StatusOK, nil, nil

	case OpSeekPos:
		cur, err := h.cursor(d)
		if err != nil {
			return errResp3(err)
		}
		block, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		rec, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		if err := cur.SeekPos(ctx, int(block), int(rec)); err != nil {
			return errResp3(err)
		}
		return StatusOK, nil, nil

	case OpCursorEnd:
		handle, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		h.sess.delCursor(uint32(handle))
		return StatusOK, nil, nil

	case OpReadAt:
		shardN, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		block, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		index, err := d.Uvarint()
		if err != nil {
			return errResp3(err)
		}
		readDone := tr.Span("core.read")
		e, err := store.ReadAt(ctx, int(shardN), int(block), int(index))
		readDone()
		if err != nil {
			return errResp3(err)
		}
		// Position-addressed reads are attributed after the fact: the
		// entry's primary log id names the owning namespace.
		if err := h.tenantEntry(e.Shard, e.LogID); err != nil {
			return errResp3(err)
		}
		return StatusOK, encodeEntryHead(e), e.Data

	case OpStats:
		st := store.Stats()
		out := wire.PutUint64(nil, uint64(st.EntriesAppended))
		out = wire.PutUint64(out, uint64(st.BlocksSealed))
		out = wire.PutUint64(out, uint64(st.ClientBytes))
		out = wire.PutUint64(out, uint64(store.End()))
		return StatusOK, out, nil

	case wire.OpStreamAck, wire.OpStreamRebalance:
		return h.streamGroupOp(tr, op, payload)

	default:
		if ext := h.srv.ExtOp; ext != nil {
			if status, resp, handled := ext(op, payload); handled {
				return status, resp, nil
			}
		}
		return errResp3(fmt.Errorf("server: unknown op %d", op))
	}
}

// appendResp maps an append result to a response, surfacing degraded
// completion (the write went through around damaged blocks) as its own
// status so clients can distinguish it from failure.
func appendResp(ts int64, err error) (byte, []byte) {
	if core.IsDegraded(err) {
		return StatusDegraded, wire.PutUint64(nil, uint64(ts))
	}
	if err != nil {
		return errResp(err)
	}
	return StatusOK, wire.PutUint64(nil, uint64(ts))
}

// appendResp3 is appendResp in dispatch's three-value shape.
func appendResp3(ts int64, err error) (byte, []byte, []byte) {
	status, resp := appendResp(ts, err)
	return status, resp, nil
}

func (h *connHandler) cursor(d *Decoder) (logapi.Cursor, error) {
	handle, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	cur, ok := h.sess.cursor(uint32(handle))
	if !ok {
		return nil, fmt.Errorf("server: unknown cursor handle %d", handle)
	}
	return cur, nil
}

// EncodeEntry renders one entry in the protocol's entry-response layout.
// Exported for the cluster follower, which serves OpReadAt from replicated
// sealed history without a live server.
func EncodeEntry(e *core.Entry) []byte { return encodeEntry(e) }

// encodeEntry lays out one entry: shard-local LogID (u16), timestamp, flag
// byte, then the shard ordinal and the shard-local (block, index) position
// as uvarints, the extra member ids, and the data.
func encodeEntry(e *core.Entry) []byte {
	return append(encodeEntryHead(e), e.Data...)
}

// encodeEntryHead lays out everything up to and including the data length
// prefix, so the data itself can be shipped as a separate borrowed chunk
// (WriteFrameChunks): head + e.Data is byte-identical to encodeEntry.
func encodeEntryHead(e *core.Entry) []byte {
	out := wire.PutUint16(nil, e.LogID)
	out = wire.PutUint64(out, uint64(e.Timestamp))
	var flags byte
	if e.Timestamped {
		flags |= EntryTimestamped
	}
	if e.Forced {
		flags |= EntryForced
	}
	out = append(out, flags)
	out = wire.PutUvarint(out, uint64(e.Shard))
	out = wire.PutUvarint(out, uint64(e.Block))
	out = wire.PutUvarint(out, uint64(e.Index))
	out = wire.PutUvarint(out, uint64(len(e.ExtraIDs)))
	for _, id := range e.ExtraIDs {
		out = wire.PutUint16(out, id)
	}
	return wire.PutUvarint(out, uint64(len(e.Data)))
}
