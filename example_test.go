package clio_test

import (
	"context"
	"fmt"
	"io"

	"clio"
)

// Example demonstrates the basic lifecycle through the context-first Log
// interface: create a store over an in-memory write-once device, write
// entries, and read them back.
func Example() {
	store, err := clio.NewMemStore(1, 1024, 4096, clio.Options{})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	var log clio.Log = store

	ctx := context.Background()
	id, err := log.CreateLog(ctx, "/events", 0o644, "example")
	if err != nil {
		panic(err)
	}
	for _, line := range []string{"first", "second", "third"} {
		if _, err := log.Append(ctx, id, []byte(line), clio.AppendOptions{}); err != nil {
			panic(err)
		}
	}

	cur, err := log.OpenCursor(ctx, "/events")
	if err != nil {
		panic(err)
	}
	defer cur.Close()
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		fmt.Println(string(e.Data))
	}
	// Output:
	// first
	// second
	// third
}

// ExampleLogCursor reads a log backwards from the end — "access can be
// provided to the sequence of entries in the file either subsequent to, or
// prior to, any previous point in time".
func ExampleLogCursor() {
	store, _ := clio.NewMemStore(1, 1024, 4096, clio.Options{})
	defer store.Close()
	ctx := context.Background()
	id, _ := store.CreateLog(ctx, "/l", 0, "")
	for i := 1; i <= 3; i++ {
		store.Append(ctx, id, []byte(fmt.Sprintf("entry %d", i)), clio.AppendOptions{})
	}
	cur, _ := store.OpenCursor(ctx, "/l")
	defer cur.Close()
	cur.SeekEnd(ctx)
	for {
		e, err := cur.Prev(ctx)
		if err == io.EOF {
			break
		}
		fmt.Println(string(e.Data))
	}
	// Output:
	// entry 3
	// entry 2
	// entry 1
}

// ExampleStore_CreateLog shows the sublog hierarchy: a log file is also a
// directory of sublogs, and reading a parent includes its sublogs' entries.
func ExampleStore_CreateLog() {
	store, _ := clio.NewMemStore(1, 1024, 4096, clio.Options{})
	defer store.Close()
	ctx := context.Background()
	store.CreateLog(ctx, "/mail", 0o755, "postmaster")
	smith, _ := store.CreateLog(ctx, "/mail/smith", 0o600, "smith")
	jones, _ := store.CreateLog(ctx, "/mail/jones", 0o600, "jones")
	store.Append(ctx, smith, []byte("to smith"), clio.AppendOptions{})
	store.Append(ctx, jones, []byte("to jones"), clio.AppendOptions{})

	names, _ := store.List(ctx, "/mail")
	fmt.Println(names)

	cur, _ := store.OpenCursor(ctx, "/mail") // parent: both sublogs' entries
	defer cur.Close()
	n := 0
	for {
		if _, err := cur.Next(ctx); err == io.EOF {
			break
		}
		n++
	}
	fmt.Println(n, "entries")
	// Output:
	// [jones smith]
	// 2 entries
}

// ExampleLogCursor_seekTime retrieves entries written at or after a moment.
func ExampleLogCursor_seekTime() {
	var now int64
	store, _ := clio.NewMemStore(1, 1024, 4096, clio.Options{
		Now: func() int64 { now += 1000; return now },
	})
	defer store.Close()
	ctx := context.Background()
	id, _ := store.CreateLog(ctx, "/t", 0, "")
	store.Append(ctx, id, []byte("early"), clio.AppendOptions{Timestamped: true})
	cut, _ := store.Append(ctx, id, []byte("middle"), clio.AppendOptions{Timestamped: true})
	store.Append(ctx, id, []byte("late"), clio.AppendOptions{Timestamped: true})

	cur, _ := store.OpenCursor(ctx, "/t")
	defer cur.Close()
	cur.SeekTime(ctx, cut)
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		fmt.Println(string(e.Data))
	}
	// Output:
	// middle
	// late
}

// ExampleStore_AppendMulti writes one entry into several log files at
// once — §2.1's multi-membership ("the logging service allows a log entry
// to be a member of more than one log file").
func ExampleStore_AppendMulti() {
	store, _ := clio.NewMemStore(1, 1024, 4096, clio.Options{})
	defer store.Close()
	ctx := context.Background()
	alerts, _ := store.CreateLog(ctx, "/alerts", 0, "")
	audit, _ := store.CreateLog(ctx, "/audit", 0, "")
	store.AppendMulti(ctx, []clio.ID{alerts, audit}, []byte("disk failure on vol 3"), clio.AppendOptions{})

	for _, path := range []string{"/alerts", "/audit"} {
		cur, _ := store.OpenCursor(ctx, path)
		e, _ := cur.Next(ctx)
		fmt.Printf("%s: %s\n", path, e.Data)
		cur.Close()
	}
	// Output:
	// /alerts: disk failure on vol 3
	// /audit: disk failure on vol 3
}
