package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"clio/internal/faults"
	"clio/internal/wodev"
)

func quickRetry() *faults.RetryPolicy {
	return &faults.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond,
		MaxDelay: time.Microsecond, Sleep: func(time.Duration) {}}
}

func TestDegradedAppendRelocates(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, Retry: quickRetry()}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/deg")
	mustAppend(t, s, id, "clean", AppendOptions{Forced: true})

	// Damage the next unwritten device block: the forced append must
	// complete by relocating past it and report the degradation.
	bad := dev.Written()
	if err := dev.Damage(bad, nil); err != nil {
		t.Fatal(err)
	}
	ts, err := s.Append(id, []byte("degraded"), AppendOptions{Forced: true})
	if err == nil {
		t.Fatal("append over damaged block returned nil, want *DegradedError")
	}
	var d *DegradedError
	if !errors.As(err, &d) {
		t.Fatalf("append over damaged block: %v, want *DegradedError", err)
	}
	if !IsDegraded(err) {
		t.Fatal("IsDegraded(DegradedError) = false")
	}
	if d.Timestamp != ts || ts == 0 {
		t.Fatalf("DegradedError.Timestamp = %d, Append ts = %d", d.Timestamp, ts)
	}
	if len(d.Relocated) != 1 {
		t.Fatalf("Relocated = %v, want one block", d.Relocated)
	}
	if !errors.Is(d.Cause, wodev.ErrCorrupt) {
		t.Fatalf("Cause = %v, want ErrCorrupt", d.Cause)
	}
	// The write completed: both entries are readable.
	got := datas(readAll(t, s, "/deg"))
	if fmt.Sprint(got) != fmt.Sprint([]string{"clean", "degraded"}) {
		t.Fatalf("entries after degraded append: %v", got)
	}
	if s.Stats().DeadBlocks != 1 {
		t.Fatalf("DeadBlocks = %d, want 1", s.Stats().DeadBlocks)
	}
}

func TestTransientAppendFaultsMaskedByRetry(t *testing.T) {
	tc := &testClock{}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	flaky := wodev.NewFlaky(dev, 7)
	flaky.FailAppends(0.4)
	flaky.MaxConsecutive(2) // retry budget of 4 always wins
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, Retry: quickRetry()}
	s, err := New(flaky, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/flap")
	var want []string
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("e%02d", i)
		if _, err := s.Append(id, []byte(p), AppendOptions{Forced: true}); err != nil {
			t.Fatalf("append %d not masked: %v", i, err)
		}
		want = append(want, p)
	}
	if got := datas(readAll(t, s, "/flap")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("entries mismatch after flaky appends")
	}
	if st := flaky.FaultStats(); st.AppendFaults == 0 {
		t.Fatal("flaky injected nothing; test is vacuous")
	}
	if s.Stats().DeadBlocks != 0 {
		t.Fatalf("masked transients must not kill blocks: DeadBlocks = %d", s.Stats().DeadBlocks)
	}
}

func TestTransientReadFaultsMaskedByRetry(t *testing.T) {
	tc := &testClock{}
	reg := faults.NewRegistry()
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, Retry: quickRetry(),
		Faults: reg, CacheBlocks: -1}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/r")
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("e%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	s.FlushCache()
	// Every other read attempt fails: reads still work via retry.
	reg.Enable(FaultReadBlock, wodev.ErrTransient, 2)
	if got := datas(readAll(t, s, "/r")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("entries mismatch under read faults")
	}
	if reg.Fired(FaultReadBlock) != 2 {
		t.Fatalf("read fault point fired %d times, want 2", reg.Fired(FaultReadBlock))
	}
}

func TestTransientExhaustedSealRelocates(t *testing.T) {
	// A block whose writes keep failing past the retry budget is treated
	// like damaged media: invalidated, skipped, append completes degraded.
	tc := &testClock{}
	reg := faults.NewRegistry()
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, Retry: quickRetry(), Faults: reg}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/ex")
	mustAppend(t, s, id, "clean", AppendOptions{Forced: true})

	// Exactly one full retry cycle (4 attempts) fails, then the point is
	// exhausted and the relocated write succeeds.
	reg.Enable(FaultSealWrite, wodev.ErrTransient, 4)
	_, err = s.Append(id, []byte("slid"), AppendOptions{Forced: true})
	var d *DegradedError
	if !errors.As(err, &d) {
		t.Fatalf("append = %v, want *DegradedError", err)
	}
	if !errors.Is(d.Cause, wodev.ErrTransient) {
		t.Fatalf("Cause = %v, want ErrTransient", d.Cause)
	}
	got := datas(readAll(t, s, "/ex"))
	if fmt.Sprint(got) != fmt.Sprint([]string{"clean", "slid"}) {
		t.Fatalf("entries after exhausted seal: %v", got)
	}
	if s.Stats().DeadBlocks != 1 {
		t.Fatalf("DeadBlocks = %d, want 1", s.Stats().DeadBlocks)
	}
}

func TestNVRAMStoreRetried(t *testing.T) {
	tc := &testClock{}
	reg := faults.NewRegistry()
	nv := NewMemNVRAM()
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, Retry: quickRetry(),
		Faults: reg, NVRAM: nv}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/nv")
	reg.Enable(FaultNVRAMStore, faults.New(faults.Transient, "nvram glitch"), 2)
	if _, err := s.Append(id, []byte("durable"), AppendOptions{Forced: true}); err != nil {
		t.Fatalf("forced append with flaky NVRAM: %v", err)
	}
	if reg.Fired(FaultNVRAMStore) != 2 {
		t.Fatalf("nvram fault fired %d, want 2", reg.Fired(FaultNVRAMStore))
	}
	// The staged image made it to NVRAM despite the glitches.
	if _, img, _ := nv.Load(); img == nil {
		t.Fatal("NVRAM empty after retried store")
	}
}

func TestMirroredServiceAccountsReplicaErrors(t *testing.T) {
	tc := &testClock{}
	a := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	b := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	m, err := wodev.NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CacheBlocks: -1}
	s, err := New(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/mir")
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("e%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	// Silently corrupt a sealed block on the primary only: reads must fail
	// over to the replica and the failover must be accounted.
	if err := a.Damage(a.Written()-2, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	s.FlushCache()
	if got := datas(readAll(t, s, "/mir")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("mirror failed to mask damaged primary")
	}
	if m.Failovers() == 0 {
		t.Fatal("no failovers accounted")
	}
	errs := m.ReplicaErrors()
	if errs[0] == 0 || errs[1] != 0 {
		t.Fatalf("ReplicaErrors = %v, want errors only on primary", errs)
	}
}

func TestChainedEntryReadableAcrossRelocatedBlock(t *testing.T) {
	// An entry fragmented across blocks whose continuation target turns out
	// damaged: the seal slides the staged fragment to the next block
	// (§2.3.2), so readers must follow the chain *past* the invalidated
	// block rather than treating it as torn — both live and after recovery.
	tc := &testClock{}
	opt := Options{BlockSize: 512, Degree: 8, NVRAM: NewMemNVRAM(),
		Now: tc.Now, Retry: quickRetry()}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 64})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/chain")
	var want []string
	put := func(n int, forced bool) {
		t.Helper()
		p := fmt.Sprintf("e%06d-%s", n, string(make([]byte, 180)))
		if _, err := s.Append(id, []byte(p), AppendOptions{Forced: forced}); err != nil && !IsDegraded(err) {
			t.Fatalf("append %d: %v", n, err)
		}
		want = append(want, p)
	}
	// ~190-byte entries in 512-byte blocks: most block boundaries split an
	// entry into a continuation chain.
	for i := 0; i < 10; i++ {
		put(i, i%3 == 0)
	}
	if err := dev.Damage(dev.Written(), nil); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		put(i, true)
	}
	if got := datas(readAll(t, s, "/chain")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("live read across relocated block: got %d of %d entries", len(got), len(want))
	}
	// The same holds after a crash and recovery from the media.
	s.Crash()
	s2, err := Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := datas(readAll(t, s2, "/chain")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered read across relocated block: got %d of %d entries", len(got), len(want))
	}
	if s2.Stats().DeadBlocks == 0 && s.Stats().DeadBlocks == 0 {
		t.Fatal("no block was ever relocated; test is vacuous")
	}
}
