// Command cliod runs the Clio log server: it opens (or creates) a
// file-backed log store and serves the log-file protocol over TCP — the
// stand-alone deployment of the paper's extended file server.
//
// Usage:
//
//	cliod -store /var/lib/clio [-config /etc/clio.conf] [-listen :7846]
//	      [-create] [-shards N] [-volume-blocks N] [-checkpoint-interval N]
//	      [-admin :7847] [-slow-trace 100ms] [-force-window 0]
//	      [-compact-interval 0] [-compact-max-live 0.5] [-compact-min-hot 2]
//	      [-drain-timeout 30s]
//
// Configuration is layered: built-in defaults, then the -config file (flat
// key=value lines using the flag spellings), then CLIO_* environment
// variables (CLIO_LISTEN, CLIO_STORE, ...), then explicit flags — later
// layers win. Tenants are declared in the config file only:
//
//	tenant.acme.token = s3cret
//	tenant.acme.max-logs = 1000
//	tenant.acme.max-bytes = 1073741824
//	tenant.acme.max-sessions = 64
//
// With one or more tenants configured the daemon is multi-tenant: sessions
// must authenticate (clio -tenant acme -token s3cret), each tenant's log
// files live under /<name>, and quota-exceeded requests fail with a typed
// status instead of silently dropping. Without tenants the daemon runs open,
// exactly as before.
//
// Lifecycle: SIGHUP re-reads the config layers and applies the reloadable
// keys (tenant table, slow-trace, compaction knobs, drain-timeout) without
// dropping sessions; non-reloadable changes are logged as needing a restart.
// SIGTERM/SIGINT drains: listeners close, in-flight requests and group
// commits finish (bounded by -drain-timeout), stream subscriptions end with
// a final frame, then the store closes cleanly. A second signal forces
// immediate exit.
//
// -force-window controls the group-commit policy: 0 (the default) sizes the
// gather window adaptively from the observed arrival rate and seal latency,
// a positive duration pins a fixed window, and a negative value restores the
// legacy leader/rider queue with no window and no seal pipeline.
//
// -compact-interval enables background space reclamation: every interval,
// each shard copies the live entries of mostly-dead sealed volumes forward,
// demotes the emptied volumes to its cold archive (<shard>/cold) and deletes
// the local volume files, keeping hot storage bounded while reads of demoted
// blocks transparently fetch from the archive. -compact-max-live caps the
// live fraction a volume may have and still be compacted; -compact-min-hot
// is the floor of volumes kept mounted per shard. 0 disables the loop
// (`clio compact` still works offline).
//
// A 1-shard store holds one file per log volume plus the NVRAM sidecar that
// stages the current partial block across restarts (§2.3.1). -create
// -shards N lays the store out as N hash-partitioned volume sequences
// (shard-K subdirectories, each with its own NVRAM sidecar) behind one
// namespace; reopening detects the shard count from the directory.
//
// -admin starts an HTTP endpoint serving /metrics (Prometheus text format),
// /statusz (JSON: volumes, tail state, session and tenant tables), /tracez
// (recent and slow request traces) and /debug/pprof. Requests slower than
// -slow-trace are captured with their per-layer spans (server dispatch,
// group commit, device write).
//
// Replicated cluster mode — -peers switches the node into per-shard
// leader/follower replication:
//
//	cliod -store /var/lib/clio -listen :7846 -create \
//	      -peers b:7846,c:7846 -advertise a:7846 -role leader [-quorum 2]
//
// The leader orders every append through its group-commit path and acks a
// forced append only after a quorum of replicas has durably staged it;
// followers serve reads of sealed history and redirect writes to the
// leader. `clio promote` turns a follower into the leader after a failure;
// `clio status` shows each node's role, term and replication lag. In
// cluster mode /statusz gains a "cluster" section and /metrics the
// clio_cluster_* instruments. Volume allocation is disabled (capacity is
// the initial volume), background compaction is rejected (the compactor
// deletes volume files a replica must mirror exactly), and shutdown never
// seals the staged tail — a replica must not write blocks its leader did
// not order. Tenants and -slow-trace apply to the leader's embedded server.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"clio"
	"clio/internal/cluster"
	"clio/internal/config"
	"clio/internal/obs"
	"clio/internal/server"
)

// buildConfig merges the config layers in order — defaults, file,
// environment, flags — and validates the result. It is re-run verbatim on
// SIGHUP, so a reload sees exactly what a restart would.
func buildConfig(confPath string) (*config.Config, error) {
	cfg := config.Default()
	if confPath != "" {
		if err := cfg.LoadFile(confPath); err != nil {
			return nil, err
		}
	}
	if err := cfg.ApplyEnv(os.LookupEnv); err != nil {
		return nil, err
	}
	var ferr error
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "config" || ferr != nil {
			return
		}
		ferr = cfg.Set(f.Name, f.Value.String())
	})
	if ferr != nil {
		return nil, ferr
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// serverTenants converts the config's tenant table to the server's shape.
func serverTenants(cfg *config.Config) []server.Tenant {
	var out []server.Tenant
	for _, t := range cfg.TenantList() {
		out = append(out, server.Tenant{
			Name: t.Name, Token: t.Token,
			MaxLogs: t.MaxLogs, MaxBytes: t.MaxBytes, MaxSessions: t.MaxSessions,
		})
	}
	return out
}

// reloadable is the subset of live daemon state a SIGHUP may retune.
type reloadable struct {
	tracer          *obs.Tracer // nil without -admin
	drainTimeout    atomic.Int64
	compactInterval atomic.Int64
	compactMaxLive  atomic.Uint64 // float64 bits
	compactMinHot   atomic.Int64
	compactPoke     chan struct{} // nil in cluster mode
	setTenants      func([]server.Tenant)
}

func (r *reloadable) apply(cfg *config.Config) {
	r.drainTimeout.Store(int64(cfg.DrainTimeout))
	r.compactInterval.Store(int64(cfg.CompactInterval))
	r.compactMaxLive.Store(math.Float64bits(cfg.CompactMaxLive))
	r.compactMinHot.Store(int64(cfg.CompactMinHot))
	r.tracer.SetSlowThreshold(cfg.SlowTrace)
	if r.setTenants != nil {
		r.setTenants(serverTenants(cfg))
	}
	if r.compactPoke != nil {
		select {
		case r.compactPoke <- struct{}{}:
		default:
		}
	}
}

// reload re-merges the config layers and applies what may change at
// runtime, warning about the rest. The old config stays in force when the
// new one fails to load or validate — a broken edit must not take down a
// running daemon.
func reload(confPath string, cur *config.Config, r *reloadable) *config.Config {
	next, err := buildConfig(confPath)
	if err != nil {
		log.Printf("cliod: reload rejected, keeping previous config: %v", err)
		return cur
	}
	changed := cur.Diff(next)
	if len(changed) == 0 {
		log.Print("cliod: reload: no changes")
		return cur
	}
	applied := changed[:0:0]
	for _, key := range changed {
		if key == "tenants" || config.Reloadable(key) {
			applied = append(applied, key)
		} else {
			log.Printf("cliod: reload: %s changed but needs a restart to apply", key)
		}
	}
	if len(applied) > 0 {
		r.apply(next)
		log.Printf("cliod: reloaded: %s", strings.Join(applied, ", "))
	}
	return next
}

func main() {
	def := config.Default()
	confPath := flag.String("config", "", "config file (flat key=value lines; flags and CLIO_* env override it)")
	flag.String("store", "", "store directory (required)")
	flag.String("listen", def.Listen, "TCP listen address")
	flag.Bool("create", false, "create a new store instead of opening one")
	flag.Int("shards", 0, "hash partitions for -create (reopen detects; >0 asserts the count)")
	flag.Int("volume-blocks", def.VolumeBlocks, "capacity of each volume file in blocks")
	flag.Int("block-size", def.BlockSize, "block size in bytes")
	flag.Bool("sync", false, "fsync every sealed block")
	flag.Int("checkpoint-interval", 0, "emit a recovery checkpoint every N sealed blocks per shard, and on clean shutdown (0 disables; recovery then reconstructs from scratch)")
	flag.String("admin", "", "HTTP admin listen address (/metrics, /statusz, /tracez, /debug/pprof); empty disables")
	flag.Duration("slow-trace", def.SlowTrace, "requests at least this slow are kept in /tracez's slow ring (0 keeps everything)")
	flag.String("peers", "", "comma-separated replica addresses; enables cluster mode")
	flag.String("advertise", "", "address peers and redirected clients reach this node at (default -listen)")
	flag.String("role", def.Role, "initial cluster role: leader or follower")
	flag.Int("quorum", def.Quorum, "replicas (leader included) that must stage a write before it is acked")
	flag.Duration("force-window", 0, "group-commit gather window: 0 sizes it adaptively from the arrival rate, >0 pins a fixed window, <0 restores the legacy leader/rider queue (no window, no seal pipeline)")
	flag.Duration("compact-interval", 0, "run a compaction pass on every shard this often; 0 disables background reclamation")
	flag.Float64("compact-max-live", 0, "max fraction of live blocks for a volume to be compacted (0 = default 0.5)")
	flag.Int("compact-min-hot", 0, "minimum volumes kept mounted per shard (0 = default 2)")
	flag.Duration("drain-timeout", def.DrainTimeout, "how long a SIGTERM drain lets in-flight requests and group commits finish before forcing connections closed")
	flag.Parse()

	cfg, err := buildConfig(*confPath)
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}

	// Registered before the store opens: a signal during startup is held in
	// the buffer (2 deep: one drain trigger plus one force-exit) until the
	// lifecycle goroutine drains it, never the runtime's default action.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)

	opts := clio.DirOptions{VolumeBlocks: cfg.VolumeBlocks, SyncEvery: cfg.Sync, Shards: cfg.Shards}
	opts.BlockSize = cfg.BlockSize
	opts.CheckpointInterval = cfg.CheckpointInterval
	opts.CommitWindow = cfg.ForceWindow
	if cfg.Peers != "" {
		runCluster(cfg, *confPath, opts, sig)
		return
	}
	var st *clio.Store
	if cfg.Create {
		st, err = clio.CreateStore(cfg.Store, opts)
	} else {
		st, err = clio.OpenStore(cfg.Store, opts)
	}
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	rep := st.LastRecovery()
	log.Printf("cliod: store %s open: %d shards, %d data blocks, %d catalog records, tails restored=%d, checkpoints used=%d/%d",
		cfg.Store, st.Shards(), rep.SealedBlocks, rep.CatalogEntries, rep.TailsRestored, rep.CheckpointsUsed, st.Shards())
	if rep.VolumesRelocated > 0 || rep.VolumesDemoted > 0 {
		log.Printf("cliod: compaction state: %d volumes relocated, %d demoted cold", rep.VolumesRelocated, rep.VolumesDemoted)
	}

	srv := server.NewStore(st)
	srv.Logf = log.Printf
	if tenants := serverTenants(cfg); len(tenants) > 0 {
		srv.SetTenants(tenants)
		log.Printf("cliod: multi-tenant: %d tenants configured", len(tenants))
	}

	rl := &reloadable{compactPoke: make(chan struct{}, 1), setTenants: srv.SetTenants}

	// Background reclamation: one compaction pass across every shard per
	// tick. CompactOnce serializes with itself per shard, and a pass only
	// examines volumes present when it starts, so a slow pass simply delays
	// the next tick rather than piling up. The loop re-reads its knobs from
	// rl each round, so a SIGHUP can retune, enable or disable it live.
	compactCtx, stopCompactLoop := context.WithCancel(context.Background())
	compactDone := make(chan struct{})
	go func() {
		defer close(compactDone)
		for {
			var tick <-chan time.Time
			var timer *time.Timer
			if iv := time.Duration(rl.compactInterval.Load()); iv > 0 {
				timer = time.NewTimer(iv)
				tick = timer.C
			}
			select {
			case <-compactCtx.Done():
				if timer != nil {
					timer.Stop()
				}
				return
			case <-rl.compactPoke:
				if timer != nil {
					timer.Stop()
				}
				continue
			case <-tick:
			}
			copt := clio.CompactOptions{
				MaxLiveFraction: math.Float64frombits(rl.compactMaxLive.Load()),
				MinHotVolumes:   int(rl.compactMinHot.Load()),
			}
			res, err := st.CompactOnce(compactCtx, copt)
			if err != nil {
				log.Printf("cliod: compact: %v", err)
			}
			if res.VolumesReloc > 0 || res.VolumesDemoted > 0 {
				log.Printf("cliod: compacted %d volumes (%d entries, %d bytes relocated), %d demoted cold",
					res.VolumesReloc, res.EntriesCopied, res.BytesCopied, res.VolumesDemoted)
			}
		}
	}()
	if cfg.CompactInterval > 0 {
		log.Printf("cliod: background compaction every %s", cfg.CompactInterval)
	}

	var adminSrv *http.Server
	if cfg.Admin != "" {
		reg := obs.NewRegistry()
		st.RegisterMetrics(reg)
		st.RegisterStreamMetrics(reg)
		srv.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
		srv.Tracer = obs.NewTracer(256, cfg.SlowTrace)
		rl.tracer = srv.Tracer
		mux := obs.NewAdminMux(reg, srv.Tracer, func() any {
			return map[string]any{
				"shards": st.Status(),
				"server": srv.Status(),
			}
		})
		aln, err := net.Listen("tcp", cfg.Admin)
		if err != nil {
			log.Fatalf("cliod: admin listen: %v", err)
		}
		log.Printf("cliod: admin on http://%s", aln.Addr())
		adminSrv = &http.Server{Handler: mux}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("cliod: admin: %v", err)
			}
		}()
	}
	rl.apply(cfg)

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		log.Fatalf("cliod: listen: %v", err)
	}
	log.Printf("cliod: serving on %s", ln.Addr())

	// Lifecycle: SIGHUP reloads, the first TERM/INT starts a bounded
	// graceful drain, a second one forces immediate exit.
	var draining atomic.Bool
	drained := make(chan struct{})
	go func() {
		for s := range sig {
			if s == syscall.SIGHUP {
				cfg = reload(*confPath, cfg, rl)
				continue
			}
			if draining.Swap(true) {
				log.Printf("cliod: %s during drain, exiting immediately", s)
				os.Exit(1)
			}
			dt := time.Duration(rl.drainTimeout.Load())
			log.Printf("cliod: %s: draining (in-flight requests get up to %s)", s, dt)
			go func() {
				defer close(drained)
				ctx, cancel := context.WithTimeout(context.Background(), dt)
				defer cancel()
				if adminSrv != nil {
					adminSrv.Shutdown(ctx)
				}
				if err := srv.Shutdown(ctx); err != nil {
					log.Printf("cliod: drain incomplete after %s, closing remaining connections: %v", dt, err)
				}
			}()
		}
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, server.ErrServerClosed) {
		log.Printf("cliod: serve: %v", err)
	}
	if draining.Load() {
		<-drained
	}
	stopCompactLoop()
	<-compactDone
	if err := st.Close(); err != nil {
		log.Printf("cliod: close: %v", err)
	}
	log.Print("cliod: store closed, exiting")
}

// runCluster runs the node as a replication cluster member: the store is
// opened as raw devices (a follower holds media its leader writes; only a
// leader — initial or promoted — mounts a service over them).
func runCluster(cfg *config.Config, confPath string, opts clio.DirOptions, sig chan os.Signal) {
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		log.Fatalf("cliod: listen: %v", err)
	}
	advertise := cfg.Advertise
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	// -create provisions this node's volume files whatever its role; only
	// the leader formats store metadata — a follower's media is written
	// solely by replication so it mirrors the leader's ordering exactly.
	raw, err := clio.OpenRaw(cfg.Store, opts, cfg.Create)
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	var tracer *obs.Tracer
	if cfg.Admin != "" {
		tracer = obs.NewTracer(256, cfg.SlowTrace)
	}
	node, err := cluster.New(cluster.Config{
		NodeID:  advertise,
		Peers:   strings.Split(cfg.Peers, ","),
		Quorum:  cfg.Quorum,
		Devices: raw.Devices,
		NVRAMs:  raw.NVRAMs,
		Opts:    raw.Opts,
		Create:  cfg.Create && cfg.Role == "leader",
		// Persist term arbitration next to the store: a restarted node must
		// remember the highest term it has seen, or a stale leader could be
		// mistaken for the legitimate one after a full-cluster restart.
		TermPath: filepath.Join(cfg.Store, "term.clio"),
		Reset:    raw.Reset,
		Logf:     log.Printf,
		Tracer:   tracer,
		Tenants:  serverTenants(cfg),
	})
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	if err := node.Start(cfg.Role == "leader"); err != nil {
		log.Fatalf("cliod: %v", err)
	}
	if cfg.Role == "leader" {
		if rep, ok := node.PromotionRecovery(); ok {
			log.Printf("cliod: store %s recovered: %d data blocks, %d replayed past checkpoints, %d tails restored",
				cfg.Store, rep.SealedBlocks, rep.BlocksReplayed, rep.TailsRestored)
		}
	}
	var adminSrv *http.Server
	if cfg.Admin != "" {
		reg := obs.NewRegistry()
		node.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
		mux := obs.NewAdminMux(reg, tracer, func() any {
			s := map[string]any{"cluster": node.Status()}
			if st := node.Store(); st != nil {
				s["shards"] = st.Status()
			}
			return s
		})
		aln, err := net.Listen("tcp", cfg.Admin)
		if err != nil {
			log.Fatalf("cliod: admin listen: %v", err)
		}
		log.Printf("cliod: admin on http://%s", aln.Addr())
		adminSrv = &http.Server{Handler: mux}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("cliod: admin: %v", err)
			}
		}()
	}
	rl := &reloadable{tracer: tracer, setTenants: node.SetTenants}
	rl.apply(cfg)
	var stopping atomic.Bool
	go func() {
		for s := range sig {
			if s == syscall.SIGHUP {
				cfg = reload(confPath, cfg, rl)
				continue
			}
			if stopping.Swap(true) {
				log.Printf("cliod: %s during shutdown, exiting immediately", s)
				os.Exit(1)
			}
			// A replica stops rather than drains: every acked mutation is
			// already quorum-staged, and the media must stay exactly as the
			// leader ordered it. Handing leadership off is `clio promote`'s
			// job, not SIGTERM's.
			log.Printf("cliod: %s: shutting down (replica media stays exactly as ordered)", s)
			if adminSrv != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				adminSrv.Shutdown(ctx)
				cancel()
			}
			node.Kill()
		}
	}()
	log.Printf("cliod: %s serving as cluster %s on %s (peers %s, quorum %d)",
		advertise, cfg.Role, ln.Addr(), cfg.Peers, cfg.Quorum)
	if err := node.Serve(ln); err != nil && !stopping.Load() {
		log.Printf("cliod: serve: %v", err)
	}
}
