package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"clio/internal/archive"
	"clio/internal/scrub"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// TestCompactSoak drives many compaction cycles over a service with churning
// garbage, concurrent readers and writers, and injected crashes, checking
// the two reclamation invariants: no acked entry is ever lost, and hot
// storage stays bounded while logical history grows.
func TestCompactSoak(t *testing.T) {
	cycles := 6
	if testing.Short() {
		cycles = 3
	}
	rng := rand.New(rand.NewSource(7))
	h := newColdHarness(16)
	copt := CompactOptions{MaxLiveFraction: 0.95, MinHotVolumes: 2}
	s := h.open(t, copt)
	keep := mustCreate(t, s, "/keep")

	var acked []string
	stages := []string{"collected", "forced", "committed", "archived", "demoted"}
	maxHot := 0

	for cycle := 0; cycle < cycles; cycle++ {
		// Churn: a per-cycle log that dominates the volumes written this
		// cycle and is retired before compaction, leaving mostly garbage.
		churnPath := fmt.Sprintf("/churn-%d", cycle)
		churn := mustCreate(t, s, churnPath)
		startVols := len(s.Volumes())
		for i := 0; len(s.Volumes()) < startVols+3; i++ {
			if i > 10000 {
				t.Fatal("could not fill volumes")
			}
			if i%6 == 0 {
				p := fmt.Sprintf("keep-c%d-%04d-%s", cycle, i, "kkkkkkkkkkkkkkkk")
				mustAppend(t, s, keep, p, AppendOptions{})
				acked = append(acked, p)
			} else {
				mustAppend(t, s, churn, fmt.Sprintf("churn-%04d-%s", i, "cccccccccccccccc"), AppendOptions{})
			}
		}
		if err := s.Force(); err != nil {
			t.Fatal(err)
		}
		if err := s.Retire(churnPath); err != nil {
			t.Fatal(err)
		}

		if cycle%2 == 1 {
			// Crash cycle: kill the compaction at a rotating stage, then
			// reopen on whatever devices survived.
			stage := stages[(cycle/2)%len(stages)]
			boom := errors.New("soak crash")
			s.compactHook = func(st string) error {
				if st == stage && rng.Intn(2) == 0 {
					return boom
				}
				return nil
			}
			if _, err := s.CompactOnce(context.Background(), CompactOptions{}); err != nil && !errors.Is(err, boom) {
				t.Fatalf("cycle %d: CompactOnce: %v", cycle, err)
			}
			s.Crash()
			s = h.open(t, copt)
		} else {
			// Concurrent cycle: compaction races a live appender and reader.
			var wg sync.WaitGroup
			stop := make(chan struct{})
			var appErr error
			var appended []string
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					p := fmt.Sprintf("keep-live-c%d-%04d", cycle, i)
					if _, err := s.Append(keep, []byte(p), AppendOptions{}); err != nil && !IsDegraded(err) {
						appErr = err
						return
					}
					appended = append(appended, p)
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, err := s.OpenCursor("/keep")
					if err != nil {
						return
					}
					for {
						if _, err := c.Next(); err != nil {
							break
						}
					}
				}
			}()
			if _, err := s.CompactOnce(context.Background(), CompactOptions{}); err != nil {
				t.Fatalf("cycle %d: concurrent CompactOnce: %v", cycle, err)
			}
			close(stop)
			wg.Wait()
			if appErr != nil {
				t.Fatalf("cycle %d: concurrent append: %v", cycle, appErr)
			}
			acked = append(acked, appended...)
			if err := s.Force(); err != nil {
				t.Fatal(err)
			}
		}

		// Invariant: every acked entry readable, in order, exactly once.
		ents := readAll(t, s, "/keep")
		if got := datas(ents); fmt.Sprint(got) != fmt.Sprint(acked) {
			for i := 0; i < len(got) && i < len(acked); i++ {
				if got[i] != acked[i] {
					t.Logf("first divergence at %d: got %q (block %d rec %d) want %q",
						i, got[i], ents[i].Block, ents[i].Index, acked[i])
					break
				}
			}
			t.Fatalf("cycle %d: /keep diverged: got %d entries, want %d",
				cycle, len(got), len(acked))
		}
		if n := len(s.Volumes()); n > maxHot {
			maxHot = n
		}
	}

	// Hot storage is bounded: far fewer volumes stay mounted than were
	// ever written.
	total := len(h.devs)
	if total < 8 {
		t.Fatalf("soak wrote only %d volumes", total)
	}
	if maxHot >= total {
		t.Errorf("hot set never shrank: max hot %d of %d total", maxHot, total)
	}
	if demoted := s.Stats().VolumesDemoted; demoted < 3 {
		t.Errorf("only %d volumes demoted over %d cycles", demoted, cycles)
	}

	// Cold read-through still serves every demoted block, and the full
	// physical history (hot + cold) scrubs clean.
	s.SetCacheCapacity(64)
	if cv := s.cmpView.Load(); cv != nil {
		for _, v := range cv.vols {
			if !v.Demoted {
				continue
			}
			for g := v.Start; g < v.end(); g++ {
				if _, err := s.readBlock(g); err != nil {
					t.Fatalf("cold block %d unreadable: %v", g, err)
				}
			}
		}
	}
	coldDevs, err := archive.Restore(context.Background(), h.be)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint32]bool)
	var all []wodev.Device
	for _, v := range s.Volumes() {
		all = append(all, v.Dev)
		seen[v.Hdr.Index] = true
	}
	for _, d := range coldDevs {
		hdr, err := volume.ReadHeader(d)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[hdr.Index] {
			all = append(all, d)
		}
	}
	rep, err := scrub.Volumes(all, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Errorf("soak scrub found problems: %v", rep.Problems)
	}

	// One final append after everything settles.
	mustAppend(t, s, keep, "soak-done", AppendOptions{})
	if err := s.Force(); err != nil {
		t.Fatal(err)
	}
	c, err := s.OpenCursor("/keep")
	if err != nil {
		t.Fatal(err)
	}
	c.SeekEnd()
	e, err := c.Prev()
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if e == nil || string(e.Data) != "soak-done" {
		t.Errorf("final append not last entry")
	}
	s.Close()
}
