package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"clio/internal/blockfmt"
	"clio/internal/core"
	"clio/internal/server"
	"clio/internal/volume"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// folDedupWindow mirrors the server's per-session duplicate-suppression
// window size, so a promoted follower holds the same replay horizon the
// dead leader did.
const folDedupWindow = 128

// folSession is one session's replicated duplicate-suppression state.
type folSession struct {
	maxSeq uint64
	window map[uint64]wire.ReplResp
	order  []uint64 // FIFO for eviction
}

// followerState is everything a follower accumulates from the leader's
// stream: device writes land directly on the node's devices, tail images on
// its NVRAMs, and session acks here. It is fenced (frozen) and drained
// before a promotion recovers a live store over the same devices.
type followerState struct {
	n       *Node
	frozen  atomic.Bool
	applied atomic.Uint64
	resets  atomic.Int64

	// wg counts connection handlers that may touch devices; Promote waits
	// it out after freezing. mu guards sessions, vsets and the frozen/Add
	// handoff in serveFollowerConn.
	wg sync.WaitGroup
	mu sync.Mutex

	sessions map[uint64]*folSession
	vsets    []*volume.Set // lazy read-only views per shard
}

func newFollowerState(n *Node) *followerState {
	return &followerState{
		n:        n,
		sessions: make(map[uint64]*folSession),
		vsets:    make([]*volume.Set, len(n.cfg.Devices)),
	}
}

// serveFollowerConn handles one connection on a follower. The same
// listener serves both sides of the node's life: a leader's replication
// stream (after an OpReplHello) and ordinary clients, who get sealed reads,
// session hellos answered from replicated state, and one-round-trip
// StatusNotLeader redirects for everything that needs the leader.
func (n *Node) serveFollowerConn(conn net.Conn) {
	n.mu.Lock()
	fol := n.fol
	n.mu.Unlock()
	if fol == nil {
		return // role transition in flight; the client will reconnect
	}
	fol.mu.Lock()
	if fol.frozen.Load() {
		fol.mu.Unlock()
		return
	}
	fol.wg.Add(1)
	fol.mu.Unlock()
	detached := false
	defer func() {
		if !detached {
			fol.wg.Done()
		}
	}()

	leaderConn := false
	var connTerm uint64 // term the stream handshake was accepted at
	var connGen uint64  // stream generation the handshake was accepted at
	var sessID uint64
	for {
		op, seq, trace, payload, err := server.ReadFrame(conn)
		if err != nil {
			return
		}
		var status byte
		var resp []byte
		fatal := false
		switch op {
		case wire.OpReplHello:
			status, resp, leaderConn, connTerm, connGen = n.folHello(payload)
		case wire.OpReplWrite, wire.OpReplInvalidate, wire.OpReplTail,
			wire.OpReplTailClear, wire.OpReplAck, wire.OpReplSessions,
			wire.OpReplBase, wire.OpReplReset:
			if !leaderConn {
				status, resp, fatal = server.StatusErr, server.PutString(nil, "cluster: replication frame before handshake"), true
				break
			}
			// Term arbitration must hold for the connection's whole life, not
			// just the handshake: if a newer leader has handshaken since, this
			// stream belongs to a deposed leader that may not know it yet
			// (asymmetric partition), and applying its frames would diverge
			// the write-once media. Refusing fatally forces it back through
			// folHello, which tells it the higher term so it steps down.
			if cur := n.Term(); connTerm < cur {
				status, resp, fatal = server.StatusErr, server.PutString(nil,
					fmt.Sprintf("cluster: stale leader stream (handshake term %d, highest seen %d)", connTerm, cur)), true
				break
			}
			// One stream at a time, same leader included: a reconnect's
			// handshake supersedes this connection, and any frame still in
			// flight here (buffered behind a stall) would race the new
			// session's catch-up — a stale tail image applying late regresses
			// the staged tail, and a stale block write could double-append.
			// The generation check runs under applyMu so it is atomic with
			// the apply itself.
			n.applyMu.Lock()
			if connGen != n.streamGen.Load() {
				n.applyMu.Unlock()
				n.logf("cluster: dropping superseded replication stream (generation %d, newest %d)", connGen, n.streamGen.Load())
				status, resp, fatal = server.StatusErr, server.PutString(nil,
					"cluster: superseded replication stream (a newer stream has handshaken)"), true
				break
			}
			err := fol.apply(op, payload)
			n.applyMu.Unlock()
			if err != nil {
				// An out-of-sync stream cannot be patched mid-flight; drop
				// the connection and let the leader's reconnect catch up.
				// Log locally too: the leader's sender often loses the
				// response to the connection teardown.
				n.logf("cluster: dropping replication stream: %v", err)
				status, resp, fatal = server.StatusErr, server.PutString(nil, err.Error()), true
				break
			}
			if seq > 0 {
				for {
					cur := fol.applied.Load()
					if seq <= cur || fol.applied.CompareAndSwap(cur, seq) {
						break
					}
				}
			}
			status = server.StatusOK
		case wire.OpPromote:
			// This handler is about to tear down the very state that its
			// drain fence waits on, so it steps out of the accounting
			// first; its connection is exempted from the fence's sweep so
			// the response still goes out.
			detached = true
			fol.wg.Done()
			term, err := n.promoteExcept(conn)
			if err != nil {
				status, resp = server.StatusErr, server.PutString(nil, err.Error())
			} else {
				status, resp = server.StatusOK, wire.PutUint64(nil, term)
			}
			server.WriteFrame(conn, status, seq, trace, resp)
			return
		case wire.OpReplStatus:
			status, resp = server.StatusOK, n.statusPayload()
		case server.OpHello:
			status, resp, sessID = n.folClientHello(fol, payload)
		case server.OpPing:
			status = server.StatusOK
		case server.OpReadAt:
			status, resp = fol.handleReadAt(payload)
		default:
			// Everything else needs the leader: answer with its address so
			// the client redirects in one round trip.
			_ = sessID
			n.mu.Lock()
			leader := n.leaderAddr
			n.mu.Unlock()
			status, resp = server.StatusNotLeader, server.PutString(nil, leader)
		}
		if err := server.WriteFrame(conn, status, seq, trace, resp); err != nil {
			return
		}
		if fatal {
			return
		}
	}
}

// folHello answers a leader's stream handshake: term arbitration, geometry
// check, then the per-device extents the leader needs to compute the
// missing suffix. The returned term and stream generation are the ones the
// stream was accepted at; the connection handler re-checks both against the
// node's per frame.
func (n *Node) folHello(payload []byte) (byte, []byte, bool, uint64, uint64) {
	h, err := wire.DecodeReplHello(payload)
	if err != nil {
		return server.StatusErr, server.PutString(nil, err.Error()), false, 0, 0
	}
	n.mu.Lock()
	refuse := func(reason string) (byte, []byte, bool, uint64, uint64) {
		resp := &wire.ReplHelloResp{Accept: false, Term: n.term, Reason: reason}
		n.mu.Unlock()
		return server.StatusOK, resp.Encode(nil), false, 0, 0
	}
	if int(h.Shards) != len(n.devs) || int(h.BlockSize) != n.devs[0][0].BlockSize() {
		return refuse(fmt.Sprintf("geometry mismatch: leader %d shards x %dB blocks, local %d x %dB",
			h.Shards, h.BlockSize, len(n.devs), n.devs[0][0].BlockSize()))
	}
	if h.Term < n.term {
		return refuse(fmt.Sprintf("stale term %d, highest seen %d", h.Term, n.term))
	}
	if h.Term == n.term && n.leaderAddr != "" && n.leaderAddr != h.LeaderAddr {
		// One leader per term: a second claimant of the current term is a
		// same-term split brain (two concurrent promotions, or an operator
		// double-start), and following both would interleave two orderings
		// onto the same devices. The rivals resolve it between themselves
		// (leaderExtOp's arbitration); this node keeps the leader it has.
		return refuse(fmt.Sprintf("already following %s at term %d", n.leaderAddr, n.term))
	}
	if h.Term > n.term {
		// Persist before accepting: once this stream lands frames, a restart
		// must never regress below the term those frames were ordered under.
		if err := n.persistTerm(h.Term); err != nil {
			return refuse(fmt.Sprintf("cannot persist term %d: %v", h.Term, err))
		}
		n.term = h.Term
	}
	n.epoch = h.Epoch
	n.leaderAddr = h.LeaderAddr
	term := n.term
	n.mu.Unlock()

	// Supersede every older stream before snapshotting extents: bump the
	// generation (frames from older connections are refused from here on),
	// then pass through applyMu so an apply that was already past its
	// generation check finishes first. Without the barrier, an old stream's
	// in-flight frame could land after the snapshot below and the leader's
	// catch-up would compute its suffix against stale extents.
	gen := n.streamGen.Add(1)
	n.applyMu.Lock()
	n.applyMu.Unlock() //lint:ignore SA2001 empty section is the barrier

	n.mu.Lock()
	resp := &wire.ReplHelloResp{Accept: true, Term: term}
	for si, shardDevs := range n.devs {
		for di, dev := range shardDevs {
			st := wire.ReplDevState{Shard: uint32(si), Dev: uint32(di), Written: uint64(dev.Written())}
			if st.Written > 0 {
				st.LastCRC = blockCRC(dev, int(st.Written)-1)
			}
			resp.Devs = append(resp.Devs, st)
		}
	}
	n.mu.Unlock()
	return server.StatusOK, resp.Encode(nil), true, term, gen
}

// folClientHello answers a client session attach from replicated state: the
// cluster epoch (so the client's session survives failover) and the
// session's replicated high-water sequence.
func (n *Node) folClientHello(fol *followerState, payload []byte) (byte, []byte, uint64) {
	d := server.NewDecoder(payload)
	id, err := d.Int64()
	if err != nil {
		return server.StatusErr, server.PutString(nil, err.Error()), 0
	}
	n.mu.Lock()
	epoch := n.epoch
	n.mu.Unlock()
	if epoch == 0 {
		// Nothing replicated yet: there is no epoch to promise a session
		// under. Refuse; the client rotates to another node.
		return server.StatusErr, server.PutString(nil, "cluster: follower has no leader yet"), 0
	}
	var maxSeq uint64
	fol.mu.Lock()
	if s := fol.sessions[uint64(id)]; s != nil {
		maxSeq = s.maxSeq
	}
	fol.mu.Unlock()
	out := wire.PutUint64(nil, epoch)
	out = wire.PutUint64(out, maxSeq)
	return server.StatusOK, out, uint64(id)
}

// apply dispatches one replication frame onto local state. Every path is
// idempotent, because catch-up and live streaming deliberately overlap.
func (fol *followerState) apply(op byte, payload []byte) error {
	if fol.frozen.Load() {
		return errors.New("cluster: follower fenced for promotion")
	}
	v, err := wire.DecodeRepl(op, payload)
	if err != nil {
		return err
	}
	switch m := v.(type) {
	case *wire.ReplWrite:
		return fol.applyWrite(m)
	case *wire.ReplInvalidate:
		dev, err := fol.n.device(m.Shard, m.Dev)
		if err != nil {
			return err
		}
		return dev.Invalidate(int(m.Index))
	case *wire.ReplTail:
		nv, err := fol.nvram(m.Shard)
		if err != nil {
			return err
		}
		return nv.Store(int(m.Global), m.Image)
	case *wire.ReplTailClear:
		nv, err := fol.nvram(m.Shard)
		if err != nil {
			return err
		}
		return nv.Clear()
	case *wire.ReplAck:
		fol.recordAck(m.Session, m.Seq, m.Status, m.Resp)
		return nil
	case *wire.ReplSessions:
		for i := range m.Sessions {
			fol.installSession(&m.Sessions[i])
		}
		return nil
	case *wire.ReplBase:
		if m.Pos > 0 {
			for {
				cur := fol.applied.Load()
				if m.Pos <= cur || fol.applied.CompareAndSwap(cur, m.Pos) {
					break
				}
			}
		}
		return nil
	case *wire.ReplReset:
		return fol.applyReset(m)
	}
	return fmt.Errorf("cluster: unexpected replication op 0x%x", op)
}

// applyWrite lands one block image: a duplicate below the write point is
// verified byte-identical and skipped, the block at the write point is
// appended, and anything past it is a gap — the stream is broken and must
// restart with a catch-up.
func (fol *followerState) applyWrite(w *wire.ReplWrite) error {
	dev, err := fol.n.device(w.Shard, w.Dev)
	if err != nil {
		return err
	}
	written := uint64(dev.Written())
	switch {
	case w.Index < written:
		// Catch-up and live streaming deliberately overlap, so duplicates
		// are expected — but only byte-identical ones. A conflicting image
		// at an already-written index is divergence (a stale leader, or a
		// bug upstream); swallowing it would mask corruption, so break the
		// stream and let the reconnect's handshake-level probe resolve it.
		local := make([]byte, dev.BlockSize())
		rerr := dev.ReadBlock(int(w.Index), local)
		switch {
		case errors.Is(rerr, wodev.ErrInvalidated):
			return nil // the write was superseded by a replicated invalidate
		case rerr != nil:
			return fmt.Errorf("cluster: verify duplicate block %d (shard %d dev %d): %w",
				w.Index, w.Shard, w.Dev, rerr)
		case !bytes.Equal(local, w.Data):
			return fmt.Errorf("cluster: divergent duplicate: block %d (shard %d dev %d) differs from the replicated image",
				w.Index, w.Shard, w.Dev)
		}
		return nil
	case w.Index > written:
		return fmt.Errorf("cluster: replication gap: block %d arrived with only %d written (shard %d dev %d)",
			w.Index, written, w.Shard, w.Dev)
	}
	if _, err := dev.AppendBlock(w.Data); err != nil {
		return err
	}
	if w.Index == 0 {
		// A new volume header: the cached read-only view is stale.
		fol.dropVset(int(w.Shard))
	}
	return nil
}

// applyReset swaps in a blank device for a diverged one via the node's
// Reset hook.
func (fol *followerState) applyReset(m *wire.ReplReset) error {
	n := fol.n
	if n.cfg.Reset == nil {
		return fmt.Errorf("cluster: shard %d dev %d diverged and no Reset hook is configured", m.Shard, m.Dev)
	}
	fresh, err := n.cfg.Reset(int(m.Shard), int(m.Dev))
	if err != nil {
		return fmt.Errorf("cluster: reset shard %d dev %d: %w", m.Shard, m.Dev, err)
	}
	n.mu.Lock()
	if int(m.Shard) >= len(n.devs) || int(m.Dev) >= len(n.devs[m.Shard]) {
		n.mu.Unlock()
		return fmt.Errorf("cluster: no device (shard %d, dev %d)", m.Shard, m.Dev)
	}
	n.devs[m.Shard][m.Dev] = fresh
	n.mu.Unlock()
	fol.dropVset(int(m.Shard))
	fol.resets.Add(1)
	n.logf("cluster: shard %d dev %d reset for re-sync", m.Shard, m.Dev)
	return nil
}

func (fol *followerState) nvram(shard uint32) (core.NVRAM, error) {
	if int(shard) >= len(fol.n.cfg.NVRAMs) {
		return nil, fmt.Errorf("cluster: no NVRAM for shard %d", shard)
	}
	return fol.n.cfg.NVRAMs[shard], nil
}

func (fol *followerState) recordAck(id, seq uint64, status byte, resp []byte) {
	if id == 0 || seq == 0 {
		return
	}
	fol.mu.Lock()
	defer fol.mu.Unlock()
	s := fol.sessions[id]
	if s == nil {
		s = &folSession{window: make(map[uint64]wire.ReplResp)}
		fol.sessions[id] = s
	}
	if seq > s.maxSeq {
		s.maxSeq = seq
	}
	if _, ok := s.window[seq]; ok {
		return
	}
	s.window[seq] = wire.ReplResp{Seq: seq, Status: status, Resp: resp}
	s.order = append(s.order, seq)
	for len(s.order) > folDedupWindow {
		delete(s.window, s.order[0])
		s.order = s.order[1:]
	}
}

func (fol *followerState) installSession(ws *wire.ReplSession) {
	fol.mu.Lock()
	if s := fol.sessions[ws.ID]; s != nil && ws.MaxSeq > s.maxSeq {
		s.maxSeq = ws.MaxSeq
	} else if s == nil {
		fol.sessions[ws.ID] = &folSession{maxSeq: ws.MaxSeq, window: make(map[uint64]wire.ReplResp)}
	}
	fol.mu.Unlock()
	for _, r := range ws.Resps {
		fol.recordAck(ws.ID, r.Seq, r.Status, r.Resp)
	}
}

// exportSessions renders the replicated session table in the server's
// install format, oldest response first, for promotion.
func (fol *followerState) exportSessions() []server.SessionState {
	fol.mu.Lock()
	defer fol.mu.Unlock()
	out := make([]server.SessionState, 0, len(fol.sessions))
	for id, s := range fol.sessions {
		st := server.SessionState{ID: id, MaxSeq: s.maxSeq}
		for _, seq := range s.order {
			r := s.window[seq]
			st.Resps = append(st.Resps, server.SessionResp{Seq: r.Seq, Status: r.Status, Resp: r.Resp})
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- sealed-history reads ---

// handleReadAt serves OpReadAt (same payload and entry layout as the
// leader) against the replicated devices, read-only: sealed blocks only,
// which is exactly the guarantee replication gives (the staged tail lives
// in NVRAM until sealed).
func (fol *followerState) handleReadAt(payload []byte) (byte, []byte) {
	d := server.NewDecoder(payload)
	shardN, err := d.Uvarint()
	if err == nil {
		var block, index uint64
		if block, err = d.Uvarint(); err == nil {
			if index, err = d.Uvarint(); err == nil {
				e, rerr := fol.readAt(int(shardN), int(block), int(index))
				if rerr != nil {
					return server.StatusErr, server.PutString(nil, rerr.Error())
				}
				return server.StatusOK, server.EncodeEntry(e)
			}
		}
	}
	return server.StatusErr, server.PutString(nil, err.Error())
}

// vset returns (building lazily) the shard's read-only volume view.
func (fol *followerState) vset(shard int) (*volume.Set, error) {
	fol.mu.Lock()
	defer fol.mu.Unlock()
	if shard < 0 || shard >= len(fol.vsets) {
		return nil, fmt.Errorf("cluster: no shard %d", shard)
	}
	if fol.vsets[shard] != nil {
		return fol.vsets[shard], nil
	}
	n := fol.n
	n.mu.Lock()
	devs := append([]wodev.Device(nil), n.devs[shard]...)
	n.mu.Unlock()
	var set *volume.Set
	for di, dev := range devs {
		v, err := volume.Mount(dev, di)
		if err != nil {
			if errors.Is(err, volume.ErrNoHeader) {
				continue // not yet replicated this far
			}
			return nil, err
		}
		if set == nil {
			set = volume.NewSet(v.Hdr.Seq)
		}
		if err := set.Add(v); err != nil {
			return nil, err
		}
	}
	if set == nil {
		return nil, errors.New("cluster: no replicated volumes yet")
	}
	fol.vsets[shard] = set
	return set, nil
}

func (fol *followerState) dropVset(shard int) {
	fol.mu.Lock()
	if shard >= 0 && shard < len(fol.vsets) {
		fol.vsets[shard] = nil
	}
	fol.mu.Unlock()
}

// readGlobal reads and returns one global data block's image.
func readGlobal(set *volume.Set, global int) ([]byte, error) {
	v, local, err := set.Locate(global)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, v.Dev.BlockSize())
	if err := v.Dev.ReadBlock(v.DeviceBlock(local), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readAt mirrors the core's ReadAt over the replicated sealed history:
// parse the block, reassemble fragment chains (skipping invalidated blocks
// the writer slid past), and compute the effective timestamp the same way
// the leader's read path does.
func (fol *followerState) readAt(shard, block, index int) (*core.Entry, error) {
	set, err := fol.vset(shard)
	if err != nil {
		return nil, err
	}
	end, err := set.GlobalEnd()
	if err != nil {
		return nil, err
	}
	if block < 0 || block >= end {
		return nil, fmt.Errorf("cluster: block %d beyond replicated sealed history (%d blocks)", block, end)
	}
	parsed, err := parseGlobal(set, block)
	if err != nil {
		return nil, err
	}
	if index < 0 || index >= len(parsed.Records) {
		return nil, fmt.Errorf("cluster: no record %d in block %d", index, block)
	}
	rec := parsed.Records[index]
	if rec.Continued {
		return nil, fmt.Errorf("cluster: record %d of block %d is a continuation fragment", index, block)
	}
	data, err := assembleSealed(set, end, block, index, parsed)
	if err != nil {
		return nil, err
	}
	// Effective timestamp: the record's own when full-form, else the
	// nearest preceding one (at worst the block's mandatory first-entry
	// timestamp).
	ts := parsed.FirstTimestamp
	for i := 0; i <= index; i++ {
		r := parsed.Records[i]
		if r.Form != blockfmt.FormMinimal && r.Timestamp != 0 {
			ts = r.Timestamp
		}
	}
	return &core.Entry{
		LogID:       rec.LogID,
		Timestamp:   ts,
		Timestamped: rec.Form != blockfmt.FormMinimal,
		Forced:      rec.AttrFlags&blockfmt.AttrForced != 0,
		Data:        data,
		Block:       block,
		Index:       index,
		ExtraIDs:    rec.ExtraIDs,
		Shard:       shard,
	}, nil
}

func parseGlobal(set *volume.Set, global int) (*blockfmt.Parsed, error) {
	img, err := readGlobal(set, global)
	if err != nil {
		return nil, err
	}
	return blockfmt.Parse(img)
}

// assembleSealed follows a fragmented entry's chain across blocks, exactly
// like the core's assemble: the chain continues as the first same-id
// continued record of each following block, invalidated blocks are slid
// past, and a chain running off the end is lost.
func assembleSealed(set *volume.Set, end, global, idx int, parsed *blockfmt.Parsed) ([]byte, error) {
	rec := parsed.Records[idx]
	out := append([]byte(nil), rec.Data...)
	if !rec.Continues {
		return out, nil
	}
	id := rec.LogID
	for b := global + 1; ; b++ {
		if b >= end {
			return nil, errors.New("cluster: entry lost (torn fragment chain)")
		}
		p, err := parseGlobal(set, b)
		if err != nil {
			if errors.Is(err, wodev.ErrInvalidated) {
				continue // writer slid past a damaged block; chain continues
			}
			return nil, errors.New("cluster: entry lost (unreadable continuation block)")
		}
		found, done := false, false
		for _, r := range p.Records {
			if r.LogID != id || !r.Continued {
				continue
			}
			out = append(out, r.Data...)
			found = true
			done = !r.Continues
			break
		}
		if !found {
			return nil, errors.New("cluster: entry lost (broken fragment chain)")
		}
		if done {
			return out, nil
		}
	}
}
