package core

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestTailNotifyWake: a reader blocked at the tail is woken by the next
// publish — no polling — and then sees the new entry.
func TestTailNotifyWake(t *testing.T) {
	s, _ := newTestService(t, Options{NVRAM: NewMemNVRAM()})
	defer s.Close()
	id := mustCreate(t, s, "/log")
	mustAppend(t, s, id, "before", AppendOptions{Forced: true})

	c, err := s.OpenCursor("/log")
	if err != nil {
		t.Fatal(err)
	}
	c.SeekEnd()
	seq := s.TailSeq()
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("expected EOF at the tail, got %v", err)
	}

	got := make(chan string, 1)
	go func() {
		<-s.TailNotify(seq)
		e, err := c.Next()
		if err != nil {
			got <- "err: " + err.Error()
			return
		}
		got <- string(e.Data)
	}()
	// Give the waiter time to block, then publish.
	time.Sleep(10 * time.Millisecond)
	mustAppend(t, s, id, "after", AppendOptions{Forced: true})
	select {
	case d := <-got:
		if d != "after" {
			t.Fatalf("woke with %q, want %q", d, "after")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tail waiter never woke after publish")
	}
}

// TestTailNotifyNoLostWakeup: the check-then-wait protocol — read TailSeq,
// scan, then TailNotify — must not lose a publish that lands between the
// scan and the wait. Hammer the interleaving with a tight appender.
func TestTailNotifyNoLostWakeup(t *testing.T) {
	s, _ := newTestService(t, Options{NVRAM: NewMemNVRAM()})
	defer s.Close()
	id := mustCreate(t, s, "/log")

	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			mustAppend(t, s, id, "x", AppendOptions{Forced: true})
		}
	}()

	c, err := s.OpenCursor("/log")
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	deadline := time.After(30 * time.Second)
	for seen < n {
		seq := s.TailSeq()
		e, err := c.Next()
		if err == nil {
			_ = e
			seen++
			continue
		}
		if err != io.EOF {
			t.Fatalf("Next: %v", err)
		}
		select {
		case <-s.TailNotify(seq):
		case <-deadline:
			t.Fatalf("lost wakeup: saw %d/%d entries", seen, n)
		}
	}
	wg.Wait()
}

// TestTailNotifyClose: Close wakes blocked waiters.
func TestTailNotifyClose(t *testing.T) {
	s, _ := newTestService(t, Options{NVRAM: NewMemNVRAM()})
	id := mustCreate(t, s, "/log")
	mustAppend(t, s, id, "x", AppendOptions{Forced: true})

	seq := s.TailSeq()
	done := make(chan struct{})
	go func() {
		<-s.TailNotify(seq)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by Close")
	}
}

// TestTailNotifyIdleFree: with no waiter installed, a publish must not
// allocate or touch anything beyond one atomic load (the perf gate for the
// force path). Indirectly assert: no waiter channel survives a publish.
func TestTailNotifyIdleFree(t *testing.T) {
	s, _ := newTestService(t, Options{NVRAM: NewMemNVRAM()})
	defer s.Close()
	id := mustCreate(t, s, "/log")
	mustAppend(t, s, id, "x", AppendOptions{Forced: true})
	if s.tailWake.Load() != nil {
		t.Fatal("idle publish left a waiter channel installed")
	}
}

// TestSeekEndStagedTail: SeekEnd with a staged partial tail block parks
// inside the block, so entries appended to that same block afterwards are
// still returned (the regression the live-tail path depends on).
func TestSeekEndStagedTail(t *testing.T) {
	s, _ := newTestService(t, Options{NVRAM: NewMemNVRAM()})
	defer s.Close()
	id := mustCreate(t, s, "/log")
	// Forced append stages a partial tail block in NVRAM.
	mustAppend(t, s, id, "old", AppendOptions{Forced: true})

	c, err := s.OpenCursor("/log")
	if err != nil {
		t.Fatal(err)
	}
	c.SeekEnd()
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("expected EOF right after SeekEnd, got %v", err)
	}
	// This lands in the SAME staged tail block.
	mustAppend(t, s, id, "new1", AppendOptions{Forced: true})
	mustAppend(t, s, id, "new2", AppendOptions{Forced: true})
	for _, want := range []string{"new1", "new2"} {
		e, err := c.Next()
		if err != nil {
			t.Fatalf("Next after tail growth: %v", err)
		}
		if string(e.Data) != want {
			t.Fatalf("got %q, want %q", e.Data, want)
		}
	}
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("expected EOF at the new end, got %v", err)
	}
}

// TestSeekEndPrevStagedTail: after SeekEnd, Prev returns the last written
// entry even when it lives in the staged tail block.
func TestSeekEndPrevStagedTail(t *testing.T) {
	s, _ := newTestService(t, Options{NVRAM: NewMemNVRAM()})
	defer s.Close()
	id := mustCreate(t, s, "/log")
	mustAppend(t, s, id, "a", AppendOptions{Forced: true})
	mustAppend(t, s, id, "b", AppendOptions{Forced: true})

	c, err := s.OpenCursor("/log")
	if err != nil {
		t.Fatal(err)
	}
	c.SeekEnd()
	e, err := c.Prev()
	if err != nil {
		t.Fatalf("Prev after SeekEnd: %v", err)
	}
	if string(e.Data) != "b" {
		t.Fatalf("Prev got %q, want %q", e.Data, "b")
	}
}

// TestSeekEndNoTail: without NVRAM there is no staged tail; SeekEnd parks
// at the sealed end and still observes later appends.
func TestSeekEndNoTail(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/log")
	mustAppend(t, s, id, "old", AppendOptions{Forced: true})

	c, err := s.OpenCursor("/log")
	if err != nil {
		t.Fatal(err)
	}
	c.SeekEnd()
	if _, err := c.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	mustAppend(t, s, id, "new", AppendOptions{Forced: true})
	e, err := c.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if string(e.Data) != "new" {
		t.Fatalf("got %q, want %q", e.Data, "new")
	}
}

// TestIdleWakeFree pins the streaming notifier's marginal cost on the
// group-commit path when nobody is subscribed: a counter bump and one
// atomic load — no allocation, no lock. This is what keeps
// BenchmarkForcedAppendParallel's seals/force unchanged with an idle
// subscriber registry.
func TestIdleWakeFree(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	if n := testing.AllocsPerRun(1000, func() {
		s.pubSeq.Add(1)
		s.wakeTail()
	}); n != 0 {
		t.Fatalf("idle tail publish allocates %v times per run, want 0", n)
	}
}
