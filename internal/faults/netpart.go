package faults

import (
	"context"
	"net"
	"sync"
)

// ErrPartitioned is the transient error a partitioned dial fails with.
var ErrPartitioned = New(Transient, "faults: network partitioned")

// Partition simulates network partitions between named nodes for cluster
// chaos tests: it wraps each node's dial function, refuses dials across a
// blocked edge, and severs the connections already established across an
// edge the moment it is blocked (a real partition does not wait for the
// next dial to bite).
//
// Edges are directed internally but every helper blocks both directions;
// names are whatever the test uses to identify nodes (addresses work well).
// A nil *Partition blocks nothing, so production paths need no
// configuration.
type Partition struct {
	mu      sync.Mutex
	blocked map[[2]string]bool
	conns   map[*trackedConn][2]string
}

// NewPartition returns a partition with every edge healthy.
func NewPartition() *Partition {
	return &Partition{
		blocked: make(map[[2]string]bool),
		conns:   make(map[*trackedConn][2]string),
	}
}

// Dialer wraps base so every connection dialed from the named node is
// subject to the partition: dials across a blocked edge fail with
// ErrPartitioned, and established connections are closed when their edge is
// later blocked. The addr argument of the returned function names the
// remote node.
func (p *Partition) Dialer(from string, base func(ctx context.Context, addr string) (net.Conn, error)) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if p.Blocked(from, addr) {
			return nil, ErrPartitioned
		}
		conn, err := base(ctx, addr)
		if err != nil {
			return nil, err
		}
		tc := &trackedConn{Conn: conn, p: p}
		p.mu.Lock()
		// The edge may have been blocked while the dial was in flight.
		if p.blocked[[2]string{from, addr}] {
			p.mu.Unlock()
			conn.Close()
			return nil, ErrPartitioned
		}
		p.conns[tc] = [2]string{from, addr}
		p.mu.Unlock()
		return tc, nil
	}
}

// Blocked reports whether the edge from→to is currently blocked.
func (p *Partition) Blocked(from, to string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[[2]string{from, to}]
}

// Isolate blocks both directions between node and each of the others and
// severs their existing connections — the "pull the network cable" chaos
// hook.
func (p *Partition) Isolate(node string, others ...string) {
	p.set(true, node, others)
}

// Heal unblocks both directions between node and each of the others.
func (p *Partition) Heal(node string, others ...string) {
	p.set(false, node, others)
}

// HealAll unblocks every edge.
func (p *Partition) HealAll() {
	p.mu.Lock()
	p.blocked = make(map[[2]string]bool)
	p.mu.Unlock()
}

func (p *Partition) set(block bool, node string, others []string) {
	p.mu.Lock()
	var kill []*trackedConn
	for _, o := range others {
		for _, edge := range [][2]string{{node, o}, {o, node}} {
			if block {
				p.blocked[edge] = true
			} else {
				delete(p.blocked, edge)
			}
		}
	}
	if block {
		for tc, edge := range p.conns {
			if p.blocked[edge] {
				kill = append(kill, tc)
				delete(p.conns, tc)
			}
		}
	}
	p.mu.Unlock()
	for _, tc := range kill {
		tc.Conn.Close()
	}
}

// trackedConn unregisters itself on Close so the conns map does not grow
// without bound across reconnect cycles.
type trackedConn struct {
	net.Conn
	p    *Partition
	once sync.Once
}

func (tc *trackedConn) Close() error {
	tc.once.Do(func() {
		tc.p.mu.Lock()
		delete(tc.p.conns, tc)
		tc.p.mu.Unlock()
	})
	return tc.Conn.Close()
}
