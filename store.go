package clio

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"clio/internal/core"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// Directory layout for file-backed stores: one file per volume plus an
// NVRAM sidecar. The volume files enforce the append-only policy in
// software — "the append-only storage model is appropriate even if the
// backing storage medium happens to be rewriteable" (§6).
const (
	volPrefix = "vol-"
	volSuffix = ".clio"
	nvramFile = "nvram.clio"
)

// DirOptions configures a file-backed store.
type DirOptions struct {
	// Options embeds the service options. NVRAM and Allocate are set by the
	// helpers and must be left nil.
	Options
	// VolumeBlocks is the capacity of each volume file in blocks; defaults
	// to 1<<20 (1 GiB at the default block size, the capacity class of a
	// 12" optical platter side).
	VolumeBlocks int
	// SyncEvery makes every sealed block fsync.
	SyncEvery bool
}

func volPath(dir string, index uint32) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", volPrefix, index, volSuffix))
}

func (o DirOptions) withDefaults() DirOptions {
	if o.VolumeBlocks <= 0 {
		o.VolumeBlocks = 1 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = wodev.DefaultBlockSize
	}
	return o
}

// dirAllocator mints successor volume files in dir.
func dirAllocator(dir string, o DirOptions) Allocator {
	return func(_ volume.SeqID, index uint32, _ uint64, blockSize int) (wodev.Device, error) {
		return wodev.OpenFile(volPath(dir, index), wodev.FileOptions{
			BlockSize: blockSize,
			Capacity:  o.VolumeBlocks,
			SyncEvery: o.SyncEvery,
		})
	}
}

// CreateDir initializes a new file-backed log store in dir (created if
// needed, which must not already contain a store) and returns the running
// service.
func CreateDir(dir string, o DirOptions) (*Service, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if names, err := listVolumes(dir); err != nil {
		return nil, err
	} else if len(names) > 0 {
		return nil, fmt.Errorf("clio: %s already contains a log store (%d volumes)", dir, len(names))
	}
	dev, err := wodev.OpenFile(volPath(dir, 0), wodev.FileOptions{
		BlockSize: o.BlockSize,
		Capacity:  o.VolumeBlocks,
		SyncEvery: o.SyncEvery,
	})
	if err != nil {
		return nil, err
	}
	opt := o.Options
	opt.NVRAM = core.NewFileNVRAM(filepath.Join(dir, nvramFile))
	opt.Allocate = dirAllocator(dir, o)
	s, err := core.New(dev, opt)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return s, nil
}

// OpenDir opens an existing file-backed log store in dir, recovering state
// as server initialization does (§2.3.1).
func OpenDir(dir string, o DirOptions) (*Service, error) {
	o = o.withDefaults()
	names, err := listVolumes(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("clio: no volumes in %s", dir)
	}
	var devs []wodev.Device
	closeAll := func() {
		for _, d := range devs {
			d.Close()
		}
	}
	for _, name := range names {
		dev, err := wodev.OpenFile(filepath.Join(dir, name), wodev.FileOptions{
			BlockSize: o.BlockSize,
			Capacity:  o.VolumeBlocks,
			SyncEvery: o.SyncEvery,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		devs = append(devs, dev)
	}
	opt := o.Options
	opt.NVRAM = core.NewFileNVRAM(filepath.Join(dir, nvramFile))
	opt.Allocate = dirAllocator(dir, o)
	s, err := core.Open(devs, opt)
	if err != nil {
		closeAll()
		return nil, err
	}
	return s, nil
}

func listVolumes(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasPrefix(n, volPrefix) && strings.HasSuffix(n, volSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}
