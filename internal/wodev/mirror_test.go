package wodev

import (
	"bytes"
	"errors"
	"testing"

	"clio/internal/vclock"
)

func mirrorPair(t *testing.T) (*Mirror, *MemDevice, *MemDevice) {
	t.Helper()
	a := NewMem(MemOptions{BlockSize: 128, Capacity: 32})
	b := NewMem(MemOptions{BlockSize: 128, Capacity: 32})
	m, err := NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return m, a, b
}

func TestMirrorWritesBothReplicas(t *testing.T) {
	m, a, b := mirrorPair(t)
	idx, err := m.AppendBlock(fill(128, 7))
	if err != nil || idx != 0 {
		t.Fatalf("append: %d, %v", idx, err)
	}
	buf := make([]byte, 128)
	for i, d := range []*MemDevice{a, b} {
		if err := d.ReadBlock(0, buf); err != nil || !bytes.Equal(buf, fill(128, 7)) {
			t.Errorf("replica %d: %v", i, err)
		}
	}
	if m.Written() != 1 {
		t.Errorf("Written = %d", m.Written())
	}
	if err := m.WriteAt(1, fill(128, 8)); err != nil {
		t.Fatal(err)
	}
	if m.Written() != 2 {
		t.Errorf("Written after WriteAt = %d", m.Written())
	}
}

func TestMirrorReadFallsOver(t *testing.T) {
	m, a, _ := mirrorPair(t)
	if _, err := m.AppendBlock(fill(128, 9)); err != nil {
		t.Fatal(err)
	}
	// Damage the primary's copy: plain ReadBlock returns the garbage (the
	// device cannot tell), but ReadValidated routes to the replica.
	if err := a.Damage(0, fill(128, 0xEE)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := m.ReadValidated(0, buf, func(b []byte) bool { return b[0] == 9 }); err != nil {
		t.Fatalf("ReadValidated: %v", err)
	}
	if buf[0] != 9 {
		t.Errorf("got %d", buf[0])
	}
	// With every replica bad, validation fails.
	if err := m.ReadValidated(0, buf, func(b []byte) bool { return false }); err == nil {
		t.Error("impossible validation succeeded")
	}
}

func TestMirrorUnwrittenAuthoritative(t *testing.T) {
	m, _, _ := mirrorPair(t)
	if err := m.ReadBlock(0, make([]byte, 128)); !errors.Is(err, ErrUnwritten) {
		t.Errorf("unwritten: %v", err)
	}
}

func TestMirrorInvalidateAndStats(t *testing.T) {
	m, a, b := mirrorPair(t)
	if _, err := m.AppendBlock(fill(128, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	for i, d := range []*MemDevice{a, b} {
		if err := d.ReadBlock(0, make([]byte, 128)); !errors.Is(err, ErrInvalidated) {
			t.Errorf("replica %d not invalidated: %v", i, err)
		}
	}
	if s := m.Stats(); s.Appends != 2 { // one append on each replica
		t.Errorf("stats: %+v", s)
	}
	m.ResetStats()
	if s := m.Stats(); s.Appends != 0 {
		t.Errorf("after reset: %+v", s)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendBlock(fill(128, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
}

func TestMirrorGeometry(t *testing.T) {
	a := NewMem(MemOptions{BlockSize: 128, Capacity: 32})
	b := NewMem(MemOptions{BlockSize: 128, Capacity: 64})
	if _, err := NewMirror(a, b); err == nil {
		t.Error("capacity mismatch accepted")
	}
	if _, err := NewMirror(); err == nil {
		t.Error("empty replica list accepted")
	}
	if m, err := NewMirror(a); err != nil || m.Replica(0) != a {
		t.Errorf("single replica: %v", err)
	}
}

func TestMirrorWrittenUnknownPropagates(t *testing.T) {
	a := NewMem(MemOptions{BlockSize: 128, Capacity: 32, ReportEndUnknown: true})
	b := NewMem(MemOptions{BlockSize: 128, Capacity: 32})
	m, err := NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Written() != EndUnknown {
		t.Errorf("Written = %d, want EndUnknown", m.Written())
	}
}

func TestTimedWrapperCharges(t *testing.T) {
	dev := NewMem(MemOptions{BlockSize: 1024, Capacity: 8})
	clk := vclock.New(vclock.DefaultModel())
	td := NewTimed(dev, clk)
	if _, err := td.AppendBlock(fill(1024, 1)); err != nil {
		t.Fatal(err)
	}
	writeCost := clk.Elapsed()
	if writeCost <= 0 || writeCost >= clk.Model().DeviceSeek {
		t.Errorf("append charged %v (appends are sequential: transfer only)", writeCost)
	}
	clk.Reset()
	if err := td.ReadBlock(0, make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	if clk.Elapsed() < clk.Model().DeviceSeek {
		t.Errorf("read charged %v, want >= one seek", clk.Elapsed())
	}
}
