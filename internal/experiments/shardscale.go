package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/shard"
	"clio/internal/vclock"
)

// ShardRow is one line of the shard-scaling experiment: a fixed forced-
// append workload spread across one store, measured in virtual time under
// the calibrated cost model. Because the shards are independent volume
// sequences (each with its own vclock), the store-wide virtual elapsed
// time is the slowest shard's elapsed time — the parallel completion time
// — while the summed charge is what one sequence would have paid.
type ShardRow struct {
	Shards     int
	Entries    int
	PerShard   []int   // forced appends that landed on each shard
	SlowestMs  float64 // max over shards of virtual elapsed (parallel wall)
	SummedMs   float64 // sum over shards (the 1-sequence serial cost)
	SpeedupVs1 float64 // 1-shard SlowestMs / this SlowestMs
}

// RunShardScaling runs the same forced-append workload against stores of
// each requested shard count. The workload is `entries` synchronous 50-byte
// forced writes round-robined over 4×max(shardCounts) log files whose root
// segments spread across shards by the store's own hash. Everything is
// deterministic: memory devices, monotonic timestamp sources, and one
// virtual clock per shard.
func RunShardScaling(shardCounts []int, entries int) ([]ShardRow, error) {
	if entries <= 0 {
		entries = 2000
	}
	logs := 4
	for _, n := range shardCounts {
		if 4*n > logs {
			logs = 4 * n
		}
	}
	ctx := context.Background()
	var rows []ShardRow
	var baseline float64
	for _, n := range shardCounts {
		clks := make([]*vclock.Clock, n)
		svcs := make([]*core.Service, n)
		for i := range svcs {
			clks[i] = vclock.New(vclock.DefaultModel())
			svc, _, err := newService(1024, 16, 1<<16, clks[i], core.NewMemNVRAM())
			if err != nil {
				return nil, err
			}
			svcs[i] = svc
		}
		st, err := shard.New(svcs)
		if err != nil {
			return nil, err
		}
		ids := make([]logapi.ID, logs)
		for j := range ids {
			id, err := st.CreateLog(ctx, fmt.Sprintf("/sl%02d", j), 0, "")
			if err != nil {
				return nil, err
			}
			ids[j] = id
		}
		for i := range clks {
			clks[i].Reset() // charge only the appends below
		}
		payload := make([]byte, 50)
		perShard := make([]int, n)
		for i := 0; i < entries; i++ {
			id := ids[i%logs]
			if _, err := st.Append(ctx, id, payload, core.AppendOptions{Timestamped: true, Forced: true}); err != nil {
				return nil, err
			}
			perShard[id.Shard()]++
		}
		var slowest, summed time.Duration
		for _, clk := range clks {
			e := clk.Elapsed()
			summed += e
			if e > slowest {
				slowest = e
			}
		}
		row := ShardRow{
			Shards:    n,
			Entries:   entries,
			PerShard:  perShard,
			SlowestMs: ms(slowest),
			SummedMs:  ms(summed),
		}
		if baseline == 0 {
			baseline = row.SlowestMs
		}
		if row.SlowestMs > 0 {
			row.SpeedupVs1 = baseline / row.SlowestMs
		}
		rows = append(rows, row)
		if err := st.Close(); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintShardScaling renders the shard-scaling rows.
func PrintShardScaling(w io.Writer, rows []ShardRow) {
	fprintf(w, "Shard scaling (forced 50-byte appends, virtual time; parallel = slowest shard)\n")
	fprintf(w, "%-8s %8s %14s %14s %10s  %s\n",
		"shards", "entries", "parallel(ms)", "serial(ms)", "speedup", "per-shard appends")
	for _, r := range rows {
		fprintf(w, "%-8d %8d %14.1f %14.1f %9.2fx  %v\n",
			r.Shards, r.Entries, r.SlowestMs, r.SummedMs, r.SpeedupVs1, r.PerShard)
	}
}
