package entrymap

// RecoverSource provides the raw access reconstruction needs after a crash:
// the ability to list which log files have entries in a sealed block, and to
// read already-written entrymap entries.
type RecoverSource interface {
	// BlockIDs returns the tracked log-file ids with entries (or fragments)
	// in the given sealed data block. Unreadable (invalidated or damaged)
	// blocks return nil, nil: their contents are lost (§2.3.2).
	BlockIDs(block int) ([]uint16, error)
	// EntryAt is as in Source: the entrymap entry of the given level due at
	// the given boundary, or (nil, nil) when missing.
	EntryAt(level, boundary int) (*Entry, error)
}

// ReconstructStats reports the work done during reconstruction, reproducing
// the cost analysed in §3.4 / Figure 4: to rebuild level-1 information the
// server examines the 0..N blocks since the last level-1 entrymap entry, and
// for each higher level the 0..N entrymap entries of the level below —
// N·log_N(b) blocks in the worst case, half that on average.
type ReconstructStats struct {
	// BlocksScanned counts sealed data blocks scanned directly.
	BlocksScanned int
	// EntriesRead counts entrymap entries read back.
	EntriesRead int
}

// Reconstruct rebuilds the writer's entrymap accumulator for a volume whose
// data blocks [0, end) are already written, as server initialization step 2
// (§2.3.1: "examines recently-written blocks, to reconstruct missing
// 'entrymap' information"). If an expected entrymap entry is missing, the
// covered span is rescanned from raw blocks — the entrymap is redundant, so
// this is always possible.
func Reconstruct(src RecoverSource, n, end int) (*Accumulator, ReconstructStats, error) {
	var stats ReconstructStats
	acc, err := NewAccumulator(n)
	if err != nil {
		return nil, stats, err
	}
	if end <= 0 {
		return acc, stats, nil
	}
	// Highest level with at least one rolled-up child: level lvl has state
	// once a level-(lvl-1) boundary has been emitted, i.e. once block
	// N^(lvl-1) has been started (end-1 >= N^(lvl-1)).
	top := 1
	for pow(n, top) <= end-1 {
		top++
	}
	// Entrymap entries due at a boundary b are written when the block at
	// index b is started, so with blocks [0, end) written the last emitted
	// boundary at any granularity g is floor((end-1)/g)*g, and the pending
	// span of level lvl is the one containing block end-1.
	//
	// Rebuild from the top level down. For each level lvl, the in-progress
	// span starts at S = floor((end-1) / N^lvl) * N^lvl, and the rolled-up
	// groups within it are the level-(lvl-1) spans ending at boundaries
	// S + k*N^(lvl-1) <= floor((end-1) / N^(lvl-1)) * N^(lvl-1).
	for lvl := top; lvl >= 1; lvl-- {
		span := pow(n, lvl)
		child := span / n
		spanStart := ((end - 1) / span) * span
		acc.level(lvl).spanStart = spanStart
		lastChildBoundary := ((end - 1) / child) * child
		for b := spanStart + child; b <= lastChildBoundary; b += child {
			ids, eErr := idsForSpan(src, n, lvl-1, b, &stats)
			if eErr != nil {
				return nil, stats, eErr
			}
			group := (b - child) / child
			for _, id := range ids {
				acc.noteGroup(lvl, group, id)
			}
		}
	}
	// Level-1 partial span: scan the blocks since the last level-1 boundary.
	l1Start := ((end - 1) / n) * n
	for blk := l1Start; blk < end; blk++ {
		ids, err := src.BlockIDs(blk)
		stats.BlocksScanned++
		if err != nil {
			return nil, stats, err
		}
		acc.NoteBlock(blk, ids)
	}
	return acc, stats, nil
}

// idsForSpan returns the tracked ids with entries in the level-`level` span
// ending at boundary (level 0 means the single block boundary-1), preferring
// the written entrymap entry and falling back to raw scans.
func idsForSpan(src RecoverSource, n, level, boundary int, stats *ReconstructStats) ([]uint16, error) {
	if level == 0 {
		stats.BlocksScanned++
		return src.BlockIDs(boundary - 1)
	}
	e, err := src.EntryAt(level, boundary)
	if err != nil {
		return nil, err
	}
	if e != nil {
		stats.EntriesRead++
		ids := make([]uint16, 0, len(e.Maps))
		for _, m := range e.Maps {
			if !m.Bits.Empty() {
				ids = append(ids, m.ID)
			}
		}
		return ids, nil
	}
	// Missing entry: union the child spans.
	span := pow(n, level)
	child := span / n
	seen := make(map[uint16]bool)
	for b := boundary - span + child; b <= boundary; b += child {
		ids, err := idsForSpan(src, n, level-1, b, stats)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			seen[id] = true
		}
	}
	out := make([]uint16, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	return out, nil
}
