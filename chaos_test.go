package clio_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/faults"
	"clio/internal/scrub"
	"clio/internal/server"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// TestChaos drives the full stack — reconnecting client, wire protocol,
// server sessions, core service, write-once devices — through seeded
// transient device faults, connection kills and service crashes, and then
// verifies the end-to-end contract: no acknowledged-durable entry is lost,
// no entry is duplicated, and every log holds exactly what was written to
// it, in order. Skipped with -short.
//
// The durability model matches TestSoak: an append acknowledged at or
// before a forced append is durable; unforced acknowledgements since the
// last force may be lost by a crash (prefix durability); an append whose
// call failed with a transient/ambiguous error may or may not have
// executed — it must appear at most once.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const (
		enableDamage = true
		logs         = 4
		blockSz      = 512
		volCap       = 256 // blocks per volume -> several volume transitions
	)
	rng := rand.New(rand.NewSource(20260805))

	// Every device in the stack is wrapped in a transient-fault injector.
	// MaxConsecutive(2) keeps runs of injected faults inside the core retry
	// budget, so steady-state traffic is fully masked.
	var devMu sync.Mutex
	var flakies []*wodev.Flaky
	var bases []*wodev.MemDevice
	var devs []wodev.Device
	addDevice := func() wodev.Device {
		devMu.Lock()
		defer devMu.Unlock()
		base := wodev.NewMem(wodev.MemOptions{BlockSize: blockSz, Capacity: volCap})
		f := wodev.NewFlaky(base, int64(7700+len(flakies)))
		f.Sleep = func(time.Duration) {}
		f.FailReads(0.04)
		f.FailAppends(0.04)
		f.Spike(0.01, time.Microsecond)
		f.MaxConsecutive(2)
		bases = append(bases, base)
		flakies = append(flakies, f)
		devs = append(devs, f)
		return f
	}
	pauseAll := func() {
		devMu.Lock()
		defer devMu.Unlock()
		for _, f := range flakies {
			f.Pause()
		}
	}
	resumeAll := func() {
		devMu.Lock()
		defer devMu.Unlock()
		for _, f := range flakies {
			f.Resume()
		}
	}
	deviceList := func() []wodev.Device {
		devMu.Lock()
		defer devMu.Unlock()
		return append([]wodev.Device(nil), devs...)
	}

	var now int64
	var nowMu sync.Mutex
	opt := core.Options{
		BlockSize: blockSz, Degree: 8, NVRAM: core.NewMemNVRAM(),
		// -checkpoint-interval > 0 makes every simulated restart recover
		// through the checkpoint path (restore + bounded replay) under the
		// same fault injection; the end-to-end contract must be unchanged.
		CheckpointInterval: *ckptInterval,
		Retry: &faults.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond,
			MaxDelay: time.Microsecond, Sleep: func(time.Duration) {}},
		Now: func() int64 { nowMu.Lock(); defer nowMu.Unlock(); now += 1000; return now },
		Allocate: func(_ volume.SeqID, _ uint32, _ uint64, _ int) (wodev.Device, error) {
			return addDevice(), nil
		},
	}
	svc, err := core.New(addDevice(), opt)
	if err != nil {
		t.Fatal(err)
	}

	// The server is replaced on every simulated process restart; the
	// client's dialer always reaches the current instance.
	var srvMu sync.Mutex
	srv := server.New(svc)
	currentServer := func() *server.Server {
		srvMu.Lock()
		defer srvMu.Unlock()
		return srv
	}
	defer func() { currentServer().Close() }()
	dialer := func(ctx context.Context) (net.Conn, error) {
		cConn, sConn := net.Pipe()
		go currentServer().ServeConn(sConn)
		return cConn, nil
	}
	cl, err := client.DialContext(context.Background(), "", client.Options{
		Dialer: dialer,
		Retry: &faults.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Microsecond,
			MaxDelay: 10 * time.Microsecond, Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	bg := context.Background()
	ids := make([]client.ID, logs)
	for i := range ids {
		id, err := cl.CreateLog(bg, fmt.Sprintf("/log%d", i), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	const workers = 3
	concIDs := make([]client.ID, workers)
	for i := range concIDs {
		id, err := cl.CreateLog(bg, fmt.Sprintf("/conc%d", i), 0, "")
		if err != nil {
			t.Fatal(err)
		}
		concIDs[i] = id
	}

	// Per-log model, as in TestSoak: written records every payload by its
	// never-reused sequence number; durable records those covered by a
	// forced acknowledgement; unflushed is the suffix a crash may lose.
	// Appends whose call failed are in written only: "maybe" entries.
	written := make([]map[int]string, logs)
	durable := make([]map[int]bool, logs)
	var unflushed [][2]int
	nextSeq := make([]int, logs)
	for w := range written {
		written[w] = make(map[int]string)
		durable[w] = make(map[int]bool)
	}
	flush := func() {
		for _, ws := range unflushed {
			durable[ws[0]][ws[1]] = true
		}
		unflushed = nil
	}

	var failedCalls, ambiguous, degraded, damaged int
	note := make(map[[2]int]string) // debug: where each (log, seq) came from
	// op performs one modeled append (plus an occasional read probe).
	op := func(i int) {
		w := rng.Intn(logs)
		seq := nextSeq[w]
		nextSeq[w]++
		payload := fmt.Sprintf("log%d-%06d-%s", w, seq, string(make([]byte, rng.Intn(200))))
		forced := rng.Intn(8) == 0
		_, err := cl.Append(bg, ids[w], []byte(payload), client.AppendOptions{
			Timestamped: rng.Intn(2) == 0, Forced: forced,
		})
		written[w][seq] = payload
		note[[2]int{w, seq}] = fmt.Sprintf("op %d forced=%v err=%v", i, forced, err)
		switch {
		case err == nil || client.IsDegraded(err):
			if client.IsDegraded(err) {
				degraded++
			}
			unflushed = append(unflushed, [2]int{w, seq})
			if forced {
				flush()
			}
		default:
			// The call failed: the append may or may not have executed on
			// the server (response lost past the retry budget, or an
			// epoch change mid-flight). It must never become durable, and
			// the final scan verifies it appears at most once.
			failedCalls++
			var amb *client.AmbiguousError
			if errors.As(err, &amb) {
				ambiguous++
			} else if faults.Classify(err) != faults.Transient {
				t.Fatalf("op %d: non-transient append failure: %v", i, err)
			}
		}
		if i%50 == 0 {
			if _, err := cl.Stat(bg, fmt.Sprintf("/log%d", w)); err != nil &&
				faults.Classify(err) != faults.Transient {
				t.Fatalf("op %d: stat: %v", i, err)
			}
		}
	}

	// Phase A: steady traffic over flaky devices. Every fault is masked by
	// the core retry policy, so every call must succeed.
	for i := 0; i < 800; i++ {
		op(i)
	}
	if failedCalls != 0 {
		t.Fatalf("phase A: %d calls failed under masked device faults", failedCalls)
	}

	// Phase B: a killer goroutine severs the client's connection at random
	// while traffic continues, and concurrent worker clients drive forced
	// appends to their own logs over their own connections — exercising the
	// server's pipelined dispatch, the duplicate-suppression window under
	// replay, and group commit in the core. The main client reconnects and
	// replays in-flight requests under their original sequence numbers.
	type workerAck struct {
		seq     int
		payload string
	}
	ackedConc := make([][]workerAck, workers)
	workerClients := make([]*client.Client, workers)
	for wk := range workerClients {
		wcl, err := client.DialContext(bg, "", client.Options{
			Dialer: dialer,
			Retry: &faults.RetryPolicy{MaxAttempts: 8, BaseDelay: 10 * time.Microsecond,
				MaxDelay: 10 * time.Microsecond, Sleep: func(time.Duration) {}},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer wcl.Close()
		workerClients[wk] = wcl
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		killRng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(500+killRng.Intn(2000)) * time.Microsecond):
				currentServer().KillConns()
			}
		}
	}()
	var workerWg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		workerWg.Add(1)
		go func(wk int) {
			defer workerWg.Done()
			for seq := 0; seq < 120; seq++ {
				payload := fmt.Sprintf("conc%d-%06d", wk, seq)
				_, err := workerClients[wk].Append(bg, concIDs[wk], []byte(payload),
					client.AppendOptions{Forced: true})
				if err == nil || client.IsDegraded(err) {
					// Forced acknowledgement: durable immediately, so the
					// model survives the crash rounds of phase C.
					ackedConc[wk] = append(ackedConc[wk], workerAck{seq, payload})
					continue
				}
				var amb *client.AmbiguousError
				if errors.As(err, &amb) || faults.Classify(err) == faults.Transient {
					continue // maybe-executed: must appear at most once
				}
				t.Errorf("worker %d seq %d: non-transient failure: %v", wk, seq, err)
				return
			}
		}(wk)
	}
	for i := 800; i < 1600; i++ {
		op(i)
	}
	workerWg.Wait()
	close(stop)
	wg.Wait()
	if cl.Reconnects() < 2 {
		t.Fatalf("phase B: Reconnects = %d, connection kills never landed", cl.Reconnects())
	}

	// Phase C: full process crashes. Each round runs traffic, damages the
	// next unwritten block on the tail device (so a later append must
	// relocate and complete degraded), then crashes the service and
	// restarts the server: a new epoch, no session state, recovery from
	// the media plus the NVRAM tail.
	crashes := 0
	for round := 0; round < 6; round++ {
		for i := 0; i < 250; i++ {
			op(1600 + round*250 + i)
		}
		// Force to seal the tail, then pre-damage the next block.
		sealSeq := nextSeq[0]
		nextSeq[0]++
		sealPayload := fmt.Sprintf("log0-%06d-", sealSeq)
		_, serr := cl.Append(bg, ids[0], []byte(sealPayload), client.AppendOptions{Forced: true})
		written[0][sealSeq] = sealPayload
		note[[2]int{0, sealSeq}] = fmt.Sprintf("seal round %d err=%v", round, serr)
		switch {
		case serr == nil || client.IsDegraded(serr):
			if client.IsDegraded(serr) {
				degraded++
			}
			unflushed = append(unflushed, [2]int{0, sealSeq})
			flush()
		default:
			failedCalls++
			var amb *client.AmbiguousError
			if errors.As(serr, &amb) {
				ambiguous++
			} else if faults.Classify(serr) != faults.Transient {
				t.Fatalf("round %d: sealing append: %v", round, serr)
			}
		}
		devMu.Lock()
		tail := bases[len(bases)-1]
		if enableDamage && tail.Written() < volCap {
			if err := tail.Damage(tail.Written(), nil); err == nil {
				damaged++
			}
		}
		devMu.Unlock()
		for i := 0; i < 30; i++ {
			op(5000 + round*30 + i)
		}

		// Crash: the server dies with its sessions, the service loses its
		// in-memory state, and unforced acknowledgements become "maybe".
		currentServer().Close()
		svc.Crash()
		crashes++
		unflushed = nil
		pauseAll() // recovery reads the media without a retry layer above it
		svc, err = core.Open(deviceList(), opt)
		if err != nil {
			t.Fatalf("recovery %d: %v", crashes, err)
		}
		resumeAll()
		srvMu.Lock()
		srv = server.New(svc)
		srvMu.Unlock()
	}

	if err := svc.Force(); err != nil {
		t.Fatal(err)
	}
	flush()
	if degraded == 0 && damaged > 0 {
		t.Errorf("damaged %d tail blocks but no append ever reported degraded", damaged)
	}
	devMu.Lock()
	volumes := len(devs)
	devMu.Unlock()
	if volumes < 3 {
		t.Fatalf("only %d volumes used", volumes)
	}
	t.Logf("chaos: %d crashes, %d reconnects, %d failed calls (%d ambiguous), %d degraded, %d volumes",
		crashes, cl.Reconnects(), failedCalls, ambiguous, degraded, volumes)

	// Verification over the wire, through the same reconnecting client:
	// strictly increasing never-reused sequence numbers (an entry executed
	// twice would repeat one), byte-exact payloads, every durable entry
	// present. "Maybe" entries pass either way — present once or absent.
	for w := 0; w < logs; w++ {
		cur, err := cl.OpenCursor(bg, fmt.Sprintf("/log%d", w))
		if err != nil {
			t.Fatal(err)
		}
		lastSeq := -1
		seen := make(map[int]bool)
		for {
			e, err := cur.Next(bg)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			var gotLog, seq int
			if _, serr := fmt.Sscanf(string(e.Data), "log%d-%06d-", &gotLog, &seq); serr != nil {
				t.Fatalf("log%d: unparseable entry %.30q", w, e.Data)
			}
			if gotLog != w {
				t.Fatalf("log%d: foreign entry from log%d", w, gotLog)
			}
			if seq <= lastSeq {
				t.Fatalf("log%d: seq %d after %d (duplicate or reordering)", w, seq, lastSeq)
			}
			lastSeq = seq
			if want := written[w][seq]; string(e.Data) != want {
				t.Fatalf("log%d seq %d: content mismatch (%d vs %d bytes)",
					w, seq, len(e.Data), len(want))
			}
			seen[seq] = true
		}
		for seq := range durable[w] {
			if !seen[seq] {
				t.Fatalf("log%d: durable seq %d missing (%s)", w, seq, note[[2]int{w, seq}])
			}
		}
		cur.Close()
	}

	// The concurrent workers' logs: every acknowledged forced append is
	// present exactly once (the strictly-increasing check covers "exactly"),
	// in order, across the phase-C crashes.
	for wk := 0; wk < workers; wk++ {
		cur, err := cl.OpenCursor(bg, fmt.Sprintf("/conc%d", wk))
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		lastSeq := -1
		for {
			e, err := cur.Next(bg)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			var gotW, seq int
			if _, serr := fmt.Sscanf(string(e.Data), "conc%d-%06d", &gotW, &seq); serr != nil {
				t.Fatalf("conc%d: unparseable entry %.30q", wk, e.Data)
			}
			if gotW != wk {
				t.Fatalf("conc%d: foreign entry from worker %d", wk, gotW)
			}
			if seq <= lastSeq {
				t.Fatalf("conc%d: seq %d after %d (duplicate or reordering)", wk, seq, lastSeq)
			}
			lastSeq = seq
			seen[seq] = true
		}
		for _, a := range ackedConc[wk] {
			if !seen[a.seq] {
				t.Fatalf("conc%d: acknowledged forced seq %d missing", wk, a.seq)
			}
		}
		cur.Close()
	}

	// Media-level verification: beyond crash debris and the deliberately
	// damaged (and since relocated-around) blocks, the media must scrub
	// clean.
	currentServer().Close()
	svc.Crash()
	pauseAll()
	rep, err := scrub.Volumes(deviceList(), scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Problems {
		if p.Kind == "torn-chain" || p.Kind == "orphan-fragment" {
			continue // legitimate crash debris
		}
		t.Errorf("scrub: %s", p)
	}
	if rep.Damaged > damaged {
		t.Errorf("scrub found %d damaged blocks, injected only %d", rep.Damaged, damaged)
	}
}
