package cluster

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/faults"
	"clio/internal/server"
	"clio/internal/wire"
	"clio/internal/wodev"
)

const testBlockSize = 256

// testNode bundles one cluster member with its devices so tests can kill,
// restart and inspect it.
type testNode struct {
	node   *Node
	addr   string
	devs   [][]wodev.Device
	nvrams []core.NVRAM
}

// startNode builds and serves one node. When dial is nil, TCP is used.
func startNode(t *testing.T, addr string, peers []string, devs [][]wodev.Device,
	nvrams []core.NVRAM, leader, create bool,
	dial func(ctx context.Context, addr string) (net.Conn, error)) *testNode {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	n, err := New(Config{
		NodeID:     ln.Addr().String(),
		Peers:      peers,
		Quorum:     2,
		Devices:    devs,
		NVRAMs:     nvrams,
		Opts:       core.Options{BlockSize: testBlockSize, CheckpointInterval: 4},
		Create:     create,
		AckTimeout: 3 * time.Second,
		Dial:       dial,
		Reset: func(shard, dev int) (wodev.Device, error) {
			fresh := wodev.NewMem(wodev.MemOptions{BlockSize: testBlockSize, Capacity: 4096})
			return fresh, nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("new node %s: %v", addr, err)
	}
	if err := n.Start(leader); err != nil {
		t.Fatalf("start %s: %v", addr, err)
	}
	go n.Serve(ln)
	tn := &testNode{node: n, addr: ln.Addr().String(), devs: devs, nvrams: nvrams}
	t.Cleanup(n.Kill)
	return tn
}

func freshShards(shards int) ([][]wodev.Device, []core.NVRAM) {
	devs := make([][]wodev.Device, shards)
	nvrams := make([]core.NVRAM, shards)
	for i := range devs {
		devs[i] = []wodev.Device{wodev.NewMem(wodev.MemOptions{BlockSize: testBlockSize, Capacity: 4096})}
		nvrams[i] = core.NewMemNVRAM()
	}
	return devs, nvrams
}

// freeAddrs reserves n distinct loopback addresses by listening and
// immediately closing, so nodes can be configured with each other's
// addresses before any of them serves.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

func testClient(t *testing.T, session uint64, addrs []string,
	dial func(ctx context.Context, addr string) (net.Conn, error)) *client.Client {
	t.Helper()
	c, err := client.DialContext(context.Background(), addrs[0], client.Options{
		SessionID: session,
		Addrs:     addrs[1:],
		DialAddr:  dial,
		Retry: &faults.RetryPolicy{
			MaxAttempts: 80,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			Multiplier:  2,
			FullJitter:  true,
			Seed:        int64(session),
		},
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func shardEndsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterFailover is the kill-the-leader chaos test: three nodes, a
// storm of forced appends, the leader killed mid-group-commit, a follower
// promoted, and the invariant checked that every acknowledged entry is
// readable exactly once and in per-writer order — no lost acks.
func TestClusterFailover(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var tns [3]*testNode
	for i := 0; i < 3; i++ {
		devs, nvrams := freshShards(2)
		peers := make([]string, 0, 2)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		tns[i] = startNode(t, addrs[i], peers, devs, nvrams, i == 0, i == 0, nil)
	}

	ctx := context.Background()
	admin := testClient(t, 1, addrs, nil)
	paths := []string{"/alpha", "/beta"}
	var ids [2]client.ID
	for i, p := range paths {
		id, err := admin.CreateLog(ctx, p, 0o644, "test")
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		ids[i] = id
	}

	const writers = 3
	const perWriter = 45
	filler := strings.Repeat("x", 24)
	var ackedTotal atomic.Int64
	acked := make([][]string, writers) // per-writer acked payloads, in order
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := testClient(t, uint64(100+g), addrs, nil)
			id := ids[g%2]
			for i := 0; i < perWriter; i++ {
				payload := fmt.Sprintf("g%d-%04d:%s", g, i, filler)
				_, err := c.Append(ctx, id, []byte(payload), client.AppendOptions{Forced: true})
				if err != nil {
					continue // unacked: no durability claim to check
				}
				acked[g] = append(acked[g], payload)
				ackedTotal.Add(1)
			}
		}(g)
	}

	// Kill the leader mid-storm, while group commits are in flight.
	waitFor(t, "30 acked appends", 15*time.Second, func() bool { return ackedTotal.Load() >= 30 })
	tns[0].node.Kill()

	// Promote whichever follower applied the most of the stream: the ack
	// rule guarantees it holds every acknowledged entry.
	time.Sleep(300 * time.Millisecond)
	promoted, other := tns[1], tns[2]
	if tns[2].node.Applied() > tns[1].node.Applied() {
		promoted, other = tns[2], tns[1]
	}
	newTerm, err := promoted.node.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if newTerm != 2 {
		t.Fatalf("promoted term = %d, want 2", newTerm)
	}
	wg.Wait()
	if got := ackedTotal.Load(); got < 30 {
		t.Fatalf("only %d acked appends, storm too small", got)
	}

	// Promotion must have recovered via checkpoint + tail replay, not a
	// full-volume scan.
	rec, ok := promoted.node.PromotionRecovery()
	if !ok {
		t.Fatal("no promotion recovery report")
	}
	if rec.CheckpointsUsed < 1 {
		t.Errorf("promotion used no checkpoints (sealed=%d replayed=%d)", rec.SealedBlocks, rec.BlocksReplayed)
	}
	if rec.SealedBlocks < 8 {
		t.Errorf("only %d sealed blocks; storm too small to exercise checkpointed recovery", rec.SealedBlocks)
	}
	if rec.BlocksReplayed >= rec.SealedBlocks {
		t.Errorf("promotion replayed %d of %d sealed blocks: recovery not checkpoint-bounded",
			rec.BlocksReplayed, rec.SealedBlocks)
	}

	// Every acked entry must be present exactly once, in per-writer order.
	reader := testClient(t, 7, []string{promoted.addr}, nil)
	position := make(map[string]int)   // payload -> scan position
	entryAt := make(map[string][3]int) // payload -> (shard, block, index)
	scanPos := 0
	for _, p := range paths {
		cur, err := reader.OpenCursor(ctx, p)
		if err != nil {
			t.Fatalf("cursor %s: %v", p, err)
		}
		for {
			e, err := cur.Next(ctx)
			if err != nil {
				break
			}
			payload := string(e.Data)
			if _, dup := position[payload]; dup {
				t.Errorf("payload %q appears more than once", payload[:12])
			}
			position[payload] = scanPos
			entryAt[payload] = [3]int{e.Shard, e.Block, e.Index}
			scanPos++
		}
		cur.Close()
	}
	for g := 0; g < writers; g++ {
		last := -1
		for i, payload := range acked[g] {
			pos, found := position[payload]
			if !found {
				t.Fatalf("ACKED entry lost after failover: writer %d append %d (%q)", g, i, payload[:12])
			}
			if pos <= last {
				t.Errorf("writer %d order violated: append %d at scan pos %d after pos %d", g, i, pos, last)
			}
			last = pos
		}
	}

	// Restart the killed leader as a follower on its old address: it must
	// converge with the new leader (a reset is legitimate here — it may
	// hold blocks the new leader never saw — but state must match after).
	restarted := startNode(t, addrs[0], []string{addrs[1], addrs[2]}, tns[0].devs, tns[0].nvrams, false, false, nil)
	waitFor(t, "restarted node to converge", 15*time.Second, func() bool {
		st := restarted.node.Status()
		// LeaderAddr proves the new leader's stream handshake happened — the
		// restarted node holds most blocks already, so bare extent equality
		// could pass before it has rejoined (and before it can serve clients).
		return st.LeaderAddr == promoted.addr &&
			shardEndsEqual(st.ShardEnds, promoted.node.Status().ShardEnds)
	})

	// A converged replica serves acked sealed history directly.
	follower := testClient(t, 8, []string{restarted.addr}, nil)
	checked := 0
	for g := 0; g < writers && checked < 5; g++ {
		for _, payload := range acked[g] {
			at, ok := entryAt[payload]
			if !ok {
				continue
			}
			e, err := follower.ReadAt(ctx, at[0], at[1], at[2])
			if err != nil {
				continue // tail entries are not sealed; skip
			}
			if string(e.Data) != payload {
				t.Errorf("follower read at %v = %q, want %q", at, e.Data, payload)
			}
			checked++
			if checked >= 5 {
				break
			}
		}
	}
	if checked == 0 {
		t.Error("no acked entry was readable from the restarted follower")
	}
	_ = other
}

// TestClusterPartition isolates the leader: the majority side must elect
// and accept writes, the minority leader must refuse writes BEFORE
// executing them, and on heal the old leader must demote and catch up via
// suffix fetch alone — no reset, because the refusal kept it from
// diverging.
func TestClusterPartition(t *testing.T) {
	part := faults.NewPartition()
	tcp := func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	addrs := freeAddrs(t, 3)
	var tns [3]*testNode
	for i := 0; i < 3; i++ {
		devs, nvrams := freshShards(1)
		peers := make([]string, 0, 2)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		tns[i] = startNode(t, addrs[i], peers, devs, nvrams, i == 0, i == 0, part.Dialer(addrs[i], tcp))
	}
	ctx := context.Background()

	c1 := testClient(t, 11, addrs, part.Dialer("client1", tcp))
	id, err := c1.CreateLog(ctx, "/partlog", 0o644, "test")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	big := strings.Repeat("a", testBlockSize+40) // > block size: every append seals blocks
	if _, err := c1.Append(ctx, id, []byte("w0:"+big), client.AppendOptions{Forced: true}); err != nil {
		t.Fatalf("pre-partition append: %v", err)
	}

	// Let both followers fully catch up first: the test promotes a specific
	// follower, so that follower must hold every acked frame (in production
	// the operator promotes the max-applied replica, as TestClusterFailover
	// does).
	waitFor(t, "followers to catch up", 10*time.Second, func() bool {
		for _, p := range tns[0].node.Status().Peers {
			if !p.Alive || p.Lag != 0 {
				return false
			}
		}
		return true
	})

	// Cut the leader off from both followers (clients can still reach it).
	part.Isolate(addrs[0], addrs[1], addrs[2])
	waitFor(t, "leader to lose its followers", 10*time.Second, func() bool {
		for _, p := range tns[0].node.Status().Peers {
			if p.Alive {
				return false
			}
		}
		return true
	})

	// The minority leader must refuse the write up front, leaving its
	// devices untouched — that is what makes post-heal catch-up suffix-only.
	endsBefore := tns[0].node.Status().ShardEnds
	c2, err := client.DialContext(ctx, addrs[0], client.Options{SessionID: 12, DialAddr: tcp,
		Retry: &faults.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}})
	if err != nil {
		t.Fatalf("dial isolated leader: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Append(ctx, id, []byte("minority:"+big), client.AppendOptions{Forced: true}); err == nil {
		t.Fatal("isolated leader accepted a write without quorum")
	} else if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("refusal error = %v, want quorum refusal", err)
	}
	if got := tns[0].node.Status().ShardEnds; !shardEndsEqual(got, endsBefore) {
		t.Fatalf("minority leader executed a refused write: ends %v -> %v", endsBefore, got)
	}
	if tns[0].node.Status().QuorumRefusals == 0 {
		t.Error("quorum refusal not counted")
	}

	// Promote a majority follower over the raw wire protocol.
	conn, err := net.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := server.WriteFrame(conn, wire.OpPromote, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	status, _, _, payload, err := server.ReadFrame(conn)
	conn.Close()
	if err != nil || status != server.StatusOK {
		t.Fatalf("promote over wire: status %d err %v", status, err)
	}
	if term, _ := wire.Uint64(payload); term != 2 {
		t.Fatalf("promoted term = %d, want 2", term)
	}

	// The majority side accepts forced writes (quorum = new leader + the
	// other follower) once the new leader's stream to that follower is up;
	// the failover client finds the new leader itself.
	waitFor(t, "new leader to reach the other follower", 10*time.Second, func() bool {
		for _, p := range tns[1].node.Status().Peers {
			if p.Addr == addrs[2] && p.Alive {
				return true
			}
		}
		return false
	})
	for i := 1; i <= 3; i++ {
		if _, err := c1.Append(ctx, id, []byte(fmt.Sprintf("w%d:%s", i, big)), client.AppendOptions{Forced: true}); err != nil {
			t.Fatalf("majority append w%d: %v", i, err)
		}
	}

	// Heal. The old leader learns the higher term from its own handshakes,
	// steps down, and is caught up by the new leader — by suffix only.
	part.HealAll()
	waitFor(t, "old leader to step down", 10*time.Second, func() bool {
		return tns[0].node.Status().Role == "follower"
	})
	waitFor(t, "healed node to converge", 10*time.Second, func() bool {
		return shardEndsEqual(tns[0].node.Status().ShardEnds, tns[1].node.Status().ShardEnds)
	})
	var peerA *PeerStatus
	for i := range tns[1].node.Status().Peers {
		p := tns[1].node.Status().Peers[i]
		if p.Addr == addrs[0] {
			peerA = &p
		}
	}
	if peerA == nil {
		t.Fatal("new leader has no peer entry for the healed node")
	}
	if peerA.Resets != 0 {
		t.Errorf("healed node was reset %d times; refusal should have prevented divergence", peerA.Resets)
	}
	total := 0
	for _, w := range tns[1].node.Status().ShardEnds {
		total += w
	}
	if peerA.CatchupBlocks <= 0 {
		t.Error("no catch-up blocks shipped to the healed node")
	} else if int(peerA.CatchupBlocks) >= total+1 {
		t.Errorf("catch-up shipped %d blocks with only %d data blocks total: not a suffix fetch",
			peerA.CatchupBlocks, total)
	}
	if tns[0].node.Status().Demotions != 1 {
		t.Errorf("old leader demotions = %d, want 1", tns[0].node.Status().Demotions)
	}

	// The demoted node now redirects the minority client to the new leader
	// in one round trip (typed ErrNotLeader under the hood).
	if _, err := c2.Append(ctx, id, []byte("post-heal:"+big), client.AppendOptions{Forced: true}); err != nil {
		t.Fatalf("append via redirect after heal: %v", err)
	}

	// All acked writes, pre- and post-partition, are readable in order.
	cur, err := c1.OpenCursor(ctx, "/partlog")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []string
	for {
		e, err := cur.Next(ctx)
		if err != nil {
			break
		}
		got = append(got, string(e.Data[:strings.Index(string(e.Data), ":")]))
	}
	want := []string{"w0", "w1", "w2", "w3", "post-heal"}
	if len(got) != len(want) {
		t.Fatalf("log has %d entries %v, want %v", len(got), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %q, want %q (full scan %v)", i, got[i], want[i], got)
		}
	}
}

// TestFollowerRedirect is the satellite regression: a write sent to a
// follower must come back as one StatusNotLeader round trip that the
// client turns into a redirect — dial follower, dial leader, done.
func TestFollowerRedirect(t *testing.T) {
	addrs := freeAddrs(t, 2)
	devsA, nvA := freshShards(1)
	devsB, nvB := freshShards(1)
	a := startNode(t, addrs[0], []string{addrs[1]}, devsA, nvA, true, true, nil)
	b := startNode(t, addrs[1], []string{addrs[0]}, devsB, nvB, false, false, nil)
	_ = a

	// Wait until the follower has learned the leader's address.
	waitFor(t, "follower to learn the leader", 10*time.Second, func() bool {
		return b.node.Status().LeaderAddr == a.addr
	})

	var mu sync.Mutex
	var dialed []string
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		mu.Lock()
		dialed = append(dialed, addr)
		mu.Unlock()
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
	ctx := context.Background()
	c, err := client.DialContext(ctx, b.addr, client.Options{SessionID: 21, DialAddr: dial})
	if err != nil {
		t.Fatalf("dial follower: %v", err)
	}
	defer c.Close()
	if _, err := c.CreateLog(ctx, "/redlog", 0o644, "test"); err != nil {
		t.Fatalf("create via follower: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{b.addr, a.addr}
	if len(dialed) != 2 || dialed[0] != want[0] || dialed[1] != want[1] {
		t.Fatalf("dial sequence %v, want exactly %v (one-round-trip redirect)", dialed, want)
	}
}
