package catalog

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"clio/internal/entrymap"
)

func TestReservedIDsMatchEntrymap(t *testing.T) {
	if VolumeSeqID != entrymap.VolumeSeqID || EntrymapID != entrymap.EntrymapID ||
		CatalogID != entrymap.CatalogID || BadBlockID != entrymap.BadBlockID ||
		FirstClientID != entrymap.FirstClientID || CheckpointID != entrymap.CheckpointID ||
		CompactID != entrymap.CompactID {
		t.Error("reserved id constants diverge from internal/entrymap")
	}
}

func TestNewTableSystemFiles(t *testing.T) {
	tab := NewTable()
	if tab.Len() != 6 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for _, id := range []uint16{VolumeSeqID, EntrymapID, CatalogID, BadBlockID, CheckpointID, CompactID} {
		d, err := tab.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if !d.System {
			t.Errorf("id %d not marked system", id)
		}
	}
	names, err := tab.List(VolumeSeqID)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{".badblocks", ".catalog", ".checkpoint", ".compact", ".entrymap"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("List(/) = %v", names)
	}
}

func TestCreateResolvePath(t *testing.T) {
	tab := NewTable()
	mail, _, err := tab.Create(VolumeSeqID, "mail", 0o644, "root", 100)
	if err != nil {
		t.Fatal(err)
	}
	smith, _, err := tab.Create(mail.ID, "smith", 0o600, "smith", 200)
	if err != nil {
		t.Fatal(err)
	}
	if mail.ID < FirstClientID || smith.ID == mail.ID {
		t.Errorf("ids: mail=%d smith=%d", mail.ID, smith.ID)
	}
	id, err := tab.Resolve("/mail/smith")
	if err != nil || id != smith.ID {
		t.Errorf("Resolve = %d, %v", id, err)
	}
	if id, err := tab.Resolve("/mail"); err != nil || id != mail.ID {
		t.Errorf("Resolve /mail = %d, %v", id, err)
	}
	if id, err := tab.Resolve("/"); err != nil || id != VolumeSeqID {
		t.Errorf("Resolve / = %d, %v", id, err)
	}
	p, err := tab.PathOf(smith.ID)
	if err != nil || p != "/mail/smith" {
		t.Errorf("PathOf = %q, %v", p, err)
	}
	if _, err := tab.Resolve("/mail/jones"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing path: %v", err)
	}
	if _, err := tab.Resolve("relative"); !errors.Is(err, ErrBadName) {
		t.Errorf("relative path: %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	tab := NewTable()
	if _, _, err := tab.Create(999, "x", 0, "", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown parent: %v", err)
	}
	if _, _, err := tab.Create(VolumeSeqID, "a/b", 0, "", 0); !errors.Is(err, ErrBadName) {
		t.Errorf("slash in name: %v", err)
	}
	if _, _, err := tab.Create(VolumeSeqID, "", 0, "", 0); !errors.Is(err, ErrBadName) {
		t.Errorf("empty name: %v", err)
	}
	if _, _, err := tab.Create(CatalogID, "x", 0, "", 0); !errors.Is(err, ErrReserved) {
		t.Errorf("create under system log: %v", err)
	}
	if _, _, err := tab.Create(VolumeSeqID, "dup", 0, "", 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tab.Create(VolumeSeqID, "dup", 0, "", 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestDescendants(t *testing.T) {
	tab := NewTable()
	mail, _, _ := tab.Create(VolumeSeqID, "mail", 0, "", 0)
	a, _, _ := tab.Create(mail.ID, "a", 0, "", 0)
	b, _, _ := tab.Create(mail.ID, "b", 0, "", 0)
	deep, _, _ := tab.Create(a.ID, "deep", 0, "", 0)
	got, err := tab.Descendants(mail.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{mail.ID, a.ID, b.ID, deep.ID}
	sortU16(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Descendants = %v, want %v", got, want)
	}
	leaf, err := tab.Descendants(b.ID)
	if err != nil || !reflect.DeepEqual(leaf, []uint16{b.ID}) {
		t.Errorf("leaf Descendants = %v, %v", leaf, err)
	}
}

func sortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestAttrChangesAndRetire(t *testing.T) {
	tab := NewTable()
	d, _, _ := tab.Create(VolumeSeqID, "audit", 0o600, "root", 1)
	if _, err := tab.SetPerms(d.ID, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := tab.Get(d.ID); got.Perms != 0o644 {
		t.Errorf("perms = %o", got.Perms)
	}
	if _, err := tab.SetOwner(d.ID, "ops"); err != nil {
		t.Fatal(err)
	}
	if got, _ := tab.Get(d.ID); got.Owner != "ops" {
		t.Errorf("owner = %q", got.Owner)
	}
	if _, err := tab.Retire(d.ID); err != nil {
		t.Fatal(err)
	}
	if got, _ := tab.Get(d.ID); !got.Retired {
		t.Error("not retired")
	}
	if _, err := tab.SetPerms(d.ID, 0); !errors.Is(err, ErrRetired) {
		t.Errorf("mutate retired: %v", err)
	}
	if _, _, err := tab.Create(d.ID, "x", 0, "", 0); !errors.Is(err, ErrRetired) {
		t.Errorf("create under retired: %v", err)
	}
	if _, err := tab.Retire(EntrymapID); !errors.Is(err, ErrReserved) {
		t.Errorf("retire system: %v", err)
	}
}

func TestReplayRebuildsTable(t *testing.T) {
	tab := NewTable()
	var recs []*Record
	mail, r, _ := tab.Create(VolumeSeqID, "mail", 0o644, "root", 10)
	recs = append(recs, r)
	smith, r, _ := tab.Create(mail.ID, "smith", 0o600, "smith", 20)
	recs = append(recs, r)
	r, _ = tab.SetPerms(smith.ID, 0o640)
	recs = append(recs, r)
	r, _ = tab.Retire(mail.ID)
	recs = append(recs, r)

	// Round-trip each record through its wire form, then replay.
	rebuilt := NewTable()
	for _, rec := range recs {
		dec, err := DecodeRecord(rec.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dec, rec) {
			t.Fatalf("record round trip: got %+v want %+v", dec, rec)
		}
		if err := rebuilt.Apply(dec); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(rebuilt.IDs(), tab.IDs()) {
		t.Fatalf("ids: %v vs %v", rebuilt.IDs(), tab.IDs())
	}
	for _, id := range tab.IDs() {
		a, _ := tab.Get(id)
		b, _ := rebuilt.Get(id)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("descriptor %d: %+v vs %+v", id, a, b)
		}
	}
	// Replay must continue id allocation past the replayed ids.
	d, _, err := rebuilt.Create(VolumeSeqID, "fresh", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID <= smith.ID {
		t.Errorf("post-replay id %d not past %d", d.ID, smith.ID)
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{9, 1},          // unknown kind
		{kindCreate, 1}, // truncated
		{kindSetPerm},
	}
	for i, b := range bad {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestIDExhaustion(t *testing.T) {
	tab := NewTable()
	count := 0
	for {
		_, _, err := tab.Create(VolumeSeqID, nameFor(count), 0, "", 0)
		if err != nil {
			if !errors.Is(err, ErrIDsExhausted) {
				t.Fatalf("unexpected error at %d: %v", count, err)
			}
			break
		}
		count++
	}
	// 4096 ids minus the 4 low reserved ids and the checkpoint and compact
	// ids at the top of the space.
	if count != MaxLogID-FirstClientID-1 {
		t.Errorf("created %d log files before exhaustion, want %d", count, MaxLogID-FirstClientID-1)
	}
}

func nameFor(i int) string {
	const digits = "abcdefghij"
	out := []byte{'f'}
	for ; i > 0; i /= 10 {
		out = append(out, digits[i%10])
	}
	return string(out)
}

func TestValidNameProperty(t *testing.T) {
	f := func(s string) bool {
		ok := ValidName(s)
		manual := s != "" && len(s) <= 255 && s != "." && s != ".."
		for _, c := range []byte(s) {
			if c == '/' || c == 0 {
				manual = false
			}
		}
		return ok == manual
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathRoundTripProperty(t *testing.T) {
	tab := NewTable()
	parents := []uint16{VolumeSeqID}
	for i := 0; i < 50; i++ {
		parent := parents[i%len(parents)]
		d, _, err := tab.Create(parent, nameFor(i+1), 0, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, d.ID)
	}
	for _, id := range tab.IDs() {
		p, err := tab.PathOf(id)
		if err != nil {
			t.Fatal(err)
		}
		back, err := tab.Resolve(p)
		if err != nil || back != id {
			t.Errorf("Resolve(PathOf(%d)=%q) = %d, %v", id, p, back, err)
		}
	}
}

func TestSnapshotRecords(t *testing.T) {
	tab := NewTable()
	mail, _, _ := tab.Create(VolumeSeqID, "mail", 0o644, "root", 10)
	smith, _, _ := tab.Create(mail.ID, "smith", 0o600, "smith", 20)
	dead, _, _ := tab.Create(VolumeSeqID, "dead", 0, "", 30)
	if _, err := tab.Retire(dead.ID); err != nil {
		t.Fatal(err)
	}
	recs := tab.SnapshotRecords()
	// Replaying the snapshot alone reconstructs the client namespace.
	fresh := NewTable()
	for _, r := range recs {
		dec, err := DecodeRecord(r.Encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Apply(dec); err != nil {
			t.Fatalf("snapshot replay: %v", err)
		}
	}
	if got, err := fresh.Resolve("/mail/smith"); err != nil || got != smith.ID {
		t.Errorf("resolve after snapshot: %d, %v", got, err)
	}
	d, err := fresh.Get(dead.ID)
	if err != nil || !d.Retired {
		t.Errorf("retired state lost: %+v, %v", d, err)
	}
	// Snapshot replay over the ORIGINAL table (all volumes mounted) is a
	// no-op, not an error.
	for _, r := range recs {
		if err := tab.Apply(r); err != nil {
			t.Fatalf("idempotent replay: %v", err)
		}
	}
	// A conflicting create with the same id is still rejected.
	bad := &Record{Kind: 1, ID: mail.ID, Parent: VolumeSeqID, Name: "other"}
	if err := fresh.Apply(bad); err == nil {
		t.Error("conflicting duplicate create accepted")
	}
}

func TestSnapshotParentOrder(t *testing.T) {
	// Children created before their parents' ids (id wrap scenarios) must
	// still snapshot parent-first.
	tab := NewTable()
	a, _, _ := tab.Create(VolumeSeqID, "a", 0, "", 1)
	b, _, _ := tab.Create(a.ID, "b", 0, "", 2)
	_, _, _ = tab.Create(b.ID, "c", 0, "", 3)
	recs := tab.SnapshotRecords()
	seen := map[uint16]bool{VolumeSeqID: true}
	for _, r := range recs {
		if r.Kind == 1 {
			if !seen[r.Parent] {
				t.Fatalf("child %d snapshot before parent %d", r.ID, r.Parent)
			}
			seen[r.ID] = true
		}
	}
}
