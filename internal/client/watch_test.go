package client

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/shard"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// watchPair returns a redialable client (Watch needs a second connection)
// over an n-shard in-memory store served through net.Pipes.
func watchPair(t *testing.T, shards int) (*Client, *shard.Store) {
	t.Helper()
	svcs := make([]*core.Service, shards)
	for i := range svcs {
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
		svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
	}
	st, err := shard.New(svcs)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewStore(st)
	dialer := func(ctx context.Context) (net.Conn, error) {
		cConn, sConn := net.Pipe()
		go srv.ServeConn(sConn)
		return cConn, nil
	}
	cl, err := DialContext(bg, "", Options{Dialer: dialer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close(); srv.Close(); st.Close() })
	return cl, st
}

func recvSub(t *testing.T, sub logapi.Subscription) *Entry {
	t.Helper()
	ctx, cancel := context.WithTimeout(bg, 5*time.Second)
	defer cancel()
	e, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return e
}

// TestWatchOverWire is the network tentpole contract: a subscription on a
// dedicated connection receives pushed entries as they commit, no polling.
func TestWatchOverWire(t *testing.T) {
	cl, _ := watchPair(t, 1)
	id, err := cl.CreateLog(bg, "/feed", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Watch(bg, "/feed", logapi.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Nothing pending: Recv blocks.
	ctx, cancel := context.WithTimeout(bg, 20*time.Millisecond)
	if _, err := sub.Recv(ctx); err != context.DeadlineExceeded {
		cancel()
		t.Fatalf("Recv before publish: %v", err)
	}
	cancel()

	for i := 0; i < 5; i++ {
		if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("live-%d", i)),
			AppendOptions{Forced: true, Timestamped: true}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		e := recvSub(t, sub)
		if want := fmt.Sprintf("live-%d", i); string(e.Data) != want {
			t.Fatalf("entry %d: %q, want %q", i, e.Data, want)
		}
		if !e.Forced || !e.Timestamped {
			t.Fatalf("entry %d lost flags: %+v", i, e)
		}
	}
}

// TestWatchCreditFlowControl drives far more entries than the credit window
// through a deliberately tiny window; the Recv-path credit grants must keep
// the stream moving and in order.
func TestWatchCreditFlowControl(t *testing.T) {
	const total = 300
	cl, _ := watchPair(t, 1)
	id, err := cl.CreateLog(bg, "/firehose", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cl.Watch(bg, "/firehose", logapi.WatchOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	errc := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("%06d", i)),
				AppendOptions{Forced: true}); err != nil {
				errc <- fmt.Errorf("append %d: %w", i, err)
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < total; i++ {
		e := recvSub(t, sub)
		if want := fmt.Sprintf("%06d", i); string(e.Data) != want {
			t.Fatalf("entry %d: %q (gap, duplicate, or reorder)", i, e.Data)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestWatchRootAcrossShards live-merges a sharded store's tails over the
// wire.
func TestWatchRootAcrossShards(t *testing.T) {
	cl, st := watchPair(t, 3)

	// One log per shard, probing segments until all shards are covered. The
	// subscription opens after the creations: the root tail carries catalog
	// records too (every entry belongs to the volume sequence log), and this
	// test wants only the data entries.
	var ids []ID
	covered := make(map[int]bool)
	for i := 0; len(covered) < st.Shards() && i < 256; i++ {
		p := fmt.Sprintf("/seg%03d", i)
		sh, err := st.ShardFor(p)
		if err != nil {
			t.Fatal(err)
		}
		if covered[sh] {
			continue
		}
		covered[sh] = true
		id, err := cl.CreateLog(bg, p, 0o644, "t")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	sub, err := cl.Watch(bg, "/", logapi.WatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	want := make(map[string]bool)
	for round := 0; round < 3; round++ {
		for i, id := range ids {
			data := fmt.Sprintf("r%d-s%d", round, i)
			if _, err := cl.Append(bg, id, []byte(data), AppendOptions{Forced: true}); err != nil {
				t.Fatal(err)
			}
			want[data] = true
		}
	}
	for range want {
		e := recvSub(t, sub)
		if !want[string(e.Data)] {
			t.Fatalf("unexpected or duplicate entry %q", e.Data)
		}
		delete(want, string(e.Data))
	}
}

// TestWatchResumeFromPosition closes a subscription and resumes from the
// last delivered entry's gap position — the consumer-group recovery motion.
func TestWatchResumeFromPosition(t *testing.T) {
	cl, _ := watchPair(t, 1)
	id, err := cl.CreateLog(bg, "/feed", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("e%d", i)), AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := cl.Watch(bg, "/feed", logapi.WatchOptions{FromStart: true})
	if err != nil {
		t.Fatal(err)
	}
	recvSub(t, sub)
	e := recvSub(t, sub) // stop after e1
	sub.Close()

	resumed, err := cl.Watch(bg, "/feed", logapi.WatchOptions{
		From: []logapi.Position{{Shard: e.Shard, Block: e.Block, Rec: e.Index + 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for i := 2; i < 6; i++ {
		got := recvSub(t, resumed)
		if want := fmt.Sprintf("e%d", i); string(got.Data) != want {
			t.Fatalf("resumed: %q, want %q", got.Data, want)
		}
	}
}

// TestGroupOpsOverWire exercises OpStreamAck/OpStreamRebalance: records land
// in the group's offsets log, readable (and watchable) like any log file.
func TestGroupOpsOverWire(t *testing.T) {
	cl, _ := watchPair(t, 2)
	ts1, err := cl.GroupRebalance(bg, "workers", wire.GroupRec{Kind: wire.GroupJoin, Member: "c1"})
	if err != nil || ts1 == 0 {
		t.Fatalf("join: %d, %v", ts1, err)
	}
	ts2, err := cl.GroupAck(bg, "workers", wire.GroupRec{
		Kind: wire.GroupAck, Member: "c1", Partition: 1, Shard: 1, Block: 3, Rec: 2, Count: 17,
	})
	if err != nil || ts2 <= ts1 {
		t.Fatalf("ack: %d, %v", ts2, err)
	}
	// Kind/op mismatches are refused.
	if _, err := cl.GroupAck(bg, "workers", wire.GroupRec{Kind: wire.GroupJoin, Member: "c1"}); err == nil {
		t.Fatal("join accepted through the ack op")
	}
	if _, err := cl.GroupRebalance(bg, "workers", wire.GroupRec{Kind: wire.GroupAck, Member: "c1"}); err == nil {
		t.Fatal("ack accepted through the rebalance op")
	}

	// The trail reads back in order through an ordinary watch.
	sub, err := cl.Watch(bg, server.OffsetsRoot+"/workers", logapi.WatchOptions{FromStart: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	r1, err := wire.DecodeGroupRec(recvSub(t, sub).Data)
	if err != nil || r1.Kind != wire.GroupJoin || r1.Member != "c1" {
		t.Fatalf("record 1: %+v, %v", r1, err)
	}
	r2, err := wire.DecodeGroupRec(recvSub(t, sub).Data)
	if err != nil || r2.Kind != wire.GroupAck || r2.Count != 17 {
		t.Fatalf("record 2: %+v, %v", r2, err)
	}
}
