package archive_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"clio/internal/archive"
	"clio/internal/core"
	"clio/internal/volume"
	"clio/internal/wodev"
)

var ctx = context.Background()

func newSeq(t *testing.T) (*core.Service, *[]*wodev.MemDevice, core.Options, uint16) {
	t.Helper()
	devs := &[]*wodev.MemDevice{wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 24})}
	now := int64(0)
	opt := core.Options{
		BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 1000; return now },
		Allocate: func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
			d := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 24})
			*devs = append(*devs, d)
			return d, nil
		},
	}
	svc, err := core.New((*devs)[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/l", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	return svc, devs, opt, id
}

func appendN(t *testing.T, svc *core.Service, id uint16, from, to int) []string {
	t.Helper()
	var out []string
	for i := from; i < to; i++ {
		p := fmt.Sprintf("entry-%04d-%s", i, "padpadpadpadpadpad")
		if _, err := svc.Append(id, []byte(p), core.AppendOptions{Forced: true}); err != nil && !core.IsDegraded(err) {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func asDevices(devs *[]*wodev.MemDevice) []wodev.Device {
	out := make([]wodev.Device, len(*devs))
	for i, d := range *devs {
		out[i] = d
	}
	return out
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	svc, devs, opt, id := newSeq(t)
	want := appendN(t, svc, id, 0, 80)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksCopied == 0 || res.VolumesSeen < 2 {
		t.Fatalf("result: %+v", res)
	}

	restored, err := archive.Restore(ctx, archive.NewDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.Open(restored, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	cur, err := svc2.OpenCursor("/l")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		e, err := cur.Next()
		if err != nil {
			break
		}
		got = append(got, string(e.Data))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("restored %d entries, want %d", len(got), len(want))
	}
}

func TestIncrementalBackupCopiesOnlyTheTail(t *testing.T) {
	svc, devs, _, id := newSeq(t)
	appendN(t, svc, id, 0, 60)
	if err := svc.Force(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res1, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	// No new writes: the second run copies nothing.
	res2, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if res2.BlocksCopied != 0 {
		t.Errorf("idle rerun copied %d blocks", res2.BlocksCopied)
	}
	if res2.BlocksSkipped < res1.BlocksCopied {
		t.Errorf("skipped %d < previously copied %d", res2.BlocksSkipped, res1.BlocksCopied)
	}
	// More writes: the third run copies only the increment.
	appendN(t, svc, id, 60, 80)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	res3, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if res3.BlocksCopied == 0 || res3.BlocksCopied >= res1.BlocksCopied {
		t.Errorf("increment copied %d blocks (initial %d)", res3.BlocksCopied, res1.BlocksCopied)
	}
}

func TestBackupPreservesInvalidatedBlocks(t *testing.T) {
	svc, devs, opt, id := newSeq(t)
	appendN(t, svc, id, 0, 10)
	// Damage the next unwritten block so the writer invalidates it.
	d0 := (*devs)[0]
	if err := d0.Damage(d0.Written(), nil); err != nil {
		t.Fatal(err)
	}
	appendN(t, svc, id, 10, 30)
	if svc.Stats().DeadBlocks != 1 {
		t.Fatalf("DeadBlocks = %d", svc.Stats().DeadBlocks)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir)); err != nil {
		t.Fatal(err)
	}
	restored, err := archive.Restore(ctx, archive.NewDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.Open(restored, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	cur, _ := svc2.OpenCursor("/l")
	n := 0
	for {
		if _, err := cur.Next(); err != nil {
			break
		}
		n++
	}
	if n != 30 {
		t.Errorf("restored %d entries, want 30", n)
	}
}

func TestRestoreEmptyDir(t *testing.T) {
	if _, err := archive.Restore(ctx, archive.NewDir(t.TempDir())); err == nil {
		t.Error("empty dir restored")
	}
}

func TestBackupRejectsUnformattedDevice(t *testing.T) {
	raw := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 8})
	if _, err := archive.Backup(ctx, []wodev.Device{raw}, archive.NewDir(t.TempDir())); err == nil {
		t.Error("unformatted device accepted")
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	svc, devs, _, id := newSeq(t)
	appendN(t, svc, id, 0, 10)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("not a manifest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := archive.Restore(ctx, archive.NewDir(dir)); err == nil {
		t.Error("corrupt manifest accepted")
	}
	if _, err := archive.Backup(ctx, asDevices(devs), archive.NewDir(dir)); err == nil {
		t.Error("backup over corrupt manifest accepted")
	}
}

// TestMemBackendRoundTrip runs the backup/restore round trip over the
// in-memory backend, exercising the Backend contract shared with Dir.
func TestMemBackendRoundTrip(t *testing.T) {
	svc, devs, opt, id := newSeq(t)
	want := appendN(t, svc, id, 0, 40)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	be := archive.NewMem()
	if _, err := archive.Backup(ctx, asDevices(devs), be); err != nil {
		t.Fatal(err)
	}
	restored, err := archive.Restore(ctx, be)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.Open(restored, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	cur, err := svc2.OpenCursor("/l")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		e, err := cur.Next()
		if err != nil {
			break
		}
		got = append(got, string(e.Data))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("restored %d entries, want %d", len(got), len(want))
	}
}

// TestBackupVolumeAndReadThrough archives one volume and reads its blocks
// back through ReadVolumeBlock, byte for byte, invalidation included.
func TestBackupVolumeAndReadThrough(t *testing.T) {
	svc, devs, _, id := newSeq(t)
	appendN(t, svc, id, 0, 10)
	d0 := (*devs)[0]
	if err := d0.Damage(d0.Written(), nil); err != nil {
		t.Fatal(err)
	}
	appendN(t, svc, id, 10, 30)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	be := archive.NewMem()
	n, err := archive.BackupVolume(ctx, be, d0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no blocks archived")
	}
	// Idempotent: a second call copies nothing.
	if n2, err := archive.BackupVolume(ctx, be, d0); err != nil || n2 != 0 {
		t.Fatalf("recopy: n=%d err=%v", n2, err)
	}
	written := d0.Written()
	if ok, err := archive.HasVolume(ctx, be, 0, written); err != nil || !ok {
		t.Fatalf("HasVolume: %v %v", ok, err)
	}
	want := make([]byte, d0.BlockSize())
	got := make([]byte, d0.BlockSize())
	for b := 0; b < written; b++ {
		werr := d0.ReadBlock(b, want)
		gerr := archive.ReadVolumeBlock(ctx, be, 0, b, got)
		if werr != nil {
			if !errors.Is(werr, wodev.ErrInvalidated) || !errors.Is(gerr, wodev.ErrInvalidated) {
				t.Fatalf("block %d: device %v, archive %v", b, werr, gerr)
			}
			continue
		}
		if gerr != nil {
			t.Fatalf("block %d: %v", b, gerr)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("block %d differs", b)
		}
	}
}

// TestAdoptMergesArchives adopts a cold tier's volumes into a backup
// archive and restores the union.
func TestAdoptMergesArchives(t *testing.T) {
	svc, devs, _, id := newSeq(t)
	appendN(t, svc, id, 0, 60)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	all := asDevices(devs)
	cold, hot := archive.NewMem(), archive.NewMem()
	// Volume 0 lives only in the cold archive, the rest only in the hot one.
	if _, err := archive.BackupVolume(ctx, cold, all[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := archive.Backup(ctx, all[1:], hot); err != nil {
		t.Fatal(err)
	}
	vols, blocks, err := archive.Adopt(ctx, hot, cold)
	if err != nil {
		t.Fatal(err)
	}
	if vols != 1 || blocks == 0 {
		t.Fatalf("adopted %d volumes, %d blocks", vols, blocks)
	}
	restored, err := archive.Restore(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(all) {
		t.Fatalf("restored %d devices, want %d", len(restored), len(all))
	}
	// A second adopt is a no-op.
	if vols, blocks, err = archive.Adopt(ctx, hot, cold); err != nil || vols != 0 || blocks != 0 {
		t.Fatalf("re-adopt: %d %d %v", vols, blocks, err)
	}
}
