package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"clio/internal/archive"
	"clio/internal/wire"
)

// This file holds the state side of the reclamation subsystem (compact.go
// holds the machinery): the cold-tier configuration, the compaction sidecar
// — the compactor's checkpoint, persisted through a StateStore — and the
// immutable view of committed compactions that the lock-free read path
// consults.
//
// The design never violates write-once semantics. A compacted volume is
// retired whole: its live entries are re-appended ("relocated") at the
// current tail, a commit record is forced, and only then is the old volume
// archived to the cold backend and its local device released. Nothing on any
// volume is ever rewritten; reclamation is the act of dropping the *local*
// copy of a volume whose live content has been copied forward and whose full
// image is preserved cold.

// ErrNoColdTier is returned by CompactOnce when Options.Cold is unset.
var ErrNoColdTier = errors.New("clio: no cold tier configured")

// ColdTier wires the reclamation subsystem into a Service: where demoted
// volume images go, where the compactor's checkpoint lives, and how to
// release a demoted volume's local device.
type ColdTier struct {
	// Backend receives full volume images at demotion and serves cold
	// read-through at archival latency. Required.
	Backend archive.Backend
	// State persists the compaction sidecar — the commit point of every
	// compaction. Required. The sidecar is pure bookkeeping over immutable
	// log contents: if it is lost, committed-but-undemoted relocations
	// degrade to invisible garbage copies and the originals remain
	// canonical, so no acked entry is ever lost.
	State StateStore
	// Release is called after a demoted volume's device has been removed
	// from the mounted set, so the embedding store can reclaim the local
	// media (e.g. delete the volume file). Nil skips the callback.
	Release func(index uint32) error
	// Compact supplies the default policy for CompactOnce calls with a
	// zero CompactOptions.
	Compact CompactOptions
}

// StateStore persists the compaction sidecar. Load returns (nil, nil) when
// no state has ever been saved.
type StateStore interface {
	Load() ([]byte, error)
	Save(data []byte) error
}

// FileState is a StateStore backed by a single file, written atomically
// (tmp + rename) so a torn save leaves the previous state intact.
type FileState struct {
	path string
}

// NewFileState returns a FileState at the given path.
func NewFileState(path string) *FileState { return &FileState{path: path} }

// Load implements StateStore.
func (f *FileState) Load() ([]byte, error) {
	data, err := os.ReadFile(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	return data, err
}

// Save implements StateStore.
func (f *FileState) Save(data []byte) error {
	tmp := f.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(f.path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// MemState is an in-memory StateStore for tests; it survives service
// crash/reopen cycles within one process the way a file would across them.
type MemState struct {
	mu   sync.Mutex
	data []byte
}

// NewMemState returns an empty MemState.
func NewMemState() *MemState { return &MemState{} }

// Load implements StateStore.
func (m *MemState) Load() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return nil, nil
	}
	return append([]byte(nil), m.data...), nil
}

// Save implements StateStore.
func (m *MemState) Save(data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = append([]byte(nil), data...)
	return nil
}

// copyRange is one contiguous run of relocated copies: the positions
// (global data block, record index of the first fragment) of the first and
// last copy, both inclusive. Record granularity matters: an aborted
// compaction's orphan copies can share their last block with a later
// committed batch, and a block-granular range would validate the orphans.
type copyRange struct {
	StartBlock, StartRec int
	EndBlock, EndRec     int
	// Seq is the logical sequence number of the range's first entry within
	// its origin volume: live entries are numbered in original append order
	// at the volume's first compaction, and a re-copy of a range's entries
	// derives its numbers from the range's Seq. A volume's ranges are kept
	// sorted by Seq, which is the order redirect iteration must deliver
	// them in — a host volume's physical layout can differ (a later pass
	// may place logically earlier entries at higher blocks).
	Seq int
}

// contains reports whether the first-fragment position (block, rec) lies in
// the range.
func (r *copyRange) contains(block, rec int) bool {
	if block < r.StartBlock || block > r.EndBlock {
		return false
	}
	if block == r.StartBlock && rec < r.StartRec {
		return false
	}
	if block == r.EndBlock && rec > r.EndRec {
		return false
	}
	return true
}

// relocVol is one committed compaction: a volume whose live entries have
// been copied forward. Until Demoted is set the volume's device is still
// mounted (hot); after demotion its image lives only in the cold backend.
type relocVol struct {
	Index    uint32 // volume header index
	Start    int    // global data index of the volume's first data block
	Blocks   int    // data blocks written to the volume (dead blocks included)
	Capacity int    // the volume's data capacity
	Demoted  bool   // image archived cold; local device released
	// IDs lists the client log files whose live entries were relocated out
	// of this volume. A cursor whose id set is covered by IDs reads the
	// volume through its relocated copies (hot) instead of the original
	// blocks (cold).
	IDs []uint16
	// Ranges locates the volume's relocated copies, sorted by Seq so the
	// list order is the volume's original entry order even when
	// re-compaction scatters the copies physically.
	Ranges []copyRange

	idSet map[uint16]bool // derived from IDs at decode/commit; not serialized
}

// end returns the global data index just past the volume's written blocks.
func (v *relocVol) end() int { return v.Start + v.Blocks }

// covers reports whether every id in the sorted list was relocated out of
// this volume (so a cursor over those ids can skip the volume's blocks and
// read the copies instead).
func (v *relocVol) covers(ids []uint16) bool {
	for _, id := range ids {
		if !v.idSet[id] {
			return false
		}
	}
	return len(ids) > 0
}

// compactState is the sidecar: every committed compaction, oldest volume
// first. It is owned by the compactor (under cmpMu); readers see it only
// through the immutable compactView published after each commit.
type compactState struct {
	Vols []*relocVol
}

// view builds the immutable reader view. Vols are kept sorted by Start.
func (st *compactState) view() *compactView {
	v := &compactView{vols: append([]*relocVol(nil), st.Vols...)}
	sort.Slice(v.vols, func(i, j int) bool { return v.vols[i].Start < v.vols[j].Start })
	return v
}

// clone deep-copies the state so a commit can be prepared without
// disturbing the published view.
func (st *compactState) clone() *compactState {
	out := &compactState{Vols: make([]*relocVol, len(st.Vols))}
	for i, v := range st.Vols {
		nv := *v
		nv.IDs = append([]uint16(nil), v.IDs...)
		nv.Ranges = append([]copyRange(nil), v.Ranges...)
		nv.idSet = make(map[uint16]bool, len(nv.IDs))
		for _, id := range nv.IDs {
			nv.idSet[id] = true
		}
		out.Vols[i] = &nv
	}
	return out
}

// compactView is the lock-free reader view of committed compactions,
// published via an atomic pointer at every commit.
type compactView struct {
	vols []*relocVol // sorted by Start
}

// volAt returns the committed compaction covering a global data block, or
// nil.
func (cv *compactView) volAt(global int) *relocVol {
	if cv == nil {
		return nil
	}
	i := sort.Search(len(cv.vols), func(i int) bool { return cv.vols[i].end() > global })
	if i < len(cv.vols) && cv.vols[i].Start <= global {
		return cv.vols[i]
	}
	return nil
}

// demotedAt is volAt restricted to demoted volumes — the cold read-through
// lookup.
func (cv *compactView) demotedAt(global int) *relocVol {
	v := cv.volAt(global)
	if v != nil && v.Demoted {
		return v
	}
	return nil
}

// originOf returns the compacted volume (and the containing range) whose
// committed copy ranges contain the first-fragment position (block, rec), or
// nil when the position is not a committed copy (an orphan from an aborted
// compaction).
func (cv *compactView) originOf(block, rec int) (*relocVol, *copyRange) {
	if cv == nil {
		return nil, nil
	}
	for _, v := range cv.vols {
		for i := range v.Ranges {
			if v.Ranges[i].contains(block, rec) {
				return v, &v.Ranges[i]
			}
		}
	}
	return nil, nil
}

// Sidecar wire format: magic, crc32 (IEEE, of everything after the crc),
// then uvarint-coded fields. Strictly versioned by magic; an unknown magic
// or failing crc is an error (the caller refuses to open rather than guess).
var compactMagic = []byte("clioCMP1")

// ErrBadSidecar indicates an undecodable compaction sidecar.
var ErrBadSidecar = errors.New("clio: malformed compaction sidecar")

func (st *compactState) encode() []byte {
	body := wire.PutUvarint(nil, uint64(len(st.Vols)))
	for _, v := range st.Vols {
		body = wire.PutUint32(body, v.Index)
		body = wire.PutUvarint(body, uint64(v.Start))
		body = wire.PutUvarint(body, uint64(v.Blocks))
		body = wire.PutUvarint(body, uint64(v.Capacity))
		if v.Demoted {
			body = append(body, 1)
		} else {
			body = append(body, 0)
		}
		body = wire.PutUvarint(body, uint64(len(v.IDs)))
		for _, id := range v.IDs {
			body = wire.PutUvarint(body, uint64(id))
		}
		body = wire.PutUvarint(body, uint64(len(v.Ranges)))
		for _, r := range v.Ranges {
			body = wire.PutUvarint(body, uint64(r.StartBlock))
			body = wire.PutUvarint(body, uint64(r.StartRec))
			body = wire.PutUvarint(body, uint64(r.EndBlock))
			body = wire.PutUvarint(body, uint64(r.EndRec))
			body = wire.PutUvarint(body, uint64(r.Seq))
		}
	}
	out := append([]byte(nil), compactMagic...)
	out = wire.PutUint32(out, crc32.ChecksumIEEE(body))
	return append(out, body...)
}

func decodeCompactState(data []byte) (*compactState, error) {
	if len(data) < len(compactMagic)+4 {
		return nil, ErrBadSidecar
	}
	for i, b := range compactMagic {
		if data[i] != b {
			return nil, fmt.Errorf("%w: bad magic", ErrBadSidecar)
		}
	}
	want, err := wire.Uint32(data[len(compactMagic):])
	if err != nil {
		return nil, ErrBadSidecar
	}
	body := data[len(compactMagic)+4:]
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSidecar)
	}
	u := func() (int, error) {
		v, n, err := wire.Uvarint(body)
		if err != nil {
			return 0, ErrBadSidecar
		}
		body = body[n:]
		return int(v), nil
	}
	nvols, err := u()
	if err != nil {
		return nil, err
	}
	st := &compactState{}
	for i := 0; i < nvols; i++ {
		if len(body) < 4 {
			return nil, ErrBadSidecar
		}
		idx, err := wire.Uint32(body)
		if err != nil {
			return nil, ErrBadSidecar
		}
		body = body[4:]
		v := &relocVol{Index: idx, idSet: make(map[uint16]bool)}
		if v.Start, err = u(); err != nil {
			return nil, err
		}
		if v.Blocks, err = u(); err != nil {
			return nil, err
		}
		if v.Capacity, err = u(); err != nil {
			return nil, err
		}
		if len(body) < 1 {
			return nil, ErrBadSidecar
		}
		v.Demoted = body[0] == 1
		body = body[1:]
		nids, err := u()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nids; j++ {
			id, err := u()
			if err != nil || id > int(wire.MaxLogID) {
				return nil, ErrBadSidecar
			}
			v.IDs = append(v.IDs, uint16(id))
			v.idSet[uint16(id)] = true
		}
		nranges, err := u()
		if err != nil {
			return nil, err
		}
		for j := 0; j < nranges; j++ {
			var r copyRange
			if r.StartBlock, err = u(); err != nil {
				return nil, err
			}
			if r.StartRec, err = u(); err != nil {
				return nil, err
			}
			if r.EndBlock, err = u(); err != nil {
				return nil, err
			}
			if r.EndRec, err = u(); err != nil {
				return nil, err
			}
			if r.Seq, err = u(); err != nil {
				return nil, err
			}
			v.Ranges = append(v.Ranges, r)
		}
		st.Vols = append(st.Vols, v)
	}
	return st, nil
}

// loadColdState reads the compaction sidecar at Open, before recovery runs:
// catalog/entrymap replay from the beginning of the sequence must already be
// able to read demoted volumes' blocks through the cold backend.
func (s *Service) loadColdState() error {
	if s.opt.Cold == nil {
		return nil
	}
	if s.opt.Cold.Backend == nil || s.opt.Cold.State == nil {
		return errors.New("clio: cold tier needs both a backend and a state store")
	}
	data, err := s.opt.Cold.State.Load()
	if err != nil {
		return fmt.Errorf("clio: load compaction sidecar: %w", err)
	}
	st := &compactState{}
	if data != nil {
		if st, err = decodeCompactState(data); err != nil {
			return err
		}
	}
	s.cmpState = st
	s.cmpView.Store(st.view())
	return nil
}

// commitColdState persists a prepared state and publishes its view. The
// save is the commit point: a crash before it leaves the previous state
// (and previous view) in force.
func (s *Service) commitColdState(st *compactState) error {
	// Refuse to commit a state whose ranges could invert delivery order: a
	// range covers the consecutive sequence run Seq..Seq+slots-1, so within
	// one volume consecutive ranges must not overlap logically. A violation
	// means a bookkeeping bug; the uncommitted copies are harmless orphans,
	// so failing the compaction loses nothing.
	for _, v := range st.Vols {
		for i := 1; i < len(v.Ranges); i++ {
			a, b := &v.Ranges[i-1], &v.Ranges[i]
			if b.Seq < a.Seq+(a.EndRec-a.StartRec+1) {
				return fmt.Errorf("clio: compact ranges overlap for volume %d: %+v then %+v", v.Index, *a, *b)
			}
		}
	}
	if err := s.opt.Cold.State.Save(st.encode()); err != nil {
		return fmt.Errorf("clio: save compaction sidecar: %w", err)
	}
	s.cmpState = st
	s.cmpView.Store(st.view())
	return nil
}

// compView returns the published view of committed compactions (nil when no
// cold tier is configured or nothing has been compacted).
func (s *Service) compView() *compactView {
	if v := s.cmpView.Load(); v != nil && len(v.vols) > 0 {
		return v
	}
	return nil
}
