package entrymap

import (
	"fmt"
	"sort"

	"clio/internal/wire"
)

// Accumulator is the writer-side entrymap state: for every tree level it
// collects the bitmap of the in-progress span, and at each block boundary it
// emits the entrymap entries that are due and rolls their contents up one
// level. This is exactly the state the paper's server keeps in volatile
// memory and must reconstruct after a crash (§2.3.1).
type Accumulator struct {
	n      int
	levels []*levelAcc // levels[i] is level i+1
}

type levelAcc struct {
	spanStart int
	maps      map[uint16]wire.Bitmap
}

// NewAccumulator returns an accumulator for tree degree n.
func NewAccumulator(n int) (*Accumulator, error) {
	if n < MinDegree || n > MaxDegree {
		return nil, fmt.Errorf("%w: N=%d", ErrDegree, n)
	}
	return &Accumulator{n: n}, nil
}

// N returns the tree degree.
func (a *Accumulator) N() int { return a.n }

func (a *Accumulator) level(i int) *levelAcc {
	for len(a.levels) < i {
		a.levels = append(a.levels, &levelAcc{
			maps: make(map[uint16]wire.Bitmap),
		})
	}
	return a.levels[i-1]
}

// NoteBlock records that sealed data block `block` contains entries of the
// given log files (level-1 information). Untracked ids (the volume sequence
// and the entrymap log itself, footnote 6) are ignored.
func (a *Accumulator) NoteBlock(block int, ids []uint16) {
	l := a.level(1)
	bit := block % a.n
	for _, id := range ids {
		if !tracked(id) {
			continue
		}
		bm, ok := l.maps[id]
		if !ok {
			bm = wire.NewBitmap(a.n)
			l.maps[id] = bm
		}
		bm.Set(bit)
	}
}

// noteGroup records at level `lvl` that group `group` (a completed span of
// level lvl-1) contains entries of id.
func (a *Accumulator) noteGroup(lvl int, group int, id uint16) {
	l := a.level(lvl)
	bm, ok := l.maps[id]
	if !ok {
		bm = wire.NewBitmap(a.n)
		l.maps[id] = bm
	}
	bm.Set(group % a.n)
}

// EntriesDue must be called when the writer is about to start the data block
// at index boundary (i.e. blocks [0, boundary) are complete). It returns the
// entrymap entries due at that boundary, highest level first — the paper
// notes a block containing a level-(i+1) entry also contains a level-i entry
// — and advances the accumulator's spans. A boundary of 0 or one that is not
// a multiple of N returns nil.
func (a *Accumulator) EntriesDue(boundary int) []*Entry {
	if boundary <= 0 || boundary%a.n != 0 {
		return nil
	}
	var due []*Entry
	for lvl := 1; ; lvl++ {
		span := pow(a.n, lvl)
		if boundary%span != 0 {
			break
		}
		l := a.level(lvl)
		e := &Entry{Level: lvl, Boundary: boundary, N: a.n}
		ids := make([]uint16, 0, len(l.maps))
		for id := range l.maps {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		group := (boundary - span) / span // index of the completed span at lvl
		for _, id := range ids {
			bm := l.maps[id]
			if bm.Empty() {
				continue
			}
			e.Maps = append(e.Maps, IDMap{ID: id, Bits: bm.Clone()})
			// Roll up into the parent level whether or not the parent is
			// due at this boundary.
			a.noteGroup(lvl+1, group, id)
		}
		// Reset this level's span.
		l.spanStart = boundary
		l.maps = make(map[uint16]wire.Bitmap)
		due = append(due, e)
	}
	// Highest level first.
	for i, j := 0, len(due)-1; i < j; i, j = i+1, j-1 {
		due[i], due[j] = due[j], due[i]
	}
	return due
}

// Pending returns the in-progress bitmap for (level, id) and the span start
// it covers given that blocks [0, end) are complete. The bitmap is nil when
// id has no entries in the partial span.
func (a *Accumulator) Pending(level int, id uint16) (wire.Bitmap, int) {
	if level < 1 || level > len(a.levels) {
		return nil, 0
	}
	l := a.levels[level-1]
	return l.maps[id], l.spanStart
}

// PendingIDs returns every id with a set bit in the given level's partial
// span, sorted.
func (a *Accumulator) PendingIDs(level int) []uint16 {
	if level < 1 || level > len(a.levels) {
		return nil
	}
	l := a.levels[level-1]
	ids := make([]uint16, 0, len(l.maps))
	for id, bm := range l.maps {
		if !bm.Empty() {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Levels returns the number of levels currently materialized.
func (a *Accumulator) Levels() int { return len(a.levels) }

// Reset clears all accumulated state (used before recovery reconstruction).
func (a *Accumulator) Reset() { a.levels = nil }

// EncodeState appends a serialized snapshot of the accumulator — degree,
// every materialized level's span start and non-empty per-id bitmaps — to
// dst. The snapshot is what a recovery checkpoint stores so reopen can skip
// the reconstruction scan; DecodeState is its inverse.
//
// Layout: n(u16) levelCount(uvarint) then per level
// spanStart(uvarint) mapCount(uvarint) { id(uvarint) bitmap((n+7)/8 bytes) }*
// with ids sorted ascending so the encoding is deterministic.
func (a *Accumulator) EncodeState(dst []byte) []byte {
	dst = wire.PutUint16(dst, uint16(a.n))
	dst = wire.PutUvarint(dst, uint64(len(a.levels)))
	for _, l := range a.levels {
		dst = wire.PutUvarint(dst, uint64(l.spanStart))
		ids := make([]uint16, 0, len(l.maps))
		for id, bm := range l.maps {
			if !bm.Empty() {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		dst = wire.PutUvarint(dst, uint64(len(ids)))
		for _, id := range ids {
			dst = wire.PutUvarint(dst, uint64(id))
			dst = append(dst, l.maps[id]...)
		}
	}
	return dst
}

// DecodeState parses a snapshot produced by EncodeState and returns the
// restored accumulator plus the number of bytes consumed.
func DecodeState(data []byte) (*Accumulator, int, error) {
	if len(data) < 2 {
		return nil, 0, ErrBadEntry
	}
	n16, err := wire.Uint16(data)
	if err != nil {
		return nil, 0, ErrBadEntry
	}
	a, err := NewAccumulator(int(n16))
	if err != nil {
		return nil, 0, err
	}
	off := 2
	bmLen := (a.n + 7) / 8
	levelCount, c, err := wire.Uvarint(data[off:])
	if err != nil || levelCount > 64 {
		return nil, 0, ErrBadEntry
	}
	off += c
	for lvl := 1; lvl <= int(levelCount); lvl++ {
		l := a.level(lvl)
		span, c, err := wire.Uvarint(data[off:])
		if err != nil {
			return nil, 0, ErrBadEntry
		}
		off += c
		l.spanStart = int(span)
		mapCount, c, err := wire.Uvarint(data[off:])
		if err != nil || mapCount > uint64(wire.MaxLogID)+1 {
			return nil, 0, ErrBadEntry
		}
		off += c
		for m := uint64(0); m < mapCount; m++ {
			id, c, err := wire.Uvarint(data[off:])
			if err != nil || id > wire.MaxLogID {
				return nil, 0, ErrBadEntry
			}
			off += c
			if off+bmLen > len(data) {
				return nil, 0, ErrBadEntry
			}
			bm := wire.NewBitmap(a.n)
			copy(bm, data[off:off+bmLen])
			off += bmLen
			l.maps[uint16(id)] = bm
		}
	}
	return a, off, nil
}
