package config

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func writeConf(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "clio.conf")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLayeringPrecedence(t *testing.T) {
	// File sets three keys; env overrides one and adds one; an explicit
	// "flag" Set overrides again. Later layers must win.
	path := writeConf(t,
		"# departmental log server",
		"store = /var/lib/clio",
		"listen = :9000",
		"shards = 4",
		"",
		"tenant.acme.token = s3cret",
		"tenant.acme.max-logs = 10",
	)
	cfg := Default()
	if err := cfg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	env := map[string]string{
		"CLIO_LISTEN":        ":9100",
		"CLIO_VOLUME_BLOCKS": "2048",
	}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	if err := cfg.ApplyEnv(lookup); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Set("listen", ":9200"); err != nil { // flag layer
		t.Fatal(err)
	}
	if cfg.Store != "/var/lib/clio" {
		t.Errorf("store = %q", cfg.Store)
	}
	if cfg.Listen != ":9200" {
		t.Errorf("listen = %q, want flag layer to win", cfg.Listen)
	}
	if cfg.VolumeBlocks != 2048 {
		t.Errorf("volume-blocks = %d, want env layer over default", cfg.VolumeBlocks)
	}
	if cfg.Shards != 4 {
		t.Errorf("shards = %d", cfg.Shards)
	}
	tn := cfg.Tenants["acme"]
	if tn == nil || tn.Token != "s3cret" || tn.MaxLogs != 10 {
		t.Errorf("tenant acme = %+v", tn)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if !cfg.IsSet("listen") || cfg.IsSet("block-size") {
		t.Error("IsSet does not track the touched keys")
	}
}

func TestEnvCannotDeclareTenants(t *testing.T) {
	// Tenant tokens are secrets; the environment layer must not carry them.
	cfg := Default()
	env := map[string]string{"CLIO_TENANT_ACME_TOKEN": "leak"}
	lookup := func(k string) (string, bool) { v, ok := env[k]; return v, ok }
	if err := cfg.ApplyEnv(lookup); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 0 {
		t.Errorf("env layer declared tenants: %v", cfg.Tenants)
	}
}

func TestLoadFileErrorsCarryLineNumbers(t *testing.T) {
	path := writeConf(t, "store = /x", "not a key value line")
	cfg := Default()
	err := cfg.LoadFile(path)
	if err == nil || !strings.Contains(err.Error(), ":2") {
		t.Errorf("want line-numbered error, got %v", err)
	}
	path = writeConf(t, "bogus-key = 1")
	if err := Default().LoadFile(path); err == nil || !strings.Contains(err.Error(), "bogus-key") {
		t.Errorf("unknown key accepted: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() *Config {
		c := Default()
		c.Store = "/var/lib/clio"
		return c
	}
	cases := []struct {
		name string
		mut  func(*Config) error
		want string
	}{
		{"no store", func(c *Config) error { c.Store = ""; return nil }, "store is required"},
		{"negative shards", func(c *Config) error { return c.Set("shards", "-1") }, "negative"},
		{"zero block size", func(c *Config) error { return c.Set("block-size", "0") }, "positive"},
		{"max-live above 1", func(c *Config) error { return c.Set("compact-max-live", "1.5") }, "outside (0,1]"},
		{"max-live negative", func(c *Config) error { return c.Set("compact-max-live", "-0.1") }, "outside (0,1]"},
		{"negative drain", func(c *Config) error { return c.Set("drain-timeout", "-1s") }, "negative"},
		{"bad role", func(c *Config) error { return c.Set("role", "observer") }, "role"},
		{"cluster flag without peers", func(c *Config) error { return c.Set("quorum", "3") }, "without peers"},
		{"advertise without peers", func(c *Config) error { return c.Set("advertise", "a:1") }, "without peers"},
		{"zero quorum with peers", func(c *Config) error {
			if err := c.Set("peers", "b:1"); err != nil {
				return err
			}
			return c.Set("quorum", "0")
		}, "quorum"},
		{"compaction in cluster mode", func(c *Config) error {
			if err := c.Set("peers", "b:1"); err != nil {
				return err
			}
			return c.Set("compact-interval", "1m")
		}, "cluster"},
		{"tenant without token", func(c *Config) error { return c.Set("tenant.acme.max-logs", "5") }, "no token"},
		{"tenant negative quota", func(c *Config) error {
			if err := c.Set("tenant.acme.token", "s"); err != nil {
				return err
			}
			return c.Set("tenant.acme.max-bytes", "-1")
		}, "negative quota"},
		{"dotted tenant name", func(c *Config) error { return c.Set("tenant..offsets.token", "s") }, "reserved"},
	}
	for _, tc := range cases {
		c := base()
		if err := tc.mut(c); err != nil {
			t.Errorf("%s: Set failed: %v", tc.name, err)
			continue
		}
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := base().Validate(); err != nil {
		t.Errorf("baseline config invalid: %v", err)
	}
}

func TestSetParseErrors(t *testing.T) {
	cfg := Default()
	for key, bad := range map[string]string{
		"shards":        "many",
		"create":        "yep",
		"slow-trace":    "fast",
		"quorum":        "2.5",
		"drain-timeout": "30",
	} {
		if err := cfg.Set(key, bad); err == nil {
			t.Errorf("Set(%s, %q) accepted", key, bad)
		}
	}
}

func TestReloadableAndDiff(t *testing.T) {
	for key, want := range map[string]bool{
		"tenant.acme.token":    true,
		"tenant.acme.max-logs": true,
		"slow-trace":           true,
		"compact-interval":     true,
		"drain-timeout":        true,
		"store":                false,
		"listen":               false,
		"peers":                false,
		"block-size":           false,
	} {
		if Reloadable(key) != want {
			t.Errorf("Reloadable(%s) = %v, want %v", key, !want, want)
		}
	}
	a := Default()
	a.Store = "/x"
	b := Default()
	b.Store = "/x"
	if diff := a.Diff(b); len(diff) != 0 {
		t.Errorf("identical configs diff: %v", diff)
	}
	b.SlowTrace = time.Second
	b.Listen = ":1"
	if err := b.Set("tenant.acme.token", "s"); err != nil {
		t.Fatal(err)
	}
	got := a.Diff(b)
	want := []string{"listen", "slow-trace", "tenants"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Diff = %v, want %v", got, want)
	}
}

func TestTenantList(t *testing.T) {
	cfg := Default()
	for _, k := range []string{"tenant.zed.token=z", "tenant.acme.token=a"} {
		key, val, _ := strings.Cut(k, "=")
		if err := cfg.Set(key, val); err != nil {
			t.Fatal(err)
		}
	}
	list := cfg.TenantList()
	if len(list) != 2 || list[0].Name != "acme" || list[1].Name != "zed" {
		t.Errorf("TenantList = %+v, want sorted by name", list)
	}
}
