// Package logapi defines the uniform client interface to a log service —
// the paper's point that log files are "accessed and managed using the same
// I/O and utility routines that are used to access and manage conventional
// files" (§2), regardless of whether the service is in-process, sharded
// across several volume sequences, or across the network.
//
// Service is the interface: context-first, implemented alike by
// logapi.Local (an in-process core.Service), shard.Store (a hash-partitioned
// set of services behind one namespace) and client.Client (the wire
// protocol). Applications written against Service swap deployments without
// code changes.
//
// IDs are store-wide: the high 16 bits carry a shard ordinal, the low 16
// bits the shard-local catalog id, so a single-shard store's IDs are
// numerically identical to its catalog ids.
//
// The pre-redesign, context-free Store surface is retained at the bottom of
// this file for the history-based applications (internal/histfs,
// internal/mailstore); new code should use Service.
package logapi

import (
	"context"
	"errors"
	"fmt"

	"clio/internal/core"
)

// AppendOptions selects the append form and durability; it is the
// service-side option struct, shared by every implementation.
type AppendOptions = core.AppendOptions

// Entry is one log entry, shared by every implementation. Entry.Shard
// records which shard the entry was read from (0 on single-shard stores).
type Entry = core.Entry

// ID identifies a log file within a (possibly sharded) store: the high 16
// bits are the shard ordinal, the low 16 bits the shard-local catalog id.
// On a single-shard store an ID equals its catalog id.
type ID uint32

// MakeID combines a shard ordinal and a shard-local catalog id.
func MakeID(shard int, local uint16) ID {
	return ID(uint32(shard)<<16 | uint32(local))
}

// Shard returns the shard ordinal the id routes to.
func (id ID) Shard() int { return int(id >> 16) }

// Local returns the shard-local catalog id.
func (id ID) Local() uint16 { return uint16(id) }

// String renders the id as shard:local.
func (id ID) String() string { return fmt.Sprintf("%d:%d", id.Shard(), id.Local()) }

// ErrShardRange reports an ID addressed to a shard the store does not have
// (including any non-zero shard on a single-shard surface).
var ErrShardRange = errors.New("logapi: id addresses a shard this store does not have")

// Info describes one log file: the catalog descriptor, addressed with
// store-wide IDs.
type Info struct {
	ID      ID
	Parent  ID
	Name    string
	Perms   uint16
	Created int64
	Owner   string
	Retired bool
	System  bool
}

// Cursor iterates a log file — in either direction, seekable by time and
// by previously observed position. Every navigation takes a context; Close
// releases server-side state (a no-op for in-process cursors).
//
// Positions (Entry.Block, Entry.Index) are shard-local; SeekPos is only
// meaningful on cursors bound to a single shard (any log file but a
// sharded store's root).
type Cursor interface {
	// Next returns the next entry, or io.EOF at the end.
	Next(ctx context.Context) (*Entry, error)
	// Prev returns the previous entry, or io.EOF at the beginning.
	Prev(ctx context.Context) (*Entry, error)
	// SeekStart positions before the first entry.
	SeekStart(ctx context.Context) error
	// SeekEnd positions after the last entry.
	SeekEnd(ctx context.Context) error
	// SeekTime positions so Next returns the first entry at/after ts.
	SeekTime(ctx context.Context, ts int64) error
	// SeekPos restores a previously observed (block, rec) gap position.
	SeekPos(ctx context.Context, block, rec int) error
	// Close releases the cursor.
	Close() error
}

// Service is the log-service surface: catalog management, appends, reads
// and durability, uniformly context-first.
type Service interface {
	// CreateLog creates a log file at an absolute path (a sublog of its
	// parent) and returns its store-wide id.
	CreateLog(ctx context.Context, path string, perms uint16, owner string) (ID, error)
	// Resolve maps a path to a log-file id.
	Resolve(ctx context.Context, path string) (ID, error)
	// List returns the sublog names beneath a path, sorted.
	List(ctx context.Context, path string) ([]string, error)
	// Stat returns the log file's catalog descriptor.
	Stat(ctx context.Context, path string) (Info, error)
	// SetPerms replaces the permission word.
	SetPerms(ctx context.Context, path string, perms uint16) error
	// Retire marks the log file retired (§2.5); its entries remain
	// readable.
	Retire(ctx context.Context, path string) error
	// Append writes one entry and returns its server timestamp.
	Append(ctx context.Context, id ID, data []byte, opts AppendOptions) (int64, error)
	// AppendMulti writes one entry into every listed log file (§2.1
	// multi-membership); ids[0] is the primary member and all ids must
	// route to one shard.
	AppendMulti(ctx context.Context, ids []ID, data []byte, opts AppendOptions) (int64, error)
	// ReadAt returns the entry at a shard-local (block, index) position,
	// as previously observed on an Entry from that shard.
	ReadAt(ctx context.Context, shard, block, index int) (*Entry, error)
	// OpenCursor opens a cursor at the start of the log file at path.
	OpenCursor(ctx context.Context, path string) (Cursor, error)
	// Force makes everything appended so far durable.
	Force(ctx context.Context) error
}

// Local adapts an in-process *core.Service (one volume sequence, shard 0)
// to Service. Core operations are synchronous and uninterruptible, so the
// context is only consulted on entry.
type Local struct{ Svc *core.Service }

// NewLocal returns svc wrapped as a Service.
func NewLocal(svc *core.Service) Local { return Local{Svc: svc} }

var _ Service = Local{}

// localIDs checks every id routes to shard 0 and strips the shard bits.
func localIDs(ids []ID) ([]uint16, error) {
	out := make([]uint16, len(ids))
	for i, id := range ids {
		if id.Shard() != 0 {
			return nil, fmt.Errorf("logapi: id %v on a single-shard store: %w", id, ErrShardRange)
		}
		out[i] = id.Local()
	}
	return out, nil
}

func (l Local) CreateLog(ctx context.Context, path string, perms uint16, owner string) (ID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, err := l.Svc.CreateLog(path, perms, owner)
	return MakeID(0, id), err
}

func (l Local) Resolve(ctx context.Context, path string) (ID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id, err := l.Svc.Resolve(path)
	return MakeID(0, id), err
}

func (l Local) List(ctx context.Context, path string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Svc.List(path)
}

func (l Local) Stat(ctx context.Context, path string) (Info, error) {
	if err := ctx.Err(); err != nil {
		return Info{}, err
	}
	d, err := l.Svc.Stat(path)
	if err != nil {
		return Info{}, err
	}
	return Info{
		ID:      MakeID(0, d.ID),
		Parent:  MakeID(0, d.Parent),
		Name:    d.Name,
		Perms:   d.Perms,
		Created: d.Created,
		Owner:   d.Owner,
		Retired: d.Retired,
		System:  d.System,
	}, nil
}

func (l Local) SetPerms(ctx context.Context, path string, perms uint16) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Svc.SetPerms(path, perms)
}

func (l Local) Retire(ctx context.Context, path string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Svc.Retire(path)
}

func (l Local) Append(ctx context.Context, id ID, data []byte, opts AppendOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if id.Shard() != 0 {
		return 0, fmt.Errorf("logapi: id %v on a single-shard store: %w", id, ErrShardRange)
	}
	return l.Svc.Append(id.Local(), data, opts)
}

func (l Local) AppendMulti(ctx context.Context, ids []ID, data []byte, opts AppendOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	local, err := localIDs(ids)
	if err != nil {
		return 0, err
	}
	return l.Svc.AppendMulti(local, data, opts)
}

func (l Local) ReadAt(ctx context.Context, shard, block, index int) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shard != 0 {
		return nil, fmt.Errorf("logapi: shard %d on a single-shard store: %w", shard, ErrShardRange)
	}
	return l.Svc.ReadAt(block, index)
}

func (l Local) OpenCursor(ctx context.Context, path string) (Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cur, err := l.Svc.OpenCursor(path)
	if err != nil {
		return nil, err
	}
	return LocalCursor{Cur: cur}, nil
}

func (l Local) Force(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.Svc.Force()
}

// LocalCursor adapts a *core.Cursor to Cursor. Exported so sharded stores
// can wrap their per-shard core cursors the same way.
type LocalCursor struct{ Cur *core.Cursor }

var _ Cursor = LocalCursor{}

func (c LocalCursor) Next(ctx context.Context) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Cur.Next()
}

func (c LocalCursor) Prev(ctx context.Context) (*Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Cur.Prev()
}

func (c LocalCursor) SeekStart(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Cur.SeekStart()
	return nil
}

func (c LocalCursor) SeekEnd(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Cur.SeekEnd()
	return nil
}

func (c LocalCursor) SeekTime(ctx context.Context, ts int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.Cur.SeekTime(ts)
}

func (c LocalCursor) SeekPos(ctx context.Context, block, rec int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.Cur.SeekPos(block, rec)
}

func (c LocalCursor) Close() error { return nil }

// ---------------------------------------------------------------------------
// Legacy context-free surface.

// StoreCursor iterates a log file without contexts.
//
// Deprecated: new code should use Cursor via Service.
type StoreCursor interface {
	// Next returns the next entry, or io.EOF at the end.
	Next() (*Entry, error)
	// Prev returns the previous entry, or io.EOF at the beginning.
	Prev() (*Entry, error)
	// SeekStart positions before the first entry.
	SeekStart() error
	// SeekEnd positions after the last entry.
	SeekEnd() error
	// SeekTime positions so Next returns the first entry at/after ts.
	SeekTime(ts int64) error
	// Close releases the cursor.
	Close() error
}

// Store is the context-free, single-shard log-service surface the
// history-based applications were written against. Its uint16 ids are
// shard-local, so it can only address shard 0 of a sharded store.
//
// Deprecated: new code should use Service.
type Store interface {
	// CreateLog creates a log file at an absolute path (a sublog of its
	// parent).
	CreateLog(path string, perms uint16, owner string) (uint16, error)
	// Resolve maps a path to a log-file id.
	Resolve(path string) (uint16, error)
	// List returns the sublog names beneath a path.
	List(path string) ([]string, error)
	// Append writes one entry and returns its server timestamp.
	Append(id uint16, data []byte, opts AppendOptions) (int64, error)
	// OpenCursor opens a cursor at the start of the log file at path.
	OpenCursor(path string) (StoreCursor, error)
}

// MultiStore is implemented by stores that support multi-membership
// appends (§2.1): one entry belonging to several log files.
//
// Deprecated: new code should use Service, which carries AppendMulti.
type MultiStore interface {
	Store
	// AppendMulti writes one entry into every listed log file; ids[0] is
	// the primary member.
	AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error)
}

// AsStore adapts any Service to the legacy Store surface using background
// contexts. IDs outside shard 0 surface as ErrShardRange, so the adapter
// suits single-shard deployments; callers needing deadlines or shards use
// the Service directly.
func AsStore(svc Service) Store { return legacyStore{svc} }

// FromService adapts an in-process core.Service to the legacy Store
// surface.
//
// Deprecated: new code should use NewLocal, which returns the full
// Service.
func FromService(svc *core.Service) Store { return AsStore(NewLocal(svc)) }

type legacyStore struct{ svc Service }

// Compile-time check: the legacy adapter supports multi-membership.
var _ MultiStore = legacyStore{}

func localID(id ID, err error) (uint16, error) {
	if err != nil {
		return 0, err
	}
	if id.Shard() != 0 {
		return 0, fmt.Errorf("logapi: id %v beyond the legacy single-shard surface: %w", id, ErrShardRange)
	}
	return id.Local(), nil
}

func (s legacyStore) CreateLog(path string, perms uint16, owner string) (uint16, error) {
	return localID(s.svc.CreateLog(context.Background(), path, perms, owner))
}

func (s legacyStore) Resolve(path string) (uint16, error) {
	return localID(s.svc.Resolve(context.Background(), path))
}

func (s legacyStore) List(path string) ([]string, error) {
	return s.svc.List(context.Background(), path)
}

func (s legacyStore) Append(id uint16, data []byte, opts AppendOptions) (int64, error) {
	return s.svc.Append(context.Background(), MakeID(0, id), data, opts)
}

func (s legacyStore) AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	wide := make([]ID, len(ids))
	for i, id := range ids {
		wide[i] = MakeID(0, id)
	}
	return s.svc.AppendMulti(context.Background(), wide, data, opts)
}

func (s legacyStore) OpenCursor(path string) (StoreCursor, error) {
	cur, err := s.svc.OpenCursor(context.Background(), path)
	if err != nil {
		return nil, err
	}
	return legacyCursor{cur}, nil
}

type legacyCursor struct{ cur Cursor }

func (c legacyCursor) Next() (*Entry, error)   { return c.cur.Next(context.Background()) }
func (c legacyCursor) Prev() (*Entry, error)   { return c.cur.Prev(context.Background()) }
func (c legacyCursor) SeekStart() error        { return c.cur.SeekStart(context.Background()) }
func (c legacyCursor) SeekEnd() error          { return c.cur.SeekEnd(context.Background()) }
func (c legacyCursor) SeekTime(ts int64) error { return c.cur.SeekTime(context.Background(), ts) }
func (c legacyCursor) Close() error            { return c.cur.Close() }
