package mailstore

import (
	"errors"
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/wodev"
)

func newStore(t *testing.T) (*Store, *core.Service, wodev.Device, core.Options) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	opt := core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(logapi.FromService(svc), "/mail")
	if err != nil {
		t.Fatal(err)
	}
	return st, svc, dev, opt
}

func TestDeliverAndList(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	if err := st.CreateMailbox("smith"); err != nil {
		t.Fatal(err)
	}
	id1, err := st.Deliver("smith", "alice", "hi", "hello smith")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Deliver("smith", "bob", "re: hi", "hello again")
	if err != nil || id2 <= id1 {
		t.Fatalf("second delivery: %d, %v", id2, err)
	}
	msgs, err := st.List("smith", false)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("List: %d msgs, %v", len(msgs), err)
	}
	if msgs[0].From != "alice" || msgs[0].Subject != "hi" || msgs[0].Body != "hello smith" {
		t.Errorf("msg 0: %+v", msgs[0])
	}
	if msgs[0].Delivered != id1 {
		t.Errorf("msg id: %d vs %d", msgs[0].Delivered, id1)
	}
}

func TestUnknownMailbox(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	if _, err := st.Deliver("ghost", "x", "y", "z"); !errors.Is(err, ErrNoMailbox) {
		t.Errorf("deliver to ghost: %v", err)
	}
	if _, err := st.List("ghost", false); !errors.Is(err, ErrNoMailbox) {
		t.Errorf("list ghost: %v", err)
	}
}

func TestFlagsAndHiding(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	if err := st.CreateMailbox("u"); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 3; i++ {
		id, err := st.Deliver("u", "from", fmt.Sprintf("s%d", i), "body")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.MarkRead("u", ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Hide("u", ids[1]); err != nil {
		t.Fatal(err)
	}
	msgs, _ := st.List("u", false)
	if len(msgs) != 2 {
		t.Fatalf("visible: %d", len(msgs))
	}
	if !msgs[0].Read || msgs[0].Delivered != ids[0] {
		t.Errorf("msg 0 flags: %+v", msgs[0])
	}
	all, _ := st.List("u", true)
	if len(all) != 3 || !all[1].Hidden {
		t.Errorf("all: %d, hidden=%v", len(all), all[1].Hidden)
	}
	if err := st.MarkRead("u", 424242); !errors.Is(err, ErrNoMessage) {
		t.Errorf("flag unknown: %v", err)
	}
}

func TestCacheRebuildFromHistory(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	if err := st.CreateMailbox("u"); err != nil {
		t.Fatal(err)
	}
	id, err := st.Deliver("u", "a", "s", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.MarkRead("u", id); err != nil {
		t.Fatal(err)
	}
	st.EvictCache()
	msgs, err := st.List("u", true)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("after evict: %d, %v", len(msgs), err)
	}
	if !msgs[0].Read || msgs[0].From != "a" {
		t.Errorf("rebuilt message: %+v", msgs[0])
	}
}

func TestMailSurvivesCrash(t *testing.T) {
	st, svc, dev, opt := newStore(t)
	if err := st.CreateMailbox("u"); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 10; i++ {
		id, err := st.Deliver("u", "postmaster", fmt.Sprintf("msg %d", i), "body body body")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st2, err := New(logapi.FromService(svc2), "/mail")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := st2.List("u", true)
	if err != nil || len(msgs) != 10 {
		t.Fatalf("after crash: %d msgs, %v", len(msgs), err)
	}
	for i, m := range msgs {
		if m.Delivered != ids[i] || m.Subject != fmt.Sprintf("msg %d", i) {
			t.Errorf("msg %d: %+v", i, m)
		}
	}
	// The mail history remains appendable.
	if _, err := st2.Deliver("u", "x", "new", "mail"); err != nil {
		t.Fatal(err)
	}
}

func TestUsersAndGet(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	for _, u := range []string{"alice", "bob"} {
		if err := st.CreateMailbox(u); err != nil {
			t.Fatal(err)
		}
	}
	users, err := st.Users()
	if err != nil || fmt.Sprint(users) != "[alice bob]" {
		t.Errorf("Users: %v, %v", users, err)
	}
	id, _ := st.Deliver("alice", "bob", "s", "b")
	m, err := st.Get("alice", id)
	if err != nil || m.From != "bob" {
		t.Errorf("Get: %+v, %v", m, err)
	}
	if _, err := st.Get("alice", 1); !errors.Is(err, ErrNoMessage) {
		t.Errorf("Get missing: %v", err)
	}
}

func TestDeliverCC(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := st.CreateMailbox(u); err != nil {
			t.Fatal(err)
		}
	}
	id, err := st.DeliverCC([]string{"alice", "bob"}, "carol", "meeting", "3pm in the lab")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		msgs, err := st.List(u, false)
		if err != nil || len(msgs) != 1 {
			t.Fatalf("%s: %d msgs, %v", u, len(msgs), err)
		}
		if msgs[0].Delivered != id || msgs[0].Subject != "meeting" {
			t.Errorf("%s: %+v", u, msgs[0])
		}
	}
	if msgs, _ := st.List("carol", false); len(msgs) != 0 {
		t.Errorf("carol got a copy: %d", len(msgs))
	}
	// The agents' caches rebuild the CC'd message from the single entry.
	st.EvictCache()
	for _, u := range []string{"alice", "bob"} {
		msgs, err := st.List(u, false)
		if err != nil || len(msgs) != 1 || msgs[0].Body != "3pm in the lab" {
			t.Fatalf("%s after evict: %v, %v", u, msgs, err)
		}
	}
	// Per-recipient flags stay independent.
	if err := st.Hide("alice", id); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := st.List("alice", false); len(msgs) != 0 {
		t.Error("alice still sees hidden CC")
	}
	if msgs, _ := st.List("bob", false); len(msgs) != 1 {
		t.Error("bob lost the CC when alice hid hers")
	}
	if _, err := st.DeliverCC(nil, "x", "y", "z"); err == nil {
		t.Error("empty recipient list accepted")
	}
}
