package scrub

import (
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/volume"
	"clio/internal/wodev"
)

func buildVolume(t *testing.T, entries int) (*core.Service, *wodev.MemDevice, core.Options) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
	now := int64(0)
	opt := core.Options{BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc.CreateLog("/a", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.CreateLog("/b", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		id := a
		if i%3 == 0 {
			id = b
		}
		if _, err := svc.Append(id, []byte(fmt.Sprintf("entry-%04d", i)), core.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	return svc, dev, opt
}

func TestScrubCleanVolume(t *testing.T) {
	svc, dev, _ := buildVolume(t, 300)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("unexpected problem: %s", p)
		}
	}
	if rep.Blocks == 0 || rep.Readable != rep.Blocks {
		t.Errorf("blocks=%d readable=%d", rep.Blocks, rep.Readable)
	}
	if rep.EntrymapEntries == 0 {
		t.Error("no entrymap entries verified")
	}
	if rep.CatalogRecords != 2 {
		t.Errorf("catalog records = %d", rep.CatalogRecords)
	}
}

func TestScrubCleanWithFragmentChains(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	now := int64(0)
	opt := core.Options{BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := svc.CreateLog("/frag", 0, "")
	big := make([]byte, 900) // spans several 256-byte blocks
	for i := 0; i < 10; i++ {
		if _, err := svc.Append(id, big, core.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("problem: %s", p)
		}
	}
}

func TestScrubDetectsDamage(t *testing.T) {
	svc, dev, _ := buildVolume(t, 300)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = 0xA5
	}
	if err := dev.Damage(6, garbage); err != nil { // data block 5
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("damage not detected")
	}
	if rep.Damaged != 1 {
		t.Errorf("Damaged = %d", rep.Damaged)
	}
	foundBad := false
	for _, p := range rep.Problems {
		if p.Kind == "bad-block" && p.Block == 5 {
			foundBad = true
		}
	}
	if !foundBad {
		t.Errorf("no bad-block problem for block 5: %v", rep.Problems)
	}
}

func TestScrubRepairInvalidates(t *testing.T) {
	svc, dev, opt := buildVolume(t, 300)
	svc.Crash()
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = 0x3C
	}
	if err := dev.Damage(6, garbage); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{dev}, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("Repaired = %d", rep.Repaired)
	}
	// A second scrub sees the block as invalidated, not damaged.
	rep2, err := Volumes([]wodev.Device{dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Invalidated != 1 || rep2.Damaged != 0 {
		t.Errorf("after repair: invalidated=%d damaged=%d", rep2.Invalidated, rep2.Damaged)
	}
	// And the service still opens and reads the surviving entries.
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	cur, err := svc2.OpenCursor("/a")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := cur.Next(); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("no entries readable after repair")
	}
}

func TestScrubMultiVolume(t *testing.T) {
	devs := []*wodev.MemDevice{wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 16})}
	now := int64(0)
	opt := core.Options{
		BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 1000; return now },
		Allocate: func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
			d := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 16})
			devs = append(devs, d)
			return d, nil
		},
	}
	svc, err := core.New(devs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := svc.CreateLog("/x", 0, "")
	for i := 0; i < 120; i++ {
		if _, err := svc.Append(id, make([]byte, 100), core.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if len(devs) < 2 {
		t.Fatal("expected multiple volumes")
	}
	all := make([]wodev.Device, len(devs))
	for i, d := range devs {
		all[i] = d
	}
	rep, err := Volumes(all, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("problem: %s", p)
		}
	}
}

func TestScrubEmptyArgs(t *testing.T) {
	if _, err := Volumes(nil, Options{}); err == nil {
		t.Error("no devices accepted")
	}
}

func TestUsageAccounting(t *testing.T) {
	svc, dev, _ := buildVolume(t, 90)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]LogUsage{}
	for _, u := range rep.Usage {
		byPath[u.Path] = u
	}
	a, b := byPath["/a"], byPath["/b"]
	if a.Entries != 60 || b.Entries != 30 {
		t.Errorf("entries: /a=%d /b=%d", a.Entries, b.Entries)
	}
	// Every entry is "entry-%04d" = 10 bytes.
	if a.Bytes != 600 || b.Bytes != 300 {
		t.Errorf("bytes: /a=%d /b=%d", a.Bytes, b.Bytes)
	}
	if _, ok := byPath["/.catalog"]; !ok {
		t.Error("system logs missing from usage")
	}
}

// TestScrubCleanWithCheckpoints: recovery checkpoints are ordinary entries
// in a reserved system log file, so a volume written under the checkpoint
// policy (including the clean-Close checkpoint) must scrub clean with no
// special cases.
func TestScrubCleanWithCheckpoints(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
	now := int64(0)
	opt := core.Options{BlockSize: 256, Degree: 4, CheckpointInterval: 8,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/ck", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := svc.Append(id, []byte(fmt.Sprintf("entry-%04d", i)), core.AppendOptions{Forced: i%5 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	if svc.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoints emitted")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{dev}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("problem: %s", p)
		}
	}
	if rep.EntrymapEntries == 0 {
		t.Error("no entrymap entries verified")
	}
}
