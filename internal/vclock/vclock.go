// Package vclock provides the virtual clock and device cost model used by the
// deterministic experiments in this repository.
//
// The paper measured Clio on a Sun-3 with V-System IPC and analysed optical
// disk behaviour with a simple cost model (≈150 ms average seek, ≈0.6 ms to
// access and interpret a cached block, 0.5–1 ms local IPC, ≈400 µs to obtain
// a kernel timestamp, ≈70 µs of entrymap maintenance per logged entry). We do
// not have a 1987 optical drive, so the timed experiments run against a
// virtual clock: every component charges the model cost of each operation,
// and "measured time" is virtual elapsed time. The *shape* of every result —
// who wins, the slope against search distance, where crossovers fall — is a
// function of the operation counts, which the real implementation produces,
// multiplied by these constants.
//
// A Clock is optional everywhere: the nil *Clock charges nothing, so the
// production code paths run untimed at full speed.
package vclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// CostModel holds the per-operation charges. The defaults are calibrated to
// the paper's Section 3 constants.
type CostModel struct {
	// DeviceSeek is the average seek+rotate cost of reaching a block on the
	// log device on a cache miss. The paper quotes ~150 ms for write-once
	// optical disk.
	DeviceSeek time.Duration
	// DeviceReadPerKB is the transfer cost per KiB read from the device.
	DeviceReadPerKB time.Duration
	// CachedBlock is the cost of accessing and interpreting one block held
	// in the server's main-memory block cache (~0.6 ms, Table 1 discussion).
	CachedBlock time.Duration
	// LocalIPC is the synchronous client/server IPC round trip on one
	// machine (0.5–1 ms in the paper; we charge the midpoint).
	LocalIPC time.Duration
	// RemoteIPC is the cross-machine IPC round trip (2.5–3 ms).
	RemoteIPC time.Duration
	// Timestamp is the cost of generating a kernel timestamp (~400 µs).
	Timestamp time.Duration
	// EntrymapMaint is the average per-entry cost of maintaining and
	// periodically logging entrymap information (~70 µs).
	EntrymapMaint time.Duration
	// CopyPerKB is the cost of moving client data from the client to the
	// server's block cache. Calibrated to §3.2's measured 0.9 ms delta
	// between a null and a 50-byte entry — on the Sun-3 this path was
	// dominated by per-byte IPC marshalling, hence the large constant.
	CopyPerKB time.Duration
	// WriteFixed is the fixed server-side cost of the log-write path beyond
	// IPC, timestamping, entrymap maintenance and data copying, calibrated
	// so a null synchronous log write costs §3.2's measured 2.0 ms.
	WriteFixed time.Duration
	// ServerFixed is the fixed server-side request handling cost beyond IPC,
	// calibrated so a distance-0 cached read costs Table 1's 1.46 ms:
	// 1.46 ms = LocalIPC + ServerFixed + 1×CachedBlock.
	ServerFixed time.Duration
	// ColdFetch is the fixed cost of staging a block from the cold
	// (archival) tier: the era-appropriate analogue is a robotic
	// autochanger swapping an optical platter into a drive, a few seconds
	// per fetch. Transfer is charged per KiB on top via DeviceReadPerKB.
	ColdFetch time.Duration
}

// DefaultModel returns the paper-calibrated cost model.
func DefaultModel() CostModel {
	return CostModel{
		DeviceSeek:      150 * time.Millisecond,
		DeviceReadPerKB: 500 * time.Microsecond,
		CachedBlock:     600 * time.Microsecond,
		LocalIPC:        700 * time.Microsecond,
		RemoteIPC:       2750 * time.Microsecond,
		Timestamp:       400 * time.Microsecond,
		EntrymapMaint:   70 * time.Microsecond,
		CopyPerKB:       18432 * time.Microsecond,
		WriteFixed:      830 * time.Microsecond,
		ServerFixed:     160 * time.Microsecond,
		ColdFetch:       2500 * time.Millisecond,
	}
}

// Clock is a virtual clock accumulating charged costs. The zero value is
// ready to use with the default model; a nil *Clock ignores all charges.
type Clock struct {
	mu      sync.Mutex
	model   CostModel
	modelOK bool
	elapsed time.Duration
	// charges tallies per-category totals for reporting.
	charges map[string]time.Duration
	counts  map[string]int64
}

// New returns a Clock using the given cost model.
func New(m CostModel) *Clock {
	return &Clock{model: m, modelOK: true,
		charges: make(map[string]time.Duration), counts: make(map[string]int64)}
}

// Model returns the clock's cost model (the default model for a zero clock).
func (c *Clock) Model() CostModel {
	if c == nil {
		return CostModel{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.modelOK {
		c.model = DefaultModel()
		c.modelOK = true
	}
	return c.model
}

// Charge advances the clock by d under the named category.
func (c *Clock) Charge(category string, d time.Duration) {
	if c == nil || d == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elapsed += d
	if c.charges == nil {
		c.charges = make(map[string]time.Duration)
		c.counts = make(map[string]int64)
	}
	c.charges[category] += d
	c.counts[category]++
}

// Elapsed returns total virtual time accumulated.
func (c *Clock) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Reset zeroes the elapsed time and per-category tallies, keeping the model.
func (c *Clock) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.elapsed = 0
	c.charges = make(map[string]time.Duration)
	c.counts = make(map[string]int64)
}

// CategoryTotal returns the accumulated charge and event count for a category.
func (c *Clock) CategoryTotal(category string) (time.Duration, int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.charges[category], c.counts[category]
}

// Categories returns the names of every category charged so far, sorted. A
// nil clock returns nil.
func (c *Clock) Categories() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]string, 0, len(c.charges))
	for name := range c.charges {
		out = append(out, name)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// Charge category names used across the repository.
const (
	CatSeek      = "device-seek"
	CatTransfer  = "device-transfer"
	CatCached    = "cached-block"
	CatIPC       = "ipc"
	CatTimestamp = "timestamp"
	CatEntrymap  = "entrymap-maint"
	CatCopy      = "copy"
	CatCold      = "cold-fetch"
	CatServer    = "server-fixed"
	CatWrite     = "write-fixed"
)

// ChargeWriteFixed charges the fixed log-write path cost.
func (c *Clock) ChargeWriteFixed() {
	if c == nil {
		return
	}
	c.Charge(CatWrite, c.Model().WriteFixed)
}

// ChargeDeviceRead charges a cold device read of n bytes (seek + transfer).
func (c *Clock) ChargeDeviceRead(n int) {
	if c == nil {
		return
	}
	m := c.Model()
	c.Charge(CatSeek, m.DeviceSeek)
	c.Charge(CatTransfer, m.DeviceReadPerKB*time.Duration(n)/1024)
}

// ChargeCachedBlock charges one cached-block access.
func (c *Clock) ChargeCachedBlock() {
	if c == nil {
		return
	}
	c.Charge(CatCached, c.Model().CachedBlock)
}

// ChargeIPC charges one IPC round trip; remote selects the cross-machine cost.
func (c *Clock) ChargeIPC(remote bool) {
	if c == nil {
		return
	}
	m := c.Model()
	if remote {
		c.Charge(CatIPC, m.RemoteIPC)
	} else {
		c.Charge(CatIPC, m.LocalIPC)
	}
}

// ChargeTimestamp charges one kernel timestamp generation.
func (c *Clock) ChargeTimestamp() {
	if c == nil {
		return
	}
	c.Charge(CatTimestamp, c.Model().Timestamp)
}

// ChargeEntrymapMaint charges the per-entry entrymap maintenance cost.
func (c *Clock) ChargeEntrymapMaint() {
	if c == nil {
		return
	}
	c.Charge(CatEntrymap, c.Model().EntrymapMaint)
}

// ChargeColdFetch charges staging n bytes from the cold (archival) tier:
// the autochanger fetch plus the per-KiB transfer.
func (c *Clock) ChargeColdFetch(n int) {
	if c == nil {
		return
	}
	m := c.Model()
	c.Charge(CatCold, m.ColdFetch)
	c.Charge(CatTransfer, m.DeviceReadPerKB*time.Duration(n)/1024)
}

// ChargeCopy charges copying n bytes of client data.
func (c *Clock) ChargeCopy(n int) {
	if c == nil {
		return
	}
	c.Charge(CatCopy, c.Model().CopyPerKB*time.Duration(n)/1024)
}

// ChargeServerFixed charges the fixed server request-handling cost.
func (c *Clock) ChargeServerFixed() {
	if c == nil {
		return
	}
	c.Charge(CatServer, c.Model().ServerFixed)
}

// Ms renders a duration as milliseconds with two decimals, the unit used
// throughout the paper's tables.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}
