package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestReplRoundTrips(t *testing.T) {
	devs := []ReplDevState{
		{Shard: 0, Dev: 0, Written: 12, LastCRC: 0xDEADBEEF},
		{Shard: 1, Dev: 2, Written: 0, LastCRC: 0},
	}
	cases := []struct {
		name string
		op   byte
		enc  func([]byte) []byte
		want any
	}{
		{
			name: "hello", op: OpReplHello,
			enc:  (&ReplHello{Term: 3, Epoch: 77, LeaderAddr: "127.0.0.1:9000", Shards: 2, BlockSize: 512}).Encode,
			want: &ReplHello{Term: 3, Epoch: 77, LeaderAddr: "127.0.0.1:9000", Shards: 2, BlockSize: 512},
		},
		{
			name: "hello resp accept", op: OpReplHello,
			enc:  (&ReplHelloResp{Accept: true, Term: 3, Devs: devs}).Encode,
			want: nil, // decoded separately below
		},
		{
			name: "write", op: OpReplWrite,
			enc:  (&ReplWrite{Shard: 1, Dev: 0, Index: 42, Data: []byte("block image")}).Encode,
			want: &ReplWrite{Shard: 1, Dev: 0, Index: 42, Data: []byte("block image")},
		},
		{
			name: "invalidate", op: OpReplInvalidate,
			enc:  (&ReplInvalidate{Shard: 0, Dev: 1, Index: 9}).Encode,
			want: &ReplInvalidate{Shard: 0, Dev: 1, Index: 9},
		},
		{
			name: "tail", op: OpReplTail,
			enc:  (&ReplTail{Shard: 1, Global: 40, Image: []byte{1, 2, 3}}).Encode,
			want: &ReplTail{Shard: 1, Global: 40, Image: []byte{1, 2, 3}},
		},
		{
			name: "tail clear", op: OpReplTailClear,
			enc:  (&ReplTailClear{Shard: 1}).Encode,
			want: &ReplTailClear{Shard: 1},
		},
		{
			name: "ack", op: OpReplAck,
			enc:  (&ReplAck{Session: 5, Seq: 6, Status: 0, Resp: []byte{9}}).Encode,
			want: &ReplAck{Session: 5, Seq: 6, Status: 0, Resp: []byte{9}},
		},
		{
			name: "sessions", op: OpReplSessions,
			enc: (&ReplSessions{Sessions: []ReplSession{
				{ID: 1, MaxSeq: 10, Resps: []ReplResp{{Seq: 9, Status: 0, Resp: []byte("ok")}, {Seq: 10, Status: 1, Resp: nil}}},
				{ID: 2, MaxSeq: 0},
			}}).Encode,
			want: &ReplSessions{Sessions: []ReplSession{
				{ID: 1, MaxSeq: 10, Resps: []ReplResp{{Seq: 9, Status: 0, Resp: []byte("ok")}, {Seq: 10, Status: 1, Resp: []byte{}}}},
				{ID: 2, MaxSeq: 0},
			}},
		},
		{
			name: "base", op: OpReplBase,
			enc:  (&ReplBase{Pos: 88}).Encode,
			want: &ReplBase{Pos: 88},
		},
		{
			name: "reset", op: OpReplReset,
			enc:  (&ReplReset{Shard: 1, Dev: 1}).Encode,
			want: &ReplReset{Shard: 1, Dev: 1},
		},
	}
	for _, tc := range cases {
		if tc.want == nil {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			payload := tc.enc(nil)
			got, err := DecodeRepl(tc.op, payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, tc.want)
			}
		})
	}

	resp, err := DecodeReplHelloResp((&ReplHelloResp{Accept: true, Term: 3, Devs: devs}).Encode(nil))
	if err != nil {
		t.Fatalf("hello resp: %v", err)
	}
	if !resp.Accept || resp.Term != 3 || !reflect.DeepEqual(resp.Devs, devs) {
		t.Fatalf("hello resp mismatch: %#v", resp)
	}

	st := &ReplStatusResp{Role: RoleLeader, Term: 2, Epoch: 9, LeaderAddr: "a:1", Applied: 4, Pos: 7, Committed: 6, Devs: devs}
	got, err := DecodeReplStatusResp(st.Encode(nil))
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("status mismatch:\n got %#v\nwant %#v", got, st)
	}
}

func TestReplDecodeRejectsTruncation(t *testing.T) {
	full := map[byte][]byte{
		OpReplHello:      (&ReplHello{Term: 1, Epoch: 2, LeaderAddr: "x:1", Shards: 1, BlockSize: 512}).Encode(nil),
		OpReplWrite:      (&ReplWrite{Shard: 1, Dev: 1, Index: 3, Data: []byte("abcdef")}).Encode(nil),
		OpReplInvalidate: (&ReplInvalidate{Shard: 1, Dev: 1, Index: 3}).Encode(nil),
		OpReplTail:       (&ReplTail{Shard: 1, Global: 5, Image: []byte("abc")}).Encode(nil),
		OpReplTailClear:  (&ReplTailClear{Shard: 1}).Encode(nil),
		OpReplAck:        (&ReplAck{Session: 1, Seq: 2, Status: 0, Resp: []byte("r")}).Encode(nil),
		OpReplSessions:   (&ReplSessions{Sessions: []ReplSession{{ID: 1, MaxSeq: 2, Resps: []ReplResp{{Seq: 2, Resp: []byte("x")}}}}}).Encode(nil),
		OpReplBase:       (&ReplBase{Pos: 1}).Encode(nil),
		OpReplReset:      (&ReplReset{Shard: 1, Dev: 1}).Encode(nil),
	}
	for op, payload := range full {
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeRepl(op, payload[:cut]); err == nil {
				t.Fatalf("op %#x: truncation at %d accepted", op, cut)
			} else if !errors.Is(err, ErrReplPayload) {
				t.Fatalf("op %#x: error not wrapped: %v", op, err)
			}
		}
	}
}

func TestReplDecodeUnknownOp(t *testing.T) {
	if _, err := DecodeRepl(0x7F, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	for _, op := range []byte{OpPromote, OpReplStatus} {
		if v, err := DecodeRepl(op, nil); err != nil || v != nil {
			t.Fatalf("payload-free op %#x: %v %v", op, v, err)
		}
	}
}

func TestReplDecodeHugeCountsDoNotAllocate(t *testing.T) {
	// A count field claiming 2^40 sessions in a 12-byte payload must fail
	// fast rather than allocate.
	var b []byte
	b = PutUvarint(b, 1<<40)
	if _, err := DecodeReplSessions(b); err == nil {
		t.Fatal("huge session count accepted")
	}
	var d []byte
	d = append(d, 1) // accept
	d = PutUvarint(d, 0)
	d = PutUint64(d, 1)
	d = PutUvarint(d, 1<<40) // dev count
	if _, err := DecodeReplHelloResp(d); err == nil {
		t.Fatal("huge dev count accepted")
	}
}

func TestIsReplOp(t *testing.T) {
	for _, op := range []byte{OpReplHello, OpReplWrite, OpReplStatus, OpPromote} {
		if !IsReplOp(op) {
			t.Fatalf("op %#x not classified as replication", op)
		}
	}
	for _, op := range []byte{0x01, 0x15, 0x3F, 0x4B, 0xFF} {
		if IsReplOp(op) {
			t.Fatalf("op %#x wrongly classified as replication", op)
		}
	}
}
