package shard

import (
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/wodev"
)

// buildCrashedShards seals a little data on each of n shards (damaging one
// block per shard at the SAME shard-local index when damage is set), then
// crashes them and returns the reopen inputs. The NVRAM slice entries are
// non-nil for shards whose tail was staged (forced) rather than sealed.
func buildCrashedShards(t *testing.T, n int, damage bool, nvramOn []bool) ([][]wodev.Device, []core.Options) {
	t.Helper()
	devs := make([][]wodev.Device, n)
	opts := make([]core.Options, n)
	for i := 0; i < n; i++ {
		mem := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 10})
		opt := core.Options{BlockSize: 256, Degree: 4}
		now := int64(0)
		opt.Now = func() int64 { now += 1000; return now }
		if nvramOn != nil && nvramOn[i] {
			opt.NVRAM = core.NewMemNVRAM()
		}
		svc, err := core.New(mem, opt)
		if err != nil {
			t.Fatal(err)
		}
		id, err := svc.CreateLog("/r", 0, "")
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			if _, err := svc.Append(id, []byte(fmt.Sprintf("s%d-%d", i, j)), core.AppendOptions{Forced: true}); err != nil && !core.IsDegraded(err) {
				t.Fatal(err)
			}
		}
		if damage {
			// Same shard-local index on every shard: the collision the
			// merged report must not alias.
			if err := mem.Damage(mem.Written(), nil); err != nil {
				t.Fatal(err)
			}
			// A few forced appends so the slide happens AND the bad-block
			// log record itself reaches the device before the crash.
			for j := 0; j < 3; j++ {
				if _, err := svc.Append(id, []byte("post-damage"), core.AppendOptions{Forced: true}); err != nil && !core.IsDegraded(err) {
					t.Fatal(err)
				}
			}
		}
		if nvramOn != nil && nvramOn[i] {
			// Leave a staged, unsealed tail behind for the crash.
			if _, err := svc.Append(id, []byte("staged"), core.AppendOptions{Forced: true}); err != nil && !core.IsDegraded(err) {
				t.Fatal(err)
			}
		}
		svc.Crash()
		devs[i] = []wodev.Device{mem}
		opts[i] = opt
	}
	return devs, opts
}

// TestMergedRecoveryAttributesBadBlocks is the regression test for the
// LastRecovery merge: every shard has a bad block at the SAME shard-local
// index, and the merged report must keep all of them, attributed. The old
// report concatenated bare shard-local indices into one []int, where these
// collide indistinguishably.
func TestMergedRecoveryAttributesBadBlocks(t *testing.T) {
	const shards = 3
	devs, opts := buildCrashedShards(t, shards, true, nil)
	st, err := Open(devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	rep := st.LastRecovery()
	if len(rep.BadBlocks) != shards {
		t.Fatalf("merged BadBlocks = %v, want one per shard", rep.BadBlocks)
	}
	byShard := make(map[int]int)
	block := -1
	for _, ref := range rep.BadBlocks {
		byShard[ref.Shard]++
		if block == -1 {
			block = ref.Block
		} else if ref.Block != block {
			t.Fatalf("test setup: expected identical shard-local indices, got %v", rep.BadBlocks)
		}
	}
	for i := 0; i < shards; i++ {
		if byShard[i] != 1 {
			t.Errorf("shard %d has %d attributed bad blocks, want 1 (%v)", i, byShard[i], rep.BadBlocks)
		}
	}
	// Cross-check attribution against the per-shard reports.
	for i, r := range st.LastRecoveryByShard() {
		if len(r.BadBlocks) != 1 || r.BadBlocks[0] != block {
			t.Errorf("shard %d report BadBlocks = %v, want [%d]", i, r.BadBlocks, block)
		}
	}
}

// TestMergedRecoveryTailQuantifiers pins the explicit any/count semantics:
// with NVRAM on a strict subset of shards, TailsRestored counts exactly
// those shards and TailRestored (the "any" flag) is true; with NVRAM
// nowhere, both are zero-valued.
func TestMergedRecoveryTailQuantifiers(t *testing.T) {
	devs, opts := buildCrashedShards(t, 3, false, []bool{true, false, true})
	st, err := Open(devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep := st.LastRecovery()
	if rep.TailsRestored != 2 {
		t.Errorf("TailsRestored = %d, want 2", rep.TailsRestored)
	}
	if !rep.TailRestored {
		t.Error("TailRestored = false with two shards restored")
	}
	per := st.LastRecoveryByShard()
	for i, wantTail := range []bool{true, false, true} {
		if per[i].TailRestored != wantTail {
			t.Errorf("shard %d TailRestored = %v, want %v", i, per[i].TailRestored, wantTail)
		}
	}

	devs2, opts2 := buildCrashedShards(t, 2, false, nil)
	st2, err := Open(devs2, opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep2 := st2.LastRecovery()
	if rep2.TailsRestored != 0 || rep2.TailRestored {
		t.Errorf("no-NVRAM store: TailsRestored=%d TailRestored=%v, want 0/false",
			rep2.TailsRestored, rep2.TailRestored)
	}
}

// TestStoreCheckpointFanOut: Store.Checkpoint checkpoints every shard, and
// a store-wide crash then recovers every shard from its checkpoint, with
// the merged report counting them.
func TestStoreCheckpointFanOut(t *testing.T) {
	const shards = 3
	devs, opts := buildCrashedShards(t, shards, false, nil)
	for i := range opts {
		opts[i].CheckpointInterval = 64 // policy on, but far from due
	}
	st, err := Open(devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st.Crash()

	st2, err := Open(devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep := st2.LastRecovery()
	if rep.CheckpointsUsed != shards {
		t.Errorf("CheckpointsUsed = %d, want %d", rep.CheckpointsUsed, shards)
	}
	for i, r := range st2.LastRecoveryByShard() {
		if !r.CheckpointUsed {
			t.Errorf("shard %d did not use its checkpoint", i)
		}
	}
}
