package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestWritePromGolden pins the exact exposition bytes: families sorted by
// name, series in registration order, cumulative le-buckets with seconds
// bounds, +Inf last.
func TestWritePromGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_requests_total", "Requests served.", L("op", "append")).Add(3)
	reg.Counter("t_requests_total", "Requests served.", L("op", "read")).Inc()
	reg.Gauge("t_blocks", "Blocks cached.").Set(7)
	h := reg.Histogram("t_lat_seconds", "Latency.",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Second)
	reg.CounterFunc("t_dynamic_total", "Dyn.", func() int64 { return 42 })

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP t_blocks Blocks cached.
# TYPE t_blocks gauge
t_blocks 7
# HELP t_dynamic_total Dyn.
# TYPE t_dynamic_total counter
t_dynamic_total 42
# HELP t_lat_seconds Latency.
# TYPE t_lat_seconds histogram
t_lat_seconds_bucket{le="0.001"} 1
t_lat_seconds_bucket{le="0.01"} 2
t_lat_seconds_bucket{le="+Inf"} 3
t_lat_seconds_sum 1.003
t_lat_seconds_count 3
# HELP t_requests_total Requests served.
# TYPE t_requests_total counter
t_requests_total{op="append"} 3
t_requests_total{op="read"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "Help with \\ and\nnewline.", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `# HELP esc_total Help with \\ and\nnewline.`) {
		t.Errorf("HELP not escaped:\n%s", got)
	}
	if !strings.Contains(got, `esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", got)
	}
}

func TestSnapshotHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("s_seconds", "S.", []time.Duration{time.Millisecond})
	h.Observe(0)
	h.Observe(time.Hour)
	snap := reg.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d series", len(snap))
	}
	m := snap[0]
	if m.Type != "histogram" || m.Count != 2 {
		t.Fatalf("series = %+v", m)
	}
	if len(m.Buckets) != 2 || m.Buckets[0].Count != 1 || m.Buckets[0].LE != 0.001 ||
		!m.Buckets[1].Inf || m.Buckets[1].Count != 2 {
		t.Errorf("buckets = %+v", m.Buckets)
	}
	// The snapshot must round-trip through JSON (WriteJSON's contract).
	var back []SnapshotMetric
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(back) != 1 || back[0].Name != "s_seconds" || back[0].Count != 2 {
		t.Errorf("round-trip = %+v", back)
	}
}
