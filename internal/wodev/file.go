package wodev

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileDevice is a write-once device backed by a regular file, one file per
// log volume. The written portion of the volume is exactly the file's
// current extent, so Written can be answered by "directly querying the
// device" (§2.3.1); invalidated blocks are represented as all one bits, the
// same encoding the paper uses on the physical medium.
//
// The file itself is of course rewriteable; the append-only policy is
// enforced by this type, matching the paper's observation that "the
// append-only storage model is appropriate even if the backing storage
// medium happens to be rewriteable".
type FileDevice struct {
	mu        sync.Mutex
	f         *os.File
	blockSize int
	capacity  int
	written   int
	closed    bool
	stats     Stats
	lastRead  int
	syncEvery bool
}

// FileOptions configures OpenFile.
type FileOptions struct {
	// BlockSize in bytes; defaults to 1024. Must match when reopening.
	BlockSize int
	// Capacity in blocks; defaults to 1<<20.
	Capacity int
	// SyncEvery makes every append fsync, modelling non-volatile commitment
	// of each block. Off by default (the paper's device writes were
	// asynchronous with respect to the client).
	SyncEvery bool
}

// OpenFile opens (creating if necessary) a file-backed write-once volume.
// Reopening an existing volume file resumes with the written portion equal
// to the file extent; a trailing partial block (torn write) is truncated
// away, which is the correct crash semantics for a device that commits
// whole blocks.
func OpenFile(path string, opt FileOptions) (*FileDevice, error) {
	if opt.BlockSize <= 0 {
		opt.BlockSize = DefaultBlockSize
	}
	if opt.Capacity <= 0 {
		opt.Capacity = 1 << 20
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wodev: open volume file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wodev: stat volume file: %w", err)
	}
	whole := st.Size() / int64(opt.BlockSize)
	if st.Size()%int64(opt.BlockSize) != 0 {
		if err := f.Truncate(whole * int64(opt.BlockSize)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wodev: truncate torn block: %w", err)
		}
	}
	if whole > int64(opt.Capacity) {
		f.Close()
		return nil, fmt.Errorf("wodev: volume file holds %d blocks, capacity is %d", whole, opt.Capacity)
	}
	return &FileDevice{
		f:         f,
		blockSize: opt.BlockSize,
		capacity:  opt.Capacity,
		written:   int(whole),
		lastRead:  -2,
		syncEvery: opt.SyncEvery,
	}, nil
}

// BlockSize implements Device.
func (d *FileDevice) BlockSize() int { return d.blockSize }

// Capacity implements Device.
func (d *FileDevice) Capacity() int { return d.capacity }

// Written implements Device.
func (d *FileDevice) Written() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// ReadBlock implements Device.
func (d *FileDevice) ReadBlock(idx int, dst []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if idx < 0 || idx >= d.capacity {
		return ErrOutOfRange
	}
	if len(dst) < d.blockSize {
		return fmt.Errorf("wodev: read buffer %d < block size %d", len(dst), d.blockSize)
	}
	d.stats.Reads++
	if idx != d.lastRead+1 {
		d.stats.Seeks++
	}
	d.lastRead = idx
	if idx >= d.written {
		d.stats.Probes++
		return ErrUnwritten
	}
	if _, err := d.f.ReadAt(dst[:d.blockSize], int64(idx)*int64(d.blockSize)); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return ErrUnwritten
		}
		return fmt.Errorf("wodev: read block %d: %w", idx, err)
	}
	if allOnes(dst[:d.blockSize]) {
		return ErrInvalidated
	}
	return nil
}

// AppendBlock implements Device.
func (d *FileDevice) AppendBlock(data []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if len(data) != d.blockSize {
		return 0, ErrBadBlockSize
	}
	if d.written >= d.capacity {
		return 0, ErrFull
	}
	// Refuse all-ones payloads: that bit pattern is reserved as the
	// invalidation marker on the medium.
	if allOnes(data) {
		return 0, fmt.Errorf("wodev: all-ones block payload is reserved for invalidation")
	}
	idx := d.written
	if _, err := d.f.WriteAt(data, int64(idx)*int64(d.blockSize)); err != nil {
		return 0, fmt.Errorf("wodev: append block %d: %w", idx, err)
	}
	if d.syncEvery {
		if err := d.f.Sync(); err != nil {
			return 0, fmt.Errorf("wodev: sync: %w", err)
		}
	}
	d.written = idx + 1
	d.stats.Appends++
	return idx, nil
}

// WriteAt implements Device.
func (d *FileDevice) WriteAt(idx int, data []byte) error {
	d.mu.Lock()
	cur := d.written
	d.mu.Unlock()
	if idx < cur {
		return ErrRewrite
	}
	if idx != cur {
		return fmt.Errorf("wodev: write at %d but end of written portion is %d: %w", idx, cur, ErrRewrite)
	}
	_, err := d.AppendBlock(data)
	return err
}

// Invalidate implements Device.
func (d *FileDevice) Invalidate(idx int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if idx < 0 || idx >= d.capacity {
		return ErrOutOfRange
	}
	ones := make([]byte, d.blockSize)
	for i := range ones {
		ones[i] = 0xFF
	}
	if _, err := d.f.WriteAt(ones, int64(idx)*int64(d.blockSize)); err != nil {
		return fmt.Errorf("wodev: invalidate block %d: %w", idx, err)
	}
	if idx >= d.written {
		d.written = idx + 1
	}
	d.stats.Invalidations++
	return nil
}

// Sync flushes the backing file to stable storage.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.f.Sync()
}

// Stats implements Device.
func (d *FileDevice) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats implements Device.
func (d *FileDevice) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.lastRead = -2
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}

func allOnes(b []byte) bool {
	for _, c := range b {
		if c != 0xFF {
			return false
		}
	}
	return true
}
