package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"clio/internal/faults"
	"clio/internal/obs"
	"clio/internal/vclock"
	"clio/internal/wodev"
)

// TestScrapeWhileAppending races a metrics scraper against concurrent
// appenders, readers and counter resets. Run under -race it proves every
// snapshot path (Stats, CacheStats, DeviceStats, LocateStats, Status, the
// registry callbacks) takes its locks; the value assertions prove a scrape
// never tears a struct badly enough to lose completed operations.
func TestScrapeWhileAppending(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 1024, Capacity: 1 << 12})
	clk := vclock.New(vclock.DefaultModel())
	svc, err := New(dev, Options{
		BlockSize: 1024, Degree: 4, CacheBlocks: 64,
		Now:    lockedNow(),
		Clock:  clk,
		Faults: faults.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	id := mustCreate(t, svc, "/scrape")

	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)

	const writers, appendsEach = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < appendsEach; i++ {
				opts := AppendOptions{Forced: i%8 == 0}
				if _, err := svc.Append(id, []byte(fmt.Sprintf("w%d-%d", w, i)), opts); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() { // a reader exercising cache + locator while scraping
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := svc.OpenCursorID(id)
			if err != nil {
				continue
			}
			for j := 0; j < 10; j++ {
				if _, err := c.Next(); err != nil {
					break
				}
			}

		}
	}()

	// The scraper: Prometheus text plus JSON snapshot plus Status, as the
	// admin endpoint would.
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := reg.WriteProm(&b); err != nil {
				t.Errorf("WriteProm: %v", err)
				return
			}
			reg.Snapshot()
			svc.Status()
		}
	}()

	wg.Wait()
	close(stop)
	<-readerDone
	<-scrapeDone

	// After quiescence the registry and the accessors must agree exactly.
	st := svc.Stats()
	if st.EntriesAppended != writers*appendsEach {
		t.Errorf("EntriesAppended = %d, want %d", st.EntriesAppended, writers*appendsEach)
	}
	var fromProm strings.Builder
	if err := reg.WriteProm(&fromProm); err != nil {
		t.Fatal(err)
	}
	wantLine := fmt.Sprintf("clio_core_entries_appended_total %d", writers*appendsEach)
	if !strings.Contains(fromProm.String(), wantLine+"\n") {
		t.Errorf("scrape missing %q", wantLine)
	}
	if svc.met().appendLat.Count() != int64(writers*appendsEach) {
		t.Errorf("append histogram count = %d, want %d",
			svc.met().appendLat.Count(), writers*appendsEach)
	}
	if svc.met().appendV.Count() != svc.met().appendLat.Count() {
		t.Errorf("vclock histogram count %d != wall histogram count %d",
			svc.met().appendV.Count(), svc.met().appendLat.Count())
	}
}

// TestResetCountersWhileScraping races ResetCounters against the registry
// callbacks — the reset path takes the same locks the snapshots take.
func TestResetCountersWhileScraping(t *testing.T) {
	svc, _ := newTestService(t, Options{Now: lockedNow()})
	defer svc.Close()
	id := mustCreate(t, svc, "/reset")
	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	for i := 0; i < 100; i++ {
		if _, err := svc.Append(id, []byte("x"), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			svc.ResetCounters()
			svc.ResetLocateStats()
		}
	}
	close(stop)
	<-done
}

// TestStatusSnapshot checks the /statusz source against ground truth.
func TestStatusSnapshot(t *testing.T) {
	svc, _ := newTestService(t, Options{BlockSize: 256, Degree: 4})
	defer svc.Close()
	id := mustCreate(t, svc, "/status")
	for i := 0; i < 20; i++ {
		mustAppend(t, svc, id, fmt.Sprintf("entry-%d", i), AppendOptions{Forced: i == 10})
	}
	st := svc.Status()
	if st.BlockSize != 256 || st.Degree != 4 {
		t.Errorf("config = %d/%d", st.BlockSize, st.Degree)
	}
	if st.Stats.EntriesAppended != 20 {
		t.Errorf("EntriesAppended = %d", st.Stats.EntriesAppended)
	}
	if len(st.Volumes) != 1 || !st.Volumes[0].Active {
		t.Errorf("volumes = %+v", st.Volumes)
	}
	if st.End != svc.End() || st.SealedEnd > st.End {
		t.Errorf("End = %d, SealedEnd = %d", st.End, st.SealedEnd)
	}
	if st.NVRAM {
		t.Error("NVRAM reported without one configured")
	}
}

// TestAppendTraceSpans drives a forced append with a trace attached and
// checks the captured spans cover the group commit and the device write —
// the layers ISSUE's acceptance demands visible for a slow forced append.
func TestAppendTraceSpans(t *testing.T) {
	svc, _ := newTestService(t, Options{BlockSize: 256, Degree: 4}) // no NVRAM: forces seal to the device
	defer svc.Close()
	id := mustCreate(t, svc, "/traced")

	tc := obs.NewTracer(8, 0)
	tr := tc.Start(77, "append")
	if _, err := svc.Append(id, []byte("hello"), AppendOptions{Forced: true, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	tc.Finish(tr)

	names := map[string]bool{}
	for _, sp := range tr.Spans() {
		names[sp.Name] = true
		if sp.Duration < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.Duration)
		}
	}
	for _, want := range []string{"core.group_commit_wait", "core.group_commit", "wodev.write"} {
		if !names[want] {
			t.Errorf("trace missing span %q; have %v", want, tr.Spans())
		}
	}
	rec := tc.Slow()
	if len(rec) != 1 || rec[0].ID != 77 || len(rec[0].Spans) == 0 {
		t.Errorf("slow ring = %+v", rec)
	}
}

// TestInstrumentationPreservesOpCounts runs the same workload on an
// instrumented and an un-instrumented service and requires identical
// operation counters — the acceptance bar for cmd/experiments.
func TestInstrumentationPreservesOpCounts(t *testing.T) {
	run := func(register bool) (Stats, wodev.Stats, time.Duration) {
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
		clk := vclock.New(vclock.DefaultModel())
		tcl := &testClock{}
		svc, err := New(dev, Options{BlockSize: 256, Degree: 4, Now: tcl.Now, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		if register {
			svc.RegisterMetrics(obs.NewRegistry())
		}
		id := mustCreate(t, svc, "/same")
		for i := 0; i < 100; i++ {
			mustAppend(t, svc, id, fmt.Sprintf("payload-%04d", i), AppendOptions{Forced: i%10 == 0})
		}
		c, err := svc.OpenCursorID(id)
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := c.Next(); err != nil {
				break
			}
		}
		return svc.Stats(), svc.DeviceStats(), clk.Elapsed()
	}
	plainS, plainD, plainV := run(false)
	instS, instD, instV := run(true)
	if plainS != instS {
		t.Errorf("service stats diverge:\nplain = %+v\ninst  = %+v", plainS, instS)
	}
	if plainD != instD {
		t.Errorf("device stats diverge:\nplain = %+v\ninst  = %+v", plainD, instD)
	}
	if plainV != instV {
		t.Errorf("vclock diverges: plain %v, instrumented %v", plainV, instV)
	}
}
