// Quickstart: create a log store, write some entries, read them back
// forwards, backwards, and from a point in time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"clio"
)

func main() {
	dir, err := os.MkdirTemp("", "clio-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A store directory holds one file per write-once volume plus the
	// NVRAM sidecar staging the current partial block.
	svc, err := clio.CreateDir(dir, clio.DirOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	// Log files live in a directory hierarchy; each is also a directory of
	// sublogs.
	id, err := svc.CreateLog("/notes", 0o644, "me")
	if err != nil {
		log.Fatal(err)
	}

	var midway int64
	for i := 1; i <= 6; i++ {
		ts, err := svc.Append(id, []byte(fmt.Sprintf("note #%d", i)),
			clio.AppendOptions{Timestamped: true, Forced: i%2 == 0})
		if err != nil {
			log.Fatal(err)
		}
		if i == 4 {
			midway = ts
		}
	}

	fmt.Println("forwards:")
	cur, err := svc.OpenCursor("/notes")
	if err != nil {
		log.Fatal(err)
	}
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %s\n", time.Unix(0, e.Timestamp).Format(time.RFC3339), e.Data)
	}

	fmt.Println("backwards from the end:")
	cur.SeekEnd()
	for i := 0; i < 2; i++ {
		e, err := cur.Prev()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", e.Data)
	}

	fmt.Println("from a point in time (note #4 onwards):")
	if err := cur.SeekTime(midway); err != nil {
		log.Fatal(err)
	}
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", e.Data)
	}
}
