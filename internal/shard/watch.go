package shard

import (
	"context"

	"clio/internal/logapi"
	"clio/internal/obs"
	"clio/internal/stream"
)

var _ logapi.StreamService = (*Store)(nil)

// Watch opens a live tail subscription to the log file at path. A path that
// routes to one shard tails that shard's volume sequence; the root "/"
// live-merges every shard's tail — the streaming analogue of the merged
// root cursor, delivering the lowest (timestamp, shard) entry whenever more
// than one shard has entries pending, without ever waiting for an idle
// shard.
func (st *Store) Watch(ctx context.Context, path string, opts logapi.WatchOptions) (logapi.Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seg, err := rootSegment(path)
	if err != nil {
		return nil, err
	}
	so := logapi.StreamOptions(opts)
	so.Metrics = st.streamMet.Load()
	if seg == "" {
		legs := make([]stream.Leg, len(st.svcs))
		for i, svc := range st.svcs {
			legs[i] = stream.Leg{Svc: svc, Shard: i}
		}
		return stream.Open(path, so, legs...)
	}
	sh := hashSegment(seg, len(st.svcs))
	return stream.Open(path, so, stream.Leg{Svc: st.svcs[sh], Shard: sh})
}

// RegisterStreamMetrics creates the clio_stream_* instruments in reg and
// attaches them to every subscription subsequently opened through Watch.
// Call it alongside RegisterMetrics, before serving traffic.
func (st *Store) RegisterStreamMetrics(reg *obs.Registry) *stream.Metrics {
	m := stream.RegisterMetrics(reg)
	st.streamMet.Store(m)
	return m
}
