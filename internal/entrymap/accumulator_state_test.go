package entrymap

import (
	"reflect"
	"testing"
)

// stateEqual compares two accumulators by observable behaviour: pending
// bitmaps per level and the entries emitted at the next boundaries.
func stateEqual(t *testing.T, a, b *Accumulator) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("degree mismatch: %d vs %d", a.N(), b.N())
	}
	if a.Levels() != b.Levels() {
		t.Fatalf("level count mismatch: %d vs %d", a.Levels(), b.Levels())
	}
	for lvl := 1; lvl <= a.Levels(); lvl++ {
		if !reflect.DeepEqual(a.PendingIDs(lvl), b.PendingIDs(lvl)) {
			t.Fatalf("level %d pending ids differ: %v vs %v",
				lvl, a.PendingIDs(lvl), b.PendingIDs(lvl))
		}
		for _, id := range a.PendingIDs(lvl) {
			abm, aspan := a.Pending(lvl, id)
			bbm, bspan := b.Pending(lvl, id)
			if aspan != bspan || !reflect.DeepEqual(abm, bbm) {
				t.Fatalf("level %d id %d pending differs", lvl, id)
			}
		}
	}
}

func TestAccumulatorStateRoundTrip(t *testing.T) {
	const n = 4
	a, err := NewAccumulator(n)
	if err != nil {
		t.Fatal(err)
	}
	// Drive enough blocks to materialize three levels with partial spans
	// at each, interleaving several ids (including CheckpointID, which is
	// tracked).
	var emitted []*Entry
	for blk := 0; blk < n*n*n+n+2; blk++ {
		if blk > 0 && blk%n == 0 {
			emitted = append(emitted, a.EntriesDue(blk)...)
		}
		ids := []uint16{uint16(FirstClientID + blk%3)}
		if blk%5 == 0 {
			ids = append(ids, CheckpointID)
		}
		a.NoteBlock(blk, ids)
	}
	if len(emitted) == 0 || a.Levels() < 3 {
		t.Fatalf("test did not exercise multiple levels (levels=%d)", a.Levels())
	}

	buf := a.EncodeState([]byte("prefix"))
	got, used, err := DecodeState(buf[len("prefix"):])
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf)-len("prefix") {
		t.Fatalf("DecodeState consumed %d of %d bytes", used, len(buf)-len("prefix"))
	}
	stateEqual(t, a, got)

	// The restored accumulator must emit the same entries as the original
	// at the following boundaries.
	next := (n*n*n + n + 2 + n - 1) / n * n
	for bnd := next; bnd <= next+n*n; bnd += n {
		want := a.EntriesDue(bnd)
		have := got.EntriesDue(bnd)
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("boundary %d: restored accumulator emitted %v, want %v", bnd, have, want)
		}
	}
}

func TestDecodeStateRejectsGarbage(t *testing.T) {
	a, _ := NewAccumulator(8)
	a.NoteBlock(0, []uint16{FirstClientID})
	buf := a.EncodeState(nil)
	for _, tc := range [][]byte{
		nil,
		{0x00},
		{0x00, 0x01},       // degree 1 < MinDegree
		{0xFF, 0xFF, 0x01}, // absurd degree
		buf[:len(buf)-1],   // truncated bitmap
	} {
		if _, _, err := DecodeState(tc); err == nil {
			t.Errorf("DecodeState(%x) accepted", tc)
		}
	}
}
