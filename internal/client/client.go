// Package client is the client side of the Clio log-service protocol: the
// library an application links to access log files through the extended
// file server, in the spirit of the V-System UIO interface the paper uses —
// "log files are named using the standard file directory mechanism, and are
// accessed and managed using the same I/O and utility routines that are
// used to access and manage conventional files" (§2).
//
// A Client speaks over any net.Conn: a net.Pipe to an in-process server
// (the same-machine IPC case) or a TCP connection (cross-machine). Calls
// are synchronous request/response, matching the paper's IPC model; a
// Client serializes concurrent callers.
//
// # Fault tolerance
//
// A dialed Client is resilient to connection loss. Every request carries a
// client-assigned session sequence number; the server keeps a
// duplicate-suppression window per session, so when a connection dies
// mid-call the Client reconnects, replays the in-flight request under the
// same sequence number, and receives the original result — a retried append
// is executed once. Reconnection follows a bounded faults.RetryPolicy.
//
// The one unanswerable case is a server restart (detected by an epoch
// change in the reconnect handshake) while a mutating request was in
// flight: the restarted server has no duplicate-suppression state, so the
// Client surfaces *AmbiguousError rather than guess. All calls accept a
// context; its deadline (or Options.CallTimeout) bounds each attempt.
package client

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"clio/internal/faults"
	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/wire"
)

// DefaultDialTimeout bounds connection establishment when Options and the
// context do not say otherwise.
const DefaultDialTimeout = 10 * time.Second

// ErrClosed is returned for calls on a closed Client.
var ErrClosed = errors.New("client: closed")

// Options configures a dialed Client. The zero value is usable.
type Options struct {
	// DialTimeout bounds each connection attempt (0 = DefaultDialTimeout,
	// negative = no limit beyond the context's).
	DialTimeout time.Duration
	// CallTimeout bounds each request attempt when the context carries no
	// earlier deadline (0 = no per-call limit).
	CallTimeout time.Duration
	// Retry is the reconnect/replay schedule for transient connection
	// failures; nil means faults.DefaultNetPolicy.
	Retry *faults.RetryPolicy
	// SessionID names the client's server-side session, whose
	// duplicate-suppression window makes replayed requests idempotent.
	// 0 means a fresh random id.
	SessionID uint64
	// Dialer establishes connections; nil means TCP to the Dial address.
	// Setting it makes the Client reconnectable over any transport. It
	// overrides Addrs/DialAddr.
	Dialer func(ctx context.Context) (net.Conn, error)
	// Addrs is the cluster address list for multi-node failover: the dial
	// address plus these are rotated through when connections fail, and a
	// StatusNotLeader redirect steers the next attempt at the named leader
	// directly. Reconnect backoff is carried ACROSS the list — rotating to
	// the next address continues the schedule rather than restarting it
	// from the base delay, so a dead cluster is probed at the backed-off
	// rate, not hammered once per address per step.
	Addrs []string
	// DialAddr establishes a connection to one named address; nil means
	// TCP. Lets tests and partition injectors intercept per-address dials.
	DialAddr func(ctx context.Context, addr string) (net.Conn, error)
	// Tenant and Token authenticate the session on a multi-tenant server:
	// the hello handshake presents them, and every path the client touches
	// must live under /<Tenant>. Leave empty against an open server.
	Tenant string
	Token  string
}

// ErrNotLeader reports that a write-class request was sent to a replication
// follower. LeaderAddr is the leader the follower pointed at ("" when it
// knows none). The Client handles the redirect itself — callers see this
// error only when every redirect hop failed or the address list is
// exhausted.
type ErrNotLeader struct {
	LeaderAddr string
}

func (e *ErrNotLeader) Error() string {
	if e.LeaderAddr == "" {
		return "client: node is not the leader (no leader known)"
	}
	return fmt.Sprintf("client: node is not the leader (leader at %s)", e.LeaderAddr)
}

// AmbiguousError reports a request whose outcome is unknowable: the
// connection died while a mutating request was in flight and the server
// restarted (losing its duplicate-suppression window) before the client
// could replay it. The request may or may not have executed; the caller
// must reconcile by reading (e.g. Cursor.LocateUnique, §2.1).
type AmbiguousError struct {
	// Op names the request.
	Op string
	// Err is the connection error that interrupted the request.
	Err error
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("client: %s interrupted by server restart; it may or may not have executed: %v", e.Op, e.Err)
}

func (e *AmbiguousError) Unwrap() error { return e.Err }

// QuotaError reports a request the server refused with StatusQuotaExceeded:
// the session's tenant is over one of its configured quotas (logs, appended
// bytes, or concurrent sessions). The request did not execute, and — unlike
// a transient fault — the client does not retry it: the condition clears
// only when the operator raises the quota or the tenant's usage drops.
type QuotaError struct {
	// Msg is the server's reason, naming the tenant and quota.
	Msg string
}

func (e *QuotaError) Error() string { return "client: " + e.Msg }

// IsQuota reports whether err (or anything it wraps) is a *QuotaError.
func IsQuota(err error) bool {
	var q *QuotaError
	return errors.As(err, &q)
}

// DegradedError reports an append that COMPLETED — the entry is durable and
// Timestamp is its server timestamp — but required the service to relocate
// past damaged storage (§2.3.2). Callers that ignore it lose nothing but
// the warning.
type DegradedError struct {
	Timestamp int64
}

func (e *DegradedError) Error() string {
	return "client: append completed degraded (service relocated past damaged blocks)"
}

// IsDegraded reports whether err (or anything it wraps) is a *DegradedError.
func IsDegraded(err error) bool {
	var d *DegradedError
	return errors.As(err, &d)
}

// Entry is the service-side entry, decoded off the wire.
type Entry = logapi.Entry

// ID is the store-wide log-file id (shard ordinal in the high 16 bits).
type ID = logapi.ID

// Stats is the subset of server counters exposed over the protocol.
type Stats struct {
	EntriesAppended int64
	BlocksSealed    int64
	ClientBytes     int64
	EndBlocks       int64
}

// Client is a connection to a Clio log server. It implements the uniform
// logapi.Service surface, so applications written against the interface run
// unchanged against an in-process store, a sharded store, or the network.
type Client struct {
	opt   Options
	retry faults.RetryPolicy

	mu         sync.Mutex
	conn       net.Conn
	session    uint64
	seq        uint64
	epoch      uint64 // last observed server epoch; 0 = none yet
	closed     bool
	reconnects int64

	// Failover state (only used when addrs is non-empty).
	addrs     []string
	addrIdx   int    // rotation cursor into addrs
	preferred string // leader hint from a StatusNotLeader redirect; tried first
	connAddr  string // address the live conn was dialed to
	// failStreak counts consecutive connection-level failures across calls
	// AND across the address list; it indexes the backoff schedule and is
	// reset only by a successful round trip. This is what keeps failover
	// from restarting the backoff at the base delay on every new address.
	failStreak int
}

var _ logapi.Service = (*Client)(nil)

// New wraps an established connection. A Client made this way has no dialer
// and therefore cannot reconnect: the first connection error fails the call.
func New(conn net.Conn) *Client {
	return &Client{conn: conn, retry: faults.DefaultNetPolicy()}
}

// Dial connects to a TCP log server with default Options (in particular a
// DefaultDialTimeout bound on connection establishment).
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to a TCP log server.
func DialOptions(addr string, opt Options) (*Client, error) {
	return DialContext(context.Background(), addr, opt)
}

// DialContext connects to a log server, performing the session handshake.
// If opt.Dialer is nil, connections go to addr plus any opt.Addrs (TCP
// unless opt.DialAddr overrides the transport), with failover rotation and
// leader-redirect handling; otherwise addr is ignored and opt.Dialer is used
// (and reused on reconnect).
func DialContext(ctx context.Context, addr string, opt Options) (*Client, error) {
	c := &Client{opt: opt, session: opt.SessionID}
	if opt.Dialer == nil {
		if addr != "" {
			c.addrs = append(c.addrs, addr)
		}
		for _, a := range opt.Addrs {
			dup := false
			for _, have := range c.addrs {
				dup = dup || have == a
			}
			if !dup && a != "" {
				c.addrs = append(c.addrs, a)
			}
		}
		if len(c.addrs) == 0 {
			return nil, errors.New("client: no address to dial")
		}
		if c.opt.DialAddr == nil {
			c.opt.DialAddr = func(ctx context.Context, addr string) (net.Conn, error) {
				d := net.Dialer{Timeout: dialTimeout(opt)}
				return d.DialContext(ctx, "tcp", addr)
			}
		}
	}
	if opt.Retry != nil {
		c.retry = *opt.Retry
	} else {
		// Full jitter with a per-client seed: after a cluster-wide failure
		// the clients' reconnect storms spread across the backoff window
		// instead of arriving in lockstep.
		c.retry = faults.DefaultNetPolicy()
		c.retry.FullJitter = true
		c.retry.Seed = int64(randomSession())
	}
	if c.session == 0 {
		c.session = randomSession()
	}
	c.mu.Lock()
	err := c.reconnectLocked(ctx, false, "dial")
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

func dialTimeout(opt Options) time.Duration {
	switch {
	case opt.DialTimeout > 0:
		return opt.DialTimeout
	case opt.DialTimeout < 0:
		return 0
	default:
		return DefaultDialTimeout
	}
}

func randomSession() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// SessionID returns the client's session id (0 for an un-dialed Client).
func (c *Client) SessionID() uint64 { return c.session }

// Epoch returns the last server epoch observed in a handshake.
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Reconnects returns how many times the Client established a connection
// (the initial dial included).
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// reconnectLocked (re)establishes the connection and runs the OpHello
// handshake. When ambiguous is true a server epoch change makes the
// interrupted request unanswerable: the new connection is kept (the Client
// stays usable) but *AmbiguousError is returned.
func (c *Client) reconnectLocked(ctx context.Context, ambiguous bool, opName string) error {
	// DialTimeout bounds the whole connection attempt, handshake included —
	// a server that accepts but never answers must not hang the dial.
	if dt := dialTimeout(c.opt); dt > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dt)
		defer cancel()
	}
	var conn net.Conn
	var err error
	var dialed string
	if c.opt.Dialer != nil {
		conn, err = c.opt.Dialer(ctx)
	} else {
		dialed = c.pickAddrLocked()
		conn, err = c.opt.DialAddr(ctx, dialed)
	}
	if err != nil {
		c.addrFailedLocked(dialed)
		return err
	}
	hello := wire.Hello{Session: c.session, Tenant: c.opt.Tenant, Token: c.opt.Token}.Encode(nil)
	status, d, err := c.roundTrip(ctx, conn, server.OpHello, 0, traceID(c.session, 0), hello)
	if err != nil {
		conn.Close()
		c.addrFailedLocked(dialed)
		return err
	}
	if status != server.StatusOK {
		conn.Close()
		c.addrFailedLocked(dialed)
		msg, derr := d.String()
		if derr != nil {
			msg = fmt.Sprintf("handshake rejected (status %d)", status)
		}
		if status == server.StatusQuotaExceeded {
			// A session-quota refusal may clear as other connections leave;
			// transient keeps the retry schedule in charge.
			return faults.WithClass(&QuotaError{Msg: msg}, faults.Transient)
		}
		// Transient: another node in the rotation may accept the session.
		return faults.WithClass(fmt.Errorf("client: %s", msg), faults.Transient)
	}
	epoch, err := d.Int64()
	if err != nil {
		conn.Close()
		c.addrFailedLocked(dialed)
		return err
	}
	maxSeq, err := d.Int64()
	if err != nil {
		conn.Close()
		c.addrFailedLocked(dialed)
		return err
	}
	prev := c.epoch
	c.epoch = uint64(epoch)
	// A session id reused across Client instances must not collide with
	// sequence numbers the server has already recorded.
	if uint64(maxSeq) > c.seq {
		c.seq = uint64(maxSeq)
	}
	c.conn = conn
	c.connAddr = dialed
	c.reconnects++
	if ambiguous && prev != 0 && uint64(epoch) != prev {
		return &AmbiguousError{Op: opName, Err: net.ErrClosed}
	}
	return nil
}

// pickAddrLocked chooses the next address to dial: a leader hint from a
// StatusNotLeader redirect wins, otherwise the rotation cursor.
func (c *Client) pickAddrLocked() string {
	if c.preferred != "" {
		return c.preferred
	}
	return c.addrs[c.addrIdx%len(c.addrs)]
}

// addrFailedLocked advances failover state after a connection-level failure
// on addr ("" when a custom Dialer is in use, which has no address list). A
// failed leader hint is dropped; a failed rotation address advances the
// cursor so the next attempt tries the next node.
func (c *Client) addrFailedLocked(addr string) {
	if addr == "" || len(c.addrs) == 0 {
		return
	}
	if addr == c.preferred {
		c.preferred = ""
		return
	}
	if c.addrs[c.addrIdx%len(c.addrs)] == addr {
		c.addrIdx++
	}
}

// redirectLocked records a StatusNotLeader redirect: the named leader
// becomes the preferred next dial (and joins the rotation list if new).
// Returns false when the follower knew no leader.
func (c *Client) redirectLocked(leader string) bool {
	if leader == "" || len(c.addrs) == 0 {
		return false
	}
	c.preferred = leader
	for _, have := range c.addrs {
		if have == leader {
			return true
		}
	}
	c.addrs = append(c.addrs, leader)
	return true
}

// traceID derives the request's wire trace ID from (session, seq) via a
// splitmix64-style mix. Deriving rather than generating means a replayed
// request carries the same ID as its original send, so server-side traces of
// the two executions correlate; the mix keeps IDs from adjacent sequence
// numbers far apart. The low bit is set so an ID is never 0 (= untraced).
func traceID(session, seq uint64) uint64 {
	x := session ^ (seq * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x | 1
}

// roundTrip performs one framed request/response on conn, bounded by the
// context deadline and Options.CallTimeout and honoring cancellation.
func (c *Client) roundTrip(ctx context.Context, conn net.Conn, op byte, seq, trace uint64, payload []byte) (byte, *server.Decoder, error) {
	deadline, have := ctx.Deadline()
	if c.opt.CallTimeout > 0 {
		if d := time.Now().Add(c.opt.CallTimeout); !have || d.Before(deadline) {
			deadline, have = d, true
		}
	}
	if have {
		conn.SetDeadline(deadline)
	} else {
		conn.SetDeadline(time.Time{})
	}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0)) // unblock the read
			case <-stop:
			}
		}()
	}
	if err := server.WriteFrame(conn, op, seq, trace, payload); err != nil {
		return 0, nil, fmt.Errorf("client: send: %w", err)
	}
	status, rseq, _, resp, err := server.ReadFrame(conn)
	if err != nil {
		return 0, nil, fmt.Errorf("client: recv: %w", err)
	}
	if rseq != seq {
		return 0, nil, fmt.Errorf("client: response seq %d for request %d", rseq, seq)
	}
	return status, server.NewDecoder(resp), nil
}

// call performs one synchronous request, reconnecting and replaying it
// under the same sequence number when the connection fails transiently.
// mutating marks requests whose replay after a server restart would be
// ambiguous (appends, catalog changes).
func (c *Client) call(ctx context.Context, op byte, opName string, mutating bool, payload []byte) (byte, *server.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, nil, ErrClosed
	}
	c.seq++
	seq := c.seq

	maxAttempts := c.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 4
	}
	inFlight := false  // the request may have reached the server
	skipPause := false // a leader redirect retries immediately
	var lastErr error
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			if attempt > maxAttempts {
				return 0, nil, fmt.Errorf("client: %s: %d attempts exhausted: %w", opName, maxAttempts, lastErr)
			}
			if skipPause {
				skipPause = false
			} else {
				// The pause is indexed by the cross-call failure streak, not
				// this call's attempt number: failing over to the next
				// address (or the next call) continues the backoff schedule
				// instead of restarting it at the base delay.
				streak := c.failStreak
				if streak < 1 {
					streak = attempt - 1
				}
				if err := c.pause(ctx, streak); err != nil {
					return 0, nil, err
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, nil, err
		}
		if c.conn == nil {
			if c.opt.Dialer == nil && len(c.addrs) == 0 {
				return 0, nil, ErrClosed
			}
			err := c.reconnectLocked(ctx, inFlight && mutating, opName)
			var amb *AmbiguousError
			if errors.As(err, &amb) {
				return 0, nil, err
			}
			if err != nil {
				if faults.Classify(err) != faults.Transient {
					return 0, nil, err
				}
				c.failStreak++
				lastErr = err
				continue
			}
		}
		status, d, err := c.roundTrip(ctx, c.conn, op, seq, traceID(c.session, seq), payload)
		if err == nil {
			// The node answered: the network path works, whatever the status.
			c.failStreak = 0
			if status == server.StatusNotLeader {
				leader, _ := d.String()
				c.conn.Close()
				c.conn = nil
				lastErr = &ErrNotLeader{LeaderAddr: leader}
				if c.redirectLocked(leader) {
					// One-round-trip redirect: dial the named leader now.
					skipPause = true
				} else {
					// No leader known: rotate and back off like a failure.
					c.addrFailedLocked(c.connAddr)
					c.failStreak++
				}
				continue
			}
			if status == server.StatusUnavailable {
				// The node itself cannot serve writes right now (e.g. a
				// leader cut off from its quorum): rotate to another address
				// and keep retrying rather than failing the call.
				msg, derr := d.String()
				if derr != nil {
					msg = "node unavailable"
				}
				c.conn.Close()
				c.conn = nil
				c.addrFailedLocked(c.connAddr)
				c.failStreak++
				lastErr = errors.New(msg)
				continue
			}
			if status == server.StatusQuotaExceeded {
				// The request did not execute and retrying cannot help —
				// the tenant's quota is a policy, not a transient fault.
				msg, derr := d.String()
				if derr != nil {
					msg = "tenant quota exceeded"
				}
				return status, nil, &QuotaError{Msg: msg}
			}
			if status == server.StatusErr {
				msg, derr := d.String()
				if derr != nil {
					msg = "unknown server error"
				}
				return status, nil, errors.New(msg)
			}
			return status, d, nil
		}
		// Connection-level failure: the conn is poisoned either way.
		c.conn.Close()
		c.conn = nil
		c.addrFailedLocked(c.connAddr)
		c.failStreak++
		inFlight = true
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, cerr
		}
		if c.opt.Dialer == nil && len(c.addrs) == 0 || faults.Classify(err) != faults.Transient {
			return 0, nil, err
		}
		lastErr = err
	}
}

// pause sleeps the backoff before retry `attempt`, honoring cancellation.
func (c *Client) pause(ctx context.Context, attempt int) error {
	d := c.retry.Backoff(attempt)
	if c.retry.Sleep != nil {
		c.retry.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, _, err := c.call(ctx, server.OpPing, "ping", false, nil)
	return err
}

// decodeID consumes a uvarint store-wide log-file id.
func decodeID(d *server.Decoder) (ID, error) {
	v, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(^uint32(0)) {
		return 0, fmt.Errorf("client: id %d out of range", v)
	}
	return ID(v), nil
}

// CreateLog creates a log file (a sublog of its parent path).
func (c *Client) CreateLog(ctx context.Context, path string, perms uint16, owner string) (ID, error) {
	p := server.PutString(nil, path)
	p = wire.PutUint16(p, perms)
	p = server.PutString(p, owner)
	_, d, err := c.call(ctx, server.OpCreate, "create", true, p)
	if err != nil {
		return 0, err
	}
	return decodeID(d)
}

// Resolve maps a path to a log-file id.
func (c *Client) Resolve(ctx context.Context, path string) (ID, error) {
	_, d, err := c.call(ctx, server.OpResolve, "resolve", false, server.PutString(nil, path))
	if err != nil {
		return 0, err
	}
	return decodeID(d)
}

// List returns the sublog names under a path.
func (c *Client) List(ctx context.Context, path string) ([]string, error) {
	_, d, err := c.call(ctx, server.OpList, "list", false, server.PutString(nil, path))
	if err != nil {
		return nil, err
	}
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Stat returns a log file's descriptor.
func (c *Client) Stat(ctx context.Context, path string) (logapi.Info, error) {
	var st logapi.Info
	_, d, err := c.call(ctx, server.OpStat, "stat", false, server.PutString(nil, path))
	if err != nil {
		return st, err
	}
	if st.ID, err = decodeID(d); err != nil {
		return st, err
	}
	if st.Parent, err = decodeID(d); err != nil {
		return st, err
	}
	if st.Perms, err = d.Uint16(); err != nil {
		return st, err
	}
	if st.Created, err = d.Int64(); err != nil {
		return st, err
	}
	if st.Name, err = d.String(); err != nil {
		return st, err
	}
	if st.Owner, err = d.String(); err != nil {
		return st, err
	}
	flags, err := d.Byte()
	if err != nil {
		return st, err
	}
	st.Retired = flags&1 != 0
	st.System = flags&2 != 0
	return st, nil
}

// SetPerms changes a log file's permissions.
func (c *Client) SetPerms(ctx context.Context, path string, perms uint16) error {
	p := server.PutString(nil, path)
	p = wire.PutUint16(p, perms)
	_, _, err := c.call(ctx, server.OpSetPerms, "setperms", true, p)
	return err
}

// Retire closes a log file for further appends.
func (c *Client) Retire(ctx context.Context, path string) error {
	_, _, err := c.call(ctx, server.OpRetire, "retire", true, server.PutString(nil, path))
	return err
}

// AppendOptions is the service-side append option struct. The Trace field
// is a server-side concern and is not carried over the wire (the frame's
// traceID correlates client and server traces instead).
type AppendOptions = logapi.AppendOptions

func appendFlags(opts AppendOptions) byte {
	var flags byte
	if opts.Timestamped {
		flags |= server.AppendTimestamped
	}
	if opts.Forced {
		flags |= server.AppendForced
	}
	return flags
}

// Append writes one entry and returns its server timestamp. A non-nil
// *DegradedError alongside a valid timestamp means the entry IS durable but
// the service had to relocate past damaged storage (§2.3.2).
func (c *Client) Append(ctx context.Context, id ID, data []byte, opts AppendOptions) (int64, error) {
	p := wire.PutUvarint(nil, uint64(id))
	p = append(p, appendFlags(opts))
	p = server.PutBytes(p, data)
	status, d, err := c.call(ctx, server.OpAppend, "append", true, p)
	if err != nil {
		return 0, err
	}
	ts, err := d.Int64()
	if err != nil {
		return 0, err
	}
	if status == server.StatusDegraded {
		return ts, &DegradedError{Timestamp: ts}
	}
	return ts, nil
}

// AppendMulti writes one entry belonging to several log files at once
// (§2.1); ids[0] is the primary. The entry appears in every listed log.
// Degraded completion is reported as in Append.
func (c *Client) AppendMulti(ctx context.Context, ids []ID, data []byte, opts AppendOptions) (int64, error) {
	p := wire.PutUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		p = wire.PutUvarint(p, uint64(id))
	}
	p = append(p, appendFlags(opts))
	p = server.PutBytes(p, data)
	status, d, err := c.call(ctx, server.OpAppendMulti, "appendmulti", true, p)
	if err != nil {
		return 0, err
	}
	ts, err := d.Int64()
	if err != nil {
		return 0, err
	}
	if status == server.StatusDegraded {
		return ts, &DegradedError{Timestamp: ts}
	}
	return ts, nil
}

// ReadAt fetches the entry previously reported at a shard-local
// (block, index) position, as observed on an Entry from that shard.
func (c *Client) ReadAt(ctx context.Context, shard, block, index int) (*Entry, error) {
	p := wire.PutUvarint(nil, uint64(shard))
	p = wire.PutUvarint(p, uint64(block))
	p = wire.PutUvarint(p, uint64(index))
	_, d, err := c.call(ctx, server.OpReadAt, "readat", false, p)
	if err != nil {
		return nil, err
	}
	return decodeEntry(d)
}

// Force makes everything appended so far durable on every shard.
func (c *Client) Force(ctx context.Context) error {
	_, _, err := c.call(ctx, server.OpForce, "force", true, nil)
	return err
}

// Stats fetches server counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	_, d, err := c.call(ctx, server.OpStats, "stats", false, nil)
	if err != nil {
		return st, err
	}
	v1, err := d.Int64()
	if err != nil {
		return st, err
	}
	v2, err := d.Int64()
	if err != nil {
		return st, err
	}
	v3, err := d.Int64()
	if err != nil {
		return st, err
	}
	v4, err := d.Int64()
	if err != nil {
		return st, err
	}
	st.EntriesAppended, st.BlocksSealed, st.ClientBytes, st.EndBlocks = v1, v2, v3, v4
	return st, nil
}

// Cursor is a remote cursor over a log file. Its server-side state lives in
// the client's session, so it survives reconnects — but not server
// restarts.
type Cursor struct {
	c      *Client
	handle uint32
}

var _ logapi.Cursor = (*Cursor)(nil)

// OpenCursor opens a cursor positioned at the start of the log file. The
// concrete type is *Cursor (reach it with a type assertion for
// LocateUnique).
func (c *Client) OpenCursor(ctx context.Context, path string) (logapi.Cursor, error) {
	_, d, err := c.call(ctx, server.OpCursorOpen, "cursoropen", false, server.PutString(nil, path))
	if err != nil {
		return nil, err
	}
	h, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	return &Cursor{c: c, handle: h}, nil
}

func decodeEntry(d *server.Decoder) (*Entry, error) {
	e := &Entry{}
	var err error
	if e.LogID, err = d.Uint16(); err != nil {
		return nil, err
	}
	if e.Timestamp, err = d.Int64(); err != nil {
		return nil, err
	}
	flags, err := d.Byte()
	if err != nil {
		return nil, err
	}
	e.Timestamped = flags&server.EntryTimestamped != 0
	e.Forced = flags&server.EntryForced != 0
	sh, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	e.Shard = int(sh)
	b, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	e.Block = int(b)
	idx, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	e.Index = int(idx)
	nExtra, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if nExtra > 0 {
		e.ExtraIDs = make([]uint16, nExtra)
		for i := range e.ExtraIDs {
			if e.ExtraIDs[i], err = d.Uint16(); err != nil {
				return nil, err
			}
		}
	}
	if e.Data, err = d.Bytes(); err != nil {
		return nil, err
	}
	return e, nil
}

// Next returns the next matching entry, or io.EOF at the end of the log.
func (cu *Cursor) Next(ctx context.Context) (*Entry, error) { return cu.step(ctx, server.OpNext) }

// Prev returns the previous matching entry, or io.EOF at the beginning.
func (cu *Cursor) Prev(ctx context.Context) (*Entry, error) { return cu.step(ctx, server.OpPrev) }

func (cu *Cursor) step(ctx context.Context, op byte) (*Entry, error) {
	status, d, err := cu.c.call(ctx, op, "cursorstep", false, wire.PutUvarint(nil, uint64(cu.handle)))
	if err != nil {
		return nil, err
	}
	if status == server.StatusEOF {
		return nil, io.EOF
	}
	return decodeEntry(d)
}

// SeekTime positions the cursor so Next returns the first entry at/after ts.
func (cu *Cursor) SeekTime(ctx context.Context, ts int64) error {
	p := wire.PutUvarint(nil, uint64(cu.handle))
	p = wire.PutUint64(p, uint64(ts))
	_, _, err := cu.c.call(ctx, server.OpSeekTime, "seektime", false, p)
	return err
}

// SeekStart positions the cursor before the first entry.
func (cu *Cursor) SeekStart(ctx context.Context) error {
	_, _, err := cu.c.call(ctx, server.OpSeekStart, "seekstart", false, wire.PutUvarint(nil, uint64(cu.handle)))
	return err
}

// SeekEnd positions the cursor after the last entry.
func (cu *Cursor) SeekEnd(ctx context.Context) error {
	_, _, err := cu.c.call(ctx, server.OpSeekEnd, "seekend", false, wire.PutUvarint(nil, uint64(cu.handle)))
	return err
}

// SeekPos restores the cursor to a previously observed (block, rec) gap
// position, for resumable consumers.
func (cu *Cursor) SeekPos(ctx context.Context, block, rec int) error {
	p := wire.PutUvarint(nil, uint64(cu.handle))
	p = wire.PutUvarint(p, uint64(block))
	p = wire.PutUvarint(p, uint64(rec))
	_, _, err := cu.c.call(ctx, server.OpSeekPos, "seekpos", false, p)
	return err
}

// Close releases the server-side cursor.
func (cu *Cursor) Close() error {
	_, _, err := cu.c.call(context.Background(), server.OpCursorEnd, "cursorend", false, wire.PutUvarint(nil, uint64(cu.handle)))
	return err
}
