module clio

go 1.22
