package server

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"clio/internal/obs"
	"clio/internal/wire"
)

// testTenants is the table the tenant tests serve under.
func testTenants() []Tenant {
	return []Tenant{
		{Name: "acme", Token: "acme-secret", MaxLogs: 3, MaxBytes: 64, MaxSessions: 2},
		{Name: "beta", Token: "beta-secret"},
	}
}

// dialTenant opens one more connection to srv and, when token is non-empty,
// binds it to the tenant.
func dialTenant(t *testing.T, srv *Server, tenant, token string) net.Conn {
	t.Helper()
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	t.Cleanup(func() { cConn.Close() })
	if token != "" {
		status, resp := roundTrip(t, cConn, OpHello, wire.Hello{Tenant: tenant, Token: token}.Encode(nil))
		if status != StatusOK {
			msg, _ := NewDecoder(resp).String()
			t.Fatalf("hello as %s: status %d (%s)", tenant, status, msg)
		}
	}
	return cConn
}

func createPayload(path string) []byte {
	p := PutString(nil, path)
	p = wire.PutUint16(p, 0o644)
	return PutString(p, "t")
}

func appendPayload(id uint64, data string) []byte {
	p := wire.PutUvarint(nil, id)
	p = append(p, AppendForced)
	return PutBytes(p, []byte(data))
}

func TestTenantAuthentication(t *testing.T) {
	srv, conn := testServer(t)
	srv.SetTenants(testTenants())

	// Unauthenticated connections may ping (health checks) but nothing else.
	if status, _ := roundTrip(t, conn, OpPing, nil); status != StatusOK {
		t.Error("ping refused before hello")
	}
	status, resp := roundTrip(t, conn, OpCreate, createPayload("/acme/a"))
	if status != StatusErr {
		t.Fatalf("unauthenticated create: status %d", status)
	}
	if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, "authentication required") {
		t.Errorf("unauthenticated create error = %q", msg)
	}

	// Wrong token, unknown tenant, missing credentials: all refused.
	for _, h := range []wire.Hello{
		{Tenant: "acme", Token: "wrong"},
		{Tenant: "nobody", Token: "acme-secret"},
		{},
	} {
		if status, _ := roundTrip(t, conn, OpHello, h.Encode(nil)); status == StatusOK {
			t.Errorf("hello %+v accepted", h)
		}
	}

	// The right token binds, and the namespace opens up.
	if status, _ := roundTrip(t, conn, OpHello, wire.Hello{Tenant: "acme", Token: "acme-secret"}.Encode(nil)); status != StatusOK {
		t.Fatal("authenticated hello refused")
	}
	if status, _ := roundTrip(t, conn, OpCreate, createPayload("/acme")); status != StatusOK {
		t.Error("create inside namespace refused")
	}
}

func TestTenantNamespaceIsolation(t *testing.T) {
	srv, _ := testServer(t)
	srv.SetTenants(testTenants())
	acme := dialTenant(t, srv, "acme", "acme-secret")
	beta := dialTenant(t, srv, "beta", "beta-secret")

	if status, _ := roundTrip(t, beta, OpCreate, createPayload("/beta")); status != StatusOK {
		t.Fatal("beta create failed")
	}
	status, resp := roundTrip(t, beta, OpCreate, createPayload("/beta/inner"))
	if status != StatusOK {
		t.Fatal("beta inner create failed")
	}
	betaID, err := NewDecoder(resp).Uvarint()
	if err != nil {
		t.Fatal(err)
	}

	// Path-addressed ops outside the namespace: refused with a clear error.
	for op, payload := range map[byte][]byte{
		OpCreate:     createPayload("/beta/x"),
		OpResolve:    PutString(nil, "/beta"),
		OpList:       PutString(nil, "/beta"),
		OpStat:       PutString(nil, "/beta/inner"),
		OpCursorOpen: PutString(nil, "/beta/inner"),
	} {
		status, resp := roundTrip(t, acme, op, payload)
		if status != StatusErr {
			t.Errorf("op %s across tenants: status %d", opName(op), status)
			continue
		}
		if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, "outside tenant acme namespace") {
			t.Errorf("op %s across tenants: %q", opName(op), msg)
		}
	}

	// Id-addressed append: the id is attributed back to its path.
	status, resp = roundTrip(t, acme, OpAppend, appendPayload(betaID, "x"))
	if status != StatusErr {
		t.Fatalf("cross-tenant append by id: status %d", status)
	}
	if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, "outside tenant acme namespace") {
		t.Errorf("cross-tenant append error = %q", msg)
	}

	// The owner can still use the same id.
	if status, _ := roundTrip(t, beta, OpAppend, appendPayload(betaID, "x")); status != StatusOK {
		t.Error("owner append refused")
	}
}

func TestTenantQuotasAndMetrics(t *testing.T) {
	srv, _ := testServer(t)
	reg := obs.NewRegistry()
	srv.RegisterMetrics(reg)
	srv.SetTenants(testTenants())
	conn := dialTenant(t, srv, "acme", "acme-secret")

	quotaCount := func(quota string) int64 {
		return reg.Counter("clio_tenant_quota_exceeded_total",
			"Requests refused with StatusQuotaExceeded, by quota.",
			obs.L("tenant", "acme"), obs.L("quota", quota)).Value()
	}

	// MaxLogs = 3: the root plus two sublogs fit, the fourth log does not.
	mustOK(t, conn, OpCreate, createPayload("/acme"))
	mustOK(t, conn, OpCreate, createPayload("/acme/a"))
	// A create that reserves a slot but fails in dispatch (duplicate path)
	// must return the reservation — the third create below still fits.
	if status, _ := roundTrip(t, conn, OpCreate, createPayload("/acme/a")); status != StatusErr {
		t.Error("duplicate create did not error")
	}
	mustOK(t, conn, OpCreate, createPayload("/acme/b"))
	status, resp := roundTrip(t, conn, OpCreate, createPayload("/acme/c"))
	if status != StatusQuotaExceeded {
		t.Fatalf("create over log quota: status %d, want %d", status, StatusQuotaExceeded)
	}
	if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, "over logs quota") {
		t.Errorf("quota error = %q", msg)
	}
	if got := quotaCount("logs"); got != 1 {
		t.Errorf("clio_tenant_quota_exceeded_total{quota=logs} = %d, want 1", got)
	}

	// MaxBytes = 64: a 40-byte append fits, the next 40 bytes do not, and
	// the refusal must not consume budget — a 20-byte append still fits.
	id, err := NewDecoder(mustOK(t, conn, OpResolve, PutString(nil, "/acme/a"))).Uvarint()
	if err != nil {
		t.Fatal(err)
	}
	if status, _ := roundTrip(t, conn, OpAppend, appendPayload(id, strings.Repeat("x", 40))); status != StatusOK {
		t.Fatal("append within budget refused")
	}
	status, resp = roundTrip(t, conn, OpAppend, appendPayload(id, strings.Repeat("y", 40)))
	if status != StatusQuotaExceeded {
		t.Fatalf("append over byte quota: status %d, want %d", status, StatusQuotaExceeded)
	}
	if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, "over bytes quota") {
		t.Errorf("quota error = %q", msg)
	}
	if got := quotaCount("bytes"); got != 1 {
		t.Errorf("clio_tenant_quota_exceeded_total{quota=bytes} = %d, want 1", got)
	}
	if status, _ := roundTrip(t, conn, OpAppend, appendPayload(id, strings.Repeat("z", 20))); status != StatusOK {
		t.Error("refusal consumed byte budget: in-budget append refused")
	}
	appended := reg.Counter("clio_tenant_bytes_appended_total",
		"Entry bytes successfully appended by the tenant.", obs.L("tenant", "acme")).Value()
	if appended != 60 {
		t.Errorf("clio_tenant_bytes_appended_total = %d, want 60", appended)
	}
}

func TestTenantSessionQuota(t *testing.T) {
	srv, _ := testServer(t)
	srv.SetTenants(testTenants())
	c1 := dialTenant(t, srv, "acme", "acme-secret")
	dialTenant(t, srv, "acme", "acme-secret")

	// MaxSessions = 2: the third concurrent bind is refused with the typed
	// status.
	c3Conn, c3Srv := net.Pipe()
	go srv.ServeConn(c3Srv)
	defer c3Conn.Close()
	status, _ := roundTrip(t, c3Conn, OpHello, wire.Hello{Tenant: "acme", Token: "acme-secret"}.Encode(nil))
	if status != StatusQuotaExceeded {
		t.Fatalf("third session: status %d, want %d", status, StatusQuotaExceeded)
	}

	// Closing a bound connection frees its slot (release runs in the
	// connection's teardown, so poll briefly).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, _ = roundTrip(t, c3Conn, OpHello, wire.Hello{Tenant: "acme", Token: "acme-secret"}.Encode(nil))
		if status == StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session slot never freed after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestTenantSessionPinning(t *testing.T) {
	srv, _ := testServer(t)
	srv.SetTenants(testTenants())
	acme := dialTenant(t, srv, "acme", "acme-secret")

	// acme attaches shared session 42.
	if status, _ := roundTrip(t, acme, OpHello, wire.Hello{Session: 42, Tenant: "acme", Token: "acme-secret"}.Encode(nil)); status != StatusOK {
		t.Fatal("acme session hello refused")
	}
	// beta presenting valid credentials must still not reach acme's session
	// (its cached responses would leak).
	beta := dialTenant(t, srv, "beta", "beta-secret")
	status, resp := roundTrip(t, beta, OpHello, wire.Hello{Session: 42, Tenant: "beta", Token: "beta-secret"}.Encode(nil))
	if status != StatusErr {
		t.Fatalf("cross-tenant session attach: status %d", status)
	}
	if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, "belongs to another tenant") {
		t.Errorf("cross-tenant session attach error = %q", msg)
	}
}

func TestSetTenantsReload(t *testing.T) {
	srv, _ := testServer(t)
	srv.SetTenants(testTenants())
	conn := dialTenant(t, srv, "acme", "acme-secret")
	for _, path := range []string{"/acme", "/acme/a", "/acme/b"} {
		mustOK(t, conn, OpCreate, createPayload(path))
	}
	if status, _ := roundTrip(t, conn, OpCreate, createPayload("/acme/c")); status != StatusQuotaExceeded {
		t.Fatal("log quota not enforced before reload")
	}

	// Reload: quota raised, token rotated. Usage must carry over (the
	// fourth create fits, a fifth would not), the old token must stop
	// working, and the live session keeps its binding.
	srv.SetTenants([]Tenant{{Name: "acme", Token: "rotated", MaxLogs: 4}})
	if status, _ := roundTrip(t, conn, OpCreate, createPayload("/acme/c")); status != StatusOK {
		t.Error("raised quota not applied on reload")
	}
	if status, _ := roundTrip(t, conn, OpCreate, createPayload("/acme/d")); status != StatusQuotaExceeded {
		t.Error("usage counters reset by reload: fifth create accepted")
	}
	stale, staleSrv := net.Pipe()
	go srv.ServeConn(staleSrv)
	defer stale.Close()
	if status, _ := roundTrip(t, stale, OpHello, wire.Hello{Tenant: "acme", Token: "acme-secret"}.Encode(nil)); status == StatusOK {
		t.Error("rotated-out token still accepted")
	}
	if status, _ := roundTrip(t, stale, OpHello, wire.Hello{Tenant: "acme", Token: "rotated"}.Encode(nil)); status != StatusOK {
		t.Error("rotated token refused")
	}
	if status, _ := roundTrip(t, conn, OpResolve, PutString(nil, "/acme/a")); status != StatusOK {
		t.Error("existing session lost its binding across reload")
	}
}

func TestTenantSeedCountsExistingLogs(t *testing.T) {
	srv, conn := testServer(t)
	// Open mode: lay down two logs under what will become acme's namespace.
	mustOK(t, conn, OpCreate, createPayload("/acme"))
	mustOK(t, conn, OpCreate, createPayload("/acme/old"))

	srv.SetTenants([]Tenant{{Name: "acme", Token: "s", MaxLogs: 3}})
	tc := dialTenant(t, srv, "acme", "s")
	// 2 existing + 1 new = 3; the next one must trip the quota.
	if status, _ := roundTrip(t, tc, OpCreate, createPayload("/acme/new")); status != StatusOK {
		t.Fatal("create under seeded namespace refused")
	}
	if status, _ := roundTrip(t, tc, OpCreate, createPayload("/acme/over")); status != StatusQuotaExceeded {
		t.Error("seed did not count pre-existing logs")
	}
}

func TestTenantGroupScoping(t *testing.T) {
	srv, _ := testServer(t)
	srv.SetTenants(testTenants())
	conn := dialTenant(t, srv, "acme", "acme-secret")

	// Group names must carry the tenant prefix; the offsets log the ack
	// lands in is then reachable by the same session.
	rec := wire.GroupRec{Kind: wire.GroupAck, Member: "m1"}
	op := wire.StreamGroupOp{Group: "plain", Rec: rec}
	status, resp := roundTrip(t, conn, wire.OpStreamAck, op.Encode(nil))
	if status != StatusErr {
		t.Fatalf("unscoped group ack: status %d", status)
	}
	if msg, _ := NewDecoder(resp).String(); !strings.Contains(msg, `use "acme.plain"`) {
		t.Errorf("unscoped group error = %q", msg)
	}
	op.Group = "acme.plain"
	if status, _ := roundTrip(t, conn, wire.OpStreamAck, op.Encode(nil)); status != StatusOK {
		t.Error("scoped group ack refused")
	}
	if status, _ := roundTrip(t, conn, OpCursorOpen, PutString(nil, OffsetsRoot+"/acme.plain")); status != StatusOK {
		t.Error("tenant cannot read its own offsets log")
	}
	if status, _ := roundTrip(t, conn, OpCursorOpen, PutString(nil, OffsetsRoot+"/beta.g")); status != StatusErr {
		t.Error("tenant can read another tenant's offsets log")
	}
}

// mustOK round-trips one frame and fails the test on a non-OK status.
func mustOK(t *testing.T, conn net.Conn, op byte, payload []byte) []byte {
	t.Helper()
	status, resp := roundTrip(t, conn, op, payload)
	if status != StatusOK {
		msg, _ := NewDecoder(resp).String()
		t.Fatalf("op %s: status %d (%s)", opName(op), status, msg)
	}
	return resp
}

// TestTenantSessionSoak drives many concurrent authenticated sessions
// through bind, a namespaced op and teardown, and checks nothing leaks: the
// slot count returns to zero and the server stays serviceable. The short
// variant keeps the count race-detector friendly.
func TestTenantSessionSoak(t *testing.T) {
	sessions, workers := 2000, 64
	if testing.Short() {
		sessions, workers = 300, 16
	}
	srv, setup := testServer(t)
	srv.SetTenants([]Tenant{
		{Name: "acme", Token: "acme-secret"},
		{Name: "beta", Token: "beta-secret"},
	})
	_ = setup
	bootstrap := dialTenant(t, srv, "acme", "acme-secret")
	mustOK(t, bootstrap, OpCreate, createPayload("/acme"))

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				func() {
					cConn, sConn := net.Pipe()
					defer cConn.Close()
					go srv.ServeConn(sConn)
					tenant, token := "acme", "acme-secret"
					if i%3 == 0 {
						tenant, token = "beta", "beta-secret"
					}
					cConn.SetDeadline(time.Now().Add(30 * time.Second))
					hello := wire.Hello{Session: uint64(1000 + i), Tenant: tenant, Token: token}.Encode(nil)
					if err := WriteFrame(cConn, OpHello, 0, 0, hello); err != nil {
						errCh <- err
						return
					}
					status, _, _, _, err := ReadFrame(cConn)
					if err != nil {
						errCh <- err
						return
					}
					if status != StatusOK {
						errCh <- errStatus(status)
						return
					}
					// One namespaced request per session keeps the gate hot.
					if err := WriteFrame(cConn, OpResolve, 0, 0, PutString(nil, "/"+tenant)); err != nil {
						errCh <- err
						return
					}
					if _, _, _, _, err := ReadFrame(cConn); err != nil {
						errCh <- err
					}
				}()
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("soak session failed: %v", err)
	}

	// Every slot must come back: connection teardown runs asynchronously,
	// so poll for the gauges to settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := int64(0)
		for _, ts := range srv.Status().Tenants {
			total += ts.Sessions
		}
		if total == 1 { // the bootstrap connection still holds its slot
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session slots leaked: %d still held", total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

type errStatus byte

func (e errStatus) Error() string { return "unexpected status " + string('0'+byte(e)) }
