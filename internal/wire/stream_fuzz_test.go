package wire

import "testing"

// FuzzStreamDecode throws arbitrary bytes at every streaming payload
// decoder. A malformed frame from a confused peer must produce an error,
// never a panic or an oversized allocation.
func FuzzStreamDecode(f *testing.F) {
	f.Add(byte(OpStreamSubscribe), (&StreamSubscribe{Path: "/feed", Buffer: 256, FromStart: true,
		From: []StreamPos{{Shard: 1, Block: 4, Rec: 2}}, Credit: 64}).Encode(nil))
	f.Add(byte(OpStreamDeliver), (&StreamDeliver{SubID: 1, LogID: 7, Timestamp: 1234567, Flags: 3,
		Shard: 2, Block: 9, Index: 1, ExtraIDs: []uint16{5}, Data: []byte("payload")}).Encode(nil))
	f.Add(byte(OpStreamCredit), (&StreamCredit{SubID: 1, Credit: 32}).Encode(nil))
	f.Add(byte(OpStreamUnsubscribe), (&StreamUnsubscribe{SubID: 1}).Encode(nil))
	f.Add(byte(OpStreamEnd), (&StreamEnd{SubID: 1, Msg: "closed"}).Encode(nil))
	f.Add(byte(OpStreamAck), (&StreamGroupOp{Group: "g",
		Rec: GroupRec{Kind: GroupAck, Member: "c1", Partition: 2, Shard: 2, Block: 8, Rec: 1, Count: 42}}).Encode(nil))
	f.Add(byte(OpStreamRebalance), (&StreamGroupOp{Group: "g",
		Rec: GroupRec{Kind: GroupJoin, Member: "c2"}}).Encode(nil))
	f.Add(byte(0x00), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, op byte, payload []byte) {
		v, err := DecodeStream(op, payload)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking; this also keeps
		// the encoders honest about accepting any decoder-produced value.
		switch m := v.(type) {
		case *StreamSubscribe:
			m.Encode(nil)
		case *StreamDeliver:
			m.Encode(nil)
		case *StreamCredit:
			m.Encode(nil)
		case *StreamUnsubscribe:
			m.Encode(nil)
		case *StreamEnd:
			m.Encode(nil)
		case *StreamGroupOp:
			m.Encode(nil)
		}
		// The bare group record decoder is its own public entry point (the
		// offsets-log reader): feed the same bytes in.
		if g, err := DecodeGroupRec(payload); err == nil {
			g.Encode(nil)
		}
	})
}
