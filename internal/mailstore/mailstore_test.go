package mailstore

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/wodev"
)

func newStore(t *testing.T) (*Store, *core.Service, wodev.Device, core.Options) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	opt := core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(context.Background(), logapi.NewLocal(svc), "/mail")
	if err != nil {
		t.Fatal(err)
	}
	return st, svc, dev, opt
}

func TestDeliverAndList(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	ctx := context.Background()
	if err := st.CreateMailbox(ctx, "smith"); err != nil {
		t.Fatal(err)
	}
	id1, err := st.Deliver(ctx, "smith", "alice", "hi", "hello smith")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.Deliver(ctx, "smith", "bob", "re: hi", "hello again")
	if err != nil || id2 <= id1 {
		t.Fatalf("second delivery: %d, %v", id2, err)
	}
	msgs, err := st.List(ctx, "smith", false)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("List: %d msgs, %v", len(msgs), err)
	}
	if msgs[0].From != "alice" || msgs[0].Subject != "hi" || msgs[0].Body != "hello smith" {
		t.Errorf("msg 0: %+v", msgs[0])
	}
	if msgs[0].Delivered != id1 {
		t.Errorf("msg id: %d vs %d", msgs[0].Delivered, id1)
	}
}

func TestUnknownMailbox(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	ctx := context.Background()
	if _, err := st.Deliver(ctx, "ghost", "x", "y", "z"); !errors.Is(err, ErrNoMailbox) {
		t.Errorf("deliver to ghost: %v", err)
	}
	if _, err := st.List(ctx, "ghost", false); !errors.Is(err, ErrNoMailbox) {
		t.Errorf("list ghost: %v", err)
	}
}

func TestFlagsAndHiding(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	ctx := context.Background()
	if err := st.CreateMailbox(ctx, "u"); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 3; i++ {
		id, err := st.Deliver(ctx, "u", "from", fmt.Sprintf("s%d", i), "body")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.MarkRead(ctx, "u", ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Hide(ctx, "u", ids[1]); err != nil {
		t.Fatal(err)
	}
	msgs, _ := st.List(ctx, "u", false)
	if len(msgs) != 2 {
		t.Fatalf("visible: %d", len(msgs))
	}
	if !msgs[0].Read || msgs[0].Delivered != ids[0] {
		t.Errorf("msg 0 flags: %+v", msgs[0])
	}
	all, _ := st.List(ctx, "u", true)
	if len(all) != 3 || !all[1].Hidden {
		t.Errorf("all: %d, hidden=%v", len(all), all[1].Hidden)
	}
	if err := st.MarkRead(ctx, "u", 424242); !errors.Is(err, ErrNoMessage) {
		t.Errorf("flag unknown: %v", err)
	}
}

func TestCacheRebuildFromHistory(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	ctx := context.Background()
	if err := st.CreateMailbox(ctx, "u"); err != nil {
		t.Fatal(err)
	}
	id, err := st.Deliver(ctx, "u", "a", "s", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.MarkRead(ctx, "u", id); err != nil {
		t.Fatal(err)
	}
	st.EvictCache()
	msgs, err := st.List(ctx, "u", true)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("after evict: %d, %v", len(msgs), err)
	}
	if !msgs[0].Read || msgs[0].From != "a" {
		t.Errorf("rebuilt message: %+v", msgs[0])
	}
}

func TestMailSurvivesCrash(t *testing.T) {
	st, svc, dev, opt := newStore(t)
	ctx := context.Background()
	if err := st.CreateMailbox(ctx, "u"); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 10; i++ {
		id, err := st.Deliver(ctx, "u", "postmaster", fmt.Sprintf("msg %d", i), "body body body")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	st2, err := New(ctx, logapi.NewLocal(svc2), "/mail")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := st2.List(ctx, "u", true)
	if err != nil || len(msgs) != 10 {
		t.Fatalf("after crash: %d msgs, %v", len(msgs), err)
	}
	for i, m := range msgs {
		if m.Delivered != ids[i] || m.Subject != fmt.Sprintf("msg %d", i) {
			t.Errorf("msg %d: %+v", i, m)
		}
	}
	// The mail history remains appendable.
	if _, err := st2.Deliver(ctx, "u", "x", "new", "mail"); err != nil {
		t.Fatal(err)
	}
}

func TestUsersAndGet(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	ctx := context.Background()
	for _, u := range []string{"alice", "bob"} {
		if err := st.CreateMailbox(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	users, err := st.Users(ctx)
	if err != nil || fmt.Sprint(users) != "[alice bob]" {
		t.Errorf("Users: %v, %v", users, err)
	}
	id, _ := st.Deliver(ctx, "alice", "bob", "s", "b")
	m, err := st.Get(ctx, "alice", id)
	if err != nil || m.From != "bob" {
		t.Errorf("Get: %+v, %v", m, err)
	}
	if _, err := st.Get(ctx, "alice", 1); !errors.Is(err, ErrNoMessage) {
		t.Errorf("Get missing: %v", err)
	}
}

func TestDeliverCC(t *testing.T) {
	st, svc, _, _ := newStore(t)
	defer svc.Close()
	ctx := context.Background()
	for _, u := range []string{"alice", "bob", "carol"} {
		if err := st.CreateMailbox(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	id, err := st.DeliverCC(ctx, []string{"alice", "bob"}, "carol", "meeting", "3pm in the lab")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		msgs, err := st.List(ctx, u, false)
		if err != nil || len(msgs) != 1 {
			t.Fatalf("%s: %d msgs, %v", u, len(msgs), err)
		}
		if msgs[0].Delivered != id || msgs[0].Subject != "meeting" {
			t.Errorf("%s: %+v", u, msgs[0])
		}
	}
	if msgs, _ := st.List(ctx, "carol", false); len(msgs) != 0 {
		t.Errorf("carol got a copy: %d", len(msgs))
	}
	// The agents' caches rebuild the CC'd message from the single entry.
	st.EvictCache()
	for _, u := range []string{"alice", "bob"} {
		msgs, err := st.List(ctx, u, false)
		if err != nil || len(msgs) != 1 || msgs[0].Body != "3pm in the lab" {
			t.Fatalf("%s after evict: %v, %v", u, msgs, err)
		}
	}
	// Per-recipient flags stay independent.
	if err := st.Hide(ctx, "alice", id); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := st.List(ctx, "alice", false); len(msgs) != 0 {
		t.Error("alice still sees hidden CC")
	}
	if msgs, _ := st.List(ctx, "bob", false); len(msgs) != 1 {
		t.Error("bob lost the CC when alice hid hers")
	}
	if _, err := st.DeliverCC(ctx, nil, "x", "y", "z"); err == nil {
		t.Error("empty recipient list accepted")
	}
}
