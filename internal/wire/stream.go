package wire

import (
	"errors"
	"fmt"
)

// Streaming-read opcodes, an extension of the sessioned frame protocol
// (internal/server: u32 len | u8 op | u64 seq | u64 traceID | payload).
// They live in the 0x60 range so they can never collide with the client ops
// (1–21) or the replication extension (0x40–0x4A).
//
// A subscription runs on a dedicated connection: the client sends one
// OpStreamSubscribe, then the server pushes OpStreamDeliver frames — the
// status byte of a pushed frame is the opcode itself, which no response
// status (0–5) can collide with, and the seq field carries the subscription
// id. Flow control is credit-based: the subscribe payload grants an initial
// window, OpStreamCredit replenishes it as the consumer drains, and the
// server stops pushing when the window is exhausted — backpressure on a slow
// network consumer without buffering unbounded entries server-side.
const (
	// OpStreamSubscribe opens a live tail subscription (client → server).
	// Payload: StreamSubscribe. The response carries the subscription id
	// (u32).
	OpStreamSubscribe = 0x60
	// OpStreamDeliver carries one delivered entry (server → client, pushed).
	// Payload: StreamDeliver. The frame's seq field echoes the subscription
	// id.
	OpStreamDeliver = 0x61
	// OpStreamCredit replenishes a subscription's delivery window (client →
	// server). Payload: StreamCredit.
	OpStreamCredit = 0x62
	// OpStreamUnsubscribe closes a subscription (client → server). Payload:
	// StreamUnsubscribe.
	OpStreamUnsubscribe = 0x63
	// OpStreamEnd reports a subscription ended server-side (pushed) — the
	// backing service closed, the log was lost, or the server is shutting
	// down. Payload: StreamEnd.
	OpStreamEnd = 0x64
	// OpStreamAck appends one consumer-group acknowledgement record to the
	// group's offsets log (client → server). Payload: StreamGroupOp whose
	// record kind is GroupAck or GroupHeartbeat. The response carries the
	// record's server timestamp (u64).
	OpStreamAck = 0x65
	// OpStreamRebalance appends one consumer-group membership record —
	// join, leave, claim or release — to the group's offsets log (client →
	// server). Payload: StreamGroupOp. The response carries the record's
	// server timestamp (u64).
	OpStreamRebalance = 0x66
)

// ErrStreamPayload is wrapped by every streaming payload decode failure.
var ErrStreamPayload = errors.New("wire: malformed stream payload")

// Bounds a decoder will allocate for; anything larger is malformed.
const (
	maxStreamFrom  = 1 << 16
	maxStreamExtra = 64
)

// StreamPos is one shard's resume position inside a subscribe payload: the
// gap position after the last entry the consumer has (Rec = Index + 1).
type StreamPos struct {
	Shard uint32
	Block uint64
	Rec   uint64
}

// StreamSubscribe opens a subscription to the log file at Path.
type StreamSubscribe struct {
	Path string
	// Buffer bounds the server-side delivery buffer in entries; 0 uses the
	// server default.
	Buffer uint32
	// FromStart delivers existing history before live entries; the default
	// starts at the current end.
	FromStart bool
	// From resumes listed shard legs from gap positions (overriding
	// FromStart for those shards).
	From []StreamPos
	// Credit is the initial delivery window in entries; 0 uses the server
	// default.
	Credit uint32
}

// StreamDeliver is one pushed entry.
type StreamDeliver struct {
	SubID uint32
	// Entry fields, mirroring core.Entry.
	LogID     uint16
	Timestamp int64
	// Flags carries the EntryTimestamped/EntryForced bits.
	Flags    byte
	Shard    uint32
	Block    uint64
	Index    uint64
	ExtraIDs []uint16
	Data     []byte
}

// StreamCredit replenishes a subscription's delivery window.
type StreamCredit struct {
	SubID  uint32
	Credit uint32
}

// StreamUnsubscribe closes a subscription.
type StreamUnsubscribe struct {
	SubID uint32
}

// StreamEnd reports a server-side subscription end; Msg explains why.
type StreamEnd struct {
	SubID uint32
	Msg   string
}

// Consumer-group record kinds (GroupRec.Kind). The records are appended to
// the group's offsets log — an ordinary log file under the reserved
// /.offsets system sublog — so group state recovers exactly like any other
// log data and the ack trail is auditable after the fact.
const (
	// GroupJoin announces a member; assignment is recomputed over the new
	// live set.
	GroupJoin = 1
	// GroupLeave retires a member (graceful shutdown).
	GroupLeave = 2
	// GroupHeartbeat refreshes a member's liveness lease.
	GroupHeartbeat = 3
	// GroupAck acknowledges delivery through a position: Partition consumed
	// up to the gap position (Shard, Block, Rec), Count entries so far.
	GroupAck = 4
	// GroupClaim records that Member took ownership of Partition. Block/Rec
	// carry the claim's fencing citation: the group-log gap position of the
	// last ownership event the claimer observed for the partition. The
	// claim is valid only if the citation still matches when the claim
	// lands — racing claims cite the same event, the log orders them, the
	// first is valid and the rest are void.
	GroupClaim = 5
	// GroupRelease records that Member gave up Partition (handoff).
	GroupRelease = 6
)

// GroupRec is one consumer-group record. The same encoding is both the
// offsets-log record body and the OpStreamAck/OpStreamRebalance wire
// payload's record part.
type GroupRec struct {
	Kind   byte
	Member string
	// Partition is the partition ordinal the record concerns (acks, claims,
	// releases); unused for membership records.
	Partition uint32
	// Shard, Block, Rec are the acknowledged gap position (GroupAck);
	// Block, Rec double as the fencing citation of a claim (GroupClaim).
	Shard uint32
	Block uint64
	Rec   uint64
	// Count is the member's cumulative delivered-entry count for the
	// partition (GroupAck), the audit trail's exactly-once evidence.
	Count uint64
}

// StreamGroupOp addresses one group record to a named group.
type StreamGroupOp struct {
	Group string
	Rec   GroupRec
}

// streamReader consumes a payload front to back with explicit bounds
// checks; every failure wraps ErrStreamPayload, and no input can make it
// panic or allocate more than the payload's own length.
type streamReader struct {
	buf []byte
}

func (r *streamReader) fail(what string) error {
	return fmt.Errorf("%w: %s", ErrStreamPayload, what)
}

func (r *streamReader) uvarint(what string) (uint64, error) {
	v, n, err := Uvarint(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *streamReader) u64(what string) (uint64, error) {
	v, err := Uint64(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[8:]
	return v, nil
}

func (r *streamReader) u32(what string) (uint32, error) {
	v, err := Uint32(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[4:]
	return v, nil
}

func (r *streamReader) u16(what string) (uint16, error) {
	v, err := Uint16(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[2:]
	return v, nil
}

func (r *streamReader) byte(what string) (byte, error) {
	if len(r.buf) < 1 {
		return 0, r.fail(what)
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *streamReader) bytes(what string) ([]byte, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, r.fail(what + " body")
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out, nil
}

func (r *streamReader) str(what string) (string, error) {
	b, err := r.bytes(what)
	return string(b), err
}

// Encode appends the subscribe's wire form.
func (s *StreamSubscribe) Encode(b []byte) []byte {
	b = putBytes(b, []byte(s.Path))
	b = PutUvarint(b, uint64(s.Buffer))
	var fs byte
	if s.FromStart {
		fs = 1
	}
	b = append(b, fs)
	b = PutUvarint(b, uint64(len(s.From)))
	for _, p := range s.From {
		b = PutUvarint(b, uint64(p.Shard))
		b = PutUvarint(b, p.Block)
		b = PutUvarint(b, p.Rec)
	}
	return PutUvarint(b, uint64(s.Credit))
}

// DecodeStreamSubscribe parses a StreamSubscribe payload.
func DecodeStreamSubscribe(payload []byte) (*StreamSubscribe, error) {
	r := &streamReader{buf: payload}
	s := &StreamSubscribe{}
	var err error
	if s.Path, err = r.str("path"); err != nil {
		return nil, err
	}
	buf, err := r.uvarint("buffer")
	if err != nil {
		return nil, err
	}
	fs, err := r.byte("from-start")
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint("from count")
	if err != nil {
		return nil, err
	}
	if buf > maxStreamFrom || n > maxStreamFrom {
		return nil, r.fail("from count range")
	}
	s.Buffer, s.FromStart = uint32(buf), fs != 0
	for i := uint64(0); i < n; i++ {
		var p StreamPos
		sh, err := r.uvarint("from shard")
		if err != nil {
			return nil, err
		}
		if sh > maxStreamFrom {
			return nil, r.fail("from shard range")
		}
		p.Shard = uint32(sh)
		if p.Block, err = r.uvarint("from block"); err != nil {
			return nil, err
		}
		if p.Rec, err = r.uvarint("from rec"); err != nil {
			return nil, err
		}
		s.From = append(s.From, p)
	}
	credit, err := r.uvarint("credit")
	if err != nil {
		return nil, err
	}
	if credit > 1<<30 {
		return nil, r.fail("credit range")
	}
	s.Credit = uint32(credit)
	return s, nil
}

// Encode appends the deliver's wire form.
func (d *StreamDeliver) Encode(b []byte) []byte {
	return append(d.EncodeHead(b), d.Data...)
}

// EncodeHead appends everything up to and including the data length prefix,
// so the data itself can be shipped as a separate borrowed chunk (writev):
// head + d.Data is byte-identical to Encode.
func (d *StreamDeliver) EncodeHead(b []byte) []byte {
	b = PutUvarint(b, uint64(d.SubID))
	b = PutUint16(b, d.LogID)
	b = PutUint64(b, uint64(d.Timestamp))
	b = append(b, d.Flags)
	b = PutUvarint(b, uint64(d.Shard))
	b = PutUvarint(b, d.Block)
	b = PutUvarint(b, d.Index)
	b = PutUvarint(b, uint64(len(d.ExtraIDs)))
	for _, id := range d.ExtraIDs {
		b = PutUint16(b, id)
	}
	return PutUvarint(b, uint64(len(d.Data)))
}

// DecodeStreamDeliver parses a StreamDeliver payload.
func DecodeStreamDeliver(payload []byte) (*StreamDeliver, error) {
	r := &streamReader{buf: payload}
	d := &StreamDeliver{}
	sub, err := r.uvarint("sub id")
	if err != nil {
		return nil, err
	}
	if sub > uint64(^uint32(0)) {
		return nil, r.fail("sub id range")
	}
	d.SubID = uint32(sub)
	if d.LogID, err = r.u16("log id"); err != nil {
		return nil, err
	}
	ts, err := r.u64("timestamp")
	if err != nil {
		return nil, err
	}
	d.Timestamp = int64(ts)
	if d.Flags, err = r.byte("flags"); err != nil {
		return nil, err
	}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	if sh > maxStreamFrom {
		return nil, r.fail("shard range")
	}
	d.Shard = uint32(sh)
	if d.Block, err = r.uvarint("block"); err != nil {
		return nil, err
	}
	if d.Index, err = r.uvarint("index"); err != nil {
		return nil, err
	}
	nx, err := r.uvarint("extra count")
	if err != nil {
		return nil, err
	}
	if nx > maxStreamExtra {
		return nil, r.fail("extra count range")
	}
	for i := uint64(0); i < nx; i++ {
		id, err := r.u16("extra id")
		if err != nil {
			return nil, err
		}
		d.ExtraIDs = append(d.ExtraIDs, id)
	}
	if d.Data, err = r.bytes("data"); err != nil {
		return nil, err
	}
	return d, nil
}

// Encode appends the credit grant's wire form.
func (c *StreamCredit) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(c.SubID))
	return PutUvarint(b, uint64(c.Credit))
}

// DecodeStreamCredit parses a StreamCredit payload.
func DecodeStreamCredit(payload []byte) (*StreamCredit, error) {
	r := &streamReader{buf: payload}
	sub, err := r.uvarint("sub id")
	if err != nil {
		return nil, err
	}
	credit, err := r.uvarint("credit")
	if err != nil {
		return nil, err
	}
	if sub > uint64(^uint32(0)) || credit > 1<<30 {
		return nil, r.fail("credit range")
	}
	return &StreamCredit{SubID: uint32(sub), Credit: uint32(credit)}, nil
}

// Encode appends the unsubscribe's wire form.
func (u *StreamUnsubscribe) Encode(b []byte) []byte {
	return PutUvarint(b, uint64(u.SubID))
}

// DecodeStreamUnsubscribe parses a StreamUnsubscribe payload.
func DecodeStreamUnsubscribe(payload []byte) (*StreamUnsubscribe, error) {
	r := &streamReader{buf: payload}
	sub, err := r.uvarint("sub id")
	if err != nil {
		return nil, err
	}
	if sub > uint64(^uint32(0)) {
		return nil, r.fail("sub id range")
	}
	return &StreamUnsubscribe{SubID: uint32(sub)}, nil
}

// Encode appends the end notice's wire form.
func (e *StreamEnd) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(e.SubID))
	return putBytes(b, []byte(e.Msg))
}

// DecodeStreamEnd parses a StreamEnd payload.
func DecodeStreamEnd(payload []byte) (*StreamEnd, error) {
	r := &streamReader{buf: payload}
	sub, err := r.uvarint("sub id")
	if err != nil {
		return nil, err
	}
	if sub > uint64(^uint32(0)) {
		return nil, r.fail("sub id range")
	}
	msg, err := r.str("msg")
	if err != nil {
		return nil, err
	}
	return &StreamEnd{SubID: uint32(sub), Msg: msg}, nil
}

// Encode appends the group record's wire form — the same bytes used as the
// offsets-log record body.
func (g *GroupRec) Encode(b []byte) []byte {
	b = append(b, g.Kind)
	b = putBytes(b, []byte(g.Member))
	b = PutUvarint(b, uint64(g.Partition))
	b = PutUvarint(b, uint64(g.Shard))
	b = PutUvarint(b, g.Block)
	b = PutUvarint(b, g.Rec)
	return PutUvarint(b, g.Count)
}

// DecodeGroupRec parses a GroupRec from an offsets-log record body or a
// wire payload.
func DecodeGroupRec(payload []byte) (*GroupRec, error) {
	r := &streamReader{buf: payload}
	g := &GroupRec{}
	var err error
	if g.Kind, err = r.byte("kind"); err != nil {
		return nil, err
	}
	if g.Kind < GroupJoin || g.Kind > GroupRelease {
		return nil, r.fail("kind range")
	}
	if g.Member, err = r.str("member"); err != nil {
		return nil, err
	}
	part, err := r.uvarint("partition")
	if err != nil {
		return nil, err
	}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	if part > maxStreamFrom || sh > maxStreamFrom {
		return nil, r.fail("partition range")
	}
	g.Partition, g.Shard = uint32(part), uint32(sh)
	if g.Block, err = r.uvarint("block"); err != nil {
		return nil, err
	}
	if g.Rec, err = r.uvarint("rec"); err != nil {
		return nil, err
	}
	if g.Count, err = r.uvarint("count"); err != nil {
		return nil, err
	}
	return g, nil
}

// Encode appends the group op's wire form.
func (o *StreamGroupOp) Encode(b []byte) []byte {
	b = putBytes(b, []byte(o.Group))
	return o.Rec.Encode(b)
}

// DecodeStreamGroupOp parses a StreamGroupOp payload.
func DecodeStreamGroupOp(payload []byte) (*StreamGroupOp, error) {
	r := &streamReader{buf: payload}
	group, err := r.str("group")
	if err != nil {
		return nil, err
	}
	rec, err := DecodeGroupRec(r.buf)
	if err != nil {
		return nil, err
	}
	return &StreamGroupOp{Group: group, Rec: *rec}, nil
}

// DecodeStream parses any streaming payload by opcode — the single entry
// point protocol handlers (and the fuzz harness) use, so every streaming
// decoder shares the no-panic guarantee. Unknown ops return an error.
func DecodeStream(op byte, payload []byte) (any, error) {
	switch op {
	case OpStreamSubscribe:
		return DecodeStreamSubscribe(payload)
	case OpStreamDeliver:
		return DecodeStreamDeliver(payload)
	case OpStreamCredit:
		return DecodeStreamCredit(payload)
	case OpStreamUnsubscribe:
		return DecodeStreamUnsubscribe(payload)
	case OpStreamEnd:
		return DecodeStreamEnd(payload)
	case OpStreamAck, OpStreamRebalance:
		return DecodeStreamGroupOp(payload)
	default:
		return nil, fmt.Errorf("%w: unknown stream op %#x", ErrStreamPayload, op)
	}
}

// IsStreamOp reports whether op belongs to the streaming extension.
func IsStreamOp(op byte) bool { return op >= OpStreamSubscribe && op <= OpStreamRebalance }
