package group

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/shard"
	"clio/internal/wire"
	"clio/internal/wodev"
)

var bg = context.Background()

func newStore(t *testing.T, shards int) *shard.Store {
	t.Helper()
	svcs := make([]*core.Service, shards)
	for i := range svcs {
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
		svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
	}
	st, err := shard.New(svcs)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHandoff is the deterministic rebalance walk: a lone member owns every
// partition; a second member joins; the release/claim fencing hands one
// partition over; the audit sees a clean, contiguous trail.
func TestHandoff(t *testing.T) {
	st := newStore(t, 2)
	defer st.Close()
	ids, err := EnsureTopic(bg, st, "/jobs", 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{TTL: 500 * time.Millisecond}

	c1, err := Join(bg, st, "g", "c1", "/jobs", 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "c1 to own both partitions", func() bool { return sameInts(c1.Assigned(), []int{0, 1}) })

	produce := func(round, perPartition int) {
		for p, id := range ids {
			for i := 0; i < perPartition; i++ {
				data := fmt.Sprintf("r%d-p%d-%d", round, p, i)
				if _, err := st.Append(bg, id, []byte(data), logapi.AppendOptions{Forced: true}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	drain := func(c *Consumer, n int) map[string]int {
		t.Helper()
		got := make(map[string]int)
		for i := 0; i < n; i++ {
			ctx, cancel := context.WithTimeout(bg, 10*time.Second)
			m, err := c.Recv(ctx)
			cancel()
			if err != nil {
				t.Fatalf("Recv %d: %v", i, err)
			}
			if err := c.Ack(bg, m); err != nil {
				t.Fatalf("Ack %q: %v", m.Data, err)
			}
			got[string(m.Data)] = m.Partition
		}
		return got
	}

	produce(0, 3)
	if got := drain(c1, 6); len(got) != 6 {
		t.Fatalf("round 0: got %v", got)
	}

	c2, err := Join(bg, st, "g", "c2", "/jobs", 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted live members [c1 c2]: partition 0 stays with c1, partition 1
	// moves to c2 once c1 releases it.
	waitFor(t, "rebalance to settle", func() bool {
		return sameInts(c1.Assigned(), []int{0}) && sameInts(c2.Assigned(), []int{1})
	})

	produce(1, 2)
	for data, p := range drain(c1, 2) {
		if p != 0 {
			t.Fatalf("c1 delivered %q from partition %d after handoff", data, p)
		}
	}
	for data, p := range drain(c2, 2) {
		if p != 1 {
			t.Fatalf("c2 delivered %q from partition %d", data, p)
		}
	}

	c1.Close()
	c2.Close()
	rep, err := Audit(bg, st, "g")
	if err != nil {
		t.Fatalf("audit: %v (report %+v)", err, rep)
	}
	if rep.Acked() != 10 {
		t.Fatalf("acked %d entries, want 10", rep.Acked())
	}
	for p, pr := range rep.Partitions {
		if pr.Count != 5 {
			t.Fatalf("partition %d count %d, want 5", p, pr.Count)
		}
	}
	if owners := rep.Partitions[1].Owners; len(owners) != 2 || owners[0] != "c1" || owners[1] != "c2" {
		t.Fatalf("partition 1 owners %v, want [c1 c2]", owners)
	}
}

// dumpTrail prints the group log record by record — the post-mortem view
// when an audit fails.
func dumpTrail(t *testing.T, svc logapi.Service, group string) {
	t.Helper()
	cur, err := svc.OpenCursor(bg, LogPath(group))
	if err != nil {
		t.Logf("dump: %v", err)
		return
	}
	defer cur.Close()
	kinds := map[byte]string{wire.GroupJoin: "join", wire.GroupLeave: "leave", wire.GroupHeartbeat: "heartbeat",
		wire.GroupAck: "ack", wire.GroupClaim: "claim", wire.GroupRelease: "release"}
	var t0 int64
	for i := 0; ; i++ {
		e, err := cur.Next(bg)
		if err != nil {
			return
		}
		rec, err := wire.DecodeGroupRec(e.Data)
		if err != nil {
			continue
		}
		if t0 == 0 {
			t0 = e.Timestamp
		}
		switch rec.Kind {
		case wire.GroupAck:
			t.Logf("%4d +%6dus %-9s %-3s p%d count=%d pos=%d/%d.%d",
				i, (e.Timestamp-t0)/1000, kinds[rec.Kind], rec.Member, rec.Partition, rec.Count, rec.Shard, rec.Block, rec.Rec)
		case wire.GroupClaim:
			t.Logf("%4d +%6dus %-9s %-3s p%d cite=%d.%d",
				i, (e.Timestamp-t0)/1000, kinds[rec.Kind], rec.Member, rec.Partition, rec.Block, rec.Rec)
		case wire.GroupRelease:
			t.Logf("%4d +%6dus %-9s %-3s p%d", i, (e.Timestamp-t0)/1000, kinds[rec.Kind], rec.Member, rec.Partition)
		default:
			t.Logf("%4d +%6dus %-9s %-3s", i, (e.Timestamp-t0)/1000, kinds[rec.Kind], rec.Member)
		}
	}
}

// TestSoakKillAndRejoin is the acceptance soak: a 3-consumer group over a
// 4-shard store, full network stack (each consumer a wire client), one
// consumer killed mid-stream and a replacement joining, one graceful leave —
// every published entry consumed exactly once per group, proven both by the
// recorders and by the ack-trail audit.
func TestSoakKillAndRejoin(t *testing.T) {
	const (
		partitions = 4
		wave       = 80
		waves      = 3
	)
	st := newStore(t, partitions)
	srv := server.NewStore(st)
	dialer := func(ctx context.Context) (net.Conn, error) {
		cConn, sConn := net.Pipe()
		go srv.ServeConn(sConn)
		return cConn, nil
	}
	newClient := func() *client.Client {
		t.Helper()
		cl, err := client.DialContext(bg, "", client.Options{Dialer: dialer})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	t.Cleanup(func() { srv.Close(); st.Close() })

	prod := newClient()
	ids, err := EnsureTopic(bg, prod, "/events", partitions)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	recorded := make(map[string]int)
	record := func(data string) {
		mu.Lock()
		recorded[data]++
		mu.Unlock()
	}
	total := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(recorded)
	}

	opt := Options{TTL: 500 * time.Millisecond}
	var runners sync.WaitGroup
	start := func(member string) *Consumer {
		t.Helper()
		c, err := Join(bg, newClient(), "soak", member, "/events", partitions, opt)
		if err != nil {
			t.Fatal(err)
		}
		runners.Add(1)
		go func() {
			defer runners.Done()
			for {
				m, err := c.Recv(bg)
				if err != nil {
					return // closed or killed
				}
				// Ack-then-record: the recorder set is exactly the set of
				// entries this member acknowledged on behalf of the group.
				if err := c.Ack(bg, m); err == nil {
					record(string(m.Data))
				}
			}
		}()
		return c
	}

	c1 := start("c1")
	c2 := start("c2")
	c3 := start("c3")

	produce := func(w int) {
		for i := 0; i < wave; i++ {
			n := w*wave + i
			if _, err := prod.Append(bg, ids[n%partitions], []byte(fmt.Sprintf("e%03d", n)),
				client.AppendOptions{Forced: true}); err != nil {
				t.Fatal(err)
			}
		}
	}

	produce(0)
	waitFor(t, "wave 0 to be consumed", func() bool { return total() >= wave })

	c2.Kill() // crash: no release, no leave — the TTL takeover path
	c4 := start("c4")
	produce(1)
	waitFor(t, "wave 1 to be consumed", func() bool { return total() >= 2*wave })

	c1.Close() // graceful leave: immediate release handoff
	produce(2)
	waitFor(t, "wave 2 to be consumed", func() bool { return total() >= waves*wave })

	c3.Close()
	c4.Close()
	runners.Wait()

	mu.Lock()
	for data, n := range recorded {
		if n != 1 {
			t.Errorf("entry %q consumed %d times", data, n)
		}
	}
	if len(recorded) != waves*wave {
		t.Errorf("consumed %d distinct entries, want %d", len(recorded), waves*wave)
	}
	mu.Unlock()

	rep, err := Audit(bg, prod, "soak")
	if err != nil {
		dumpTrail(t, prod, "soak")
		t.Fatalf("audit: %v", err)
	}
	if rep.Acked() != waves*wave {
		t.Fatalf("audit counted %d acked entries, want %d", rep.Acked(), waves*wave)
	}
	if len(rep.Partitions) != partitions {
		t.Fatalf("audit saw %d partitions, want %d", len(rep.Partitions), partitions)
	}
}
