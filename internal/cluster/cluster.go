// Package cluster replicates a Clio store across nodes: one per-shard-set
// leader orders every mutation through the existing group-commit path and
// ships the resulting device writes — sealed blocks and NVRAM-staged tail
// frames — to followers over an extension of the sessioned wire protocol
// (internal/wire repl ops). A client ack leaves the leader only after a
// configurable quorum of replicas has durably staged the batch, so a leader
// crash loses no acknowledged entry: a promoted follower holds every device
// block, tail image and session duplicate-suppression record the ack
// depended on, and the client's ordinary reconnect/replay machinery carries
// its session across the failover unchanged (the cluster epoch survives
// promotion, so replays hit the replicated dedup window instead of
// re-executing).
//
// The design leans on the write-once discipline the paper builds on: a
// replica's device state is an append-only prefix, so "how far along is
// this follower" is a pair of integers per device and catch-up is always
// "newest checkpoint + suffix", never a diff. Divergence (a follower whose
// blocks are not a prefix of the leader's) can only arise from an
// un-replicated leader surviving a crash, is detected by comparing the last
// common block's checksum, and is resolved by resetting the device.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clio/internal/core"
	"clio/internal/obs"
	"clio/internal/server"
	"clio/internal/shard"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// DefaultAckTimeout bounds how long a mutation waits for quorum before the
// client is told the write is not (yet) replicated.
const DefaultAckTimeout = 5 * time.Second

// DefaultDialTimeout bounds one replication dial attempt.
const DefaultDialTimeout = 2 * time.Second

// DefaultStreamQueue is the default per-subscriber replication frame
// buffer (Config.StreamQueue).
const DefaultStreamQueue = 4096

// Config describes one cluster node.
type Config struct {
	// NodeID is this node's advertised address: what peers dial and what
	// followers hand to clients in StatusNotLeader redirects.
	NodeID string
	// Peers lists the other nodes' advertised addresses.
	Peers []string
	// Quorum is how many replicas (the leader included) must have durably
	// staged a mutation before the client is acked. 0 defaults to 2
	// (leader + 1 follower); 1 disables waiting. It must not exceed
	// 1+len(Peers).
	Quorum int
	// Devices holds the node's write-once devices, per shard then per
	// volume. Followers apply replicated writes to them directly; a leader
	// opens the store over them.
	Devices [][]wodev.Device
	// NVRAMs holds one NVRAM per shard; replication of forced tails rides
	// the same staging writes the single-node crash path uses.
	NVRAMs []core.NVRAM
	// Opts is the per-shard core option template (the NVRAM field is filled
	// in per shard).
	Opts core.Options
	// Create formats fresh single-volume shards when the node first becomes
	// leader, instead of opening existing state.
	Create bool
	// TermPath, when set, persists the highest term this node has seen to
	// that file (written atomically via rename); New reloads it. Without
	// it terms live only in memory, so a full-cluster restart forgets the
	// term history and a formerly-demoted node restarted as leader is
	// indistinguishable from the legitimate one.
	TermPath string
	// StreamQueue is each replication subscriber's frame buffer; a sender
	// that falls this far behind is cut loose and restarts with a suffix
	// catch-up. Size it against the group-commit rate to make that rare.
	// 0 uses DefaultStreamQueue.
	StreamQueue int
	// AckTimeout bounds the quorum wait per mutation; 0 uses
	// DefaultAckTimeout.
	AckTimeout time.Duration
	// DialTimeout bounds one replication dial; 0 uses DefaultDialTimeout.
	DialTimeout time.Duration
	// Dial, when set, replaces net.Dial for replication streams (tests
	// inject partitions here).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Reset, when set, supplies a blank replacement for a diverged device
	// so the node can re-sync it from block zero. Without it, divergence
	// leaves the device stuck and logged.
	Reset func(shard, dev int) (wodev.Device, error)
	// Logf, when set, receives node-level logs.
	Logf func(format string, args ...any)
	// Tracer, when set, is installed on the leader's embedded server so
	// request tracing (slow-trace capture) works in cluster mode exactly as
	// it does single-node. Followers serve no client requests and ignore it.
	Tracer *obs.Tracer
	// Tenants, when non-empty, is installed on the leader's embedded server:
	// clients must authenticate to a tenant and stay inside its namespace.
	// SetTenants replaces the table at runtime (config reload).
	Tenants []server.Tenant
}

// Node is one cluster member, serving either role: as leader it fronts a
// live store and streams every device mutation to its peers; as follower it
// applies those streams to its local devices and serves reads of sealed
// history, redirecting write-class clients to the leader.
type Node struct {
	cfg    Config
	stream *stream

	// roleMu serializes role transitions (start, promote, step-down, kill);
	// mu guards the snapshot fields and is never held across blocking work.
	roleMu sync.Mutex

	mu         sync.Mutex
	role       int
	term       uint64
	epoch      uint64
	leaderAddr string
	devs       [][]wodev.Device // mutable copy of cfg.Devices (Reset swaps entries)
	srv        *server.Server   // leader only
	store      *shard.Store     // leader only
	peers      []*peer          // leader only
	fol        *followerState   // follower only
	lns        []net.Listener
	conns      map[net.Conn]struct{}
	tenants    []server.Tenant // current tenant table; installed on promotion
	stopped    bool
	promoRec   shard.MergedRecovery
	promoRecOK bool

	stopCh chan struct{}

	commitMu  sync.Mutex
	committed uint64
	commitCh  chan struct{}

	wg sync.WaitGroup

	promotions     atomic.Int64
	demotions      atomic.Int64
	quorumTimeouts atomic.Int64
	quorumRefusals atomic.Int64
	framesEmitted  atomic.Int64

	// streamGen numbers accepted replication handshakes; applyMu serializes
	// frame application against it. Together they guarantee exactly one
	// stream lands frames at a time: each accepted folHello bumps the
	// generation (superseding every older connection, even the same
	// leader's — its in-flight frames would race the new session's catch-up)
	// and then takes applyMu once as a barrier, so an apply already past its
	// generation check finishes before the handshake snapshots extents.
	streamGen atomic.Uint64
	applyMu   sync.Mutex
}

// New validates cfg and returns an idle node; call Start and Serve.
func New(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("cluster: NodeID required")
	}
	if len(cfg.Devices) == 0 || len(cfg.Devices) != len(cfg.NVRAMs) {
		return nil, fmt.Errorf("cluster: need matching Devices and NVRAMs per shard (%d devices shards, %d nvrams)",
			len(cfg.Devices), len(cfg.NVRAMs))
	}
	for i, devs := range cfg.Devices {
		if len(devs) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no devices", i)
		}
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = 2
	}
	if cfg.Quorum < 1 || cfg.Quorum > 1+len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: quorum %d impossible with %d peers", cfg.Quorum, len(cfg.Peers))
	}
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = DefaultAckTimeout
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.StreamQueue == 0 {
		cfg.StreamQueue = DefaultStreamQueue
	}
	devs := make([][]wodev.Device, len(cfg.Devices))
	for i := range cfg.Devices {
		devs[i] = append([]wodev.Device(nil), cfg.Devices[i]...)
	}
	n := &Node{
		cfg:      cfg,
		stream:   newStream(cfg.StreamQueue),
		devs:     devs,
		role:     wire.RoleFollower,
		conns:    make(map[net.Conn]struct{}),
		tenants:  append([]server.Tenant(nil), cfg.Tenants...),
		stopCh:   make(chan struct{}),
		commitCh: make(chan struct{}),
	}
	if cfg.TermPath != "" {
		term, err := loadTerm(cfg.TermPath)
		if err != nil {
			return nil, fmt.Errorf("cluster: term file: %w", err)
		}
		n.term = term
	}
	return n, nil
}

// persistTerm records term in cfg.TermPath so a restart cannot regress the
// node's term arbitration; the write is atomic (temp file + rename) so a
// crash mid-write leaves the old term, never garbage. No-op without a
// path. Small, rare writes: safe to call with n.mu held.
func (n *Node) persistTerm(term uint64) error {
	if n.cfg.TermPath == "" {
		return nil
	}
	tmp := n.cfg.TermPath + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.FormatUint(term, 10)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, n.cfg.TermPath)
}

// loadTerm reads a persisted term; a missing file is term 0 (fresh node).
func loadTerm(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	term, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	return term, nil
}

// Start brings the node up in the given role. A leader opens (or, with
// cfg.Create, formats) the store and begins streaming to its peers, at one
// past the highest persisted term — starting a node as leader is an
// operator's explicit claim of authority over anything it has seen before;
// a follower waits for a leader's stream and for Promote.
func (n *Node) Start(leader bool) error {
	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	if leader {
		n.mu.Lock()
		term := n.term + 1
		n.mu.Unlock()
		return n.becomeLeader(term, 0, nil, n.cfg.Create)
	}
	n.mu.Lock()
	n.fol = newFollowerState(n)
	n.role = wire.RoleFollower
	n.mu.Unlock()
	return nil
}

// SetTenants replaces the node's tenant table (config reload). If the node
// is currently the leader the embedded server picks the table up
// immediately; either way future promotions install it.
func (n *Node) SetTenants(list []server.Tenant) {
	cp := append([]server.Tenant(nil), list...)
	n.mu.Lock()
	n.tenants = cp
	srv := n.srv
	n.mu.Unlock()
	if srv != nil {
		srv.SetTenants(cp)
	}
}

// becomeLeader opens the store over tapped devices and installs the
// replication hooks. roleMu must be held.
func (n *Node) becomeLeader(term, epoch uint64, sessions []server.SessionState, create bool) error {
	// Persist before anything else: a leader that crashes right after
	// minting its term must come back remembering it.
	if err := n.persistTerm(term); err != nil {
		return fmt.Errorf("cluster: persist term %d: %w", term, err)
	}
	n.mu.Lock()
	devs := n.devs
	n.mu.Unlock()
	svcs := make([]*core.Service, len(devs))
	fail := func(err error) error {
		for _, svc := range svcs {
			if svc != nil {
				svc.Crash()
			}
		}
		return err
	}
	for i, shardDevs := range devs {
		opt := n.cfg.Opts
		opt.NVRAM = &tapNVRAM{NVRAM: n.cfg.NVRAMs[i], n: n, shard: uint32(i)}
		taps := make([]wodev.Device, len(shardDevs))
		for j, d := range shardDevs {
			taps[j] = &tapDevice{Device: d, n: n, shard: uint32(i), dev: uint32(j)}
		}
		var svc *core.Service
		var err error
		if create {
			if len(taps) != 1 {
				return fail(fmt.Errorf("cluster: shard %d: create requires exactly one device, have %d", i, len(taps)))
			}
			svc, err = core.New(taps[0], opt)
		} else {
			svc, err = core.Open(taps, opt)
		}
		if err != nil {
			return fail(fmt.Errorf("cluster: shard %d: %w", i, err))
		}
		svcs[i] = svc
	}
	store, err := shard.New(svcs)
	if err != nil {
		return fail(err)
	}
	srv := server.NewStore(store)
	srv.Logf = n.cfg.Logf
	srv.Tracer = n.cfg.Tracer
	n.mu.Lock()
	tenants := n.tenants
	n.mu.Unlock()
	if len(tenants) > 0 {
		srv.SetTenants(tenants)
	}
	if epoch != 0 {
		// Keep the cluster epoch minted by the first leader: clients must
		// not see a promotion as a state-losing restart.
		srv.SetEpoch(epoch)
	}
	if len(sessions) > 0 {
		srv.InstallSessions(sessions)
	}
	srv.Gate = n.gate
	srv.PreGate = n.preGate
	srv.ExtOp = n.leaderExtOp
	rec := store.LastRecovery()

	n.mu.Lock()
	n.role = wire.RoleLeader
	n.term = term
	n.epoch = srv.Epoch()
	n.leaderAddr = n.cfg.NodeID
	n.srv = srv
	n.store = store
	n.fol = nil
	if !create {
		n.promoRec = rec
		n.promoRecOK = true
	}
	peers := make([]*peer, 0, len(n.cfg.Peers))
	for _, a := range n.cfg.Peers {
		peers = append(peers, newPeer(a))
	}
	n.peers = peers
	n.mu.Unlock()
	for _, p := range peers {
		n.wg.Add(1)
		go n.runSender(p)
	}
	return nil
}

// Promote turns a follower into the leader: it fences and drains the
// replication apply path, recovers a live store over the replicated devices
// and NVRAM tails (checkpoint-bounded, exactly the single-node restart
// path), installs the replicated session table under the preserved cluster
// epoch, bumps the term, and starts streaming to peers. Returns the new
// term.
func (n *Node) Promote() (uint64, error) { return n.promoteExcept(nil) }

// promoteExcept is Promote with one connection exempt from the fence's
// connection sweep: the follower handler that received OpPromote calls this
// with its own connection so it can still write the response.
func (n *Node) promoteExcept(keep net.Conn) (uint64, error) {
	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return 0, errors.New("cluster: node stopped")
	}
	if n.role == wire.RoleLeader {
		term := n.term
		n.mu.Unlock()
		return term, nil
	}
	fol := n.fol
	term := n.term + 1
	epoch := n.epoch
	n.mu.Unlock()
	if fol == nil {
		return 0, errors.New("cluster: follower state missing")
	}
	// Fence: no new apply handlers, sever the stale leader's streams, wait
	// out in-flight applies, then the devices are exclusively ours.
	fol.mu.Lock()
	fol.frozen.Store(true)
	fol.mu.Unlock()
	n.closeConnsExcept(keep)
	fol.wg.Wait()
	sessions := fol.exportSessions()
	if err := n.becomeLeader(term, epoch, sessions, false); err != nil {
		fol.frozen.Store(false) // stay follower; the leader's sender will reconnect
		return 0, err
	}
	n.promotions.Add(1)
	n.logf("cluster: %s promoted to leader, term %d", n.cfg.NodeID, term)
	return term, nil
}

// stepDown demotes a leader that has learned of a higher term — or, losing
// the same-term arbitration in leaderExtOp, an equal one. Safe to call from
// any goroutine except a server request handler (it closes the server,
// which waits for handlers to drain — callers inside one must use `go`).
func (n *Node) stepDown(newTerm uint64, newLeader string) {
	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	n.mu.Lock()
	if n.stopped || n.role != wire.RoleLeader || newTerm < n.term ||
		(newTerm == n.term && newLeader == "") {
		n.mu.Unlock()
		return
	}
	srv, store, peers := n.srv, n.store, n.peers
	n.srv, n.store, n.peers = nil, nil, nil
	n.role = wire.RoleFollower
	n.term = newTerm
	n.leaderAddr = newLeader
	n.fol = newFollowerState(n)
	if err := n.persistTerm(newTerm); err != nil {
		// Demoting is the safe direction even unpersisted; log and continue.
		n.logf("cluster: persist term %d on step-down: %v", newTerm, err)
	}
	n.mu.Unlock()
	n.wakeCommit() // quorum waiters re-check the role and fail fast
	for _, p := range peers {
		p.stop()
	}
	srv.Close()
	// Crash, not Close: a graceful close would seal the staged tail, and a
	// demoted node writing blocks the new leader did not order is exactly
	// the divergence replication exists to prevent.
	store.Crash()
	n.demotions.Add(1)
	n.logf("cluster: %s stepped down, new term %d (leader %s)", n.cfg.NodeID, newTerm, newLeader)
}

// Kill tears the node down abruptly — no checkpoint, no tail seal — leaving
// its devices exactly as a crash would. Chaos tests use it as the kill
// switch; it is also the regular shutdown path, because a replica must
// never write outside the leader's ordering.
func (n *Node) Kill() {
	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	lns := n.lns
	n.lns = nil
	srv, store, peers := n.srv, n.store, n.peers
	n.srv, n.store, n.peers = nil, nil, nil
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[net.Conn]struct{})
	n.mu.Unlock()
	n.wakeCommit()
	for _, ln := range lns {
		ln.Close()
	}
	for _, p := range peers {
		p.stop()
	}
	for _, c := range conns {
		c.Close()
	}
	if srv != nil {
		srv.Close()
	}
	if store != nil {
		store.Crash()
	}
	n.wg.Wait()
}

// Close is Kill: see there for why a replica never shuts down gracefully.
func (n *Node) Close() { n.Kill() }

// Serve accepts connections on ln until the node is killed, routing each by
// the node's role at accept time: a leader's connections speak the full
// client protocol; a follower's get the replication/redirect handler.
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		ln.Close()
		return errors.New("cluster: node stopped")
	}
	n.lns = append(n.lns, ln)
	n.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if n.isStopped() {
				return nil
			}
			return err
		}
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			conn.Close()
			return nil
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.serveConn(conn)
	}
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
	}()
	n.mu.Lock()
	role, srv := n.role, n.srv
	n.mu.Unlock()
	if role == wire.RoleLeader && srv != nil {
		srv.ServeConn(conn)
		return
	}
	n.serveFollowerConn(conn)
}

// closeConnsExcept severs every tracked connection but keep (they re-route
// by the node's new role when the other side reconnects).
func (n *Node) closeConnsExcept(keep net.Conn) {
	n.mu.Lock()
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		if c != keep {
			conns = append(conns, c)
		}
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// gate holds every successful mutation's response until a quorum of
// replicas has durably staged everything the response depends on. The
// session dedup record rides the stream as a ReplAck frame; its position is
// by construction after every device frame the mutation emitted, so "ack
// position committed" implies the full batch is on a quorum.
func (n *Node) gate(op byte, session, seq uint64, status byte, resp []byte) (byte, []byte, bool) {
	if status == server.StatusErr || n.cfg.Quorum <= 1 {
		return status, resp, true
	}
	pos := n.emitFrame(wire.OpReplAck,
		(&wire.ReplAck{Session: session, Seq: seq, Status: status, Resp: resp}).Encode(nil))
	if err := n.waitCommitted(pos); err != nil {
		n.quorumTimeouts.Add(1)
		// record=false: the client's replay must re-attempt the quorum wait,
		// not be fed this failure from the dedup window.
		return server.StatusErr, server.PutString(nil, err.Error()), false
	}
	return status, resp, true
}

// preGate refuses mutations before they execute while the live replica
// count cannot reach quorum. Refusing up front — rather than executing and
// failing the quorum wait — keeps a minority-partitioned leader from
// growing its write-once devices past what the majority has, which is what
// lets a healed node catch up by suffix instead of resetting.
func (n *Node) preGate(op byte) (byte, []byte, bool) {
	q := n.cfg.Quorum
	if q <= 1 {
		return 0, nil, false
	}
	live := 1
	n.mu.Lock()
	peers := n.peers
	n.mu.Unlock()
	for _, p := range peers {
		if p.alive.Load() {
			live++
		}
	}
	if live >= q {
		return 0, nil, false
	}
	n.quorumRefusals.Add(1)
	return server.StatusUnavailable, server.PutString(nil,
		fmt.Sprintf("cluster: only %d of %d replicas required for quorum are reachable; refusing writes", live, q)), true
}

// leaderExtOp serves the replication opcodes a leader can answer on a
// client connection: status, promotion (a no-op returning the term), and a
// rival leader's hello, which either reveals our own term is stale (step
// down, asynchronously — this runs inside a request handler) or tells the
// caller theirs is.
func (n *Node) leaderExtOp(op byte, payload []byte) (byte, []byte, bool) {
	switch op {
	case wire.OpReplStatus:
		return server.StatusOK, n.statusPayload(), true
	case wire.OpPromote:
		n.mu.Lock()
		term := n.term
		n.mu.Unlock()
		return server.StatusOK, wire.PutUint64(nil, term), true
	case wire.OpReplHello:
		h, err := wire.DecodeReplHello(payload)
		if err != nil {
			return server.StatusErr, server.PutString(nil, err.Error()), true
		}
		n.mu.Lock()
		term := n.term
		n.mu.Unlock()
		resp := &wire.ReplHelloResp{Accept: false, Term: term}
		switch {
		case h.Term > term:
			resp.Term = h.Term
			resp.Reason = "stepping down to follower; retry"
			go n.stepDown(h.Term, h.LeaderAddr)
		case h.Term == term && h.LeaderAddr != n.cfg.NodeID && h.LeaderAddr > n.cfg.NodeID:
			// Same-term rival (two concurrent promotions, or an operator
			// double-start). Neither side outranks the other by term, so
			// break the tie deterministically: the greater advertised
			// address keeps leadership. Both leaders dial each other, each
			// evaluates the same comparison, and exactly one demotes.
			resp.Reason = fmt.Sprintf("same-term rival %s wins arbitration; stepping down", h.LeaderAddr)
			go n.stepDown(h.Term, h.LeaderAddr)
		default:
			resp.Reason = fmt.Sprintf("node is leader at term %d", term)
		}
		return server.StatusOK, resp.Encode(nil), true
	}
	return 0, nil, false
}

// waitCommitted blocks until the quorum commit point reaches pos, the
// configured timeout passes, or the node stops being leader.
func (n *Node) waitCommitted(pos uint64) error {
	timer := time.NewTimer(n.cfg.AckTimeout)
	defer timer.Stop()
	for {
		n.commitMu.Lock()
		committed := n.committed
		ch := n.commitCh
		n.commitMu.Unlock()
		if committed >= pos {
			return nil
		}
		if !n.isLeader() {
			return errors.New("cluster: stepped down before quorum")
		}
		select {
		case <-ch:
		case <-n.stopCh:
			return errors.New("cluster: node stopping before quorum")
		case <-timer.C:
			return fmt.Errorf("cluster: quorum not reached within %v", n.cfg.AckTimeout)
		}
	}
}

// noteAck recomputes the commit point: with quorum q, the (q-1)-th largest
// per-peer cumulative ack (the leader itself is the q-th copy).
func (n *Node) noteAck() {
	need := n.cfg.Quorum - 1
	if need <= 0 {
		return
	}
	n.mu.Lock()
	peers := n.peers
	n.mu.Unlock()
	if len(peers) < need {
		return
	}
	acks := make([]uint64, len(peers))
	for i, p := range peers {
		acks[i] = p.acked.Load()
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	n.advanceCommitted(acks[need-1])
}

func (n *Node) advanceCommitted(c uint64) {
	n.commitMu.Lock()
	if c > n.committed {
		n.committed = c
		close(n.commitCh)
		n.commitCh = make(chan struct{})
	}
	n.commitMu.Unlock()
}

// wakeCommit broadcasts to quorum waiters without moving the commit point,
// so they re-check role and stop state.
func (n *Node) wakeCommit() {
	n.commitMu.Lock()
	close(n.commitCh)
	n.commitCh = make(chan struct{})
	n.commitMu.Unlock()
}

func (n *Node) isLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == wire.RoleLeader
}

func (n *Node) isStopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

func (n *Node) device(shard, dev uint32) (wodev.Device, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if int(shard) >= len(n.devs) || int(dev) >= len(n.devs[shard]) {
		return nil, fmt.Errorf("cluster: no device (shard %d, dev %d)", shard, dev)
	}
	return n.devs[shard][dev], nil
}

// PromotionRecovery reports the recovery that backed the node's last
// promotion (or non-create leader start): the proof that failover cost is
// bounded by checkpoint tail length, not volume size.
func (n *Node) PromotionRecovery() (shard.MergedRecovery, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promoRec, n.promoRecOK
}

// Term returns the node's current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// Applied returns the highest replication stream position this node has
// durably applied (0 on a leader — it is the stream's source).
func (n *Node) Applied() uint64 {
	n.mu.Lock()
	fol := n.fol
	n.mu.Unlock()
	if fol == nil {
		return 0
	}
	return fol.applied.Load()
}

// Store returns the live store when the node is leader (nil otherwise);
// tests use it to checkpoint and inspect.
func (n *Node) Store() *shard.Store {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.store
}

func (n *Node) dialPeer(ctx context.Context, addr string) (net.Conn, error) {
	if n.cfg.Dial != nil {
		return n.cfg.Dial(ctx, addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// blockCRC is the divergence probe: the CRC-32C of a device's block, with
// unreadable (invalidated) blocks mapping to 0 on both sides by convention.
func blockCRC(dev wodev.Device, idx int) uint32 {
	buf := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(idx, buf); err != nil {
		return 0
	}
	return wire.Checksum(buf)
}

// respError renders a status payload's length-prefixed message.
func respError(payload []byte) string {
	if s, err := server.NewDecoder(payload).String(); err == nil {
		return s
	}
	return fmt.Sprintf("%d-byte response", len(payload))
}
