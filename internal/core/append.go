package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/catalog"
	"clio/internal/entrymap"
	"clio/internal/obs"
	"clio/internal/volume"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// AppendOptions controls one append.
type AppendOptions struct {
	// Timestamped selects the full 14-byte header carrying a 64-bit
	// timestamp, which uniquely identifies the entry and lets it be located
	// by time later (§2.1). The minimal 4-byte header is used otherwise.
	Timestamped bool
	// Forced makes the write synchronous: when Append returns, the entry is
	// durable — staged to the NVRAM tail, or, without one, sealed to the
	// device in a padded block (§2.3.1). Forced entries always carry a
	// timestamp, which the client obtains as a consequence of the write.
	Forced bool
	// Trace, when set, receives spans for the append's interesting steps:
	// group-commit wait and commit, device write, NVRAM store. A forced
	// append committed as a rider gets the leader's commit spans grafted on,
	// since that shared work is where its latency went. Nil records nothing.
	Trace *obs.Trace
}

// Append writes one entry to the given log file and returns the entry's
// server timestamp (the time the logging service received it).
func (s *Service) Append(id uint16, data []byte, opts AppendOptions) (int64, error) {
	return s.appendClient([]uint16{id}, data, opts)
}

// AppendMulti writes one entry belonging to several log files at once —
// §2.1: "the logging service allows a log entry to be a member of more than
// one log file". The entry appears in every listed log file (and their
// ancestors); ids[0] is the entry's primary id. Multi-member entries always
// carry the full timestamped header.
func (s *Service) AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("clio: AppendMulti needs at least one log file")
	}
	if len(ids)-1 > blockfmt.MaxExtraIDs {
		return 0, fmt.Errorf("clio: %d member log files exceeds maximum %d",
			len(ids), blockfmt.MaxExtraIDs+1)
	}
	return s.appendClient(ids, data, opts)
}

func (s *Service) appendClient(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	m := s.met()
	var start time.Time
	var v0 time.Duration
	if m != nil {
		start = time.Now()
		v0 = s.vElapsed(m)
	}
	ts, err := s.appendClientInner(ids, data, opts)
	if m != nil {
		m.appendLat.ObserveSince(start)
		// The vclock histogram records the virtual time the cost model
		// charged this operation — reads only, never a charge, so the
		// modeled workload is untouched. Under concurrency another
		// operation's charges can land inside the window; the experiments
		// that depend on exact virtual times run single-client.
		m.appendV.Observe(s.vElapsed(m) - v0)
	}
	return ts, err
}

func (s *Service) appendClientInner(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	if opts.Forced {
		return s.appendForcedBatched(ids, data, opts)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = opts.Trace
	defer func() { s.tr = nil }()
	s.opDegradedReset()
	ts, err := s.appendOneLocked(ids, data, opts)
	if err != nil {
		return 0, err
	}
	// Keep the staged tail readable by cursors.
	if err := s.stageTailLocked(false); err != nil {
		return 0, err
	}
	if err := s.maybeCheckpointLocked(); err != nil {
		return 0, err
	}
	// A non-nil *DegradedError still means the entry is durable at ts; the
	// service relocated past damaged blocks to complete it (§2.3.2).
	return ts, s.opDegradedErr(ts)
}

// appendOneLocked validates and appends one client entry under s.mu,
// performing every per-entry cost-model charge and stat update. How the
// entry becomes durable (staged vs forced) is the caller's business.
func (s *Service) appendOneLocked(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	if s.closedFlag.Load() {
		return 0, ErrClosed
	}
	if len(data) > s.opt.MaxEntrySize {
		return 0, fmt.Errorf("%w: %d > %d bytes", ErrEntryTooLarge, len(data), s.opt.MaxEntrySize)
	}
	seen := make(map[uint16]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return 0, fmt.Errorf("clio: duplicate member id %d", id)
		}
		seen[id] = true
		d, err := s.cat.Get(id)
		if err != nil {
			return 0, err
		}
		if d.System {
			return 0, fmt.Errorf("%w: %q", ErrSystemLog, d.Name)
		}
		if d.Retired {
			return 0, fmt.Errorf("clio: %w: %q", catalog.ErrRetired, d.Name)
		}
	}
	form := uint8(blockfmt.FormMinimal)
	var attr uint8
	if opts.Timestamped || opts.Forced {
		form = blockfmt.FormFull
	}
	var extras []uint16
	if len(ids) > 1 {
		form = blockfmt.FormMulti
		extras = ids[1:]
	}
	if opts.Forced {
		attr |= blockfmt.AttrForced
	}
	// Take the chain guard before the timestamp: a parked foreign chain would
	// otherwise let a later-stamped append overtake this one into the log,
	// breaking the block-order monotonicity of first timestamps.
	s.awaitChainLocked()
	ts := s.nextTS(form != blockfmt.FormMinimal)
	clk := s.opt.Clock
	clk.ChargeIPC(s.opt.RemoteIPC) // the synchronous client write IPC (§3.2)
	clk.ChargeWriteFixed()
	clk.ChargeCopy(len(data))
	if _, _, err := s.appendEntryLocked(ids[0], extras, data, form, attr, ts, false); err != nil {
		return 0, err
	}
	clk.ChargeEntrymapMaint()
	s.stats.EntriesAppended++
	s.stats.ClientBytes += int64(len(data))
	s.stats.HeaderBytes += int64(blockfmt.HeaderLen(form) + 2*len(extras) + 2)
	return ts, nil
}

// forceReq is one forced append parked on a (possibly shared) group commit.
type forceReq struct {
	ids  []uint16
	data []byte
	opts AppendOptions
	ts   int64
	err  error
	done chan struct{}
}

// Adaptive commit-window bounds. The window never holds a batch longer than
// one observed commit (so waiting can only help throughput, never double
// latency), and windowCap keeps a slow-device estimate from stalling forces
// for longer than any reasonable force latency target.
const (
	windowFloor = 50 * time.Microsecond
	windowCap   = 2 * time.Millisecond
)

// ewmaUpdate folds one sample into an exponentially weighted moving average
// with decay 1/8, lock-free. A zero average seeds from the first sample.
func ewmaUpdate(a *atomic.Int64, sample int64) {
	for {
		old := a.Load()
		next := sample
		if old != 0 {
			next = old + (sample-old)/8
		}
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// noteArrival tracks the inter-arrival time of forced appends; the gather
// window divides observed commit latency by this to size its batches.
func (s *Service) noteArrival() {
	now := time.Now().UnixNano()
	prev := s.lastArrival.Swap(now)
	if prev != 0 {
		ewmaUpdate(&s.arrivalEWMA, now-prev)
	}
}

// drainForceQ atomically takes the queued force requests.
func (s *Service) drainForceQ() []*forceReq {
	s.forceQMu.Lock()
	batch := s.forceQ
	s.forceQ = nil
	s.forceQMu.Unlock()
	return batch
}

// gatherForce optionally holds the leader's batch open to collect more
// riders before committing. With CommitWindow > 0 the window is fixed; at 0
// (the default) it adapts: the target batch size is the number of arrivals
// expected during one commit (commit latency / inter-arrival time), and the
// leader waits at most one commit's worth of time to reach it. A lone writer
// (arrivals slower than half the commit latency) commits immediately, so the
// idle-path latency is untouched; a storm coalesces into near-ideal batches
// instead of the convoy the bare leader/rider queue forms.
func (s *Service) gatherForce(batch []*forceReq) []*forceReq {
	cw := s.opt.CommitWindow
	if cw < 0 || len(batch) == 0 {
		return batch
	}
	var window time.Duration
	target := int(^uint(0) >> 1)
	if cw > 0 {
		window = cw
	} else {
		commit := s.commitEWMA.Load()
		inter := s.arrivalEWMA.Load()
		if commit < int64(windowFloor) || inter == 0 || inter*2 > commit {
			return batch
		}
		target = int(commit / inter)
		if target <= len(batch) {
			return batch
		}
		window = time.Duration(commit)
		if window > windowCap {
			window = windowCap
		}
		s.adaptiveWaits.Add(1)
	}
	s.windowNanos.Store(int64(window))
	timer := time.NewTimer(window)
	defer timer.Stop()
	for len(batch) < target {
		select {
		case <-s.forceSig:
			batch = append(batch, s.drainForceQ()...)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// noteBatch records one committed batch's size in the power-of-two histogram
// (buckets 1, 2, 4, ..., ≥256) and the exported metrics histogram.
func (s *Service) noteBatch(n int) {
	b := 0
	for v := n; v > 1 && b < len(s.batchHist)-1; v >>= 1 {
		b++
	}
	s.batchHist[b].Add(1)
	if m := s.met(); m != nil {
		m.batchEntries.Observe(time.Duration(n))
	}
}

// appendForcedBatched is the group-commit front door for forced appends
// (§2.3.1's per-force seal/NVRAM cost amortized across concurrent clients):
// the request enqueues, then contends for leaderMu. Whoever wins drains the
// whole queue, appends every queued entry and performs ONE forceLocked for
// the batch; requests that arrive while a leader is inside its commit ride
// with the next leader. A request that finds its done channel already closed
// was committed as a rider and returns immediately. With a single client the
// batch always has one request and the behavior (timestamps, stats, device
// traffic) is exactly that of an individual forced append.
func (s *Service) appendForcedBatched(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	if s.opt.CommitWindow >= 0 {
		s.noteArrival()
	}
	req := &forceReq{ids: ids, data: data, opts: opts, done: make(chan struct{})}
	s.forceQMu.Lock()
	s.forceQ = append(s.forceQ, req)
	s.forceQMu.Unlock()
	// Nudge a leader holding its commit window open; non-blocking because the
	// single-slot channel only needs to be "signaled", not counted.
	select {
	case s.forceSig <- struct{}{}:
	default:
	}
	s.leaderMu.Lock()
	func() {
		defer s.leaderMu.Unlock()
		select {
		case <-req.done:
			// Already served as a rider in the previous leader's batch.
		default:
			s.runForceBatch()
		}
	}()
	waitDone := opts.Trace.Span("core.group_commit_wait")
	<-req.done
	waitDone()
	return req.ts, req.err
}

// runForceBatch drains the force queue and commits it as one batch; the
// caller holds leaderMu. Every append and the single force run under s.mu,
// so batched work serializes with unforced appends exactly like individual
// writes would. Degraded-relocation notices (§2.3.2) accumulate across the
// batch and are delivered to each request with its own timestamp.
func (s *Service) runForceBatch() {
	batch := s.drainForceQ()
	if len(batch) == 0 {
		return
	}
	batch = s.gatherForce(batch)
	if len(batch) > 1 {
		s.groupCommits.Add(1)
		s.batchedForces.Add(int64(len(batch)))
	}
	s.noteBatch(len(batch))
	// When any request in the batch is traced, the leader records the shared
	// commit once on a batch trace and grafts its spans onto every traced
	// rider afterwards — the commit IS where a rider's latency went.
	var batchTr *obs.Trace
	var commitStart time.Time
	for _, req := range batch {
		if req.opts.Trace != nil {
			commitStart = time.Now()
			batchTr = &obs.Trace{Op: "core.commit_batch", Start: commitStart}
			break
		}
	}
	completed := false
	defer func() {
		if completed {
			return
		}
		// A crash-injection panic unwound the commit partway: the in-memory
		// state is no longer trustworthy. Mark the service closed, release
		// every parked request, and re-raise for the leader's caller.
		r := recover()
		s.closedFlag.Store(true)
		for _, req := range batch {
			select {
			case <-req.done:
			default:
				req.ts, req.err = 0, ErrClosed
				close(req.done)
			}
		}
		if r != nil {
			panic(r)
		}
	}()
	cstart := time.Now()
	s.mu.Lock()
	func() {
		defer s.mu.Unlock()
		s.tr = batchTr
		defer func() { s.tr = nil }()
		s.opDegradedReset()
		committed := false
		for _, req := range batch {
			req.ts, req.err = s.appendOneLocked(req.ids, req.data, req.opts)
			if req.err == nil {
				s.stats.ForcedWrites++
				committed = true
			}
		}
		var ferr error
		if committed {
			m := s.met()
			var fstart time.Time
			if m != nil {
				fstart = time.Now()
			}
			ferr = s.forceLocked()
			if m != nil {
				m.forceLat.ObserveSince(fstart)
			}
		}
		for _, req := range batch {
			if req.err != nil {
				continue
			}
			if ferr != nil {
				req.ts, req.err = 0, ferr
			} else {
				req.err = s.opDegradedErr(req.ts)
			}
		}
		if committed && ferr == nil {
			// The batch is durable at this point, so a failing checkpoint
			// emission must not be reported as a failed append; the device
			// fault resurfaces on the next operation.
			_ = s.maybeCheckpointLocked()
		}
	}()
	if s.opt.CommitWindow >= 0 {
		// The adaptive window sizes batches as commit latency over
		// inter-arrival time; this measured section is the "commit latency".
		ewmaUpdate(&s.commitEWMA, time.Since(cstart).Nanoseconds())
	}
	if batchTr != nil {
		commitDur := time.Since(commitStart)
		spans := batchTr.Spans()
		for _, req := range batch {
			rt := req.opts.Trace
			if rt == nil {
				continue
			}
			// Span offsets are relative to each trace's own start; shift the
			// batch-relative offsets into the rider's frame. The graft happens
			// before close(req.done), so the channel's happens-before makes it
			// visible to the woken rider without extra synchronization.
			shift := commitStart.Sub(rt.Start)
			rt.Add(obs.Span{Name: "core.group_commit", Start: shift, Duration: commitDur})
			for _, sp := range spans {
				rt.Add(obs.Span{Name: sp.Name, Start: sp.Start + shift, Duration: sp.Duration})
			}
		}
	}
	for _, req := range batch {
		close(req.done)
	}
	completed = true
}

// SealTail forces the staged tail block onto the write-once medium itself,
// padding the remainder — used before unmounting a volume or taking a
// media-level backup, when the NVRAM staging must be emptied onto the
// removable medium.
func (s *Service) SealTail() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return ErrClosed
	}
	// A slide during the pipeline's slot wait renumbers the tail, which makes
	// one enqueue attempt a no-op; loop until the tail is actually gone.
	for s.tailGlobal >= 0 {
		s.awaitChainLocked()
		if s.closedFlag.Load() {
			return ErrClosed
		}
		if s.tailGlobal < 0 {
			break
		}
		if err := s.sealTailLocked(true); err != nil {
			return err
		}
	}
	// Sealing "onto the medium itself" means the device, not the staging
	// NVRAM: wait out any pipelined writes before returning.
	if err := s.drainPipeLocked(); err != nil {
		return err
	}
	return s.maybeCheckpointLocked()
}

// Force makes everything appended so far durable (a group commit). A force
// that finds the staged tail already durable — or nothing staged at all —
// performs no device or NVRAM work and is not counted as a forced write.
func (s *Service) Force() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return ErrClosed
	}
	if s.tailGlobal < 0 || !s.tailDirty {
		return nil
	}
	s.stats.ForcedWrites++
	s.opDegradedReset()
	m := s.met()
	var fstart time.Time
	if m != nil {
		fstart = time.Now()
	}
	err := s.forceLocked()
	if m != nil {
		m.forceLat.ObserveSince(fstart)
	}
	if err != nil {
		return err
	}
	if err := s.maybeCheckpointLocked(); err != nil {
		return err
	}
	return s.opDegradedErr(s.lastTS)
}

// awaitChainLocked blocks until no other appender is mid-chain. The
// pipeline's wait points (slot wait, completion barrier) release s.mu, so a
// fragmented append can be parked with its chain incomplete while another
// operation acquires the lock; interleaving records then would split the
// chain across non-consecutive blocks, which readers cannot reassemble.
// Without a staging NVRAM nothing ever parks mid-chain, so this never waits.
func (s *Service) awaitChainLocked() {
	for s.midChain {
		s.sealCond.Wait()
	}
}

// endChainLocked marks the in-progress chain complete and wakes appenders
// parked on it.
func (s *Service) endChainLocked() {
	s.midChain = false
	s.sealCond.Broadcast()
}

// appendEntryLocked writes one entry, fragmenting it over blocks as needed
// and flushing pending entrymap entries at chain completion. extras lists
// additional member log files (FormMulti, first fragment only). It returns
// the global block and record slot where the entry's first fragment landed.
// footNow stamps any block this entry opens with a fresh footer timestamp
// instead of the entry's own ts — the compactor appends copies that keep
// their original (old) record timestamps, and the footer monotonicity
// recovery and scrubbing rely on must not regress.
func (s *Service) appendEntryLocked(id uint16, extras []uint16, data []byte, form, attr uint8, ts int64, footNow bool) (int, int, error) {
	remaining := data
	first := true
	block, recIdx := -1, -1
	s.awaitChainLocked()
	s.midChain = true
	for {
		if err := s.ensureTailLocked(); err != nil {
			s.endChainLocked()
			return 0, 0, err
		}
		f, a := form, attr
		continued := !first
		recExtras := extras
		if continued {
			f, a, recExtras = blockfmt.FormMinimal, 0, nil
		}
		headerLen := blockfmt.HeaderLen(f) + 2*len(recExtras)
		avail := s.builder.Free() - headerLen
		canPlace := avail >= 1
		if len(remaining) == 0 {
			canPlace = avail >= 0
		}
		if !canPlace {
			// No room for even a header (or one data byte): seal and retry
			// in a fresh block.
			if err := s.sealTailLocked(false); err != nil {
				s.endChainLocked()
				return 0, 0, err
			}
			continue
		}
		take := len(remaining)
		continues := false
		if take > avail {
			take = avail
			continues = true
		}
		// The block footer's first-entry timestamp is mandatory even for
		// minimal headers (§2.1); a block opened by a continuation fragment
		// inherits the entry's timestamp.
		if _, ok := s.builder.FirstTimestamp(); !ok {
			stamp := ts
			if footNow {
				stamp = s.nextTS(false)
			}
			s.builder.SetFirstTimestamp(stamp)
		}
		rec := blockfmt.Record{
			LogID:     id,
			Form:      f,
			AttrFlags: a,
			Timestamp: ts,
			Continued: continued,
			Continues: continues,
			Data:      remaining[:take],
			ExtraIDs:  recExtras,
		}
		if err := s.builder.Append(rec); err != nil {
			s.endChainLocked()
			return 0, 0, fmt.Errorf("clio: append record: %w", err)
		}
		if first {
			block, recIdx = s.tailGlobal, s.builder.Count()-1
		}
		s.tailDirty = true
		s.tailIDs[id] = true
		for _, ex := range recExtras {
			s.tailIDs[ex] = true
		}
		remaining = remaining[take:]
		first = false
		if continues {
			// Fragment filled the block exactly; seal it and continue the
			// chain as the first same-id record of the next block.
			if err := s.sealTailLocked(false); err != nil {
				s.endChainLocked()
				return 0, 0, err
			}
			continue
		}
		break
	}
	s.endChainLocked()
	if err := s.flushDueLocked(); err != nil {
		return 0, 0, err
	}
	return block, recIdx, s.flushSnapshotLocked()
}

// ensureTailLocked makes sure a tail block is staged, emitting the entrymap
// entries due at any boundary crossed and publishing the new (empty) tail to
// the reader snapshot.
func (s *Service) ensureTailLocked() error {
	// Pipeline barrier: a due entrymap boundary must not be emitted while a
	// block below it is still in flight (its NoteBlock has not happened),
	// so drain the pipe first. Slides during the drain can move the
	// frontier, hence the re-check; completions during the drain emit their
	// own crossed boundaries, so this usually exits after one pass.
	n := s.opt.Degree
	for s.tailGlobal < 0 && len(s.pipe) > 0 && (s.lastBound/n+1)*n <= s.endLocked() {
		if err := s.drainPipeLocked(); err != nil {
			return err
		}
	}
	if s.tailGlobal >= 0 {
		return nil
	}
	g := s.endLocked()
	if s.builder == nil {
		b, err := blockfmt.NewBuilder(s.opt.BlockSize, uint32(g))
		if err != nil {
			return err
		}
		s.builder = b
	} else {
		s.builder.Reset(uint32(g))
	}
	s.tailGlobal = g
	s.tailIDs = make(map[uint16]bool)
	s.emitDueLocked(g)
	s.publishTail(nil)
	return nil
}

// emitDueLocked runs the accumulator for every boundary in (lastBound, g]
// and queues the resulting entrymap entries for writing. The accumulator is
// shared with the lock-free locator, hence idxMu.
func (s *Service) emitDueLocked(g int) {
	n := s.opt.Degree
	for b := (s.lastBound/n + 1) * n; b <= g; b += n {
		s.idxMu.Lock()
		due := s.acc.EntriesDue(b)
		s.idxMu.Unlock()
		s.pendingDue = append(s.pendingDue, due...)
		s.lastBound = b
	}
}

// flushDueLocked writes queued entrymap entries to the entrymap log file.
// It must not run while a fragmented entry is incomplete; the entries land
// at (or displaced just after) their boundary block, and the blocks holding
// them are flagged for the displaced-entry scan (§2.3.2).
func (s *Service) flushDueLocked() error {
	// Bad-block records queued by background pipeline slides ride out with
	// the next foreground append (appending them from the sealer would
	// recurse into the tail machinery it runs underneath).
	for len(s.pendingBad) > 0 && !s.midChain {
		bad := s.pendingBad[0]
		s.pendingBad = s.pendingBad[1:]
		payload := wire.PutUvarint(nil, uint64(bad))
		if err := s.appendSystemLocked(entrymap.BadBlockID, payload,
			blockfmt.FormMinimal, 0, 0, false); err != nil {
			return err
		}
	}
	for len(s.pendingDue) > 0 && !s.midChain {
		e := s.pendingDue[0]
		s.pendingDue = s.pendingDue[1:]
		payload := e.Encode(nil)
		s.stats.EntrymapBytes += int64(len(payload) + 4)
		if err := s.appendSystemLocked(entrymap.EntrymapID, payload, blockfmt.FormMinimal, 0, 0, true); err != nil {
			return err
		}
	}
	return nil
}

// appendSystemLocked appends a service-internal record (entrymap, catalog,
// bad-block). boundary=true marks the receiving block(s) with the
// entrymap-boundary flag. System records fragment like client entries, so
// the same chain exclusion applies while one is being written.
func (s *Service) appendSystemLocked(id uint16, data []byte, form, attr uint8, ts int64, boundary bool) error {
	s.awaitChainLocked()
	s.midChain = true
	defer s.endChainLocked()
	return s.appendSystemChainLocked(id, data, form, attr, ts, boundary)
}

// appendSystemChainLocked is appendSystemLocked without the chain guard, for
// the one caller already inside a chain: the legacy seal path's bad-block
// records (non-staging mode, where nothing ever parks mid-chain).
func (s *Service) appendSystemChainLocked(id uint16, data []byte, form, attr uint8, ts int64, boundary bool) error {
	remaining := data
	first := true
	for {
		if err := s.ensureTailLocked(); err != nil {
			return err
		}
		f, a := form, attr
		continued := !first
		if continued {
			f, a = blockfmt.FormMinimal, 0
		}
		avail := s.builder.FreeData(f)
		canPlace := avail >= 1
		if len(remaining) == 0 {
			canPlace = s.builder.Free() >= blockfmt.HeaderLen(f)
		}
		if !canPlace {
			if err := s.sealTailLocked(false); err != nil {
				return err
			}
			continue
		}
		take := len(remaining)
		continues := false
		if take > avail {
			take = avail
			continues = true
		}
		if _, ok := s.builder.FirstTimestamp(); !ok {
			stamp := ts
			if stamp == 0 {
				stamp = s.lastTS
			}
			s.builder.SetFirstTimestamp(stamp)
		}
		rec := blockfmt.Record{
			LogID:     id,
			Form:      f,
			AttrFlags: a,
			Timestamp: ts,
			Continued: continued,
			Continues: continues,
			Data:      remaining[:take],
		}
		if err := s.builder.Append(rec); err != nil {
			return fmt.Errorf("clio: append system record: %w", err)
		}
		if boundary {
			s.builder.SetFlags(blockfmt.FlagEntrymapBoundary)
		}
		s.tailDirty = true
		s.tailIDs[id] = true
		remaining = remaining[take:]
		first = false
		if continues {
			if err := s.sealTailLocked(false); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

// appendCatalogLocked durably logs a catalog record (§2.2: attribute changes
// are logged at the time of the change).
func (s *Service) appendCatalogLocked(rec *catalog.Record, ts int64) error {
	payload := rec.Encode(nil)
	s.stats.CatalogBytes += int64(len(payload) + 14)
	if err := s.appendSystemLocked(entrymap.CatalogID, payload,
		blockfmt.FormFull, blockfmt.AttrSystem, ts, false); err != nil {
		return err
	}
	if err := s.flushDueLocked(); err != nil {
		return err
	}
	return s.forceLocked()
}

// forceLocked makes the staged tail durable: stored to the NVRAM tail, or
// sealed (padded) straight to the device when no NVRAM is configured.
func (s *Service) forceLocked() error {
	// A foreign append parked mid-chain must finish before the tail image is
	// captured — persisting a tail whose last record still continues would be
	// discarded as torn by recovery.
	s.awaitChainLocked()
	if s.tailGlobal < 0 {
		return nil
	}
	if s.opt.NVRAM != nil {
		return s.stageTailLocked(true)
	}
	return s.sealTailLocked(true)
}

// stageTailLocked publishes the tail image to the reader snapshot and cache
// and, when persist is set, to the NVRAM tail (for durability). The snapshot
// is published before the cache insert so a concurrent reader re-caching an
// older snapshot's image always either loses to this insert or detects the
// republication and invalidates its own.
func (s *Service) stageTailLocked(persist bool) error {
	img := s.builder.Seal()
	if persist && s.opt.NVRAM != nil {
		m := s.met()
		var nstart time.Time
		if m != nil {
			nstart = time.Now()
		}
		ndone := s.tr.Span("core.nvram_store")
		err := s.storeNVRAMLocked(s.tailGlobal, img)
		ndone()
		if m != nil {
			m.nvramLat.ObserveSince(nstart)
		}
		if err != nil {
			return fmt.Errorf("clio: nvram store: %w", err)
		}
		s.tailDirty = false
	}
	s.publishTail(img)
	s.blockCache().Put(cache.Key{Block: s.tailGlobal}, img)
	return nil
}

// sealTailLocked writes the tail block to the write-once device, handling
// damaged blocks (invalidate and slide forward, §2.3.2) and full volumes
// (allocate and chain a successor, §2.1). forced marks a block sealed early
// to satisfy a synchronous write without an NVRAM tail.
func (s *Service) sealTailLocked(forced bool) error {
	if s.tailGlobal < 0 {
		return nil
	}
	if s.staging {
		// Pipelined path: durability via staging NVRAM, device write in the
		// background (pipeline.go).
		return s.enqueueSealLocked(forced)
	}
	if m := s.met(); m != nil {
		defer m.sealLat.ObserveSince(time.Now())
	}
	if forced {
		s.builder.SetFlags(blockfmt.FlagSealedByForce)
		s.stats.PaddingBytes += int64(s.builder.Free() + 2)
	}
	var slidBad []int
	for {
		img := s.builder.Seal()
		v, local, err := s.locateForWriteLocked(s.tailGlobal)
		if err != nil {
			return err
		}
		if local == v.DataCapacity()-1 {
			// The volume's final data block: mark it so readers (and
			// operators) can see the log continues on a successor (§2.1).
			s.builder.SetFlags(blockfmt.FlagVolumeSealed)
			img = s.builder.Seal()
		}
		devIdx := v.DeviceBlock(local)
		wdone := s.tr.Span("wodev.write")
		werr := s.writeTailBlockLocked(v, devIdx, img)
		wdone()
		switch {
		case werr == nil:
			// Sealed. Account, advance, publish the new frontier, then put
			// the final image where readers will find it.
			sealed := s.tailGlobal
			ids := make([]uint16, 0, len(s.tailIDs))
			for id := range s.tailIDs {
				ids = append(ids, id)
			}
			s.idxMu.Lock()
			s.acc.NoteBlock(sealed, ids)
			s.idxMu.Unlock()
			s.stats.BlocksSealed++
			s.stats.FooterBytes += blockfmt.FooterSize
			s.sealedEnd = sealed + 1
			s.tailGlobal = -1
			s.tailIDs = nil
			s.tailDirty = false
			s.publishTail(nil)
			s.blockCache().Put(cache.Key{Block: sealed}, img)
			if s.opt.NVRAM != nil {
				if err := s.opt.NVRAM.Clear(); err != nil {
					return fmt.Errorf("clio: nvram clear: %w", err)
				}
			}
			// Record any blocks invalidated along the way in the bad-block
			// log file, so a rebooted server can find them (§2.3.2).
			for _, bad := range slidBad {
				payload := wire.PutUvarint(nil, uint64(bad))
				if err := s.appendSystemChainLocked(entrymap.BadBlockID, payload,
					blockfmt.FormMinimal, 0, 0, false); err != nil {
					return err
				}
			}
			return nil
		case errors.Is(werr, wodev.ErrCorrupt) || transientExhausted(werr):
			// The target block was damaged while unwritten — or kept failing
			// transiently past the retry budget, which the service treats
			// identically: invalidate it and slide the staged contents to
			// the next block, completing the write degraded (§2.3.2).
			if ierr := v.Dev.Invalidate(devIdx); ierr != nil {
				return fmt.Errorf("clio: invalidate damaged block: %w", ierr)
			}
			dead := s.tailGlobal
			slidBad = append(slidBad, dead)
			s.badBlocks = append(s.badBlocks, dead)
			s.opDegraded = append(s.opDegraded, dead)
			s.opDegradedCause = werr
			s.stats.DeadBlocks++
			s.tailGlobal++
			s.builder.SetBlockIndex(uint32(s.tailGlobal))
			// The slide may cross an entrymap boundary; run the accumulator
			// for it now so the sealed block's NoteBlock lands in the new
			// span (the emitted entries queue as displaced, §2.3.2).
			s.emitDueLocked(s.tailGlobal)
			s.publishTail(nil)
			s.blockCache().Invalidate(cache.Key{Block: dead})
		case errors.Is(werr, wodev.ErrFull):
			if err := s.extendLocked(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("clio: seal block %d: %w", s.tailGlobal, werr)
		}
	}
}

// locateForWriteLocked maps a global index to a mounted volume for writing,
// allocating successor volumes as needed.
func (s *Service) locateForWriteLocked(global int) (*volume.Volume, int, error) {
	for {
		a := s.set.Active()
		if a == nil {
			return nil, 0, errors.New("clio: no volumes mounted")
		}
		end := int(a.Hdr.StartOffset) + a.DataCapacity()
		if global < end {
			v, local, err := s.set.Locate(global)
			if err != nil {
				return nil, 0, err
			}
			if v != a {
				return nil, 0, fmt.Errorf("clio: write position %d on read-only volume %d", global, v.Hdr.Index)
			}
			return v, local, nil
		}
		if err := s.extendLocked(); err != nil {
			return nil, 0, err
		}
	}
}

// extendLocked formats and mounts the successor of the active volume.
func (s *Service) extendLocked() error {
	if s.opt.Allocate == nil {
		return ErrNoAllocator
	}
	a := s.set.Active()
	idx := a.Hdr.Index + 1
	start := a.Hdr.StartOffset + uint64(a.DataCapacity())
	dev, err := s.opt.Allocate(s.set.Seq(), idx, start, s.opt.BlockSize)
	if err != nil {
		return fmt.Errorf("clio: allocate volume %d: %w", idx, err)
	}
	hdr := volume.Header{
		Seq:         s.set.Seq(),
		Index:       idx,
		StartOffset: start,
		BlockSize:   uint32(s.opt.BlockSize),
		N:           uint16(s.opt.Degree),
		Created:     s.nextTS(false),
	}
	if err := volume.Format(dev, hdr); err != nil {
		return err
	}
	v, err := volume.Mount(dev, s.nextTag)
	if err != nil {
		return err
	}
	s.nextTag++
	if err := s.set.Add(v); err != nil {
		return err
	}
	// Carry a catalog snapshot onto the new volume so that it alone can
	// rebuild the catalog when its predecessors are offline (§2.1). The
	// snapshot records land in the first blocks of the fresh volume.
	s.pendingSnapshot = s.cat.SnapshotRecords()
	return nil
}

// flushSnapshotLocked writes any pending catalog snapshot records. Called
// from ensureTail once the write position is on the new volume (never
// mid-chain).
func (s *Service) flushSnapshotLocked() error {
	for len(s.pendingSnapshot) > 0 {
		rec := s.pendingSnapshot[0]
		s.pendingSnapshot = s.pendingSnapshot[1:]
		payload := rec.Encode(nil)
		s.stats.CatalogBytes += int64(len(payload) + 4)
		if err := s.appendSystemLocked(entrymap.CatalogID, payload,
			blockfmt.FormMinimal, 0, 0, false); err != nil {
			return err
		}
	}
	return nil
}
