package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoginTraceDeterministic(t *testing.T) {
	a := NewLoginTrace(42, 16)
	b := NewLoginTrace(42, 16)
	for i := 0; i < 100; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Log != ob.Log || !bytes.Equal(oa.Data, ob.Data) {
			t.Fatalf("divergence at op %d", i)
		}
	}
}

func TestLoginTraceCalibration(t *testing.T) {
	tr := NewLoginTrace(1, 16)
	logs := map[string]bool{}
	for i := 0; i < 1000; i++ {
		op := tr.Next()
		// §3.5 calibration: ~60-byte entries → c ≈ 1/16 on 1 KiB blocks.
		if len(op.Data) != 60 {
			t.Fatalf("entry size %d", len(op.Data))
		}
		if !strings.HasPrefix(op.Log, "/sessions/") {
			t.Fatalf("log %q", op.Log)
		}
		logs[op.Log] = true
	}
	if len(logs) != 16 {
		t.Errorf("%d distinct sublogs, want 16", len(logs))
	}
	if len(tr.Logs()) != 17 { // parent + 16 users
		t.Errorf("Logs() = %d", len(tr.Logs()))
	}
}

func TestMailTrace(t *testing.T) {
	tr := NewMailTrace(7, 4)
	for i := 0; i < 50; i++ {
		op := tr.Next()
		if !op.Forced || !op.Timestamped {
			t.Fatal("mail deliveries must be forced and timestamped")
		}
		if len(op.Data) < 200 || len(op.Data) >= 2000 {
			t.Fatalf("body size %d", len(op.Data))
		}
	}
}

func TestTxnTrace(t *testing.T) {
	tr := NewTxnTrace(1, 50)
	seen := map[string]bool{}
	for i := 0; i < 20; i++ {
		op := tr.Next()
		if len(op.Data) != 50 || !op.Forced {
			t.Fatalf("op: %d bytes forced=%v", len(op.Data), op.Forced)
		}
		if seen[string(op.Data)] {
			t.Fatal("duplicate txid")
		}
		seen[string(op.Data)] = true
	}
}

func TestGrowthTrace(t *testing.T) {
	tr := NewGrowthTrace(512)
	op := tr.Next()
	if len(op.Data) != 512 || op.Log != "/growing" {
		t.Fatalf("op: %+v", op)
	}
}

func TestMixedTrace(t *testing.T) {
	m := NewMixedTrace(5, []Trace{NewTxnTrace(1, 50), NewGrowthTrace(100)}, []int{1, 3})
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		counts[m.Next().Log]++
	}
	if counts["/growing"] <= counts["/txnlog"] {
		t.Errorf("weights not respected: %v", counts)
	}
	if len(m.Logs()) != 2 {
		t.Errorf("Logs: %v", m.Logs())
	}
}
