// Package volume implements log volumes and volume sequences (§2.1).
//
// A log volume is one removable write-once medium. Block 0 of every volume
// is a self-describing volume header; the remaining blocks hold log data.
// Volumes are chained into a *volume sequence*: whenever a volume fills up,
// a previously unused successor volume is loaded and is logically a
// continuation of its predecessor. A log file is totally contained in one
// volume sequence and may span many volumes.
//
// The rest of the system addresses *global data-block indices*: block g of
// the sequence lives on the volume whose [StartOffset, StartOffset+capacity)
// range contains g, at device block (g - StartOffset) + 1. Older volumes may
// be offline; reads of their blocks fail with ErrOffline until the volume is
// mounted again ("many of the previous volumes in a volume sequence may also
// be available for reading (only), or may be made available on demand").
package volume

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"clio/internal/blockfmt"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// Errors.
var (
	// ErrNoHeader indicates block 0 is missing or not a volume header.
	ErrNoHeader = errors.New("volume: missing or invalid volume header")
	// ErrSequenceMismatch indicates a volume from a different sequence.
	ErrSequenceMismatch = errors.New("volume: volume belongs to a different sequence")
	// ErrNotContiguous indicates a volume whose index or offset does not
	// continue the sequence.
	ErrNotContiguous = errors.New("volume: volume does not continue the sequence")
	// ErrOffline indicates the addressed block lives on an unmounted volume.
	ErrOffline = errors.New("volume: block is on an offline volume")
	// ErrOutOfRange indicates a global block index past the written portion.
	ErrOutOfRange = errors.New("volume: global block index out of range")
)

// headerMagic identifies a Clio volume header record.
var headerMagic = []byte("CLIOVOL1")

// SeqID identifies a volume sequence.
type SeqID [16]byte

// Header is the self-describing first block of a volume.
type Header struct {
	// Seq identifies the volume sequence this volume belongs to.
	Seq SeqID
	// Index is the volume's 0-based position in the sequence.
	Index uint32
	// StartOffset is the global data-block index of this volume's first
	// data block (the cumulative data capacity of its predecessors).
	StartOffset uint64
	// BlockSize is the device block size; all volumes of a sequence agree.
	BlockSize uint32
	// N is the entrymap tree degree used throughout the sequence.
	N uint16
	// Created is the header's write time (Unix nanoseconds).
	Created int64
}

// encode returns the header record's payload.
func (h *Header) encode() []byte {
	out := append([]byte(nil), headerMagic...)
	out = append(out, h.Seq[:]...)
	out = wire.PutUint32(out, h.Index)
	out = wire.PutUint64(out, h.StartOffset)
	out = wire.PutUint32(out, h.BlockSize)
	out = wire.PutUint16(out, uint16(h.N))
	out = wire.PutUint64(out, uint64(h.Created))
	return out
}

func decodeHeader(data []byte) (*Header, error) {
	if len(data) < len(headerMagic)+16+4+8+4+2+8 {
		return nil, ErrNoHeader
	}
	if !bytes.Equal(data[:len(headerMagic)], headerMagic) {
		return nil, ErrNoHeader
	}
	rest := data[len(headerMagic):]
	h := &Header{}
	copy(h.Seq[:], rest[:16])
	rest = rest[16:]
	idx, _ := wire.Uint32(rest)
	h.Index = idx
	rest = rest[4:]
	off, _ := wire.Uint64(rest)
	h.StartOffset = off
	rest = rest[8:]
	bs, _ := wire.Uint32(rest)
	h.BlockSize = bs
	rest = rest[4:]
	n, _ := wire.Uint16(rest)
	h.N = n
	rest = rest[2:]
	created, _ := wire.Uint64(rest)
	h.Created = int64(created)
	return h, nil
}

// Format writes the volume header as block 0 of a fresh device.
func Format(dev wodev.Device, h Header) error {
	if dev.Written() != 0 {
		return fmt.Errorf("volume: device already written (%d blocks)", dev.Written())
	}
	if int(h.BlockSize) != dev.BlockSize() {
		return fmt.Errorf("volume: header block size %d != device %d", h.BlockSize, dev.BlockSize())
	}
	b, err := blockfmt.NewBuilder(dev.BlockSize(), 0)
	if err != nil {
		return err
	}
	b.SetFlags(blockfmt.FlagVolumeHeader)
	rec := blockfmt.Record{
		LogID:     0, // volume sequence log
		Form:      blockfmt.FormFull,
		AttrFlags: blockfmt.AttrSystem,
		Timestamp: h.Created,
		Data:      h.encode(),
	}
	if err := b.Append(rec); err != nil {
		return fmt.Errorf("volume: header record: %w", err)
	}
	if _, err := dev.AppendBlock(b.Seal()); err != nil {
		return fmt.Errorf("volume: write header: %w", err)
	}
	return nil
}

// ReadHeader reads and validates the volume header of a device.
func ReadHeader(dev wodev.Device) (*Header, error) {
	buf := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoHeader, err)
	}
	p, err := blockfmt.Parse(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoHeader, err)
	}
	if p.Flags&blockfmt.FlagVolumeHeader == 0 || len(p.Records) == 0 {
		return nil, ErrNoHeader
	}
	h, err := decodeHeader(p.Records[0].Data)
	if err != nil {
		return nil, err
	}
	if int(h.BlockSize) != dev.BlockSize() {
		return nil, fmt.Errorf("%w: header says block size %d, device %d",
			ErrNoHeader, h.BlockSize, dev.BlockSize())
	}
	return h, nil
}

// Volume is a mounted volume: a device plus its parsed header.
type Volume struct {
	Dev wodev.Device
	Hdr Header
	// Tag is the small integer used as the cache's volume id.
	Tag int
}

// DataCapacity returns the number of data blocks the volume can hold.
func (v *Volume) DataCapacity() int { return v.Dev.Capacity() - 1 }

// DataWritten returns the number of data blocks written to the volume, using
// wodev.FindEnd when the device does not report its end (§2.3.1).
func (v *Volume) DataWritten() (int, error) {
	end, err := wodev.FindEnd(v.Dev)
	if err != nil {
		return 0, err
	}
	if end == 0 {
		return 0, nil
	}
	return end - 1, nil
}

// DeviceBlock maps a volume-local data-block index to a device block index.
func (v *Volume) DeviceBlock(local int) int { return local + 1 }

// Mount opens a device as a volume of an existing sequence.
func Mount(dev wodev.Device, tag int) (*Volume, error) {
	h, err := ReadHeader(dev)
	if err != nil {
		return nil, err
	}
	return &Volume{Dev: dev, Hdr: *h, Tag: tag}, nil
}

// Set is the mounted portion of a volume sequence, ordered by volume index.
// The newest volume is assumed online for reading and writing; earlier
// volumes may be missing (offline). A Set is safe for concurrent use: the
// sealed-block read path calls Locate without the service's writer lock, so
// mounts and extensions synchronize internally.
type Set struct {
	seq  SeqID
	mu   sync.RWMutex
	vols []*Volume // sorted by Hdr.Index; gaps allowed (offline volumes)
}

// NewSet returns a set for the given sequence id.
func NewSet(seq SeqID) *Set { return &Set{seq: seq} }

// Seq returns the sequence id.
func (s *Set) Seq() SeqID { return s.seq }

// Add mounts a volume into the set.
func (s *Set) Add(v *Volume) error {
	if v.Hdr.Seq != s.seq {
		return ErrSequenceMismatch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.vols {
		if have.Hdr.Index == v.Hdr.Index {
			return fmt.Errorf("%w: volume %d already mounted", ErrNotContiguous, v.Hdr.Index)
		}
	}
	s.vols = append(s.vols, v)
	sort.Slice(s.vols, func(i, j int) bool { return s.vols[i].Hdr.Index < s.vols[j].Hdr.Index })
	return nil
}

// Remove unmounts the volume with the given index; the active (newest)
// volume cannot be removed.
func (s *Set) Remove(index uint32) (*Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, v := range s.vols {
		if v.Hdr.Index == index {
			if i == len(s.vols)-1 {
				return nil, fmt.Errorf("volume: cannot unmount the active volume %d", index)
			}
			s.vols = append(s.vols[:i], s.vols[i+1:]...)
			return v, nil
		}
	}
	return nil, fmt.Errorf("volume: volume %d not mounted", index)
}

// Volumes returns the mounted volumes in index order.
func (s *Set) Volumes() []*Volume {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Volume, len(s.vols))
	copy(out, s.vols)
	return out
}

// Active returns the newest mounted volume, or nil for an empty set.
func (s *Set) Active() *Volume {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.vols) == 0 {
		return nil
	}
	return s.vols[len(s.vols)-1]
}

// Locate maps a global data-block index to (volume, local index). A block on
// an unmounted volume returns ErrOffline; a block past the active volume's
// start range returns the active volume (the caller's read will report
// unwritten as appropriate).
func (s *Set) Locate(global int) (*Volume, int, error) {
	if global < 0 {
		return nil, 0, ErrOutOfRange
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := uint64(global)
	for _, v := range s.vols {
		start := v.Hdr.StartOffset
		end := start + uint64(v.DataCapacity())
		if g < start {
			// Falls in a gap before this mounted volume: offline.
			return nil, 0, fmt.Errorf("%w: global block %d", ErrOffline, global)
		}
		if g < end {
			return v, int(g - start), nil
		}
	}
	return nil, 0, fmt.Errorf("%w: global block %d beyond mounted volumes", ErrOffline, global)
}

// GlobalEnd returns the global data-block index one past the last written
// data block (using the active volume's written count).
func (s *Set) GlobalEnd() (int, error) {
	a := s.Active()
	if a == nil {
		return 0, nil
	}
	w, err := a.DataWritten()
	if err != nil {
		return 0, err
	}
	return int(a.Hdr.StartOffset) + w, nil
}
