// Histfs: the §4.1 history-based file service. Files live entirely in log
// files — every write is an appended update record, the current contents
// are a cache, and any earlier version (even of a deleted file) can be
// extracted from the history.
//
//	go run ./examples/histfs
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"clio"
	"clio/internal/histfs"
)

func main() {
	ctx := context.Background()
	store, err := clio.NewMemStore(1, 1024, 1<<15, clio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	fs, err := histfs.New(ctx, store, "/histfs")
	if err != nil {
		log.Fatal(err)
	}

	if err := fs.Create(ctx, "report.txt", 0o644); err != nil {
		log.Fatal(err)
	}
	versions := []string{
		"Draft: log files seem promising.",
		"Draft 2: entrymap gives O(log N) locates.",
		"Final: ship it.",
	}
	var stamps []int64
	for _, v := range versions {
		if err := fs.Truncate(ctx, "report.txt", 0); err != nil {
			log.Fatal(err)
		}
		if err := fs.Append(ctx, "report.txt", []byte(v)); err != nil {
			log.Fatal(err)
		}
		stamps = append(stamps, time.Now().UnixNano())
		time.Sleep(2 * time.Millisecond)
	}

	cur, _ := fs.Read(ctx, "report.txt")
	fmt.Printf("current contents: %q\n", cur)

	for i, ts := range stamps {
		v, err := fs.ReadAsOf(ctx, "report.txt", ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("as of version %d:  %q\n", i+1, v)
	}

	// Delete removes the file from the namespace but not from history.
	if err := fs.Delete(ctx, "report.txt"); err != nil {
		log.Fatal(err)
	}
	if _, err := fs.Read(ctx, "report.txt"); err != nil {
		fmt.Printf("after delete, Read fails as expected: %v\n", err)
	}
	v, err := fs.ReadAsOf(ctx, "report.txt", stamps[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("but the final version is still in the history: %q\n", v)

	// The current state is only a cache of the history: drop it and replay.
	fs.EvictCache()
	names, _ := fs.List(ctx)
	fmt.Printf("live files after cache rebuild: %v (report.txt stays deleted)\n", names)

	info := mustStat(ctx, fs, "notes.txt")
	_ = info
}

func mustStat(ctx context.Context, fs *histfs.FS, name string) histfs.Info {
	if err := fs.Create(ctx, name, 0o600); err != nil {
		log.Fatal(err)
	}
	if err := fs.Append(ctx, name, []byte("hello")); err != nil {
		log.Fatal(err)
	}
	info, err := fs.Stat(ctx, name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d bytes, mode %o, %d history records\n",
		info.Name, info.Size, info.Mode, info.Versions)
	return info
}
