package wodev

import (
	"math/rand"
	"sync"
	"time"

	"clio/internal/vclock"
)

// Timed wraps a Device and charges a virtual clock for each operation using
// the paper's optical-disk cost model: a cold block read costs a seek plus
// transfer time; appends are sequential (the write head is always at the end
// of the written portion, §2.1) and charge transfer time only.
type Timed struct {
	Device
	Clock *vclock.Clock
}

// NewTimed wraps dev with virtual-clock charging.
func NewTimed(dev Device, clk *vclock.Clock) *Timed {
	return &Timed{Device: dev, Clock: clk}
}

// ReadBlock charges a device read then delegates.
func (t *Timed) ReadBlock(idx int, dst []byte) error {
	t.Clock.ChargeDeviceRead(t.Device.BlockSize())
	return t.Device.ReadBlock(idx, dst)
}

// ReadValidated charges a device read and delegates to a validating
// replica read when the wrapped device is a Mirror.
func (t *Timed) ReadValidated(idx int, dst []byte, valid func([]byte) bool) error {
	t.Clock.ChargeDeviceRead(t.Device.BlockSize())
	if m, ok := t.Device.(interface {
		ReadValidated(int, []byte, func([]byte) bool) error
	}); ok {
		return m.ReadValidated(idx, dst, valid)
	}
	if err := t.Device.ReadBlock(idx, dst); err != nil {
		return err
	}
	if !valid(dst) {
		return ErrCorrupt
	}
	return nil
}

// AppendBlock charges transfer time then delegates.
func (t *Timed) AppendBlock(data []byte) (int, error) {
	t.Clock.Charge(vclock.CatTransfer,
		t.Clock.Model().DeviceReadPerKB*time.Duration(len(data))/1024)
	return t.Device.AppendBlock(data)
}

// Damager is implemented by devices that support fault injection.
type Damager interface {
	Damage(idx int, garbage []byte) error
}

// Faulty wraps a Device with scripted fault injection for the §2.3.2
// experiments: after arming, the next appends scribble garbage instead of (or
// in addition to) writing, and chosen unwritten blocks are pre-damaged so the
// writer must invalidate and skip them.
type Faulty struct {
	Device
	mu sync.Mutex
	// garbageEvery > 0 damages every k-th appended block after the fact,
	// simulating a failure that wrote garbage to the volume.
	garbageEvery int
	appendCount  int
	rng          *rand.Rand
	damaged      []int // indices damaged post-append, for test assertions
}

// NewFaulty wraps dev (which must implement Damager, as MemDevice does).
func NewFaulty(dev Device, seed int64) *Faulty {
	return &Faulty{Device: dev, rng: rand.New(rand.NewSource(seed))}
}

// SetGarbageEvery arms the wrapper to damage every k-th appended block
// (k <= 0 disarms).
func (f *Faulty) SetGarbageEvery(k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.garbageEvery = k
}

// DamageUnwritten pre-damages an unwritten block so that the append that
// reaches it fails with ErrCorrupt.
func (f *Faulty) DamageUnwritten(idx int) error {
	d, ok := f.Device.(Damager)
	if !ok {
		return ErrOutOfRange
	}
	return d.Damage(idx, nil)
}

// Damaged returns the indices of blocks this wrapper damaged after append.
func (f *Faulty) Damaged() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int, len(f.damaged))
	copy(out, f.damaged)
	return out
}

// AppendBlock appends and, when armed, immediately damages the block.
func (f *Faulty) AppendBlock(data []byte) (int, error) {
	idx, err := f.Device.AppendBlock(data)
	if err != nil {
		return idx, err
	}
	return idx, f.maybeDamage(idx)
}

// WriteAt writes and, when armed, immediately damages the block.
func (f *Faulty) WriteAt(idx int, data []byte) error {
	if err := f.Device.WriteAt(idx, data); err != nil {
		return err
	}
	return f.maybeDamage(idx)
}

func (f *Faulty) maybeDamage(idx int) error {
	f.mu.Lock()
	f.appendCount++
	hit := f.garbageEvery > 0 && f.appendCount%f.garbageEvery == 0
	var garbage []byte
	if hit {
		f.damaged = append(f.damaged, idx)
		garbage = make([]byte, f.Device.BlockSize())
		f.rng.Read(garbage)
	}
	f.mu.Unlock()
	if hit {
		if d, ok := f.Device.(Damager); ok {
			return d.Damage(idx, garbage)
		}
	}
	return nil
}
