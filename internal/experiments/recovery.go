package experiments

import (
	"io"
	"math/rand"

	"clio/internal/analytic"
	"clio/internal/core"
	"clio/internal/wodev"
)

// Fig4Row is one point of Figure 4: the cost of reconstructing entrymap
// information at server initialization, as a function of volume fill.
type Fig4Row struct {
	N      int
	Blocks int
	Theory float64 // (N·log_N b)/2 average
	// Measured is blocks examined (raw scans + entrymap entry reads) by an
	// actual crash recovery, or -1 for theory-only points.
	Measured int
	// EndProbes is the binary-search cost of finding the end (§2.3.1).
	EndProbes int64
}

// RunFig4 reproduces Figure 4: for each N, write a volume in stages and
// crash+recover at each stage, recording the reconstruction work. Theory
// rows cover the paper's full range.
func RunFig4(blockSize int, ns []int, stages []int) ([]Fig4Row, error) {
	if len(ns) == 0 {
		ns = []int{4, 16, 64}
	}
	if len(stages) == 0 {
		stages = []int{100, 1_000, 10_000, 50_000}
	}
	var rows []Fig4Row
	// Theory curves across the paper's x-range.
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		for _, b := range []int{100, 1000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000} {
			rows = append(rows, Fig4Row{
				N: n, Blocks: b,
				Theory:   analytic.Fig4RecoveryBlocks(n, float64(b)),
				Measured: -1,
			})
		}
	}
	for _, n := range ns {
		maxStage := stages[len(stages)-1]
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: maxStage + 256})
		opt := core.Options{
			BlockSize:   blockSize,
			Degree:      n,
			CacheBlocks: -1,
			Now:         testNow(),
		}
		svc, err := core.New(dev, opt)
		if err != nil {
			return nil, err
		}
		// Several active log files so entrymap entries carry real bitmaps.
		ids := make([]uint16, 6)
		for i := range ids {
			path := []string{"/a", "/b", "/c", "/d", "/e", "/f"}[i]
			if _, err := svc.CreateLog(path, 0, ""); err != nil {
				return nil, err
			}
			ids[i], _ = svc.Resolve(path)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		payload := make([]byte, blockSize/3)
		for _, stage := range stages {
			for svc.End() < stage {
				id := ids[rng.Intn(len(ids))]
				if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
					return nil, err
				}
			}
			if err := svc.Force(); err != nil {
				return nil, err
			}
			svc.Crash()
			// The reopened device does not report its end, so recovery pays
			// the binary search of §2.3.1 too.
			dev.SetReportEnd(false)
			svc, err = core.Open([]wodev.Device{dev}, opt)
			if err != nil {
				return nil, err
			}
			dev.SetReportEnd(true)
			rep := svc.LastRecovery()
			rows = append(rows, Fig4Row{
				N:         n,
				Blocks:    rep.SealedBlocks,
				Theory:    analytic.Fig4RecoveryBlocks(n, float64(rep.SealedBlocks)),
				Measured:  rep.EntrymapBlocksScanned + rep.EntrymapEntriesRead,
				EndProbes: rep.EndProbes,
			})
		}
		svc.Close()
	}
	return rows, nil
}

// PrintFig4 renders Figure 4.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fprintf(w, "Figure 4: blocks examined to reconstruct entrymap information at recovery\n")
	fprintf(w, "%5s %12s %12s %10s %10s\n", "N", "b(blocks)", "theory-avg", "measured", "end-probes")
	for _, r := range rows {
		if r.Measured < 0 {
			fprintf(w, "%5d %12d %12.1f %10s %10s\n", r.N, r.Blocks, r.Theory, "-", "-")
		} else {
			fprintf(w, "%5d %12d %12.1f %10d %10d\n", r.N, r.Blocks, r.Theory, r.Measured, r.EndProbes)
		}
	}
}
