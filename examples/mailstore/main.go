// Mailstore: the §4.2 history-based electronic mail design. Each mailbox is
// a log file of delivered messages; the agent's read/hide flags are logged
// in a sublog; nothing is ever destroyed, so "a user's mail messages are
// permanently accessible" even after the agent hides them.
//
//	go run ./examples/mailstore
package main

import (
	"context"
	"fmt"
	"log"

	"clio"
	"clio/internal/mailstore"
)

func main() {
	ctx := context.Background()
	logs, err := clio.NewMemStore(1, 1024, 1<<15, clio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer logs.Close()

	store, err := mailstore.New(ctx, logs, "/mail")
	if err != nil {
		log.Fatal(err)
	}
	if err := store.CreateMailbox(ctx, "smith"); err != nil {
		log.Fatal(err)
	}

	var ids []int64
	for _, m := range []struct{ from, subj, body string }{
		{"cheriton", "V-System build", "the new kernel boots on the Sun-3s"},
		{"finlayson", "log service", "entrymap level-2 entries are working"},
		{"spam-bot", "WIN BIG", "click here"},
	} {
		id, err := store.Deliver(ctx, "smith", m.from, m.subj, m.body)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	// A CC'd announcement: one multi-membership log entry, two mailboxes.
	if err := store.CreateMailbox(ctx, "jones"); err != nil {
		log.Fatal(err)
	}
	if _, err := store.DeliverCC(ctx, []string{"smith", "jones"},
		"root", "maintenance", "the optical drive arrives tuesday"); err != nil {
		log.Fatal(err)
	}

	if err := store.MarkRead(ctx, "smith", ids[0]); err != nil {
		log.Fatal(err)
	}
	if err := store.Hide(ctx, "smith", ids[2]); err != nil { // "delete" the spam
		log.Fatal(err)
	}

	fmt.Println("== mailbox view (hidden messages filtered) ==")
	printBox(ctx, store, "smith", false)

	fmt.Println("== the permanent history (nothing is ever gone) ==")
	printBox(ctx, store, "smith", true)

	// The agent's state is just a cache over the logs: drop it and the
	// mailbox — including the flags — rebuilds from the history.
	store.EvictCache()
	fmt.Println("== after rebuilding the agent's cache from the logs ==")
	printBox(ctx, store, "smith", true)
}

func printBox(ctx context.Context, store *mailstore.Store, user string, all bool) {
	msgs, err := store.List(ctx, user, all)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range msgs {
		flags := ""
		if m.Read {
			flags += "R"
		}
		if m.Hidden {
			flags += "H"
		}
		fmt.Printf("  [%2s] %-10s %-16s %s\n", flags, m.From, m.Subject, m.Body)
	}
}
