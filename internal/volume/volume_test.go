package volume

import (
	"errors"
	"testing"

	"clio/internal/wodev"
)

var testSeq = SeqID{1, 2, 3, 4}

func freshVolume(t *testing.T, index uint32, startOffset uint64, capacity int) *Volume {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: capacity})
	h := Header{
		Seq:         testSeq,
		Index:       index,
		StartOffset: startOffset,
		BlockSize:   512,
		N:           16,
		Created:     1234,
	}
	if err := Format(dev, h); err != nil {
		t.Fatal(err)
	}
	v, err := Mount(dev, int(index))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestFormatMountRoundTrip(t *testing.T) {
	v := freshVolume(t, 3, 900, 16)
	if v.Hdr.Seq != testSeq || v.Hdr.Index != 3 || v.Hdr.StartOffset != 900 ||
		v.Hdr.BlockSize != 512 || v.Hdr.N != 16 || v.Hdr.Created != 1234 {
		t.Errorf("header round trip: %+v", v.Hdr)
	}
	if v.DataCapacity() != 15 {
		t.Errorf("DataCapacity = %d", v.DataCapacity())
	}
	if v.DeviceBlock(0) != 1 {
		t.Errorf("DeviceBlock(0) = %d", v.DeviceBlock(0))
	}
	w, err := v.DataWritten()
	if err != nil || w != 0 {
		t.Errorf("DataWritten = %d, %v", w, err)
	}
}

func TestFormatRejectsUsedDevice(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 8})
	if _, err := dev.AppendBlock(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	err := Format(dev, Header{Seq: testSeq, BlockSize: 512})
	if err == nil {
		t.Error("Format on used device accepted")
	}
}

func TestMountRejectsUnformatted(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 8})
	if _, err := Mount(dev, 0); !errors.Is(err, ErrNoHeader) {
		t.Errorf("mount empty: %v", err)
	}
	// Garbage block 0.
	g := make([]byte, 512)
	for i := range g {
		g[i] = byte(i)
	}
	if _, err := dev.AppendBlock(g); err != nil {
		t.Fatal(err)
	}
	if _, err := Mount(dev, 0); !errors.Is(err, ErrNoHeader) {
		t.Errorf("mount garbage: %v", err)
	}
}

func TestDataWrittenWithUnknownEnd(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 32, ReportEndUnknown: true})
	dev.SetReportEnd(true)
	if err := Format(dev, Header{Seq: testSeq, BlockSize: 512, N: 16}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := dev.AppendBlock(make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	dev.SetReportEnd(false)
	v, err := Mount(dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := v.DataWritten()
	if err != nil || w != 5 {
		t.Errorf("DataWritten via binary search = %d, %v", w, err)
	}
}

func TestSetAddLocate(t *testing.T) {
	s := NewSet(testSeq)
	v0 := freshVolume(t, 0, 0, 11)            // data capacity 10
	v1 := freshVolume(t, 1, 10, 11)           // data capacity 10
	v2 := freshVolume(t, 2, 20, 1001)         // active
	for _, v := range []*Volume{v1, v0, v2} { // out of order on purpose
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Active() != v2 {
		t.Error("Active != newest volume")
	}
	cases := []struct {
		global int
		vol    *Volume
		local  int
	}{
		{0, v0, 0}, {9, v0, 9}, {10, v1, 0}, {19, v1, 9}, {20, v2, 0}, {500, v2, 480},
	}
	for _, c := range cases {
		v, local, err := s.Locate(c.global)
		if err != nil || v != c.vol || local != c.local {
			t.Errorf("Locate(%d) = vol %v local %d err %v", c.global, v, local, err)
		}
	}
	if _, _, err := s.Locate(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("Locate(-1): %v", err)
	}
}

func TestSetOfflineGap(t *testing.T) {
	s := NewSet(testSeq)
	v0 := freshVolume(t, 0, 0, 11)
	v2 := freshVolume(t, 2, 20, 101)
	if err := s.Add(v0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v2); err != nil {
		t.Fatal(err)
	}
	// Blocks 10..19 are on the unmounted volume 1.
	if _, _, err := s.Locate(15); !errors.Is(err, ErrOffline) {
		t.Errorf("gap block: %v", err)
	}
	if v, local, err := s.Locate(25); err != nil || v != v2 || local != 5 {
		t.Errorf("post-gap block: %v %d %v", v, local, err)
	}
}

func TestSetRejectsForeignAndDuplicate(t *testing.T) {
	s := NewSet(testSeq)
	v0 := freshVolume(t, 0, 0, 11)
	if err := s.Add(v0); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(v0); err == nil {
		t.Error("duplicate volume accepted")
	}
	foreign := freshVolume(t, 1, 10, 11)
	foreign.Hdr.Seq = SeqID{9, 9}
	if err := s.Add(foreign); !errors.Is(err, ErrSequenceMismatch) {
		t.Errorf("foreign volume: %v", err)
	}
}

func TestSetRemove(t *testing.T) {
	s := NewSet(testSeq)
	v0 := freshVolume(t, 0, 0, 11)
	v1 := freshVolume(t, 1, 10, 11)
	_ = s.Add(v0)
	_ = s.Add(v1)
	if _, err := s.Remove(1); err == nil {
		t.Error("removed active volume")
	}
	got, err := s.Remove(0)
	if err != nil || got != v0 {
		t.Errorf("Remove(0) = %v, %v", got, err)
	}
	if _, err := s.Remove(0); err == nil {
		t.Error("double remove accepted")
	}
	if _, _, err := s.Locate(5); !errors.Is(err, ErrOffline) {
		t.Errorf("unmounted block: %v", err)
	}
}

func TestGlobalEnd(t *testing.T) {
	s := NewSet(testSeq)
	if end, err := s.GlobalEnd(); err != nil || end != 0 {
		t.Errorf("empty set end = %d, %v", end, err)
	}
	v0 := freshVolume(t, 0, 0, 11)
	_ = s.Add(v0)
	for i := 0; i < 3; i++ {
		if _, err := v0.Dev.AppendBlock(make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	if end, err := s.GlobalEnd(); err != nil || end != 3 {
		t.Errorf("end = %d, %v", end, err)
	}
	v1 := freshVolume(t, 1, 10, 11)
	_ = s.Add(v1)
	if end, err := s.GlobalEnd(); err != nil || end != 10 {
		t.Errorf("end after successor = %d, %v (successor start offset rules)", end, err)
	}
}
