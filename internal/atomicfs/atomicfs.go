// Package atomicfs implements the extension the paper names as planned
// work in §6: "we plan to implement atomic update of (regular) files, using
// log files for recovery."
//
// It layers write-ahead redo logging over the conventional rewriteable file
// system (internal/rewritefs), with a Clio log file as the journal:
//
//  1. a transaction's updates are encoded into a single log entry and
//     force-written to the journal log file — the commit point. A log
//     entry is atomic by construction: a torn fragment chain is invisible
//     to readers, so a crash mid-commit leaves no trace;
//  2. the updates are then applied to the rewriteable file system, in any
//     order, possibly interrupted by a crash;
//  3. recovery replays every committed transaction since the last
//     checkpoint against the file system. Updates are idempotent
//     (absolute-offset writes, truncates, creates), so re-applying is
//     harmless;
//  4. a checkpoint record marks a prefix of the journal as fully applied,
//     bounding replay work.
//
// This is exactly the history-based structuring argument of §4: the
// journal is the truth, the rewriteable file system a cached projection.
package atomicfs

import (
	"errors"
	"fmt"
	"io"

	"clio/internal/core"
	"clio/internal/rewritefs"
	"clio/internal/wire"
)

// Errors.
var (
	// ErrTxnClosed indicates an operation on a committed/aborted transaction.
	ErrTxnClosed = errors.New("atomicfs: transaction closed")
	// ErrBadJournal indicates an undecodable journal record.
	ErrBadJournal = errors.New("atomicfs: malformed journal record")
)

// Journal record kinds.
const (
	recCommit     = 1
	recCheckpoint = 2
)

// Op kinds within a transaction.
const (
	opCreate   = 1
	opWriteAt  = 2
	opTruncate = 3
)

// op is one update within a transaction.
type op struct {
	kind   byte
	file   string
	offset int
	data   []byte
}

// FS is an atomically-updatable file system: a rewriteable FS plus a
// journal log file.
type FS struct {
	fs  *rewritefs.FS
	svc *core.Service
	jID uint16
	// appliedThrough is the journal timestamp through which updates are
	// known to be applied (the last checkpoint or replayed entry).
	appliedThrough int64
	// applyHook, when set, runs before each op application (tests inject
	// crashes here).
	applyHook func(opIndex int) error
}

// New opens (creating if needed) an atomic FS whose journal lives at the
// given log path, and runs recovery: every transaction committed to the
// journal after the last checkpoint is re-applied to fs.
func New(svc *core.Service, fs *rewritefs.FS, journalPath string) (*FS, error) {
	jID, err := svc.Resolve(journalPath)
	if err != nil {
		if jID, err = svc.CreateLog(journalPath, 0o600, "atomicfs"); err != nil {
			return nil, err
		}
	}
	a := &FS{fs: fs, svc: svc, jID: jID}
	if err := a.recover(); err != nil {
		return nil, err
	}
	return a, nil
}

// Files returns the underlying rewriteable file system (reads go straight
// through; writes must go through transactions).
func (a *FS) Files() *rewritefs.FS { return a.fs }

// SetApplyHook installs a test hook invoked before each op application.
func (a *FS) SetApplyHook(h func(opIndex int) error) { a.applyHook = h }

// Txn is an open transaction.
type Txn struct {
	a      *FS
	ops    []op
	closed bool
}

// Begin starts a transaction.
func (a *FS) Begin() *Txn { return &Txn{a: a} }

// Create records a file creation.
func (t *Txn) Create(file string) error {
	return t.add(op{kind: opCreate, file: file})
}

// WriteAt records an absolute-offset write.
func (t *Txn) WriteAt(file string, offset int, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	return t.add(op{kind: opWriteAt, file: file, offset: offset, data: cp})
}

// Truncate records a truncation.
func (t *Txn) Truncate(file string, size int) error {
	return t.add(op{kind: opTruncate, file: file, offset: size})
}

func (t *Txn) add(o op) error {
	if t.closed {
		return ErrTxnClosed
	}
	t.ops = append(t.ops, o)
	return nil
}

// Abort discards the transaction (nothing was logged or applied).
func (t *Txn) Abort() { t.closed = true }

// Commit force-writes the transaction to the journal (the commit point)
// and applies it to the file system. If the process dies during apply, the
// next New replays the journal and completes the updates.
func (t *Txn) Commit() error {
	if t.closed {
		return ErrTxnClosed
	}
	t.closed = true
	if len(t.ops) == 0 {
		return nil
	}
	payload := encodeCommit(t.ops)
	ts, err := t.a.svc.Append(t.a.jID, payload, core.AppendOptions{Timestamped: true, Forced: true})
	if err != nil {
		return fmt.Errorf("atomicfs: journal write: %w", err)
	}
	if err := t.a.apply(t.ops); err != nil {
		return fmt.Errorf("atomicfs: apply (will be completed by recovery): %w", err)
	}
	t.a.appliedThrough = ts
	return nil
}

// Checkpoint records that everything up to the last applied transaction is
// durable in the file system, bounding future replay. (With an in-memory
// rewritefs the journal remains the only durable copy; against a durable
// FS a checkpoint would follow an fsync.)
func (a *FS) Checkpoint() error {
	payload := []byte{recCheckpoint}
	payload = wire.PutUint64(payload, uint64(a.appliedThrough))
	_, err := a.svc.Append(a.jID, payload, core.AppendOptions{Timestamped: true, Forced: true})
	return err
}

// apply runs ops against the file system, invoking the test hook.
func (a *FS) apply(ops []op) error {
	for i, o := range ops {
		if a.applyHook != nil {
			if err := a.applyHook(i); err != nil {
				return err
			}
		}
		if err := a.applyOne(o); err != nil {
			return err
		}
	}
	return nil
}

func (a *FS) applyOne(o op) error {
	switch o.kind {
	case opCreate:
		err := a.fs.Create(o.file)
		if err != nil && err.Error() == fmt.Sprintf("rewritefs: %q exists", o.file) {
			return nil // idempotent replay
		}
		return err
	case opWriteAt:
		// Extend with zeros as needed, then overwrite: idempotent.
		size, err := a.fs.Size(o.file)
		if err != nil {
			return err
		}
		if end := o.offset + len(o.data); end > size {
			if err := a.fs.Append(o.file, make([]byte, end-size)); err != nil {
				return err
			}
		}
		return a.writeAt(o.file, o.offset, o.data)
	case opTruncate:
		// rewritefs has no truncate; emulate by rewriting the tail with
		// zeros beyond the new size (sufficient for the semantics the
		// journal promises: reads beyond size are not defined here).
		size, err := a.fs.Size(o.file)
		if err != nil {
			return err
		}
		if o.offset >= size {
			return a.fs.Append(o.file, make([]byte, o.offset-size))
		}
		return a.writeAt(o.file, o.offset, make([]byte, size-o.offset))
	default:
		return fmt.Errorf("%w: op kind %d", ErrBadJournal, o.kind)
	}
}

// writeAt performs an absolute write through rewritefs (which only has
// Append); it overwrites in place via block-level read-modify-write.
func (a *FS) writeAt(file string, offset int, data []byte) error {
	// rewritefs exposes ReadAt/Append only; emulate WriteAt by rewriting
	// the affected region through its API. For simplicity we reconstruct
	// the whole file when overwriting interior bytes.
	size, err := a.fs.Size(file)
	if err != nil {
		return err
	}
	if offset == size {
		return a.fs.Append(file, data)
	}
	buf := make([]byte, size)
	if size > 0 {
		if err := a.fs.ReadAt(file, 0, buf); err != nil {
			return err
		}
	}
	end := offset + len(data)
	if end > len(buf) {
		buf = append(buf, make([]byte, end-len(buf))...)
	}
	copy(buf[offset:end], data)
	return a.fs.Rewrite(file, buf)
}

// recover replays committed transactions after the last checkpoint.
func (a *FS) recover() error {
	cur, err := a.svc.OpenCursorID(a.jID)
	if err != nil {
		return err
	}
	// Pass 1: find the last checkpoint.
	var checkpointTS int64 = -1
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if len(e.Data) >= 9 && e.Data[0] == recCheckpoint {
			v, _ := wire.Uint64(e.Data[1:])
			checkpointTS = int64(v)
		}
	}
	// Pass 2: replay commits after the checkpoint.
	cur.SeekStart()
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if len(e.Data) == 0 || e.Data[0] != recCommit {
			continue
		}
		if e.Timestamp <= checkpointTS {
			a.appliedThrough = e.Timestamp
			continue
		}
		ops, derr := decodeCommit(e.Data)
		if derr != nil {
			return derr
		}
		if err := a.apply(ops); err != nil {
			return fmt.Errorf("atomicfs: recovery replay: %w", err)
		}
		a.appliedThrough = e.Timestamp
	}
	return nil
}

// encodeCommit serializes a transaction.
func encodeCommit(ops []op) []byte {
	out := []byte{recCommit}
	out = wire.PutUvarint(out, uint64(len(ops)))
	for _, o := range ops {
		out = append(out, o.kind)
		out = wire.PutUvarint(out, uint64(len(o.file)))
		out = append(out, o.file...)
		out = wire.PutUvarint(out, uint64(o.offset))
		out = wire.PutUvarint(out, uint64(len(o.data)))
		out = append(out, o.data...)
	}
	return out
}

func decodeCommit(b []byte) ([]op, error) {
	if len(b) < 2 || b[0] != recCommit {
		return nil, ErrBadJournal
	}
	rest := b[1:]
	count, n, err := wire.Uvarint(rest)
	if err != nil {
		return nil, ErrBadJournal
	}
	rest = rest[n:]
	ops := make([]op, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 1 {
			return nil, ErrBadJournal
		}
		o := op{kind: rest[0]}
		rest = rest[1:]
		fl, n, err := wire.Uvarint(rest)
		if err != nil || uint64(len(rest)) < uint64(n)+fl {
			return nil, ErrBadJournal
		}
		rest = rest[n:]
		o.file = string(rest[:fl])
		rest = rest[fl:]
		off, n, err := wire.Uvarint(rest)
		if err != nil {
			return nil, ErrBadJournal
		}
		o.offset = int(off)
		rest = rest[n:]
		dl, n, err := wire.Uvarint(rest)
		if err != nil || uint64(len(rest)) < uint64(n)+dl {
			return nil, ErrBadJournal
		}
		rest = rest[n:]
		o.data = append([]byte(nil), rest[:dl]...)
		rest = rest[dl:]
		ops = append(ops, o)
	}
	return ops, nil
}
