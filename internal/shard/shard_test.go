package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/wodev"
)

var bg = context.Background()

// newStore builds an n-shard store over memory devices with one shared
// monotonic clock, so merged timestamp order is deterministic and
// interleaves the shards.
func newStore(t *testing.T, n int) *Store {
	t.Helper()
	now := int64(0)
	svcs := make([]*core.Service, n)
	for i := range svcs {
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
		svc, err := core.New(dev, core.Options{
			BlockSize: 512, Degree: 8,
			Now: func() int64 { now += 1000; return now },
		})
		if err != nil {
			t.Fatal(err)
		}
		svcs[i] = svc
	}
	st, err := New(svcs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestRoutingIsDeterministicAndCoLocatesSublogs(t *testing.T) {
	st := newStore(t, 4)
	parent, err := st.ShardFor("/mail")
	if err != nil {
		t.Fatal(err)
	}
	kid, err := st.ShardFor("/mail/smith/inbox")
	if err != nil {
		t.Fatal(err)
	}
	if parent != kid {
		t.Fatalf("parent on shard %d, sublog on shard %d", parent, kid)
	}
	again, _ := st.ShardFor("/mail")
	if parent != again {
		t.Fatalf("routing unstable: %d then %d", parent, again)
	}
	if sh, _ := st.ShardFor("/"); sh != 0 {
		t.Fatalf("root routed to shard %d", sh)
	}
}

func TestSingleNamespaceAcrossShards(t *testing.T) {
	st := newStore(t, 4)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	ids := make(map[string]logapi.ID)
	shards := make(map[int]bool)
	for _, n := range names {
		id, err := st.CreateLog(bg, "/"+n, 0o644, "t")
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
		shards[id.Shard()] = true
	}
	if len(shards) < 2 {
		t.Fatalf("6 logs all landed on %d shard(s); want spread", len(shards))
	}
	// Every log resolves through the one namespace, with the shard encoded
	// in its id.
	for _, n := range names {
		got, err := st.Resolve(bg, "/"+n)
		if err != nil || got != ids[n] {
			t.Fatalf("Resolve(/%s) = %v, %v; want %v", n, got, err, ids[n])
		}
		info, err := st.Stat(bg, "/"+n)
		if err != nil || info.ID != ids[n] || info.Name != n {
			t.Fatalf("Stat(/%s) = %+v, %v", n, info, err)
		}
	}
	// Root listing fans out, merges, and dedupes the per-shard system logs.
	list, err := st.List(bg, "/")
	if err != nil {
		t.Fatal(err)
	}
	count := make(map[string]int)
	for _, n := range list {
		count[n]++
	}
	for _, n := range names {
		if count[n] != 1 {
			t.Fatalf("List(/) has %d copies of %q: %v", count[n], n, list)
		}
	}
	if count[".catalog"] != 1 || count[".entrymap"] != 1 {
		t.Fatalf("system logs not deduped: %v", list)
	}
}

func TestAppendRoutesAndReadsBack(t *testing.T) {
	st := newStore(t, 4)
	ids := make([]logapi.ID, 3)
	for i := range ids {
		id, err := st.CreateLog(bg, fmt.Sprintf("/log%d", i), 0o644, "t")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for round := 0; round < 5; round++ {
		for i, id := range ids {
			if _, err := st.Append(bg, id, []byte(fmt.Sprintf("l%d-r%d", i, round)),
				logapi.AppendOptions{Timestamped: true, Forced: round%2 == 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range ids {
		cur, err := st.OpenCursor(bg, fmt.Sprintf("/log%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 5; round++ {
			e, err := cur.Next(bg)
			if err != nil {
				t.Fatalf("log%d round %d: %v", i, round, err)
			}
			if want := fmt.Sprintf("l%d-r%d", i, round); string(e.Data) != want {
				t.Fatalf("log%d: %q want %q", i, e.Data, want)
			}
			if e.Shard != ids[i].Shard() {
				t.Fatalf("entry shard %d, id shard %d", e.Shard, ids[i].Shard())
			}
			// Positions round-trip through ReadAt with the entry's shard.
			back, err := st.ReadAt(bg, e.Shard, e.Block, e.Index)
			if err != nil || string(back.Data) != string(e.Data) {
				t.Fatalf("ReadAt: %v %v", err, back)
			}
		}
		cur.Close()
	}
}

func TestRootCursorMergesByTimestamp(t *testing.T) {
	st := newStore(t, 3)
	var want []string
	for i := 0; i < 3; i++ {
		if _, err := st.CreateLog(bg, fmt.Sprintf("/log%d", i), 0o644, "t"); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave appends across logs (hence shards); the shared clock makes
	// the store-wide timestamp order equal the append order.
	for round := 0; round < 8; round++ {
		for i := 0; i < 3; i++ {
			data := fmt.Sprintf("r%d-l%d", round, i)
			id, err := st.Resolve(bg, fmt.Sprintf("/log%d", i))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Append(bg, id, []byte(data), logapi.AppendOptions{Timestamped: true}); err != nil {
				t.Fatal(err)
			}
			want = append(want, data)
		}
	}
	cur, err := st.OpenCursor(bg, "/")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Forward: client entries come back in global timestamp order
	// (system entries from all shards are interleaved; skip them).
	var got []string
	var stamps []int64
	lastTS := int64(-1)
	for {
		e, err := cur.Next(bg)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.Timestamp < lastTS {
			t.Fatalf("merged order regressed: %d after %d", e.Timestamp, lastTS)
		}
		lastTS = e.Timestamp
		if len(e.Data) > 0 && e.Data[0] == 'r' {
			got = append(got, string(e.Data))
			stamps = append(stamps, e.Timestamp)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("merged read: %d client entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %q want %q", i, got[i], want[i])
		}
	}
	// Backward from the end mirrors the forward order exactly.
	if err := cur.SeekEnd(bg); err != nil {
		t.Fatal(err)
	}
	for i := len(want) - 1; i >= 0; i-- {
		var e *logapi.Entry
		for {
			var err error
			e, err = cur.Prev(bg)
			if err != nil {
				t.Fatalf("Prev: %v", err)
			}
			if len(e.Data) > 0 && e.Data[0] == 'r' {
				break
			}
		}
		if string(e.Data) != want[i] {
			t.Fatalf("reverse entry %d: %q want %q", i, e.Data, want[i])
		}
	}
	// Direction switches around a known timestamp stay consistent.
	if err := cur.SeekTime(bg, stamps[10]); err != nil {
		t.Fatal(err)
	}
	e, err := cur.Next(bg)
	if err != nil || string(e.Data) != want[10] {
		t.Fatalf("SeekTime+Next: %v %q want %q", err, e.Data, want[10])
	}
	e, err = cur.Prev(bg)
	if err != nil || string(e.Data) != want[10] {
		t.Fatalf("Next-then-Prev: %v %q want %q", err, e.Data, want[10])
	}
	e, err = cur.Next(bg)
	if err != nil || string(e.Data) != want[10] {
		t.Fatalf("Prev-then-Next: %v %q want %q", err, e.Data, want[10])
	}
}

func TestShardRangeErrors(t *testing.T) {
	st := newStore(t, 2)
	id, err := st.CreateLog(bg, "/a", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	bad := logapi.MakeID(7, id.Local())
	if _, err := st.Append(bg, bad, []byte("x"), logapi.AppendOptions{}); !errors.Is(err, logapi.ErrShardRange) {
		t.Fatalf("Append out-of-range shard: %v", err)
	}
	if _, err := st.ReadAt(bg, 7, 0, 0); !errors.Is(err, logapi.ErrShardRange) {
		t.Fatalf("ReadAt out-of-range shard: %v", err)
	}
	other := logapi.MakeID((id.Shard()+1)%2, id.Local())
	if _, err := st.AppendMulti(bg, []logapi.ID{id, other}, []byte("x"), logapi.AppendOptions{}); !errors.Is(err, logapi.ErrShardRange) {
		t.Fatalf("AppendMulti spanning shards: %v", err)
	}
	cur, err := st.OpenCursor(bg, "/")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if err := cur.SeekPos(bg, 0, 0); !errors.Is(err, ErrRootSeekPos) {
		t.Fatalf("root SeekPos: %v", err)
	}
}

func TestMultiMembershipWithinShard(t *testing.T) {
	st := newStore(t, 4)
	pid, err := st.CreateLog(bg, "/mbox", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	cid, err := st.CreateLog(bg, "/mbox/urgent", 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	if pid.Shard() != cid.Shard() {
		t.Fatalf("parent shard %d, sublog shard %d", pid.Shard(), cid.Shard())
	}
	if _, err := st.AppendMulti(bg, []logapi.ID{cid, pid}, []byte("both"), logapi.AppendOptions{Forced: true}); err != nil {
		t.Fatal(err)
	}
	cur, err := st.OpenCursor(bg, "/mbox/urgent")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	e, err := cur.Next(bg)
	if err != nil || string(e.Data) != "both" {
		t.Fatalf("multi read: %v %v", err, e)
	}
	if !e.MemberOf(pid.Local()) || !e.MemberOf(cid.Local()) {
		t.Fatalf("membership: %+v", e)
	}
}
