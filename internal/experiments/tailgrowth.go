package experiments

import (
	"io"

	"clio/internal/core"
	"clio/internal/rewritefs"
)

// TailRow compares a conventional indirect-block file system against a Clio
// log file for one large, continually growing file (§1's motivation).
type TailRow struct {
	FileBlocks int
	// Append cost over the last growth increment (device ops per block).
	FSAppendOps  float64
	LogAppendOps float64
	// Seeks over the same increment — the dominant cost on the paper's
	// devices.
	FSAppendSeeks  float64
	LogAppendSeeks float64
	// Cold read of the file's final block (device reads).
	FSTailReads  int64
	LogTailReads int64
	// Backup cost since the previous checkpoint: the conventional procedure
	// copies the whole file, the log is incremental by construction.
	FSBackupReads  int64
	LogBackupReads int64
}

// RunTailGrowth grows a file to the given sizes on both systems. A second,
// interleaved writer runs on the conventional FS (as in any shared server),
// scattering its blocks; the log device is append-only so Clio's blocks are
// sequential by construction.
func RunTailGrowth(blockSize int, checkpoints []int) ([]TailRow, error) {
	if len(checkpoints) == 0 {
		checkpoints = []int{64, 512, 2048}
	}
	maxBlocks := checkpoints[len(checkpoints)-1]

	// Conventional FS.
	store := rewritefs.NewStore(blockSize, maxBlocks*4+1024)
	fs := rewritefs.New(store)
	if err := fs.Create("biglog"); err != nil {
		return nil, err
	}
	if err := fs.Create("other"); err != nil {
		return nil, err
	}

	// Clio log file.
	svc, dev, err := newService(blockSize, 16, maxBlocks*4+1024, nil, core.NewMemNVRAM())
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	if _, err := svc.CreateLog("/biglog", 0, ""); err != nil {
		return nil, err
	}
	if _, err := svc.CreateLog("/other", 0, ""); err != nil {
		return nil, err
	}
	logID, _ := svc.Resolve("/biglog")
	otherID, _ := svc.Resolve("/other")

	chunk := make([]byte, blockSize)
	logChunk := make([]byte, blockSize-64) // leave room for header+footer
	var rows []TailRow
	grown := 0
	lastFSBackup := 0
	for _, cp := range checkpoints {
		inc := cp - grown
		store.ResetStats()
		svc.ResetCounters()
		dev.ResetStats()
		for i := 0; i < inc; i++ {
			if err := fs.Append("biglog", chunk); err != nil {
				return nil, err
			}
			if err := fs.Append("other", chunk); err != nil {
				return nil, err
			}
			if _, err := svc.Append(logID, logChunk, core.AppendOptions{}); err != nil {
				return nil, err
			}
			if _, err := svc.Append(otherID, logChunk, core.AppendOptions{}); err != nil {
				return nil, err
			}
		}
		grown = cp
		fsS := store.Stats()
		clioS := svc.DeviceStats()
		row := TailRow{
			FileBlocks:     cp,
			FSAppendOps:    float64(fsS.Reads+fsS.Writes) / float64(2*inc),
			LogAppendOps:   float64(clioS.Appends+clioS.Reads) / float64(2*inc),
			FSAppendSeeks:  float64(fsS.Seeks) / float64(2*inc),
			LogAppendSeeks: float64(clioS.Seeks) / float64(2*inc),
		}

		// Cold tail read.
		store.ResetStats()
		sz, _ := fs.Size("biglog")
		buf := make([]byte, blockSize)
		if err := fs.ReadAt("biglog", sz-blockSize, buf); err != nil {
			return nil, err
		}
		row.FSTailReads = store.Stats().Reads

		svc.FlushCache()
		svc.ResetCounters()
		dev.ResetStats()
		cur, err := svc.OpenCursorID(logID)
		if err != nil {
			return nil, err
		}
		cur.SeekEnd()
		if _, err := cur.Prev(); err != nil {
			return nil, err
		}
		row.LogTailReads = svc.DeviceStats().Reads

		// Backup: whole-file copy vs incremental tail.
		br, err := fs.BackupReads("biglog")
		if err != nil {
			return nil, err
		}
		row.FSBackupReads = br
		row.LogBackupReads = int64(cp - lastFSBackup) // only the new blocks
		lastFSBackup = cp
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTailGrowth renders the §1 motivation comparison.
func PrintTailGrowth(w io.Writer, rows []TailRow) {
	fprintf(w, "§1 motivation: large growing file — conventional FS vs log file\n")
	fprintf(w, "%8s | %9s %9s | %9s %9s | %8s %8s | %9s %9s\n",
		"blocks", "fs-app/b", "log-app/b", "fs-seek/b", "log-seek/b",
		"fs-tail", "log-tail", "fs-bkup", "log-bkup")
	for _, r := range rows {
		fprintf(w, "%8d | %9.2f %9.2f | %9.2f %9.2f | %8d %8d | %9d %9d\n",
			r.FileBlocks, r.FSAppendOps, r.LogAppendOps,
			r.FSAppendSeeks, r.LogAppendSeeks,
			r.FSTailReads, r.LogTailReads,
			r.FSBackupReads, r.LogBackupReads)
	}
}
