package vclock

import (
	"sync"
	"testing"
	"time"
)

func TestNilClockIsNoOp(t *testing.T) {
	var c *Clock
	c.Charge("x", time.Second)
	c.ChargeDeviceRead(1024)
	c.ChargeCachedBlock()
	c.ChargeIPC(false)
	c.ChargeTimestamp()
	c.ChargeEntrymapMaint()
	c.ChargeCopy(100)
	c.ChargeServerFixed()
	c.ChargeWriteFixed()
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("nil clock accumulated time")
	}
	if d, n := c.CategoryTotal("x"); d != 0 || n != 0 {
		t.Error("nil clock has categories")
	}
}

func TestChargeAccumulates(t *testing.T) {
	c := New(DefaultModel())
	c.Charge("a", time.Millisecond)
	c.Charge("a", time.Millisecond)
	c.Charge("b", 2*time.Millisecond)
	if c.Elapsed() != 4*time.Millisecond {
		t.Errorf("Elapsed = %v", c.Elapsed())
	}
	d, n := c.CategoryTotal("a")
	if d != 2*time.Millisecond || n != 2 {
		t.Errorf("a: %v, %d", d, n)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("Reset did not zero")
	}
}

func TestDefaultModelMatchesPaperConstants(t *testing.T) {
	m := DefaultModel()
	if m.DeviceSeek != 150*time.Millisecond {
		t.Errorf("seek = %v, paper says ~150 ms", m.DeviceSeek)
	}
	if m.CachedBlock != 600*time.Microsecond {
		t.Errorf("cached block = %v, paper says ~0.6 ms", m.CachedBlock)
	}
	if m.LocalIPC < 500*time.Microsecond || m.LocalIPC > time.Millisecond {
		t.Errorf("local IPC = %v, paper says 0.5-1 ms", m.LocalIPC)
	}
	if m.RemoteIPC < 2500*time.Microsecond || m.RemoteIPC > 3*time.Millisecond {
		t.Errorf("remote IPC = %v, paper says 2.5-3 ms", m.RemoteIPC)
	}
	if m.Timestamp != 400*time.Microsecond {
		t.Errorf("timestamp = %v, paper says ~400 us", m.Timestamp)
	}
	if m.EntrymapMaint != 70*time.Microsecond {
		t.Errorf("entrymap maint = %v, paper says ~70 us", m.EntrymapMaint)
	}
	// The write-path calibration: a null synchronous write should cost the
	// paper's 2.0 ms (IPC + timestamp + entrymap maint + fixed).
	null := m.LocalIPC + m.Timestamp + m.EntrymapMaint + m.WriteFixed
	if null != 2*time.Millisecond {
		t.Errorf("null write model = %v, want 2 ms", null)
	}
	// And a 50-byte write the paper's 2.9 ms.
	fifty := null + m.CopyPerKB*50/1024
	if fifty < 2850*time.Microsecond || fifty > 2950*time.Microsecond {
		t.Errorf("50-byte write model = %v, want ~2.9 ms", fifty)
	}
	// Table 1's distance-0 read: IPC + fixed + one cached block = 1.46 ms.
	read0 := m.LocalIPC + m.ServerFixed + m.CachedBlock
	if read0 != 1460*time.Microsecond {
		t.Errorf("distance-0 read model = %v, want 1.46 ms", read0)
	}
}

func TestChargeHelpers(t *testing.T) {
	c := New(DefaultModel())
	c.ChargeDeviceRead(1024)
	want := c.Model().DeviceSeek + c.Model().DeviceReadPerKB
	if c.Elapsed() != want {
		t.Errorf("device read charged %v, want %v", c.Elapsed(), want)
	}
	c.Reset()
	c.ChargeIPC(true)
	if c.Elapsed() != c.Model().RemoteIPC {
		t.Errorf("remote IPC charged %v", c.Elapsed())
	}
	c.Reset()
	c.ChargeIPC(false)
	if c.Elapsed() != c.Model().LocalIPC {
		t.Errorf("local IPC charged %v", c.Elapsed())
	}
}

func TestZeroValueClock(t *testing.T) {
	var c Clock
	c.ChargeCachedBlock()
	if c.Elapsed() != DefaultModel().CachedBlock {
		t.Errorf("zero-value clock: %v", c.Elapsed())
	}
}

func TestConcurrentCharges(t *testing.T) {
	c := New(DefaultModel())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Charge("x", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Elapsed() != 8*1000*time.Microsecond {
		t.Errorf("concurrent charges lost: %v", c.Elapsed())
	}
}

func TestMs(t *testing.T) {
	if got := Ms(1460 * time.Microsecond); got != "1.46" {
		t.Errorf("Ms = %q", got)
	}
}
