// Package stream implements streaming reads over the write-once log: live
// tail subscriptions that block at the sealed+NVRAM-staged end and are woken
// by group-commit publish — no polling, and no cost on the force path of a
// store nobody is tailing (the publish hook in core is one atomic load when
// idle).
//
// A subscription is a cursor with a pump: the pump reads entries through the
// ordinary cursor machinery, delivers them into a bounded per-subscriber
// buffer, and parks on core's tail notifier when it reaches the live edge.
// Delivery order is seal order per shard. A subscription over several shards
// (a sharded store's root) live-merges the K shard tails: whenever more than
// one entry is pending the lowest (timestamp, shard) is delivered first —
// the same order the sharded root cursor uses — but an idle shard is never
// waited for, so cross-shard timestamp order is best-effort at the live
// edge.
//
// Backpressure: when the subscriber's buffer is full the subscription drops
// out of the live stream into catch-up mode — the pump simply stops racing
// the tail and resumes from its last delivered position through the normal
// cursor at whatever pace the consumer drains. No entries are lost or
// duplicated; the cursor is the resume position. The Stats report how often
// that happened.
//
// Consumer groups — N clients sharing the shards/sublogs of a log with
// acknowledged offsets persisted as ordinary log entries — are layered on
// top in package stream/group.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"clio/internal/core"
)

// ErrClosed is returned by Recv after Close.
var ErrClosed = errors.New("stream: subscription closed")

// DefaultBuffer is the per-subscriber delivery buffer when Options.Buffer
// is unset.
const DefaultBuffer = 256

// Pos is a shard-local cursor gap position, used to resume a subscription
// after the last delivered entry: Pos{Shard: e.Shard, Block: e.Block,
// Rec: e.Index + 1}.
type Pos struct {
	Shard int
	Block int
	Rec   int
}

// Options configures a subscription.
type Options struct {
	// Buffer bounds the delivery buffer in entries; 0 means DefaultBuffer.
	Buffer int
	// FromStart delivers the log's existing history before live entries.
	// The default starts at the current end (live entries only).
	FromStart bool
	// From resumes each listed shard leg from a gap position (overrides
	// FromStart for that shard). Legs not listed follow FromStart.
	From []Pos
	// Metrics, when non-nil, receives delivery instrumentation.
	Metrics *Metrics
}

// Leg names one volume sequence a subscription tails: the shard's service
// and its ordinal (0 for a standalone store).
type Leg struct {
	Svc   *core.Service
	Shard int
}

// Sub is a live tail subscription. Recv returns entries in seal order; it
// blocks until an entry is published, the context is done, or the
// subscription is closed. A Sub is safe for one concurrent receiver.
type Sub struct {
	out  chan *core.Entry
	stop chan struct{}

	closeOnce sync.Once

	mu      sync.Mutex
	failure error

	delivered atomic.Int64
	catchups  atomic.Int64
	live      atomic.Bool

	met *Metrics
}

// Stats is a point-in-time snapshot of subscription activity.
type Stats struct {
	// Delivered counts entries handed to the subscriber buffer.
	Delivered int64
	// CatchUps counts transitions into catch-up mode: the subscriber's
	// buffer overflowed and the pump fell back to cursor-paced delivery.
	CatchUps int64
	// Live reports whether the pump was parked at the live edge when last
	// observed.
	Live bool
	// Buffered is the number of delivered-but-undrained entries.
	Buffered int
}

// Open starts a subscription over the given legs for the log file at path.
// A single leg tails one volume sequence; several legs live-merge a sharded
// store's shard tails. The pump goroutine runs until Close, a context-free
// hard error (service closed, media loss), and is the only writer to the
// delivery buffer.
func Open(path string, opts Options, legs ...Leg) (*Sub, error) {
	if len(legs) == 0 {
		return nil, errors.New("stream: no legs")
	}
	buf := opts.Buffer
	if buf <= 0 {
		buf = DefaultBuffer
	}
	s := &Sub{
		out:  make(chan *core.Entry, buf),
		stop: make(chan struct{}),
		met:  opts.Metrics,
	}
	from := make(map[int]Pos, len(opts.From))
	for _, p := range opts.From {
		from[p.Shard] = p
	}
	pls := make([]*pumpLeg, len(legs))
	for i, l := range legs {
		cur, err := l.Svc.OpenCursor(path)
		if err != nil {
			return nil, fmt.Errorf("stream: open %q on shard %d: %w", path, l.Shard, err)
		}
		if p, ok := from[l.Shard]; ok {
			if err := cur.SeekPos(p.Block, p.Rec); err != nil {
				return nil, fmt.Errorf("stream: resume shard %d: %w", l.Shard, err)
			}
		} else if !opts.FromStart {
			cur.SeekEnd()
		}
		pls[i] = &pumpLeg{svc: l.Svc, shard: l.Shard, cur: cur}
	}
	if s.met != nil {
		s.met.subs.Add(1)
	}
	go s.pump(pls)
	return s, nil
}

// pumpLeg is one shard's tail within a subscription.
type pumpLeg struct {
	svc   *core.Service
	shard int
	cur   *core.Cursor
	pend  *core.Entry // next undelivered entry, nil when the leg is drained
	seq   uint64      // TailSeq observed before the scan that drained it
}

// pump drives the subscription: scan the legs, deliver the lowest
// (timestamp, shard) pending entry, park on the tail notifiers when every
// leg is drained.
func (s *Sub) pump(legs []*pumpLeg) {
	defer func() {
		if s.met != nil {
			s.met.subs.Add(-1)
		}
		close(s.out)
	}()
	var wokeAt time.Time // set when a tail wake ended an idle park
	for {
		// Refill: each drained leg snapshots its publish sequence before
		// scanning, so a publish racing the scan trips the notifier.
		for _, l := range legs {
			if l.pend != nil {
				continue
			}
			l.seq = l.svc.TailSeq()
			e, err := l.cur.Next()
			switch {
			case err == nil:
				e.Shard = l.shard
				l.pend = e
			case err == io.EOF:
				// Live edge for this leg.
			default:
				s.fail(err)
				return
			}
		}
		// Deliver the lowest (timestamp, shard) pending entry.
		var pick *pumpLeg
		for _, l := range legs {
			if l.pend == nil {
				continue
			}
			if pick == nil || l.pend.Timestamp < pick.pend.Timestamp ||
				(l.pend.Timestamp == pick.pend.Timestamp && l.shard < pick.shard) {
				pick = l
			}
		}
		if pick == nil {
			// Every leg is at the live edge: the consumer has everything,
			// so leaving catch-up (if we were in it) and park for a wake.
			s.live.Store(true)
			if !s.waitAny(legs) {
				return
			}
			wokeAt = time.Now()
			continue
		}
		e := pick.pend
		pick.pend = nil
		if !s.deliver(e) {
			return
		}
		if s.met != nil {
			if !wokeAt.IsZero() {
				s.met.wakeToDeliver.ObserveSince(wokeAt)
				wokeAt = time.Time{}
			}
			s.met.delivered.Inc()
			s.met.lag.Observe(time.Duration(nowNanos() - e.Timestamp))
			s.met.buffered.Set(int64(len(s.out)))
		}
	}
}

// nowNanos is the wall clock used for the delivery-lag instrument; entry
// timestamps are server Unix nanoseconds, so the difference is the time an
// entry spent between commit and delivery (meaningless, but harmless, under
// synthetic test clocks).
var nowNanos = func() int64 { return time.Now().UnixNano() }

// deliver hands an entry to the subscriber. The fast path is a non-blocking
// send into the bounded buffer. When the buffer is full the subscription
// drops out of the live stream — catch-up mode — and the pump waits at
// cursor pace for the consumer to drain; the cursor itself is the resume
// position, so nothing is lost or repeated.
func (s *Sub) deliver(e *core.Entry) bool {
	select {
	case s.out <- e:
		s.delivered.Add(1)
		return true
	case <-s.stop:
		return false
	default:
	}
	s.catchups.Add(1)
	s.live.Store(false)
	if s.met != nil {
		s.met.catchups.Inc()
	}
	select {
	case s.out <- e:
		s.delivered.Add(1)
		return true
	case <-s.stop:
		return false
	}
}

// waitAny parks until any leg's tail publishes (or the subscription stops).
// Legs share core's broadcast notifier; a closed service wakes immediately
// and the next scan surfaces its error.
func (s *Sub) waitAny(legs []*pumpLeg) bool {
	if len(legs) == 1 {
		select {
		case <-legs[0].svc.TailNotify(legs[0].seq):
			return true
		case <-s.stop:
			return false
		}
	}
	wake := make(chan struct{}, 1)
	cancel := make(chan struct{})
	defer close(cancel)
	for _, l := range legs {
		go func(ch <-chan struct{}) {
			select {
			case <-ch:
				select {
				case wake <- struct{}{}:
				default:
				}
			case <-cancel:
			}
		}(l.svc.TailNotify(l.seq))
	}
	select {
	case <-wake:
		return true
	case <-s.stop:
		return false
	}
}

func (s *Sub) fail(err error) {
	s.mu.Lock()
	s.failure = err
	s.mu.Unlock()
}

// Recv returns the next entry in delivery order. It blocks until an entry
// arrives, ctx is done, or the subscription ends (Close → ErrClosed; a pump
// error — e.g. the service closed underneath — surfaces as that error after
// the buffered entries drain).
func (s *Sub) Recv(ctx context.Context) (*core.Entry, error) {
	select {
	case e, ok := <-s.out:
		if !ok {
			return nil, s.endErr()
		}
		if s.met != nil {
			s.met.buffered.Set(int64(len(s.out)))
		}
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Sub) endErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	return ErrClosed
}

// Close stops the subscription. Entries already buffered are discarded.
func (s *Sub) Close() error {
	s.closeOnce.Do(func() { close(s.stop) })
	return nil
}

// Stats returns a snapshot of subscription activity.
func (s *Sub) Stats() Stats {
	return Stats{
		Delivered: s.delivered.Load(),
		CatchUps:  s.catchups.Load(),
		Live:      s.live.Load(),
		Buffered:  len(s.out),
	}
}
