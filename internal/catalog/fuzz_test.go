package catalog

import "testing"

// FuzzDecodeRecord hardens the catalog record decoder: no panics, and
// accepted records round-trip and replay without corrupting the table.
func FuzzDecodeRecord(f *testing.F) {
	r := &Record{Kind: 1, ID: 7, Parent: 0, Perms: 0o644, Created: 99, Name: "x", Owner: "o"}
	f.Add(r.Encode(nil))
	f.Add([]byte{3, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		re, err := DecodeRecord(rec.Encode(nil))
		if err != nil {
			t.Fatalf("accepted record does not round-trip: %v", err)
		}
		if re.Kind != rec.Kind || re.ID != rec.ID || re.Name != rec.Name {
			t.Fatal("round-trip mismatch")
		}
		// Applying never panics (errors are fine).
		tab := NewTable()
		_ = tab.Apply(rec)
	})
}
