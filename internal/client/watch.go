// Streaming reads over the wire: Client.Watch opens a live tail
// subscription on a DEDICATED connection — the main connection's strict
// request/response pairing stays untouched while the server pushes deliver
// frames as group commit publishes entries. Flow control is credit-based:
// the subscribe grants a window, and the receiver tops it up as the consumer
// drains, so a slow consumer throttles the server instead of ballooning
// either side's buffers.
package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/wire"
)

var _ logapi.StreamService = (*Client)(nil)

// ErrSubClosed is returned by Recv after the subscription is closed.
var ErrSubClosed = errors.New("client: subscription closed")

// Watch opens a live tail subscription to the log file at path. The
// subscription runs on its own connection (dialed with the client's dialer),
// so delivers never interleave with the main connection's request/response
// traffic. A Client wrapped around a bare connection with New has no dialer
// and cannot Watch.
func (c *Client) Watch(ctx context.Context, path string, opts logapi.WatchOptions) (logapi.Subscription, error) {
	conn, err := c.dialStream(ctx)
	if err != nil {
		return nil, err
	}
	if c.opt.Tenant != "" {
		// The dedicated connection authenticates like the main one: a
		// multi-tenant server refuses unauthenticated subscribes. Session 0
		// keeps the binding connection-private.
		hello := wire.Hello{Tenant: c.opt.Tenant, Token: c.opt.Token}.Encode(nil)
		status, d, err := c.roundTrip(ctx, conn, server.OpHello, 0, 0, hello)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if status != server.StatusOK {
			msg, derr := d.String()
			if derr != nil {
				msg = fmt.Sprintf("watch handshake rejected (status %d)", status)
			}
			conn.Close()
			return nil, errors.New("client: " + msg)
		}
	}
	window := opts.Buffer
	if window <= 0 {
		window = server.DefaultStreamCredit
	}
	req := wire.StreamSubscribe{
		Path:      path,
		Buffer:    uint32(window),
		FromStart: opts.FromStart,
		Credit:    uint32(window),
	}
	for _, p := range opts.From {
		req.From = append(req.From, wire.StreamPos{Shard: uint32(p.Shard), Block: uint64(p.Block), Rec: uint64(p.Rec)})
	}
	// The subscribe handshake is synchronous on the fresh connection; after
	// it succeeds the only frames the server sends are pushes.
	status, d, err := c.roundTrip(ctx, conn, wire.OpStreamSubscribe, 1, traceID(c.session, 1), req.Encode(nil))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != server.StatusOK {
		msg, derr := d.String()
		if derr != nil {
			msg = fmt.Sprintf("subscribe rejected (status %d)", status)
		}
		conn.Close()
		return nil, errors.New("client: " + msg)
	}
	subID, err := d.Uint32()
	if err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(noDeadline)
	s := &remoteSub{
		conn:   conn,
		subID:  subID,
		window: window,
		out:    make(chan *Entry, window),
	}
	go s.recvLoop()
	return s, nil
}

// noDeadline clears a connection deadline set during the handshake.
var noDeadline = func() (t time.Time) { return }()

// dialStream establishes the dedicated subscription connection.
func (c *Client) dialStream(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.opt.Dialer != nil {
		return c.opt.Dialer(ctx)
	}
	if len(c.addrs) > 0 {
		return c.opt.DialAddr(ctx, c.pickAddrLocked())
	}
	return nil, errors.New("client: Watch needs a redialable client (Dial/DialContext)")
}

// remoteSub is a live subscription over its own connection.
type remoteSub struct {
	conn   net.Conn
	subID  uint32
	window int

	out chan *Entry

	// wmu serializes frame writes (credit grants from the Recv path,
	// unsubscribe from Close) against each other.
	wmu sync.Mutex

	// drained counts entries handed to the consumer since the last credit
	// grant; at window/2 the receiver tops the server back up.
	drained int

	closeOnce sync.Once
	closedFlg bool

	mu      sync.Mutex
	failure error
}

var _ logapi.Subscription = (*remoteSub)(nil)

// recvLoop is the dedicated connection's only reader: it turns pushed
// deliver frames into buffered entries until the subscription ends.
func (s *remoteSub) recvLoop() {
	defer close(s.out)
	for {
		status, _, _, payload, err := server.ReadFrame(s.conn)
		if err != nil {
			s.fail(err)
			return
		}
		switch status {
		case wire.OpStreamDeliver:
			d, err := wire.DecodeStreamDeliver(payload)
			if err != nil {
				s.fail(err)
				return
			}
			e := &Entry{
				LogID:       d.LogID,
				Timestamp:   d.Timestamp,
				Timestamped: d.Flags&server.EntryTimestamped != 0,
				Forced:      d.Flags&server.EntryForced != 0,
				Shard:       int(d.Shard),
				Block:       int(d.Block),
				Index:       int(d.Index),
				ExtraIDs:    d.ExtraIDs,
				Data:        d.Data,
			}
			// The buffer is sized to the credit window, so this send cannot
			// block for long: the server never has more than window entries
			// outstanding.
			s.out <- e
		case wire.OpStreamEnd:
			if end, err := wire.DecodeStreamEnd(payload); err == nil {
				s.fail(fmt.Errorf("client: subscription ended by server: %s", end.Msg))
			} else {
				s.fail(err)
			}
			return
		default:
			// A stray status frame (late response); ignore.
		}
	}
}

func (s *remoteSub) fail(err error) {
	s.mu.Lock()
	if s.failure == nil && !s.closedFlg {
		s.failure = err
	}
	s.mu.Unlock()
}

// Recv returns the next delivered entry, granting the server fresh credit
// as the window drains.
func (s *remoteSub) Recv(ctx context.Context) (*Entry, error) {
	select {
	case e, ok := <-s.out:
		if !ok {
			return nil, s.endErr()
		}
		s.drained++
		if s.drained >= s.window/2 {
			grant := wire.StreamCredit{SubID: s.subID, Credit: uint32(s.drained)}
			s.drained = 0
			s.wmu.Lock()
			// Best-effort: a dead connection surfaces in the receive loop.
			server.WriteFrame(s.conn, wire.OpStreamCredit, 0, 0, grant.Encode(nil))
			s.wmu.Unlock()
		}
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *remoteSub) endErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	return ErrSubClosed
}

// Close ends the subscription: best-effort unsubscribe, then the connection
// closes (which also stops the receive loop).
func (s *remoteSub) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closedFlg = true
		s.mu.Unlock()
		un := wire.StreamUnsubscribe{SubID: s.subID}
		s.wmu.Lock()
		server.WriteFrame(s.conn, wire.OpStreamUnsubscribe, 0, 0, un.Encode(nil))
		s.wmu.Unlock()
		s.conn.Close()
	})
	return nil
}

// GroupAck appends one acknowledgement or heartbeat record to a consumer
// group's offsets log (OpStreamAck) and returns its server timestamp.
func (c *Client) GroupAck(ctx context.Context, group string, rec wire.GroupRec) (int64, error) {
	op := wire.StreamGroupOp{Group: group, Rec: rec}
	_, d, err := c.call(ctx, wire.OpStreamAck, "streamack", true, op.Encode(nil))
	if err != nil {
		return 0, err
	}
	return d.Int64()
}

// GroupRebalance appends one membership record — join, leave, claim or
// release — to a consumer group's offsets log (OpStreamRebalance) and
// returns its server timestamp.
func (c *Client) GroupRebalance(ctx context.Context, group string, rec wire.GroupRec) (int64, error) {
	op := wire.StreamGroupOp{Group: group, Rec: rec}
	_, d, err := c.call(ctx, wire.OpStreamRebalance, "streamrebalance", true, op.Encode(nil))
	if err != nil {
		return 0, err
	}
	return d.Int64()
}
