// Package client is the client side of the Clio log-service protocol: the
// library an application links to access log files through the extended
// file server, in the spirit of the V-System UIO interface the paper uses —
// "log files are named using the standard file directory mechanism, and are
// accessed and managed using the same I/O and utility routines that are
// used to access and manage conventional files" (§2).
//
// A Client speaks over any net.Conn: a net.Pipe to an in-process server
// (the same-machine IPC case) or a TCP connection (cross-machine). Calls
// are synchronous request/response, matching the paper's IPC model; a
// Client serializes concurrent callers.
package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"clio/internal/server"
	"clio/internal/wire"
)

// Entry mirrors the service-side entry.
type Entry struct {
	LogID       uint16
	Timestamp   int64
	Timestamped bool
	Forced      bool
	Data        []byte
	Block       int
	Index       int
	// ExtraIDs lists additional member log files for multi-membership
	// entries (§2.1).
	ExtraIDs []uint16
}

// Stat is the client-side view of a log file descriptor.
type Stat struct {
	ID      uint16
	Parent  uint16
	Name    string
	Perms   uint16
	Created int64
	Owner   string
	Retired bool
	System  bool
}

// Stats is the subset of server counters exposed over the protocol.
type Stats struct {
	EntriesAppended int64
	BlocksSealed    int64
	ClientBytes     int64
	EndBlocks       int64
}

// Client is a connection to a Clio log server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// New wraps an established connection.
func New(conn net.Conn) *Client { return &Client{conn: conn} }

// Dial connects to a TCP log server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return New(conn), nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// call performs one synchronous round trip.
func (c *Client) call(op byte, payload []byte) (byte, *server.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := server.WriteFrame(c.conn, op, payload); err != nil {
		return 0, nil, fmt.Errorf("client: send: %w", err)
	}
	status, resp, err := server.ReadFrame(c.conn)
	if err != nil {
		return 0, nil, fmt.Errorf("client: recv: %w", err)
	}
	d := server.NewDecoder(resp)
	if status == server.StatusErr {
		msg, derr := d.String()
		if derr != nil {
			msg = "unknown server error"
		}
		return status, nil, errors.New(msg)
	}
	return status, d, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, _, err := c.call(server.OpPing, nil)
	return err
}

// CreateLog creates a log file (a sublog of its parent path).
func (c *Client) CreateLog(path string, perms uint16, owner string) (uint16, error) {
	p := server.PutString(nil, path)
	p = wire.PutUint16(p, perms)
	p = server.PutString(p, owner)
	_, d, err := c.call(server.OpCreate, p)
	if err != nil {
		return 0, err
	}
	return d.Uint16()
}

// Resolve maps a path to a log-file id.
func (c *Client) Resolve(path string) (uint16, error) {
	_, d, err := c.call(server.OpResolve, server.PutString(nil, path))
	if err != nil {
		return 0, err
	}
	return d.Uint16()
}

// List returns the sublog names under a path.
func (c *Client) List(path string) ([]string, error) {
	_, d, err := c.call(server.OpList, server.PutString(nil, path))
	if err != nil {
		return nil, err
	}
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.String()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Stat returns a log file's descriptor.
func (c *Client) Stat(path string) (Stat, error) {
	var st Stat
	_, d, err := c.call(server.OpStat, server.PutString(nil, path))
	if err != nil {
		return st, err
	}
	if st.ID, err = d.Uint16(); err != nil {
		return st, err
	}
	if st.Parent, err = d.Uint16(); err != nil {
		return st, err
	}
	if st.Perms, err = d.Uint16(); err != nil {
		return st, err
	}
	if st.Created, err = d.Int64(); err != nil {
		return st, err
	}
	if st.Name, err = d.String(); err != nil {
		return st, err
	}
	if st.Owner, err = d.String(); err != nil {
		return st, err
	}
	flags, err := d.Byte()
	if err != nil {
		return st, err
	}
	st.Retired = flags&1 != 0
	st.System = flags&2 != 0
	return st, nil
}

// SetPerms changes a log file's permissions.
func (c *Client) SetPerms(path string, perms uint16) error {
	p := server.PutString(nil, path)
	p = wire.PutUint16(p, perms)
	_, _, err := c.call(server.OpSetPerms, p)
	return err
}

// Retire closes a log file for further appends.
func (c *Client) Retire(path string) error {
	_, _, err := c.call(server.OpRetire, server.PutString(nil, path))
	return err
}

// AppendOptions mirrors the service-side append options.
type AppendOptions struct {
	Timestamped bool
	Forced      bool
}

// Append writes one entry and returns its server timestamp.
func (c *Client) Append(id uint16, data []byte, opts AppendOptions) (int64, error) {
	p := wire.PutUint16(nil, id)
	var flags byte
	if opts.Timestamped {
		flags |= server.AppendTimestamped
	}
	if opts.Forced {
		flags |= server.AppendForced
	}
	p = append(p, flags)
	p = server.PutBytes(p, data)
	_, d, err := c.call(server.OpAppend, p)
	if err != nil {
		return 0, err
	}
	return d.Int64()
}

// AppendMulti writes one entry belonging to several log files at once
// (§2.1); ids[0] is the primary. The entry appears in every listed log.
func (c *Client) AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	p := wire.PutUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		p = wire.PutUint16(p, id)
	}
	var flags byte
	if opts.Timestamped {
		flags |= server.AppendTimestamped
	}
	if opts.Forced {
		flags |= server.AppendForced
	}
	p = append(p, flags)
	p = server.PutBytes(p, data)
	_, d, err := c.call(server.OpAppendMulti, p)
	if err != nil {
		return 0, err
	}
	return d.Int64()
}

// ReadAt fetches the entry previously reported at (block, index).
func (c *Client) ReadAt(block, index int) (*Entry, error) {
	p := wire.PutUvarint(nil, uint64(block))
	p = wire.PutUvarint(p, uint64(index))
	_, d, err := c.call(server.OpReadAt, p)
	if err != nil {
		return nil, err
	}
	return decodeEntry(d)
}

// Stats fetches server counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	_, d, err := c.call(server.OpStats, nil)
	if err != nil {
		return st, err
	}
	v1, err := d.Int64()
	if err != nil {
		return st, err
	}
	v2, err := d.Int64()
	if err != nil {
		return st, err
	}
	v3, err := d.Int64()
	if err != nil {
		return st, err
	}
	v4, err := d.Int64()
	if err != nil {
		return st, err
	}
	st.EntriesAppended, st.BlocksSealed, st.ClientBytes, st.EndBlocks = v1, v2, v3, v4
	return st, nil
}

// Cursor is a remote cursor over a log file.
type Cursor struct {
	c      *Client
	handle uint32
}

// OpenCursor opens a cursor positioned at the start of the log file.
func (c *Client) OpenCursor(path string) (*Cursor, error) {
	_, d, err := c.call(server.OpCursorOpen, server.PutString(nil, path))
	if err != nil {
		return nil, err
	}
	h, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	return &Cursor{c: c, handle: h}, nil
}

func decodeEntry(d *server.Decoder) (*Entry, error) {
	e := &Entry{}
	var err error
	if e.LogID, err = d.Uint16(); err != nil {
		return nil, err
	}
	if e.Timestamp, err = d.Int64(); err != nil {
		return nil, err
	}
	flags, err := d.Byte()
	if err != nil {
		return nil, err
	}
	e.Timestamped = flags&server.EntryTimestamped != 0
	e.Forced = flags&server.EntryForced != 0
	b, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	e.Block = int(b)
	idx, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	e.Index = int(idx)
	nExtra, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if nExtra > 0 {
		e.ExtraIDs = make([]uint16, nExtra)
		for i := range e.ExtraIDs {
			if e.ExtraIDs[i], err = d.Uint16(); err != nil {
				return nil, err
			}
		}
	}
	if e.Data, err = d.Bytes(); err != nil {
		return nil, err
	}
	return e, nil
}

// Next returns the next matching entry, or io.EOF at the end of the log.
func (cu *Cursor) Next() (*Entry, error) { return cu.step(server.OpNext) }

// Prev returns the previous matching entry, or io.EOF at the beginning.
func (cu *Cursor) Prev() (*Entry, error) { return cu.step(server.OpPrev) }

func (cu *Cursor) step(op byte) (*Entry, error) {
	status, d, err := cu.c.call(op, wire.PutUvarint(nil, uint64(cu.handle)))
	if err != nil {
		return nil, err
	}
	if status == server.StatusEOF {
		return nil, io.EOF
	}
	return decodeEntry(d)
}

// SeekTime positions the cursor so Next returns the first entry at/after ts.
func (cu *Cursor) SeekTime(ts int64) error {
	p := wire.PutUvarint(nil, uint64(cu.handle))
	p = wire.PutUint64(p, uint64(ts))
	_, _, err := cu.c.call(server.OpSeekTime, p)
	return err
}

// SeekStart positions the cursor before the first entry.
func (cu *Cursor) SeekStart() error {
	_, _, err := cu.c.call(server.OpSeekStart, wire.PutUvarint(nil, uint64(cu.handle)))
	return err
}

// SeekEnd positions the cursor after the last entry.
func (cu *Cursor) SeekEnd() error {
	_, _, err := cu.c.call(server.OpSeekEnd, wire.PutUvarint(nil, uint64(cu.handle)))
	return err
}

// SeekPos restores the cursor to a previously observed (block, rec) gap
// position, for resumable consumers.
func (cu *Cursor) SeekPos(block, rec int) error {
	p := wire.PutUvarint(nil, uint64(cu.handle))
	p = wire.PutUvarint(p, uint64(block))
	p = wire.PutUvarint(p, uint64(rec))
	_, _, err := cu.c.call(server.OpSeekPos, p)
	return err
}

// Close releases the server-side cursor.
func (cu *Cursor) Close() error {
	_, _, err := cu.c.call(server.OpCursorEnd, wire.PutUvarint(nil, uint64(cu.handle)))
	return err
}
