package cluster

// Replication-ordering test for the pipelined-seal PR: the core's seal
// pipeline must never reorder the frames a follower applies. In cluster
// mode the leader's NVRAM is wrapped in tapNVRAM, which deliberately does
// NOT forward the StagingNVRAM extension — so the core's background seal
// pipeline auto-disables, every seal reaches tapDevice synchronously in
// commit order, and per-device frame order equals leader seal order. This
// test pins both halves: the pipeline stays off under replication, and
// follower apply order matches leader seal order while seals from
// concurrent group commits (two shards, many writers) are in flight.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clio/internal/client"
	"clio/internal/wodev"
)

// checkFollowerPrefix verifies one follower device against the leader's:
// the follower's written blocks must form a gapless prefix of the leader's
// and match byte for byte. Called while frames are still being applied, so
// it samples the in-flight ordering, not just the converged end state.
func checkFollowerPrefix(t *testing.T, who string, leader, follower wodev.Device) {
	t.Helper()
	bs := leader.BlockSize()
	lbuf, fbuf := make([]byte, bs), make([]byte, bs)
	limit := leader.Written()
	frontier := -1 // first unwritten follower block, once seen
	for i := 0; i < limit; i++ {
		ferr := follower.ReadBlock(i, fbuf)
		if ferr != nil {
			if frontier < 0 {
				frontier = i
			}
			continue
		}
		if frontier >= 0 {
			t.Fatalf("%s: block %d applied but block %d is not: follower apply order broke leader seal order",
				who, i, frontier)
		}
		if lerr := leader.ReadBlock(i, lbuf); lerr != nil {
			t.Fatalf("%s: follower holds block %d the leader does not (%v)", who, i, lerr)
		}
		if !bytes.Equal(fbuf, lbuf) {
			t.Fatalf("%s: block %d differs from the leader's", who, i)
		}
	}
}

func TestFollowerApplyOrderMatchesLeaderSealOrder(t *testing.T) {
	addrs := freeAddrs(t, 3)
	var tns [3]*testNode
	for i := 0; i < 3; i++ {
		devs, nvrams := freshShards(2)
		if i == 0 {
			// Slow the leader's device writes so seals stay in flight long
			// enough for concurrent forces to pile into group commits — the
			// ordering property is only interesting under that overlap.
			for s := range devs {
				devs[s][0] = wodev.NewLatent(devs[s][0], 300*time.Microsecond, 0)
			}
		}
		peers := make([]string, 0, 2)
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		tns[i] = startNode(t, addrs[i], peers, devs, nvrams, i == 0, i == 0, nil)
	}

	ctx := context.Background()
	admin := testClient(t, 1, addrs, nil)
	paths := []string{"/order-a", "/order-b"}
	var ids [2]client.ID
	for i, p := range paths {
		id, err := admin.CreateLog(ctx, p, 0o644, "test")
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		ids[i] = id
	}

	const writers = 12
	const perWriter = 25
	filler := strings.Repeat("o", 24)
	var ackedTotal atomic.Int64
	var wg sync.WaitGroup
	stormDone := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := testClient(t, uint64(200+g), addrs, nil)
			id := ids[g%2]
			for i := 0; i < perWriter; i++ {
				payload := fmt.Sprintf("g%d-%04d:%s", g, i, filler)
				if _, err := c.Append(ctx, id, []byte(payload), client.AppendOptions{Forced: true}); err == nil {
					ackedTotal.Add(1)
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(stormDone) }()

	// Sample follower devices against the leader's while seals are in
	// flight: every observation must show a byte-identical gapless prefix.
	samples := 0
	for sampling := true; sampling; {
		select {
		case <-stormDone:
			sampling = false
		case <-time.After(5 * time.Millisecond):
		}
		for f := 1; f <= 2; f++ {
			for s := 0; s < 2; s++ {
				who := fmt.Sprintf("follower %d shard %d (sample %d)", f, s, samples)
				checkFollowerPrefix(t, who, tns[0].devs[s][0], tns[f].devs[s][0])
			}
		}
		samples++
	}
	if got := ackedTotal.Load(); got < int64(writers*perWriter) {
		t.Fatalf("only %d of %d appends acked", got, writers*perWriter)
	}

	// The leader's store must show the pipeline disabled under replication:
	// tapNVRAM hides the StagingNVRAM extension, so seals are synchronous
	// and frame order is seal order — the property sampled above.
	tns[0].node.mu.Lock()
	store := tns[0].node.store
	tns[0].node.mu.Unlock()
	st := store.Stats()
	if st.PipelinedSeals != 0 || st.InflightSeals != 0 || st.StagedBytes != 0 {
		t.Errorf("seal pipeline active under replication: pipelined=%d inflight=%d staged=%d",
			st.PipelinedSeals, st.InflightSeals, st.StagedBytes)
	}
	if st.GroupCommits == 0 || st.BlocksSealed < 8 {
		t.Errorf("storm too small: groupCommits=%d sealed=%d", st.GroupCommits, st.BlocksSealed)
	}

	// Converged end state: both followers hold exactly the leader's blocks.
	waitFor(t, "followers to converge", 15*time.Second, func() bool {
		ends := tns[0].node.Status().ShardEnds
		return shardEndsEqual(ends, tns[1].node.Status().ShardEnds) &&
			shardEndsEqual(ends, tns[2].node.Status().ShardEnds)
	})
	for f := 1; f <= 2; f++ {
		for s := 0; s < 2; s++ {
			leader, follower := tns[0].devs[s][0], tns[f].devs[s][0]
			checkFollowerPrefix(t, fmt.Sprintf("follower %d shard %d (final)", f, s), leader, follower)
			if lw, fw := leader.Written(), follower.Written(); fw < lw {
				t.Errorf("follower %d shard %d converged at %d blocks, leader has %d", f, s, fw, lw)
			}
		}
	}
	t.Logf("acked=%d samples=%d sealed=%d groupCommits=%d",
		ackedTotal.Load(), samples, st.BlocksSealed, st.GroupCommits)
}
