package blockfmt

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the block parser against arbitrary media contents: it
// must never panic, and whatever it accepts must re-encode consistently.
func FuzzParse(f *testing.F) {
	b, _ := NewBuilder(256, 3)
	_ = b.Append(Record{LogID: 4, Form: FormFull, Timestamp: 9, Data: []byte("seed")})
	_ = b.Append(Record{LogID: 5, Form: FormMulti, Timestamp: 10, ExtraIDs: []uint16{6}, Data: []byte("multi")})
	f.Add(b.Seal())
	f.Add(bytes.Repeat([]byte{0xFF}, 256))
	f.Add(make([]byte, 256))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted blocks must be internally consistent: re-append every
		// record into a fresh builder without error.
		nb, berr := NewBuilder(len(data), p.BlockIndex)
		if berr != nil {
			return
		}
		for _, r := range p.Records {
			rec := Record{
				LogID: r.LogID, Form: r.Form, AttrFlags: r.AttrFlags,
				Timestamp: r.Timestamp, Continued: r.Continued,
				Continues: r.Continues, Data: r.Data, ExtraIDs: r.ExtraIDs,
			}
			if r.Form > FormMulti {
				continue // unknown future forms tolerated by the parser
			}
			if err := nb.Append(rec); err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
		}
	})
}
