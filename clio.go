// Package clio is a log service exploiting write-once storage: a Go
// implementation of the Clio system from "Log Files: An Extended File
// Service Exploiting Write-Once Storage" (Finlayson & Cheriton, 1987).
//
// Clio provides *log files*: readable, append-only files accessed much like
// conventional files — named in a directory hierarchy, read sequentially or
// randomly, seekable by time — stored on media that only ever need support
// append-only writes (write-once optical disk in the paper; simulated
// write-once devices or plain files here, with the append-only policy
// enforced at the device layer).
//
// # Quick start
//
// The Log interface is the uniform, context-first surface; every
// deployment shape — an in-process store, a store sharded across volume
// sequences, a network client — implements it:
//
//	store, err := clio.CreateStore("/var/log/clio", clio.DirOptions{Shards: 4})
//	if err != nil { ... }
//	defer store.Close()
//	var log clio.Log = store
//
//	ctx := context.Background()
//	id, _ := log.CreateLog(ctx, "/audit", 0o644, "root")
//	log.Append(ctx, id, []byte("user smith logged in"), clio.AppendOptions{Forced: true})
//
//	cur, _ := log.OpenCursor(ctx, "/audit")
//	for {
//		e, err := cur.Next(ctx)
//		if err == io.EOF { break }
//		fmt.Printf("%s\n", e.Data)
//	}
//
// The heavy lifting lives in internal packages; this package re-exports the
// interface surface and provides file-backed deployment helpers.
package clio

import (
	"fmt"

	"clio/internal/archive"
	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/shard"
	"clio/internal/vclock"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// Log is the uniform context-first log-service interface, implemented by
// *Store (local, possibly sharded) and internal/client.Client (network).
type Log = logapi.Service

// LogCursor iterates a log file through the Log interface.
type LogCursor = logapi.Cursor

// ID identifies a log file within a Store: shard ordinal in the high 16
// bits, shard-local catalog id in the low 16.
type ID = logapi.ID

// MakeID combines a shard ordinal and a shard-local catalog id.
func MakeID(shardOrdinal int, local uint16) ID { return logapi.MakeID(shardOrdinal, local) }

// Info describes one log file (the catalog descriptor).
type Info = logapi.Info

// Store is a (possibly sharded) log store behind one namespace: N volume
// sequences, log files hash-partitioned by root path segment. It
// implements Log.
type Store = shard.Store

// ErrShardRange reports an ID or shard ordinal outside a store's shards.
var ErrShardRange = logapi.ErrShardRange

// Options configures one shard's service (embedded in DirOptions for
// file-backed stores).
type Options = core.Options

// AppendOptions controls one append (timestamping and forced durability).
type AppendOptions = core.AppendOptions

// Entry is one log entry as returned by a cursor.
type Entry = core.Entry

// Stats aggregates service activity counters.
type Stats = core.Stats

// RecoveryReport describes the work done by server initialization.
type RecoveryReport = core.RecoveryReport

// NVRAM models the rewriteable non-volatile tail storage of §2.3.1.
type NVRAM = core.NVRAM

// Allocator provides successor volumes when the active volume fills.
type Allocator = core.Allocator

// Errors re-exported from the core service.
var (
	ErrClosed        = core.ErrClosed
	ErrEntryTooLarge = core.ErrEntryTooLarge
	ErrNoAllocator   = core.ErrNoAllocator
	ErrSystemLog     = core.ErrSystemLog
	ErrLost          = core.ErrLost
)

// NewMemNVRAM returns an in-memory NVRAM simulation.
func NewMemNVRAM() *core.MemNVRAM { return core.NewMemNVRAM() }

// NewFileNVRAM returns an NVRAM persisted in a sidecar file.
func NewFileNVRAM(path string) *core.FileNVRAM { return core.NewFileNVRAM(path) }

// NewCostClock returns a virtual clock charging the paper-calibrated cost
// model, for use as Options.Clock in experiments.
func NewCostClock() *vclock.Clock { return vclock.New(vclock.DefaultModel()) }

// Reclamation and cold tiering: the compactor copies the live entries of
// old sealed volumes forward, demotes the emptied volumes to an archive
// backend, and serves reads of demoted blocks through the backend at
// archival latency. File-backed stores wire the tier automatically
// (DirOptions.ColdDir / NoCold); other deployments set Options.Cold.

// CompactOptions bounds one compaction pass (Store.CompactOnce).
type CompactOptions = core.CompactOptions

// CompactResult reports one compaction pass.
type CompactResult = core.CompactResult

// ColdTier wires the reclamation subsystem into a service: where demoted
// volume images go, where the compactor's checkpoint lives, and how the
// embedding store reclaims a demoted volume's local media.
type ColdTier = core.ColdTier

// ColdBackend is the archive backend interface demoted volume images are
// stored in and read back through.
type ColdBackend = archive.Backend

// StateStore persists the compaction sidecar (the compactor's checkpoint).
type StateStore = core.StateStore

// ErrNoColdTier is returned by CompactOnce on a store with no cold tier.
var ErrNoColdTier = core.ErrNoColdTier

// NewDirBackend returns a directory-backed archive backend (one file per
// volume image; the directory is created lazily on first write).
func NewDirBackend(dir string) ColdBackend { return archive.NewDir(dir) }

// NewMemBackend returns an in-memory archive backend for tests and
// mem-backed stores.
func NewMemBackend() ColdBackend { return archive.NewMem() }

// NewFileState returns a compaction-sidecar store backed by a single file,
// written atomically.
func NewFileState(path string) StateStore { return core.NewFileState(path) }

// NewMemState returns an in-memory compaction-sidecar store for tests.
func NewMemState() StateStore { return core.NewMemState() }

// NewMemStore creates an n-shard Store over fresh in-memory write-once
// devices — the quickest way to a sharded store for tests and examples.
// capacityBlocks <= 0 selects a large default. An NVRAM or ColdTier in opt
// would be shared — and stomped — by every shard, so non-nil opt.NVRAM and
// opt.Cold are only accepted for n = 1; sharded stores wanting them
// assemble per-shard services through internal/shard.New.
func NewMemStore(n, blockSize, capacityBlocks int, opt Options) (*Store, error) {
	if opt.NVRAM != nil && n > 1 {
		return nil, fmt.Errorf("clio: one NVRAM cannot back %d shards", n)
	}
	if opt.Cold != nil && n > 1 {
		return nil, fmt.Errorf("clio: one cold tier cannot back %d shards", n)
	}
	svcs := make([]*core.Service, n)
	for i := range svcs {
		svc, err := core.New(NewMemDevice(blockSize, capacityBlocks), opt)
		if err != nil {
			for _, s := range svcs {
				if s != nil {
					s.Close()
				}
			}
			return nil, err
		}
		svcs[i] = svc
	}
	return shard.New(svcs)
}

// NewMemDevice returns an in-memory write-once device for testing and
// experimentation. capacityBlocks <= 0 selects a large default.
func NewMemDevice(blockSize, capacityBlocks int) *wodev.MemDevice {
	return wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: capacityBlocks})
}

// MemAllocator returns an Allocator minting in-memory volumes of the given
// capacity, for tests and experiments that span many volumes.
func MemAllocator(capacityBlocks int) Allocator {
	return func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
		return wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: capacityBlocks}), nil
	}
}
