package experiments

import (
	"fmt"
	"io"
	"sort"

	"clio/internal/analytic"
	"clio/internal/baseline"
	"clio/internal/core"
	"clio/internal/vclock"
)

// Table1Row is one line of the paper's Table 1: the measured cost of a log
// entry read at search distance N^k with complete caching.
type Table1Row struct {
	K              int
	Distance       int
	PaperEntries   int
	MeasEntries    int
	PaperBlocks    int
	MeasBlocks     int64
	PaperMs        float64
	MeasMs         float64
	MeasDeviceRead int64 // must be 0: complete caching
}

// RunTable1 reproduces Table 1 on a volume of ~N^maxK blocks. The paper
// uses N=16 and distances up to N^5; maxK trades memory for reach (maxK=4
// is a 65,536-block volume).
func RunTable1(blockSize, maxK int) ([]Table1Row, *DistanceVolume, error) {
	clk := vclock.New(vclock.DefaultModel())
	dv, err := BuildDistanceVolume(blockSize, 16, maxK, clk)
	if err != nil {
		return nil, nil, err
	}
	// Warm every block the locates will touch: one cold pass per target.
	for _, t := range dv.Targets {
		if _, err := dv.MeasureLocate(t, false); err != nil {
			return nil, nil, err
		}
	}
	var rows []Table1Row
	for i := len(dv.Targets) - 1; i >= 0; i-- {
		t := dv.Targets[i]
		c, err := dv.MeasureLocate(t, false)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table1Row{
			K:              t.K,
			Distance:       c.Distance,
			PaperEntries:   analytic.Table1Entries(t.K),
			MeasEntries:    c.EntriesRead,
			PaperBlocks:    analytic.Table1Blocks(t.K),
			MeasBlocks:     c.CachedAccesses,
			PaperMs:        table1PaperMs(t.K),
			MeasMs:         c.VirtualMs,
			MeasDeviceRead: c.DeviceReads,
		})
	}
	return rows, dv, nil
}

// table1PaperMs returns the paper's measured times for k=0..5.
func table1PaperMs(k int) float64 {
	vals := []float64{1.46, 2.71, 3.82, 5.06, 6.51, 8.10}
	if k < len(vals) {
		return vals[k]
	}
	return 0
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fprintf(w, "Table 1: log entry read vs search distance (complete caching, N=16)\n")
	fprintf(w, "%6s %10s | %8s %8s | %8s %8s | %9s %9s\n",
		"dist", "blocks", "ent(pap)", "ent(mea)", "blk(pap)", "blk(mea)", "ms(paper)", "ms(meas)")
	for _, r := range rows {
		fprintf(w, "N^%-4d %10d | %8d %8d | %8d %8d | %9.2f %9.2f\n",
			r.K, r.Distance, r.PaperEntries, r.MeasEntries,
			r.PaperBlocks, r.MeasBlocks, r.PaperMs, r.MeasMs)
	}
}

// Fig3Row is one point of Figure 3: entrymap entries examined to locate an
// entry d blocks away without caching.
type Fig3Row struct {
	N        int
	Distance int
	Theory   float64
	// Measured is the measured entry count, or -1 for theory-only points.
	Measured int
	// MeasuredDeviceReads is the cold device reads for measured points.
	MeasuredDeviceReads int64
}

// RunFig3 produces the Figure 3 curves: theory for every N the paper plots,
// plus cold-cache measurements on a real N=16 volume (reusing dv when the
// caller already built one).
func RunFig3(dv *DistanceVolume) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		for _, d := range []int{10, 100, 1000, 10_000, 100_000, 1_000_000, 10_000_000} {
			rows = append(rows, Fig3Row{
				N: n, Distance: d,
				Theory:   analytic.Fig3LocateEntries(n, float64(d)),
				Measured: -1,
			})
		}
	}
	if dv != nil {
		for i := len(dv.Targets) - 1; i >= 0; i-- {
			t := dv.Targets[i]
			c, err := dv.MeasureLocate(t, true)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig3Row{
				N: 16, Distance: c.Distance,
				Theory:              analytic.Fig3LocateEntries(16, float64(c.Distance)),
				Measured:            c.EntriesRead,
				MeasuredDeviceReads: c.DeviceReads,
			})
		}
	}
	return rows, nil
}

// PrintFig3 renders Figure 3.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fprintf(w, "Figure 3: entrymap entries examined to locate an entry d blocks away (no caching)\n")
	fprintf(w, "%5s %12s %10s %10s %12s\n", "N", "d", "theory", "measured", "device-reads")
	for _, r := range rows {
		if r.Measured < 0 {
			fprintf(w, "%5d %12d %10.2f %10s %12s\n", r.N, r.Distance, r.Theory, "-", "-")
		} else {
			fprintf(w, "%5d %12d %10.2f %10d %12d\n", r.N, r.Distance, r.Theory, r.Measured, r.MeasuredDeviceReads)
		}
	}
}

// BaselineRow compares locate strategies at one distance (§5): find the
// log entry written at a given earlier time, far back in a long-running
// log file.
type BaselineRow struct {
	Distance      int   // blocks between the end and the target entry
	ClioPrevReads int64 // measured cold reads to find a log's most recent (distant) entry
	ClioColdReads int64 // measured cold reads for the locate-by-time search
	ClioWarmReads int64 // time search after an unrelated search warmed shared landmarks
	BinaryReads   int   // modeled Daniels et al. balanced-tree path
	LinearReads   int   // naive backward scan
}

// RunBaselines compares Clio's locate-by-time against the §5 alternatives.
// Two log files record events every `stride` blocks across a volume of
// about N^maxK blocks. Targets sit N^k blocks from the end. Three costs are
// reported per distance:
//
//   - clio cold: device reads for the time search with an empty cache;
//   - clio warm: device reads after an unrelated search on the *other* log
//     file — Clio's landmark blocks are the same well-known blocks for
//     every log file, so they are "likely cached" (§2.1), while the
//     Daniels et al. binary tree's nodes are private to each log;
//   - binary tree: the root-to-node path over the log's entries;
//   - linear: the §2.1 strawman scan.
func RunBaselines(blockSize, maxK, stride int) ([]BaselineRow, error) {
	n := 16
	if stride <= 0 {
		stride = n
	}
	total := pow(n, maxK) + 3
	svc, dev, err := newService(blockSize, n, total+64, nil, nil)
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	for _, path := range []string{"/events", "/shadow", "/filler"} {
		if _, err := svc.CreateLog(path, 0, ""); err != nil {
			return nil, err
		}
	}
	evID, _ := svc.Resolve("/events")
	shID, _ := svc.Resolve("/shadow")
	fillID, _ := svc.Resolve("/filler")
	// One "stopped" log per distance class: written every stride blocks,
	// going quiet N^k blocks before the end. Finding its most recent entry
	// is the pure FindPrev cost of Figure 3.
	stopID := make(map[int]uint16)
	for k := 1; k <= maxK; k++ {
		path := fmt.Sprintf("/stopped%d", k)
		if _, err := svc.CreateLog(path, 0, ""); err != nil {
			return nil, err
		}
		stopID[k], _ = svc.Resolve(path)
	}
	type ev struct {
		ts    int64
		block int
	}
	var events, shadows []ev
	fillerSize := blockSize / 4
	for next := 0; next < total; next += stride {
		if err := fillTo(svc, fillID, next, fillerSize); err != nil {
			return nil, err
		}
		ts, err := svc.Append(evID, []byte("event"), core.AppendOptions{Timestamped: true})
		if err != nil {
			return nil, err
		}
		events = append(events, ev{ts: ts, block: svc.End() - 1})
		ts, err = svc.Append(shID, []byte("shadow"), core.AppendOptions{Timestamped: true})
		if err != nil {
			return nil, err
		}
		shadows = append(shadows, ev{ts: ts, block: svc.End() - 1})
		for k := 1; k <= maxK; k++ {
			if next < total-pow(n, k) {
				if _, err := svc.Append(stopID[k], []byte("s"), core.AppendOptions{}); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := fillTo(svc, fillID, total, fillerSize); err != nil {
		return nil, err
	}
	end := svc.End()

	occ := make([]int, len(events))
	for i, e := range events {
		occ[i] = e.block
	}
	btree := &baseline.BinaryTreeLocator{End: end}
	lin := &baseline.LinearLocator{End: end}

	measure := func(id uint16, target ev) (int64, error) {
		cur, err := svc.OpenCursorID(id)
		if err != nil {
			return 0, err
		}
		svc.ResetCounters()
		if err := cur.SeekTime(target.ts); err != nil {
			return 0, err
		}
		e, err := cur.Next()
		if err != nil {
			return 0, err
		}
		if e.Timestamp != target.ts {
			return 0, fmt.Errorf("time locate found ts %d, want %d", e.Timestamp, target.ts)
		}
		return svc.DeviceStats().Reads, nil
	}

	var rows []BaselineRow
	for k := 1; k <= maxK; k++ {
		d := pow(n, k)
		idx := sort.SearchInts(occ, end-d+1) - 1
		if idx < 0 {
			idx = 0
		}
		target := events[idx]
		svc.FlushCache()
		cold, err := measure(evID, target)
		if err != nil {
			return nil, err
		}
		// Warm: an unrelated search (different log, different time) caches
		// the shared landmark blocks; the target's own neighbourhood stays
		// cold.
		svc.FlushCache()
		other := (idx + len(shadows)/3) % len(shadows)
		if _, err := measure(shID, shadows[other]); err != nil {
			return nil, err
		}
		warm, err := measure(evID, target)
		if err != nil {
			return nil, err
		}
		// The FindPrev path: cold reads to find the stopped log's most
		// recent entry, which sits ~N^k blocks back.
		svc.FlushCache()
		scur, err := svc.OpenCursorID(stopID[k])
		if err != nil {
			return nil, err
		}
		scur.SeekEnd()
		svc.ResetCounters()
		if _, err := scur.Prev(); err != nil {
			return nil, err
		}
		prevReads := svc.DeviceStats().Reads

		_, br := btree.FindPrev(occ, target.block+1)
		_, lr := lin.FindPrev(occ, target.block+1)
		lr = end - target.block // scan from the end to the target
		rows = append(rows, BaselineRow{
			Distance:      end - target.block,
			ClioPrevReads: prevReads,
			ClioColdReads: cold,
			ClioWarmReads: warm,
			BinaryReads:   br,
			LinearReads:   lr,
		})
	}
	_ = dev
	return rows, nil
}

// PrintBaselines renders the §5 comparison: both schemes are logarithmic
// ("within a constant factor"), the entrymap FindPrev path reads fewer
// blocks for very distant entries, and the linear strawman explodes.
func PrintBaselines(w io.Writer, rows []BaselineRow) {
	fprintf(w, "§5 comparison: block reads to locate distant log entries\n")
	fprintf(w, "%12s %12s %14s %14s %14s %14s\n",
		"distance", "clio(prev)", "clio(t,cold)", "clio(t,warm)", "binary-tree", "linear-scan")
	for _, r := range rows {
		fprintf(w, "%12d %12d %14d %14d %14d %14d\n",
			r.Distance, r.ClioPrevReads, r.ClioColdReads, r.ClioWarmReads, r.BinaryReads, r.LinearReads)
	}
}
