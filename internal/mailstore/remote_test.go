package mailstore

import (
	"context"
	"fmt"
	"net"
	"testing"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/server"
	"clio/internal/wodev"
)

// TestMailOverTheNetwork runs the whole mail application against a remote
// log server — the paper's actual deployment shape, where the mail agent is
// a client of the extended file server.
func TestMailOverTheNetwork(t *testing.T) {
	ctx := context.Background()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := server.New(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := New(ctx, cl, "/mail")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateMailbox(ctx, "remote-user"); err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 8; i++ {
		id, err := st.Deliver(ctx, "remote-user", "sender", fmt.Sprintf("subject %d", i), "body over tcp")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := st.MarkRead(ctx, "remote-user", ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := st.Hide(ctx, "remote-user", ids[3]); err != nil {
		t.Fatal(err)
	}

	// A second agent (fresh connection, fresh cache) sees the same state,
	// rebuilt entirely from the remote logs.
	cl2, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	st2, err := New(ctx, cl2, "/mail")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := st2.List(ctx, "remote-user", true)
	if err != nil || len(msgs) != 8 {
		t.Fatalf("remote list: %d msgs, %v", len(msgs), err)
	}
	if !msgs[2].Read || !msgs[3].Hidden {
		t.Errorf("flags not visible remotely: %+v %+v", msgs[2], msgs[3])
	}
	visible, _ := st2.List(ctx, "remote-user", false)
	if len(visible) != 7 {
		t.Errorf("visible: %d", len(visible))
	}
}
